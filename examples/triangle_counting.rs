//! Triangle counting on a power-law (R-MAT) graph — the paper's
//! social-network `A·A` use case (Sec. V-B).
//!
//! Run with `cargo run --release --example triangle_counting`.

use spgemm_apps::triangles::{count_triangles, count_triangles_serial, TriangleConfig};
use spgemm_sparse::gen::rmat;
use spgemm_sparse::semiring::PlusTimesU64;

fn main() {
    // A Friendster-flavoured graph: power-law degrees, symmetric.
    let adj = rmat::<PlusTimesU64>(11, 8, None, true, 7).map(|_| 1u64);
    println!(
        "graph: {} vertices, {} edges (directed nnz)",
        adj.nrows(),
        adj.nnz()
    );

    let expected = count_triangles_serial(&adj);
    for (p, l) in [(4usize, 1usize), (16, 4)] {
        let (count, breakdown) =
            count_triangles(&adj, &TriangleConfig::new(p, l)).expect("count failed");
        println!(
            "p={p:<3} l={l:<2}: {count} triangles, SpGEMM modeled time {:.4}s \
             (comm {:.4}s, comp {:.4}s)",
            breakdown.total(),
            breakdown.comm_total(),
            breakdown.comp_total()
        );
        assert_eq!(count, expected, "distributed count must match brute force");
    }
    println!("matches the serial brute-force count ({expected}) ✓");
}
