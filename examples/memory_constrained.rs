//! The memory-constrained story end to end: a product too big for the
//! "cluster" memory, the symbolic step choosing the batch count, and the
//! per-rank peak staying under budget (Sec. IV of the paper).
//!
//! Run with `cargo run --release --example memory_constrained`.

use spgemm_core::{run_spgemm, MemoryBudget, RunConfig};
use spgemm_sparse::gen::clustered_similarity;
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::spgemm::symbolic_nnz;

fn main() {
    // Squaring a clustered similarity matrix blows up: nnz(A²) ≫ nnz(A).
    let a = clustered_similarity(6, 40, 14, 2, 99);
    let (nnz_c, stats) = symbolic_nnz(&a, &a).unwrap();
    let r = 24;
    println!(
        "A: {} nnz; A² will have {} nnz unmerged intermediates ≥ {} (flops)",
        a.nnz(),
        nnz_c,
        stats.flops
    );
    println!(
        "storing A + A² at r = {r} B/nnz needs ≥ {:.1} MB",
        ((a.nnz() as u64 * 2 + stats.flops) * r as u64) as f64 / 1e6
    );

    let p = 16;
    // A cluster with memory for the inputs plus only a fraction of the
    // intermediates.
    let budget = MemoryBudget::new(a.nnz() * 2 * r * 4);
    println!(
        "cluster budget: {:.1} MB total across {p} processes",
        budget.total_bytes as f64 / 1e6
    );

    let mut cfg = RunConfig::new(p, 4);
    cfg.budget = budget;
    cfg.discard_output = true; // the application consumes batches in place
    let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).expect("batched multiply failed");
    let sym = out.symbolic.expect("symbolic step ran");

    println!("\nsymbolic step says:");
    println!("  exact batch count b          = {}", out.nbatches);
    println!("  Eq. 2 analytic lower bound   = {:?}", sym.eq2_lower_bound);
    println!("  max unmerged nnz per process = {}", sym.max_unmerged_nnz);
    println!("  flops                        = {}", sym.flops);

    let per_proc = cfg.budget.per_process(p);
    let worst = out.peak_bytes.iter().max().copied().unwrap_or(0);
    println!(
        "\nper-process budget {per_proc} B; worst rank peak {worst} B ({}%)",
        worst * 100 / per_proc
    );
    assert!(worst <= per_proc, "the memory invariant must hold");
    assert!(out.nbatches > 1, "this workload must require batching");
    println!("memory invariant holds across all {p} ranks ✓");

    // For contrast: the same multiply without batching would have peaked at
    // the full intermediate size.
    let unbatched_peak = (sym.max_unmerged_nnz as usize + a.nnz() * 2 / p) * r;
    println!(
        "an unbatched run would have peaked around {unbatched_peak} B per process \
         ({:.1}x the budget) — the previous SUMMA3D simply fails here",
        unbatched_peak as f64 / per_proc as f64
    );
}
