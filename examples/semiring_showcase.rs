//! Semiring generality (paper Sec. II-A) on the distributed stack: the
//! same BatchedSUMMA3D runs BFS over (∨, ∧), two-hop shortest paths over
//! (min, +), and bottleneck paths over (max, min).
//!
//! Run with `cargo run --release --example semiring_showcase`.

use spgemm_apps::bfs::{bfs_levels, BfsConfig};
use spgemm_core::{run_spgemm, RunConfig};
use spgemm_sparse::semiring::{MaxMinF64, MinPlusF64};
use spgemm_sparse::{CscMatrix, Triples};

/// A weighted ring with chords: enough structure for every semiring to
/// say something interesting.
fn build_graph(n: usize) -> (CscMatrix<bool>, CscMatrix<f64>) {
    let mut pat = Triples::new(n, n);
    let mut wts = Triples::new(n, n);
    for i in 0..n {
        let next = (i + 1) % n;
        let chord = (i + 7) % n;
        // Entry (dst, src): edge src -> dst.
        pat.push(next as u32, i as u32, true);
        pat.push(chord as u32, i as u32, true);
        wts.push(next as u32, i as u32, 1.0 + (i % 3) as f64);
        wts.push(chord as u32, i as u32, 4.0);
    }
    (pat.to_csc(), wts.to_csc())
}

fn main() {
    let n = 64;
    let (pattern, weights) = build_graph(n);
    println!("graph: {n} vertices, {} edges\n", pattern.nnz());

    // (∨, ∧): multi-source BFS levels.
    let levels = bfs_levels(&pattern, &[0, 32], &BfsConfig::new(16, 4)).expect("bfs");
    let far0 = levels[0].iter().flatten().max().unwrap();
    println!("BFS over (∨,∧): eccentricity of v0 = {far0} hops; v17 is at level {:?}", levels[0][17]);

    // (min, +): A² gives exact 2-hop shortest-path distances.
    let cfg = RunConfig::new(16, 4);
    let two_hop = run_spgemm::<MinPlusF64>(&cfg, &weights, &weights)
        .expect("min-plus square")
        .c
        .unwrap();
    let (rows, vals) = two_hop.col(0);
    let best = rows
        .iter()
        .zip(vals.iter())
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "(min,+) A²: cheapest 2-hop out of v0 reaches v{} at cost {}",
        best.0, best.1
    );

    // (max, min): A² gives the best bottleneck over 2-hop routes.
    let bottleneck = run_spgemm::<MaxMinF64>(&cfg, &weights, &weights)
        .expect("max-min square")
        .c
        .unwrap();
    let (rows, vals) = bottleneck.col(0);
    let widest = rows
        .iter()
        .zip(vals.iter())
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    println!(
        "(max,min) A²: widest 2-hop out of v0 reaches v{} with bottleneck {}",
        widest.0, widest.1
    );

    println!("\nSame distributed pipeline, three algebras — no kernel changes.");
}
