//! Quickstart: multiply two sparse matrices on a simulated 16-process,
//! 4-layer grid and inspect the per-step modeled timing.
//!
//! Run with `cargo run --release --example quickstart`.

use spgemm_core::{run_spgemm, KernelStrategy, RunConfig};
use spgemm_simgrid::StepReport;
use spgemm_sparse::gen::er_random;
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::spgemm::symbolic_nnz;

fn main() {
    // Two 2,000 × 2,000 random matrices with 8 nonzeros per column.
    let n = 2000;
    let a = er_random::<PlusTimesF64>(n, n, 8, 1);
    let b = er_random::<PlusTimesF64>(n, n, 8, 2);
    let (nnz_c, stats) = symbolic_nnz(&a, &b).unwrap();
    println!(
        "A: {n}x{n} with {} nnz; B: {} nnz; C will have {} nnz ({} flops, cf = {:.2})",
        a.nnz(),
        b.nnz(),
        nnz_c,
        stats.flops,
        stats.flops as f64 / nnz_c as f64
    );

    // A 16-process grid with 4 layers — the communication-avoiding setting.
    let mut report = StepReport::new();
    for (l, label) in [(1usize, "l=1 (2D SUMMA)"), (4, "l=4 (3D SUMMA)")] {
        let mut cfg = RunConfig::new(16, l);
        cfg.kernels = KernelStrategy::New;
        let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).expect("multiply failed");
        let c = out.c.expect("product gathered on the root");
        assert_eq!(c.nnz() as u64, nnz_c, "distributed result matches symbolic count");
        report.push(label, out.max);
    }
    println!("\nModeled per-step time (seconds, max over processes):");
    println!("{}", report.to_table());
    println!("Fewer seconds in A-Bcast/B-Bcast under l=4: that is the paper's point.");
}
