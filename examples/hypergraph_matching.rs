//! Hypergraph coarsening via heavy-connectivity matching — the Zoltan use
//! case from the paper's introduction: count shared hyperedges between all
//! vertex pairs (`A·Aᵀ`) **in batches**, reduce each batch to matching
//! candidates, discard it, and coarsen.
//!
//! Run with `cargo run --release --example hypergraph_matching`.

use spgemm_apps::coarsen::{heavy_connectivity_matching, CoarsenConfig};
use spgemm_core::MemoryBudget;
use spgemm_sparse::{CscMatrix, Triples};

/// A synthetic VLSI-ish hypergraph: `npairs` pairs of near-duplicate
/// vertices (each pair shares a private bundle of nets) plus long nets
/// connecting many vertices weakly.
fn build_hypergraph(npairs: usize, nets_per_pair: usize, long_nets: usize) -> CscMatrix<u64> {
    let nv = npairs * 2;
    let ne = npairs * nets_per_pair + long_nets;
    let mut t = Triples::new(nv, ne);
    let mut e = 0u32;
    for p in 0..npairs {
        for _ in 0..nets_per_pair {
            t.push((2 * p) as u32, e, 1);
            t.push((2 * p + 1) as u32, e, 1);
            e += 1;
        }
    }
    for k in 0..long_nets {
        // A long net touches every `stride`-th vertex; strides vary per
        // net so no vertex pair co-occurs on many long nets (their
        // connectivity stays far below a twin pair's private bundle).
        let stride = 7 + (k * 5) % 13;
        let mut v = k % nv;
        loop {
            t.push(v as u32, e, 1);
            v += stride;
            if v >= nv {
                break;
            }
        }
        e += 1;
    }
    t.to_csc()
}

fn main() {
    let npairs = 200;
    let inc = build_hypergraph(npairs, 5, 40);
    println!(
        "hypergraph: {} vertices, {} hyperedges, {} pins",
        inc.nrows(),
        inc.ncols(),
        inc.nnz()
    );

    // Tight memory: the shared-hyperedge matrix must be formed in batches.
    let mut cfg = CoarsenConfig::new(3, 16, 4);
    cfg.budget = MemoryBudget::new(inc.nnz() * 24 * 12);
    let m = heavy_connectivity_matching(&inc, &cfg).expect("matching failed");
    println!(
        "matched {} pairs in {} batch(es); SpGEMM modeled time {:.5}s ({:.0}% comm)",
        m.pairs,
        m.nbatches,
        m.breakdown.total(),
        100.0 * m.breakdown.comm_total() / m.breakdown.total()
    );
    let twins = (0..npairs)
        .filter(|&p| m.mate[2 * p] == Some((2 * p + 1) as u32))
        .count();
    println!("{twins}/{npairs} planted near-duplicate pairs matched together (expected: all)");
    assert_eq!(twins, npairs);
    println!(
        "coarsening would shrink the hypergraph to {} vertices",
        inc.nrows() - m.pairs
    );
}
