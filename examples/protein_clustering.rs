//! Protein clustering with HipMCL-style Markov clustering — the paper's
//! flagship memory-constrained application (Sec. V-C, Fig. 3).
//!
//! A synthetic protein-similarity network (block communities) is clustered
//! by iterated matrix squaring under a memory budget too small to hold the
//! expanded matrix: the symbolic step chooses a batch count per iteration,
//! and each batch of `A²` is inflated, normalized and pruned inside the
//! batched multiply.
//!
//! Run with `cargo run --release --example protein_clustering`.

use spgemm_apps::components::num_clusters;
use spgemm_apps::mcl::{markov_cluster, mcl_init, MclParams};
use spgemm_core::MemoryBudget;
use spgemm_sparse::gen::clustered_similarity;

fn main() {
    // 8 protein families of 24 members each.
    let (nclusters, size) = (8, 24);
    let adj = clustered_similarity(nclusters, size, 10, 1, 2024);
    println!(
        "similarity network: {} proteins, {} similarities",
        adj.nrows(),
        adj.nnz()
    );

    // Budget sizing: any MCL iterate is pruned to ≤ select entries per
    // column, so n·select·r bounds the inputs forever; the budget covers
    // that comfortably but stays far below the expansion's intermediate
    // size — forcing the dense early iterations to run in multiple
    // batches, exactly the regime of Fig. 3.
    let mut params = MclParams::new(16, 4);
    params.select = 16;
    let n = adj.nrows();
    params.budget = MemoryBudget::new(n * params.select * 24 * 8);
    assert!(params.budget.total_bytes > mcl_init(&adj).nnz() * 24 * 2);

    let result = markov_cluster(&adj, &params).expect("clustering failed");

    println!("\niter  batches  chaos      nnz(M)   SpGEMM modeled secs");
    for (i, it) in result.per_iter.iter().enumerate() {
        println!(
            "{:>4}  {:>7}  {:<9.4}  {:>7}  {:.4}",
            i + 1,
            it.nbatches,
            it.chaos,
            it.nnz,
            it.breakdown.total()
        );
    }
    let k = num_clusters(&result.labels);
    println!(
        "\nconverged in {} iterations; found {k} clusters (planted: {nclusters})",
        result.iterations
    );
    assert_eq!(k, nclusters, "planted communities should be recovered");
    println!("planted communities recovered ✓");
}
