//! BELLA-style sequence overlap detection via `A·Aᵀ` on a reads × k-mers
//! matrix (Secs. I, V-G of the paper; Figs. 10–11 evaluate this workload).
//!
//! Run with `cargo run --release --example sequence_overlap`.

use spgemm_apps::overlap::{find_overlaps, OverlapConfig};
use spgemm_sparse::gen::kmer_matrix;

fn main() {
    // 3,000 long reads over 40,000 k-mers; each k-mer appears in a window
    // of 3 consecutive reads along the genome (so true overlaps are
    // between neighbouring reads) — Rice-kmers in miniature, with its
    // hallmark ~2-3 nonzeros per k-mer column.
    let reads = 3000;
    let m = kmer_matrix(reads, 40_000, 3, 42);
    println!(
        "k-mer matrix: {} reads x {} k-mers, {} nonzeros ({:.2} per column)",
        m.nrows(),
        m.ncols(),
        m.nnz(),
        m.nnz() as f64 / m.ncols() as f64
    );

    let cfg = OverlapConfig::new(3, 16, 4);
    let (pairs, breakdown) = find_overlaps(&m, &cfg).expect("overlap detection failed");
    println!(
        "found {} candidate pairs with ≥{} shared k-mers \
         (SpGEMM modeled time {:.4}s, {:.1}% communication)",
        pairs.len(),
        cfg.min_shared,
        breakdown.total(),
        100.0 * breakdown.comm_total() / breakdown.total()
    );
    // Show a few candidates.
    for p in pairs.iter().take(5) {
        println!("  reads {} ~ {} share {} k-mers", p.i, p.j, p.shared);
    }
    let neighbours = pairs
        .iter()
        .filter(|p| p.j - p.i <= 2 || reads as u32 - (p.j - p.i) <= 2)
        .count();
    println!(
        "{neighbours}/{} candidates are genome neighbours (expected: all)",
        pairs.len()
    );
}
