//! Export a Chrome-trace timeline of a batched 3D run: every rank's
//! A-Bcast / B-Bcast / Local-Multiply / merges / fiber exchange spans,
//! viewable in `chrome://tracing` or https://ui.perfetto.dev.
//!
//! Run with `cargo run --release --example trace_timeline`.

use spgemm_core::{run_spgemm, RunConfig};
use spgemm_simgrid::chrome_trace_json;
use spgemm_sparse::gen::clustered_similarity;
use spgemm_sparse::semiring::PlusTimesF64;

fn main() {
    let a = clustered_similarity(8, 60, 10, 1, 3);
    let mut cfg = RunConfig::new(16, 4);
    cfg.forced_batches = Some(4);
    cfg.trace = true;
    let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).expect("run failed");

    let traces = out.traces.expect("tracing was enabled");
    let events: usize = traces.iter().map(Vec::len).sum();
    let json = chrome_trace_json(&traces);
    let path = std::env::temp_dir().join("spgemm_trace.json");
    std::fs::write(&path, &json).expect("write trace");
    println!(
        "recorded {events} spans across {} ranks over {:.4}s of modeled time",
        traces.len(),
        out.max.total()
    );
    println!("wrote {} bytes of Chrome trace JSON to {}", json.len(), path.display());
    println!("open chrome://tracing (or ui.perfetto.dev) and load the file:");
    println!("the 4 batches appear as repeating [A-Bcast | B-Bcast | Local-Multiply]x2");
    println!("stage groups followed by AllToAll-Fiber and Merge-Fiber on every rank row.");
}
