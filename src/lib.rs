//! Umbrella crate of the SpGEMM reproduction workspace.
//!
//! Hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). The library surface simply re-exports the
//! member crates so examples and downstream users can depend on one name.

pub use spgemm_apps as apps;
pub use spgemm_core as core;
pub use spgemm_simgrid as simgrid;
pub use spgemm_sparse as sparse;
