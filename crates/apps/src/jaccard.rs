//! Jaccard similarity via SpGEMM (`A·Aᵀ` plus degrees).
//!
//! The paper's introduction cites distributed Jaccard similarity \[14\] as
//! a canonical memory-constrained `A·Aᵀ` workload: with binary `A`
//! (items × features), the intersection sizes are `S = A·Aᵀ` and
//! `J(i,j) = S_ij / (dᵢ + dⱼ − S_ij)`. Only `S`'s nonzero pattern can be
//! non-trivially similar, so the output inherits SpGEMM's sparsity.

use spgemm_core::{run_spgemm_aat, CoreError, RunConfig};
use spgemm_sparse::semiring::PlusTimesU64;
use spgemm_sparse::{CscMatrix, Triples};

/// Configuration for Jaccard similarity.
#[derive(Debug, Clone, Copy)]
pub struct JaccardConfig {
    /// Drop pairs with similarity below this.
    pub min_similarity: f64,
    /// The distributed-run configuration.
    pub run: RunConfig,
}

impl JaccardConfig {
    /// Similarity threshold `min_similarity` on a `p`-rank, `l`-layer grid.
    pub fn new(min_similarity: f64, p: usize, layers: usize) -> Self {
        JaccardConfig {
            min_similarity,
            run: RunConfig::new(p, layers),
        }
    }
}

/// Pairwise Jaccard similarities of the rows of a binary items × features
/// matrix. Returns a symmetric sparse matrix of similarities (diagonal
/// omitted), thresholded at `min_similarity`.
pub fn jaccard_similarities(
    items: &CscMatrix<u64>,
    cfg: &JaccardConfig,
) -> Result<CscMatrix<f64>, CoreError> {
    let pattern = items.map(|_| 1u64);
    // Row degrees |N(i)|.
    let mut deg = vec![0u64; pattern.nrows()];
    for (r, _, _) in pattern.iter() {
        deg[r as usize] += 1;
    }
    let out = run_spgemm_aat::<PlusTimesU64>(&cfg.run, &pattern)?;
    let s = out.c.expect("jaccard keeps the product");
    let n = s.nrows();
    let mut t = Triples::with_capacity(n, n, s.nnz());
    for (i, j, inter) in s.iter() {
        if i as usize == j {
            continue;
        }
        let union = deg[i as usize] + deg[j] - inter;
        if union == 0 {
            continue;
        }
        let sim = inter as f64 / union as f64;
        if sim >= cfg.min_similarity {
            t.push(i, j as u32, sim);
        }
    }
    Ok(t.to_csc())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items_matrix(rows: &[&[u32]], nfeatures: usize) -> CscMatrix<u64> {
        let mut t = Triples::new(rows.len(), nfeatures);
        for (i, feats) in rows.iter().enumerate() {
            for &f in *feats {
                t.push(i as u32, f, 1);
            }
        }
        t.to_csc()
    }

    #[test]
    fn identical_items_have_similarity_one() {
        let m = items_matrix(&[&[0, 1, 2], &[0, 1, 2], &[5]], 6);
        let j = jaccard_similarities(&m, &JaccardConfig::new(0.0, 4, 1)).unwrap();
        let (rows, vals) = j.col(0);
        assert_eq!(rows, &[1]);
        assert!((vals[0] - 1.0).abs() < 1e-12);
        // Item 2 shares nothing: no entry in its column except none.
        assert_eq!(j.col_nnz(2), 0);
    }

    #[test]
    fn partial_overlap_computes_ratio() {
        // {0,1,2} vs {1,2,3}: intersection 2, union 4 -> 0.5.
        let m = items_matrix(&[&[0, 1, 2], &[1, 2, 3]], 4);
        let j = jaccard_similarities(&m, &JaccardConfig::new(0.0, 4, 1)).unwrap();
        let (_, vals) = j.col(0);
        assert!((vals[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn threshold_prunes_weak_similarities() {
        let m = items_matrix(&[&[0, 1, 2, 3, 4], &[4, 5, 6, 7, 8]], 9);
        // intersection 1, union 9 -> 1/9 ≈ 0.11.
        let strict = jaccard_similarities(&m, &JaccardConfig::new(0.2, 4, 1)).unwrap();
        assert_eq!(strict.nnz(), 0);
        let loose = jaccard_similarities(&m, &JaccardConfig::new(0.05, 4, 1)).unwrap();
        assert_eq!(loose.nnz(), 2); // symmetric pair
    }

    #[test]
    fn output_is_symmetric() {
        let m = items_matrix(&[&[0, 1], &[1, 2], &[0, 2], &[3]], 4);
        let j = jaccard_similarities(&m, &JaccardConfig::new(0.0, 4, 4)).unwrap();
        let jt = spgemm_sparse::ops::transpose(&j);
        assert!(j.approx_eq(&jt, 1e-12));
    }
}
