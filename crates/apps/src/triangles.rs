//! Triangle counting via masked SpGEMM.
//!
//! The paper's social-network use case (Sec. V-B): high-performance
//! triangle counting multiplies the strictly-lower by itself and masks the
//! result with the adjacency pattern \[3\]. For `L` the strictly lower
//! triangle of a symmetric adjacency matrix, `Σ ((L·L) .* L)` counts each
//! triangle `i < j < k` exactly once (as the wedge `k→j→i` closed by the
//! edge `k→i`). The SpGEMM runs distributed via BatchedSUMMA3D; the mask
//! and reduction are cheap post-processing.

use spgemm_core::{run_spgemm, CoreError, RunConfig};
use spgemm_simgrid::StepBreakdown;
use spgemm_sparse::ops::{hadamard, sum_all, tril_strict};
use spgemm_sparse::semiring::PlusTimesU64;
use spgemm_sparse::CscMatrix;

/// Configuration for distributed triangle counting.
#[derive(Debug, Clone, Copy)]
pub struct TriangleConfig {
    /// The distributed-run configuration (grid, kernels, budget).
    pub run: RunConfig,
}

impl TriangleConfig {
    /// Count on a `p`-rank, `l`-layer grid with defaults.
    pub fn new(p: usize, layers: usize) -> Self {
        TriangleConfig {
            run: RunConfig::new(p, layers),
        }
    }
}

/// Count triangles of a symmetric 0/1 adjacency matrix (diagonal ignored).
/// Returns the count and the SpGEMM's critical-path step breakdown.
pub fn count_triangles(
    adj: &CscMatrix<u64>,
    cfg: &TriangleConfig,
) -> Result<(u64, StepBreakdown), CoreError> {
    if adj.nrows() != adj.ncols() {
        return Err(CoreError::Config("adjacency matrix must be square".into()));
    }
    let l = tril_strict(&adj.map(|_| 1u64));
    let out = run_spgemm::<PlusTimesU64>(&cfg.run, &l, &l)?;
    let c = out.c.expect("triangle counting keeps the product");
    let masked = hadamard::<PlusTimesU64>(&c, &l)?;
    Ok((sum_all::<PlusTimesU64>(&masked), out.max))
}

/// Brute-force reference: enumerate all vertex triples' edges via sorted
/// adjacency sets. O(n·d²); for tests only.
pub fn count_triangles_serial(adj: &CscMatrix<u64>) -> u64 {
    let n = adj.nrows();
    // Neighbor sets (excluding self-loops), deduplicated.
    let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (r, c, _) in adj.iter() {
        if r as usize != c {
            nbrs[c].push(r);
        }
    }
    for l in &mut nbrs {
        l.sort_unstable();
        l.dedup();
    }
    let mut count = 0u64;
    for j in 0..n {
        for &i in &nbrs[j] {
            let i = i as usize;
            if i <= j {
                continue;
            }
            // Common neighbors k > i of i and j.
            let (a, b) = (&nbrs[i], &nbrs[j]);
            let (mut x, mut y) = (0, 0);
            while x < a.len() && y < b.len() {
                match a[x].cmp(&b[y]) {
                    std::cmp::Ordering::Less => x += 1,
                    std::cmp::Ordering::Greater => y += 1,
                    std::cmp::Ordering::Equal => {
                        if (a[x] as usize) > i {
                            count += 1;
                        }
                        x += 1;
                        y += 1;
                    }
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::gen::rmat;
    use spgemm_sparse::semiring::PlusTimesU64 as PT;
    use spgemm_sparse::Triples;

    fn complete_graph(n: usize) -> CscMatrix<u64> {
        let mut t = Triples::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    t.push(i as u32, j as u32, 1);
                }
            }
        }
        t.to_csc()
    }

    #[test]
    fn k4_has_four_triangles() {
        let adj = complete_graph(4);
        assert_eq!(count_triangles_serial(&adj), 4);
        let (count, _) = count_triangles(&adj, &TriangleConfig::new(4, 1)).unwrap();
        assert_eq!(count, 4);
    }

    #[test]
    fn k6_has_twenty_triangles() {
        let adj = complete_graph(6);
        // C(6,3) = 20.
        let (count, _) = count_triangles(&adj, &TriangleConfig::new(4, 4)).unwrap();
        assert_eq!(count, 20);
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        // A 4-cycle: no triangles.
        let mut t = Triples::new(4, 4);
        for (i, j) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            t.push(i, j, 1);
            t.push(j, i, 1);
        }
        let (count, _) = count_triangles(&t.to_csc(), &TriangleConfig::new(4, 1)).unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    fn matches_brute_force_on_rmat() {
        let adj = rmat::<PT>(7, 6, None, true, 71).map(|_| 1u64);
        let expected = count_triangles_serial(&adj);
        for (p, l) in [(4, 1), (16, 4)] {
            let (count, bd) = count_triangles(&adj, &TriangleConfig::new(p, l)).unwrap();
            assert_eq!(count, expected, "p={p} l={l}");
            assert!(bd.total() > 0.0);
        }
        assert!(expected > 0, "R-MAT graph should contain triangles");
    }
}
