//! Applications on top of memory-constrained distributed SpGEMM.
//!
//! These are the workloads the paper motivates and evaluates (Secs. I, V):
//!
//! * [`mcl`] — HipMCL-style Markov clustering: iterated matrix squaring
//!   with **per-batch** column pruning, the flagship memory-constrained
//!   application (Fig. 3). Each batch of `A²` is inflated, normalized and
//!   pruned *inside* the batched multiply, so the full expanded matrix is
//!   never resident.
//! * [`triangles`] — triangle counting via `L·L` masked by `L`
//!   (Azad-Buluç-Gilbert style), the paper's `A·A` social-network use case.
//! * [`overlap`] — BELLA/PASTIS-style candidate overlap detection:
//!   `A·Aᵀ` on a reads × k-mers matrix counts shared k-mers per read pair.
//! * [`jaccard`] — Jaccard similarity of adjacency sets through `A·Aᵀ`
//!   plus degree vectors (Besta et al., cited in the paper's intro).
//! * [`coarsen`] — heavy-connectivity matching for multilevel hypergraph
//!   coarsening (the Zoltan use case): batched `A·Aᵀ` reduced to matching
//!   candidates inside the multiply, every batch discarded.
//!
//! * [`bfs`] — level-synchronous multi-source BFS over the `(∨, ∧)`
//!   semiring: the GraphBLAS formulation running on the distributed stack,
//!   demonstrating the paper's semiring generality (Sec. II-A).
//!
//! [`components`] provides the union-find used to extract clusters.

#![forbid(unsafe_code)]

pub mod bfs;
pub mod coarsen;
pub mod components;
pub mod jaccard;
pub mod mcl;
pub mod overlap;
pub mod triangles;

pub use bfs::{bfs_levels, bfs_serial, BfsConfig};
pub use coarsen::{heavy_connectivity_matching, CoarsenConfig, Matching};
pub use jaccard::{jaccard_similarities, JaccardConfig};
pub use mcl::{markov_cluster, MclParams, MclResult};
pub use overlap::{find_overlaps, OverlapConfig, OverlapPair};
pub use triangles::{count_triangles, count_triangles_serial, TriangleConfig};
