//! BELLA/PASTIS-style candidate overlap detection via `A·Aᵀ`.
//!
//! The paper's bioinformatics use case (Secs. I, V-G): `A` is a
//! reads × k-mers incidence matrix; `(A·Aᵀ)(i, j)` counts k-mers shared by
//! reads `i` and `j`, so above-threshold off-diagonal entries are the
//! candidate pairs handed to an aligner. Because the subsequent alignment
//! consumes the product in column batches, this is exactly the
//! memory-constrained pattern BatchedSUMMA3D serves: the full `A·Aᵀ` never
//! needs to exist at once.

use spgemm_core::{run_spgemm_aat, CoreError, RunConfig};
use spgemm_simgrid::StepBreakdown;
use spgemm_sparse::semiring::PlusTimesU64;
use spgemm_sparse::CscMatrix;

/// Configuration for overlap detection.
#[derive(Debug, Clone, Copy)]
pub struct OverlapConfig {
    /// Minimum shared k-mers for a pair to become a candidate.
    pub min_shared: u64,
    /// The distributed-run configuration.
    pub run: RunConfig,
}

impl OverlapConfig {
    /// Detect with a shared-k-mer threshold of `min_shared` on a
    /// `p`-rank, `l`-layer grid.
    pub fn new(min_shared: u64, p: usize, layers: usize) -> Self {
        OverlapConfig {
            min_shared,
            run: RunConfig::new(p, layers),
        }
    }
}

/// A candidate read pair (`i < j`) sharing `shared` k-mers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OverlapPair {
    /// Smaller read id.
    pub i: u32,
    /// Larger read id.
    pub j: u32,
    /// Number of shared k-mers.
    pub shared: u64,
}

/// Find candidate overlaps among the reads of a reads × k-mers matrix.
/// Returns pairs sorted by `(i, j)` plus the SpGEMM step breakdown.
pub fn find_overlaps(
    kmer_matrix: &CscMatrix<u64>,
    cfg: &OverlapConfig,
) -> Result<(Vec<OverlapPair>, StepBreakdown), CoreError> {
    // A·Aᵀ with the transpose formed *on the grid*, never globally.
    let pattern = kmer_matrix.map(|_| 1u64);
    let out = run_spgemm_aat::<PlusTimesU64>(&cfg.run, &pattern)?;
    let s = out.c.expect("overlap detection keeps the product");
    let mut pairs = Vec::new();
    for (r, c, shared) in s.iter() {
        let (i, j) = (r.min(c as u32), r.max(c as u32));
        if i < j && shared >= cfg.min_shared {
            pairs.push(OverlapPair { i, j, shared });
        }
    }
    // A·Aᵀ is symmetric: each pair appears twice; keep one.
    pairs.sort_unstable();
    pairs.dedup();
    Ok((pairs, out.max))
}

/// Brute-force shared-k-mer counting for tests.
pub fn find_overlaps_serial(kmer_matrix: &CscMatrix<u64>, min_shared: u64) -> Vec<OverlapPair> {
    let nreads = kmer_matrix.nrows();
    let mut counts = std::collections::HashMap::<(u32, u32), u64>::new();
    for k in 0..kmer_matrix.ncols() {
        let (reads, _) = kmer_matrix.col(k);
        for (xi, &a) in reads.iter().enumerate() {
            for &b in &reads[xi + 1..] {
                let key = (a.min(b), a.max(b));
                *counts.entry(key).or_insert(0) += 1;
            }
        }
    }
    let mut pairs: Vec<OverlapPair> = counts
        .into_iter()
        .filter(|&((i, j), shared)| i != j && shared >= min_shared && (j as usize) < nreads)
        .map(|((i, j), shared)| OverlapPair { i, j, shared })
        .collect();
    pairs.sort_unstable();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::gen::kmer_matrix;
    use spgemm_sparse::Triples;

    #[test]
    fn two_reads_sharing_kmers() {
        // Reads 0 and 1 share k-mers 0 and 1; read 2 is isolated.
        let mut t = Triples::new(3, 3);
        t.push(0, 0, 1);
        t.push(1, 0, 1);
        t.push(0, 1, 1);
        t.push(1, 1, 1);
        t.push(2, 2, 1);
        let m = t.to_csc();
        let (pairs, _) = find_overlaps(&m, &OverlapConfig::new(2, 4, 1)).unwrap();
        assert_eq!(pairs, vec![OverlapPair { i: 0, j: 1, shared: 2 }]);
    }

    #[test]
    fn threshold_filters_weak_pairs() {
        let mut t = Triples::new(2, 1);
        t.push(0, 0, 1);
        t.push(1, 0, 1);
        let m = t.to_csc();
        let (pairs, _) = find_overlaps(&m, &OverlapConfig::new(2, 4, 1)).unwrap();
        assert!(pairs.is_empty(), "one shared k-mer is below threshold 2");
    }

    #[test]
    fn matches_brute_force_on_generated_matrix() {
        let m = kmer_matrix(40, 300, 3, 73);
        let expected = find_overlaps_serial(&m, 2);
        assert!(!expected.is_empty(), "generator should plant overlaps");
        for (p, l) in [(4, 1), (16, 4)] {
            let (pairs, _) = find_overlaps(&m, &OverlapConfig::new(2, p, l)).unwrap();
            assert_eq!(pairs, expected, "p={p} l={l}");
        }
    }

    #[test]
    fn overlaps_connect_consecutive_reads() {
        // The generator anchors k-mers on consecutive reads, so candidates
        // must be near-diagonal.
        let m = kmer_matrix(50, 400, 2, 74);
        let (pairs, _) = find_overlaps(&m, &OverlapConfig::new(1, 4, 1)).unwrap();
        assert!(!pairs.is_empty());
        for p in &pairs {
            let gap = (p.j - p.i).min(50 - (p.j - p.i));
            assert!(gap <= 1, "pair {p:?} spans a gap of {gap}");
        }
    }
}
