//! Union-find and connected components over sparse patterns.
//!
//! Used to extract clusters from a converged Markov-clustering matrix:
//! nodes joined by any surviving (above-threshold) entry belong to the
//! same cluster.

use spgemm_sparse::CscMatrix;

/// Disjoint-set forest with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns true if they were disjoint.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (ra, rb) = if self.rank[ra as usize] < self.rank[rb as usize] {
            (rb, ra)
        } else {
            (ra, rb)
        };
        self.parent[rb as usize] = ra;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[ra as usize] += 1;
        }
        true
    }

    /// Dense labeling: `labels[i]` is a cluster id in `0..k`, consistent
    /// across members.
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut map = vec![usize::MAX; n];
        let mut next = 0usize;
        let mut out = vec![0usize; n];
        for i in 0..n as u32 {
            let root = self.find(i) as usize;
            if map[root] == usize::MAX {
                map[root] = next;
                next += 1;
            }
            out[i as usize] = map[root];
        }
        out
    }
}

/// Connected components of the (symmetrized) nonzero pattern of `m`,
/// keeping only entries with `|value| > threshold`. Returns per-node
/// cluster labels.
pub fn components_from_pattern(m: &CscMatrix<f64>, threshold: f64) -> Vec<usize> {
    assert_eq!(m.nrows(), m.ncols(), "components need a square matrix");
    let mut uf = UnionFind::new(m.nrows());
    for (r, c, v) in m.iter() {
        if v.abs() > threshold && r as usize != c {
            uf.union(r, c as u32);
        }
    }
    uf.labels()
}

/// Number of distinct labels.
pub fn num_clusters(labels: &[usize]) -> usize {
    let mut seen = labels.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// True when two labelings induce the same partition (up to renaming).
pub fn same_partition(a: &[usize], b: &[usize]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut fwd = std::collections::HashMap::new();
    let mut bwd = std::collections::HashMap::new();
    for (&x, &y) in a.iter().zip(b.iter()) {
        if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::Triples;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(0), uf.find(3));
        let labels = uf.labels();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
        assert_eq!(num_clusters(&labels), 3);
    }

    #[test]
    fn components_respect_threshold() {
        // 0-1 strong, 1-2 weak: threshold cuts the weak edge.
        let mut t = Triples::new(3, 3);
        t.push(0, 1, 0.9);
        t.push(1, 0, 0.9);
        t.push(1, 2, 1e-9);
        let m = t.to_csc();
        let labels = components_from_pattern(&m, 1e-6);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn same_partition_up_to_renaming() {
        assert!(same_partition(&[0, 0, 1, 1], &[5, 5, 2, 2]));
        assert!(!same_partition(&[0, 0, 1, 1], &[0, 1, 1, 1]));
        assert!(!same_partition(&[0, 0], &[0, 0, 0]));
        // Refinement in either direction is rejected.
        assert!(!same_partition(&[0, 0, 1, 1], &[0, 0, 0, 0]));
    }

    #[test]
    fn long_chains_collapse() {
        let mut uf = UnionFind::new(1000);
        for i in 0..999 {
            uf.union(i, i + 1);
        }
        assert_eq!(num_clusters(&uf.labels()), 1);
    }
}
