//! HipMCL-style Markov clustering on batched distributed SpGEMM.
//!
//! Markov clustering (MCL) iterates two operations on a column-stochastic
//! matrix: **expansion** (matrix squaring — the SpGEMM) and **inflation**
//! (elementwise power + column re-normalization), pruning small entries to
//! keep the matrix sparse. HipMCL \[19\] is its distributed incarnation;
//! the paper plugs BatchedSUMMA3D into it (Sec. V-C, Fig. 3) because the
//! expanded matrix `A²` does not fit in memory: each batch of columns is
//! **inflated, normalized and pruned inside the batched multiply**, before
//! the next batch is formed.
//!
//! Pruning is column-global (top-`select` entries of a column), and a
//! column of the product is split across the process column `P(:,j,k)`, so
//! the per-batch callback performs the same column-wise reductions HipMCL
//! performs: an allgather of per-column contributions along the process
//! column, charged to `Step::Other` (application time, not SpGEMM time —
//! matching how Fig. 3 reports only the SpGEMM steps).
//!
//! Two drivers share that callback:
//!
//! * The **session driver** (default, [`MclParams::session`]) keeps the
//!   iterate resident in an [`IterSession`] for the whole run — one
//!   `run_ranks` call, no per-iteration gather-to-root/re-scatter round
//!   trip, the symbolic sweep skipped when the budget is unlimited, and
//!   (under [`ExchangeMode::SparseFetch`] with [`MclParams::cache`]) fetch
//!   state memoized across iterations. Chaos is computed *distributed*,
//!   bit-identically to the serial metric, from the same per-column value
//!   allgather the pruning already performs.
//! * The **legacy driver** re-distributes every iteration (the shape the
//!   paper's Fig. 3 harness used). It is kept as the reference the session
//!   must match bit-for-bit, and for A/B measurement of what residency
//!   saves.
//!
//! Both produce identical clusterings: the session's in-place assembly and
//! fiber refresh reproduce the legacy gather + re-scatter exactly (see
//! `iter_session.rs` property tests).

use crate::components::components_from_pattern;
use spgemm_core::batched::{batched_summa3d, BatchConfig, BatchingStrategy};
use spgemm_core::dist::{gather_pieces, scatter, CPiece, DistKind};
use spgemm_core::{
    BackendKind, CoreError, ExchangeMode, IterSession, KernelStrategy, MemoryBudget, OverlapMode,
    SessionIterStats,
};
use spgemm_simgrid::{max_breakdown, run_ranks, Grid3D, Machine, Rank, Step, StepBreakdown};
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::{CscMatrix, Triples};
use std::sync::Arc;

/// Markov clustering parameters.
#[derive(Debug, Clone, Copy)]
pub struct MclParams {
    /// Inflation exponent (classic MCL uses 2.0).
    pub inflation: f64,
    /// Absolute pruning threshold applied after normalization.
    pub prune_threshold: f64,
    /// Keep at most this many entries per column (HipMCL's "select").
    pub select: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Stop when the chaos metric drops below this.
    pub chaos_threshold: f64,
    /// Simulated processes.
    pub p: usize,
    /// 3D grid layers.
    pub layers: usize,
    /// Machine cost model.
    pub machine: Machine,
    /// Local kernel generation.
    pub kernels: KernelStrategy,
    /// Memory budget (drives per-iteration batch counts).
    pub budget: MemoryBudget,
    /// Blocking or overlapped (pipelined) communication.
    pub overlap: OverlapMode,
    /// How stage operands move (dense broadcast vs sparsity-aware fetch).
    pub exchange: ExchangeMode,
    /// Modeled-clock or real-multithreaded local kernels.
    pub backend: BackendKind,
    /// Keep the iterate resident across iterations (the default). `false`
    /// selects the legacy gather/re-scatter driver.
    pub session: bool,
    /// Memoize SparseFetch state across session iterations (no effect on
    /// the legacy driver or under `DenseBcast`).
    pub cache: bool,
    /// Schedule-perturbation seed: `Some(seed)` injects deterministic
    /// wakeup-order jitter at every communication point (results must be
    /// bit-identical under any seed); `None` follows the
    /// `SPGEMM_PERTURB_SEED` environment variable.
    pub perturb: Option<u64>,
}

impl MclParams {
    /// Reasonable defaults on a `p`-rank, `l`-layer grid.
    pub fn new(p: usize, layers: usize) -> Self {
        MclParams {
            inflation: 2.0,
            prune_threshold: 1e-4,
            select: 64,
            max_iters: 30,
            chaos_threshold: 1e-3,
            p,
            layers,
            machine: Machine::knl(),
            kernels: KernelStrategy::New,
            budget: MemoryBudget::unlimited(),
            overlap: OverlapMode::default(),
            exchange: ExchangeMode::default(),
            backend: BackendKind::default(),
            session: true,
            cache: true,
            perturb: None,
        }
    }
}

/// Spawn the virtual cluster honouring [`MclParams::perturb`]: an explicit
/// seed wins; `None` falls back to the `SPGEMM_PERTURB_SEED` environment
/// variable (inside [`run_ranks`]).
fn run_cluster<R, F>(params: &MclParams, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Send + Sync,
{
    match params.perturb {
        Some(seed) => spgemm_simgrid::run_ranks_seeded(
            params.p,
            params.machine,
            spgemm_simgrid::CheckMode::default_mode(),
            Some(seed),
            f,
        ),
        None => run_ranks(params.p, params.machine, f),
    }
}

/// The batched-multiply configuration both drivers run under — every
/// policy knob threads through from [`MclParams`], so `--overlap`,
/// `--exchange` and `--backend` reach MCL like they reach plain SpGEMM.
fn batch_config(params: &MclParams) -> BatchConfig {
    BatchConfig {
        kernels: params.kernels,
        batching: BatchingStrategy::BlockCyclic,
        budget: params.budget,
        forced_batches: None,
        merge_schedule: Default::default(),
        overlap: params.overlap,
        exchange: params.exchange,
        backend: params.backend,
        algorithm: Default::default(),
    }
}

/// Per-iteration measurements.
#[derive(Debug, Clone, Copy)]
pub struct IterStats {
    /// Critical-path step breakdown of the iteration's SpGEMM.
    pub breakdown: StepBreakdown,
    /// Batches the symbolic step chose this iteration (cross-rank
    /// agreement is verified, not assumed).
    pub nbatches: usize,
    /// Chaos after the iteration (0 = fully converged).
    pub chaos: f64,
    /// Nonzeros in the pruned iterate.
    pub nnz: usize,
    /// Modeled communication bytes of the iteration, summed over ranks.
    pub modeled_bytes: u64,
    /// Operand-cache fetch rounds answered from cache, summed over ranks
    /// (session driver with `SparseFetch` + cache only).
    pub fetch_hits: u64,
    /// Operand-cache fetch rounds that shipped a fresh tile, summed.
    pub fetch_misses: u64,
    /// Iterate columns invalidated by this iteration's pruning, summed.
    pub invalidated_cols: u64,
}

/// Clustering result.
#[derive(Debug, Clone)]
pub struct MclResult {
    /// Cluster label per node.
    pub labels: Vec<usize>,
    /// Iterations executed.
    pub iterations: usize,
    /// Per-iteration stats (Fig. 3's bars).
    pub per_iter: Vec<IterStats>,
}

/// Add self-loops and column-normalize (the canonical MCL preprocessing).
pub fn mcl_init(adj: &CscMatrix<f64>) -> CscMatrix<f64> {
    let n = adj.nrows();
    assert_eq!(n, adj.ncols(), "MCL needs a square adjacency matrix");
    let mut t = Triples::with_capacity(n, n, adj.nnz() + n);
    let mut has_diag = vec![false; n];
    for (r, c, v) in adj.iter() {
        if r as usize == c {
            has_diag[c] = true;
        }
        t.push(r, c as u32, v.abs());
    }
    for (j, &h) in has_diag.iter().enumerate() {
        if !h {
            t.push(j as u32, j as u32, 1.0);
        }
    }
    let mut m = t.to_csc_dedup::<PlusTimesF64>();
    normalize_columns(&mut m);
    m
}

fn normalize_columns(m: &mut CscMatrix<f64>) {
    let sums = spgemm_sparse::ops::col_sums::<PlusTimesF64>(m);
    let factors: Vec<f64> = sums
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
        .collect();
    spgemm_sparse::ops::scale_cols(m, &factors);
}

/// MCL chaos metric: `max_j (max_i M_ij − Σ_i M_ij²)` over normalized
/// columns; 0 when every column is a single unit entry (fully converged).
pub fn chaos(m: &CscMatrix<f64>) -> f64 {
    let mut worst: f64 = 0.0;
    for j in 0..m.ncols() {
        let (_, vals) = m.col(j);
        if vals.is_empty() {
            continue;
        }
        let mx = vals.iter().copied().fold(0.0, f64::max);
        let sumsq: f64 = vals.iter().map(|v| v * v).sum();
        worst = worst.max(mx - sumsq);
    }
    worst
}

/// The per-batch HipMCL pruning: inflate, normalize, select top-k,
/// threshold, re-normalize. Column-global quantities are reduced along the
/// process column communicator.
///
/// Also returns the batch's contribution to the chaos metric, computed
/// from the per-column value allgather the top-k selection already paid
/// for. The reconstruction is **bit-identical** to running [`chaos`] on
/// the assembled global iterate: the column communicator's members are
/// ordered by process row, each member's values sit in ascending local row
/// order, so the filtered, re-scaled concatenation walks a column's kept
/// values in exactly the global storage order the serial metric folds
/// over.
fn prune_batch_piece(
    rank: &mut Rank,
    grid: &Grid3D,
    mut piece: CPiece<f64>,
    params: &MclParams,
) -> (CPiece<f64>, f64) {
    let ncols = piece.local.ncols();
    // Inflation (elementwise power) is local.
    let inflated = piece.local.map(|v| v.abs().powf(params.inflation));

    // Column sums across the process column.
    let my_sums = spgemm_sparse::ops::col_sums::<PlusTimesF64>(&inflated);
    let all_sums = rank.allgather(&grid.col, my_sums, ncols * 8, Step::Other);
    let mut sums = vec![0.0f64; ncols];
    for contrib in &all_sums {
        for (s, &c) in sums.iter_mut().zip(contrib.iter()) {
            *s += c;
        }
    }

    // Normalize locally with the global sums.
    let mut normalized = inflated;
    let factors: Vec<f64> = sums
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
        .collect();
    spgemm_sparse::ops::scale_cols(&mut normalized, &factors);

    // Column-global top-`select` thresholds: gather every rank's values per
    // column, find the k-th largest.
    let my_vals: Vec<Vec<f64>> = (0..ncols).map(|j| normalized.col(j).1.to_vec()).collect();
    let bytes: usize = normalized.nnz() * 8;
    let all_vals = rank.allgather(&grid.col, my_vals, bytes, Step::Other);
    let mut kth = vec![0.0f64; ncols];
    let mut scratch: Vec<f64> = Vec::new();
    for (j, kth_j) in kth.iter_mut().enumerate() {
        scratch.clear();
        for contrib in &all_vals {
            scratch.extend_from_slice(&contrib[j]);
        }
        if scratch.len() > params.select {
            scratch.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
            *kth_j = scratch[params.select - 1];
        }
    }

    // Prune: keep entries that are both above the column's top-k cut and
    // above the absolute threshold... then re-normalize the survivors.
    normalized.retain(|_, j, v| v >= kth[j] && v >= params.prune_threshold);
    let my_sums2 = spgemm_sparse::ops::col_sums::<PlusTimesF64>(&normalized);
    let all_sums2 = rank.allgather(&grid.col, my_sums2, ncols * 8, Step::Other);
    let mut sums2 = vec![0.0f64; ncols];
    for contrib in &all_sums2 {
        for (s, &c) in sums2.iter_mut().zip(contrib.iter()) {
            *s += c;
        }
    }
    let factors2: Vec<f64> = sums2
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
        .collect();
    spgemm_sparse::ops::scale_cols(&mut normalized, &factors2);

    // Chaos of this batch's columns, from the already-gathered values:
    // replay the prune predicate and the survivor re-scaling on the
    // member-ordered concatenation (= global storage order; see above).
    let mut batch_chaos: f64 = 0.0;
    for j in 0..ncols {
        let mut mx: f64 = 0.0;
        let mut sumsq: f64 = 0.0;
        let mut any = false;
        for contrib in &all_vals {
            for &v in &contrib[j] {
                if v >= kth[j] && v >= params.prune_threshold {
                    let w = v * factors2[j];
                    mx = mx.max(w);
                    sumsq += w * w;
                    any = true;
                }
            }
        }
        if any {
            batch_chaos = batch_chaos.max(mx - sumsq);
        }
    }

    piece.local = normalized;
    (piece, batch_chaos)
}

/// One legacy expansion+inflation+pruning iteration on the virtual
/// cluster: scatter the iterate, multiply-and-prune, gather it back.
/// Returns the new (gathered) iterate and the iteration's measurements.
///
/// Takes the iterate as an `Arc` so the simulation threads share one copy
/// instead of deep-cloning the whole matrix every iteration.
fn mcl_iteration(
    m: &Arc<CscMatrix<f64>>,
    params: &MclParams,
) -> Result<(CscMatrix<f64>, StepBreakdown, usize, u64), CoreError> {
    let n = m.nrows();
    let m_arc = Arc::clone(m);
    let params = *params;
    let results = run_cluster(&params, move |rank| {
        let grid = Grid3D::new(rank, params.layers);
        let da = scatter(
            rank,
            &grid,
            DistKind::AStyle,
            (rank.rank() == 0).then(|| Arc::clone(&m_arc)),
        );
        let db = scatter(
            rank,
            &grid,
            DistKind::BStyle,
            (rank.rank() == 0).then(|| Arc::clone(&m_arc)),
        );
        let cfg = batch_config(&params);
        let grid_ref = &grid;
        let result = batched_summa3d::<PlusTimesF64>(rank, &grid, &da, &db, &cfg, |rank, out| {
            Some(prune_batch_piece(rank, grid_ref, out.piece, &params).0)
        })?;
        let nbatches = result.nbatches;
        let gathered = gather_pieces(rank, &grid.world, result.pieces, n, n);
        Ok::<_, CoreError>((gathered, *rank.clock().breakdown(), nbatches))
    });

    let mut new_m = None;
    let mut breakdowns = Vec::with_capacity(params.p);
    let mut modeled_bytes = 0u64;
    let mut nbatches: Option<usize> = None;
    for (i, r) in results.into_iter().enumerate() {
        let (c, bd, nb) = r?;
        modeled_bytes += bd.bytes_total();
        breakdowns.push(bd);
        // The symbolic batch count must be an SPMD-agreed value; taking
        // any one rank's answer would silently mask a divergence.
        match nbatches {
            None => nbatches = Some(nb),
            Some(prev) if prev != nb => {
                return Err(CoreError::Config(format!(
                    "ranks disagree on the batch count: rank 0 chose {prev}, rank {i} chose {nb}"
                )))
            }
            Some(_) => {}
        }
        if i == 0 {
            new_m = c;
        }
    }
    Ok((
        new_m.expect("root must gather the iterate"),
        max_breakdown(&breakdowns),
        nbatches.expect("at least one rank ran"),
        modeled_bytes,
    ))
}

/// Run Markov clustering on `adj` (symmetric similarity matrix) with the
/// driver [`MclParams::session`] selects. Both drivers produce identical
/// clusterings and per-iteration chaos values.
pub fn markov_cluster(adj: &CscMatrix<f64>, params: &MclParams) -> Result<MclResult, CoreError> {
    if params.session {
        markov_cluster_session(adj, params)
    } else {
        markov_cluster_legacy(adj, params)
    }
}

fn markov_cluster_legacy(
    adj: &CscMatrix<f64>,
    params: &MclParams,
) -> Result<MclResult, CoreError> {
    let mut m = Arc::new(mcl_init(adj));
    let mut per_iter = Vec::new();
    let mut iterations = 0;
    for _ in 0..params.max_iters {
        let (next, breakdown, nbatches, modeled_bytes) = mcl_iteration(&m, params)?;
        m = Arc::new(next);
        iterations += 1;
        let ch = chaos(&m);
        per_iter.push(IterStats {
            breakdown,
            nbatches,
            chaos: ch,
            nnz: m.nnz(),
            modeled_bytes,
            fetch_hits: 0,
            fetch_misses: 0,
            invalidated_cols: 0,
        });
        if ch < params.chaos_threshold {
            break;
        }
    }
    let labels = components_from_pattern(&m, params.prune_threshold);
    Ok(MclResult {
        labels,
        iterations,
        per_iter,
    })
}

/// The resident-iterate driver: one `run_ranks` call hosts the whole MCL
/// loop inside an [`IterSession`]. Convergence is decided on every rank
/// from the distributed chaos (one world all-reduce per iteration), so all
/// ranks break in lock-step; the iterate is gathered to root exactly once,
/// at the end, for component labeling.
fn markov_cluster_session(
    adj: &CscMatrix<f64>,
    params: &MclParams,
) -> Result<MclResult, CoreError> {
    let m0 = mcl_init(adj);
    let m_arc = Arc::new(m0);
    let params = *params;
    type RankIters = Vec<(SessionIterStats, f64, u64)>;
    let results = run_cluster(&params, move |rank| {
        let grid = Grid3D::new(rank, params.layers);
        let mut sess = IterSession::<PlusTimesF64>::new(
            rank,
            &grid,
            (rank.rank() == 0).then(|| Arc::clone(&m_arc)),
            batch_config(&params),
            params.cache,
        )?;
        let mut iters: RankIters = Vec::new();
        for _ in 0..params.max_iters {
            let mut iter_chaos: f64 = 0.0;
            let grid_ref = &grid;
            let stats = sess.step(rank, &grid, |rank, out| {
                let (piece, bc) = prune_batch_piece(rank, grid_ref, out.piece, &params);
                iter_chaos = iter_chaos.max(bc);
                Some(piece)
            })?;
            // Every process column computed its own columns' chaos; the
            // global metric (f64 max is exact) decides convergence on all
            // ranks simultaneously.
            let ch = rank.allreduce(&grid.world, iter_chaos, f64::max, 8, Step::Other);
            let nnz = rank.allreduce(&grid.world, stats.local_nnz, |a, b| a + b, 8, Step::Other);
            iters.push((stats, ch, nnz));
            if ch < params.chaos_threshold {
                break;
            }
        }
        let gathered = sess.gather(rank, &grid);
        Ok::<_, CoreError>((gathered, iters))
    });

    let mut final_m: Option<CscMatrix<f64>> = None;
    let mut per_rank: Vec<RankIters> = Vec::with_capacity(params.p);
    for (i, r) in results.into_iter().enumerate() {
        let (g, iters) = r?;
        if i == 0 {
            final_m = g;
        }
        per_rank.push(iters);
    }
    let iterations = per_rank[0].len();
    let mut per_iter = Vec::with_capacity(iterations);
    for t in 0..iterations {
        let mut bds = Vec::with_capacity(params.p);
        let (mut hits, mut misses, mut inval, mut bytes) = (0u64, 0u64, 0u64, 0u64);
        let mut nbatches: Option<usize> = None;
        for (ri, rank_iters) in per_rank.iter().enumerate() {
            debug_assert_eq!(rank_iters.len(), iterations, "SPMD break divergence");
            let (s, _, _) = &rank_iters[t];
            bds.push(s.breakdown);
            hits += s.cache.hits;
            misses += s.cache.misses;
            inval += s.cache.invalidated_cols;
            bytes += s.breakdown.bytes_total();
            match nbatches {
                None => nbatches = Some(s.nbatches),
                Some(prev) if prev != s.nbatches => {
                    return Err(CoreError::Config(format!(
                        "ranks disagree on the batch count: rank 0 chose {prev}, \
                         rank {ri} chose {}",
                        s.nbatches
                    )))
                }
                Some(_) => {}
            }
        }
        let (_, ch, nnz) = per_rank[0][t];
        per_iter.push(IterStats {
            breakdown: max_breakdown(&bds),
            nbatches: nbatches.expect("at least one rank ran"),
            chaos: ch,
            nnz: nnz as usize,
            modeled_bytes: bytes,
            fetch_hits: hits,
            fetch_misses: misses,
            invalidated_cols: inval,
        });
    }
    let m = final_m.expect("root gathers the final iterate");
    let labels = components_from_pattern(&m, params.prune_threshold);
    Ok(MclResult {
        labels,
        iterations,
        per_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{num_clusters, same_partition};
    use spgemm_sparse::gen::clustered_similarity;

    #[test]
    fn init_is_column_stochastic_with_diagonal() {
        let adj = clustered_similarity(3, 10, 5, 1, 91);
        let m = mcl_init(&adj);
        for j in 0..m.ncols() {
            let (rows, vals) = m.col(j);
            assert!(rows.contains(&(j as u32)), "self loop at {j}");
            let s: f64 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "column {j} sums to {s}");
        }
    }

    #[test]
    fn chaos_zero_on_converged_matrix() {
        let m = CscMatrix::identity(5);
        assert_eq!(chaos(&m), 0.0);
        let spread = mcl_init(&clustered_similarity(2, 8, 4, 1, 92));
        assert!(chaos(&spread) > 0.01);
    }

    #[test]
    fn recovers_planted_clusters() {
        // 4 dense communities, weak inter-links: MCL must cut them apart.
        let nclusters = 4;
        let size = 8;
        let adj = clustered_similarity(nclusters, size, 7, 1, 93);
        let params = MclParams::new(4, 1);
        let result = markov_cluster(&adj, &params).unwrap();
        let expected: Vec<usize> = (0..nclusters * size).map(|v| v / size).collect();
        assert!(
            same_partition(&result.labels, &expected),
            "labels {:?} (k = {}) should match the planted partition",
            result.labels,
            num_clusters(&result.labels)
        );
        assert!(result.iterations >= 2);
    }

    #[test]
    fn distributed_configs_agree() {
        let adj = clustered_similarity(3, 8, 5, 1, 94);
        let base = markov_cluster(&adj, &MclParams::new(1, 1)).unwrap();
        for (p, l) in [(4usize, 1usize), (4, 4), (16, 4)] {
            let other = markov_cluster(&adj, &MclParams::new(p, l)).unwrap();
            assert!(
                same_partition(&base.labels, &other.labels),
                "p={p} l={l} changed the clustering"
            );
        }
    }

    #[test]
    fn session_and_legacy_drivers_match_bit_for_bit() {
        let adj = clustered_similarity(3, 8, 5, 1, 96);
        for (p, l) in [(4usize, 1usize), (16, 4)] {
            for exchange in [ExchangeMode::DenseBcast, ExchangeMode::SparseFetch] {
                let mut sp = MclParams::new(p, l);
                sp.exchange = exchange;
                let mut lp = sp;
                lp.session = false;
                let sess = markov_cluster(&adj, &sp).unwrap();
                let legacy = markov_cluster(&adj, &lp).unwrap();
                assert_eq!(sess.labels, legacy.labels, "p={p} l={l} {exchange:?}");
                assert_eq!(sess.iterations, legacy.iterations);
                for (a, b) in sess.per_iter.iter().zip(&legacy.per_iter) {
                    // Distributed chaos must be *bit*-identical to the
                    // serial metric on the gathered iterate.
                    assert_eq!(a.chaos.to_bits(), b.chaos.to_bits());
                    assert_eq!(a.nnz, b.nnz);
                    assert_eq!(a.nbatches, b.nbatches);
                }
            }
        }
    }

    #[test]
    fn session_cache_warms_on_stable_iterate() {
        // A star graph collapses in a few iterations to the idempotent
        // projection "every column ↦ e_0", after which the iterate stops
        // changing: late iterations must answer every non-empty fetch
        // round from the cross-iteration cache and ship fewer bytes.
        let n = 16;
        let mut t = Triples::with_capacity(n, n, n - 1);
        for j in 1..n as u32 {
            t.push(0, j, 1.0);
        }
        let adj = t.to_csc_dedup::<PlusTimesF64>();
        let mut params = MclParams::new(4, 1);
        params.exchange = ExchangeMode::SparseFetch;
        params.chaos_threshold = 0.0; // chaos hits exactly 0; keep going
        params.max_iters = 8;
        let result = markov_cluster(&adj, &params).unwrap();
        assert_eq!(result.iterations, 8);
        let it = &result.per_iter;
        assert!(it[0].fetch_misses > 0, "cold iteration must miss");
        assert_eq!(it[0].fetch_hits, 0);
        let last = it.last().unwrap();
        assert_eq!(last.fetch_misses, 0, "converged iteration must not re-fetch");
        assert!(last.fetch_hits > 0, "converged iteration must hit");
        assert_eq!(last.invalidated_cols, 0, "iterate is a fixed point");
        assert!(
            last.modeled_bytes < it[0].modeled_bytes,
            "warm {} !< cold {}",
            last.modeled_bytes,
            it[0].modeled_bytes
        );
        // Every node joins the hub's single cluster.
        assert_eq!(num_clusters(&result.labels), 1);
    }

    #[test]
    fn tight_budget_forces_batching_but_same_answer() {
        let adj = clustered_similarity(3, 8, 5, 1, 95);
        let loose = markov_cluster(&adj, &MclParams::new(4, 1)).unwrap();
        let mut params = MclParams::new(4, 1);
        // Budget sized to inputs plus a sliver: forces b > 1 in early iters.
        let inputs = mcl_init(&adj).nnz() * 24 * 2;
        params.budget = MemoryBudget::new(inputs * 3);
        let tight = markov_cluster(&adj, &params).unwrap();
        assert!(
            tight.per_iter[0].nbatches > 1,
            "expected batching, got b = {}",
            tight.per_iter[0].nbatches
        );
        assert!(same_partition(&loose.labels, &tight.labels));
    }
}
