//! HipMCL-style Markov clustering on batched distributed SpGEMM.
//!
//! Markov clustering (MCL) iterates two operations on a column-stochastic
//! matrix: **expansion** (matrix squaring — the SpGEMM) and **inflation**
//! (elementwise power + column re-normalization), pruning small entries to
//! keep the matrix sparse. HipMCL \[19\] is its distributed incarnation;
//! the paper plugs BatchedSUMMA3D into it (Sec. V-C, Fig. 3) because the
//! expanded matrix `A²` does not fit in memory: each batch of columns is
//! **inflated, normalized and pruned inside the batched multiply**, before
//! the next batch is formed.
//!
//! Pruning is column-global (top-`select` entries of a column), and a
//! column of the product is split across the process column `P(:,j,k)`, so
//! the per-batch callback performs the same column-wise reductions HipMCL
//! performs: an allgather of per-column contributions along the process
//! column, charged to `Step::Other` (application time, not SpGEMM time —
//! matching how Fig. 3 reports only the SpGEMM steps).

use crate::components::components_from_pattern;
use spgemm_core::batched::{batched_summa3d, BatchConfig, BatchingStrategy};
use spgemm_core::dist::{gather_pieces, scatter, CPiece, DistKind};
use spgemm_core::{CoreError, KernelStrategy, MemoryBudget};
use spgemm_simgrid::{max_breakdown, run_ranks, Grid3D, Machine, Rank, Step, StepBreakdown};
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::{CscMatrix, Triples};
use std::sync::Arc;

/// Markov clustering parameters.
#[derive(Debug, Clone, Copy)]
pub struct MclParams {
    /// Inflation exponent (classic MCL uses 2.0).
    pub inflation: f64,
    /// Absolute pruning threshold applied after normalization.
    pub prune_threshold: f64,
    /// Keep at most this many entries per column (HipMCL's "select").
    pub select: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Stop when the chaos metric drops below this.
    pub chaos_threshold: f64,
    /// Simulated processes.
    pub p: usize,
    /// 3D grid layers.
    pub layers: usize,
    /// Machine cost model.
    pub machine: Machine,
    /// Local kernel generation.
    pub kernels: KernelStrategy,
    /// Memory budget (drives per-iteration batch counts).
    pub budget: MemoryBudget,
}

impl MclParams {
    /// Reasonable defaults on a `p`-rank, `l`-layer grid.
    pub fn new(p: usize, layers: usize) -> Self {
        MclParams {
            inflation: 2.0,
            prune_threshold: 1e-4,
            select: 64,
            max_iters: 30,
            chaos_threshold: 1e-3,
            p,
            layers,
            machine: Machine::knl(),
            kernels: KernelStrategy::New,
            budget: MemoryBudget::unlimited(),
        }
    }
}

/// Per-iteration measurements.
#[derive(Debug, Clone, Copy)]
pub struct IterStats {
    /// Critical-path step breakdown of the iteration's SpGEMM.
    pub breakdown: StepBreakdown,
    /// Batches the symbolic step chose this iteration.
    pub nbatches: usize,
    /// Chaos after the iteration (0 = fully converged).
    pub chaos: f64,
    /// Nonzeros in the pruned iterate.
    pub nnz: usize,
}

/// Clustering result.
#[derive(Debug, Clone)]
pub struct MclResult {
    /// Cluster label per node.
    pub labels: Vec<usize>,
    /// Iterations executed.
    pub iterations: usize,
    /// Per-iteration stats (Fig. 3's bars).
    pub per_iter: Vec<IterStats>,
}

/// Add self-loops and column-normalize (the canonical MCL preprocessing).
pub fn mcl_init(adj: &CscMatrix<f64>) -> CscMatrix<f64> {
    let n = adj.nrows();
    assert_eq!(n, adj.ncols(), "MCL needs a square adjacency matrix");
    let mut t = Triples::with_capacity(n, n, adj.nnz() + n);
    let mut has_diag = vec![false; n];
    for (r, c, v) in adj.iter() {
        if r as usize == c {
            has_diag[c] = true;
        }
        t.push(r, c as u32, v.abs());
    }
    for (j, &h) in has_diag.iter().enumerate() {
        if !h {
            t.push(j as u32, j as u32, 1.0);
        }
    }
    let mut m = t.to_csc_dedup::<PlusTimesF64>();
    normalize_columns(&mut m);
    m
}

fn normalize_columns(m: &mut CscMatrix<f64>) {
    let sums = spgemm_sparse::ops::col_sums::<PlusTimesF64>(m);
    let factors: Vec<f64> = sums
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
        .collect();
    spgemm_sparse::ops::scale_cols(m, &factors);
}

/// MCL chaos metric: `max_j (max_i M_ij − Σ_i M_ij²)` over normalized
/// columns; 0 when every column is a single unit entry (fully converged).
pub fn chaos(m: &CscMatrix<f64>) -> f64 {
    let mut worst: f64 = 0.0;
    for j in 0..m.ncols() {
        let (_, vals) = m.col(j);
        if vals.is_empty() {
            continue;
        }
        let mx = vals.iter().copied().fold(0.0, f64::max);
        let sumsq: f64 = vals.iter().map(|v| v * v).sum();
        worst = worst.max(mx - sumsq);
    }
    worst
}

/// The per-batch HipMCL pruning: inflate, normalize, select top-k,
/// threshold, re-normalize. Column-global quantities are reduced along the
/// process column communicator.
fn prune_batch_piece(
    rank: &mut Rank,
    grid: &Grid3D,
    mut piece: CPiece<f64>,
    params: &MclParams,
) -> CPiece<f64> {
    let ncols = piece.local.ncols();
    // Inflation (elementwise power) is local.
    let inflated = piece.local.map(|v| v.abs().powf(params.inflation));

    // Column sums across the process column.
    let my_sums = spgemm_sparse::ops::col_sums::<PlusTimesF64>(&inflated);
    let all_sums = rank.allgather(&grid.col, my_sums, ncols * 8, Step::Other);
    let mut sums = vec![0.0f64; ncols];
    for contrib in &all_sums {
        for (s, &c) in sums.iter_mut().zip(contrib.iter()) {
            *s += c;
        }
    }

    // Normalize locally with the global sums.
    let mut normalized = inflated;
    let factors: Vec<f64> = sums
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
        .collect();
    spgemm_sparse::ops::scale_cols(&mut normalized, &factors);

    // Column-global top-`select` thresholds: gather every rank's values per
    // column, find the k-th largest.
    let my_vals: Vec<Vec<f64>> = (0..ncols).map(|j| normalized.col(j).1.to_vec()).collect();
    let bytes: usize = normalized.nnz() * 8;
    let all_vals = rank.allgather(&grid.col, my_vals, bytes, Step::Other);
    let mut kth = vec![0.0f64; ncols];
    let mut scratch: Vec<f64> = Vec::new();
    for (j, kth_j) in kth.iter_mut().enumerate() {
        scratch.clear();
        for contrib in &all_vals {
            scratch.extend_from_slice(&contrib[j]);
        }
        if scratch.len() > params.select {
            scratch.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap());
            *kth_j = scratch[params.select - 1];
        }
    }

    // Prune: keep entries that are both above the column's top-k cut and
    // above the absolute threshold... then re-normalize the survivors.
    normalized.retain(|_, j, v| v >= kth[j] && v >= params.prune_threshold);
    let my_sums2 = spgemm_sparse::ops::col_sums::<PlusTimesF64>(&normalized);
    let all_sums2 = rank.allgather(&grid.col, my_sums2, ncols * 8, Step::Other);
    let mut sums2 = vec![0.0f64; ncols];
    for contrib in &all_sums2 {
        for (s, &c) in sums2.iter_mut().zip(contrib.iter()) {
            *s += c;
        }
    }
    let factors2: Vec<f64> = sums2
        .iter()
        .map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 })
        .collect();
    spgemm_sparse::ops::scale_cols(&mut normalized, &factors2);

    piece.local = normalized;
    piece
}

/// One expansion+inflation+pruning iteration on the virtual cluster.
/// Returns the new (gathered) iterate and the iteration's measurements.
fn mcl_iteration(
    m: &CscMatrix<f64>,
    params: &MclParams,
) -> Result<(CscMatrix<f64>, StepBreakdown, usize), CoreError> {
    let n = m.nrows();
    let m_arc = Arc::new(m.clone());
    let params = *params;
    let results = run_ranks(params.p, params.machine, move |rank| {
        let grid = Grid3D::new(rank, params.layers);
        let da = scatter(
            rank,
            &grid,
            DistKind::AStyle,
            (rank.rank() == 0).then(|| Arc::clone(&m_arc)),
        );
        let db = scatter(
            rank,
            &grid,
            DistKind::BStyle,
            (rank.rank() == 0).then(|| Arc::clone(&m_arc)),
        );
        let cfg = BatchConfig {
            kernels: params.kernels,
            batching: BatchingStrategy::BlockCyclic,
            budget: params.budget,
            forced_batches: None,
            merge_schedule: Default::default(),
            overlap: Default::default(),
            exchange: Default::default(),
            backend: Default::default(),
        };
        let grid_ref = &grid;
        let result = batched_summa3d::<PlusTimesF64>(rank, &grid, &da, &db, &cfg, |rank, out| {
            Some(prune_batch_piece(rank, grid_ref, out.piece, &params))
        })?;
        let nbatches = result.nbatches;
        let gathered = gather_pieces(rank, &grid.world, result.pieces, n, n);
        Ok::<_, CoreError>((gathered, *rank.clock().breakdown(), nbatches))
    });

    let mut new_m = None;
    let mut breakdowns = Vec::with_capacity(params.p);
    let mut nbatches = 1;
    for (i, r) in results.into_iter().enumerate() {
        let (c, bd, nb) = r?;
        breakdowns.push(bd);
        nbatches = nb;
        if i == 0 {
            new_m = c;
        }
    }
    Ok((
        new_m.expect("root must gather the iterate"),
        max_breakdown(&breakdowns),
        nbatches,
    ))
}

/// Run Markov clustering on `adj` (symmetric similarity matrix).
pub fn markov_cluster(adj: &CscMatrix<f64>, params: &MclParams) -> Result<MclResult, CoreError> {
    let mut m = mcl_init(adj);
    let mut per_iter = Vec::new();
    let mut iterations = 0;
    for _ in 0..params.max_iters {
        let (next, breakdown, nbatches) = mcl_iteration(&m, params)?;
        m = next;
        iterations += 1;
        let ch = chaos(&m);
        per_iter.push(IterStats {
            breakdown,
            nbatches,
            chaos: ch,
            nnz: m.nnz(),
        });
        if ch < params.chaos_threshold {
            break;
        }
    }
    let labels = components_from_pattern(&m, params.prune_threshold);
    Ok(MclResult {
        labels,
        iterations,
        per_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{num_clusters, same_partition};
    use spgemm_sparse::gen::clustered_similarity;

    #[test]
    fn init_is_column_stochastic_with_diagonal() {
        let adj = clustered_similarity(3, 10, 5, 1, 91);
        let m = mcl_init(&adj);
        for j in 0..m.ncols() {
            let (rows, vals) = m.col(j);
            assert!(rows.contains(&(j as u32)), "self loop at {j}");
            let s: f64 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "column {j} sums to {s}");
        }
    }

    #[test]
    fn chaos_zero_on_converged_matrix() {
        let m = CscMatrix::identity(5);
        assert_eq!(chaos(&m), 0.0);
        let spread = mcl_init(&clustered_similarity(2, 8, 4, 1, 92));
        assert!(chaos(&spread) > 0.01);
    }

    #[test]
    fn recovers_planted_clusters() {
        // 4 dense communities, weak inter-links: MCL must cut them apart.
        let nclusters = 4;
        let size = 8;
        let adj = clustered_similarity(nclusters, size, 7, 1, 93);
        let params = MclParams::new(4, 1);
        let result = markov_cluster(&adj, &params).unwrap();
        let expected: Vec<usize> = (0..nclusters * size).map(|v| v / size).collect();
        assert!(
            same_partition(&result.labels, &expected),
            "labels {:?} (k = {}) should match the planted partition",
            result.labels,
            num_clusters(&result.labels)
        );
        assert!(result.iterations >= 2);
    }

    #[test]
    fn distributed_configs_agree() {
        let adj = clustered_similarity(3, 8, 5, 1, 94);
        let base = markov_cluster(&adj, &MclParams::new(1, 1)).unwrap();
        for (p, l) in [(4usize, 1usize), (4, 4), (16, 4)] {
            let other = markov_cluster(&adj, &MclParams::new(p, l)).unwrap();
            assert!(
                same_partition(&base.labels, &other.labels),
                "p={p} l={l} changed the clustering"
            );
        }
    }

    #[test]
    fn tight_budget_forces_batching_but_same_answer() {
        let adj = clustered_similarity(3, 8, 5, 1, 95);
        let loose = markov_cluster(&adj, &MclParams::new(4, 1)).unwrap();
        let mut params = MclParams::new(4, 1);
        // Budget sized to inputs plus a sliver: forces b > 1 in early iters.
        let inputs = mcl_init(&adj).nnz() * 24 * 2;
        params.budget = MemoryBudget::new(inputs * 3);
        let tight = markov_cluster(&adj, &params).unwrap();
        assert!(
            tight.per_iter[0].nbatches > 1,
            "expected batching, got b = {}",
            tight.per_iter[0].nbatches
        );
        assert!(same_partition(&loose.labels, &tight.labels));
    }
}
