//! Level-synchronous breadth-first search via semiring SpGEMM.
//!
//! A demonstration of the paper's Sec. II-A point that the algorithms run
//! over arbitrary semirings: BFS is iterated multiplication of the
//! adjacency matrix with a frontier "matrix" over `(∨, ∧)`.
//! The frontier is an `n × s` boolean matrix (one column per concurrent
//! source), so a multi-source BFS is a single batched SpGEMM per level —
//! the GraphBLAS formulation, running here on the distributed stack.

use spgemm_core::{run_spgemm, CoreError, RunConfig};
use spgemm_sparse::semiring::BoolOrAnd;
use spgemm_sparse::{CscMatrix, Triples};

/// Configuration for distributed BFS.
#[derive(Debug, Clone, Copy)]
pub struct BfsConfig {
    /// The distributed-run configuration used for each level's SpGEMM.
    pub run: RunConfig,
    /// Level cap (defaults to `n` via [`BfsConfig::new`]'s caller passing 0).
    pub max_levels: usize,
}

impl BfsConfig {
    /// BFS on a `p`-rank, `l`-layer grid.
    pub fn new(p: usize, layers: usize) -> Self {
        BfsConfig {
            run: RunConfig::new(p, layers),
            max_levels: usize::MAX,
        }
    }
}

/// Multi-source BFS levels: `levels[s][v]` is the hop distance from
/// `sources[s]` to `v`, or `None` if unreachable.
pub fn bfs_levels(
    adj: &CscMatrix<bool>,
    sources: &[u32],
    cfg: &BfsConfig,
) -> Result<Vec<Vec<Option<u32>>>, CoreError> {
    let n = adj.nrows();
    if adj.ncols() != n {
        return Err(CoreError::Config("BFS needs a square adjacency matrix".into()));
    }
    // Entry (r, c) encodes edge c -> r, so `A · frontier` reaches the
    // out-neighbours of the frontier (GraphBLAS convention).
    let s = sources.len();

    let mut levels: Vec<Vec<Option<u32>>> = vec![vec![None; n]; s];
    let mut frontier = {
        let mut t = Triples::new(n, s);
        for (c, &src) in sources.iter().enumerate() {
            t.push(src, c as u32, true);
            levels[c][src as usize] = Some(0);
        }
        t.to_csc()
    };

    let mut level = 0u32;
    while frontier.nnz() > 0 && (level as usize) < cfg.max_levels {
        level += 1;
        let out = run_spgemm::<BoolOrAnd>(&cfg.run, adj, &frontier)?;
        let reached = out.c.expect("BFS keeps the product");
        // Next frontier: newly discovered vertices only.
        let mut t = Triples::new(n, s);
        for (v, c, _) in reached.iter() {
            if levels[c][v as usize].is_none() {
                levels[c][v as usize] = Some(level);
                t.push(v, c as u32, true);
            }
        }
        frontier = t.to_csc();
    }
    Ok(levels)
}

/// Serial reference BFS for tests.
pub fn bfs_serial(adj: &CscMatrix<bool>, source: u32) -> Vec<Option<u32>> {
    let n = adj.nrows();
    // Entry (r, c) is edge c -> r, matching the distributed formulation.
    let mut nbrs: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (r, c, _) in adj.iter() {
        nbrs[c].push(r);
    }
    let mut level = vec![None; n];
    let mut queue = std::collections::VecDeque::new();
    level[source as usize] = Some(0u32);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let next = level[u as usize].unwrap() + 1;
        for &v in &nbrs[u as usize] {
            if level[v as usize].is_none() {
                level[v as usize] = Some(next);
                queue.push_back(v);
            }
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::BoolOrAnd as B;

    fn path_graph(n: usize) -> CscMatrix<bool> {
        // Edge i -> i+1 stored as entry (i+1, i).
        let mut t = Triples::new(n, n);
        for i in 0..n - 1 {
            t.push((i + 1) as u32, i as u32, true);
        }
        t.to_csc()
    }

    #[test]
    fn path_graph_levels_are_distances() {
        let adj = path_graph(10);
        let levels = bfs_levels(&adj, &[0], &BfsConfig::new(4, 1)).unwrap();
        for (v, &lvl) in levels[0].iter().enumerate() {
            assert_eq!(lvl, Some(v as u32));
        }
    }

    #[test]
    fn matches_serial_on_random_graph() {
        let adj = er_random::<B>(60, 60, 3, 401);
        let expected = bfs_serial(&adj, 7);
        for (p, l) in [(1usize, 1usize), (4, 4), (16, 4)] {
            let levels = bfs_levels(&adj, &[7], &BfsConfig::new(p, l)).unwrap();
            assert_eq!(levels[0], expected, "p={p} l={l}");
        }
    }

    #[test]
    fn multi_source_equals_independent_searches() {
        let adj = er_random::<B>(50, 50, 3, 402);
        let sources = [3u32, 25, 49];
        let multi = bfs_levels(&adj, &sources, &BfsConfig::new(4, 4)).unwrap();
        for (c, &s) in sources.iter().enumerate() {
            assert_eq!(multi[c], bfs_serial(&adj, s), "source {s}");
        }
    }

    #[test]
    fn unreachable_vertices_stay_none() {
        // Two components: 0-1-2 and 3-4.
        let mut t = Triples::new(5, 5);
        t.push(1, 0, true);
        t.push(2, 1, true);
        t.push(4, 3, true);
        let adj = t.to_csc();
        let levels = bfs_levels(&adj, &[0], &BfsConfig::new(4, 1)).unwrap();
        assert_eq!(levels[0][2], Some(2));
        assert_eq!(levels[0][3], None);
        assert_eq!(levels[0][4], None);
    }

    #[test]
    fn level_cap_truncates() {
        let adj = path_graph(10);
        let mut cfg = BfsConfig::new(4, 1);
        cfg.max_levels = 3;
        let levels = bfs_levels(&adj, &[0], &cfg).unwrap();
        assert_eq!(levels[0][3], Some(3));
        assert_eq!(levels[0][4], None, "beyond the level cap");
    }
}
