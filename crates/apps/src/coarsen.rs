//! Heavy-connectivity matching for multilevel hypergraph coarsening.
//!
//! The paper's introduction names this as a canonical batched-`A·Aᵀ`
//! consumer: before coarsening, a multilevel partitioner (Zoltan \[18\])
//! counts shared hyperedges between all vertex pairs (`A·Aᵀ` on the
//! vertex × hyperedge incidence matrix) and runs a matching on the counts
//! — and "due to memory limitations and the higher density of the product,
//! this SpGEMM is done in batches". Exactly that is implemented here:
//! every batch of `W = A·Aᵀ` is reduced *inside the batched multiply* to
//! one candidate (best partner per vertex column) and discarded; only the
//! tiny candidate lists survive, never the full product.

use spgemm_core::batched::{batched_summa3d, BatchConfig, BatchingStrategy};
use spgemm_core::dist::{scatter, DistKind};
use spgemm_core::{CoreError, KernelStrategy, MemoryBudget};
use spgemm_simgrid::{max_breakdown, run_ranks, Grid3D, Machine, Step, StepBreakdown};
use spgemm_sparse::ops::transpose;
use spgemm_sparse::semiring::PlusTimesU64;
use spgemm_sparse::CscMatrix;
use std::sync::Arc;

/// Configuration for heavy-connectivity matching.
#[derive(Debug, Clone, Copy)]
pub struct CoarsenConfig {
    /// Minimum shared hyperedges for a pair to be matchable.
    pub min_shared: u64,
    /// Simulated processes.
    pub p: usize,
    /// Grid layers.
    pub layers: usize,
    /// Machine model.
    pub machine: Machine,
    /// Memory budget: drives how many batches the product needs.
    pub budget: MemoryBudget,
    /// Local kernels.
    pub kernels: KernelStrategy,
}

impl CoarsenConfig {
    /// Defaults on a `p`-rank, `l`-layer grid.
    pub fn new(min_shared: u64, p: usize, layers: usize) -> Self {
        CoarsenConfig {
            min_shared,
            p,
            layers,
            machine: Machine::knl(),
            budget: MemoryBudget::unlimited(),
            kernels: KernelStrategy::New,
        }
    }
}

/// The matching produced for one coarsening level.
#[derive(Debug, Clone)]
pub struct Matching {
    /// `mate[v]` is the vertex matched with `v`, if any.
    pub mate: Vec<Option<u32>>,
    /// Number of matched pairs.
    pub pairs: usize,
    /// Number of batches the product was formed in.
    pub nbatches: usize,
    /// Critical-path step breakdown of the SpGEMM.
    pub breakdown: StepBreakdown,
}

/// One candidate edge `(u, v, shared_count)`.
type Candidate = (u32, u32, u64);

/// Compute a heavy-connectivity matching of the vertices of a
/// vertex × hyperedge incidence matrix.
pub fn heavy_connectivity_matching(
    incidence: &CscMatrix<u64>,
    cfg: &CoarsenConfig,
) -> Result<Matching, CoreError> {
    let nv = incidence.nrows();
    let pattern = incidence.map(|_| 1u64);
    let at = transpose(&pattern);
    let a_arc = Arc::new(pattern);
    let at_arc = Arc::new(at);
    let cfg_c = *cfg;

    let results = run_ranks(cfg.p, cfg.machine, move |rank| {
        let grid = Grid3D::new(rank, cfg_c.layers);
        let da = scatter(
            rank,
            &grid,
            DistKind::AStyle,
            (rank.rank() == 0).then(|| Arc::clone(&a_arc)),
        );
        let db = scatter(
            rank,
            &grid,
            DistKind::BStyle,
            (rank.rank() == 0).then(|| Arc::clone(&at_arc)),
        );
        let bcfg = BatchConfig {
            kernels: cfg_c.kernels,
            batching: BatchingStrategy::BlockCyclic,
            budget: cfg_c.budget,
            forced_batches: None,
            merge_schedule: Default::default(),
            overlap: Default::default(),
            exchange: Default::default(),
            backend: Default::default(),
            algorithm: Default::default(),
        };
        let mut candidates: Vec<Candidate> = Vec::new();
        let result = batched_summa3d::<PlusTimesU64>(rank, &grid, &da, &db, &bcfg, |_r, out| {
            // Reduce the batch to local per-column best candidates and
            // discard the piece — the full W never materializes.
            let piece = &out.piece;
            for j in 0..piece.local.ncols() {
                let v = piece.global_cols[j];
                let (rows, vals) = piece.local.col(j);
                let mut best: Option<Candidate> = None;
                for (&r, &w) in rows.iter().zip(vals.iter()) {
                    let u = r + piece.row_offset as u32;
                    if u != v && w >= cfg_c.min_shared
                        && best.is_none_or(|(_, _, bw)| w > bw) {
                            best = Some((u.min(v), u.max(v), w));
                        }
                }
                candidates.extend(best);
            }
            None // discard the batch
        })?;
        let gathered = rank.gather_to_root(&grid.world, 0, candidates, 0, Step::Other);
        Ok::<_, CoreError>((gathered, *rank.clock().breakdown(), result.nbatches))
    });

    let mut all_candidates: Vec<Candidate> = Vec::new();
    let mut breakdowns = Vec::with_capacity(cfg.p);
    let mut nbatches = 1;
    for (i, r) in results.into_iter().enumerate() {
        let (gathered, bd, nb) = r?;
        breakdowns.push(bd);
        nbatches = nb;
        if i == 0 {
            all_candidates = gathered
                .expect("root gathers candidates")
                .into_iter()
                .flatten()
                .collect();
        }
    }

    // Greedy matching, heaviest connectivity first (ties by vertex id for
    // determinism).
    all_candidates.sort_unstable_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
    let mut mate: Vec<Option<u32>> = vec![None; nv];
    let mut pairs = 0;
    for (u, v, _) in all_candidates {
        let (u, v) = (u as usize, v as usize);
        if mate[u].is_none() && mate[v].is_none() {
            mate[u] = Some(v as u32);
            mate[v] = Some(u as u32);
            pairs += 1;
        }
    }
    Ok(Matching {
        mate,
        pairs,
        nbatches,
        breakdown: max_breakdown(&breakdowns),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::Triples;

    /// Incidence with planted twins: vertices 2i and 2i+1 share a private
    /// clique of hyperedges; cross-pair sharing is much weaker.
    fn twin_hypergraph(npairs: usize, edges_per_pair: usize, noise: usize) -> CscMatrix<u64> {
        let nv = npairs * 2;
        let ne = npairs * edges_per_pair + noise;
        let mut t = Triples::new(nv, ne);
        let mut e = 0u32;
        for p in 0..npairs {
            for _ in 0..edges_per_pair {
                t.push((2 * p) as u32, e, 1);
                t.push((2 * p + 1) as u32, e, 1);
                e += 1;
            }
        }
        // Noise hyperedges spanning adjacent pairs (weaker connectivity).
        for k in 0..noise {
            let v = (k * 2 + 1) % nv;
            t.push(v as u32, e, 1);
            t.push(((v + 1) % nv) as u32, e, 1);
            e += 1;
        }
        t.to_csc()
    }

    #[test]
    fn matches_planted_twins() {
        let inc = twin_hypergraph(10, 6, 5);
        let m = heavy_connectivity_matching(&inc, &CoarsenConfig::new(2, 4, 1)).unwrap();
        assert_eq!(m.pairs, 10, "all twin pairs should match");
        for p in 0..10u32 {
            assert_eq!(m.mate[(2 * p) as usize], Some(2 * p + 1));
            assert_eq!(m.mate[(2 * p + 1) as usize], Some(2 * p));
        }
    }

    #[test]
    fn distributed_configs_agree() {
        let inc = twin_hypergraph(8, 5, 4);
        let base = heavy_connectivity_matching(&inc, &CoarsenConfig::new(2, 1, 1)).unwrap();
        for (p, l) in [(4usize, 4usize), (16, 4)] {
            let other = heavy_connectivity_matching(&inc, &CoarsenConfig::new(2, p, l)).unwrap();
            assert_eq!(other.mate, base.mate, "p={p} l={l}");
        }
    }

    #[test]
    fn memory_pressure_forces_batched_matching() {
        let inc = twin_hypergraph(16, 6, 8);
        // Probe to size a budget that admits the inputs but only a third
        // of the unmerged intermediate, forcing b ≈ 3.
        let p = 4;
        let probe = heavy_connectivity_matching(&inc, &CoarsenConfig::new(2, p, 1)).unwrap();
        assert_eq!(probe.pairs, 16);
        let mut cfg = CoarsenConfig::new(2, p, 1);
        // Size the budget from the real symbolic quantities: inputs fit,
        // but only a third of the per-process unmerged intermediate does.
        let at = transpose(&inc.map(|_| 1u64));
        let probe_cfg = spgemm_core::RunConfig::new(p, 1);
        let probe_out =
            spgemm_core::run_spgemm::<PlusTimesU64>(&probe_cfg, &inc.map(|_| 1u64), &at).unwrap();
        let sym = probe_out.symbolic.unwrap();
        let per_proc =
            24 * (sym.max_nnz_a + sym.max_nnz_b) as usize + 24 * sym.max_unmerged_nnz as usize / 3;
        cfg.budget = MemoryBudget::new(per_proc * p);
        let m = heavy_connectivity_matching(&inc, &cfg).unwrap();
        assert!(m.nbatches > 1, "tight budget should force batching (b={})", m.nbatches);
        assert_eq!(m.pairs, 16, "batched matching must still pair every twin");
    }

    #[test]
    fn threshold_prevents_weak_matches() {
        // Only the noise edges connect across pairs (weight 1); with
        // min_shared = 2 nothing weaker than a twin pair can match.
        let inc = twin_hypergraph(6, 3, 12);
        let m = heavy_connectivity_matching(&inc, &CoarsenConfig::new(3, 4, 1)).unwrap();
        assert_eq!(m.pairs, 6);
    }
}
