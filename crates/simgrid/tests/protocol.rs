//! Protocol-checker injection tests: deliberately mis-programmed
//! collectives must trip [`spgemm_simgrid::check`] with a diagnostic
//! naming the ranks, operations and sequence numbers involved — and a
//! correctly programmed run must pass untouched.

use spgemm_simgrid::{run_ranks_checked, CheckMode, Machine, PendingOp, Step};
use std::sync::Arc;

/// Run `f`, which must panic, and return its panic message.
fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let err = std::panic::catch_unwind(f).expect_err("expected the checker to trip");
    match err.downcast::<String>() {
        Ok(s) => *s,
        Err(err) => match err.downcast::<&str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic>".to_string(),
        },
    }
}

#[test]
fn mismatched_collective_order_names_both_operations() {
    let msg = panic_message(|| {
        run_ranks_checked(2, Machine::knl(), CheckMode::Check, |rank| {
            let comm = rank.world_comm();
            // A matching first collective, so the divergence is op 2.
            rank.barrier(&comm, Step::Other);
            if rank.rank() == 0 {
                rank.barrier(&comm, Step::Other);
            } else {
                rank.allreduce(&comm, 1u64, |a, b| a + b, 8, Step::Other);
            }
        });
    });
    assert!(msg.contains("protocol violation [OrderMismatch]"), "{msg}");
    assert!(msg.contains("op 2"), "{msg}");
    assert!(msg.contains("barrier") && msg.contains("allreduce"), "{msg}");
}

#[test]
fn bcast_root_disagreement_names_both_roots() {
    let msg = panic_message(|| {
        run_ranks_checked(2, Machine::knl(), CheckMode::Check, |rank| {
            let comm = rank.world_comm();
            // Each rank believes itself the root.
            let me = rank.rank();
            rank.bcast(&comm, me, Some(Arc::new(7u64)), 8, Step::Other);
        });
    });
    assert!(msg.contains("protocol violation [RootMismatch]"), "{msg}");
    assert!(msg.contains("bcast root"), "{msg}");
    assert!(msg.contains("Some(0)") && msg.contains("Some(1)"), "{msg}");
}

#[test]
fn asymmetric_alltoallv_counts_name_the_rank_and_shape() {
    let msg = panic_message(|| {
        run_ranks_checked(2, Machine::knl(), CheckMode::Check, |rank| {
            let comm = rank.world_comm();
            if rank.rank() == 1 {
                // Size vector for a 3-member communicator on a 2-member one.
                rank.alltoallv(&comm, vec![10u64, 11], &[8, 8, 8], Step::Other)
            } else {
                rank.alltoallv(&comm, vec![20u64, 21], &[8, 8], Step::Other)
            }
        });
    });
    assert!(msg.contains("protocol violation [CountMismatch]"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(
        msg.contains("2 parts and 3 sizes on a 2-member communicator"),
        "{msg}"
    );
}

#[test]
fn dropped_nonblocking_handle_is_reported_as_a_leak() {
    let msg = panic_message(|| {
        run_ranks_checked(2, Machine::knl(), CheckMode::Check, |rank| {
            let comm = rank.world_comm();
            let root_payload = (rank.rank() == 0).then(|| Arc::new(vec![1u8; 64]));
            let pending = rank.ibcast(&comm, 0, root_payload, 64, Step::Other);
            if rank.rank() == 0 {
                drop(pending); // regression: handle leaked without wait()
            } else {
                let _ = pending.wait(rank);
            }
        });
    });
    assert!(msg.contains("protocol violation [LeakedHandle]"), "{msg}");
    assert!(msg.contains("rank 0"), "{msg}");
    assert!(msg.contains("without wait()"), "{msg}");
}

#[test]
fn clock_reset_between_sync_points_is_non_monotone() {
    let msg = panic_message(|| {
        run_ranks_checked(2, Machine::knl(), CheckMode::Check, |rank| {
            let comm = rank.world_comm();
            rank.compute(Step::Other, 1e9); // modeled time well past zero
            rank.barrier(&comm, Step::Other);
            if rank.rank() == 1 {
                rank.clock_mut().reset(); // corrupt: time goes backwards
            }
            rank.barrier(&comm, Step::Other);
        });
    });
    assert!(msg.contains("protocol violation [NonMonotoneClock]"), "{msg}");
    assert!(msg.contains("rank 1"), "{msg}");
    assert!(msg.contains("earlier than"), "{msg}");
}

#[test]
fn divergent_order_across_communicators_is_a_stall() {
    let msg = panic_message(|| {
        run_ranks_checked(2, Machine::knl(), CheckMode::Check, |rank| {
            // Classic cross-communicator deadlock: the two ranks take the
            // same two barriers in opposite order.
            let a = rank.comm(vec![0, 1], 1);
            let b = rank.comm(vec![0, 1], 2);
            if rank.rank() == 0 {
                rank.barrier(&a, Step::Other);
                rank.barrier(&b, Step::Other);
            } else {
                rank.barrier(&b, Step::Other);
                rank.barrier(&a, Step::Other);
            }
        });
    });
    assert!(msg.contains("protocol violation [Stall]"), "{msg}");
    assert!(msg.contains("blocked"), "{msg}");
    assert!(msg.contains("missing members"), "{msg}");
}

#[test]
fn rank_exiting_without_its_collective_is_a_stall() {
    let msg = panic_message(|| {
        run_ranks_checked(3, Machine::knl(), CheckMode::Check, |rank| {
            let comm = rank.world_comm();
            if rank.rank() != 1 {
                rank.barrier(&comm, Step::Other);
            }
        });
    });
    assert!(msg.contains("protocol violation [Stall]"), "{msg}");
    assert!(msg.contains("missing members [1]"), "{msg}");
    assert!(msg.contains("exited"), "{msg}");
}

#[test]
fn duplicate_inflight_send_is_a_tag_collision() {
    let msg = panic_message(|| {
        run_ranks_checked(2, Machine::knl(), CheckMode::Check, |rank| {
            let comm = rank.world_comm();
            if rank.rank() == 0 {
                // Two undelivered sends with the same (comm, tag, dst):
                // receives match on (source, comm, tag), so delivery order
                // would be ambiguous.
                rank.send(&comm, 1, 5, 1u32);
                rank.send(&comm, 1, 5, 2u32);
            } else {
                let _: u32 = rank.recv(&comm, 0, 5);
                let _: u32 = rank.recv(&comm, 0, 5);
            }
        });
    });
    assert!(msg.contains("protocol violation [TagCollision]"), "{msg}");
    assert!(msg.contains("second send"), "{msg}");
    assert!(msg.contains("tag 5"), "{msg}");
}

#[test]
fn receive_with_no_matching_send_is_unmatched() {
    let msg = panic_message(|| {
        run_ranks_checked(2, Machine::knl(), CheckMode::Check, |rank| {
            let comm = rank.world_comm();
            if rank.rank() == 0 {
                rank.send(&comm, 1, 7, 1u32);
                // Then exit: rank 1's second recv can never complete.
            } else {
                let _: u32 = rank.recv(&comm, 0, 7);
                let _: u32 = rank.recv(&comm, 0, 8);
            }
        });
    });
    assert!(msg.contains("protocol violation [UnmatchedRecv]"), "{msg}");
    assert!(msg.contains("rank 1 in recv from rank 0"), "{msg}");
    assert!(msg.contains("tag 8"), "{msg}");
}

#[test]
fn send_never_received_is_an_orphan() {
    let msg = panic_message(|| {
        run_ranks_checked(2, Machine::knl(), CheckMode::Check, |rank| {
            let comm = rank.world_comm();
            if rank.rank() == 0 {
                rank.send(&comm, 1, 9, 42u32);
            }
            // Rank 1 never receives; both ranks exit cleanly.
        });
    });
    assert!(msg.contains("protocol violation [OrphanedSend]"), "{msg}");
    assert!(msg.contains("rank 0 sent to rank 1"), "{msg}");
    assert!(msg.contains("never received"), "{msg}");
}

#[test]
fn well_formed_point_to_point_passes_under_check_mode() {
    // Exercises ordinary matched sends and self-sends. Each round uses its
    // own tag: reusing a tag toward the same peer is only legal once the
    // first delivery is known complete, which unsynchronized SPMD rounds
    // cannot guarantee.
    let results = run_ranks_checked(4, Machine::knl(), CheckMode::Check, |rank| {
        let comm = rank.world_comm();
        let me = rank.rank();
        let right = (me + 1) % 4;
        let left = (me + 3) % 4;
        rank.send(&comm, right, 11, me as u64);
        let from_left: u64 = rank.recv(&comm, left, 11);
        rank.send(&comm, right, 13, from_left);
        let second: u64 = rank.recv(&comm, left, 13);
        // Self-send, as transpose_to_bstyle does on the diagonal.
        rank.send(&comm, me, 12, second);
        rank.recv::<u64>(&comm, me, 12)
    });
    assert_eq!(results.len(), 4);
    for (me, &got) in results.iter().enumerate() {
        assert_eq!(got as usize, (me + 2) % 4);
    }
}

#[test]
fn well_formed_program_passes_under_check_mode() {
    let results = run_ranks_checked(4, Machine::knl(), CheckMode::Check, |rank| {
        let comm = rank.world_comm();
        let sum = rank.allreduce(&comm, rank.rank() as u64, |a, b| a + b, 8, Step::Other);
        let root_payload = (rank.rank() == 0).then(|| Arc::new(sum));
        let pending = rank.ibcast(&comm, 0, root_payload, 8, Step::Other);
        let shared = pending.wait(rank);
        rank.barrier(&comm, Step::Other);
        *shared
    });
    assert_eq!(results, vec![6, 6, 6, 6]);
}
