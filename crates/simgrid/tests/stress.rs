//! Stress and semantics tests for the virtual MPI runtime: message
//! matching under heavy interleaving, clock-model laws, grid algebra.

use spgemm_simgrid::{run_ranks, Grid3D, Machine, Step};
use std::sync::Arc;

/// Many interleaved collectives on overlapping communicators must never
/// cross-talk: each op's payload round-trips exactly.
#[test]
fn interleaved_collectives_on_many_communicators() {
    let p = 16;
    let results = run_ranks(p, Machine::knl(), |rank| {
        let grid = Grid3D::new(rank, 4);
        let mut acc = 0u64;
        for round in 0..20u64 {
            // Row broadcast of a round-tagged value.
            let payload = (grid.row.my_index() == (round as usize % grid.row.size()))
                .then(|| Arc::new(round * 1000 + grid.i as u64));
            let v = rank.bcast(
                &grid.row,
                round as usize % grid.row.size(),
                payload,
                8,
                Step::ABcast,
            );
            assert_eq!(*v, round * 1000 + grid.i as u64, "row bcast mixed rounds");
            // Column allreduce.
            let s = rank.allreduce(&grid.col, 1u64, |a, b| a + b, 8, Step::BBcast);
            assert_eq!(s as usize, grid.col.size());
            // Fiber alltoall with identifiable slots.
            let parts: Vec<u64> = (0..grid.fiber.size())
                .map(|i| round * 10_000 + (grid.fiber.my_index() * 100 + i) as u64)
                .collect();
            let bytes = vec![8usize; grid.fiber.size()];
            let got = rank.alltoallv(&grid.fiber, parts, &bytes, Step::AllToAllFiber);
            for (i, g) in got.iter().enumerate() {
                assert_eq!(*g, round * 10_000 + (i * 100 + grid.fiber.my_index()) as u64);
            }
            acc += *v + s;
        }
        acc
    });
    assert_eq!(results.len(), p);
}

/// Modeled time is deterministic: two identical runs produce identical
/// clocks to the last bit.
#[test]
fn modeled_time_is_deterministic() {
    let run = || {
        run_ranks(8, Machine::knl(), |rank| {
            let grid = Grid3D::new(rank, 2);
            for i in 0..5usize {
                let payload = (grid.row.my_index() == 0).then(|| Arc::new(i));
                rank.bcast(&grid.row, 0, payload, 1000 * (i + 1), Step::ABcast);
                rank.compute(Step::LocalMultiply, 5000.0 * (rank.rank() + 1) as f64);
                rank.barrier(&grid.world, Step::Other);
            }
            rank.clock().now()
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

/// Clocks never move backwards, and the critical path is monotone in the
/// number of operations.
#[test]
fn clocks_are_monotone() {
    run_ranks(9, Machine::knl(), |rank| {
        let grid = Grid3D::new(rank, 1);
        let mut last = 0.0;
        for i in 0..10usize {
            let payload = (grid.col.my_index() == i % 3).then(|| Arc::new(()));
            rank.bcast(&grid.col, i % 3, payload, 64, Step::BBcast);
            let now = rank.clock().now();
            assert!(now >= last, "clock went backwards: {last} -> {now}");
            last = now;
        }
    });
}

/// allgather returns contributions in member-index order even when the
/// contributions are large and ranks enter at wildly different times.
#[test]
fn allgather_order_with_skewed_entry() {
    let results = run_ranks(6, Machine::knl(), |rank| {
        // Skew entry times.
        let skew = rank.rank() as f64;
        rank.clock_mut().advance(Step::LocalMultiply, skew);
        let comm = rank.world_comm();
        let v = vec![rank.rank() as u8; 1000 + rank.rank()];
        rank.allgather(&comm, v, 1000, Step::Other)
    });
    for out in results {
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), 1000 + i);
            assert!(v.iter().all(|&x| x as usize == i));
        }
    }
}

/// Grid communicators are consistent: the member at my_index is me, and
/// every member agrees on the communicator size.
#[test]
fn grid_communicator_self_consistency() {
    for (p, l) in [(4usize, 1usize), (12, 3), (16, 16), (36, 9)] {
        run_ranks(p, Machine::knl(), move |rank| {
            let g = Grid3D::new(rank, l);
            for comm in [&g.row, &g.col, &g.fiber, &g.layer, &g.world] {
                assert_eq!(comm.member(comm.my_index()), rank.rank());
                let max_size =
                    rank.allreduce(comm, comm.size() as u64, |a, b| a.max(b), 8, Step::Other);
                assert_eq!(max_size as usize, comm.size());
            }
        });
    }
}

/// A 1024-rank world still spawns, synchronizes and tears down cleanly.
#[test]
fn thousand_rank_smoke() {
    let results = run_ranks(1024, Machine::knl(), |rank| {
        let comm = rank.world_comm();
        rank.allreduce(&comm, rank.rank() as u64, |a, b| a + b, 8, Step::Other)
    });
    let expect = (1023 * 1024 / 2) as u64;
    assert!(results.iter().all(|&v| v == expect));
}
