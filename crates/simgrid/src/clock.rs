//! Per-rank modeled clocks with per-step accounting.
//!
//! The paper instruments seven major steps of BatchedSUMMA3D (Sec. IV-B):
//! Symbolic, A-Broadcast, B-Broadcast, Local-Multiply, Merge-Layer,
//! AllToAll-Fiber and Merge-Fiber. [`Step`] adds a split of Symbolic into
//! its communication and computation parts (needed for Fig. 8) and an
//! `Other` bucket for harness overhead (scatter/gather) that the paper
//! excludes from its plots.

/// A timed step of the distributed algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Step {
    /// Symbolic step, communication part (broadcasts inside Alg. 3).
    SymbolicComm = 0,
    /// Symbolic step, local counting part (`LocalSymbolic`).
    SymbolicComp = 1,
    /// Broadcast of `A` pieces along process rows.
    ABcast = 2,
    /// Broadcast of `B` pieces along process columns.
    BBcast = 3,
    /// Local multiplication (one per SUMMA stage).
    LocalMultiply = 4,
    /// Merging the per-stage partial products inside a layer.
    MergeLayer = 5,
    /// All-to-all exchange along fibers (one per batch).
    AllToAllFiber = 6,
    /// Merging the per-layer pieces received on the fiber.
    MergeFiber = 7,
    /// Harness overhead outside the algorithm proper (scatter, gather,
    /// verification); excluded from paper-style reports.
    Other = 8,
    /// Time spent waiting for the slowest participant at collective entry.
    /// Kept separate so that load-imbalance skew does not pollute the α–β
    /// cost of whichever collective happens to come next (at miniature
    /// scale the skew is comparatively much larger than at the paper's
    /// payload sizes, where it vanishes inside the bandwidth terms).
    /// Counted in totals: it is real critical-path time.
    Wait = 9,
    /// Sparsity-aware exchange, request round: receivers ship their
    /// needed-column index sets to the stage owner (`ExchangeMode::
    /// SparseFetch`). Zero under dense broadcasts.
    FetchRequest = 10,
    /// Sparsity-aware exchange, reply round: owners ship the requested
    /// column-subset slices back point-to-point. Zero under dense
    /// broadcasts.
    FetchReply = 11,
    /// 1.5D shift round: point-to-point rotation of a sparse `A` block
    /// around a replication ring (ColA / InnerABC). Zero under SUMMA.
    AShift = 12,
    /// 1.5D partial-`C` reduction across a replication team (InnerABC's
    /// allreduce of layer-partial dense outputs). Zero elsewhere.
    CReduce = 13,
}

/// Number of [`Step`] variants.
pub const N_STEPS: usize = 14;

/// All steps in display order.
pub const ALL_STEPS: [Step; N_STEPS] = [
    Step::SymbolicComm,
    Step::SymbolicComp,
    Step::ABcast,
    Step::BBcast,
    Step::FetchRequest,
    Step::FetchReply,
    Step::AShift,
    Step::LocalMultiply,
    Step::MergeLayer,
    Step::AllToAllFiber,
    Step::CReduce,
    Step::MergeFiber,
    Step::Other,
    Step::Wait,
];

impl Step {
    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            Step::SymbolicComm => "Symbolic-Comm",
            Step::SymbolicComp => "Symbolic-Comp",
            Step::ABcast => "A-Bcast",
            Step::BBcast => "B-Bcast",
            Step::LocalMultiply => "Local-Multiply",
            Step::MergeLayer => "Merge-Layer",
            Step::AllToAllFiber => "AllToAll-Fiber",
            Step::MergeFiber => "Merge-Fiber",
            Step::Other => "Other",
            Step::Wait => "Wait",
            Step::FetchRequest => "Fetch-Request",
            Step::FetchReply => "Fetch-Reply",
            Step::AShift => "A-Shift",
            Step::CReduce => "C-Reduce",
        }
    }

    /// Steps the paper counts as communication.
    pub fn is_communication(self) -> bool {
        matches!(
            self,
            Step::SymbolicComm
                | Step::ABcast
                | Step::BBcast
                | Step::AllToAllFiber
                | Step::FetchRequest
                | Step::FetchReply
                | Step::AShift
                | Step::CReduce
        )
    }
}

/// Modeled seconds, communicated bytes, and message counts per step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepBreakdown {
    /// Modeled seconds per step.
    pub secs: [f64; N_STEPS],
    /// Modeled bytes moved per step (received side for collectives).
    pub bytes: [u64; N_STEPS],
    /// Collective/message rounds per step.
    pub msgs: [u64; N_STEPS],
    /// Modeled seconds of communication *hidden* behind computation per
    /// step: the portion of a nonblocking collective's span (post → modeled
    /// completion) that the rank spent doing other work instead of
    /// waiting. Charged seconds plus hidden seconds for an op equal the
    /// blocking variant's full wait-plus-cost span, so this is the overlap
    /// saving.
    pub overlap_secs: [f64; N_STEPS],
}

impl StepBreakdown {
    /// Seconds attributed to `step`.
    pub fn secs_of(&self, step: Step) -> f64 {
        self.secs[step as usize]
    }

    /// Bytes recorded under `step` (received side for collectives).
    pub fn bytes_of(&self, step: Step) -> u64 {
        self.bytes[step as usize]
    }

    /// Total modeled bytes over every step (including `Other`).
    pub fn bytes_total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Step-wise difference against an `earlier` snapshot of the same
    /// monotone clock — the per-iteration breakdown of an iterative
    /// session is the delta between snapshots taken around one iteration.
    #[must_use]
    pub fn delta(&self, earlier: &StepBreakdown) -> StepBreakdown {
        let mut d = StepBreakdown::default();
        for i in 0..N_STEPS {
            d.secs[i] = self.secs[i] - earlier.secs[i];
            d.bytes[i] = self.bytes[i] - earlier.bytes[i];
            d.msgs[i] = self.msgs[i] - earlier.msgs[i];
            d.overlap_secs[i] = self.overlap_secs[i] - earlier.overlap_secs[i];
        }
        d
    }

    /// Total modeled seconds over algorithm steps (excludes `Other`).
    pub fn total(&self) -> f64 {
        ALL_STEPS
            .iter()
            .filter(|&&s| s != Step::Other)
            .map(|&s| self.secs[s as usize])
            .sum()
    }

    /// Total modeled seconds over communication steps.
    pub fn comm_total(&self) -> f64 {
        ALL_STEPS
            .iter()
            .filter(|&&s| s.is_communication())
            .map(|&s| self.secs[s as usize])
            .sum()
    }

    /// Total modeled seconds over local-computation steps (excludes
    /// `Other` and `Wait`: waiting is neither computing nor communicating).
    pub fn comp_total(&self) -> f64 {
        [
            Step::SymbolicComp,
            Step::LocalMultiply,
            Step::MergeLayer,
            Step::MergeFiber,
        ]
        .iter()
        .map(|&s| self.secs[s as usize])
        .sum()
    }

    /// Seconds of communication hidden behind computation for `step`.
    pub fn overlap_of(&self, step: Step) -> f64 {
        self.overlap_secs[step as usize]
    }

    /// Total modeled seconds of communication hidden by overlap.
    pub fn overlap_total(&self) -> f64 {
        self.overlap_secs.iter().sum()
    }

    /// Elementwise max — used when reducing across ranks.
    pub fn max_with(&mut self, other: &StepBreakdown) {
        for i in 0..N_STEPS {
            self.secs[i] = self.secs[i].max(other.secs[i]);
            self.bytes[i] = self.bytes[i].max(other.bytes[i]);
            self.msgs[i] = self.msgs[i].max(other.msgs[i]);
            self.overlap_secs[i] = self.overlap_secs[i].max(other.overlap_secs[i]);
        }
    }
}

/// The modeled clock of one simulated rank.
#[derive(Debug, Clone, Default)]
pub struct RankClock {
    now: f64,
    breakdown: StepBreakdown,
    /// Recorded spans when tracing is enabled (see [`crate::trace`]).
    events: Option<Vec<crate::trace::TraceEvent>>,
}

impl RankClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current modeled time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Per-step accounting so far.
    pub fn breakdown(&self) -> &StepBreakdown {
        &self.breakdown
    }

    /// Enable per-span tracing (for Chrome trace export).
    pub fn enable_tracing(&mut self) {
        self.events.get_or_insert_with(Vec::new);
    }

    /// Recorded spans, if tracing was enabled.
    pub fn events(&self) -> Option<&[crate::trace::TraceEvent]> {
        self.events.as_deref()
    }

    fn record_event(&mut self, step: Step, start: f64, end: f64) {
        if let Some(events) = &mut self.events {
            if end > start {
                events.push(crate::trace::TraceEvent {
                    step,
                    start,
                    end,
                    hidden: 0.0,
                });
            }
        }
    }

    /// Advance by `dt` seconds of local work attributed to `step`.
    pub fn advance(&mut self, step: Step, dt: f64) {
        debug_assert!(dt >= 0.0, "negative time step: {dt}");
        let start = self.now;
        self.now += dt;
        self.breakdown.secs[step as usize] += dt;
        self.record_event(step, start, self.now);
    }

    /// Jump to absolute time `t` (≥ now), attributing the elapsed span to
    /// `step`. Used by collectives: the span covers both waiting for the
    /// slowest participant and the op cost itself, matching how per-step
    /// wall-clock timers behave in a real MPI code.
    pub fn advance_to(&mut self, step: Step, t: f64) {
        if t > self.now {
            self.breakdown.secs[step as usize] += t - self.now;
            let start = self.now;
            self.now = t;
            self.record_event(step, start, t);
        }
    }

    /// Record `bytes` moved and one message round under `step`.
    pub fn record_comm(&mut self, step: Step, bytes: u64, msgs: u64) {
        self.breakdown.bytes[step as usize] += bytes;
        self.breakdown.msgs[step as usize] += msgs;
    }

    /// Record `secs` of communication under `step` that completed in the
    /// background while this rank computed (nonblocking overlap). Does not
    /// advance the clock — the covered span already elapsed under whatever
    /// steps the rank worked on. When tracing, a zero-length marker event
    /// carrying the hidden duration is emitted at the current time.
    pub fn record_overlap(&mut self, step: Step, secs: f64) {
        debug_assert!(secs >= 0.0, "negative overlap: {secs}");
        if secs <= 0.0 {
            return;
        }
        self.breakdown.overlap_secs[step as usize] += secs;
        if let Some(events) = &mut self.events {
            events.push(crate::trace::TraceEvent {
                step,
                start: self.now,
                end: self.now,
                hidden: secs,
            });
        }
    }

    /// Reset time and accounting (between repetitions in a harness).
    pub fn reset(&mut self) {
        *self = RankClock::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates_per_step() {
        let mut c = RankClock::new();
        c.advance(Step::LocalMultiply, 1.0);
        c.advance(Step::LocalMultiply, 2.0);
        c.advance(Step::ABcast, 0.5);
        assert_eq!(c.now(), 3.5);
        assert_eq!(c.breakdown().secs_of(Step::LocalMultiply), 3.0);
        assert_eq!(c.breakdown().secs_of(Step::ABcast), 0.5);
    }

    #[test]
    fn advance_to_only_moves_forward() {
        let mut c = RankClock::new();
        c.advance(Step::Other, 2.0);
        c.advance_to(Step::BBcast, 5.0);
        assert_eq!(c.now(), 5.0);
        assert_eq!(c.breakdown().secs_of(Step::BBcast), 3.0);
        c.advance_to(Step::BBcast, 1.0); // in the past: no-op
        assert_eq!(c.now(), 5.0);
    }

    #[test]
    fn totals_exclude_other() {
        let mut c = RankClock::new();
        c.advance(Step::Other, 100.0);
        c.advance(Step::ABcast, 1.0);
        c.advance(Step::LocalMultiply, 2.0);
        let b = c.breakdown();
        assert_eq!(b.total(), 3.0);
        assert_eq!(b.comm_total(), 1.0);
        assert_eq!(b.comp_total(), 2.0);
    }

    #[test]
    fn comm_classification_matches_paper() {
        assert!(Step::ABcast.is_communication());
        assert!(Step::BBcast.is_communication());
        assert!(Step::AllToAllFiber.is_communication());
        assert!(Step::SymbolicComm.is_communication());
        assert!(Step::FetchRequest.is_communication());
        assert!(Step::FetchReply.is_communication());
        assert!(!Step::LocalMultiply.is_communication());
        assert!(!Step::MergeLayer.is_communication());
        assert!(!Step::MergeFiber.is_communication());
    }

    #[test]
    fn record_overlap_accumulates_without_advancing() {
        let mut c = RankClock::new();
        c.enable_tracing();
        c.advance(Step::LocalMultiply, 2.0);
        c.record_overlap(Step::ABcast, 1.5);
        c.record_overlap(Step::ABcast, 0.5);
        c.record_overlap(Step::BBcast, 0.0); // no-op
        assert_eq!(c.now(), 2.0, "overlap never advances the clock");
        assert_eq!(c.breakdown().overlap_of(Step::ABcast), 2.0);
        assert_eq!(c.breakdown().overlap_total(), 2.0);
        // Hidden time does not count toward charged step seconds.
        assert_eq!(c.breakdown().secs_of(Step::ABcast), 0.0);
        // Tracing records zero-length markers carrying the hidden span.
        let markers: Vec<_> = c
            .events()
            .unwrap()
            .iter()
            .filter(|e| e.hidden > 0.0)
            .collect();
        assert_eq!(markers.len(), 2);
        assert!(markers.iter().all(|e| e.start == e.end && e.start == 2.0));
    }

    #[test]
    fn max_with_takes_elementwise_max() {
        let mut a = StepBreakdown::default();
        a.secs[0] = 1.0;
        a.bytes[1] = 10;
        let mut b = StepBreakdown::default();
        b.secs[0] = 0.5;
        b.bytes[1] = 20;
        a.max_with(&b);
        assert_eq!(a.secs[0], 1.0);
        assert_eq!(a.bytes[1], 20);
    }
}
