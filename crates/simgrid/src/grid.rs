//! 2D and 3D process grids (Sec. III of the paper).
//!
//! A 3D grid organizes `p` ranks as `√(p/l) × √(p/l) × l`. Rank `g` maps to
//! layer `k = g / (p/l)`, then row `i` and column `j` within the layer.
//! The grid exposes the four communicators the algorithms need:
//!
//! * **row** — `P(i, :, k)`: A-Broadcast travels here.
//! * **col** — `P(:, j, k)`: B-Broadcast travels here.
//! * **fiber** — `P(i, j, :)`: AllToAll-Fiber travels here.
//! * **layer** — `P(:, :, k)`: layer-local reductions (symbolic step).

use crate::comm::{Comm, Rank};

const COLOR_ROW: u64 = 1;
const COLOR_COL: u64 = 2;
const COLOR_FIBER: u64 = 3;
const COLOR_LAYER: u64 = 4;

/// Side length `√(p/l)` if `(p, l)` forms a valid square-per-layer grid.
pub fn layer_side(p: usize, l: usize) -> Option<usize> {
    if l == 0 || !p.is_multiple_of(l) {
        return None;
    }
    let per_layer = p / l;
    let side = (per_layer as f64).sqrt().round() as usize;
    (side * side == per_layer).then_some(side)
}

/// Valid layer counts for `p` ranks (those giving square layers), ascending.
pub fn valid_layer_counts(p: usize) -> Vec<usize> {
    (1..=p).filter(|&l| layer_side(p, l).is_some()).collect()
}

/// A 3D process grid view from one rank.
#[derive(Clone, Debug)]
pub struct Grid3D {
    /// Number of layers `l`.
    pub l: usize,
    /// Per-layer grid side `√(p/l)`.
    pub pr: usize,
    /// This rank's row within its layer.
    pub i: usize,
    /// This rank's column within its layer.
    pub j: usize,
    /// This rank's layer.
    pub k: usize,
    /// Process row `P(i, :, k)`.
    pub row: Comm,
    /// Process column `P(:, j, k)`.
    pub col: Comm,
    /// Fiber `P(i, j, :)`.
    pub fiber: Comm,
    /// Whole layer `P(:, :, k)`.
    pub layer: Comm,
    /// All ranks.
    pub world: Comm,
}

impl Grid3D {
    /// Build the grid view for `rank` with `l` layers. Panics if `(p, l)`
    /// does not form square layers — call [`layer_side`] to validate first.
    pub fn new(rank: &Rank, l: usize) -> Grid3D {
        Grid3D::for_rank_id(rank.rank(), rank.world_size(), l)
    }

    /// Build the grid view for global rank `g` of a `p`-rank world, with no
    /// live runtime. `Grid3D::new` delegates here; the schedule auditor
    /// calls it directly so the symbolic executor sees the exact same
    /// member lists and communicator ids a real run would.
    pub fn for_rank_id(g: usize, p: usize, l: usize) -> Grid3D {
        let pr = layer_side(p, l)
            .unwrap_or_else(|| panic!("invalid 3D grid: p={p}, l={l} (layers must be square)"));
        let per_layer = pr * pr;
        let k = g / per_layer;
        let r2 = g % per_layer;
        let i = r2 / pr;
        let j = r2 % pr;
        let base = k * per_layer;

        let row_members: Vec<usize> = (0..pr).map(|jj| base + i * pr + jj).collect();
        let col_members: Vec<usize> = (0..pr).map(|ii| base + ii * pr + j).collect();
        let fiber_members: Vec<usize> = (0..l).map(|kk| kk * per_layer + i * pr + j).collect();
        let layer_members: Vec<usize> = (0..per_layer).map(|r| base + r).collect();

        Grid3D {
            l,
            pr,
            i,
            j,
            k,
            row: Comm::for_rank(row_members, COLOR_ROW, g),
            col: Comm::for_rank(col_members, COLOR_COL, g),
            fiber: Comm::for_rank(fiber_members, COLOR_FIBER, g),
            layer: Comm::for_rank(layer_members, COLOR_LAYER, g),
            world: Comm::for_rank((0..p).collect(), 0, g),
        }
    }

    /// Total rank count.
    pub fn p(&self) -> usize {
        self.world.size()
    }

    /// Global rank of grid position `(i, j, k)`.
    pub fn rank_of(&self, i: usize, j: usize, k: usize) -> usize {
        k * self.pr * self.pr + i * self.pr + j
    }

    /// `A`'s global column-slice index of this rank: the 3D distribution
    /// splits `A`'s columns into `pr · l` slices; slice `(j, k)` lives on
    /// layer `k`, process column `j` (Fig. 1(c-e)).
    pub fn a_col_slice(&self) -> usize {
        self.j * self.l + self.k
    }

    /// `B`'s global row-slice index of this rank (Fig. 1(f-h)), symmetric
    /// to [`Grid3D::a_col_slice`].
    pub fn b_row_slice(&self) -> usize {
        self.i * self.l + self.k
    }
}

/// A 2D process grid: the `l = 1` special case, for the plain SUMMA2D
/// baseline (Alg. 1).
#[derive(Clone, Debug)]
pub struct Grid2D {
    /// Grid side `√p`.
    pub pr: usize,
    /// This rank's row.
    pub i: usize,
    /// This rank's column.
    pub j: usize,
    /// Process row.
    pub row: Comm,
    /// Process column.
    pub col: Comm,
    /// All ranks.
    pub world: Comm,
}

impl Grid2D {
    /// Build the 2D grid view for `rank`. Panics unless `p` is square.
    pub fn new(rank: &Rank) -> Grid2D {
        let g3 = Grid3D::new(rank, 1);
        Grid2D {
            pr: g3.pr,
            i: g3.i,
            j: g3.j,
            row: g3.row,
            col: g3.col,
            world: g3.world,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Machine;
    use crate::runtime::run_ranks;

    #[test]
    fn layer_side_validates() {
        assert_eq!(layer_side(16, 1), Some(4));
        assert_eq!(layer_side(16, 4), Some(2));
        assert_eq!(layer_side(16, 16), Some(1));
        assert_eq!(layer_side(16, 2), None); // 8 not square
        assert_eq!(layer_side(12, 3), Some(2));
        assert_eq!(layer_side(10, 0), None);
        assert_eq!(layer_side(10, 3), None);
    }

    #[test]
    fn valid_layer_counts_for_64() {
        assert_eq!(valid_layer_counts(64), vec![1, 4, 16, 64]);
    }

    #[test]
    fn coordinates_partition_correctly() {
        let coords = run_ranks(16, Machine::knl(), |rank| {
            let g = Grid3D::new(rank, 4);
            assert_eq!(g.pr, 2);
            assert_eq!(g.rank_of(g.i, g.j, g.k), rank.rank());
            (g.i, g.j, g.k)
        });
        // All coordinates distinct.
        let mut set: Vec<_> = coords;
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn communicator_sizes() {
        run_ranks(16, Machine::knl(), |rank| {
            let g = Grid3D::new(rank, 4);
            assert_eq!(g.row.size(), 2);
            assert_eq!(g.col.size(), 2);
            assert_eq!(g.fiber.size(), 4);
            assert_eq!(g.layer.size(), 4);
            assert_eq!(g.world.size(), 16);
        });
    }

    #[test]
    fn row_comm_members_share_row_and_layer() {
        run_ranks(36, Machine::knl(), |rank| {
            let g = Grid3D::new(rank, 4); // 3x3x4
            for (idx, &m) in g.row.members().iter().enumerate() {
                let per_layer = g.pr * g.pr;
                assert_eq!(m / per_layer, g.k, "same layer");
                assert_eq!((m % per_layer) / g.pr, g.i, "same row");
                assert_eq!((m % per_layer) % g.pr, idx, "indexed by column");
            }
        });
    }

    #[test]
    fn fiber_members_span_layers() {
        run_ranks(8, Machine::knl(), |rank| {
            let g = Grid3D::new(rank, 2);
            assert_eq!(g.fiber.size(), 2);
            for (kk, &m) in g.fiber.members().iter().enumerate() {
                assert_eq!(m / (g.pr * g.pr), kk);
            }
        });
    }

    #[test]
    fn slice_indices_are_bijective() {
        let slices = run_ranks(16, Machine::knl(), |rank| {
            let g = Grid3D::new(rank, 4);
            (g.a_col_slice(), g.b_row_slice(), g.j, g.k, g.i)
        });
        // For fixed i, the a_col_slice over (j,k) must cover 0..pr*l once.
        let mut for_i0: Vec<usize> = slices
            .iter()
            .filter(|&&(_, _, _, _, i)| i == 0)
            .map(|&(a, _, _, _, _)| a)
            .collect();
        for_i0.sort_unstable();
        assert_eq!(for_i0, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn grid2d_is_l1_grid() {
        run_ranks(9, Machine::knl(), |rank| {
            let g = Grid2D::new(rank);
            assert_eq!(g.pr, 3);
            assert_eq!(g.row.size(), 3);
            assert_eq!(g.col.size(), 3);
        });
    }

    #[test]
    #[should_panic(expected = "invalid 3D grid")]
    fn invalid_grid_panics() {
        run_ranks(8, Machine::knl(), |rank| {
            Grid3D::new(rank, 4); // 2 per layer: not square
        });
    }
}
