//! MPI-style collectives with modeled-time accounting.
//!
//! Every collective does three things:
//!
//! 1. **Synchronizes modeled clocks**: all participants jump to the maximum
//!    entry time (a collective cannot complete before its slowest member
//!    arrives). The wait is attributed to the collective's [`Step`], the
//!    same way per-step wall-clock timers behave in an MPI code.
//! 2. **Moves the data for real** over the in-memory channels (broadcast
//!    payloads travel as `Arc`s — the zero-copy analogue of shared-memory
//!    transport; receivers treat them as read-only, as MPI receivers do).
//! 3. **Advances the clock** by the α–β cost of the operation
//!    (see [`crate::cost::Machine`]) and records modeled bytes/messages.
//!
//! Payload sizes are always passed explicitly in *modeled bytes* (the
//! paper's `r` bytes per nonzero), decoupling the simulator from any
//! particular matrix representation.

use crate::check::OpKind;
use crate::clock::Step;
use crate::comm::{Comm, Rank};
use std::sync::Arc;

/// Phases within one collective op (sub-tags under one sequence number).
const PH_SYNC_UP: u64 = 0;
const PH_SYNC_DOWN: u64 = 1;
const PH_DATA: u64 = 2;

fn tag(seq: u64, phase: u64) -> u64 {
    seq * 8 + phase
}

#[allow(clippy::needless_range_loop)] // recv loops skip `me`; index form is clearer
impl Rank {
    /// Clock synchronization: everyone jumps to the max entry time.
    /// Implemented with real messages but zero modeled cost (the cost of
    /// the enclosing collective covers it). The waiting span is always
    /// attributed to [`Step::Wait`] — see that variant's docs — so that
    /// load-imbalance skew never pollutes the α–β cost of the enclosing
    /// collective's step. Returns the synchronized time.
    fn sync_clocks(&mut self, comm: &Comm, seq: u64) -> f64 {
        let q = comm.size();
        if q == 1 {
            return self.clock().now();
        }
        let me = comm.my_index();
        let t = if me == 0 {
            let mut t = self.clock().now();
            for i in 1..q {
                let ti: f64 = self.recv_raw(comm, i, tag(seq, PH_SYNC_UP));
                t = t.max(ti);
            }
            for i in 1..q {
                self.send_raw(comm, i, tag(seq, PH_SYNC_DOWN), t);
            }
            t
        } else {
            self.send_raw(comm, 0, tag(seq, PH_SYNC_UP), self.clock().now());
            self.recv_raw::<f64>(comm, 0, tag(seq, PH_SYNC_DOWN))
        };
        self.clock_mut().advance_to(Step::Wait, t);
        t
    }

    /// Broadcast `value` (present on `root` only) to every member.
    ///
    /// `bytes` is the modeled payload size; only the **root's** value is
    /// used (it travels with the payload), so receivers need not know the
    /// size in advance — exactly like the size embedded in an MPI bcast of
    /// a serialized sparse matrix. Returns the shared payload.
    pub fn bcast<T: Send + Sync + 'static>(
        &mut self,
        comm: &Comm,
        root: usize,
        value: Option<Arc<T>>,
        bytes: usize,
        step: Step,
    ) -> Arc<T> {
        let q = comm.size();
        let seq = self.next_seq(comm);
        self.check_enter(comm, seq, OpKind::Bcast, Some(root), None, true);
        let t0 = self.sync_clocks(comm, seq);
        let me = comm.my_index();
        let (out, bytes) = if me == root {
            let v = value.expect("bcast root must supply the payload");
            for i in 0..q {
                if i != root {
                    self.send_raw(comm, i, tag(seq, PH_DATA), (Arc::clone(&v), bytes as u64));
                }
            }
            (v, bytes)
        } else {
            assert!(value.is_none(), "non-root rank supplied a bcast payload");
            let (v, b) = self.recv_raw::<(Arc<T>, u64)>(comm, root, tag(seq, PH_DATA));
            (v, b as usize)
        };
        let cost = self.machine().bcast_secs(q, bytes);
        self.clock_mut().advance_to(step, t0 + cost);
        self.clock_mut().record_comm(step, bytes as u64, 1);
        out
    }

    /// Allreduce with a commutative-associative combiner.
    pub fn allreduce<T: Send + Copy + 'static>(
        &mut self,
        comm: &Comm,
        value: T,
        op: fn(T, T) -> T,
        bytes: usize,
        step: Step,
    ) -> T {
        let q = comm.size();
        let seq = self.next_seq(comm);
        self.check_enter(comm, seq, OpKind::Allreduce, None, None, true);
        let t0 = self.sync_clocks(comm, seq);
        let me = comm.my_index();
        let result = if me == 0 {
            let mut acc = value;
            for i in 1..q {
                let vi: T = self.recv_raw(comm, i, tag(seq, PH_DATA));
                acc = op(acc, vi);
            }
            for i in 1..q {
                self.send_raw(comm, i, tag(seq, PH_DATA + 1), acc);
            }
            acc
        } else {
            self.send_raw(comm, 0, tag(seq, PH_DATA), value);
            self.recv_raw::<T>(comm, 0, tag(seq, PH_DATA + 1))
        };
        let cost = self.machine().allreduce_secs(q, bytes);
        self.clock_mut().advance_to(step, t0 + cost);
        self.clock_mut().record_comm(step, bytes as u64, 1);
        result
    }

    /// Allgather: every member contributes one value; all receive the full
    /// vector in member-index order. `bytes_each` models each contribution.
    pub fn allgather<T: Send + Clone + 'static>(
        &mut self,
        comm: &Comm,
        value: T,
        bytes_each: usize,
        step: Step,
    ) -> Vec<T> {
        let q = comm.size();
        let seq = self.next_seq(comm);
        self.check_enter(comm, seq, OpKind::Allgather, None, None, true);
        let t0 = self.sync_clocks(comm, seq);
        let me = comm.my_index();
        for i in 0..q {
            if i != me {
                self.send_raw(comm, i, tag(seq, PH_DATA), value.clone());
            }
        }
        let mut out: Vec<Option<T>> = (0..q).map(|_| None).collect();
        out[me] = Some(value);
        for i in 0..q {
            if i != me {
                out[i] = Some(self.recv_raw::<T>(comm, i, tag(seq, PH_DATA)));
            }
        }
        let cost = self.machine().allgather_secs(q, bytes_each);
        self.clock_mut().advance_to(step, t0 + cost);
        self.clock_mut()
            .record_comm(step, (bytes_each * (q - 1)) as u64, 1);
        out.into_iter().map(Option::unwrap).collect()
    }

    /// All-to-all with per-destination payloads: `parts[i]` goes to member
    /// `i` (our own slot comes back unchanged). `bytes[i]` models
    /// `parts[i]`'s size. The modeled cost uses the *heaviest* sender's
    /// total volume — this is what makes Merge-Fiber load imbalance visible
    /// and motivates the paper's block-cyclic batch splitting. Recorded
    /// bytes are the **receive side** (each size travels with its part), as
    /// [`crate::clock::StepBreakdown::bytes`] documents — under asymmetric
    /// traffic the sent and received totals differ per rank.
    pub fn alltoallv<T: Send + 'static>(
        &mut self,
        comm: &Comm,
        parts: Vec<T>,
        bytes: &[usize],
        step: Step,
    ) -> Vec<T> {
        let q = comm.size();
        let seq = self.next_seq(comm);
        self.check_enter(
            comm,
            seq,
            OpKind::Alltoallv,
            None,
            Some((parts.len(), bytes.len())),
            true,
        );
        assert_eq!(parts.len(), q, "alltoallv needs one part per member");
        assert_eq!(bytes.len(), q, "alltoallv needs one size per member");
        let t0 = self.sync_clocks(comm, seq);
        let me = comm.my_index();
        let my_sent: usize = bytes.iter().sum::<usize>() - bytes[me];
        let mut own: Option<T> = None;
        for (i, part) in parts.into_iter().enumerate() {
            if i == me {
                own = Some(part);
            } else {
                self.send_raw(comm, i, tag(seq, PH_DATA), (part, bytes[i] as u64));
            }
        }
        let mut out: Vec<Option<T>> = (0..q).map(|_| None).collect();
        out[me] = own;
        let mut recv_bytes = 0u64;
        for i in 0..q {
            if i != me {
                let (part, b) = self.recv_raw::<(T, u64)>(comm, i, tag(seq, PH_DATA));
                recv_bytes += b;
                out[i] = Some(part);
            }
        }
        // Heaviest sender determines the modeled completion time.
        let max_bytes = if q > 1 {
            self.allreduce_plain_max(comm, my_sent as u64, seq)
        } else {
            0
        };
        let cost = self.machine().alltoall_secs(q, max_bytes as usize);
        self.clock_mut().advance_to(step, t0 + cost);
        self.clock_mut().record_comm(step, recv_bytes, 1);
        out.into_iter().map(Option::unwrap).collect()
    }

    /// Cost-free internal max-reduce (used for cost computation itself).
    fn allreduce_plain_max(&mut self, comm: &Comm, value: u64, seq: u64) -> u64 {
        let q = comm.size();
        let me = comm.my_index();
        if me == 0 {
            let mut acc = value;
            for i in 1..q {
                acc = acc.max(self.recv_raw::<u64>(comm, i, tag(seq, PH_DATA + 2)));
            }
            for i in 1..q {
                self.send_raw(comm, i, tag(seq, PH_DATA + 3), acc);
            }
            acc
        } else {
            self.send_raw(comm, 0, tag(seq, PH_DATA + 2), value);
            self.recv_raw::<u64>(comm, 0, tag(seq, PH_DATA + 3))
        }
    }

    /// Barrier: synchronize clocks and charge one latency round.
    pub fn barrier(&mut self, comm: &Comm, step: Step) {
        let q = comm.size();
        let seq = self.next_seq(comm);
        self.check_enter(comm, seq, OpKind::Barrier, None, None, true);
        let t0 = self.sync_clocks(comm, seq);
        let cost = self.machine().barrier_secs(q);
        self.clock_mut().advance_to(step, t0 + cost);
    }

    /// Gather every member's value to `root` (returns `Some(values)` on the
    /// root, `None` elsewhere). Used by harnesses to collect results;
    /// charged to [`Step::Other`] semantics via the `step` argument.
    ///
    /// Cost is asymmetric, as in `MPI_Gather`: the root pays the full tree
    /// ingest ([`crate::cost::Machine::gather_secs`]); a non-root returns
    /// after its own send ([`crate::cost::Machine::send_secs`]). There is no
    /// broadcast back, so charging `allgather_secs` on every rank — as this
    /// function once did — overcounts both sides.
    pub fn gather_to_root<T: Send + 'static>(
        &mut self,
        comm: &Comm,
        root: usize,
        value: T,
        bytes: usize,
        step: Step,
    ) -> Option<Vec<T>> {
        let q = comm.size();
        let seq = self.next_seq(comm);
        self.check_enter(comm, seq, OpKind::Gather, Some(root), None, true);
        let t0 = self.sync_clocks(comm, seq);
        let me = comm.my_index();
        let result = if me == root {
            let mut out: Vec<Option<T>> = (0..q).map(|_| None).collect();
            out[root] = Some(value);
            for i in 0..q {
                if i != root {
                    out[i] = Some(self.recv_raw::<T>(comm, i, tag(seq, PH_DATA)));
                }
            }
            Some(out.into_iter().map(Option::unwrap).collect())
        } else {
            self.send_raw(comm, root, tag(seq, PH_DATA), value);
            None
        };
        let cost = if me == root {
            self.machine().gather_secs(q, bytes)
        } else if q > 1 {
            self.machine().send_secs(bytes)
        } else {
            0.0
        };
        self.clock_mut().advance_to(step, t0 + cost);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Machine;
    use crate::runtime::run_ranks;

    #[test]
    fn bcast_delivers_to_all() {
        let results = run_ranks(6, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            let payload = if comm.my_index() == 2 {
                Some(Arc::new(vec![1u32, 2, 3]))
            } else {
                None
            };
            let v = rank.bcast(&comm, 2, payload, 12, Step::ABcast);
            (*v).clone()
        });
        assert!(results.iter().all(|v| v == &vec![1, 2, 3]));
    }

    #[test]
    fn bcast_charges_alpha_beta_cost() {
        let results = run_ranks(8, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            let payload = (comm.my_index() == 0).then(|| Arc::new(0u8));
            rank.bcast(&comm, 0, payload, 1_000_000, Step::ABcast);
            rank.clock().breakdown().secs_of(Step::ABcast)
        });
        let m = Machine::knl();
        let expect = m.bcast_secs(8, 1_000_000);
        for &t in &results {
            assert!((t - expect).abs() < 1e-12, "got {t}, expected {expect}");
        }
    }

    #[test]
    fn allreduce_computes_global_op() {
        let results = run_ranks(5, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            rank.allreduce(&comm, rank.rank() as u64 + 1, |a, b| a.max(b), 8, Step::SymbolicComm)
        });
        assert!(results.iter().all(|&v| v == 5));
    }

    #[test]
    fn allreduce_sum() {
        let results = run_ranks(4, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            rank.allreduce(&comm, rank.rank() as u64, |a, b| a + b, 8, Step::Other)
        });
        assert!(results.iter().all(|&v| v == 6));
    }

    #[test]
    fn allgather_preserves_member_order() {
        let results = run_ranks(4, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            rank.allgather(&comm, rank.rank() * 2, 8, Step::Other)
        });
        for r in results {
            assert_eq!(r, vec![0, 2, 4, 6]);
        }
    }

    #[test]
    fn alltoallv_transposes_slots() {
        let results = run_ranks(3, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            let parts: Vec<String> = (0..3).map(|i| format!("{}->{}", rank.rank(), i)).collect();
            rank.alltoallv(&comm, parts, &[8, 8, 8], Step::AllToAllFiber)
        });
        // out[i] on rank r must be "i->r".
        for (r, out) in results.iter().enumerate() {
            for (i, s) in out.iter().enumerate() {
                assert_eq!(s, &format!("{i}->{r}"));
            }
        }
    }

    #[test]
    fn clocks_synchronize_to_slowest_member() {
        let results = run_ranks(4, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            // Rank 1 does heavy "compute" first.
            if rank.rank() == 1 {
                rank.clock_mut().advance(Step::LocalMultiply, 10.0);
            }
            rank.barrier(&comm, Step::Other);
            rank.clock().now()
        });
        let t0 = results[0];
        assert!(t0 >= 10.0);
        assert!(results.iter().all(|&t| (t - t0).abs() < 1e-12));
    }

    #[test]
    fn sub_communicators_do_not_crosstalk() {
        // Two disjoint pair-communicators broadcasting concurrently.
        let results = run_ranks(4, Machine::knl(), |rank| {
            let pair = if rank.rank() < 2 {
                rank.comm(vec![0, 1], 10)
            } else {
                rank.comm(vec![2, 3], 10)
            };
            let payload = (pair.my_index() == 0).then(|| Arc::new(rank.rank()));
            let v = rank.bcast(&pair, 0, payload, 8, Step::BBcast);
            *v
        });
        assert_eq!(results, vec![0, 0, 2, 2]);
    }

    #[test]
    fn gather_to_root_collects_in_order() {
        let results = run_ranks(4, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            rank.gather_to_root(&comm, 1, rank.rank() as u32 * 3, 4, Step::Other)
        });
        assert!(results[0].is_none());
        assert_eq!(results[1], Some(vec![0, 3, 6, 9]));
    }

    #[test]
    fn alltoall_cost_uses_heaviest_sender() {
        let results = run_ranks(2, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            // Rank 0 sends 1 MB to rank 1; rank 1 sends 1 byte back.
            let bytes = if rank.rank() == 0 { [0, 1_000_000] } else { [1, 0] };
            rank.alltoallv(&comm, vec![0u8, 1u8], &bytes, Step::AllToAllFiber);
            rank.clock().breakdown().secs_of(Step::AllToAllFiber)
        });
        let m = Machine::knl();
        let expect = m.alltoall_secs(2, 1_000_000);
        assert!(results.iter().all(|&t| (t - expect).abs() < 1e-12));
    }

    #[test]
    fn alltoallv_records_receive_side_bytes() {
        // Same asymmetric setup as above: rank 0 sends 1 MB and receives 1
        // byte; rank 1 the reverse. `StepBreakdown::bytes` documents the
        // receive side, so the recorded volumes must differ per rank.
        let results = run_ranks(2, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            let bytes = if rank.rank() == 0 { [0, 1_000_000] } else { [1, 0] };
            rank.alltoallv(&comm, vec![0u8, 1u8], &bytes, Step::AllToAllFiber);
            rank.clock().breakdown().bytes_of(Step::AllToAllFiber)
        });
        assert_eq!(results, vec![1, 1_000_000]);
    }

    #[test]
    fn gather_charges_root_tree_and_leaf_send() {
        let (q, bytes) = (4, 1 << 16);
        let results = run_ranks(q, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            rank.gather_to_root(&comm, 1, rank.rank(), bytes, Step::SymbolicComm);
            rank.clock().breakdown().secs_of(Step::SymbolicComm)
        });
        let m = Machine::knl();
        for (r, &t) in results.iter().enumerate() {
            let expect = if r == 1 {
                m.gather_secs(q, bytes)
            } else {
                m.send_secs(bytes)
            };
            assert!((t - expect).abs() < 1e-12, "rank {r}: got {t}, expected {expect}");
        }
    }

    #[test]
    fn barrier_charges_machine_barrier_secs() {
        let results = run_ranks(8, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            rank.barrier(&comm, Step::SymbolicComm);
            rank.clock().breakdown().secs_of(Step::SymbolicComm)
        });
        let expect = Machine::knl().barrier_secs(8);
        assert!(results.iter().all(|&t| (t - expect).abs() < 1e-12));
    }
}
