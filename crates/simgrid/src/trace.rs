//! Execution tracing: per-rank timelines of modeled step spans, exportable
//! as Chrome trace JSON (`chrome://tracing`, Perfetto).
//!
//! Tracing is opt-in per rank ([`crate::RankClock::enable_tracing`]); when
//! enabled, every `advance`/`advance_to` span is recorded. The exporter
//! writes one timeline row per rank, making SUMMA stage structure, batch
//! boundaries, and synchronization waits visible at a glance.

use crate::clock::Step;

/// One contiguous span of modeled time attributed to a step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// The step the span belongs to.
    pub step: Step,
    /// Span start, modeled seconds.
    pub start: f64,
    /// Span end, modeled seconds.
    pub end: f64,
}

/// Render per-rank event lists as Chrome trace JSON.
///
/// Rank `i`'s events appear on thread id `i`; durations are microseconds
/// as the format requires. Zero-length spans are skipped.
pub fn chrome_trace_json(per_rank: &[Vec<TraceEvent>]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (rank, events) in per_rank.iter().enumerate() {
        for e in events {
            let dur_us = (e.end - e.start) * 1e6;
            if dur_us <= 0.0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{rank}}}",
                e.step.label(),
                e.start * 1e6,
                dur_us
            ));
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_json_shape() {
        let events = vec![
            vec![
                TraceEvent {
                    step: Step::ABcast,
                    start: 0.0,
                    end: 1e-3,
                },
                TraceEvent {
                    step: Step::LocalMultiply,
                    start: 1e-3,
                    end: 2e-3,
                },
            ],
            vec![TraceEvent {
                step: Step::Wait,
                start: 0.0,
                end: 0.0, // zero-length: skipped
            }],
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"A-Bcast\""));
        assert!(json.contains("\"tid\":0"));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[]}");
    }
}
