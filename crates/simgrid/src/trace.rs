//! Execution tracing: per-rank timelines of modeled step spans, exportable
//! as Chrome trace JSON (`chrome://tracing`, Perfetto).
//!
//! Tracing is opt-in per rank ([`crate::RankClock::enable_tracing`]); when
//! enabled, every `advance`/`advance_to` span is recorded. The exporter
//! writes one timeline row per rank, making SUMMA stage structure, batch
//! boundaries, and synchronization waits visible at a glance.

use crate::clock::Step;

/// One contiguous span of modeled time attributed to a step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// The step the span belongs to.
    pub step: Step,
    /// Span start, modeled seconds.
    pub start: f64,
    /// Span end, modeled seconds.
    pub end: f64,
    /// Seconds of communication hidden behind computation, for zero-length
    /// overlap markers emitted when a nonblocking collective completes
    /// under cover of other work (see [`crate::RankClock::record_overlap`]).
    /// `0.0` for ordinary spans.
    pub hidden: f64,
}

/// Render per-rank event lists as Chrome trace JSON.
///
/// Rank `i`'s events appear on thread id `i`; durations are microseconds
/// as the format requires. Positive-length spans render as `X` duration
/// events; zero-length overlap markers (`hidden > 0`) render as `i`
/// instant events carrying the hidden microseconds in `args`, making the
/// overlap savings of nonblocking collectives visible on the timeline.
/// Other zero-length spans are skipped.
pub fn chrome_trace_json(per_rank: &[Vec<TraceEvent>]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (rank, events) in per_rank.iter().enumerate() {
        for e in events {
            let dur_us = (e.end - e.start) * 1e6;
            let entry = if dur_us > 0.0 {
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{rank}}}",
                    e.step.label(),
                    e.start * 1e6,
                    dur_us
                )
            } else if e.hidden > 0.0 {
                format!(
                    "{{\"name\":\"{} overlapped\",\"ph\":\"i\",\"ts\":{:.3},\"s\":\"t\",\"pid\":0,\
                     \"tid\":{rank},\"args\":{{\"hidden_us\":{:.3}}}}}",
                    e.step.label(),
                    e.start * 1e6,
                    e.hidden * 1e6
                )
            } else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&entry);
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_json_shape() {
        let events = vec![
            vec![
                TraceEvent {
                    step: Step::ABcast,
                    start: 0.0,
                    end: 1e-3,
                    hidden: 0.0,
                },
                TraceEvent {
                    step: Step::LocalMultiply,
                    start: 1e-3,
                    end: 2e-3,
                    hidden: 0.0,
                },
            ],
            vec![TraceEvent {
                step: Step::Wait,
                start: 0.0,
                end: 0.0, // zero-length, no hidden time: skipped
                hidden: 0.0,
            }],
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"A-Bcast\""));
        assert!(json.contains("\"tid\":0"));
    }

    #[test]
    fn overlap_markers_render_as_instant_events() {
        let events = vec![vec![TraceEvent {
            step: Step::ABcast,
            start: 2e-3,
            end: 2e-3,
            hidden: 5e-4,
        }]];
        let json = chrome_trace_json(&events);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert!(json.contains("\"name\":\"A-Bcast overlapped\""));
        assert!(json.contains("\"hidden_us\":500.000"));
        assert!(!json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(chrome_trace_json(&[]), "{\"traceEvents\":[]}");
    }
}
