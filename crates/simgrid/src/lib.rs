//! Virtual MPI runtime for reproducing distributed-memory algorithms on a
//! single machine.
//!
//! The paper evaluates on up to 262,144 Cray XC40 cores. This crate
//! substitutes that testbed with a **simulated cluster**:
//!
//! * every simulated MPI process ("rank") runs as a real OS thread and the
//!   algorithms execute for real — outputs are bit-for-bit what an MPI run
//!   would produce;
//! * communication happens over in-memory channels; collective operations
//!   ([`collectives`]) have MPI semantics (bcast / allreduce / allgather /
//!   alltoallv / gather / barrier);
//! * *time* is modeled, not measured: each rank carries a [`clock::RankClock`]
//!   advanced by an **α–β machine model** ([`cost::Machine`]) — latency `α`
//!   per message round, inverse bandwidth `β` per byte, and a calibrated
//!   seconds-per-work-unit for local computation. Every collective
//!   max-synchronizes the clocks of its participants, so the per-step
//!   breakdowns reported by [`stats`] reflect the critical path, exactly
//!   like the per-step maxima the paper plots.
//!
//! The α–β model is the same model the paper uses for its own complexity
//! analysis (Table II), which is what makes the modeled step breakdowns
//! comparable in *shape* to the paper's measurements.
//!
//! Because the simulation is deterministic, MPI usage errors that are
//! heisenbugs on a real machine are *repeatable* here: the [`check`] module
//! verifies the collective protocol as it runs (mismatched collective
//! order, root disagreement, malformed alltoallv descriptors, leaked
//! nonblocking handles, non-monotone clocks, stalls) and reports a
//! [`ProtocolViolation`] naming the ranks and operations involved.
//! Checking defaults on in debug builds — every test exercises it — and is
//! controlled by [`check::CheckMode`] / the `SPGEMM_CHECK` environment
//! variable.

#![forbid(unsafe_code)]

pub mod check;
pub mod clock;
pub mod collectives;
pub mod comm;
pub mod cost;
pub mod grid;
pub mod nonblocking;
pub mod runtime;
pub mod stats;
pub mod trace;

pub use check::{CheckMode, LoggedOp, OpKind, ProtocolViolation, ViolationKind};
pub use clock::{RankClock, Step, StepBreakdown};
pub use comm::{comm_id, Comm, Rank};
pub use cost::Machine;
pub use grid::{Grid2D, Grid3D};
pub use nonblocking::{PendingAlltoallv, PendingBcast, PendingOp};
pub use runtime::{
    run_ranks, run_ranks_checked, run_ranks_for_job, run_ranks_logged, run_ranks_seeded,
};
pub use stats::{max_breakdown, CacheCounters, KernelCounters, StepReport};
pub use trace::{chrome_trace_json, TraceEvent};
