//! α–β machine model and machine presets.
//!
//! Communication: a message of `n` bytes between two ranks costs
//! `α + β·n`; tree collectives over `q` ranks cost `α·⌈log₂ q⌉ + β·n`;
//! an all-to-all costs `α·(q−1) + β·n_max` — exactly the accounting the
//! paper uses in its Table II analysis.
//!
//! Computation: local kernels report abstract *work units*
//! (`spgemm-sparse::WorkStats::work_units`); a machine converts them to
//! seconds through `secs_per_work_unit`, divided by its
//! `threads_per_proc · thread_efficiency` — this models the paper's
//! MPI+OpenMP hybrid where threading accelerates local compute but never
//! communication (only one thread makes MPI calls).
//!
//! Presets are calibrated to the platforms of Table IV: `knl()` for
//! Cori-KNL (68-core Xeon Phi 7250, 16 threads per process in the paper's
//! runs), `haswell()` for Cori-Haswell (per Fig. 13: ~2.1× faster
//! computation, ~1.4× faster communication on the same Aries network), and
//! `knl_hyperthreaded()` for the 4-hardware-threads-per-core configuration
//! of Fig. 12 (more process-level parallelism, slower individual threads).

/// Cost-model parameters of a simulated machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Machine {
    /// Human-readable preset name.
    pub name: &'static str,
    /// Latency per message round, seconds.
    pub alpha: f64,
    /// Inverse bandwidth, seconds per byte (per process).
    pub beta: f64,
    /// Seconds per abstract work unit for a single thread.
    pub secs_per_work_unit: f64,
    /// OpenMP-style threads per MPI process.
    pub threads_per_proc: usize,
    /// Parallel efficiency of intra-process threading (0..=1].
    pub thread_efficiency: f64,
}

impl Machine {
    /// Cori-KNL-like preset (Intel Xeon Phi 7250, Cray Aries).
    pub fn knl() -> Machine {
        Machine {
            name: "knl",
            alpha: 2.0e-5,
            beta: 5.0e-10, // ~2 GB/s effective per process
            secs_per_work_unit: 6.5e-9,
            threads_per_proc: 16,
            thread_efficiency: 0.85,
        }
    }

    /// Cori-Haswell-like preset (Xeon E5-2698; Fig. 13: ~2.1× faster
    /// compute, ~1.4× faster effective communication, 6 threads/process).
    pub fn haswell() -> Machine {
        let knl = Machine::knl();
        Machine {
            name: "haswell",
            alpha: knl.alpha / 1.4,
            beta: knl.beta / 1.4,
            // 2.1× faster per process with 6 threads instead of 16: the
            // per-thread rate is correspondingly higher.
            secs_per_work_unit: knl.secs_per_work_unit / 2.1 * (6.0 * 0.9) / (16.0 * 0.85),
            threads_per_proc: 6,
            thread_efficiency: 0.9,
        }
    }

    /// Cori-KNL rebalanced for miniature workloads.
    ///
    /// The paper's matrices carry megabytes per process per broadcast, so
    /// its communication is **bandwidth-dominated** (β-term ≫ α-term by
    /// ~500×). A simulation-scale matrix is ~10³–10⁴× smaller, which would
    /// flip every collective into the latency-dominated regime and distort
    /// the figures' shapes (e.g. B-Bcast would grow with `b` through its
    /// round count, where the paper observes the b-independent bandwidth
    /// term). This preset shrinks α by 10³ — the same factor the payloads
    /// shrank — restoring the paper's α:β balance. Bench harnesses that
    /// reproduce bandwidth-regime figures use this; latency-sensitive
    /// studies (hyperthreading's grid growth, Fig. 12) keep [`Machine::knl`].
    pub fn knl_mini() -> Machine {
        Machine {
            name: "knl-mini",
            alpha: 2.0e-9,
            ..Machine::knl()
        }
    }

    /// Cori-KNL with 4 hardware threads per core (Fig. 12). Used with 4×
    /// the process count: each simulated thread runs ~2.5× slower than a
    /// dedicated core (but 4× more processes share the work, netting the
    /// paper's observed compute speedup), and 4× more processes share each
    /// node's Aries NIC, so per-process bandwidth drops 4× — which is why
    /// the paper sees communication time *increase* under hyperthreading.
    pub fn knl_hyperthreaded() -> Machine {
        let knl = Machine::knl();
        Machine {
            name: "knl-ht",
            secs_per_work_unit: knl.secs_per_work_unit * 2.5,
            beta: knl.beta * 4.0,
            ..knl
        }
    }

    /// Seconds for a size-`q` broadcast of `bytes` payload.
    pub fn bcast_secs(&self, q: usize, bytes: usize) -> f64 {
        if q <= 1 {
            return 0.0;
        }
        self.alpha * (q as f64).log2().ceil() + self.beta * bytes as f64
    }

    /// Seconds for a size-`q` allreduce of `bytes` payload.
    pub fn allreduce_secs(&self, q: usize, bytes: usize) -> f64 {
        if q <= 1 {
            return 0.0;
        }
        self.alpha * (q as f64).log2().ceil() + self.beta * bytes as f64
    }

    /// Seconds for a size-`q` allgather where each rank contributes
    /// `bytes_each`.
    pub fn allgather_secs(&self, q: usize, bytes_each: usize) -> f64 {
        if q <= 1 {
            return 0.0;
        }
        self.alpha * (q as f64).log2().ceil() + self.beta * (bytes_each * (q - 1)) as f64
    }

    /// Seconds for a point-to-point message of `bytes` (the α–β cost of a
    /// single send; also what a gather's non-root participants pay).
    pub fn send_secs(&self, bytes: usize) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// Seconds until a size-`q` gather of `bytes_each` per rank completes
    /// **at the root**: the binomial tree funnels `(q−1)·bytes_each` into
    /// the root over `⌈log₂ q⌉` latency rounds. Unlike an allgather there
    /// is no broadcast back and non-roots do not receive `(q−1)·bytes_each`
    /// — they finish after their own send ([`Machine::send_secs`]), exactly
    /// as an `MPI_Gather` returns early on non-root ranks.
    pub fn gather_secs(&self, q: usize, bytes_each: usize) -> f64 {
        if q <= 1 {
            return 0.0;
        }
        self.alpha * (q as f64).log2().ceil() + self.beta * (bytes_each * (q - 1)) as f64
    }

    /// Seconds for a size-`q` barrier: one tree round of latency, no
    /// payload.
    pub fn barrier_secs(&self, q: usize) -> f64 {
        if q <= 1 {
            return 0.0;
        }
        self.alpha * (q as f64).log2().ceil()
    }

    /// Seconds for a size-`q` all-to-all where the heaviest rank sends
    /// `max_bytes` in total (the paper's `αl + β·flops/(bp)` form for
    /// AllToAll-Fiber).
    pub fn alltoall_secs(&self, q: usize, max_bytes: usize) -> f64 {
        if q <= 1 {
            return 0.0;
        }
        self.alpha * (q - 1) as f64 + self.beta * max_bytes as f64
    }

    /// Effective per-process compute parallelism:
    /// `threads_per_proc · thread_efficiency`.
    ///
    /// The single definition of "per-thread work" shared by the modeled
    /// clock ([`Machine::compute_secs`]) and by the planner's calibrator,
    /// which divides *measured* per-process times by the same factor when
    /// fitting `secs_per_work_unit` from a real `Native` run.
    pub fn thread_scale(&self) -> f64 {
        self.threads_per_proc as f64 * self.thread_efficiency
    }

    /// Seconds of local computation for `work_units` abstract units.
    pub fn compute_secs(&self, work_units: f64) -> f64 {
        self.secs_per_work_unit * work_units / self.thread_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_collectives_are_free() {
        let m = Machine::knl();
        assert_eq!(m.bcast_secs(1, 1 << 20), 0.0);
        assert_eq!(m.alltoall_secs(1, 1 << 20), 0.0);
        assert_eq!(m.allreduce_secs(1, 8), 0.0);
        assert_eq!(m.gather_secs(1, 1 << 20), 0.0);
        assert_eq!(m.barrier_secs(1), 0.0);
    }

    #[test]
    fn gather_root_pays_tree_non_root_pays_one_send() {
        let m = Machine::knl();
        let (q, bytes) = (16, 1 << 20);
        let root = m.gather_secs(q, bytes);
        let leaf = m.send_secs(bytes);
        assert!(
            root > leaf,
            "root ingests (q-1)x the bytes a leaf sends: {root} vs {leaf}"
        );
        assert_eq!(leaf, m.alpha + m.beta * bytes as f64);
        // The root-side cost matches the tree formula exactly.
        assert_eq!(
            root,
            m.alpha * (q as f64).log2().ceil() + m.beta * (bytes * (q - 1)) as f64
        );
    }

    #[test]
    fn barrier_is_pure_latency() {
        let m = Machine::knl();
        assert_eq!(m.barrier_secs(8), m.alpha * 3.0);
        assert_eq!(m.barrier_secs(9), m.alpha * 4.0);
    }

    #[test]
    fn bcast_scales_log_in_ranks_linear_in_bytes() {
        let m = Machine::knl();
        let t4 = m.bcast_secs(4, 0);
        let t16 = m.bcast_secs(16, 0);
        assert!((t16 / t4 - 2.0).abs() < 1e-9, "latency doubles from q=4 to q=16");
        let b1 = m.bcast_secs(4, 1_000_000) - t4;
        let b2 = m.bcast_secs(4, 2_000_000) - t4;
        assert!((b2 / b1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn alltoall_latency_linear_in_q() {
        let m = Machine::knl();
        let t = |q| m.alltoall_secs(q, 0);
        assert!((t(16) / t(4) - 5.0).abs() < 1e-9); // (16-1)/(4-1)
    }

    #[test]
    fn haswell_computes_faster_than_knl() {
        let knl = Machine::knl();
        let has = Machine::haswell();
        let w = 1e9;
        let ratio = knl.compute_secs(w) / has.compute_secs(w);
        assert!((ratio - 2.1).abs() < 0.05, "expected ~2.1x, got {ratio}");
        assert!(knl.bcast_secs(16, 1 << 20) / has.bcast_secs(16, 1 << 20) > 1.3);
    }

    #[test]
    fn hyperthreading_slows_per_process_compute() {
        let knl = Machine::knl();
        let ht = Machine::knl_hyperthreaded();
        assert!(ht.compute_secs(1.0) > knl.compute_secs(1.0));
        // But 4x the processes doing 1/4 the work each nets a speedup:
        let per_proc_ht = ht.compute_secs(0.25);
        assert!(per_proc_ht < knl.compute_secs(1.0));
    }

    #[test]
    fn mini_preset_is_bandwidth_dominated_at_small_payloads() {
        let m = Machine::knl_mini();
        // A few-KB payload must already be bandwidth-bound under the mini
        // preset (it is latency-bound under the full preset).
        let q = 16;
        let bytes = 8 << 10;
        let beta_term = m.beta * bytes as f64;
        let alpha_term = m.alpha * (q as f64).log2().ceil();
        assert!(beta_term > 10.0 * alpha_term);
        let full = Machine::knl();
        assert!(full.alpha * (q as f64).log2().ceil() > full.beta * bytes as f64);
    }

    #[test]
    fn threading_divides_compute_time() {
        let mut m = Machine::knl();
        let t16 = m.compute_secs(1e6);
        m.threads_per_proc = 1;
        m.thread_efficiency = 1.0;
        let t1 = m.compute_secs(1e6);
        assert!(t1 / t16 > 10.0);
    }
}
