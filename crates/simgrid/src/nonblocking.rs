//! Nonblocking collectives: post now, complete later, overlap in between.
//!
//! `ibcast`/`ialltoallv` return typed [`PendingOp`] handles instead of
//! blocking. The payload moves eagerly over the real channels at post time
//! (channel sends never block), but **no modeled time is charged** until
//! [`PendingOp::wait`]. Completion semantics mirror MPI's progress rule
//! for collectives:
//!
//! * the operation cannot start before its **slowest poster**: completion
//!   time is `max(post times) + α–β cost` (the same cost its blocking
//!   twin charges);
//! * at `wait()`, only the **uncovered remainder** of that span is
//!   charged — residual entry skew to [`Step::Wait`] (as blocking
//!   collectives do via their clock sync), the rest to the op's step;
//! * whatever portion of the span this rank spent computing between post
//!   and wait is recorded as hidden time
//!   ([`crate::RankClock::record_overlap`]), so `secs + overlap_secs`
//!   equals the blocking variant's wait-plus-cost span and the overlap
//!   saving is directly readable from the breakdown.
//!
//! A rank that posts and immediately waits therefore charges exactly what
//! the blocking collective would — nonblocking with no intervening work is
//! cost-neutral, which keeps blocking-mode figures comparable.
//!
//! Handles are `#[must_use]`: dropping one without waiting would leave
//! payloads undelivered on peers and sequence counters skewed. SPMD
//! programs must post and wait in the same order on every member of a
//! communicator, exactly like the blocking collectives.

use crate::check::{HandleGuard, OpKind};
use crate::clock::Step;
use crate::comm::{Comm, Rank};
use std::sync::Arc;

/// Phases under one sequence number (each op draws a fresh seq from the
/// same counter the blocking collectives use, so phase values may repeat
/// theirs without collision).
const PH_REDUCE_UP: u64 = 0;
const PH_REDUCE_DOWN: u64 = 1;
const PH_DATA: u64 = 2;

fn tag(seq: u64, phase: u64) -> u64 {
    seq * 8 + phase
}

/// A posted-but-not-completed collective. Consume with [`PendingOp::wait`].
pub trait PendingOp {
    /// What the collective yields once complete.
    type Output;

    /// Block until the data is here, then charge the uncovered remainder of
    /// the modeled span and return the result.
    fn wait(self, rank: &mut Rank) -> Self::Output;
}

/// Shared completion accounting for all nonblocking ops.
///
/// The modeled span of the collective is `[posted_at, max_post + cost]`.
/// Work this rank did between post and wait covers a prefix of that span;
/// the remainder is charged (entry skew to [`Step::Wait`], the α–β cost
/// tail to `step`), and the covered portion is recorded as overlap.
fn complete(rank: &mut Rank, step: Step, posted_at: f64, max_post: f64, cost: f64, bytes: u64) {
    let complete_at = max_post + cost;
    let now = rank.clock().now();
    let hidden = (now.min(complete_at) - posted_at).max(0.0);
    rank.clock_mut().advance_to(Step::Wait, max_post);
    rank.clock_mut().advance_to(step, complete_at);
    rank.clock_mut().record_overlap(step, hidden);
    rank.clock_mut().record_comm(step, bytes, 1);
}

/// Handle of a posted [`Rank::ibcast`].
#[must_use = "a pending broadcast must be wait()ed: dropping it loses the payload and skews modeled time"]
pub struct PendingBcast<T> {
    comm: Comm,
    seq: u64,
    root: usize,
    step: Step,
    posted_at: f64,
    /// Present on the root (it already owns the payload).
    value: Option<Arc<T>>,
    /// Modeled size; authoritative on the root, travels with the data.
    bytes: usize,
    /// Flags the handle if dropped without [`PendingOp::wait`] (checker /
    /// debug builds).
    guard: HandleGuard,
}

impl<T> std::fmt::Debug for PendingBcast<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingBcast")
            .field("seq", &self.seq)
            .field("root", &self.root)
            .field("step", &self.step)
            .field("posted_at", &self.posted_at)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

/// Handle of a posted [`Rank::ialltoallv`].
#[must_use = "a pending all-to-all must be wait()ed: dropping it loses the payloads and skews modeled time"]
pub struct PendingAlltoallv<T> {
    comm: Comm,
    seq: u64,
    step: Step,
    posted_at: f64,
    /// Our own slot, which never travels.
    own: Option<T>,
    /// Total bytes this rank sent (for the heaviest-sender cost reduce).
    sent_bytes: u64,
    /// Flags the handle if dropped without [`PendingOp::wait`] (checker /
    /// debug builds).
    guard: HandleGuard,
}

impl<T> std::fmt::Debug for PendingAlltoallv<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingAlltoallv")
            .field("seq", &self.seq)
            .field("step", &self.step)
            .field("posted_at", &self.posted_at)
            .field("sent_bytes", &self.sent_bytes)
            .finish_non_exhaustive()
    }
}

impl Rank {
    /// Post a broadcast of `value` (present on `root` only) without
    /// charging modeled time. See [`Rank::bcast`] for the blocking twin's
    /// argument conventions; completion and charging happen at
    /// [`PendingOp::wait`] on the returned handle.
    pub fn ibcast<T: Send + Sync + 'static>(
        &mut self,
        comm: &Comm,
        root: usize,
        value: Option<Arc<T>>,
        bytes: usize,
        step: Step,
    ) -> PendingBcast<T> {
        let q = comm.size();
        let seq = self.next_seq(comm);
        self.check_enter(comm, seq, OpKind::IbcastPost, Some(root), None, false);
        let me = comm.my_index();
        let value = if me == root {
            let v = value.expect("ibcast root must supply the payload");
            for i in 0..q {
                if i != root {
                    self.send_raw(comm, i, tag(seq, PH_DATA), (Arc::clone(&v), bytes as u64));
                }
            }
            Some(v)
        } else {
            assert!(value.is_none(), "non-root rank supplied an ibcast payload");
            None
        };
        PendingBcast {
            guard: self.handle_guard(OpKind::IbcastPost, comm, seq),
            comm: comm.clone(),
            seq,
            root,
            step,
            posted_at: self.clock().now(),
            value,
            bytes,
        }
    }

    /// Post an all-to-all with per-destination payloads without charging
    /// modeled time. Same conventions as the blocking [`Rank::alltoallv`]
    /// (heaviest-sender cost, receive-side byte recording); completion and
    /// charging happen at [`PendingOp::wait`] on the returned handle.
    pub fn ialltoallv<T: Send + 'static>(
        &mut self,
        comm: &Comm,
        parts: Vec<T>,
        bytes: &[usize],
        step: Step,
    ) -> PendingAlltoallv<T> {
        let q = comm.size();
        let seq = self.next_seq(comm);
        self.check_enter(
            comm,
            seq,
            OpKind::IalltoallvPost,
            None,
            Some((parts.len(), bytes.len())),
            false,
        );
        assert_eq!(parts.len(), q, "ialltoallv needs one part per member");
        assert_eq!(bytes.len(), q, "ialltoallv needs one size per member");
        let me = comm.my_index();
        let sent_bytes = (bytes.iter().sum::<usize>() - bytes[me]) as u64;
        let mut own: Option<T> = None;
        for (i, part) in parts.into_iter().enumerate() {
            if i == me {
                own = Some(part);
            } else {
                self.send_raw(comm, i, tag(seq, PH_DATA), (part, bytes[i] as u64));
            }
        }
        PendingAlltoallv {
            guard: self.handle_guard(OpKind::IalltoallvPost, comm, seq),
            comm: comm.clone(),
            seq,
            step,
            posted_at: self.clock().now(),
            own,
            sent_bytes,
        }
    }

    /// Cost-free max-reduce of `(post_time, sent_bytes)` through member 0.
    /// Real messages, zero modeled time — it computes the completion time
    /// rather than being part of the modeled operation.
    fn reduce_post_max(&mut self, comm: &Comm, seq: u64, value: (f64, u64)) -> (f64, u64) {
        let q = comm.size();
        if q == 1 {
            return value;
        }
        let me = comm.my_index();
        if me == 0 {
            let mut acc = value;
            for i in 1..q {
                let (t, b) = self.recv_raw::<(f64, u64)>(comm, i, tag(seq, PH_REDUCE_UP));
                acc = (acc.0.max(t), acc.1.max(b));
            }
            for i in 1..q {
                self.send_raw(comm, i, tag(seq, PH_REDUCE_DOWN), acc);
            }
            acc
        } else {
            self.send_raw(comm, 0, tag(seq, PH_REDUCE_UP), value);
            self.recv_raw::<(f64, u64)>(comm, 0, tag(seq, PH_REDUCE_DOWN))
        }
    }
}

impl<T: Send + Sync + 'static> PendingOp for PendingBcast<T> {
    type Output = Arc<T>;

    fn wait(mut self, rank: &mut Rank) -> Arc<T> {
        self.guard.disarm();
        let q = self.comm.size();
        let me = self.comm.my_index();
        let (out, bytes) = if me == self.root {
            (self.value.expect("root payload present"), self.bytes)
        } else {
            let (v, b) =
                rank.recv_raw::<(Arc<T>, u64)>(&self.comm, self.root, tag(self.seq, PH_DATA));
            (v, b as usize)
        };
        let (max_post, _) = rank.reduce_post_max(&self.comm, self.seq, (self.posted_at, 0));
        let cost = rank.machine().bcast_secs(q, bytes);
        complete(rank, self.step, self.posted_at, max_post, cost, bytes as u64);
        out
    }
}

impl<T: Send + 'static> PendingOp for PendingAlltoallv<T> {
    type Output = Vec<T>;

    fn wait(mut self, rank: &mut Rank) -> Vec<T> {
        self.guard.disarm();
        let q = self.comm.size();
        let me = self.comm.my_index();
        let mut out: Vec<Option<T>> = (0..q).map(|_| None).collect();
        out[me] = self.own;
        let mut recv_bytes = 0u64;
        for (i, slot) in out.iter_mut().enumerate() {
            if i != me {
                let (part, b) = rank.recv_raw::<(T, u64)>(&self.comm, i, tag(self.seq, PH_DATA));
                recv_bytes += b;
                *slot = Some(part);
            }
        }
        let (max_post, max_sent) =
            rank.reduce_post_max(&self.comm, self.seq, (self.posted_at, self.sent_bytes));
        let cost = rank.machine().alltoall_secs(q, max_sent as usize);
        complete(rank, self.step, self.posted_at, max_post, cost, recv_bytes);
        out.into_iter().map(Option::unwrap).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Machine;
    use crate::runtime::run_ranks;

    #[test]
    fn ibcast_delivers_to_all() {
        let results = run_ranks(5, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            let payload = (comm.my_index() == 3).then(|| Arc::new(vec![7u32, 8, 9]));
            let pending = rank.ibcast(&comm, 3, payload, 12, Step::ABcast);
            let v = pending.wait(rank);
            (*v).clone()
        });
        assert!(results.iter().all(|v| v == &vec![7, 8, 9]));
    }

    #[test]
    fn immediate_wait_is_cost_neutral_with_blocking() {
        // Post-then-wait with no intervening work charges exactly the
        // blocking cost and records zero overlap.
        let bytes = 1_000_000;
        let results = run_ranks(8, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            let payload = (comm.my_index() == 0).then(|| Arc::new(0u8));
            let pending = rank.ibcast(&comm, 0, payload, bytes, Step::ABcast);
            let _ = pending.wait(rank);
            let b = rank.clock().breakdown();
            (b.secs_of(Step::ABcast), b.overlap_total(), b.bytes_of(Step::ABcast))
        });
        let expect = Machine::knl().bcast_secs(8, bytes);
        for &(t, hidden, recorded) in &results {
            assert!((t - expect).abs() < 1e-12, "got {t}, expected {expect}");
            assert_eq!(hidden, 0.0);
            assert_eq!(recorded, bytes as u64);
        }
    }

    #[test]
    fn compute_between_post_and_wait_hides_cost() {
        // Every rank posts at t=0, computes for longer than the broadcast
        // takes, then waits: the full cost is hidden and no extra modeled
        // time is charged at wait.
        let bytes = 1_000_000;
        let m = Machine::knl();
        let cost = m.bcast_secs(4, bytes);
        let work = cost * 3.0;
        let results = run_ranks(4, m, |rank| {
            let comm = rank.world_comm();
            let payload = (comm.my_index() == 0).then(|| Arc::new(0u8));
            let pending = rank.ibcast(&comm, 0, payload, bytes, Step::ABcast);
            rank.clock_mut().advance(Step::LocalMultiply, work);
            let _ = pending.wait(rank);
            let b = rank.clock().breakdown();
            (rank.clock().now(), b.secs_of(Step::ABcast), b.overlap_of(Step::ABcast))
        });
        for &(now, charged, hidden) in &results {
            assert!((now - work).abs() < 1e-12, "wait added time despite full overlap");
            assert_eq!(charged, 0.0);
            assert!((hidden - cost).abs() < 1e-12, "hidden {hidden} != cost {cost}");
        }
    }

    #[test]
    fn partial_overlap_charges_the_remainder() {
        let bytes = 1_000_000;
        let m = Machine::knl();
        let cost = m.bcast_secs(4, bytes);
        let work = cost / 2.0;
        let results = run_ranks(4, m, |rank| {
            let comm = rank.world_comm();
            let payload = (comm.my_index() == 0).then(|| Arc::new(0u8));
            let pending = rank.ibcast(&comm, 0, payload, bytes, Step::ABcast);
            rank.clock_mut().advance(Step::LocalMultiply, work);
            let _ = pending.wait(rank);
            let b = rank.clock().breakdown();
            (b.secs_of(Step::ABcast), b.overlap_of(Step::ABcast))
        });
        for &(charged, hidden) in &results {
            assert!((charged - (cost - work)).abs() < 1e-12);
            assert!((hidden - work).abs() < 1e-12);
            // Invariant: charged + hidden equals the blocking cost.
            assert!((charged + hidden - cost).abs() < 1e-12);
        }
    }

    #[test]
    fn completion_waits_for_slowest_poster() {
        // Rank 1 computes 10 s before posting; everyone completes at
        // 10 + cost, with the skew on the fast ranks attributed to Wait.
        let bytes = 1 << 20;
        let m = Machine::knl();
        let results = run_ranks(2, m, |rank| {
            let comm = rank.world_comm();
            if rank.rank() == 1 {
                rank.clock_mut().advance(Step::LocalMultiply, 10.0);
            }
            let payload = (comm.my_index() == 0).then(|| Arc::new(0u8));
            let pending = rank.ibcast(&comm, 0, payload, bytes, Step::BBcast);
            let _ = pending.wait(rank);
            let b = rank.clock().breakdown();
            (rank.clock().now(), b.secs_of(Step::Wait), b.secs_of(Step::BBcast))
        });
        let cost = m.bcast_secs(2, bytes);
        for &(now, _, charged) in &results {
            assert!((now - (10.0 + cost)).abs() < 1e-12);
            assert!((charged - cost).abs() < 1e-12);
        }
        assert!((results[0].1 - 10.0).abs() < 1e-12, "rank 0 waits out the skew");
        assert_eq!(results[1].1, 0.0);
    }

    #[test]
    fn ialltoallv_transposes_and_accounts_like_blocking() {
        let results = run_ranks(2, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            let bytes = if rank.rank() == 0 { [0, 1_000_000] } else { [1, 0] };
            let parts: Vec<String> = (0..2).map(|i| format!("{}->{}", rank.rank(), i)).collect();
            let pending = rank.ialltoallv(&comm, parts, &bytes, Step::AllToAllFiber);
            let out = pending.wait(rank);
            let b = rank.clock().breakdown();
            (out, b.secs_of(Step::AllToAllFiber), b.bytes_of(Step::AllToAllFiber))
        });
        let expect = Machine::knl().alltoall_secs(2, 1_000_000);
        for (r, (out, secs, bytes)) in results.iter().enumerate() {
            for (i, s) in out.iter().enumerate() {
                assert_eq!(s, &format!("{i}->{r}"));
            }
            assert!((secs - expect).abs() < 1e-12, "heaviest sender sets the cost");
            // Receive-side recording, as in the blocking variant.
            assert_eq!(*bytes, if r == 0 { 1 } else { 1_000_000 });
        }
    }

    #[test]
    fn single_member_comm_is_free() {
        let results = run_ranks(1, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            let pending = rank.ibcast(&comm, 0, Some(Arc::new(5u64)), 64, Step::ABcast);
            let v = *pending.wait(rank);
            let pending = rank.ialltoallv(&comm, vec![v], &[64], Step::AllToAllFiber);
            let out = pending.wait(rank);
            (out, rank.clock().now())
        });
        assert_eq!(results[0].0, vec![5]);
        assert_eq!(results[0].1, 0.0);
    }

    #[test]
    fn pipelined_posts_interleave_with_blocking_collectives() {
        // Post two broadcasts back-to-back, run a blocking allreduce on the
        // same communicator in between, then wait both — tag sequencing and
        // the stash keep everything straight.
        let results = run_ranks(3, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            let p0 = (comm.my_index() == 0).then(|| Arc::new(10u32));
            let pending0 = rank.ibcast(&comm, 0, p0, 4, Step::ABcast);
            let p1 = (comm.my_index() == 1).then(|| Arc::new(20u32));
            let pending1 = rank.ibcast(&comm, 1, p1, 4, Step::BBcast);
            let sum = rank.allreduce(&comm, 1u64, |a, b| a + b, 8, Step::Other);
            let v0 = *pending0.wait(rank);
            let v1 = *pending1.wait(rank);
            (v0, v1, sum)
        });
        assert!(results.iter().all(|&r| r == (10, 20, 3)));
    }
}
