//! Spawning and joining simulated ranks.

use crate::check::{CheckMode, CheckShared, LoggedOp};
use crate::comm::{Envelope, Rank, WorldShared};
use crate::cost::Machine;
use crossbeam::channel::unbounded;
use std::sync::Arc;

/// Default perturbation seed: the `SPGEMM_PERTURB_SEED` environment
/// variable if it parses as a `u64`, otherwise none. Lets whole test
/// suites re-run under schedule perturbation without code changes.
fn env_perturb_seed() -> Option<u64> {
    std::env::var("SPGEMM_PERTURB_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// Stack size per simulated rank. Local SpGEMM kernels recurse little, so a
/// modest stack keeps thousand-rank simulations cheap.
const RANK_STACK_BYTES: usize = 2 * 1024 * 1024;

/// Run `f` on `p` simulated ranks (one OS thread each) under `machine`'s
/// cost model; returns each rank's result in rank order.
///
/// Protocol checking follows [`CheckMode::default_mode`]: on in debug
/// builds and whenever `SPGEMM_CHECK` enables it, so every test exercises
/// the checker. Use [`run_ranks_checked`] to pick the mode explicitly.
///
/// Panics in any rank are propagated (with the rank id) after all threads
/// are joined, so a failing assertion inside a simulated algorithm fails
/// the enclosing test.
pub fn run_ranks<R, F>(p: usize, machine: Machine, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Send + Sync,
{
    run_ranks_checked(p, machine, CheckMode::default_mode(), f)
}

/// [`run_ranks`] with an explicit protocol-checking mode.
///
/// Failure reporting gives algorithmic panics precedence: if a rank failed
/// for a reason other than a protocol violation or a secondary
/// infrastructure panic it caused (a peer's mailbox closing early), that
/// panic (with its rank id) is re-raised first; otherwise the checker's
/// consolidated `protocol violation` report is raised.
///
/// Schedule perturbation follows the `SPGEMM_PERTURB_SEED` environment
/// variable; use [`run_ranks_seeded`] to pick the seed explicitly.
pub fn run_ranks_checked<R, F>(p: usize, machine: Machine, mode: CheckMode, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Send + Sync,
{
    run_ranks_inner(p, machine, mode, env_perturb_seed(), false, None, f).0
}

/// [`run_ranks_checked`] with an explicit schedule-perturbation seed.
///
/// With `Some(seed)`, every rank injects deterministic seed-derived
/// scheduler jitter at its communication points, permuting thread wakeup
/// order at every rendezvous. Algorithm results must be bit-identical
/// under any seed; runs that differ (or trip the checker only under some
/// seeds) have an order-dependence bug the default schedule was hiding.
pub fn run_ranks_seeded<R, F>(
    p: usize,
    machine: Machine,
    mode: CheckMode,
    seed: Option<u64>,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Send + Sync,
{
    run_ranks_inner(p, machine, mode, seed, false, None, f).0
}

/// [`run_ranks_seeded`] with a job label for multi-tenant packing: when
/// several simulated clusters run concurrently in one process (the serve
/// subsystem schedules one `run_ranks` world per admitted job), rank
/// threads are named `job-J-rank-I` instead of `rank-I` and panic reports
/// lead with the job id — so a stack dump or failure message of a packed
/// server names *which* job's world misbehaved.
///
/// A `None` seed falls back to `SPGEMM_PERTURB_SEED`, like
/// [`run_ranks_checked`].
pub fn run_ranks_for_job<R, F>(
    p: usize,
    machine: Machine,
    mode: CheckMode,
    seed: Option<u64>,
    job: u64,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Send + Sync,
{
    let seed = seed.or_else(env_perturb_seed);
    run_ranks_inner(p, machine, mode, seed, false, Some(job), f).0
}

/// [`run_ranks`] with the protocol checker forced on and its op log
/// enabled: returns each rank's result plus every collective/nonblocking
/// registration the run made, in checker arrival order (each rank's
/// subsequence is its program order). The schedule auditor's conformance
/// tests compare symbolic schedules against this ground truth.
pub fn run_ranks_logged<R, F>(p: usize, machine: Machine, f: F) -> (Vec<R>, Vec<LoggedOp>)
where
    R: Send,
    F: Fn(&mut Rank) -> R + Send + Sync,
{
    run_ranks_inner(p, machine, CheckMode::Check, env_perturb_seed(), true, None, f)
}

fn run_ranks_inner<R, F>(
    p: usize,
    machine: Machine,
    mode: CheckMode,
    perturb: Option<u64>,
    log: bool,
    job: Option<u64>,
    f: F,
) -> (Vec<R>, Vec<LoggedOp>)
where
    R: Send,
    F: Fn(&mut Rank) -> R + Send + Sync,
{
    assert!(p > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Envelope>();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let check = mode.is_on().then(|| Arc::new(CheckShared::new(p)));
    if log {
        check
            .as_ref()
            .expect("op logging requires CheckMode::Check")
            .enable_logging();
    }
    let world = Arc::new(WorldShared {
        p,
        senders,
        check: check.clone(),
        perturb,
    });
    let f = &f;
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    let mut failures: Vec<(usize, String)> = Vec::new();

    crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(p);
        for (i, (rx, slot)) in receivers.iter_mut().zip(results.iter_mut()).enumerate() {
            let rx = rx.take().expect("receiver already taken");
            let world = Arc::clone(&world);
            let handle = s
                .builder()
                .name(match job {
                    Some(j) => format!("job-{j}-rank-{i}"),
                    None => format!("rank-{i}"),
                })
                .stack_size(RANK_STACK_BYTES)
                .spawn(move |_| {
                    let mut rank = Rank::new(i, world, rx, machine);
                    *slot = Some(f(&mut rank));
                })
                .expect("failed to spawn rank thread");
            handles.push((i, handle));
        }
        for (i, h) in handles {
            if let Err(e) = h.join() {
                let msg = e
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic>".into());
                failures.push((i, msg));
            }
        }
    })
    .expect("rank scope failed");

    let who = |i: usize| match job {
        Some(j) => format!("job {j} rank {i}"),
        None => format!("rank {i}"),
    };
    if !failures.is_empty() {
        // An algorithmic failure outranks the secondary panics it causes on
        // peer ranks: protocol reports (stall, poison wake-ups) *and*
        // infrastructure panics from mailboxes closing when the failed rank's
        // thread died ("rank mailbox closed ..."). A low rank dying of the
        // latter must not mask the real failure on a higher rank.
        let secondary =
            |msg: &str| msg.contains("protocol violation") || msg.contains("rank mailbox closed");
        if let Some((i, msg)) = failures.iter().find(|(_, msg)| !secondary(msg)) {
            panic!("{} panicked: {msg}", who(*i));
        }
        if let Some(check) = &check {
            let violations = check.violations();
            if !violations.is_empty() {
                let report: Vec<String> = violations.iter().map(ToString::to_string).collect();
                panic!("{}", report.join("\n"));
            }
        }
        // Only secondary infrastructure panics and no checker report (e.g.
        // checking off): surface the first one rather than nothing.
        let (i, msg) = &failures[0];
        panic!("{} panicked: {msg}", who(*i));
    }

    // Violations recorded at exit (orphaned point-to-point sends) don't
    // panic any rank — the threads have already finished — so a clean join
    // must still surface them.
    if let Some(check) = &check {
        let violations = check.violations();
        if !violations.is_empty() {
            let report: Vec<String> = violations.iter().map(ToString::to_string).collect();
            panic!("{}", report.join("\n"));
        }
    }

    let op_log = check.as_ref().map(|c| c.take_op_log()).unwrap_or_default();
    let results = results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("{} produced no result", who(i))))
        .collect();
    (results, op_log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let r = run_ranks(8, Machine::knl(), |rank| rank.rank() * 10);
        assert_eq!(r, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_rank_works() {
        let r = run_ranks(1, Machine::knl(), |rank| rank.world_size());
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn many_ranks_spawn_cheaply() {
        let r = run_ranks(256, Machine::knl(), |rank| rank.rank());
        assert_eq!(r.len(), 256);
        assert_eq!(r[255], 255);
    }

    #[test]
    #[should_panic(expected = "rank 3 panicked")]
    fn panics_propagate_with_rank_id() {
        run_ranks(4, Machine::knl(), |rank| {
            if rank.rank() == 3 {
                panic!("boom");
            }
            0
        });
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked: boom")]
    fn algorithmic_panic_outranks_secondary_infrastructure_panics() {
        // Rank 2 dies mid-run; rank 0 keeps sending to it until the dead
        // rank's mailbox closes and the send panics with the
        // "rank mailbox closed" infrastructure message. That secondary
        // panic (on a *lower* rank id, hence joined first) must not mask
        // the real algorithmic failure on rank 2.
        run_ranks_checked(3, Machine::knl(), CheckMode::Off, |rank| {
            let comm = rank.world_comm();
            match rank.rank() {
                2 => panic!("boom"),
                0 => {
                    let mut tag = 0u64;
                    loop {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                        rank.send(&comm, 2, tag, 0u8);
                        tag += 1;
                    }
                }
                _ => (),
            }
        });
    }

    #[test]
    fn perturbed_schedules_are_bit_identical() {
        let program = |rank: &mut Rank| {
            let comm = rank.world_comm();
            let me = rank.rank();
            let p = rank.world_size();
            rank.send(&comm, (me + 1) % p, 7, me as u64);
            let from_prev: u64 = rank.recv(&comm, (me + p - 1) % p, 7);
            rank.barrier(&comm, crate::clock::Step::Other);
            from_prev
        };
        let base = run_ranks_seeded(8, Machine::knl(), CheckMode::Check, None, program);
        for seed in [1u64, 2, 3] {
            let perturbed =
                run_ranks_seeded(8, Machine::knl(), CheckMode::Check, Some(seed), program);
            assert_eq!(perturbed, base, "seed {seed} changed results");
        }
    }

    #[test]
    fn op_log_records_per_rank_program_order() {
        let (_, log) = run_ranks_logged(4, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            rank.barrier(&comm, crate::clock::Step::Other);
            rank.barrier(&comm, crate::clock::Step::Other);
        });
        // 4 ranks × 2 barriers, and each rank's subsequence has seq 1, 2.
        assert_eq!(log.len(), 8);
        for r in 0..4 {
            let seqs: Vec<u64> = log.iter().filter(|o| o.rank == r).map(|o| o.seq).collect();
            assert_eq!(seqs, vec![1, 2]);
        }
        assert!(log
            .iter()
            .all(|o| o.kind == crate::check::OpKind::Barrier && o.root.is_none()));
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn algorithmic_panic_outranks_secondary_protocol_reports() {
        // Rank 2 dies mid-run while the others sit in a barrier; the
        // checker wakes them with a stall report, but the original panic
        // must be the one the caller sees.
        run_ranks_checked(4, Machine::knl(), CheckMode::Check, |rank| {
            let comm = rank.world_comm();
            if rank.rank() == 2 {
                panic!("boom");
            }
            rank.barrier(&comm, crate::clock::Step::Other);
        });
    }
}
