//! Spawning and joining simulated ranks.

use crate::check::{CheckMode, CheckShared};
use crate::comm::{Envelope, Rank, WorldShared};
use crate::cost::Machine;
use crossbeam::channel::unbounded;
use std::sync::Arc;

/// Stack size per simulated rank. Local SpGEMM kernels recurse little, so a
/// modest stack keeps thousand-rank simulations cheap.
const RANK_STACK_BYTES: usize = 2 * 1024 * 1024;

/// Run `f` on `p` simulated ranks (one OS thread each) under `machine`'s
/// cost model; returns each rank's result in rank order.
///
/// Protocol checking follows [`CheckMode::default_mode`]: on in debug
/// builds and whenever `SPGEMM_CHECK` enables it, so every test exercises
/// the checker. Use [`run_ranks_checked`] to pick the mode explicitly.
///
/// Panics in any rank are propagated (with the rank id) after all threads
/// are joined, so a failing assertion inside a simulated algorithm fails
/// the enclosing test.
pub fn run_ranks<R, F>(p: usize, machine: Machine, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Send + Sync,
{
    run_ranks_checked(p, machine, CheckMode::default_mode(), f)
}

/// [`run_ranks`] with an explicit protocol-checking mode.
///
/// Failure reporting gives algorithmic panics precedence: if a rank failed
/// for a reason other than a protocol violation, that panic (with its rank
/// id) is re-raised first; otherwise the checker's consolidated
/// `protocol violation` report is raised.
pub fn run_ranks_checked<R, F>(p: usize, machine: Machine, mode: CheckMode, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Send + Sync,
{
    assert!(p > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Envelope>();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let check = mode.is_on().then(|| Arc::new(CheckShared::new(p)));
    let world = Arc::new(WorldShared {
        p,
        senders,
        check: check.clone(),
    });
    let f = &f;
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    let mut failures: Vec<(usize, String)> = Vec::new();

    crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(p);
        for (i, (rx, slot)) in receivers.iter_mut().zip(results.iter_mut()).enumerate() {
            let rx = rx.take().expect("receiver already taken");
            let world = Arc::clone(&world);
            let handle = s
                .builder()
                .name(format!("rank-{i}"))
                .stack_size(RANK_STACK_BYTES)
                .spawn(move |_| {
                    let mut rank = Rank::new(i, world, rx, machine);
                    *slot = Some(f(&mut rank));
                })
                .expect("failed to spawn rank thread");
            handles.push((i, handle));
        }
        for (i, h) in handles {
            if let Err(e) = h.join() {
                let msg = e
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic>".into());
                failures.push((i, msg));
            }
        }
    })
    .expect("rank scope failed");

    if !failures.is_empty() {
        // An algorithmic failure outranks the secondary protocol panics it
        // causes on peer ranks (stall reports, poison wake-ups).
        if let Some((i, msg)) = failures
            .iter()
            .find(|(_, msg)| !msg.contains("protocol violation"))
        {
            panic!("rank {i} panicked: {msg}");
        }
        if let Some(check) = &check {
            let violations = check.violations();
            if !violations.is_empty() {
                let report: Vec<String> = violations.iter().map(ToString::to_string).collect();
                panic!("{}", report.join("\n"));
            }
        }
        let (i, msg) = &failures[0];
        panic!("rank {i} panicked: {msg}");
    }

    // Violations recorded at exit (orphaned point-to-point sends) don't
    // panic any rank — the threads have already finished — so a clean join
    // must still surface them.
    if let Some(check) = &check {
        let violations = check.violations();
        if !violations.is_empty() {
            let report: Vec<String> = violations.iter().map(ToString::to_string).collect();
            panic!("{}", report.join("\n"));
        }
    }

    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("rank {i} produced no result")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let r = run_ranks(8, Machine::knl(), |rank| rank.rank() * 10);
        assert_eq!(r, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_rank_works() {
        let r = run_ranks(1, Machine::knl(), |rank| rank.world_size());
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn many_ranks_spawn_cheaply() {
        let r = run_ranks(256, Machine::knl(), |rank| rank.rank());
        assert_eq!(r.len(), 256);
        assert_eq!(r[255], 255);
    }

    #[test]
    #[should_panic(expected = "rank 3 panicked")]
    fn panics_propagate_with_rank_id() {
        run_ranks(4, Machine::knl(), |rank| {
            if rank.rank() == 3 {
                panic!("boom");
            }
            0
        });
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn algorithmic_panic_outranks_secondary_protocol_reports() {
        // Rank 2 dies mid-run while the others sit in a barrier; the
        // checker wakes them with a stall report, but the original panic
        // must be the one the caller sees.
        run_ranks_checked(4, Machine::knl(), CheckMode::Check, |rank| {
            let comm = rank.world_comm();
            if rank.rank() == 2 {
                panic!("boom");
            }
            rank.barrier(&comm, crate::clock::Step::Other);
        });
    }
}
