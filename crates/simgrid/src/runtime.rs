//! Spawning and joining simulated ranks.

use crate::comm::{Envelope, Rank, WorldShared};
use crate::cost::Machine;
use crossbeam::channel::unbounded;
use std::sync::Arc;

/// Stack size per simulated rank. Local SpGEMM kernels recurse little, so a
/// modest stack keeps thousand-rank simulations cheap.
const RANK_STACK_BYTES: usize = 2 * 1024 * 1024;

/// Run `f` on `p` simulated ranks (one OS thread each) under `machine`'s
/// cost model; returns each rank's result in rank order.
///
/// Panics in any rank are propagated (with the rank id) after all threads
/// are joined, so a failing assertion inside a simulated algorithm fails
/// the enclosing test.
pub fn run_ranks<R, F>(p: usize, machine: Machine, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Rank) -> R + Send + Sync,
{
    assert!(p > 0, "need at least one rank");
    let mut senders = Vec::with_capacity(p);
    let mut receivers = Vec::with_capacity(p);
    for _ in 0..p {
        let (tx, rx) = unbounded::<Envelope>();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let world = Arc::new(WorldShared { p, senders });
    let f = &f;
    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();

    crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(p);
        for (i, (rx, slot)) in receivers.iter_mut().zip(results.iter_mut()).enumerate() {
            let rx = rx.take().expect("receiver already taken");
            let world = Arc::clone(&world);
            let handle = s
                .builder()
                .name(format!("rank-{i}"))
                .stack_size(RANK_STACK_BYTES)
                .spawn(move |_| {
                    let mut rank = Rank::new(i, world, rx, machine);
                    *slot = Some(f(&mut rank));
                })
                .expect("failed to spawn rank thread");
            handles.push((i, handle));
        }
        for (i, h) in handles {
            if let Err(e) = h.join() {
                let msg = e
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic>".into());
                panic!("rank {i} panicked: {msg}");
            }
        }
    })
    .expect("rank scope failed");

    results
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("rank {i} produced no result")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let r = run_ranks(8, Machine::knl(), |rank| rank.rank() * 10);
        assert_eq!(r, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn single_rank_works() {
        let r = run_ranks(1, Machine::knl(), |rank| rank.world_size());
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn many_ranks_spawn_cheaply() {
        let r = run_ranks(256, Machine::knl(), |rank| rank.rank());
        assert_eq!(r.len(), 256);
        assert_eq!(r[255], 255);
    }

    #[test]
    #[should_panic(expected = "rank 3 panicked")]
    fn panics_propagate_with_rank_id() {
        run_ranks(4, Machine::knl(), |rank| {
            if rank.rank() == 3 {
                panic!("boom");
            }
            0
        });
    }
}
