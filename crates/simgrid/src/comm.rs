//! Ranks, communicators, and typed point-to-point messaging.
//!
//! A [`Rank`] is the per-thread context of one simulated MPI process. A
//! [`Comm`] is a subgroup of ranks (like an `MPI_Comm`): the process-row,
//! process-column, fiber, and layer communicators of the 3D grid are all
//! `Comm`s. Messages are matched on `(source, communicator, tag)` with
//! out-of-order arrivals stashed, so independent collectives on different
//! communicators cannot cross-talk.

use crate::check::CheckShared;
use crate::clock::{RankClock, Step};
use crate::cost::Machine;
use crossbeam::channel::{Receiver, Sender};
use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

/// A message in flight.
pub(crate) struct Envelope {
    pub src: usize,
    pub comm_id: u64,
    pub tag: u64,
    pub payload: Box<dyn Any + Send>,
}

/// Shared world state: one channel endpoint per rank, plus the protocol
/// checker when [`crate::check::CheckMode::Check`] is active.
pub(crate) struct WorldShared {
    pub p: usize,
    pub senders: Vec<Sender<Envelope>>,
    pub check: Option<Arc<CheckShared>>,
    /// Schedule-perturbation seed: when set, every rank injects a
    /// deterministic, seed-derived amount of scheduler jitter at
    /// communication points ([`Rank::perturb_point`]), permuting thread
    /// wakeup order at rendezvous without changing any result.
    pub perturb: Option<u64>,
}

/// A communicator: an ordered group of global ranks.
///
/// The member list order defines member indices (root indices, all-to-all
/// slot order). Identified by a stable hash of `(members, color)` so that
/// every member derives the same id without coordination.
#[derive(Clone, Debug)]
pub struct Comm {
    members: Arc<Vec<usize>>,
    my_index: usize,
    id: u64,
}

impl Comm {
    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// This rank's index within the communicator.
    pub fn my_index(&self) -> usize {
        self.my_index
    }

    /// Global rank of member `index`.
    pub fn member(&self, index: usize) -> usize {
        self.members[index]
    }

    /// All members (global ranks, in index order).
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Stable communicator id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Build a communicator descriptor for global rank `rank` without a
    /// live runtime.
    ///
    /// Communicator identity is a pure function of `(members, color)` —
    /// [`Rank::comm`] delegates here — which is what lets the schedule
    /// auditor (`spgemm_core::audit`) construct the exact communicators a
    /// real run would use, payload-free.
    pub fn for_rank(members: Vec<usize>, color: u64, rank: usize) -> Comm {
        let my_index = members
            .iter()
            .position(|&g| g == rank)
            .expect("constructing a communicator that does not contain this rank");
        let id = comm_id(&members, color);
        Comm {
            members: Arc::new(members),
            my_index,
            id,
        }
    }
}

/// Stable communicator id for a member list + color.
///
/// The derivation every member uses to agree on an id without
/// coordination, exposed so symbolic executors can mirror it.
pub fn comm_id(members: &[usize], color: u64) -> u64 {
    fnv1a(
        members
            .iter()
            .flat_map(|&m| (m as u64).to_le_bytes())
            .chain(color.to_le_bytes()),
    )
}

fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Per-thread context of one simulated MPI process.
pub struct Rank {
    rank: usize,
    world: Arc<WorldShared>,
    rx: Receiver<Envelope>,
    stash: Vec<Envelope>,
    clock: RankClock,
    machine: Machine,
    /// Per-communicator collective sequence numbers (SPMD programs call
    /// collectives on a communicator in identical order on every member,
    /// so these counters agree without coordination).
    op_seq: HashMap<u64, u64>,
    /// Count of perturbation points passed, so each point draws fresh
    /// jitter from the seed (interior mutability: perturbation points sit
    /// on `&self` paths like [`Rank::send`]).
    jitter: Cell<u64>,
}

impl Rank {
    pub(crate) fn new(
        rank: usize,
        world: Arc<WorldShared>,
        rx: Receiver<Envelope>,
        machine: Machine,
    ) -> Self {
        Rank {
            rank,
            world,
            rx,
            stash: Vec::new(),
            clock: RankClock::new(),
            machine,
            op_seq: HashMap::new(),
            jitter: Cell::new(0),
        }
    }

    /// Inject deterministic scheduler jitter if a perturbation seed is
    /// set: a seed-derived number of `yield_now`s (and an occasional
    /// microsecond-scale sleep) permutes which thread wins each race at
    /// rendezvous and mailbox operations. Results must be bit-identical
    /// under any seed — a run that isn't has an order-dependence bug the
    /// default schedule was hiding.
    pub(crate) fn perturb_point(&self) {
        let Some(seed) = self.world.perturb else {
            return;
        };
        let n = self.jitter.get();
        self.jitter.set(n + 1);
        // splitmix64-style finalizer over (seed, rank, point index).
        let mut z = seed
            ^ (self.rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ n.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 30;
        z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        for _ in 0..(z % 8) {
            std::thread::yield_now();
        }
        if z.is_multiple_of(61) {
            std::thread::sleep(std::time::Duration::from_micros((z >> 8) % 50));
        }
    }

    /// Global rank id, `0..world_size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of simulated processes.
    pub fn world_size(&self) -> usize {
        self.world.p
    }

    /// The machine model in effect.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Read access to the modeled clock.
    pub fn clock(&self) -> &RankClock {
        &self.clock
    }

    /// Mutable access to the modeled clock (harness use: resets).
    pub fn clock_mut(&mut self) -> &mut RankClock {
        &mut self.clock
    }

    /// Shared world state (checker and mailboxes).
    pub(crate) fn world(&self) -> &Arc<WorldShared> {
        &self.world
    }

    /// Advance the modeled clock by `work_units` of local computation
    /// attributed to `step` (converted through the machine model).
    pub fn compute(&mut self, step: Step, work_units: f64) {
        let dt = self.machine.compute_secs(work_units);
        self.clock.advance(step, dt);
    }

    /// Advance the modeled clock by a *measured* wall-clock duration of
    /// local computation attributed to `step`.
    ///
    /// The `Native` backend's path into the clock: the kernel actually ran
    /// (possibly multithreaded), and its elapsed seconds enter the same
    /// per-step breakdown that [`Rank::compute`] fills with modeled
    /// seconds, so measured and modeled runs report through one machinery.
    pub fn compute_measured(&mut self, step: Step, secs: f64) {
        self.clock.advance(step, secs);
    }

    /// Build the communicator containing every rank.
    pub fn world_comm(&self) -> Comm {
        self.comm((0..self.world.p).collect(), 0)
    }

    /// Build a communicator from an explicit member list (must contain this
    /// rank). `color` disambiguates distinct communicators that happen to
    /// share a member list.
    pub fn comm(&self, members: Vec<usize>, color: u64) -> Comm {
        Comm::for_rank(members, color, self.rank)
    }

    /// Allocate the next collective sequence number on `comm`.
    pub(crate) fn next_seq(&mut self, comm: &Comm) -> u64 {
        let seq = self.op_seq.entry(comm.id()).or_insert(0);
        *seq += 1;
        *seq
    }

    /// Typed point-to-point send to `dst_index` within `comm`.
    ///
    /// Registers the envelope with the protocol checker (tag collisions,
    /// orphaned sends). Collectives use `Rank::send_raw` instead — their
    /// traffic is already verified at the rendezvous level.
    pub fn send<T: Send + 'static>(&self, comm: &Comm, dst_index: usize, tag: u64, value: T) {
        self.check_p2p_send(comm, dst_index, tag);
        self.send_raw(comm, dst_index, tag, value);
    }

    /// Send without checker registration: the transport used by collective
    /// and nonblocking internals, whose protocol is verified separately.
    pub(crate) fn send_raw<T: Send + 'static>(
        &self,
        comm: &Comm,
        dst_index: usize,
        tag: u64,
        value: T,
    ) {
        self.perturb_point();
        let dst = comm.member(dst_index);
        self.world.senders[dst]
            .send(Envelope {
                src: self.rank,
                comm_id: comm.id(),
                tag,
                payload: Box::new(value),
            })
            .expect("rank mailbox closed: peer thread exited early");
    }

    /// Typed blocking receive matching `(src_index, comm, tag)`.
    ///
    /// Non-matching arrivals are stashed and re-examined on later receives,
    /// so interleaved traffic on other communicators is safe. Registers
    /// with the protocol checker so a receive with no matching send is
    /// reported as a stall instead of hanging forever.
    pub fn recv<T: Send + 'static>(&mut self, comm: &Comm, src_index: usize, tag: u64) -> T {
        self.check_p2p_recv_pre(comm, src_index, tag);
        let value = self.recv_raw(comm, src_index, tag);
        self.check_p2p_recv_post(comm, src_index, tag);
        value
    }

    /// Receive without checker registration (collective internals).
    pub(crate) fn recv_raw<T: Send + 'static>(
        &mut self,
        comm: &Comm,
        src_index: usize,
        tag: u64,
    ) -> T {
        self.perturb_point();
        let src = comm.member(src_index);
        let comm_id = comm.id();
        // Check the stash first.
        if let Some(pos) = self
            .stash
            .iter()
            .position(|e| e.src == src && e.comm_id == comm_id && e.tag == tag)
        {
            let env = self.stash.swap_remove(pos);
            return Self::downcast(env, src, comm_id, tag);
        }
        loop {
            let env = self
                .rx
                .recv()
                .expect("rank mailbox closed while waiting for a message");
            if env.src == crate::check::POISON_SRC {
                // The protocol checker tripped on another rank while we were
                // blocked in a data exchange; surface its report here.
                let report = env
                    .payload
                    .downcast::<String>()
                    .map_or_else(|_| "protocol violation".into(), |b| *b);
                panic!("{report}");
            }
            if env.src == src && env.comm_id == comm_id && env.tag == tag {
                return Self::downcast(env, src, comm_id, tag);
            }
            self.stash.push(env);
        }
    }

    fn downcast<T: 'static>(env: Envelope, src: usize, comm_id: u64, tag: u64) -> T {
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "type mismatch receiving from rank {src} (comm {comm_id:#x}, tag {tag}): \
                 expected {}",
                std::any::type_name::<T>()
            )
        })
    }
}

impl std::fmt::Debug for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rank")
            .field("rank", &self.rank)
            .field("world_size", &self.world.p)
            .field("now", &self.clock.now())
            .finish_non_exhaustive()
    }
}

impl Drop for Rank {
    /// A departing rank can never complete an open rendezvous; tell the
    /// checker so peers parked on one learn they are stalled.
    fn drop(&mut self) {
        self.check_exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_ranks;

    #[test]
    fn comm_ids_agree_across_members_and_differ_by_color() {
        let results = run_ranks(4, Machine::knl(), |rank| {
            let a = rank.comm(vec![0, 1, 2, 3], 7);
            let b = rank.comm(vec![0, 1, 2, 3], 8);
            (a.id(), b.id())
        });
        let (a0, b0) = results[0];
        assert!(results.iter().all(|&(a, b)| a == a0 && b == b0));
        assert_ne!(a0, b0);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let results = run_ranks(2, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            if rank.rank() == 0 {
                rank.send(&comm, 1, 42, String::from("hello"));
                rank.recv::<u64>(&comm, 1, 43)
            } else {
                let s: String = rank.recv(&comm, 0, 42);
                assert_eq!(s, "hello");
                rank.send(&comm, 0, 43, 99u64);
                0
            }
        });
        assert_eq!(results[0], 99);
    }

    #[test]
    fn out_of_order_tags_are_stashed() {
        let results = run_ranks(2, Machine::knl(), |rank| {
            let comm = rank.world_comm();
            if rank.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                rank.send(&comm, 1, 2, 222u32);
                rank.send(&comm, 1, 1, 111u32);
                0
            } else {
                let first: u32 = rank.recv(&comm, 0, 1);
                let second: u32 = rank.recv(&comm, 0, 2);
                assert_eq!((first, second), (111, 222));
                1
            }
        });
        assert_eq!(results, vec![0, 1]);
    }

    #[test]
    fn member_indexing() {
        run_ranks(4, Machine::knl(), |rank| {
            let evens = if rank.rank() % 2 == 0 {
                Some(rank.comm(vec![0, 2], 1))
            } else {
                None
            };
            if let Some(c) = evens {
                assert_eq!(c.size(), 2);
                assert_eq!(c.member(c.my_index()), rank.rank());
            }
        });
    }
}
