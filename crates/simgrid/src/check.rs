//! Deterministic collective-protocol verification ("MPI lint").
//!
//! MPI programs that mismatch their collectives — different operations on
//! the same communicator, disagreeing roots, wrong-length alltoallv count
//! vectors, forgotten `MPI_Wait`s — fail nondeterministically at scale:
//! they hang, corrupt data, or crash far from the defect. Because this
//! runtime simulates ranks deterministically, those defects can instead be
//! *detected at the first sync point that exhibits them*, every run, with a
//! diagnostic naming the ranks involved.
//!
//! When [`CheckMode::Check`] is active (the default in debug builds, and
//! whenever `SPGEMM_CHECK` is set to anything but `0`/`off`), every
//! collective registers with a shared, per-`(communicator, sequence)`
//! rendezvous *before* exchanging any data. Registration detects:
//!
//! * **Order mismatch** ([`ViolationKind::OrderMismatch`]) — two ranks
//!   enter different collectives as the same operation on one
//!   communicator. Under real MPI this is the classic deadlock /
//!   cross-matched-payload class.
//! * **Root disagreement** ([`ViolationKind::RootMismatch`]) — members of a
//!   rooted collective (`bcast`, `gather`) name different roots.
//! * **Count asymmetry** ([`ViolationKind::CountMismatch`]) — an
//!   `alltoallv` descriptor whose part/size vectors do not match the
//!   communicator size.
//! * **Leaked handles** ([`ViolationKind::LeakedHandle`]) — a nonblocking
//!   handle dropped without [`crate::PendingOp::wait`], caught by a `Drop`
//!   guard (armed under CheckMode and in all debug builds).
//! * **Non-monotone clocks** ([`ViolationKind::NonMonotoneClock`]) — a
//!   rank arrives at a sync point with a modeled clock earlier than its
//!   previous sync point (a corrupted or wrongly reset clock would silently
//!   skew every downstream cost figure).
//! * **Stalls** ([`ViolationKind::Stall`]) — every live rank is blocked at
//!   a rendezvous that can never complete (collective order diverged across
//!   communicators, or a rank exited without posting its collective). The
//!   report lists who is stuck where and which members are missing.
//!
//! Point-to-point traffic ([`crate::Rank::send`]/[`crate::Rank::recv`]) is
//! covered too — every user-level send registers its `(comm, tag, src→dst)`
//! envelope:
//!
//! * **Tag collisions** ([`ViolationKind::TagCollision`]) — a second send
//!   posted with an envelope identical to one still in flight; receives
//!   match on `(source, comm, tag)`, so the payloads would be ambiguous.
//! * **Unmatched receives** ([`ViolationKind::UnmatchedRecv`]) — every live
//!   rank is blocked in a receive no peer has posted (or will ever post) a
//!   matching send for.
//! * **Orphaned sends** ([`ViolationKind::OrphanedSend`]) — a send whose
//!   message was never received by the time the run ended, reported by
//!   [`crate::runtime::run_ranks_checked`] after the threads join.
//!
//! Collectives move their internal traffic through unregistered
//! `pub(crate)` send/recv twins, so checker bookkeeping tracks user-level
//! point-to-point messages only — collective-internal phases can never
//! false-positive here.
//!
//! Blocking collectives park at the rendezvous (condvar) until all members
//! arrive, so a mismatch is reported *before* any cross-matched payload can
//! be exchanged; nonblocking posts register without parking, preserving
//! their overlap semantics. On the first violation the checker trips: the
//! detecting rank panics with the report, all parked ranks are woken, and
//! poison messages unblock ranks waiting inside data exchanges. Every
//! report starts with `protocol violation`, and
//! [`crate::runtime::run_ranks_checked`] consolidates them after the run.

use crate::comm::{Comm, Envelope, Rank, WorldShared};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Modeled clocks may regress by at most this much between sync points
/// (absorbs floating-point noise in max-reductions).
const CLOCK_SLACK: f64 = 1e-9;

/// Whether the runtime verifies the collective protocol as it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// No verification; zero overhead.
    Off,
    /// Verify every collective at its sync points.
    Check,
}

impl CheckMode {
    /// The default mode: the `SPGEMM_CHECK` environment variable if set
    /// (`0`/`off` disables, anything else enables), otherwise `Check` in
    /// debug builds and `Off` in release builds.
    pub fn default_mode() -> Self {
        match std::env::var("SPGEMM_CHECK") {
            Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => CheckMode::Off,
            Ok(_) => CheckMode::Check,
            Err(_) => {
                if cfg!(debug_assertions) {
                    CheckMode::Check
                } else {
                    CheckMode::Off
                }
            }
        }
    }

    /// True if verification is active.
    pub fn is_on(self) -> bool {
        matches!(self, CheckMode::Check)
    }
}

/// The collective operation a rank registered at a sync point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Blocking broadcast.
    Bcast,
    /// Blocking allreduce.
    Allreduce,
    /// Blocking allgather.
    Allgather,
    /// Blocking all-to-all with per-destination payloads.
    Alltoallv,
    /// Barrier.
    Barrier,
    /// Gather to a root.
    Gather,
    /// Nonblocking broadcast post.
    IbcastPost,
    /// Nonblocking all-to-all post.
    IalltoallvPost,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpKind::Bcast => "bcast",
            OpKind::Allreduce => "allreduce",
            OpKind::Allgather => "allgather",
            OpKind::Alltoallv => "alltoallv",
            OpKind::Barrier => "barrier",
            OpKind::Gather => "gather",
            OpKind::IbcastPost => "ibcast",
            OpKind::IalltoallvPost => "ialltoallv",
        };
        f.write_str(name)
    }
}

/// The class of a detected protocol violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Ranks entered different collectives as one operation.
    OrderMismatch,
    /// Members of a rooted collective named different roots.
    RootMismatch,
    /// An alltoallv descriptor does not match the communicator size.
    CountMismatch,
    /// A nonblocking handle was dropped without `wait()`.
    LeakedHandle,
    /// A rank's modeled clock went backwards between sync points.
    NonMonotoneClock,
    /// Every live rank is blocked at a rendezvous that cannot complete.
    Stall,
    /// A second point-to-point send was posted with a `(comm, tag,
    /// src → dst)` envelope identical to one still in flight.
    TagCollision,
    /// Every live rank is blocked in a point-to-point receive that no
    /// matching send has been (or can ever be) posted for.
    UnmatchedRecv,
    /// A point-to-point send whose message was never received by the time
    /// the run ended.
    OrphanedSend,
}

/// A detected violation: its class, where it happened, and a detail line
/// naming the ranks, roots, counts or sequence numbers involved.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolViolation {
    /// What class of defect this is.
    pub kind: ViolationKind,
    /// Communicator id the offending operation ran on.
    pub comm: u64,
    /// Per-communicator collective sequence number of the operation; for
    /// point-to-point violations, the message tag.
    pub seq: u64,
    /// Human-readable specifics (ranks, kinds, roots, counts).
    pub detail: String,
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "protocol violation [{:?}] on comm {:#x} op {}: {}",
            self.kind, self.comm, self.seq, self.detail
        )
    }
}

impl std::error::Error for ProtocolViolation {}

/// One collective/post registration, as recorded by the op log (enabled by
/// [`crate::runtime::run_ranks_logged`]): which rank entered which
/// operation on which communicator, with the root it named and the
/// per-communicator sequence number it drew. The global order is the order
/// registrations reached the checker; each rank's subsequence is its
/// deterministic program order. The schedule auditor's conformance tests
/// compare symbolic traces against this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedOp {
    /// Global rank that registered.
    pub rank: usize,
    /// Communicator id.
    pub comm: u64,
    /// Which operation.
    pub kind: OpKind,
    /// Root member index, for rooted collectives.
    pub root: Option<usize>,
    /// Per-communicator sequence number.
    pub seq: u64,
}

/// One rank's registration at a rendezvous.
struct OpEntry {
    rank: usize,
    kind: OpKind,
    /// Root member index, for rooted collectives.
    root: Option<usize>,
}

/// The meeting point for one `(communicator, sequence)` operation.
struct Rendezvous {
    /// Communicator size = registrations required to complete.
    expected: usize,
    /// Global ranks of the communicator's members.
    members: Vec<usize>,
    entries: Vec<OpEntry>,
    /// Ranks parked on the condvar waiting for completion.
    waiters: usize,
    done: bool,
}

impl Rendezvous {
    fn missing_members(&self) -> Vec<usize> {
        self.members
            .iter()
            .copied()
            .filter(|m| !self.entries.iter().any(|e| e.rank == *m))
            .collect()
    }
}

struct CheckState {
    /// Open rendezvous keyed by `(comm_id, seq)`; removed once complete and
    /// drained of waiters.
    rendezvous: HashMap<(u64, u64), Rendezvous>,
    violations: Vec<ProtocolViolation>,
    /// Set on the first violation; halts all further progress.
    tripped: bool,
    /// Modeled time of each rank's last sync point (monotonicity check).
    last_time: Vec<f64>,
    /// Ranks currently parked on the condvar.
    waiting: usize,
    /// Ranks whose threads have exited (normally or by panic).
    finished: usize,
    /// In-flight user-level point-to-point sends (posted, not yet matched
    /// by a receive), keyed by `(comm_id, tag, src, dst)` global ranks.
    p2p_inflight: HashSet<(u64, u64, usize, usize)>,
    /// Ranks blocked in a point-to-point receive with no matching send
    /// posted yet: receiver rank → `(comm_id, tag, src)`.
    p2p_blocked: HashMap<usize, (u64, u64, usize)>,
    /// When `Some`, every collective/post registration is appended here
    /// (the op log read back by [`crate::runtime::run_ranks_logged`]).
    op_log: Option<Vec<LoggedOp>>,
}

/// World-shared checker state. Created by
/// [`crate::runtime::run_ranks_checked`] when checking is on.
pub(crate) struct CheckShared {
    state: Mutex<CheckState>,
    cv: Condvar,
}

impl CheckShared {
    pub(crate) fn new(p: usize) -> Self {
        CheckShared {
            state: Mutex::new(CheckState {
                rendezvous: HashMap::new(),
                violations: Vec::new(),
                tripped: false,
                last_time: vec![0.0; p],
                waiting: 0,
                finished: 0,
                p2p_inflight: HashSet::new(),
                p2p_blocked: HashMap::new(),
                op_log: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Start recording every collective/post registration.
    pub(crate) fn enable_logging(&self) {
        self.lock().op_log = Some(Vec::new());
    }

    /// Take the recorded op log (empty if logging was never enabled).
    pub(crate) fn take_op_log(&self) -> Vec<LoggedOp> {
        self.lock().op_log.take().unwrap_or_default()
    }

    fn lock(&self) -> MutexGuard<'_, CheckState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Violations recorded so far (read by the runtime after the run).
    pub(crate) fn violations(&self) -> Vec<ProtocolViolation> {
        self.lock().violations.clone()
    }
}

fn render(violations: &[ProtocolViolation]) -> String {
    violations
        .iter()
        .map(ProtocolViolation::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

/// A stall exists iff every rank is either parked at a rendezvous, blocked
/// in a point-to-point receive with no matching send, or has exited — and
/// no completed rendezvous still has waiters to wake (those will make
/// progress once scheduled). A stall consisting purely of receive-blocked
/// ranks is classed as [`ViolationKind::UnmatchedRecv`].
fn stall_violation(st: &CheckState, p: usize) -> Option<ProtocolViolation> {
    let blocked = st.waiting + st.p2p_blocked.len();
    if blocked == 0 || blocked + st.finished < p {
        return None;
    }
    if st.rendezvous.values().any(|r| r.done && r.waiters > 0) {
        return None;
    }
    let mut stuck: Vec<String> = Vec::new();
    let mut comm = 0u64;
    let mut seq = 0u64;
    for ((c, s), r) in &st.rendezvous {
        if r.done || r.entries.is_empty() {
            continue;
        }
        comm = *c;
        seq = *s;
        let who: Vec<String> = r
            .entries
            .iter()
            .map(|e| format!("rank {} in {}", e.rank, e.kind))
            .collect();
        stuck.push(format!(
            "{} (comm {c:#x}, op {s}) missing members {:?}",
            who.join(", "),
            r.missing_members()
        ));
    }
    stuck.sort();
    let mut recv_stuck: Vec<(usize, (u64, u64, usize))> =
        st.p2p_blocked.iter().map(|(&r, &k)| (r, k)).collect();
    recv_stuck.sort_unstable();
    let pure_p2p = st.waiting == 0;
    if let Some(&(_, (c, t, _))) = recv_stuck.first() {
        if pure_p2p {
            comm = c;
            seq = t;
        }
        stuck.extend(recv_stuck.iter().map(|&(r, (c, t, src))| {
            format!(
                "rank {r} in recv from rank {src} (comm {c:#x}, tag {t}) with no matching send"
            )
        }));
    }
    Some(ProtocolViolation {
        kind: if pure_p2p {
            ViolationKind::UnmatchedRecv
        } else {
            ViolationKind::Stall
        },
        comm,
        seq,
        detail: format!(
            "all live ranks are blocked ({} waiting, {} in recv, {} exited of {p}): {}",
            st.waiting,
            st.p2p_blocked.len(),
            st.finished,
            stuck.join("; ")
        ),
    })
}

/// Poison message sent to wake ranks blocked inside a data exchange after
/// the checker trips; `src` is out of range for any real rank.
pub(crate) const POISON_SRC: usize = usize::MAX;

fn poison_world(world: &WorldShared, me: usize, report: &str) {
    for (i, tx) in world.senders.iter().enumerate() {
        if i != me {
            // A peer that already exited is fine — its mailbox is gone.
            let _ = tx.send(Envelope {
                src: POISON_SRC,
                comm_id: 0,
                tag: 0,
                payload: Box::new(report.to_string()),
            });
        }
    }
}

/// Record `v`, trip the checker, wake everyone, and return the report the
/// caller must panic with.
fn trip(check: &CheckShared, world: &WorldShared, me: usize, v: ProtocolViolation) -> String {
    let mut st = check.lock();
    if !st.tripped {
        st.violations.push(v);
        st.tripped = true;
    }
    let report = render(&st.violations);
    drop(st);
    check.cv.notify_all();
    poison_world(world, me, &report);
    report
}

impl Rank {
    /// Register this rank's entry into collective `seq` on `comm` and
    /// verify it against the other members' registrations. Blocking
    /// collectives park here until every member has registered, so
    /// mismatches surface before any payload crosses. No-op when checking
    /// is off.
    pub(crate) fn check_enter(
        &self,
        comm: &Comm,
        seq: u64,
        kind: OpKind,
        root: Option<usize>,
        counts: Option<(usize, usize)>,
        blocking: bool,
    ) {
        self.perturb_point();
        let Some(check) = self.world().check.clone() else {
            return;
        };
        let me = self.rank();
        let now = self.clock().now();
        let q = comm.size();
        let key = (comm.id(), seq);
        let mut st = check.lock();
        if st.tripped {
            let report = render(&st.violations);
            drop(st);
            panic!("{report}");
        }
        // Clock monotonicity across this rank's sync points.
        if now < st.last_time[me] - CLOCK_SLACK {
            let prev = st.last_time[me];
            drop(st);
            let report = trip(
                &check,
                self.world(),
                me,
                ProtocolViolation {
                    kind: ViolationKind::NonMonotoneClock,
                    comm: comm.id(),
                    seq,
                    detail: format!(
                        "rank {me} entered {kind} at modeled time {now:.9}s, earlier than \
                         its previous sync point at {prev:.9}s"
                    ),
                },
            );
            panic!("{report}");
        }
        st.last_time[me] = now;
        // Alltoallv descriptor shape (checked here, not just asserted
        // locally, so the report names the rank and operation).
        if let Some((parts_len, bytes_len)) = counts {
            if parts_len != q || bytes_len != q {
                drop(st);
                let report = trip(
                    &check,
                    self.world(),
                    me,
                    ProtocolViolation {
                        kind: ViolationKind::CountMismatch,
                        comm: comm.id(),
                        seq,
                        detail: format!(
                            "rank {me} posted {kind} with {parts_len} parts and {bytes_len} \
                             sizes on a {q}-member communicator"
                        ),
                    },
                );
                panic!("{report}");
            }
        }
        if let Some(log) = st.op_log.as_mut() {
            log.push(LoggedOp {
                rank: me,
                comm: comm.id(),
                kind,
                root,
                seq,
            });
        }
        // Rendezvous registration and cross-rank agreement.
        let r = st.rendezvous.entry(key).or_insert_with(|| Rendezvous {
            expected: q,
            members: comm.members().to_vec(),
            entries: Vec::new(),
            waiters: 0,
            done: false,
        });
        let mismatch = r.entries.first().and_then(|first| {
            if first.kind != kind {
                Some(ProtocolViolation {
                    kind: ViolationKind::OrderMismatch,
                    comm: comm.id(),
                    seq,
                    detail: format!(
                        "rank {me} entered {kind} but rank {} had entered {} as the same \
                         operation on this communicator",
                        first.rank, first.kind
                    ),
                })
            } else if first.root != root {
                Some(ProtocolViolation {
                    kind: ViolationKind::RootMismatch,
                    comm: comm.id(),
                    seq,
                    detail: format!(
                        "rank {me} named member {:?} as {kind} root but rank {} named \
                         member {:?}",
                        root, first.rank, first.root
                    ),
                })
            } else {
                None
            }
        });
        if let Some(v) = mismatch {
            drop(st);
            let report = trip(&check, self.world(), me, v);
            panic!("{report}");
        }
        r.entries.push(OpEntry { rank: me, kind, root });
        if r.entries.len() == r.expected {
            r.done = true;
            if r.waiters == 0 {
                st.rendezvous.remove(&key);
            }
            drop(st);
            check.cv.notify_all();
            return;
        }
        if !blocking {
            return;
        }
        // Park until the rendezvous completes (or the checker trips).
        r.waiters += 1;
        st.waiting += 1;
        if let Some(v) = stall_violation(&st, self.world().p) {
            drop(st);
            let report = trip(&check, self.world(), me, v);
            panic!("{report}");
        }
        loop {
            st = check.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            if st.tripped {
                let report = render(&st.violations);
                drop(st);
                panic!("{report}");
            }
            if st.rendezvous.get(&key).is_none_or(|r| r.done) {
                st.waiting -= 1;
                let drained = st.rendezvous.get_mut(&key).map(|r| {
                    r.waiters -= 1;
                    r.waiters == 0
                });
                if drained == Some(true) {
                    st.rendezvous.remove(&key);
                }
                return;
            }
        }
    }

    /// Register a point-to-point send of `(comm, tag)` to `dst_index`.
    /// Detects tag collisions (a second undelivered send with the same
    /// match key would make receive pairing ambiguous) and unblocks any
    /// receiver parked on this exact envelope.
    pub(crate) fn check_p2p_send(&self, comm: &Comm, dst_index: usize, tag: u64) {
        let Some(check) = self.world().check.clone() else {
            return;
        };
        let me = self.rank();
        let dst = comm.member(dst_index);
        let key = (comm.id(), tag, me, dst);
        let mut st = check.lock();
        if st.tripped {
            let report = render(&st.violations);
            drop(st);
            panic!("{report}");
        }
        if !st.p2p_inflight.insert(key) {
            drop(st);
            let report = trip(
                &check,
                self.world(),
                me,
                ProtocolViolation {
                    kind: ViolationKind::TagCollision,
                    comm: comm.id(),
                    seq: tag,
                    detail: format!(
                        "rank {me} posted a second send to rank {dst} with (comm {:#x}, \
                         tag {tag}) while the first is still undelivered: receives match \
                         on (source, comm, tag), so the payloads are ambiguous",
                        comm.id()
                    ),
                },
            );
            panic!("{report}");
        }
        if st.p2p_blocked.get(&dst) == Some(&(comm.id(), tag, me)) {
            st.p2p_blocked.remove(&dst);
        }
    }

    /// Register that this rank is about to block in a point-to-point
    /// receive. If the matching send is already in flight the receive is
    /// guaranteed to complete; otherwise the rank is recorded as
    /// recv-blocked and the stall detector runs.
    pub(crate) fn check_p2p_recv_pre(&self, comm: &Comm, src_index: usize, tag: u64) {
        let Some(check) = self.world().check.clone() else {
            return;
        };
        let me = self.rank();
        let src = comm.member(src_index);
        let mut st = check.lock();
        if st.tripped {
            let report = render(&st.violations);
            drop(st);
            panic!("{report}");
        }
        if st.p2p_inflight.contains(&(comm.id(), tag, src, me)) {
            return;
        }
        st.p2p_blocked.insert(me, (comm.id(), tag, src));
        if let Some(v) = stall_violation(&st, self.world().p) {
            drop(st);
            let report = trip(&check, self.world(), me, v);
            panic!("{report}");
        }
    }

    /// Mark a point-to-point receive as completed: the envelope is no
    /// longer in flight and this rank is no longer recv-blocked.
    pub(crate) fn check_p2p_recv_post(&self, comm: &Comm, src_index: usize, tag: u64) {
        let Some(check) = self.world().check.clone() else {
            return;
        };
        let me = self.rank();
        let src = comm.member(src_index);
        let mut st = check.lock();
        st.p2p_inflight.remove(&(comm.id(), tag, src, me));
        st.p2p_blocked.remove(&me);
    }

    /// Called when this rank's thread exits (normally or by panic): a
    /// departed rank can never complete an open rendezvous, so peers parked
    /// on one may now be provably stalled. The last rank out also sweeps
    /// the point-to-point registry: sends still in flight after every rank
    /// has exited can never be received, so they are recorded as
    /// [`ViolationKind::OrphanedSend`] for the runtime to surface.
    pub(crate) fn check_exit(&self) {
        let Some(check) = self.world().check.clone() else {
            return;
        };
        let mut st = check.lock();
        st.finished += 1;
        if st.finished == self.world().p && !st.tripped && !st.p2p_inflight.is_empty() {
            let mut orphans: Vec<(u64, u64, usize, usize)> =
                st.p2p_inflight.iter().copied().collect();
            orphans.sort_unstable();
            for (c, t, src, dst) in orphans {
                st.violations.push(ProtocolViolation {
                    kind: ViolationKind::OrphanedSend,
                    comm: c,
                    seq: t,
                    detail: format!(
                        "rank {src} sent to rank {dst} with (comm {c:#x}, tag {t}) but \
                         the message was never received before the run ended"
                    ),
                });
            }
        }
        if st.tripped {
            return;
        }
        let Some(v) = stall_violation(&st, self.world().p) else {
            return;
        };
        drop(st);
        let report = trip(&check, self.world(), self.rank(), v);
        // If this rank is exiting because it panicked, that panic is the
        // primary failure; tripping above has already woken the stalled
        // peers. Otherwise this rank exited without posting a collective
        // its peers are waiting on — that is the defect, so report it here.
        if !std::thread::panicking() {
            panic!("{report}");
        }
    }

    /// Build the `Drop` guard for a nonblocking handle. Armed whenever
    /// checking is on, and in every debug build.
    pub(crate) fn handle_guard(&self, kind: OpKind, comm: &Comm, seq: u64) -> HandleGuard {
        HandleGuard {
            armed: self.world().check.is_some() || cfg!(debug_assertions),
            kind,
            comm: comm.id(),
            seq,
            rank: self.rank(),
            world: Arc::clone(self.world()),
        }
    }
}

/// Drop guard embedded in nonblocking handles: panics (and trips the
/// checker) if the handle is dropped while still armed, i.e. without
/// [`crate::PendingOp::wait`] having run.
pub(crate) struct HandleGuard {
    armed: bool,
    kind: OpKind,
    comm: u64,
    seq: u64,
    rank: usize,
    world: Arc<WorldShared>,
}

impl HandleGuard {
    /// Mark the handle as properly consumed.
    pub(crate) fn disarm(&mut self) {
        self.armed = false;
    }
}

impl fmt::Debug for HandleGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HandleGuard")
            .field("armed", &self.armed)
            .field("kind", &self.kind)
            .field("comm", &self.comm)
            .field("seq", &self.seq)
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

impl Drop for HandleGuard {
    fn drop(&mut self) {
        if !self.armed || std::thread::panicking() {
            return;
        }
        let v = ProtocolViolation {
            kind: ViolationKind::LeakedHandle,
            comm: self.comm,
            seq: self.seq,
            detail: format!(
                "rank {} dropped a pending {} (op {} on comm {:#x}) without wait(): \
                 peers would block on its payload and modeled time is skewed",
                self.rank, self.kind, self.seq, self.comm
            ),
        };
        let report = match &self.world.check {
            Some(check) => trip(check, &self.world, self.rank, v),
            None => v.to_string(),
        };
        panic!("{report}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mode_tracks_build_profile() {
        // Can't mutate the environment safely in a test; just pin the
        // no-env behaviour.
        if std::env::var("SPGEMM_CHECK").is_err() {
            assert_eq!(CheckMode::default_mode().is_on(), cfg!(debug_assertions));
        }
    }

    #[test]
    fn violation_display_names_the_class_and_op() {
        let v = ProtocolViolation {
            kind: ViolationKind::RootMismatch,
            comm: 0xabcd,
            seq: 7,
            detail: "rank 1 named member Some(2) as bcast root but rank 0 named member Some(0)"
                .into(),
        };
        let s = v.to_string();
        assert!(s.starts_with("protocol violation [RootMismatch]"), "{s}");
        assert!(s.contains("0xabcd"), "{s}");
        assert!(s.contains("op 7"), "{s}");
        assert!(s.contains("rank 1"), "{s}");
    }

    #[test]
    fn stall_requires_everyone_blocked_or_gone() {
        let mut st = CheckState {
            rendezvous: HashMap::new(),
            violations: Vec::new(),
            tripped: false,
            last_time: vec![0.0; 4],
            waiting: 2,
            finished: 1,
            p2p_inflight: HashSet::new(),
            p2p_blocked: HashMap::new(),
            op_log: None,
        };
        st.rendezvous.insert(
            (1, 1),
            Rendezvous {
                expected: 4,
                members: vec![0, 1, 2, 3],
                entries: vec![OpEntry {
                    rank: 0,
                    kind: OpKind::Barrier,
                    root: None,
                }],
                waiters: 2,
                done: false,
            },
        );
        // One rank still computing: not a stall.
        assert!(stall_violation(&st, 4).is_none());
        // It exits without entering the barrier: now a stall.
        st.finished = 2;
        let v = stall_violation(&st, 4).expect("stall");
        assert_eq!(v.kind, ViolationKind::Stall);
        assert!(v.detail.contains("rank 0 in barrier"), "{}", v.detail);
        assert!(v.detail.contains("missing members"), "{}", v.detail);
    }
}
