//! Cross-rank reduction and report formatting for step breakdowns.
//!
//! The paper reports, for each configuration, the time of each major step
//! maximized over processes (the critical path). [`max_breakdown`] performs
//! that reduction; [`StepReport`] renders the familiar
//! rows-of-steps-per-configuration tables and CSV series that the bench
//! harnesses print.

use crate::clock::{Step, StepBreakdown, ALL_STEPS};

/// Elementwise maximum of per-rank breakdowns (critical-path view).
pub fn max_breakdown(per_rank: &[StepBreakdown]) -> StepBreakdown {
    let mut acc = StepBreakdown::default();
    for b in per_rank {
        acc.max_with(b);
    }
    acc
}

/// Sum of bytes over ranks per step (total communication volume).
pub fn total_bytes(per_rank: &[StepBreakdown], step: Step) -> u64 {
    per_rank.iter().map(|b| b.bytes[step as usize]).sum()
}

/// Steps shown in paper-style reports (everything but `Other`, with the
/// two symbolic halves merged into one column).
const REPORT_STEPS: [Step; 8] = [
    Step::ABcast,
    Step::BBcast,
    Step::LocalMultiply,
    Step::MergeLayer,
    Step::AllToAllFiber,
    Step::MergeFiber,
    Step::SymbolicComm, // rendered as combined "Symbolic"
    Step::Wait,
];

/// A table of labeled configurations × step breakdowns.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    rows: Vec<(String, StepBreakdown)>,
}

impl StepReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a labeled configuration.
    pub fn push(&mut self, label: impl Into<String>, breakdown: StepBreakdown) {
        self.rows.push((label.into(), breakdown));
    }

    /// Labeled rows in insertion order.
    pub fn rows(&self) -> &[(String, StepBreakdown)] {
        &self.rows
    }

    fn symbolic_secs(b: &StepBreakdown) -> f64 {
        b.secs_of(Step::SymbolicComm) + b.secs_of(Step::SymbolicComp)
    }

    /// Render an aligned text table (seconds of modeled time).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .max()
            .unwrap_or(8)
            .max(8);
        out.push_str(&format!("{:label_w$}", "config"));
        for s in REPORT_STEPS {
            let name = if s == Step::SymbolicComm { "Symbolic" } else { s.label() };
            out.push_str(&format!(" {name:>14}"));
        }
        out.push_str(&format!(" {:>14}\n", "Total"));
        for (label, b) in &self.rows {
            out.push_str(&format!("{label:label_w$}"));
            for s in REPORT_STEPS {
                let v = if s == Step::SymbolicComm {
                    Self::symbolic_secs(b)
                } else {
                    b.secs_of(s)
                };
                out.push_str(&format!(" {v:>14.4}"));
            }
            out.push_str(&format!(" {:>14.4}\n", b.total()));
        }
        out
    }

    /// Render CSV with one row per configuration.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("config");
        for s in ALL_STEPS {
            out.push_str(&format!(",{}", s.label()));
        }
        out.push_str(",total,comm_total,comp_total\n");
        for (label, b) in &self.rows {
            out.push_str(label);
            for s in ALL_STEPS {
                out.push_str(&format!(",{:.6e}", b.secs_of(s)));
            }
            out.push_str(&format!(
                ",{:.6e},{:.6e},{:.6e}\n",
                b.total(),
                b.comm_total(),
                b.comp_total()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(abcast: f64, lm: f64) -> StepBreakdown {
        let mut b = StepBreakdown::default();
        b.secs[Step::ABcast as usize] = abcast;
        b.secs[Step::LocalMultiply as usize] = lm;
        b
    }

    #[test]
    fn max_breakdown_is_elementwise() {
        let m = max_breakdown(&[bd(1.0, 5.0), bd(2.0, 3.0)]);
        assert_eq!(m.secs_of(Step::ABcast), 2.0);
        assert_eq!(m.secs_of(Step::LocalMultiply), 5.0);
    }

    #[test]
    fn report_renders_all_rows() {
        let mut r = StepReport::new();
        r.push("l=1 b=4", bd(1.0, 2.0));
        r.push("l=16 b=8", bd(0.5, 1.0));
        let t = r.to_table();
        assert!(t.contains("l=1 b=4"));
        assert!(t.contains("l=16 b=8"));
        assert!(t.contains("A-Bcast"));
        assert!(t.contains("Total"));
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("config,"));
    }

    #[test]
    fn total_bytes_sums_over_ranks() {
        let mut a = StepBreakdown::default();
        a.bytes[Step::ABcast as usize] = 10;
        let mut b = StepBreakdown::default();
        b.bytes[Step::ABcast as usize] = 32;
        assert_eq!(total_bytes(&[a, b], Step::ABcast), 42);
    }
}
