//! Cross-rank reduction and report formatting for step breakdowns.
//!
//! The paper reports, for each configuration, the time of each major step
//! maximized over processes (the critical path). [`max_breakdown`] performs
//! that reduction; [`StepReport`] renders the familiar
//! rows-of-steps-per-configuration tables and CSV series that the bench
//! harnesses print.

use crate::clock::{Step, StepBreakdown, ALL_STEPS};

/// Elementwise maximum of per-rank breakdowns (critical-path view).
pub fn max_breakdown(per_rank: &[StepBreakdown]) -> StepBreakdown {
    let mut acc = StepBreakdown::default();
    for b in per_rank {
        acc.max_with(b);
    }
    acc
}

/// Sum of bytes over ranks per step (total communication volume).
pub fn total_bytes(per_rank: &[StepBreakdown], step: Step) -> u64 {
    per_rank.iter().map(|b| b.bytes[step as usize]).sum()
}

/// Steps shown in paper-style reports (everything but `Other`, with the
/// two symbolic halves merged into one column).
const REPORT_STEPS: [Step; 8] = [
    Step::ABcast,
    Step::BBcast,
    Step::LocalMultiply,
    Step::MergeLayer,
    Step::AllToAllFiber,
    Step::MergeFiber,
    Step::SymbolicComm, // rendered as combined "Symbolic"
    Step::Wait,
];

/// Fetch steps get their own columns (inserted after B-Bcast) as soon as
/// any row recorded sparse-exchange traffic, so dense-vs-sparse runs stay
/// comparable at a glance without widening dense-only tables.
const FETCH_STEPS: [Step; 2] = [Step::FetchRequest, Step::FetchReply];

/// Kernel-side resource counters attached to a report row: how often the
/// local kernels hit the heap allocator, the workspace scratch high-water
/// mark, and the exact-size copy-out volume. The simgrid crate knows
/// nothing about the sparse kernels — callers (the bench harnesses) fill
/// these from whatever `WorkStats`-like totals their run produced.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCounters {
    /// Heap allocation events in kernel hot paths (arena/table growth plus
    /// exact-size output copies), summed over ranks.
    pub allocs: u64,
    /// Peak reusable-workspace scratch bytes (max over ranks).
    pub peak_scratch_bytes: u64,
    /// Bytes copied out of workspaces into finished outputs, summed.
    pub memcpy_bytes: u64,
    /// Per-thread load imbalance of the parallel kernel splitter:
    /// max/mean work per thread range, work-weighted over invocations
    /// (1.0 = perfectly balanced). `0.0` means the run was serial (no
    /// thread ranges recorded) and renders as `-` in tables.
    pub load_imbalance: f64,
}

/// Cross-iteration operand-cache counters attached to a report row (one
/// row per iteration of a resident-operand session). Like
/// [`KernelCounters`], the simgrid crate only renders these — callers fill
/// them from their exchange layer's fetch-cache statistics, summed over
/// ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Modeled communication bytes of the iteration, summed over ranks.
    pub modeled_bytes: u64,
    /// Fetch rounds answered from the receiver-side tile cache.
    pub hits: u64,
    /// Fetch rounds that shipped a fresh tile.
    pub misses: u64,
    /// Operand columns invalidated (marked dirty) by the iteration.
    pub invalidated_cols: u64,
}

impl CacheCounters {
    /// Cache hit rate in `[0, 1]`; `None` when no fetch rounds ran (e.g.
    /// dense-broadcast iterations), rendering as `-`.
    pub fn hit_rate(&self) -> Option<f64> {
        let rounds = self.hits + self.misses;
        (rounds > 0).then(|| self.hits as f64 / rounds as f64)
    }
}

/// A table of labeled configurations × step breakdowns, optionally with
/// per-row [`KernelCounters`] and/or [`CacheCounters`].
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    rows: Vec<(String, StepBreakdown)>,
    counters: Vec<Option<KernelCounters>>,
    cache: Vec<Option<CacheCounters>>,
}

impl StepReport {
    /// Empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a labeled configuration.
    pub fn push(&mut self, label: impl Into<String>, breakdown: StepBreakdown) {
        self.rows.push((label.into(), breakdown));
        self.counters.push(None);
        self.cache.push(None);
    }

    /// Append a labeled configuration with kernel counters; the rendered
    /// table/CSV grow `allocs`/`peak_scratch`/`memcpy` columns once any
    /// row carries counters.
    pub fn push_with_counters(
        &mut self,
        label: impl Into<String>,
        breakdown: StepBreakdown,
        counters: KernelCounters,
    ) {
        self.rows.push((label.into(), breakdown));
        self.counters.push(Some(counters));
        self.cache.push(None);
    }

    /// Append a labeled row (typically one session iteration) with
    /// operand-cache counters; the rendered table/CSV grow
    /// `modeled_bytes`/`hit-rate`/`invalidated` columns once any row
    /// carries cache counters.
    pub fn push_with_cache(
        &mut self,
        label: impl Into<String>,
        breakdown: StepBreakdown,
        cache: CacheCounters,
    ) {
        self.rows.push((label.into(), breakdown));
        self.counters.push(None);
        self.cache.push(Some(cache));
    }

    /// Labeled rows in insertion order.
    pub fn rows(&self) -> &[(String, StepBreakdown)] {
        &self.rows
    }

    /// Kernel counters per row (same order as [`Self::rows`]); `None` for
    /// rows pushed without counters.
    pub fn counters(&self) -> &[Option<KernelCounters>] {
        &self.counters
    }

    /// Cache counters per row (same order as [`Self::rows`]); `None` for
    /// rows pushed without cache counters.
    pub fn cache_counters(&self) -> &[Option<CacheCounters>] {
        &self.cache
    }

    fn has_counters(&self) -> bool {
        self.counters.iter().any(|c| c.is_some())
    }

    fn has_cache(&self) -> bool {
        self.cache.iter().any(|c| c.is_some())
    }

    fn has_overlap(&self) -> bool {
        self.rows.iter().any(|(_, b)| b.overlap_total() > 0.0)
    }

    fn has_fetch(&self) -> bool {
        self.rows.iter().any(|(_, b)| {
            FETCH_STEPS
                .iter()
                .any(|&s| b.secs_of(s) > 0.0 || b.bytes_of(s) > 0)
        })
    }

    /// The step columns this report renders: [`REPORT_STEPS`], with the
    /// Fetch steps spliced in after B-Bcast when any row used them.
    fn report_steps(&self) -> Vec<Step> {
        let mut steps = Vec::with_capacity(REPORT_STEPS.len() + FETCH_STEPS.len());
        for s in REPORT_STEPS {
            steps.push(s);
            if s == Step::BBcast && self.has_fetch() {
                steps.extend(FETCH_STEPS);
            }
        }
        steps
    }

    fn symbolic_secs(b: &StepBreakdown) -> f64 {
        b.secs_of(Step::SymbolicComm) + b.secs_of(Step::SymbolicComp)
    }

    /// Render an aligned text table (seconds of modeled time).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let report_steps = self.report_steps();
        out.push_str(&format!("{:label_w$}", "config"));
        for &s in &report_steps {
            let name = if s == Step::SymbolicComm { "Symbolic" } else { s.label() };
            out.push_str(&format!(" {name:>14}"));
        }
        out.push_str(&format!(" {:>14}", "Total"));
        let with_overlap = self.has_overlap();
        if with_overlap {
            out.push_str(&format!(" {:>14}", "Hidden"));
        }
        let with_counters = self.has_counters();
        if with_counters {
            out.push_str(&format!(
                " {:>12} {:>14} {:>14} {:>8}",
                "Allocs", "PeakScratchB", "MemcpyB", "Imbal"
            ));
        }
        let with_cache = self.has_cache();
        if with_cache {
            out.push_str(&format!(
                " {:>14} {:>8} {:>8}",
                "ModeledBytes", "CacheHit", "Inval"
            ));
        }
        out.push('\n');
        for (((label, b), cnt), cc) in self.rows.iter().zip(&self.counters).zip(&self.cache) {
            out.push_str(&format!("{label:label_w$}"));
            for &s in &report_steps {
                let v = if s == Step::SymbolicComm {
                    Self::symbolic_secs(b)
                } else {
                    b.secs_of(s)
                };
                out.push_str(&format!(" {v:>14.4}"));
            }
            out.push_str(&format!(" {:>14.4}", b.total()));
            if with_overlap {
                out.push_str(&format!(" {:>14.4}", b.overlap_total()));
            }
            if with_counters {
                match cnt {
                    Some(c) => {
                        out.push_str(&format!(
                            " {:>12} {:>14} {:>14}",
                            c.allocs, c.peak_scratch_bytes, c.memcpy_bytes
                        ));
                        if c.load_imbalance > 0.0 {
                            out.push_str(&format!(" {:>8.2}", c.load_imbalance));
                        } else {
                            out.push_str(&format!(" {:>8}", "-"));
                        }
                    }
                    None => out.push_str(&format!(
                        " {:>12} {:>14} {:>14} {:>8}",
                        "-", "-", "-", "-"
                    )),
                }
            }
            if with_cache {
                match cc {
                    Some(c) => {
                        out.push_str(&format!(" {:>14}", c.modeled_bytes));
                        match c.hit_rate() {
                            Some(hr) => out.push_str(&format!(" {:>7.1}%", hr * 100.0)),
                            None => out.push_str(&format!(" {:>8}", "-")),
                        }
                        out.push_str(&format!(" {:>8}", c.invalidated_cols));
                    }
                    None => out.push_str(&format!(" {:>14} {:>8} {:>8}", "-", "-", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render CSV with one row per configuration.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("config");
        for s in ALL_STEPS {
            out.push_str(&format!(",{}", s.label()));
        }
        out.push_str(",total,comm_total,comp_total,overlap_total");
        let with_counters = self.has_counters();
        if with_counters {
            out.push_str(",allocs,peak_scratch_bytes,memcpy_bytes,load_imbalance");
        }
        let with_cache = self.has_cache();
        if with_cache {
            out.push_str(",modeled_bytes,cache_hits,cache_misses,invalidated_cols");
        }
        out.push('\n');
        for (((label, b), cnt), cc) in self.rows.iter().zip(&self.counters).zip(&self.cache) {
            out.push_str(label);
            for s in ALL_STEPS {
                out.push_str(&format!(",{:.6e}", b.secs_of(s)));
            }
            out.push_str(&format!(
                ",{:.6e},{:.6e},{:.6e},{:.6e}",
                b.total(),
                b.comm_total(),
                b.comp_total(),
                b.overlap_total()
            ));
            if with_counters {
                match cnt {
                    Some(c) => out.push_str(&format!(
                        ",{},{},{},{:.4}",
                        c.allocs, c.peak_scratch_bytes, c.memcpy_bytes, c.load_imbalance
                    )),
                    None => out.push_str(",,,,"),
                }
            }
            if with_cache {
                match cc {
                    Some(c) => out.push_str(&format!(
                        ",{},{},{},{}",
                        c.modeled_bytes, c.hits, c.misses, c.invalidated_cols
                    )),
                    None => out.push_str(",,,,"),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bd(abcast: f64, lm: f64) -> StepBreakdown {
        let mut b = StepBreakdown::default();
        b.secs[Step::ABcast as usize] = abcast;
        b.secs[Step::LocalMultiply as usize] = lm;
        b
    }

    #[test]
    fn max_breakdown_is_elementwise() {
        let m = max_breakdown(&[bd(1.0, 5.0), bd(2.0, 3.0)]);
        assert_eq!(m.secs_of(Step::ABcast), 2.0);
        assert_eq!(m.secs_of(Step::LocalMultiply), 5.0);
    }

    #[test]
    fn report_renders_all_rows() {
        let mut r = StepReport::new();
        r.push("l=1 b=4", bd(1.0, 2.0));
        r.push("l=16 b=8", bd(0.5, 1.0));
        let t = r.to_table();
        assert!(t.contains("l=1 b=4"));
        assert!(t.contains("l=16 b=8"));
        assert!(t.contains("A-Bcast"));
        assert!(t.contains("Total"));
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("config,"));
    }

    #[test]
    fn counters_add_columns_only_when_present() {
        let mut r = StepReport::new();
        r.push("plain", bd(1.0, 2.0));
        assert!(!r.to_table().contains("Allocs"));
        assert!(!r.to_csv().contains("allocs"));
        r.push_with_counters(
            "metered",
            bd(0.5, 1.0),
            KernelCounters {
                allocs: 42,
                peak_scratch_bytes: 4096,
                memcpy_bytes: 1234,
                load_imbalance: 1.25,
            },
        );
        let t = r.to_table();
        assert!(t.contains("Allocs") && t.contains("PeakScratchB") && t.contains("MemcpyB"));
        assert!(t.contains("Imbal") && t.contains("1.25"));
        assert!(t.contains("42") && t.contains("4096"));
        let csv = r.to_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("allocs,peak_scratch_bytes,memcpy_bytes,load_imbalance"));
        // The counter-less row renders empty counter cells, keeping the
        // column count uniform.
        let plain_line = csv.lines().find(|l| l.starts_with("plain")).unwrap();
        let metered_line = csv.lines().find(|l| l.starts_with("metered")).unwrap();
        assert_eq!(
            plain_line.matches(',').count(),
            metered_line.matches(',').count()
        );
        assert!(metered_line.ends_with("42,4096,1234,1.2500"));
        assert_eq!(r.counters().len(), 2);
        assert!(r.counters()[0].is_none());
    }

    #[test]
    fn cache_columns_appear_only_when_present() {
        let mut r = StepReport::new();
        r.push("single-shot", bd(1.0, 2.0));
        assert!(!r.to_table().contains("CacheHit"));
        assert!(!r.to_csv().contains("cache_hits"));
        r.push_with_cache(
            "iter 2",
            bd(0.5, 1.0),
            CacheCounters {
                modeled_bytes: 65536,
                hits: 3,
                misses: 1,
                invalidated_cols: 17,
            },
        );
        let t = r.to_table();
        assert!(t.contains("ModeledBytes") && t.contains("CacheHit") && t.contains("Inval"));
        assert!(t.contains("65536") && t.contains("75.0%") && t.contains("17"));
        let csv = r.to_csv();
        assert!(csv
            .lines()
            .next()
            .unwrap()
            .ends_with("modeled_bytes,cache_hits,cache_misses,invalidated_cols"));
        let plain = csv.lines().find(|l| l.starts_with("single-shot")).unwrap();
        let cached = csv.lines().find(|l| l.starts_with("iter 2")).unwrap();
        assert_eq!(plain.matches(',').count(), cached.matches(',').count());
        assert!(cached.ends_with("65536,3,1,17"));
        // No fetch rounds (dense iteration): hit rate renders as "-".
        assert_eq!(CacheCounters::default().hit_rate(), None);
        assert_eq!(r.cache_counters().len(), 2);
        assert!(r.cache_counters()[0].is_none());
    }

    #[test]
    fn hidden_column_appears_only_with_overlap() {
        let mut r = StepReport::new();
        r.push("blocking", bd(1.0, 2.0));
        assert!(!r.to_table().contains("Hidden"));
        // CSV always carries overlap_total for uniform schemas.
        assert!(r.to_csv().lines().next().unwrap().ends_with("comp_total,overlap_total"));
        let mut b = bd(0.5, 2.0);
        b.overlap_secs[Step::ABcast as usize] = 0.25;
        r.push("overlapped", b);
        let t = r.to_table();
        assert!(t.contains("Hidden"));
        assert!(t.contains("0.2500"));
        let csv = r.to_csv();
        let line = csv.lines().find(|l| l.starts_with("overlapped")).unwrap();
        assert!(line.ends_with("2.500000e-1"));
    }

    #[test]
    fn fetch_columns_appear_only_with_fetch_traffic() {
        let mut r = StepReport::new();
        r.push("dense", bd(1.0, 2.0));
        let t = r.to_table();
        assert!(!t.contains("Fetch-Request") && !t.contains("Fetch-Reply"));
        let mut b = bd(0.5, 2.0);
        b.secs[Step::FetchRequest as usize] = 0.125;
        b.bytes[Step::FetchReply as usize] = 4096;
        r.push("sparse", b);
        let t = r.to_table();
        assert!(t.contains("Fetch-Request") && t.contains("Fetch-Reply"));
        // The columns sit between B-Bcast and Local-Multiply.
        let header = t.lines().next().unwrap();
        let bb = header.find("B-Bcast").unwrap();
        let fr = header.find("Fetch-Request").unwrap();
        let lm = header.find("Local-Multiply").unwrap();
        assert!(bb < fr && fr < lm);
        // CSV always carries the fetch steps (uniform schema).
        let csv = r.to_csv();
        assert!(csv.lines().next().unwrap().contains("Fetch-Request"));
    }

    #[test]
    fn total_bytes_sums_over_ranks() {
        let mut a = StepBreakdown::default();
        a.bytes[Step::ABcast as usize] = 10;
        let mut b = StepBreakdown::default();
        b.bytes[Step::ABcast as usize] = 32;
        assert_eq!(total_bytes(&[a, b], Step::ABcast), 42);
    }
}
