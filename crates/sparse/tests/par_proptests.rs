//! Bit-identity of the parallel kernel wrappers (`spgemm_sparse::par`).
//!
//! The Native backend's correctness contract is that every parallel entry
//! point produces output **bit-identical** to its serial counterpart for
//! any thread count — same `colptr`, `rowidx`, `vals` and `sorted` flag
//! (full `PartialEq` on `CscMatrix`), and the exact-integer meters
//! (`flops`, `nnz_out`) match too. Only arena-warmth meters (allocs, peak
//! scratch, memcpy) may differ, so those are deliberately not compared.

use proptest::prelude::*;
use spgemm_sparse::gen::er_random;
use spgemm_sparse::merge::{merge_hash_sorted, merge_hash_unsorted, merge_heap};
use spgemm_sparse::par::{
    par_merge_hash_sorted, par_merge_hash_unsorted, par_merge_heap, par_spgemm_hash_unsorted,
    par_spgemm_heap, par_spgemm_hybrid, par_symbolic_col_counts, split_cols_by_weight,
};
use spgemm_sparse::semiring::{BoolOrAnd, MinPlusF64, PlusTimesF64, PlusTimesU64};
use spgemm_sparse::spgemm::{
    spgemm_hash_unsorted, spgemm_heap, spgemm_hybrid, symbolic_col_counts,
};
use spgemm_sparse::{CscMatrix, Semiring, SpGemmWorkspace, Triples};

/// The thread counts every comparison sweeps (1 exercises the inline
/// fallback path; 3 gives uneven ranges; 8 exceeds small matrices'
/// column counts).
const THREADS: [usize; 4] = [1, 2, 3, 8];

fn arenas<T: Copy>(n: usize) -> Vec<SpGemmWorkspace<T>> {
    (0..n).map(|_| SpGemmWorkspace::new()).collect()
}

/// Multiply kernels: parallel output equals serial bit-for-bit at every
/// thread count. `a` and `b` must be sorted (hybrid/heap require it; the
/// hash kernel doesn't care).
fn check_multiply<S: Semiring>(a: &CscMatrix<S::T>, b: &CscMatrix<S::T>) {
    let (hash, hash_stats) = spgemm_hash_unsorted::<S>(a, b).unwrap();
    let (hybrid, hybrid_stats) = spgemm_hybrid::<S>(a, b).unwrap();
    let (heap, heap_stats) = spgemm_heap::<S>(a, b).unwrap();
    let (counts, sym_stats) = symbolic_col_counts(a, b).unwrap();
    for nthreads in THREADS {
        let mut ws = arenas::<S::T>(nthreads);
        let (c, stats, _) = par_spgemm_hash_unsorted::<S>(a, b, &mut ws).unwrap();
        assert_eq!(c, hash, "hash kernel diverged at {nthreads} threads");
        assert_eq!((stats.flops, stats.nnz_out), (hash_stats.flops, hash_stats.nnz_out));

        let (c, stats, _) = par_spgemm_hybrid::<S>(a, b, &mut ws).unwrap();
        assert_eq!(c, hybrid, "hybrid kernel diverged at {nthreads} threads");
        assert_eq!((stats.flops, stats.nnz_out), (hybrid_stats.flops, hybrid_stats.nnz_out));

        let (c, stats, _) = par_spgemm_heap::<S>(a, b, &mut ws).unwrap();
        assert_eq!(c, heap, "heap kernel diverged at {nthreads} threads");
        assert_eq!((stats.flops, stats.nnz_out), (heap_stats.flops, heap_stats.nnz_out));

        let (pc, stats, _) = par_symbolic_col_counts(a, b, &mut ws).unwrap();
        assert_eq!(pc, counts, "symbolic counts diverged at {nthreads} threads");
        assert_eq!(stats.nnz_out, sym_stats.nnz_out);
        assert_eq!(stats.flops, sym_stats.flops);
    }
}

/// Merge kernels: parallel equals serial at every thread count. Parts
/// must be sorted (heap merge requires it).
fn check_merge<S: Semiring>(parts: &[CscMatrix<S::T>]) {
    let (unsorted, _) = merge_hash_unsorted::<S>(parts).unwrap();
    let (sorted, _) = merge_hash_sorted::<S>(parts).unwrap();
    let (heap, _) = merge_heap::<S>(parts).unwrap();
    for nthreads in THREADS {
        let mut ws = arenas::<S::T>(nthreads);
        let (c, _, _) = par_merge_hash_unsorted::<S>(parts, &mut ws).unwrap();
        assert_eq!(c, unsorted, "hash merge diverged at {nthreads} threads");
        let (c, _, _) = par_merge_hash_sorted::<S>(parts, &mut ws).unwrap();
        assert_eq!(c, sorted, "sorted hash merge diverged at {nthreads} threads");
        let (c, _, _) = par_merge_heap::<S>(parts, &mut ws).unwrap();
        assert_eq!(c, heap, "heap merge diverged at {nthreads} threads");
    }
}

fn arb_square(maxdim: usize, maxnnz: usize) -> impl Strategy<Value = CscMatrix<u64>> {
    (2..=maxdim).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1..9u64), 0..=maxnnz).prop_map(
            move |entries| {
                let mut t = Triples::with_capacity(n, n, entries.len());
                for (r, c, v) in entries {
                    t.push(r, c, v);
                }
                let mut m = t.to_csc_dedup::<PlusTimesU64>();
                m.sort_columns();
                m
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random squarings: all parallel multiply kernels bit-match serial.
    #[test]
    fn parallel_multiply_matches_serial(m in arb_square(24, 90)) {
        check_multiply::<PlusTimesU64>(&m, &m);
    }

    /// Random part stacks: all parallel merge kernels bit-match serial.
    #[test]
    fn parallel_merge_matches_serial(m in arb_square(20, 60), seed in 0u64..500) {
        let mut b = er_random::<PlusTimesU64>(m.nrows(), m.ncols(), 3, seed);
        b.sort_columns();
        let parts = [m.clone(), b, m];
        check_merge::<PlusTimesU64>(&parts);
    }
}

/// Every supported semiring round-trips bit-identically — including the
/// non-commutative-add-sensitive min-plus and the boolean semiring.
#[test]
fn all_semirings_bit_identical() {
    let n = 48;
    let af = er_random::<PlusTimesF64>(n, n, 5, 7);
    check_multiply::<PlusTimesF64>(&af, &af);
    check_merge::<PlusTimesF64>(&[af, er_random::<PlusTimesF64>(n, n, 4, 8)]);

    let am = er_random::<MinPlusF64>(n, n, 5, 9);
    check_multiply::<MinPlusF64>(&am, &am);
    check_merge::<MinPlusF64>(&[am, er_random::<MinPlusF64>(n, n, 4, 10)]);

    let ab = er_random::<BoolOrAnd>(n, n, 5, 11);
    check_multiply::<BoolOrAnd>(&ab, &ab);
    check_merge::<BoolOrAnd>(&[ab, er_random::<BoolOrAnd>(n, n, 4, 12)]);

    let au = er_random::<PlusTimesU64>(n, n, 5, 13);
    check_multiply::<PlusTimesU64>(&au, &au);
}

/// Degenerate splitter input: B made almost entirely of empty columns.
#[test]
fn empty_columns_split_and_match() {
    let a = er_random::<PlusTimesU64>(32, 32, 4, 21);
    let mut t = Triples::with_capacity(32, 32, 6);
    for r in 0..6u32 {
        t.push(r, 17, 1 + r as u64); // one lone populated column
    }
    let b = t.to_csc_dedup::<PlusTimesU64>();
    check_multiply::<PlusTimesU64>(&a, &b);
    // A fully empty operand too.
    let empty = Triples::<u64>::with_capacity(32, 32, 0).to_csc_dedup::<PlusTimesU64>();
    check_multiply::<PlusTimesU64>(&a, &empty);
    check_merge::<PlusTimesU64>(&[empty.clone(), empty]);
}

/// Degenerate splitter input: one dense column dwarfing everything else.
#[test]
fn single_dense_column_matches() {
    let a = er_random::<PlusTimesU64>(40, 40, 3, 22);
    let mut t = Triples::with_capacity(40, 40, 40 + 39);
    for r in 0..40u32 {
        t.push(r, 13, (r + 1) as u64); // dense column 13
    }
    for c in 0..40u32 {
        if c != 13 {
            t.push(c % 40, c, 1);
        }
    }
    let mut b = t.to_csc_dedup::<PlusTimesU64>();
    b.sort_columns();
    check_multiply::<PlusTimesU64>(&a, &b);
}

/// Degenerate splitter input: all nonzeros land in one thread's range
/// (leading columns hold everything; trailing columns are structural
/// only). Also covers ncols < nthreads via a 3-column B against 8 threads.
#[test]
fn all_nnz_in_one_thread_range_matches() {
    let a = er_random::<PlusTimesU64>(24, 24, 4, 23);
    let mut t = Triples::with_capacity(24, 24, 24 * 3);
    for c in 0..3u32 {
        for r in 0..24u32 {
            t.push(r, c, (r + c + 1) as u64);
        }
    }
    let mut b = t.to_csc_dedup::<PlusTimesU64>();
    b.sort_columns();
    check_multiply::<PlusTimesU64>(&a, &b);

    // Narrower than the thread pool: 3 output columns, 8 threads.
    let mut narrow = Triples::with_capacity(24, 3, 24 * 3);
    for c in 0..3u32 {
        for r in 0..24u32 {
            narrow.push(r, c, (r + 2 * c + 1) as u64);
        }
    }
    let mut nb = narrow.to_csc_dedup::<PlusTimesU64>();
    nb.sort_columns();
    check_multiply::<PlusTimesU64>(&a, &nb);
}

/// The splitter itself on degenerate weight vectors: covers, stays in
/// bounds, and never emits an empty range.
#[test]
fn splitter_degenerate_weights() {
    for nparts in THREADS {
        for weights in [
            vec![],
            vec![0u64; 1],
            vec![0u64; 13],
            {
                let mut w = vec![0u64; 9];
                w[0] = u64::MAX / 16;
                w
            },
            {
                let mut w = vec![1u64; 9];
                w[8] = 1 << 40;
                w
            },
        ] {
            let ranges = split_cols_by_weight(&weights, nparts);
            assert!(!ranges.is_empty());
            assert!(ranges.len() <= nparts.max(1));
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, weights.len());
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            if !weights.is_empty() {
                assert!(ranges.iter().all(|r| !r.is_empty()));
            }
        }
    }
}
