//! Property tests for workspace-backed kernel entry points.
//!
//! The `_with_workspace` variants must be **bit-identical** to the
//! allocating entry points — same `colptr`, same `rowidx` order, same
//! value bits (identical accumulation order makes f64 exact), same
//! sortedness flag — including when one workspace is reused across an
//! interleaved multiply → merge → multiply sequence whose operand shapes
//! grow and shrink. Stale state in a reused accumulator, arena, heap, or
//! cursor vector is exactly the bug class these tests hunt.

use proptest::prelude::*;
use spgemm_sparse::merge::{
    merge_hash_sorted, merge_hash_sorted_with_workspace, merge_hash_unsorted,
    merge_hash_unsorted_with_workspace, merge_heap, merge_heap_with_workspace,
};
use spgemm_sparse::semiring::{BoolOrAnd, MinPlusF64, PlusTimesF64, PlusTimesU64};
use spgemm_sparse::spgemm::{
    spgemm_hash_unsorted, spgemm_hash_unsorted_with_workspace, spgemm_hybrid,
    spgemm_hybrid_with_workspace, symbolic_col_counts, symbolic_col_counts_with_workspace,
};
use spgemm_sparse::{CscMatrix, Semiring, SpGemmWorkspace, Triples};

/// Exact structural + bit equality (not `eq_modulo_order`).
fn assert_bit_identical<T: Copy + PartialEq + std::fmt::Debug>(
    ws_out: &CscMatrix<T>,
    ref_out: &CscMatrix<T>,
    what: &str,
) {
    assert_eq!(ws_out.nrows(), ref_out.nrows(), "{what}: nrows");
    assert_eq!(ws_out.ncols(), ref_out.ncols(), "{what}: ncols");
    assert_eq!(ws_out.colptr(), ref_out.colptr(), "{what}: colptr");
    assert_eq!(ws_out.rowidx(), ref_out.rowidx(), "{what}: rowidx");
    assert_eq!(ws_out.vals(), ref_out.vals(), "{what}: vals");
    assert_eq!(ws_out.is_sorted(), ref_out.is_sorted(), "{what}: sorted flag");
}

/// One full kernel round on `(a, b)` against `ws`, checking every
/// workspace entry point against its allocating twin.
fn round_trip<S: Semiring>(a: &CscMatrix<S::T>, b: &CscMatrix<S::T>, ws: &mut SpGemmWorkspace<S::T>)
where
    S::T: PartialEq + std::fmt::Debug,
{
    let (c_ws, _) = spgemm_hash_unsorted_with_workspace::<S>(a, b, ws).unwrap();
    let (c_ref, _) = spgemm_hash_unsorted::<S>(a, b).unwrap();
    assert_bit_identical(&c_ws, &c_ref, "hash multiply");

    let (h_ws, _) = spgemm_hybrid_with_workspace::<S>(a, b, ws).unwrap();
    let (h_ref, _) = spgemm_hybrid::<S>(a, b).unwrap();
    assert_bit_identical(&h_ws, &h_ref, "hybrid multiply");

    let (counts_ws, _) = symbolic_col_counts_with_workspace(a, b, ws).unwrap();
    let (counts_ref, _) = symbolic_col_counts(a, b).unwrap();
    assert_eq!(counts_ws, counts_ref, "symbolic counts");

    let parts = [c_ws.clone(), c_ws, c_ref];
    let (mu_ws, _) = merge_hash_unsorted_with_workspace::<S>(&parts, ws).unwrap();
    let (mu_ref, _) = merge_hash_unsorted::<S>(&parts).unwrap();
    assert_bit_identical(&mu_ws, &mu_ref, "hash merge unsorted");

    let (ms_ws, _) = merge_hash_sorted_with_workspace::<S>(&parts, ws).unwrap();
    let (ms_ref, _) = merge_hash_sorted::<S>(&parts).unwrap();
    assert_bit_identical(&ms_ws, &ms_ref, "hash merge sorted");
    assert!(ms_ws.is_sorted());

    // Heap merge needs sorted inputs: reuse the sorted merge outputs.
    let sorted_parts = [ms_ws.clone(), ms_ws];
    let (hp_ws, _) = merge_heap_with_workspace::<S>(&sorted_parts, ws).unwrap();
    let (hp_ref, _) = merge_heap::<S>(&sorted_parts).unwrap();
    assert_bit_identical(&hp_ws, &hp_ref, "heap merge");
}

/// A conformable (A: m×k, B: k×n) pair built from arbitrary triples.
fn arb_pair(maxdim: usize, maxnnz: usize) -> impl Strategy<Value = (CscMatrix<u64>, CscMatrix<u64>)> {
    (1..=maxdim, 1..=maxdim, 1..=maxdim).prop_flat_map(move |(m, k, n)| {
        (
            proptest::collection::vec((0..m as u32, 0..k as u32, 1..9u64), 0..=maxnnz),
            proptest::collection::vec((0..k as u32, 0..n as u32, 1..9u64), 0..=maxnnz),
        )
            .prop_map(move |(ea, eb)| {
                let build = |nr: usize, nc: usize, entries: Vec<(u32, u32, u64)>| {
                    let mut t = Triples::with_capacity(nr, nc, entries.len());
                    for (r, c, v) in entries {
                        t.push(r, c, v);
                    }
                    t.to_csc_dedup::<PlusTimesU64>()
                };
                (build(m, k, ea), build(k, n, eb))
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every workspace entry point is bit-identical to its allocating
    /// twin, for a u64 arithmetic semiring, with one workspace shared by
    /// the whole round (multiplies, merges, symbolic).
    #[test]
    fn workspace_paths_bit_identical_u64((a, b) in arb_pair(24, 90)) {
        let mut ws = SpGemmWorkspace::new();
        round_trip::<PlusTimesU64>(&a, &b, &mut ws);
    }

    /// Same, over f64 (+,×): identical accumulation order means exact
    /// float bit equality, not approximate.
    #[test]
    fn workspace_paths_bit_identical_f64((a, b) in arb_pair(20, 70)) {
        let fa = a.map(|v| v as f64 * 0.37);
        let fb = b.map(|v| v as f64 * 0.53);
        let mut ws = SpGemmWorkspace::new();
        round_trip::<PlusTimesF64>(&fa, &fb, &mut ws);
    }

    /// Same, over the tropical (min,+) semiring whose zero is +∞ — the
    /// accumulator's `fill` value differs wildly from (+,×), so a
    /// workspace previously used under one semiring must not leak its
    /// fill into another.
    #[test]
    fn workspace_paths_bit_identical_minplus((a, b) in arb_pair(20, 70)) {
        let fa = a.map(|v| v as f64);
        let fb = b.map(|v| v as f64);
        let mut ws = SpGemmWorkspace::new();
        round_trip::<MinPlusF64>(&fa, &fb, &mut ws);
        // Cross-semiring reuse on the same scratch: the (+,×) round after
        // a (min,+) round must stay exact.
        round_trip::<PlusTimesF64>(&fa, &fb, &mut ws);
    }

    /// Same, over the boolean semiring (structure-only products).
    #[test]
    fn workspace_paths_bit_identical_bool((a, b) in arb_pair(24, 90)) {
        let ba = a.map(|_| true);
        let bb = b.map(|_| true);
        let mut ws = SpGemmWorkspace::new();
        round_trip::<BoolOrAnd>(&ba, &bb, &mut ws);
    }

    /// A reused workspace stays bit-identical across an interleaved
    /// sequence of rounds whose shapes grow and shrink — the arena
    /// lengths from a big round must never bleed into a small one.
    #[test]
    fn reused_workspace_survives_shape_changes(
        pairs in proptest::collection::vec(arb_pair(22, 60), 2..=4)
    ) {
        let mut ws = SpGemmWorkspace::new();
        let mut scratch_prev = 0u64;
        for (a, b) in &pairs {
            round_trip::<PlusTimesU64>(a, b, &mut ws);
            // Capacity is monotone: shrinking shapes never shrink scratch.
            let scratch = ws.scratch_bytes();
            prop_assert!(scratch >= scratch_prev, "scratch shrank: {scratch} < {scratch_prev}");
            scratch_prev = scratch;
        }
        prop_assert!(ws.peak_scratch_bytes() >= scratch_prev);
    }
}

/// Deterministic capacity-monotonicity check: a big round then a small
/// round leaves capacity at the big round's level while counting zero new
/// allocations for the small one.
#[test]
fn capacity_monotone_and_small_rounds_are_free() {
    use spgemm_sparse::gen::er_random;
    let big_a = er_random::<PlusTimesU64>(120, 120, 6, 1).map(|_| 1u64);
    let big_b = er_random::<PlusTimesU64>(120, 120, 6, 2).map(|_| 1u64);
    let small_a = er_random::<PlusTimesU64>(15, 15, 3, 3).map(|_| 1u64);
    let small_b = er_random::<PlusTimesU64>(15, 15, 3, 4).map(|_| 1u64);

    let mut ws = SpGemmWorkspace::new();
    let _ = spgemm_hash_unsorted_with_workspace::<PlusTimesU64>(&big_a, &big_b, &mut ws).unwrap();
    let cap = ws.scratch_bytes();
    let allocs = ws.total_allocs();

    let (c_small, stats) =
        spgemm_hash_unsorted_with_workspace::<PlusTimesU64>(&small_a, &small_b, &mut ws).unwrap();
    assert_eq!(ws.scratch_bytes(), cap, "small round must not resize scratch");
    // Only the three exact-size output copies; no scratch allocations.
    assert_eq!(ws.total_allocs() - allocs, 3);
    assert_eq!(stats.allocs, 3);

    // And the small output is still exactly right.
    let (c_ref, _) = spgemm_hash_unsorted::<PlusTimesU64>(&small_a, &small_b).unwrap();
    assert_bit_identical(&c_small, &c_ref, "small-after-big multiply");
}
