//! Property tests for the sparse substrate's structural invariants.

use proptest::prelude::*;
use spgemm_sparse::ops::{
    hadamard, permute_rows, permute_symmetric, prune_topk_cols, random_permutation, row_block,
    row_split_blocks, transpose,
};
use spgemm_sparse::semiring::{PlusTimesF64, PlusTimesU64};
use spgemm_sparse::spgemm::esc::spgemm_esc;
use spgemm_sparse::spgemm::{spgemm_hash_unsorted, spgemm_spa};
use spgemm_sparse::{CscMatrix, DcscMatrix, Triples};

fn arb_matrix(maxdim: usize, maxnnz: usize) -> impl Strategy<Value = CscMatrix<u64>> {
    (1..=maxdim, 1..=maxdim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr as u32, 0..nc as u32, 1..9u64), 0..=maxnnz).prop_map(
            move |entries| {
                let mut t = Triples::with_capacity(nr, nc, entries.len());
                for (r, c, v) in entries {
                    t.push(r, c, v);
                }
                t.to_csc_dedup::<PlusTimesU64>()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// sort_columns is idempotent and preserves the entry multiset.
    #[test]
    fn sort_columns_idempotent(m in arb_matrix(30, 120)) {
        let mut s1 = m.clone();
        s1.sort_columns();
        let mut s2 = s1.clone();
        s2.sort_columns();
        prop_assert_eq!(&s1, &s2);
        prop_assert!(s1.eq_modulo_order(&m));
    }

    /// retain(|..| true) is the identity; retain(|..| false) empties.
    #[test]
    fn retain_extremes(m in arb_matrix(25, 80)) {
        let mut all = m.clone();
        all.retain(|_, _, _| true);
        prop_assert!(all.eq_modulo_order(&m));
        let mut none = m.clone();
        none.retain(|_, _, _| false);
        prop_assert_eq!(none.nnz(), 0);
    }

    /// DCSC roundtrip is lossless and its SpGEMM matches the CSC kernel.
    #[test]
    fn dcsc_roundtrip_and_multiply(m in arb_matrix(25, 60)) {
        let d = DcscMatrix::from_csc(&m);
        prop_assert!(d.to_csc().eq_modulo_order(&m));
        if m.nrows() == m.ncols() {
            let (csc, _) = spgemm_hash_unsorted::<PlusTimesU64>(&m, &m).unwrap();
            let (dcsc, _) = spgemm_sparse::dcsc::spgemm_hash_dcsc::<PlusTimesU64>(&d, &d).unwrap();
            prop_assert!(dcsc.to_csc().eq_modulo_order(&csc));
        }
    }

    /// ESC agrees with the SPA oracle on arbitrary inputs.
    #[test]
    fn esc_matches_oracle(m in arb_matrix(20, 60)) {
        if m.nrows() == m.ncols() {
            let (oracle, _) = spgemm_spa::<PlusTimesU64>(&m, &m).unwrap();
            let (esc, _) = spgemm_esc::<PlusTimesU64>(&m, &m).unwrap();
            prop_assert!(esc.eq_modulo_order(&oracle));
        }
    }

    /// Symmetric permutation preserves products up to relabeling:
    /// P·(A·A)·Pᵀ = (P·A·Pᵀ)·(P·A·Pᵀ).
    #[test]
    fn permutation_commutes_with_squaring(m in arb_matrix(20, 50), seed in 0u64..1000) {
        if m.nrows() == m.ncols() {
            let perm = random_permutation(m.nrows(), seed);
            let pm = permute_symmetric(&m, &perm);
            let (sq_then_perm, _) = spgemm_spa::<PlusTimesU64>(&m, &m).unwrap();
            let lhs = permute_symmetric(&sq_then_perm, &perm);
            let (rhs, _) = spgemm_spa::<PlusTimesU64>(&pm, &pm).unwrap();
            prop_assert!(lhs.eq_modulo_order(&rhs));
        }
    }

    /// Row permutation preserves the transpose relation:
    /// (P·A)ᵀ = Aᵀ·Pᵀ (columns relabeled).
    #[test]
    fn permute_rows_preserves_nnz_and_columns(m in arb_matrix(20, 60), seed in 0u64..1000) {
        let perm = random_permutation(m.nrows(), seed);
        let pm = permute_rows(&m, &perm);
        prop_assert_eq!(pm.nnz(), m.nnz());
        for j in 0..m.ncols() {
            prop_assert_eq!(pm.col_nnz(j), m.col_nnz(j));
        }
    }

    /// Row blocks partition the entries.
    #[test]
    fn row_blocks_partition(m in arb_matrix(30, 100), parts in 1usize..6) {
        let blocks = row_split_blocks(&m, parts);
        prop_assert_eq!(blocks.iter().map(|b| b.nnz()).sum::<usize>(), m.nnz());
        prop_assert_eq!(blocks.iter().map(|b| b.nrows()).sum::<usize>(), m.nrows());
        // Each block is the matching row_block.
        let single = row_block(&m, 0..m.nrows());
        prop_assert!(single.eq_modulo_order(&m));
    }

    /// Hadamard with self under (+,×) squares the values in place.
    #[test]
    fn hadamard_self_squares(m in arb_matrix(20, 60)) {
        let h = hadamard::<PlusTimesU64>(&m, &m).unwrap();
        prop_assert_eq!(h.nnz(), m.nnz());
        let expect = m.map(|v| v * v);
        prop_assert!(h.eq_modulo_order(&expect));
    }

    /// prune_topk keeps column sizes ≤ k and only drops the smallest.
    #[test]
    fn prune_topk_bounds(m in arb_matrix(25, 80), k in 1usize..6) {
        let f = m.map(|v| v as f64);
        let p = prune_topk_cols(&f, k);
        for j in 0..p.ncols() {
            prop_assert!(p.col_nnz(j) <= k);
            prop_assert!(p.col_nnz(j) == f.col_nnz(j).min(k));
            // Every kept value is >= every dropped value.
            let kept_min = p.col(j).1.iter().copied().fold(f64::INFINITY, f64::min);
            let kept: std::collections::HashSet<u32> = p.col(j).0.iter().copied().collect();
            for (&r, &v) in f.col(j).0.iter().zip(f.col(j).1.iter()) {
                if !kept.contains(&r) {
                    prop_assert!(v <= kept_min + 1e-12);
                }
            }
        }
    }

    /// Matrix Market roundtrip preserves the matrix exactly enough.
    #[test]
    fn matrix_market_roundtrip(m in arb_matrix(20, 60)) {
        let f = m.map(|v| v as f64);
        let mut buf = Vec::new();
        spgemm_sparse::io::write_matrix_market(&f, &mut buf).unwrap();
        let back = spgemm_sparse::io::read_matrix_market(&buf[..]).unwrap();
        prop_assert!(f.approx_eq(&back, 1e-12));
    }

    /// transpose turns column degree into row degree.
    #[test]
    fn transpose_swaps_degrees(m in arb_matrix(25, 80)) {
        let t = transpose(&m);
        prop_assert_eq!(t.nrows(), m.ncols());
        prop_assert_eq!(t.ncols(), m.nrows());
        let mut row_deg = vec![0usize; m.nrows()];
        for (r, _, _) in m.iter() {
            row_deg[r as usize] += 1;
        }
        for (j, &d) in row_deg.iter().enumerate() {
            prop_assert_eq!(t.col_nnz(j), d);
        }
    }

    /// f64 distributed-style sums: hash and SPA agree within tolerance
    /// despite different accumulation orders.
    #[test]
    fn float_kernels_agree_within_tolerance(m in arb_matrix(20, 60)) {
        if m.nrows() == m.ncols() {
            let f = m.map(|v| v as f64 * 0.37);
            let (h, _) = spgemm_hash_unsorted::<PlusTimesF64>(&f, &f).unwrap();
            let (s, _) = spgemm_spa::<PlusTimesF64>(&f, &f).unwrap();
            prop_assert!(h.approx_eq(&s, 1e-9));
        }
    }
}
