//! Proptest corruption harness for the structural validators.
//!
//! Each property generates an arbitrary valid matrix, applies one targeted
//! corruption through the check-free [`CscMatrix::from_parts_raw`]
//! constructor, and asserts that [`Validate`] reports the *precise*
//! [`Defect`] — right variant, right column, right position — rather than
//! merely failing.

use proptest::prelude::*;
use spgemm_sparse::semiring::PlusTimesU64;
use spgemm_sparse::spgemm::spgemm_hash_unsorted;
use spgemm_sparse::{CscMatrix, Defect, Sortedness, Triples, Validate};

fn arb_matrix(maxdim: usize, maxnnz: usize) -> impl Strategy<Value = CscMatrix<u64>> {
    (1..=maxdim, 1..=maxdim).prop_flat_map(move |(nr, nc)| {
        proptest::collection::vec((0..nr as u32, 0..nc as u32, 1..9u64), 0..=maxnnz).prop_map(
            move |entries| {
                let mut t = Triples::with_capacity(nr, nc, entries.len());
                for (r, c, v) in entries {
                    t.push(r, c, v);
                }
                t.to_csc_dedup::<PlusTimesU64>()
            },
        )
    })
}

/// Column owning global entry position `pos`.
fn col_of(colptr: &[usize], pos: usize) -> usize {
    (0..colptr.len() - 1)
        .find(|&j| colptr[j] <= pos && pos < colptr[j + 1])
        .expect("position within nnz range")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No false positives: every generated matrix satisfies both contracts.
    #[test]
    fn generated_matrices_validate_clean(m in arb_matrix(30, 120)) {
        prop_assert!(m.validate(Sortedness::Sorted).is_ok());
        prop_assert!(m.validate(Sortedness::Unsorted).is_ok());
    }

    /// Sort-free kernel outputs satisfy the unsorted contract they claim.
    #[test]
    fn unsorted_kernel_output_validates(m in arb_matrix(20, 60)) {
        if m.nrows() == m.ncols() {
            let (c, _) = spgemm_hash_unsorted::<PlusTimesU64>(&m, &m).unwrap();
            prop_assert!(c.validate(Sortedness::Unsorted).is_ok());
        }
    }

    /// Swapping two adjacent colptr entries is reported as exactly
    /// `ColptrNotMonotone` at the swapped column, with both offsets.
    #[test]
    fn colptr_swap_is_caught_as_non_monotone(m in arb_matrix(30, 120)) {
        let (nr, nc, mut cp, ri, vals, sorted) = m.into_parts();
        // An interior strictly-increasing pair; swapping it breaks
        // monotonicity without touching colptr[0].
        if let Some(i) = (1..nc).find(|&i| cp[i] < cp[i + 1]) {
            cp.swap(i, i + 1);
            let (prev, next) = (cp[i], cp[i + 1]);
            let bad = CscMatrix::from_parts_raw(nr, nc, cp, ri, vals, sorted);
            let e = bad.validate(Sortedness::Unsorted).unwrap_err();
            prop_assert_eq!(e.defect.clone(), Defect::ColptrNotMonotone { col: i, prev, next });
            prop_assert!(e.to_string().contains(&format!("column {i}")));
        }
    }

    /// An out-of-bounds row index is located by column and global position.
    #[test]
    fn out_of_bounds_row_is_located(m in arb_matrix(30, 120), which in 0usize..4096) {
        if m.nnz() > 0 {
            let (nr, nc, cp, mut ri, vals, sorted) = m.into_parts();
            let pos = which % ri.len();
            let col = col_of(&cp, pos);
            ri[pos] = nr as u32; // first invalid row id
            let bad = CscMatrix::from_parts_raw(nr, nc, cp, ri, vals, sorted);
            let e = bad.validate(Sortedness::Unsorted).unwrap_err();
            prop_assert_eq!(
                e.defect.clone(),
                Defect::RowOutOfBounds { col, pos, row: nr as u32, nrows: nr }
            );
            prop_assert!(e.to_string().contains(&format!("column {col}")));
            prop_assert!(e.to_string().contains(&format!("entry {pos}")));
        }
    }

    /// A duplicated row inside a sorted column is reported as a duplicate
    /// (not as an ordering error) in sorted mode.
    #[test]
    fn duplicate_in_sorted_mode_is_a_duplicate(m in arb_matrix(30, 120)) {
        let (nr, nc, cp, mut ri, vals, sorted) = m.into_parts();
        let fat_col = (0..nc).find(|&j| cp[j + 1] - cp[j] >= 2);
        if let (Some(j), true) = (fat_col, sorted) {
            let row = ri[cp[j]];
            ri[cp[j] + 1] = row;
            let bad = CscMatrix::from_parts_raw(nr, nc, cp, ri, vals, sorted);
            let e = bad.validate(Sortedness::Sorted).unwrap_err();
            prop_assert_eq!(e.defect.clone(), Defect::DuplicateRow { col: j, row });
            prop_assert!(e.to_string().contains(&format!("column {j}")));
        }
    }

    /// Truncating the value array (length desync) is caught as an nnz
    /// inconsistency naming all three lengths.
    #[test]
    fn value_length_desync_is_caught(m in arb_matrix(30, 120)) {
        if m.nnz() > 0 {
            let (nr, nc, cp, ri, mut vals, sorted) = m.into_parts();
            vals.pop();
            let nnz = ri.len();
            let bad = CscMatrix::from_parts_raw(nr, nc, cp, ri, vals, sorted);
            let e = bad.validate(Sortedness::Unsorted).unwrap_err();
            prop_assert_eq!(
                e.defect.clone(),
                Defect::NnzInconsistent {
                    colptr_last: nnz,
                    rowidx_len: nnz,
                    vals_len: nnz - 1
                }
            );
        }
    }
}
