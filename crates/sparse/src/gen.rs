//! Deterministic synthetic matrix generators.
//!
//! These stand in for the paper's test matrices (Table V), which are either
//! proprietary (Metaclust, IMG isolate genomes) or far beyond a single
//! node's memory. Each generator controls the structural parameters that
//! drive the paper's observed effects: nonzeros per row/column, degree
//! skew, compression factor under squaring, and the
//! `nnz(C) ≫ nnz(A)+nnz(B)` blow-up that forces batching.
//!
//! | Paper matrix | Generator | Rationale |
//! |---|---|---|
//! | Friendster (social) | [`rmat`] | power-law degrees, heavy squaring blow-up |
//! | Eukarya / Isolates / Metaclust50 (protein similarity) | [`clustered_similarity`] | block-community structure, high flops & cf, symmetric |
//! | Rice-kmers / Metaclust20m (reads × k-mers) | [`kmer_matrix`] | rectangular, ~2 nnz per column, `A·Aᵀ` workload |
//! | generic / calibration | [`er_random`] | uniform baseline |

use crate::csc::CscMatrix;
use crate::semiring::Semiring;
use crate::triples::Triples;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Values that generators can synthesize.
pub trait RandValue: Copy {
    /// A "generic nonzero" drawn from `rng`.
    fn rand_value(rng: &mut StdRng) -> Self;
}

impl RandValue for f64 {
    fn rand_value(rng: &mut StdRng) -> f64 {
        // (0, 1]: never generates an explicit zero.
        1.0 - rng.gen::<f64>().min(0.999_999)
    }
}

impl RandValue for u64 {
    fn rand_value(rng: &mut StdRng) -> u64 {
        rng.gen_range(1..=8)
    }
}

impl RandValue for i64 {
    fn rand_value(rng: &mut StdRng) -> i64 {
        rng.gen_range(1..=8)
    }
}

impl RandValue for bool {
    fn rand_value(_rng: &mut StdRng) -> bool {
        true
    }
}

/// Sample `k` distinct values from `0..n` (k ≤ n) via partial Fisher–Yates
/// on a temporary index map kept sparse with a small hash map.
fn sample_distinct(rng: &mut StdRng, n: usize, k: usize, out: &mut Vec<u32>) {
    out.clear();
    if k >= n {
        out.extend(0..n as u32);
        return;
    }
    // Floyd's algorithm: O(k) expected.
    let mut chosen = std::collections::HashSet::with_capacity(k * 2);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&(t as u32)) { j as u32 } else { t as u32 };
        chosen.insert(pick);
        out.push(pick);
    }
}

/// Erdős–Rényi-style matrix: each column gets `nnz_per_col` distinct rows
/// uniformly at random. Deterministic in `seed`.
pub fn er_random<S: Semiring>(nrows: usize, ncols: usize, nnz_per_col: usize, seed: u64) -> CscMatrix<S::T>
where
    S::T: RandValue,
{
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE5D0_5E3A_11C0_FFEE);
    let mut t = Triples::with_capacity(nrows, ncols, ncols * nnz_per_col);
    let mut rows = Vec::with_capacity(nnz_per_col);
    for j in 0..ncols {
        sample_distinct(&mut rng, nrows, nnz_per_col, &mut rows);
        for &r in &rows {
            t.push(r, j as u32, S::T::rand_value(&mut rng));
        }
    }
    t.to_csc()
}

/// R-MAT (Graph500-style) power-law square matrix of order `2^scale` with
/// approximately `edge_factor · 2^scale` distinct nonzeros. Quadrant
/// probabilities `(a, b, c)` (d = 1−a−b−c) default to the Graph500 values
/// when `None`. Optionally symmetrized (social-network-like).
///
/// Duplicates are combined structurally (value regenerated), matching how a
/// graph adjacency matrix is formed from an edge list.
pub fn rmat<S: Semiring>(
    scale: u32,
    edge_factor: usize,
    probs: Option<(f64, f64, f64)>,
    symmetric: bool,
    seed: u64,
) -> CscMatrix<S::T>
where
    S::T: RandValue,
{
    let (a, b, c) = probs.unwrap_or((0.57, 0.19, 0.19));
    assert!(a + b + c < 1.0 + 1e-12, "quadrant probabilities must sum below 1");
    let n = 1usize << scale;
    let m = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut coords: Vec<(u32, u32)> = Vec::with_capacity(m * if symmetric { 2 } else { 1 });
    for _ in 0..m {
        let (mut r, mut cidx) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            let p: f64 = rng.gen();
            if p < a {
                // top-left
            } else if p < a + b {
                cidx += half; // top-right
            } else if p < a + b + c {
                r += half; // bottom-left
            } else {
                r += half;
                cidx += half; // bottom-right
            }
            half >>= 1;
        }
        coords.push((r as u32, cidx as u32));
        if symmetric {
            coords.push((cidx as u32, r as u32));
        }
    }
    coords.sort_unstable();
    coords.dedup();
    let mut t = Triples::with_capacity(n, n, coords.len());
    for (r, cidx) in coords {
        t.push(r, cidx, S::T::rand_value(&mut rng));
    }
    t.to_csc()
}

/// Protein-similarity-like matrix: `nclusters` communities of
/// `cluster_size` vertices, dense-ish inside a community
/// (`intra_per_col` links), sparse between (`inter_per_col` links),
/// symmetric, with unit diagonal. Squaring such a matrix has a large
/// compression factor and output blow-up — the regime that forces the
/// paper's batching (HipMCL workloads).
pub fn clustered_similarity(
    nclusters: usize,
    cluster_size: usize,
    intra_per_col: usize,
    inter_per_col: usize,
    seed: u64,
) -> CscMatrix<f64> {
    let n = nclusters * cluster_size;
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A5_51F1_ED00_0001);
    let mut coords: Vec<(u32, u32)> = Vec::new();
    let mut rows = Vec::new();
    for j in 0..n {
        let cluster = j / cluster_size;
        let base = cluster * cluster_size;
        sample_distinct(&mut rng, cluster_size, intra_per_col.min(cluster_size), &mut rows);
        for &r in &rows {
            let gr = (base + r as usize) as u32;
            if gr as usize != j {
                coords.push((gr, j as u32));
                coords.push((j as u32, gr));
            }
        }
        for _ in 0..inter_per_col {
            let r = rng.gen_range(0..n) as u32;
            if r as usize != j {
                coords.push((r, j as u32));
                coords.push((j as u32, r));
            }
        }
        coords.push((j as u32, j as u32));
    }
    coords.sort_unstable();
    coords.dedup();
    let mut t = Triples::with_capacity(n, n, coords.len());
    for (r, c) in coords {
        let v = if r == c { 1.0 } else { 0.1 + 0.9 * rng.gen::<f64>() };
        t.push(r, c, v);
    }
    t.to_csc()
}

/// Banded matrix: each column has up to `2·half_bandwidth + 1` entries on
/// and around the diagonal. The classic scientific-computing stencil
/// pattern — squaring widens the band (`nnz(A²) ≈ 2× nnz(A)`), a milder
/// blow-up regime than the data-analytics matrices.
pub fn banded<S: Semiring>(n: usize, half_bandwidth: usize, seed: u64) -> CscMatrix<S::T>
where
    S::T: RandValue,
{
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA4D_ED00);
    let mut t = Triples::with_capacity(n, n, n * (2 * half_bandwidth + 1));
    for j in 0..n {
        let lo = j.saturating_sub(half_bandwidth);
        let hi = (j + half_bandwidth + 1).min(n);
        for r in lo..hi {
            t.push(r as u32, j as u32, S::T::rand_value(&mut rng));
        }
    }
    t.to_csc()
}

/// Bipartite community matrix (rows = left vertices, columns = right
/// vertices): `ncommunities` blocks in which left/right vertices connect
/// densely, plus uniform background noise. The structure behind
/// recommender-style `A·Aᵀ` workloads.
pub fn bipartite_communities(
    nrows: usize,
    ncols: usize,
    ncommunities: usize,
    intra_per_col: usize,
    noise_per_col: usize,
    seed: u64,
) -> CscMatrix<f64> {
    assert!(ncommunities > 0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB1AA_0001);
    let mut t = Triples::with_capacity(nrows, ncols, ncols * (intra_per_col + noise_per_col));
    let mut rows = Vec::new();
    for j in 0..ncols {
        let comm = j * ncommunities / ncols;
        let row_lo = comm * nrows / ncommunities;
        let row_hi = ((comm + 1) * nrows / ncommunities).max(row_lo + 1);
        let span = row_hi - row_lo;
        sample_distinct(&mut rng, span, intra_per_col.min(span), &mut rows);
        for &r in &rows {
            t.push((row_lo + r as usize) as u32, j as u32, 0.5 + rng.gen::<f64>());
        }
        for _ in 0..noise_per_col {
            t.push(rng.gen_range(0..nrows) as u32, j as u32, 0.1);
        }
    }
    t.to_csc_dedup::<crate::semiring::PlusTimesF64>()
}

/// Reads × k-mers incidence matrix (BELLA / PASTIS-style). Column `k` lists
/// the reads containing k-mer `k`; the paper's Rice-kmers matrix has ~2
/// nonzeros per column. `A·Aᵀ` counts shared k-mers between read pairs.
///
/// To make overlap detection testable, reads are arranged along a genome
/// line: consecutive reads share k-mers (each k-mer is placed in a small
/// window of `reads_per_kmer` consecutive reads).
pub fn kmer_matrix(nreads: usize, nkmers: usize, reads_per_kmer: usize, seed: u64) -> CscMatrix<u64> {
    assert!(nreads > 0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBE11_A000_0000_0001);
    let mut t = Triples::with_capacity(nreads, nkmers, nkmers * reads_per_kmer);
    for k in 0..nkmers {
        // Window anchored at a genome position; consecutive reads overlap.
        let anchor = rng.gen_range(0..nreads);
        let span = reads_per_kmer.min(nreads);
        for d in 0..span {
            let r = (anchor + d) % nreads;
            t.push(r as u32, k as u32, 1);
        }
    }
    t.to_csc_dedup::<crate::semiring::PlusTimesU64>()
        .map(|_| 1u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{PlusTimesF64, PlusTimesU64};

    #[test]
    fn er_is_deterministic() {
        let a = er_random::<PlusTimesF64>(50, 50, 5, 7);
        let b = er_random::<PlusTimesF64>(50, 50, 5, 7);
        assert_eq!(a, b);
        let c = er_random::<PlusTimesF64>(50, 50, 5, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn er_has_exact_column_degrees() {
        let m = er_random::<PlusTimesF64>(40, 30, 6, 3);
        for j in 0..30 {
            assert_eq!(m.col_nnz(j), 6);
        }
        assert!(m.is_sorted());
    }

    #[test]
    fn er_clamps_degree_to_nrows() {
        let m = er_random::<PlusTimesF64>(4, 3, 10, 3);
        for j in 0..3 {
            assert_eq!(m.col_nnz(j), 4);
        }
    }

    #[test]
    fn rmat_shape_and_determinism() {
        let a = rmat::<PlusTimesF64>(8, 8, None, false, 1);
        assert_eq!(a.nrows(), 256);
        assert_eq!(a.ncols(), 256);
        assert!(a.nnz() > 0 && a.nnz() <= 256 * 8);
        let b = rmat::<PlusTimesF64>(8, 8, None, false, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn rmat_is_skewed() {
        let a = rmat::<PlusTimesF64>(10, 16, None, false, 2);
        let degs: Vec<usize> = (0..a.ncols()).map(|j| a.col_nnz(j)).collect();
        let max = *degs.iter().max().unwrap();
        let mean = degs.iter().sum::<usize>() as f64 / degs.len() as f64;
        assert!(
            max as f64 > 4.0 * mean,
            "R-MAT should be skewed: max {max} vs mean {mean}"
        );
    }

    #[test]
    fn rmat_symmetric_option() {
        let a = rmat::<PlusTimesU64>(7, 6, None, true, 3).map(|_| 1u64);
        let at = crate::ops::transpose(&a);
        assert!(a.eq_modulo_order(&at));
    }

    #[test]
    fn clustered_is_symmetric_with_diagonal() {
        let m = clustered_similarity(4, 25, 8, 1, 5);
        assert_eq!(m.nrows(), 100);
        let pattern = m.map(|_| 1u64);
        let pt = crate::ops::transpose(&pattern);
        assert!(pattern.eq_modulo_order(&pt), "pattern must be symmetric");
        for j in 0..100 {
            let (rows, _) = m.col(j);
            assert!(rows.contains(&(j as u32)), "diagonal present at {j}");
        }
    }

    #[test]
    fn clustered_blowup_under_squaring() {
        // nnz(A²) must exceed nnz(A): the batching regime.
        let m = clustered_similarity(4, 30, 10, 1, 6);
        let (nnz_c, stats) = crate::spgemm::symbolic_nnz(&m, &m).unwrap();
        assert!(nnz_c as usize > m.nnz());
        assert!(stats.flops > nnz_c); // compression factor > 1
    }

    #[test]
    fn banded_has_band_structure_and_mild_blowup() {
        let a = banded::<PlusTimesF64>(200, 2, 11);
        for (r, c, _) in a.iter() {
            assert!((r as i64 - c as i64).abs() <= 2);
        }
        let (nnz_c, _) = crate::spgemm::symbolic_nnz(&a, &a).unwrap();
        // Band of 5 squares to a band of 9: under 2x blow-up.
        assert!(nnz_c as usize <= 2 * a.nnz());
        assert!(nnz_c as usize > a.nnz());
    }

    #[test]
    fn bipartite_communities_block_structure() {
        let a = bipartite_communities(100, 200, 4, 6, 1, 12);
        assert_eq!(a.nrows(), 100);
        assert_eq!(a.ncols(), 200);
        // Most of each column's mass lies in its community's row block.
        let mut in_block = 0usize;
        let mut total = 0usize;
        for (r, c, _) in a.iter() {
            let comm = c * 4 / 200;
            let lo = comm * 100 / 4;
            let hi = (comm + 1) * 100 / 4;
            total += 1;
            if (r as usize) >= lo && (r as usize) < hi {
                in_block += 1;
            }
        }
        assert!(in_block * 10 > total * 7, "{in_block}/{total}");
    }

    #[test]
    fn kmer_matrix_column_degrees() {
        let m = kmer_matrix(100, 400, 2, 9);
        assert_eq!(m.nrows(), 100);
        assert_eq!(m.ncols(), 400);
        for j in 0..m.ncols() {
            assert!(m.col_nnz(j) <= 2 && m.col_nnz(j) >= 1);
        }
    }

    #[test]
    fn kmer_overlaps_are_consecutive() {
        let m = kmer_matrix(50, 300, 3, 10);
        for j in 0..m.ncols() {
            let (rows, _) = m.col(j);
            if rows.len() >= 2 {
                // All reads of a k-mer lie within a window of size 3 (mod wrap).
                let maxr = *rows.iter().max().unwrap() as i64;
                let minr = *rows.iter().min().unwrap() as i64;
                let direct = maxr - minr;
                let wrapped = 50 - direct;
                assert!(direct <= 2 || wrapped <= 2, "col {j}: {rows:?}");
            }
        }
    }
}
