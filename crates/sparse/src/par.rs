//! Column-range parallel wrappers over the serial local kernels.
//!
//! The paper runs 16 OpenMP threads per MPI process; every local kernel in
//! this crate is embarrassingly parallel over *output columns* (Azad et al.,
//! "Exploiting Multiple Levels of Parallelism in SpGEMM"). This module
//! exploits that: it splits the output column space into contiguous ranges
//! balanced by a **flop estimate** (not column count), runs the existing
//! serial `_with_workspace` kernel on each range in its own thread with its
//! own [`SpGemmWorkspace`] arena, and concatenates the per-range outputs.
//!
//! ## Bit-identity
//!
//! The parallel entry points produce output bit-identical to their serial
//! counterparts for any thread count, because every kernel here is
//! per-output-column independent:
//!
//! * column `j` of the result depends only on `B(:,j)` (and all of `A`),
//!   which [`col_block`] extraction preserves exactly;
//! * [`HashAccum`](crate::spgemm::accum::HashAccum)'s insertion order and
//!   per-key accumulation order depend only on the order the column's data
//!   is fed in — never on table capacity or on what previous columns did;
//! * the `sorted` flag every kernel computes is a per-column conjunction,
//!   so AND-ing the per-range flags (what [`col_concat`] does) reproduces
//!   the serial flag.
//!
//! Only the *metering* differs: `WorkStats::allocs`/`peak_scratch_bytes`/
//! `memcpy_bytes` depend on per-thread arena warmth, and the f64
//! `work_units` sum may differ in the last ulp from the serial
//! left-to-right sum. `flops` and `nnz_out` are exact integers and match
//! the serial run exactly.

use crate::csc::CscMatrix;
use crate::merge::{
    merge_hash_sorted_with_workspace, merge_hash_unsorted_with_workspace,
    merge_heap_with_workspace,
};
use crate::ops::{col_block, col_concat};
use crate::semiring::Semiring;
use crate::spgemm::workspace::SpGemmWorkspace;
use crate::spgemm::{
    spgemm_hash_unsorted_with_workspace, spgemm_heap, spgemm_hybrid_with_workspace,
    symbolic_col_counts_with_workspace, WorkStats,
};
use crate::{Result, SparseError};
use std::ops::Range;

/// Split `0..weights.len()` into at most `nparts` contiguous, non-empty
/// ranges with approximately equal total weight.
///
/// Greedy prefix cut against a fair-share target recomputed from the
/// remaining weight (the same scheme as the `Balanced` batch splitter in
/// `spgemm-core`). Each column's weight is scaled by `n` and offset by 1 so
/// zero-weight (empty) columns still spread across ranges instead of all
/// landing in one. Guarantees: the ranges cover `0..n` in order, every
/// range is non-empty (when `n > 0`), and at most `nparts` are returned —
/// possibly fewer when the weight mass makes more cuts pointless (e.g. all
/// weight in the last column).
pub fn split_cols_by_weight(weights: &[u64], nparts: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    if nparts <= 1 || n <= 1 {
        #[allow(clippy::single_range_in_vec_init)] // a one-range plan, not a [0; n] typo
        return vec![0..n];
    }
    let nparts = nparts.min(n);
    let scaled = |j: usize| weights[j] as u128 * n as u128 + 1;
    let mut remaining: u128 = (0..n).map(scaled).sum();
    let mut ranges: Vec<Range<usize>> = Vec::with_capacity(nparts);
    let mut start = 0usize;
    let mut acc: u128 = 0;
    for j in 0..n {
        acc += scaled(j);
        let parts_left = (nparts - ranges.len()) as u128;
        let target = remaining.div_ceil(parts_left);
        if acc >= target && ranges.len() + 1 < nparts && j + 1 < n {
            ranges.push(start..j + 1);
            start = j + 1;
            remaining -= acc;
            acc = 0;
        }
    }
    ranges.push(start..n);
    ranges
}

/// Flop estimate per output column of `a · b` — what the symbolic pass
/// counts: `est[j] = Σ_{i ∈ B(:,j)} nnz(A(:,i))`.
pub fn multiply_col_flops<T: Copy, U: Copy>(a: &CscMatrix<T>, b: &CscMatrix<U>) -> Vec<u64> {
    (0..b.ncols())
        .map(|j| {
            let (rows, _) = b.col(j);
            rows.iter().map(|&i| a.col_nnz(i as usize) as u64).sum()
        })
        .collect()
}

/// Work estimate per output column of a merge: total input entries landing
/// in the column across all parts.
pub fn merge_col_weights<T: Copy>(parts: &[CscMatrix<T>]) -> Vec<u64> {
    let ncols = parts.first().map_or(0, |p| p.ncols());
    (0..ncols)
        .map(|j| parts.iter().map(|p| p.col_nnz(j) as u64).sum())
        .collect()
}

/// Observed per-thread load balance of one or more parallel kernel
/// invocations.
///
/// Per invocation the splitter's ranges each report their work (modeled
/// work units — the flop-cost estimate the splitter balances); the balance
/// records the busiest range and the mean. Merging across invocations sums
/// both, so [`Self::imbalance`] is the work-weighted average of the
/// per-invocation max/mean ratios: `Σ max_i / Σ mean_i`. A value of 1.0
/// means perfectly balanced ranges; 0.0 means nothing was recorded (serial
/// execution).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RangeBalance {
    /// Parallel kernel invocations recorded.
    pub invocations: u64,
    /// Sum over invocations of the busiest range's work units.
    pub sum_max_work: f64,
    /// Sum over invocations of the mean work units per range.
    pub sum_mean_work: f64,
}

impl RangeBalance {
    /// Balance of a single invocation from its per-range work units.
    pub fn from_work(per_range: &[f64]) -> Self {
        if per_range.is_empty() {
            return RangeBalance::default();
        }
        let total: f64 = per_range.iter().sum();
        let max = per_range.iter().copied().fold(0.0f64, f64::max);
        RangeBalance {
            invocations: 1,
            sum_max_work: max,
            sum_mean_work: total / per_range.len() as f64,
        }
    }

    /// Fold another invocation (or another rank's aggregate) into this one.
    pub fn merge(&mut self, other: RangeBalance) {
        self.invocations += other.invocations;
        self.sum_max_work += other.sum_max_work;
        self.sum_mean_work += other.sum_mean_work;
    }

    /// Work-weighted max/mean ratio; `>= 1.0` once anything is recorded,
    /// `0.0` when nothing is (serial runs).
    pub fn imbalance(&self) -> f64 {
        if self.sum_mean_work > 0.0 {
            self.sum_max_work / self.sum_mean_work
        } else {
            0.0
        }
    }
}

fn check_mul_dims<T: Copy, U: Copy>(a: &CscMatrix<T>, b: &CscMatrix<U>) -> Result<()> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: (a.ncols(), a.ncols()),
            found: (b.nrows(), b.ncols()),
        });
    }
    Ok(())
}

/// Run `run` over each range on its own thread, each with its own
/// workspace, and fold the results in range order. `ranges.len()` must not
/// exceed `workspaces.len()` (the splitter guarantees this when called
/// with `nparts = workspaces.len()`); a single range runs inline on the
/// calling thread.
fn run_ranges<R, W, F>(
    ranges: &[Range<usize>],
    workspaces: &mut [SpGemmWorkspace<W>],
    run: F,
) -> Result<(Vec<R>, WorkStats, RangeBalance)>
where
    R: Send,
    W: Copy + Send,
    F: Fn(Range<usize>, &mut SpGemmWorkspace<W>) -> Result<(R, WorkStats)> + Sync,
{
    let mut slots: Vec<Option<Result<(R, WorkStats)>>> = Vec::new();
    slots.resize_with(ranges.len(), || None);
    if ranges.len() <= 1 {
        let mut fallback = SpGemmWorkspace::new();
        let ws = workspaces.first_mut().unwrap_or(&mut fallback);
        if let Some(slot) = slots.first_mut() {
            *slot = Some(run(ranges[0].clone(), ws));
        }
    } else {
        debug_assert!(ranges.len() <= workspaces.len());
        std::thread::scope(|scope| {
            for ((range, ws), slot) in
                ranges.iter().cloned().zip(workspaces.iter_mut()).zip(slots.iter_mut())
            {
                let run = &run;
                scope.spawn(move || *slot = Some(run(range, ws)));
            }
        });
    }
    let mut outs = Vec::with_capacity(ranges.len());
    let mut stats = WorkStats::default();
    let mut per_range = Vec::with_capacity(ranges.len());
    for slot in slots {
        let (r, s) = slot.expect("every spawned range writes its slot")?;
        per_range.push(s.work_units);
        stats.merge(s);
        outs.push(r);
    }
    Ok((outs, stats, RangeBalance::from_work(&per_range)))
}

/// Dispatch a multiply-shaped kernel over flop-balanced column ranges of
/// `b`, concatenating the per-range outputs.
fn par_multiply<S, F>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
    workspaces: &mut [SpGemmWorkspace<S::T>],
    kernel: F,
) -> Result<(CscMatrix<S::T>, WorkStats, RangeBalance)>
where
    S: Semiring,
    F: Fn(&CscMatrix<S::T>, &CscMatrix<S::T>, &mut SpGemmWorkspace<S::T>) -> Result<(CscMatrix<S::T>, WorkStats)>
        + Sync,
{
    check_mul_dims(a, b)?;
    if workspaces.len() <= 1 || b.ncols() <= 1 {
        let mut fallback = SpGemmWorkspace::new();
        let ws = workspaces.first_mut().unwrap_or(&mut fallback);
        let (c, stats) = kernel(a, b, ws)?;
        return Ok((c, stats, RangeBalance::from_work(&[stats.work_units])));
    }
    let weights = multiply_col_flops(a, b);
    let ranges = split_cols_by_weight(&weights, workspaces.len());
    let (parts, stats, bal) = run_ranges(&ranges, workspaces, |range, ws| {
        let sub = col_block(b, range);
        kernel(a, &sub, ws)
    })?;
    Ok((col_concat(&parts)?, stats, bal))
}

/// Parallel [`spgemm_hash_unsorted_with_workspace`]: this paper's sort-free
/// kernel over flop-balanced column ranges. Bit-identical to serial.
pub fn par_spgemm_hash_unsorted<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
    workspaces: &mut [SpGemmWorkspace<S::T>],
) -> Result<(CscMatrix<S::T>, WorkStats, RangeBalance)> {
    par_multiply::<S, _>(a, b, workspaces, |a, b, ws| {
        spgemm_hash_unsorted_with_workspace::<S>(a, b, ws)
    })
}

/// Parallel [`spgemm_hybrid_with_workspace`] (previous-generation sorted
/// kernel). Requires sorted `a`, like the serial path.
pub fn par_spgemm_hybrid<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
    workspaces: &mut [SpGemmWorkspace<S::T>],
) -> Result<(CscMatrix<S::T>, WorkStats, RangeBalance)> {
    par_multiply::<S, _>(a, b, workspaces, |a, b, ws| {
        spgemm_hybrid_with_workspace::<S>(a, b, ws)
    })
}

/// Parallel [`spgemm_heap`]. The heap kernel has no workspace variant
/// (it owns no reusable arenas), so the workspaces only determine the
/// thread count here.
pub fn par_spgemm_heap<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
    workspaces: &mut [SpGemmWorkspace<S::T>],
) -> Result<(CscMatrix<S::T>, WorkStats, RangeBalance)> {
    par_multiply::<S, _>(a, b, workspaces, |a, b, _ws| spgemm_heap::<S>(a, b))
}

/// Dispatch a merge-shaped kernel over weight-balanced column ranges of
/// same-shaped `parts`.
fn par_merge<S, F>(
    parts: &[CscMatrix<S::T>],
    workspaces: &mut [SpGemmWorkspace<S::T>],
    kernel: F,
) -> Result<(CscMatrix<S::T>, WorkStats, RangeBalance)>
where
    S: Semiring,
    F: Fn(&[CscMatrix<S::T>], &mut SpGemmWorkspace<S::T>) -> Result<(CscMatrix<S::T>, WorkStats)>
        + Sync,
{
    let (_, ncols) = crate::merge::common_shape(parts)?;
    if workspaces.len() <= 1 || ncols <= 1 {
        let mut fallback = SpGemmWorkspace::new();
        let ws = workspaces.first_mut().unwrap_or(&mut fallback);
        let (c, stats) = kernel(parts, ws)?;
        return Ok((c, stats, RangeBalance::from_work(&[stats.work_units])));
    }
    let weights = merge_col_weights(parts);
    let ranges = split_cols_by_weight(&weights, workspaces.len());
    let (outs, stats, bal) = run_ranges(&ranges, workspaces, |range, ws| {
        let subs: Vec<CscMatrix<S::T>> =
            parts.iter().map(|p| col_block(p, range.clone())).collect();
        kernel(&subs, ws)
    })?;
    Ok((col_concat(&outs)?, stats, bal))
}

/// Parallel [`merge_hash_unsorted_with_workspace`].
pub fn par_merge_hash_unsorted<S: Semiring>(
    parts: &[CscMatrix<S::T>],
    workspaces: &mut [SpGemmWorkspace<S::T>],
) -> Result<(CscMatrix<S::T>, WorkStats, RangeBalance)> {
    par_merge::<S, _>(parts, workspaces, |parts, ws| {
        merge_hash_unsorted_with_workspace::<S>(parts, ws)
    })
}

/// Parallel [`merge_hash_sorted_with_workspace`].
pub fn par_merge_hash_sorted<S: Semiring>(
    parts: &[CscMatrix<S::T>],
    workspaces: &mut [SpGemmWorkspace<S::T>],
) -> Result<(CscMatrix<S::T>, WorkStats, RangeBalance)> {
    par_merge::<S, _>(parts, workspaces, |parts, ws| {
        merge_hash_sorted_with_workspace::<S>(parts, ws)
    })
}

/// Parallel [`merge_heap_with_workspace`]. Requires sorted inputs, like
/// the serial path.
pub fn par_merge_heap<S: Semiring>(
    parts: &[CscMatrix<S::T>],
    workspaces: &mut [SpGemmWorkspace<S::T>],
) -> Result<(CscMatrix<S::T>, WorkStats, RangeBalance)> {
    par_merge::<S, _>(parts, workspaces, |parts, ws| {
        merge_heap_with_workspace::<S>(parts, ws)
    })
}

/// Parallel [`symbolic_col_counts_with_workspace`]: per-column nnz counts
/// of `a · b` over flop-balanced column ranges. Counts are exact integers,
/// identical to serial.
pub fn par_symbolic_col_counts<T, U, W>(
    a: &CscMatrix<T>,
    b: &CscMatrix<U>,
    workspaces: &mut [SpGemmWorkspace<W>],
) -> Result<(Vec<u64>, WorkStats, RangeBalance)>
where
    T: Copy + Sync,
    U: Copy + Sync,
    W: Copy + Send,
{
    check_mul_dims(a, b)?;
    if workspaces.len() <= 1 || b.ncols() <= 1 {
        let mut fallback = SpGemmWorkspace::new();
        let ws = workspaces.first_mut().unwrap_or(&mut fallback);
        let (counts, stats) = symbolic_col_counts_with_workspace(a, b, ws)?;
        return Ok((counts, stats, RangeBalance::from_work(&[stats.work_units])));
    }
    let weights = multiply_col_flops(a, b);
    let ranges = split_cols_by_weight(&weights, workspaces.len());
    let (chunks, stats, bal) = run_ranges(&ranges, workspaces, |range, ws| {
        let sub = col_block(b, range);
        symbolic_col_counts_with_workspace(a, &sub, ws)
    })?;
    let mut counts = Vec::with_capacity(b.ncols());
    for chunk in chunks {
        counts.extend_from_slice(&chunk);
    }
    Ok((counts, stats, bal))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_cover(ranges: &[Range<usize>], n: usize, nparts: usize) {
        assert!(!ranges.is_empty());
        assert!(ranges.len() <= nparts.max(1));
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, n);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
        if n > 0 {
            for r in ranges {
                assert!(!r.is_empty(), "range {r:?} is empty");
            }
        }
    }

    #[test]
    fn splitter_covers_and_bounds_parts() {
        for nparts in [1, 2, 3, 8] {
            for n in [0usize, 1, 2, 7, 100] {
                let weights = vec![1u64; n];
                let ranges = split_cols_by_weight(&weights, nparts);
                assert_cover(&ranges, n, nparts);
            }
        }
    }

    #[test]
    fn splitter_balances_uniform_weights() {
        let weights = vec![10u64; 64];
        let ranges = split_cols_by_weight(&weights, 8);
        assert_eq!(ranges.len(), 8);
        for r in &ranges {
            assert_eq!(r.len(), 8, "uniform weights split evenly: {ranges:?}");
        }
    }

    #[test]
    fn splitter_isolates_a_dense_column() {
        // One column dwarfs the rest: it should get (essentially) its own
        // range rather than dragging half the matrix with it.
        let mut weights = vec![1u64; 32];
        weights[5] = 100_000;
        let ranges = split_cols_by_weight(&weights, 4);
        assert_cover(&ranges, 32, 4);
        let heavy = ranges.iter().find(|r| r.contains(&5)).unwrap();
        assert!(heavy.len() <= 6, "dense column's range too wide: {ranges:?}");
    }

    #[test]
    fn splitter_handles_empty_columns() {
        // All-zero weights still spread columns across ranges.
        let ranges = split_cols_by_weight(&[0u64; 16], 4);
        assert_cover(&ranges, 16, 4);
        assert_eq!(ranges.len(), 4);
        for r in &ranges {
            assert_eq!(r.len(), 4);
        }
    }

    #[test]
    fn splitter_all_weight_in_last_column() {
        let mut weights = vec![0u64; 8];
        weights[7] = 1_000;
        let ranges = split_cols_by_weight(&weights, 4);
        assert_cover(&ranges, 8, 4);
    }

    #[test]
    fn balance_merges_as_weighted_average() {
        let mut b = RangeBalance::from_work(&[4.0, 4.0]);
        assert!((b.imbalance() - 1.0).abs() < 1e-12);
        b.merge(RangeBalance::from_work(&[6.0, 2.0]));
        // (4 + 6) / (4 + 4) = 1.25
        assert!((b.imbalance() - 1.25).abs() < 1e-12);
        assert_eq!(b.invocations, 2);
        assert_eq!(RangeBalance::default().imbalance(), 0.0);
    }
}
