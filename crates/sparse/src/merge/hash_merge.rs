//! Sort-free hash merging — this paper's "unsorted-hash-merge" (Sec. IV-D).
//!
//! Forms column `j` of the merged output from column `j` of every input via
//! a reusable hash accumulator. Inputs may be unsorted (they are, coming
//! out of the unsorted-hash SpGEMM); output is unsorted unless the sorted
//! variant is requested (final Merge-Fiber only).

use crate::csc::CscMatrix;
use crate::semiring::Semiring;
use crate::spgemm::accum::HashAccum;
use crate::spgemm::{lg, WorkStats, C_DRAIN, C_MERGE_HASH, C_SORT};
use crate::Result;

use super::common_shape;

/// Merge (⊕-sum) same-shaped matrices; unsorted output columns.
pub fn merge_hash_unsorted<S: Semiring>(parts: &[CscMatrix<S::T>]) -> Result<(CscMatrix<S::T>, WorkStats)> {
    merge_hash_impl::<S>(parts, false)
}

/// Merge (⊕-sum) same-shaped matrices; sorted output columns.
///
/// Used for the final Merge-Fiber, after which the application sees a
/// conventionally sorted matrix.
pub fn merge_hash_sorted<S: Semiring>(parts: &[CscMatrix<S::T>]) -> Result<(CscMatrix<S::T>, WorkStats)> {
    merge_hash_impl::<S>(parts, true)
}

fn merge_hash_impl<S: Semiring>(
    parts: &[CscMatrix<S::T>],
    sort: bool,
) -> Result<(CscMatrix<S::T>, WorkStats)> {
    let (nrows, ncols) = common_shape(parts)?;
    // Single input: merging is the identity (plus an optional sort).
    if parts.len() == 1 {
        let mut only = parts[0].clone();
        let mut stats = WorkStats {
            flops: 0,
            nnz_out: only.nnz() as u64,
            work_units: 0.0,
        };
        if sort && !only.is_sorted() {
            stats.work_units += only.nnz() as f64 * lg(only.nnz() / only.ncols().max(1)) * C_SORT;
            only.sort_columns();
        }
        return Ok((only, stats));
    }
    let mut colptr = vec![0usize; ncols + 1];
    let mut rowidx: Vec<u32> = Vec::new();
    let mut vals: Vec<S::T> = Vec::new();
    let mut acc: HashAccum<S::T> = HashAccum::new(S::zero());
    let mut stats = WorkStats::default();

    for j in 0..ncols {
        let total_in: usize = parts.iter().map(|p| p.col_nnz(j)).sum();
        if total_in == 0 {
            colptr[j + 1] = rowidx.len();
            continue;
        }
        acc.reset(total_in);
        for p in parts {
            let (rows, vs) = p.col(j);
            for (&r, &v) in rows.iter().zip(vs.iter()) {
                acc.accumulate::<S>(r, v);
            }
        }
        let before = rowidx.len();
        if sort {
            acc.drain_into_sorted(&mut rowidx, &mut vals);
        } else {
            acc.drain_into(&mut rowidx, &mut vals);
        }
        let produced = rowidx.len() - before;
        stats.nnz_out += produced as u64;
        stats.work_units += total_in as f64 * C_MERGE_HASH + produced as f64 * C_DRAIN;
        if sort {
            stats.work_units += produced as f64 * lg(produced) * C_SORT;
        }
        colptr[j + 1] = rowidx.len();
    }
    let trivially_sorted = colptr.windows(2).all(|w| w[1] - w[0] <= 1);
    let c = CscMatrix::from_parts_unchecked(nrows, ncols, colptr, rowidx, vals, sort || trivially_sorted);
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::semiring::{PlusTimesF64, PlusTimesU64};
    use crate::triples::Triples;

    fn parts_u64() -> Vec<CscMatrix<u64>> {
        (0..4)
            .map(|s| er_random::<PlusTimesU64>(30, 30, 3, 100 + s).map(|_| 1u64))
            .collect()
    }

    /// Oracle: concatenate all triples and dedup-sum.
    fn oracle(parts: &[CscMatrix<u64>]) -> CscMatrix<u64> {
        let mut t = Triples::new(parts[0].nrows(), parts[0].ncols());
        for p in parts {
            for (r, c, v) in p.iter() {
                t.push(r, c as u32, v);
            }
        }
        t.to_csc_dedup::<PlusTimesU64>()
    }

    #[test]
    fn matches_triple_sum_oracle() {
        let parts = parts_u64();
        let (merged, _) = merge_hash_unsorted::<PlusTimesU64>(&parts).unwrap();
        assert!(merged.eq_modulo_order(&oracle(&parts)));
    }

    #[test]
    fn sorted_variant_is_sorted_and_equal() {
        let parts = parts_u64();
        let (merged, _) = merge_hash_sorted::<PlusTimesU64>(&parts).unwrap();
        assert!(merged.is_sorted());
        assert!(merged.check_sorted());
        assert!(merged.eq_modulo_order(&oracle(&parts)));
    }

    #[test]
    fn single_part_identity() {
        let p = er_random::<PlusTimesF64>(20, 20, 4, 9);
        let (merged, stats) = merge_hash_unsorted::<PlusTimesF64>(std::slice::from_ref(&p)).unwrap();
        assert!(merged.eq_modulo_order(&p));
        assert_eq!(stats.nnz_out, p.nnz() as u64);
    }

    #[test]
    fn empty_input_list_is_error() {
        let parts: Vec<CscMatrix<f64>> = vec![];
        assert!(merge_hash_unsorted::<PlusTimesF64>(&parts).is_err());
    }

    #[test]
    fn shape_mismatch_is_error() {
        let parts = vec![CscMatrix::<f64>::zero(2, 2), CscMatrix::<f64>::zero(3, 2)];
        assert!(merge_hash_unsorted::<PlusTimesF64>(&parts).is_err());
    }

    #[test]
    fn overlapping_entries_sum() {
        let mut t1 = Triples::new(2, 1);
        t1.push(0, 0, 1.5);
        let mut t2 = Triples::new(2, 1);
        t2.push(0, 0, 2.5);
        t2.push(1, 0, 1.0);
        let parts = vec![t1.to_csc(), t2.to_csc()];
        let (m, _) = merge_hash_sorted::<PlusTimesF64>(&parts).unwrap();
        assert_eq!(m.col(0), (&[0u32, 1][..], &[4.0, 1.0][..]));
    }

    #[test]
    fn accepts_unsorted_inputs() {
        let unsorted =
            CscMatrix::from_parts(3, 1, vec![0, 3], vec![2, 0, 1], vec![1.0, 2.0, 3.0]).unwrap();
        assert!(!unsorted.is_sorted());
        let parts = vec![unsorted.clone(), unsorted];
        let (m, _) = merge_hash_sorted::<PlusTimesF64>(&parts).unwrap();
        assert_eq!(m.col(0), (&[0u32, 1, 2][..], &[4.0, 6.0, 2.0][..]));
    }
}
