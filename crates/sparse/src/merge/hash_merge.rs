//! Sort-free hash merging — this paper's "unsorted-hash-merge" (Sec. IV-D).
//!
//! Forms column `j` of the merged output from column `j` of every input via
//! a reusable hash accumulator. Inputs may be unsorted (they are, coming
//! out of the unsorted-hash SpGEMM); output is unsorted unless the sorted
//! variant is requested (final Merge-Fiber only).

use crate::csc::CscMatrix;
use crate::semiring::Semiring;
use crate::spgemm::accum::HashAccum;
use crate::spgemm::workspace::SpGemmWorkspace;
use crate::spgemm::{lg, WorkStats, C_DRAIN, C_MERGE_HASH, C_SORT};
use crate::Result;

use super::common_shape;

/// Merge (⊕-sum) same-shaped matrices; unsorted output columns.
pub fn merge_hash_unsorted<S: Semiring>(parts: &[CscMatrix<S::T>]) -> Result<(CscMatrix<S::T>, WorkStats)> {
    merge_hash_impl::<S>(parts, false, &mut SpGemmWorkspace::new())
}

/// Merge (⊕-sum) same-shaped matrices; sorted output columns.
///
/// Used for the final Merge-Fiber, after which the application sees a
/// conventionally sorted matrix.
pub fn merge_hash_sorted<S: Semiring>(parts: &[CscMatrix<S::T>]) -> Result<(CscMatrix<S::T>, WorkStats)> {
    merge_hash_impl::<S>(parts, true, &mut SpGemmWorkspace::new())
}

/// [`merge_hash_unsorted`] against caller-owned reusable scratch.
pub fn merge_hash_unsorted_with_workspace<S: Semiring>(
    parts: &[CscMatrix<S::T>],
    ws: &mut SpGemmWorkspace<S::T>,
) -> Result<(CscMatrix<S::T>, WorkStats)> {
    merge_hash_impl::<S>(parts, false, ws)
}

/// [`merge_hash_sorted`] against caller-owned reusable scratch.
pub fn merge_hash_sorted_with_workspace<S: Semiring>(
    parts: &[CscMatrix<S::T>],
    ws: &mut SpGemmWorkspace<S::T>,
) -> Result<(CscMatrix<S::T>, WorkStats)> {
    merge_hash_impl::<S>(parts, true, ws)
}

fn merge_hash_impl<S: Semiring>(
    parts: &[CscMatrix<S::T>],
    sort: bool,
    ws: &mut SpGemmWorkspace<S::T>,
) -> Result<(CscMatrix<S::T>, WorkStats)> {
    let (nrows, ncols) = common_shape(parts)?;
    // Single input needing no sort: merging is the identity. The clone
    // bypasses the arenas, so no workspace traffic to meter. (A single
    // *unsorted* input falls through to the general path below: draining
    // the accumulator sorted through the arenas is allocation-free,
    // unlike an in-place per-column sort of the clone.)
    if parts.len() == 1 && (!sort || parts[0].is_sorted()) {
        let only = parts[0].clone();
        let stats = WorkStats {
            flops: 0,
            nnz_out: only.nnz() as u64,
            work_units: 0.0,
            ..WorkStats::default()
        };
        let expected = if sort { crate::Sortedness::Sorted } else { crate::Sortedness::Unsorted };
        crate::debug_validate!(only, expected, "hash-merge output (single part)");
        return Ok((only, stats));
    }
    let allocs_before = ws.total_allocs();
    let total_nnz: usize = parts.iter().map(|p| p.nnz()).sum();
    ws.prepare_output(ncols, total_nnz);
    let mut stats = WorkStats::default();
    let acc = ws.accum.get_or_insert_with(|| HashAccum::new(S::zero()));
    ws.colptr.push(0);

    for j in 0..ncols {
        let total_in: usize = parts.iter().map(|p| p.col_nnz(j)).sum();
        if total_in == 0 {
            ws.colptr.push(ws.rowidx.len());
            continue;
        }
        acc.reset(total_in);
        for p in parts {
            let (rows, vs) = p.col(j);
            for (&r, &v) in rows.iter().zip(vs.iter()) {
                acc.accumulate::<S>(r, v);
            }
        }
        let before = ws.rowidx.len();
        if sort {
            acc.drain_into_sorted(&mut ws.rowidx, &mut ws.vals);
        } else {
            acc.drain_into(&mut ws.rowidx, &mut ws.vals);
        }
        let produced = ws.rowidx.len() - before;
        stats.nnz_out += produced as u64;
        stats.work_units += total_in as f64 * C_MERGE_HASH + produced as f64 * C_DRAIN;
        if sort {
            stats.work_units += produced as f64 * lg(produced) * C_SORT;
        }
        ws.colptr.push(ws.rowidx.len());
    }
    let trivially_sorted = ws.colptr.windows(2).all(|w| w[1] - w[0] <= 1);
    let (c, copied) = ws.take_output(nrows, ncols, sort || trivially_sorted);
    stats.allocs = ws.total_allocs() - allocs_before;
    stats.peak_scratch_bytes = ws.peak_scratch_bytes();
    stats.memcpy_bytes = copied;
    let expected = if sort { crate::Sortedness::Sorted } else { crate::Sortedness::Unsorted };
    crate::debug_validate!(c, expected, "hash-merge output ({} parts)", parts.len());
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::semiring::{PlusTimesF64, PlusTimesU64};
    use crate::triples::Triples;

    fn parts_u64() -> Vec<CscMatrix<u64>> {
        (0..4)
            .map(|s| er_random::<PlusTimesU64>(30, 30, 3, 100 + s).map(|_| 1u64))
            .collect()
    }

    /// Oracle: concatenate all triples and dedup-sum.
    fn oracle(parts: &[CscMatrix<u64>]) -> CscMatrix<u64> {
        let mut t = Triples::new(parts[0].nrows(), parts[0].ncols());
        for p in parts {
            for (r, c, v) in p.iter() {
                t.push(r, c as u32, v);
            }
        }
        t.to_csc_dedup::<PlusTimesU64>()
    }

    #[test]
    fn matches_triple_sum_oracle() {
        let parts = parts_u64();
        let (merged, _) = merge_hash_unsorted::<PlusTimesU64>(&parts).unwrap();
        assert!(merged.eq_modulo_order(&oracle(&parts)));
    }

    #[test]
    fn sorted_variant_is_sorted_and_equal() {
        let parts = parts_u64();
        let (merged, _) = merge_hash_sorted::<PlusTimesU64>(&parts).unwrap();
        assert!(merged.is_sorted());
        assert!(merged.check_sorted());
        assert!(merged.eq_modulo_order(&oracle(&parts)));
    }

    #[test]
    fn single_part_identity() {
        let p = er_random::<PlusTimesF64>(20, 20, 4, 9);
        let (merged, stats) = merge_hash_unsorted::<PlusTimesF64>(std::slice::from_ref(&p)).unwrap();
        assert!(merged.eq_modulo_order(&p));
        assert_eq!(stats.nnz_out, p.nnz() as u64);
    }

    #[test]
    fn empty_input_list_is_error() {
        let parts: Vec<CscMatrix<f64>> = vec![];
        assert!(merge_hash_unsorted::<PlusTimesF64>(&parts).is_err());
    }

    #[test]
    fn shape_mismatch_is_error() {
        let parts = vec![CscMatrix::<f64>::zero(2, 2), CscMatrix::<f64>::zero(3, 2)];
        assert!(merge_hash_unsorted::<PlusTimesF64>(&parts).is_err());
    }

    #[test]
    fn overlapping_entries_sum() {
        let mut t1 = Triples::new(2, 1);
        t1.push(0, 0, 1.5);
        let mut t2 = Triples::new(2, 1);
        t2.push(0, 0, 2.5);
        t2.push(1, 0, 1.0);
        let parts = vec![t1.to_csc(), t2.to_csc()];
        let (m, _) = merge_hash_sorted::<PlusTimesF64>(&parts).unwrap();
        assert_eq!(m.col(0), (&[0u32, 1][..], &[4.0, 1.0][..]));
    }

    #[test]
    fn accepts_unsorted_inputs() {
        let unsorted =
            CscMatrix::from_parts(3, 1, vec![0, 3], vec![2, 0, 1], vec![1.0, 2.0, 3.0]).unwrap();
        assert!(!unsorted.is_sorted());
        let parts = vec![unsorted.clone(), unsorted];
        let (m, _) = merge_hash_sorted::<PlusTimesF64>(&parts).unwrap();
        assert_eq!(m.col(0), (&[0u32, 1, 2][..], &[4.0, 6.0, 2.0][..]));
    }
}
