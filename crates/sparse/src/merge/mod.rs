//! K-way merge kernels for Merge-Layer and Merge-Fiber.
//!
//! Merging means adding entries with equal `(row, col)` across a collection
//! of same-shaped matrices (the per-stage partial products in Merge-Layer,
//! the per-layer pieces in Merge-Fiber).
//!
//! * [`heap_merge::merge_heap`] — the previous-generation kernel \[13, 30\]:
//!   k-way merge of sorted columns via a binary heap; requires sorted
//!   inputs, produces sorted output.
//! * [`hash_merge::merge_hash_unsorted`] — **this paper's** sort-free merge:
//!   hash accumulation per column; unsorted inputs and output. An order of
//!   magnitude faster in the paper's measurements (Table VII).
//! * [`hash_merge::merge_hash_sorted`] — same, plus a final per-column sort;
//!   used for the very last Merge-Fiber so the final output is sorted
//!   (Sec. IV-D keeps only this output sorted).

pub mod hash_merge;
pub mod heap_merge;

pub use hash_merge::{
    merge_hash_sorted, merge_hash_sorted_with_workspace, merge_hash_unsorted,
    merge_hash_unsorted_with_workspace,
};
pub use heap_merge::{merge_heap, merge_heap_with_workspace};

use crate::csc::CscMatrix;
use crate::{Result, SparseError};

/// Validate that all inputs share one shape; returns that shape.
pub(crate) fn common_shape<T: Copy>(parts: &[CscMatrix<T>]) -> Result<(usize, usize)> {
    let first = parts
        .first()
        .ok_or_else(|| SparseError::InvalidStructure("merge of zero matrices".into()))?;
    let shape = (first.nrows(), first.ncols());
    for p in parts.iter().skip(1) {
        if (p.nrows(), p.ncols()) != shape {
            return Err(SparseError::DimensionMismatch {
                expected: shape,
                found: (p.nrows(), p.ncols()),
            });
        }
    }
    Ok(shape)
}
