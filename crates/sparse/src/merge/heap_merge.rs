//! Heap-based merging — the previous-generation Merge-Layer / Merge-Fiber
//! kernel of 2D \[30\] and 3D \[13\] sparse SUMMA.
//!
//! Requires all inputs sorted; k-way merges each column with a binary heap.
//! The paper replaces this with hash merging and reports an order of
//! magnitude improvement (Table VII); we keep it as the measured baseline.

use crate::csc::CscMatrix;
use crate::semiring::Semiring;
use crate::spgemm::workspace::SpGemmWorkspace;
use crate::spgemm::{lg, WorkStats, C_MERGE_HEAP};
use crate::{Result, SparseError};
use std::cmp::Reverse;

use super::common_shape;

/// Merge (⊕-sum) same-shaped *sorted* matrices; sorted output.
/// Convenience wrapper over [`merge_heap_with_workspace`] with a
/// throwaway workspace.
pub fn merge_heap<S: Semiring>(parts: &[CscMatrix<S::T>]) -> Result<(CscMatrix<S::T>, WorkStats)> {
    merge_heap_with_workspace::<S>(parts, &mut SpGemmWorkspace::new())
}

/// [`merge_heap`] against caller-owned reusable scratch (heap, cursors,
/// and output arenas). Bit-identical output.
pub fn merge_heap_with_workspace<S: Semiring>(
    parts: &[CscMatrix<S::T>],
    ws: &mut SpGemmWorkspace<S::T>,
) -> Result<(CscMatrix<S::T>, WorkStats)> {
    let (nrows, ncols) = common_shape(parts)?;
    if parts.iter().any(|p| !p.is_sorted()) {
        return Err(SparseError::InvalidStructure(
            "heap merge requires sorted inputs".into(),
        ));
    }
    let k = parts.len();
    let allocs_before = ws.total_allocs();
    let total_nnz: usize = parts.iter().map(|p| p.nnz()).sum();
    ws.prepare_output(ncols, total_nnz);
    ws.ensure_streams(k);
    ws.cursors.clear();
    ws.cursors.resize(k, 0);
    let mut stats = WorkStats::default();
    ws.colptr.push(0);

    for j in 0..ncols {
        ws.heap.clear();
        let mut col_in = 0usize;
        for (s, p) in parts.iter().enumerate() {
            ws.cursors[s] = 0;
            let (rows, _) = p.col(j);
            col_in += rows.len();
            if !rows.is_empty() {
                ws.heap.push(Reverse((rows[0], s as u32)));
            }
        }
        let col_start = ws.rowidx.len();
        while let Some(Reverse((row, s))) = ws.heap.pop() {
            let si = s as usize;
            let (rows, vs) = parts[si].col(j);
            let pos = ws.cursors[si];
            let v = vs[pos];
            match ws.rowidx.last() {
                Some(&last) if last == row && ws.rowidx.len() > col_start => {
                    let dst = ws.vals.last_mut().unwrap();
                    *dst = S::add(*dst, v);
                }
                _ => {
                    ws.rowidx.push(row);
                    ws.vals.push(v);
                }
            }
            ws.cursors[si] = pos + 1;
            if pos + 1 < rows.len() {
                ws.heap.push(Reverse((rows[pos + 1], s)));
            }
        }
        let produced = ws.rowidx.len() - col_start;
        stats.nnz_out += produced as u64;
        stats.work_units += col_in as f64 * lg(k) * C_MERGE_HEAP;
        ws.colptr.push(ws.rowidx.len());
    }
    let (c, copied) = ws.take_output(nrows, ncols, true);
    stats.allocs = ws.total_allocs() - allocs_before;
    stats.peak_scratch_bytes = ws.peak_scratch_bytes();
    stats.memcpy_bytes = copied;
    crate::debug_validate!(c, crate::Sortedness::Sorted, "heap-merge output ({} parts)", parts.len());
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::merge::hash_merge::merge_hash_sorted;
    use crate::semiring::{PlusTimesF64, PlusTimesU64};

    #[test]
    fn matches_hash_merge() {
        let parts: Vec<_> = (0..5)
            .map(|s| er_random::<PlusTimesU64>(40, 25, 3, 200 + s).map(|_| 1u64))
            .collect();
        let (a, _) = merge_heap::<PlusTimesU64>(&parts).unwrap();
        let (b, _) = merge_hash_sorted::<PlusTimesU64>(&parts).unwrap();
        assert!(a.eq_modulo_order(&b));
        assert!(a.is_sorted());
    }

    #[test]
    fn rejects_unsorted_input() {
        let unsorted =
            CscMatrix::from_parts(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap();
        let parts = vec![unsorted];
        assert!(merge_heap::<PlusTimesF64>(&parts).is_err());
    }

    #[test]
    fn heap_merge_costs_more_work_than_hash_merge() {
        let parts: Vec<_> = (0..16)
            .map(|s| er_random::<PlusTimesF64>(100, 50, 4, 300 + s))
            .collect();
        let (_, s_heap) = merge_heap::<PlusTimesF64>(&parts).unwrap();
        let (_, s_hash) = merge_hash_sorted::<PlusTimesF64>(&parts).unwrap();
        assert!(
            s_heap.work_units > s_hash.work_units,
            "heap {} vs hash {}",
            s_heap.work_units,
            s_hash.work_units
        );
    }

    #[test]
    fn merging_disjoint_patterns_concatenates() {
        // part1 has rows {0}, part2 has rows {1}: no accumulation needed.
        let p1 = CscMatrix::from_parts(2, 2, vec![0, 1, 2], vec![0, 0], vec![1.0, 2.0]).unwrap();
        let p2 = CscMatrix::from_parts(2, 2, vec![0, 1, 2], vec![1, 1], vec![3.0, 4.0]).unwrap();
        let (m, stats) = merge_heap::<PlusTimesF64>(&[p1, p2]).unwrap();
        assert_eq!(m.nnz(), 4);
        assert_eq!(stats.nnz_out, 4);
        assert_eq!(m.col(0), (&[0u32, 1][..], &[1.0, 3.0][..]));
    }
}
