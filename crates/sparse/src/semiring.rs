//! Semiring abstraction.
//!
//! The paper (Sec. II-A) notes that its algorithms apply over an arbitrary
//! semiring `S = (T, ⊕, ⊗, 0)` because no Strassen-like cancellation is
//! used. Every SpGEMM and merge kernel in this crate is generic over
//! [`Semiring`], so the distributed algorithms in `spgemm-core` inherit the
//! same generality. The applications exercise several instances: numeric
//! `(+, ×)` for Markov clustering, `(+, ×)` over integers for triangle
//! counting and shared-k-mer counting, `(min, +)` for path-style problems,
//! and `(∨, ∧)` for reachability.

use std::fmt::Debug;

/// A semiring over element type [`Semiring::T`].
///
/// Laws expected (and property-tested in this module's tests):
/// * `add` is associative and commutative with identity [`Semiring::zero`].
/// * `mul` is associative.
/// * `mul` distributes over `add`.
/// * `mul(zero, x) == zero` (annihilation) — required so that structural
///   zeros never produce output nonzeros.
pub trait Semiring: Copy + Send + Sync + 'static {
    /// Element type.
    type T: Copy + Send + Sync + PartialEq + Debug + 'static;

    /// Additive identity.
    fn zero() -> Self::T;

    /// Semiring addition `⊕`.
    fn add(a: Self::T, b: Self::T) -> Self::T;

    /// Semiring multiplication `⊗`.
    fn mul(a: Self::T, b: Self::T) -> Self::T;

    /// True if `t` equals the additive identity. Used to optionally drop
    /// explicit zeros after merging.
    fn is_zero(t: Self::T) -> bool {
        t == Self::zero()
    }
}

macro_rules! plus_times {
    ($name:ident, $t:ty, $zero:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct $name;

        impl Semiring for $name {
            type T = $t;
            #[inline]
            fn zero() -> $t {
                $zero
            }
            #[inline]
            fn add(a: $t, b: $t) -> $t {
                a + b
            }
            #[inline]
            fn mul(a: $t, b: $t) -> $t {
                a * b
            }
        }
    };
}

plus_times!(PlusTimesF64, f64, 0.0, "Standard arithmetic `(+, ×)` over `f64`.");
plus_times!(PlusTimesU64, u64, 0, "Arithmetic `(+, ×)` over `u64` — used for exact counting (triangles, shared k-mers).");
plus_times!(PlusTimesI64, i64, 0, "Arithmetic `(+, ×)` over `i64`.");

/// Tropical `(min, +)` semiring over `f64`; zero is `+∞`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinPlusF64;

impl Semiring for MinPlusF64 {
    type T = f64;
    #[inline]
    fn zero() -> f64 {
        f64::INFINITY
    }
    #[inline]
    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    #[inline]
    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// `(max, min)` semiring over `f64`; zero is `-∞`. Used for bottleneck-path
/// style computations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxMinF64;

impl Semiring for MaxMinF64 {
    type T = f64;
    #[inline]
    fn zero() -> f64 {
        f64::NEG_INFINITY
    }
    #[inline]
    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    #[inline]
    fn mul(a: f64, b: f64) -> f64 {
        a.min(b)
    }
}

/// Boolean `(∨, ∧)` semiring — structural reachability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoolOrAnd;

impl Semiring for BoolOrAnd {
    type T = bool;
    #[inline]
    fn zero() -> bool {
        false
    }
    #[inline]
    fn add(a: bool, b: bool) -> bool {
        a || b
    }
    #[inline]
    fn mul(a: bool, b: bool) -> bool {
        a && b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_laws<S: Semiring>(samples: &[S::T]) {
        let z = S::zero();
        for &a in samples {
            assert_eq!(S::add(a, z), a, "additive identity");
            assert_eq!(S::add(z, a), a, "additive identity (left)");
            assert_eq!(S::mul(z, a), z, "annihilation left");
            assert_eq!(S::mul(a, z), z, "annihilation right");
            for &b in samples {
                assert_eq!(S::add(a, b), S::add(b, a), "commutativity");
                for &c in samples {
                    assert_eq!(
                        S::add(S::add(a, b), c),
                        S::add(a, S::add(b, c)),
                        "add associativity"
                    );
                    assert_eq!(
                        S::mul(S::mul(a, b), c),
                        S::mul(a, S::mul(b, c)),
                        "mul associativity"
                    );
                    assert_eq!(
                        S::mul(a, S::add(b, c)),
                        S::add(S::mul(a, b), S::mul(a, c)),
                        "left distributivity"
                    );
                }
            }
        }
    }

    #[test]
    fn plus_times_u64_laws() {
        check_laws::<PlusTimesU64>(&[0, 1, 2, 3, 7]);
    }

    #[test]
    fn plus_times_i64_laws() {
        check_laws::<PlusTimesI64>(&[-3, 0, 1, 5]);
    }

    #[test]
    fn min_plus_laws() {
        check_laws::<MinPlusF64>(&[0.0, 1.0, 2.5, 10.0, f64::INFINITY]);
    }

    #[test]
    fn max_min_laws() {
        check_laws::<MaxMinF64>(&[0.0, 1.0, 2.5, f64::NEG_INFINITY]);
    }

    #[test]
    fn bool_or_and_laws() {
        check_laws::<BoolOrAnd>(&[false, true]);
    }

    #[test]
    fn plus_times_f64_identities() {
        // f64 (+,×) is only approximately associative; check identities only.
        assert_eq!(PlusTimesF64::add(1.5, PlusTimesF64::zero()), 1.5);
        assert_eq!(PlusTimesF64::mul(PlusTimesF64::zero(), 7.0), 0.0);
        assert!(PlusTimesF64::is_zero(0.0));
        assert!(!PlusTimesF64::is_zero(1.0));
    }

    #[test]
    fn min_plus_zero_is_absorbing() {
        assert_eq!(MinPlusF64::mul(MinPlusF64::zero(), 3.0), f64::INFINITY);
        assert!(MinPlusF64::is_zero(f64::INFINITY));
    }
}
