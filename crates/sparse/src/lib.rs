//! Local sparse-matrix substrate for the IPDPS 2021 SpGEMM reproduction.
//!
//! This crate provides everything a *single process* of the distributed
//! algorithm needs:
//!
//! * [`CscMatrix`] — compressed sparse column storage with tracked
//!   column-sortedness (the paper's sort-free kernels deliberately produce
//!   unsorted columns; see Sec. IV-D of the paper).
//! * [`DcscMatrix`] — doubly compressed columns for the hypersparse local
//!   blocks a 3D distribution produces at scale (CombBLAS practice).
//! * [`Semiring`] — SpGEMM over arbitrary semirings (Sec. II-A).
//! * [`spgemm`] — local multiplication kernels: the *previous-generation*
//!   heap kernel \[13\] and hybrid sorted-hash kernel \[25\], and this
//!   paper's **unsorted-hash** kernel, plus symbolic (nnz-count) variants.
//! * [`merge`] — k-way merge kernels used by Merge-Layer / Merge-Fiber:
//!   the previous heap merge and this paper's **unsorted-hash merge**.
//! * [`par`] — multithreaded wrappers over the multiply/merge/symbolic
//!   kernels: flop-balanced output-column ranges, one thread and one
//!   workspace arena per range, bit-identical output to serial.
//! * [`ops`] — transpose, column split/concat (block and block-cyclic),
//!   pruning, elementwise operations.
//! * [`gen`] — deterministic generators standing in for the paper's test
//!   matrices (Erdős–Rényi, R-MAT, clustered protein-similarity,
//!   reads×k-mers incidence).
//! * [`io`] — Matrix Market I/O.
//!
//! All kernels report [`WorkStats`] (flops, output nnz, abstract work units)
//! that the `spgemm-simgrid` cost model converts into modeled time.
//!
//! Structural invariants of every format are enforced in debug builds at
//! kernel boundaries through [`validate`] (see the [`debug_validate!`]
//! macro and the [`validate::Sortedness`] contract tag).

#![forbid(unsafe_code)]

pub mod csc;
pub mod dcsc;
pub mod dense;
pub mod gen;
pub mod io;
pub mod merge;
pub mod ops;
pub mod par;
pub mod semiring;
pub mod spgemm;
pub mod subset;
pub mod triples;
pub mod validate;

pub use csc::CscMatrix;
pub use dcsc::DcscMatrix;
pub use dense::{spmm_acc, DenseBlock, Operand};
pub use semiring::{BoolOrAnd, MaxMinF64, MinPlusF64, PlusTimesF64, PlusTimesI64, PlusTimesU64, Semiring};
pub use spgemm::{SpGemmWorkspace, WorkStats};
pub use triples::Triples;
pub use validate::{Defect, Sortedness, Validate, ValidationError};

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// Matrix dimensions incompatible for the requested operation.
    DimensionMismatch {
        expected: (usize, usize),
        found: (usize, usize),
    },
    /// Structural invariant violated (e.g. colptr not monotone).
    InvalidStructure(String),
    /// I/O or parse failure in Matrix Market handling.
    Io(String),
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::DimensionMismatch { expected, found } => write!(
                f,
                "dimension mismatch: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, SparseError>;
