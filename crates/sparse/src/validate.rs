//! Structural invariant validators for the sparse formats.
//!
//! The paper's sort-free kernels (Sec. IV-D) make "sorted columns" a
//! *per-value contract* rather than a global invariant: Local-Multiply and
//! Merge-Layer outputs under the new pipeline are deliberately unsorted,
//! while everything under the previous generation — and the final
//! Merge-Fiber output under both — must stay strictly sorted. A validator
//! therefore needs to be told which contract applies; [`Sortedness`] is
//! that tag.
//!
//! [`Validate`] is implemented for [`CscMatrix`], [`DcscMatrix`] and
//! [`Triples`]. Each check reports a precise [`Defect`] naming the column,
//! position and offending index instead of a bare assert, so a corrupted
//! matrix at a kernel boundary produces an actionable diagnostic.
//!
//! The [`debug_validate!`](crate::debug_validate) macro wires these checks into kernel boundaries
//! and SUMMA stage seams: it is a no-op in release builds and panics with
//! the rich diagnostic (prefixed by a caller-supplied matrix name) in debug
//! builds.

use crate::csc::CscMatrix;
use crate::dcsc::DcscMatrix;
use crate::triples::Triples;

/// Which column-order contract a matrix is expected to satisfy.
///
/// `Unsorted` is *not* "anything goes": bounds, colptr monotonicity,
/// duplicate-freedom and flag integrity still apply — only the ascending
/// row order within columns is waived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sortedness {
    /// Every column's row indices must be strictly ascending and the
    /// matrix's `sorted` flag (where the format tracks one) must say so.
    Sorted,
    /// Columns may list rows in any order (the Sec. IV-D sort-free kernel
    /// contract). Duplicate rows within a column are still defects.
    Unsorted,
}

/// A precise structural defect, with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Defect {
    /// `colptr` has the wrong number of entries.
    ColptrLength { len: usize, expected: usize },
    /// `colptr[0]` is not zero.
    ColptrStart { first: usize },
    /// `colptr` decreases between two adjacent columns.
    ColptrNotMonotone { col: usize, prev: usize, next: usize },
    /// Final `colptr` entry and index/value array lengths disagree.
    NnzInconsistent {
        colptr_last: usize,
        rowidx_len: usize,
        vals_len: usize,
    },
    /// A row index at `pos` (global entry position) is `>= nrows`.
    RowOutOfBounds {
        col: usize,
        pos: usize,
        row: u32,
        nrows: usize,
    },
    /// The same row appears twice within one column.
    DuplicateRow { col: usize, row: u32 },
    /// Under [`Sortedness::Sorted`], adjacent rows in a column are not
    /// strictly ascending.
    UnsortedColumn {
        col: usize,
        pos: usize,
        prev: u32,
        next: u32,
    },
    /// The matrix's `sorted` flag disagrees with its data or with the
    /// expected contract (`claimed` is what the flag says).
    SortedFlagWrong { claimed: bool },
    /// DCSC: a non-empty-column id is out of bounds.
    JcOutOfBounds { k: usize, col: u32, ncols: usize },
    /// DCSC: non-empty-column ids are not strictly ascending.
    JcNotAscending { k: usize, prev: u32, next: u32 },
    /// DCSC: a column listed as non-empty has no entries.
    EmptyColumn { k: usize, col: u32 },
    /// Triples: a column index is `>= ncols`.
    ColOutOfBounds { pos: usize, col: u32, ncols: usize },
}

impl std::fmt::Display for Defect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Defect::ColptrLength { len, expected } => {
                write!(f, "colptr has {len} entries, expected {expected}")
            }
            Defect::ColptrStart { first } => write!(f, "colptr[0] = {first}, expected 0"),
            Defect::ColptrNotMonotone { col, prev, next } => write!(
                f,
                "colptr not monotone at column {col}: colptr[{col}] = {prev} > colptr[{}] = {next}",
                col + 1
            ),
            Defect::NnzInconsistent {
                colptr_last,
                rowidx_len,
                vals_len,
            } => write!(
                f,
                "nnz inconsistent: colptr ends at {colptr_last}, rowidx has {rowidx_len} entries, \
                 vals has {vals_len}"
            ),
            Defect::RowOutOfBounds {
                col,
                pos,
                row,
                nrows,
            } => write!(
                f,
                "row index out of bounds in column {col}: entry {pos} has row {row} \
                 (matrix has {nrows} rows)"
            ),
            Defect::DuplicateRow { col, row } => {
                write!(f, "duplicate row {row} in column {col}")
            }
            Defect::UnsortedColumn {
                col,
                pos,
                prev,
                next,
            } => write!(
                f,
                "column {col} violates the sorted contract: entry {pos} has row {next} \
                 after row {prev}"
            ),
            Defect::SortedFlagWrong { claimed } => {
                if claimed {
                    write!(f, "matrix claims sorted columns but its data is unsorted")
                } else {
                    write!(f, "sorted contract expected but the matrix is flagged unsorted")
                }
            }
            Defect::JcOutOfBounds { k, col, ncols } => write!(
                f,
                "jc[{k}] = {col} out of bounds (matrix has {ncols} columns)"
            ),
            Defect::JcNotAscending { k, prev, next } => write!(
                f,
                "jc not strictly ascending at {k}: jc[{}] = {prev}, jc[{k}] = {next}",
                k - 1
            ),
            Defect::EmptyColumn { k, col } => write!(
                f,
                "jc[{k}] lists column {col} as non-empty but it has no entries"
            ),
            Defect::ColOutOfBounds { pos, col, ncols } => write!(
                f,
                "column index out of bounds: triple {pos} has column {col} \
                 (matrix has {ncols} columns)"
            ),
        }
    }
}

/// A failed validation: the defect plus the matrix's shape context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Rows of the offending matrix.
    pub nrows: usize,
    /// Columns of the offending matrix.
    pub ncols: usize,
    /// Stored entries of the offending matrix.
    pub nnz: usize,
    /// What exactly is wrong.
    pub defect: Defect,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({}x{}, nnz={})",
            self.defect, self.nrows, self.ncols, self.nnz
        )
    }
}

impl std::error::Error for ValidationError {}

/// Structural self-check against an expected [`Sortedness`] contract.
pub trait Validate {
    /// Verify every structural invariant, reporting the first defect found
    /// with its location. `expected` selects the column-order contract;
    /// formats without column order (triples) ignore it.
    fn validate(&self, expected: Sortedness) -> Result<(), ValidationError>;
}

/// Validate `m` in debug builds, panicking with a rich diagnostic naming
/// the matrix. Compiles to nothing in release builds.
///
/// ```ignore
/// debug_validate!(c_partial, Sortedness::Unsorted, "Local-Multiply output (stage {s})");
/// ```
#[macro_export]
macro_rules! debug_validate {
    ($m:expr, $expected:expr, $($name:tt)+) => {
        if cfg!(debug_assertions) {
            if let Err(e) = $crate::validate::Validate::validate(&$m, $expected) {
                panic!("invariant violation in {}: {}", format!($($name)+), e);
            }
        }
    };
}

/// Shared column scan: bounds, duplicates, and the order contract.
///
/// `stamps` is a per-row scratch reused across columns (stamped with
/// `col + 1`), giving O(nrows + nnz) duplicate detection without sorting.
/// The order check also fires under [`Sortedness::Unsorted`] when
/// `flag_sorted` is set — a matrix *claiming* sorted columns must honor
/// that claim regardless of the caller's contract.
fn check_column(
    col: usize,
    base: usize,
    rows: &[u32],
    nrows: usize,
    expected: Sortedness,
    flag_sorted: bool,
    stamps: &mut [u32],
) -> Result<(), Defect> {
    let stamp = col as u32 + 1;
    let mut prev: Option<u32> = None;
    for (off, &row) in rows.iter().enumerate() {
        if (row as usize) >= nrows {
            return Err(Defect::RowOutOfBounds {
                col,
                pos: base + off,
                row,
                nrows,
            });
        }
        if stamps[row as usize] == stamp {
            return Err(Defect::DuplicateRow { col, row });
        }
        stamps[row as usize] = stamp;
        if let Some(p) = prev {
            if row <= p && (expected == Sortedness::Sorted || flag_sorted) {
                return Err(Defect::UnsortedColumn {
                    col,
                    pos: base + off,
                    prev: p,
                    next: row,
                });
            }
        }
        prev = Some(row);
    }
    Ok(())
}

impl<T: Copy> Validate for CscMatrix<T> {
    fn validate(&self, expected: Sortedness) -> Result<(), ValidationError> {
        let (nrows, ncols) = (self.nrows(), self.ncols());
        let cp = self.colptr();
        let rowidx = self.rowidx();
        let nnz = rowidx.len();
        let err = |defect| ValidationError {
            nrows,
            ncols,
            nnz,
            defect,
        };
        if cp.len() != ncols + 1 {
            return Err(err(Defect::ColptrLength {
                len: cp.len(),
                expected: ncols + 1,
            }));
        }
        if cp[0] != 0 {
            return Err(err(Defect::ColptrStart { first: cp[0] }));
        }
        for j in 0..ncols {
            if cp[j] > cp[j + 1] {
                return Err(err(Defect::ColptrNotMonotone {
                    col: j,
                    prev: cp[j],
                    next: cp[j + 1],
                }));
            }
        }
        if cp[ncols] != nnz || self.vals().len() != nnz {
            return Err(err(Defect::NnzInconsistent {
                colptr_last: cp[ncols],
                rowidx_len: nnz,
                vals_len: self.vals().len(),
            }));
        }
        if expected == Sortedness::Sorted && !self.is_sorted() {
            return Err(err(Defect::SortedFlagWrong { claimed: false }));
        }
        let mut stamps = vec![0u32; nrows];
        for j in 0..ncols {
            check_column(
                j,
                cp[j],
                &rowidx[cp[j]..cp[j + 1]],
                nrows,
                expected,
                self.is_sorted(),
                &mut stamps,
            )
            .map_err(err)?;
        }
        Ok(())
    }
}

impl<T: Copy> Validate for DcscMatrix<T> {
    fn validate(&self, expected: Sortedness) -> Result<(), ValidationError> {
        let (nrows, ncols) = (self.nrows(), self.ncols());
        let jc = self.jc();
        let cp = self.colptr();
        let rowidx = self.rowidx();
        let nnz = rowidx.len();
        let err = |defect| ValidationError {
            nrows,
            ncols,
            nnz,
            defect,
        };
        if cp.len() != jc.len() + 1 {
            return Err(err(Defect::ColptrLength {
                len: cp.len(),
                expected: jc.len() + 1,
            }));
        }
        if cp[0] != 0 {
            return Err(err(Defect::ColptrStart { first: cp[0] }));
        }
        for (k, &j) in jc.iter().enumerate() {
            if (j as usize) >= ncols {
                return Err(err(Defect::JcOutOfBounds { k, col: j, ncols }));
            }
            if k > 0 && jc[k - 1] >= j {
                return Err(err(Defect::JcNotAscending {
                    k,
                    prev: jc[k - 1],
                    next: j,
                }));
            }
        }
        for k in 0..jc.len() {
            if cp[k] > cp[k + 1] {
                return Err(err(Defect::ColptrNotMonotone {
                    col: jc[k] as usize,
                    prev: cp[k],
                    next: cp[k + 1],
                }));
            }
            if cp[k] == cp[k + 1] {
                return Err(err(Defect::EmptyColumn { k, col: jc[k] }));
            }
        }
        if cp[jc.len()] != nnz || self.vals().len() != nnz {
            return Err(err(Defect::NnzInconsistent {
                colptr_last: cp[jc.len()],
                rowidx_len: nnz,
                vals_len: self.vals().len(),
            }));
        }
        let mut stamps = vec![0u32; nrows];
        for k in 0..jc.len() {
            check_column(
                jc[k] as usize,
                cp[k],
                &rowidx[cp[k]..cp[k + 1]],
                nrows,
                expected,
                false,
                &mut stamps,
            )
            .map_err(err)?;
        }
        Ok(())
    }
}

impl<T: Copy> Validate for Triples<T> {
    /// Triples carry no column order, so `expected` is ignored; bounds are
    /// the whole contract.
    fn validate(&self, _expected: Sortedness) -> Result<(), ValidationError> {
        let (nrows, ncols) = (self.nrows(), self.ncols());
        let err = |defect| ValidationError {
            nrows,
            ncols,
            nnz: self.len(),
            defect,
        };
        for (pos, (row, col, _)) in self.iter().enumerate() {
            if (row as usize) >= nrows {
                return Err(err(Defect::RowOutOfBounds {
                    col: col as usize,
                    pos,
                    row,
                    nrows,
                }));
            }
            if (col as usize) >= ncols {
                return Err(err(Defect::ColOutOfBounds { pos, col, ncols }));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimesU64;
    use crate::spgemm::spgemm_hash_unsorted;

    fn small_sorted() -> CscMatrix<u64> {
        // 3x3: col0 = {0,2}, col1 = {1}, col2 = {0,1,2}
        CscMatrix::from_parts(3, 3, vec![0, 2, 3, 6], vec![0, 2, 1, 0, 1, 2], vec![1; 6])
            .unwrap()
    }

    #[test]
    fn valid_matrix_passes_both_contracts() {
        let m = small_sorted();
        m.validate(Sortedness::Sorted).unwrap();
        m.validate(Sortedness::Unsorted).unwrap();
    }

    #[test]
    fn unsorted_kernel_output_passes_unsorted_contract_only() {
        let m = small_sorted();
        let (c, _) = spgemm_hash_unsorted::<PlusTimesU64>(&m, &m).unwrap();
        c.validate(Sortedness::Unsorted).unwrap();
        if !c.is_sorted() {
            let e = c.validate(Sortedness::Sorted).unwrap_err();
            assert_eq!(e.defect, Defect::SortedFlagWrong { claimed: false });
        }
    }

    #[test]
    fn colptr_swap_reports_non_monotone() {
        let m = CscMatrix::from_parts_raw(
            3,
            3,
            vec![0, 3, 2, 6],
            vec![0, 2, 1, 0, 1, 2],
            vec![1u64; 6],
            true,
        );
        let e = m.validate(Sortedness::Unsorted).unwrap_err();
        assert_eq!(
            e.defect,
            Defect::ColptrNotMonotone {
                col: 1,
                prev: 3,
                next: 2
            }
        );
        assert!(e.to_string().contains("column 1"));
    }

    #[test]
    fn out_of_bounds_row_is_located() {
        let m = CscMatrix::from_parts_raw(
            3,
            3,
            vec![0, 2, 3, 6],
            vec![0, 2, 1, 0, 7, 2],
            vec![1u64; 6],
            false,
        );
        let e = m.validate(Sortedness::Unsorted).unwrap_err();
        assert_eq!(
            e.defect,
            Defect::RowOutOfBounds {
                col: 2,
                pos: 4,
                row: 7,
                nrows: 3
            }
        );
    }

    #[test]
    fn duplicate_in_sorted_mode_is_a_duplicate_not_an_order_error() {
        let m = CscMatrix::from_parts_raw(
            3,
            3,
            vec![0, 2, 3, 6],
            vec![0, 2, 1, 0, 0, 2],
            vec![1u64; 6],
            true,
        );
        let e = m.validate(Sortedness::Sorted).unwrap_err();
        assert_eq!(e.defect, Defect::DuplicateRow { col: 2, row: 0 });
    }

    #[test]
    fn lying_sorted_flag_is_flagged_even_under_unsorted_contract() {
        let m = CscMatrix::from_parts_raw(
            3,
            3,
            vec![0, 2, 3, 6],
            vec![2, 0, 1, 0, 1, 2],
            vec![1u64; 6],
            true,
        );
        let e = m.validate(Sortedness::Unsorted).unwrap_err();
        assert!(matches!(e.defect, Defect::UnsortedColumn { col: 0, .. }));
    }

    #[test]
    fn dcsc_roundtrip_validates() {
        let d = DcscMatrix::from_csc(&small_sorted());
        d.validate(Sortedness::Sorted).unwrap();
    }

    #[test]
    fn triples_bounds_are_checked() {
        let mut t = Triples::with_capacity(3, 3, 2);
        t.push(1, 1, 5u64);
        t.validate(Sortedness::Unsorted).unwrap();
        let bad = Triples::from_parts_unchecked(3, 3, vec![1, 9], vec![1, 0], vec![5u64, 6]);
        let e = bad.validate(Sortedness::Unsorted).unwrap_err();
        assert_eq!(
            e.defect,
            Defect::RowOutOfBounds {
                col: 0,
                pos: 1,
                row: 9,
                nrows: 3
            }
        );
    }

    #[test]
    fn debug_validate_macro_names_the_matrix() {
        let m = small_sorted();
        debug_validate!(m, Sortedness::Sorted, "unit-test matrix {}", 7);
        if cfg!(debug_assertions) {
            let bad = CscMatrix::from_parts_raw(
                2,
                1,
                vec![0, 1],
                vec![5],
                vec![1u64],
                true,
            );
            let r = std::panic::catch_unwind(|| {
                debug_validate!(bad, Sortedness::Sorted, "corrupt {}", "block");
            });
            let msg = *r.unwrap_err().downcast::<String>().unwrap();
            assert!(msg.contains("corrupt block"), "{msg}");
            assert!(msg.contains("row 5"), "{msg}");
        }
    }
}
