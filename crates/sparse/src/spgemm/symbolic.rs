//! Symbolic (structure-only) SpGEMM — `LocalSymbolic` in Alg. 3.
//!
//! Counts `nnz(A·B)` without computing values. Much cheaper than a numeric
//! multiply (no value traffic, no output materialization), which is why the
//! paper's Symbolic3D step is communication-dominated (Fig. 8).

use super::workspace::SpGemmWorkspace;
use super::{WorkStats, C_DRAIN, C_HASH_FLOP};
use crate::csc::CscMatrix;
use crate::{Result, SparseError};

/// Per-column output nnz of `a · b`, plus flop count.
///
/// Returns `(col_counts, stats)` where `col_counts[j] = nnz((A·B)(:,j))`.
/// `stats.nnz_out` is the total; `stats.flops` the multiplication count the
/// numeric kernel would perform. Convenience wrapper over
/// [`symbolic_col_counts_with_workspace`] with a throwaway workspace.
pub fn symbolic_col_counts<T: Copy, U: Copy>(
    a: &CscMatrix<T>,
    b: &CscMatrix<U>,
) -> Result<(Vec<u64>, WorkStats)> {
    symbolic_col_counts_with_workspace(a, b, &mut SpGemmWorkspace::<()>::new())
}

/// [`symbolic_col_counts`] against caller-owned reusable scratch.
///
/// Only the workspace's structure-only accumulator is used, so the
/// workspace's value type `W` is independent of the operand types — the
/// same per-rank workspace that serves the numeric kernels serves the
/// symbolic sweep.
pub fn symbolic_col_counts_with_workspace<T: Copy, U: Copy, W: Copy>(
    a: &CscMatrix<T>,
    b: &CscMatrix<U>,
    ws: &mut SpGemmWorkspace<W>,
) -> Result<(Vec<u64>, WorkStats)> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: (a.ncols(), a.ncols()),
            found: (b.nrows(), b.ncols()),
        });
    }
    crate::debug_validate!(*a, crate::Sortedness::Unsorted, "symbolic sweep input A");
    crate::debug_validate!(*b, crate::Sortedness::Unsorted, "symbolic sweep input B");
    let n_out = b.ncols();
    let allocs_before = ws.total_allocs();
    let mut counts = vec![0u64; n_out];
    let acc = &mut ws.sym;
    let mut stats = WorkStats::default();
    #[allow(clippy::needless_range_loop)] // indexes both `b` and `counts`
    for j in 0..n_out {
        let (b_rows, _) = b.col(j);
        let mut ub = 0usize;
        for &i in b_rows {
            ub += a.col_nnz(i as usize);
        }
        if ub == 0 {
            continue;
        }
        acc.reset(ub);
        for &i in b_rows {
            let (a_rows, _) = a.col(i as usize);
            for &r in a_rows {
                acc.insert_key(r);
            }
        }
        counts[j] = acc.len() as u64;
        stats.flops += ub as u64;
        stats.nnz_out += acc.len() as u64;
        // Symbolic probes cost like numeric probes but skip the value math
        // and the drain; model at half the per-flop constant.
        stats.work_units += ub as f64 * (C_HASH_FLOP * 0.5) + acc.len() as f64 * (C_DRAIN * 0.25);
    }
    // One exact-size allocation for the counts themselves, plus any table
    // growth the sweep caused.
    stats.allocs = ws.total_allocs() - allocs_before + 1;
    ws.note_peak();
    stats.peak_scratch_bytes = ws.peak_scratch_bytes();
    Ok((counts, stats))
}

/// Total `nnz(A·B)` (convenience wrapper over [`symbolic_col_counts`]).
pub fn symbolic_nnz<T: Copy, U: Copy>(a: &CscMatrix<T>, b: &CscMatrix<U>) -> Result<(u64, WorkStats)> {
    let (_, stats) = symbolic_col_counts(a, b)?;
    Ok((stats.nnz_out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::semiring::PlusTimesF64;
    use crate::spgemm::dense_acc::spgemm_spa;

    #[test]
    fn counts_match_numeric_kernel() {
        let a = er_random::<PlusTimesF64>(70, 70, 6, 51);
        let b = er_random::<PlusTimesF64>(70, 70, 6, 52);
        let (counts, stats) = symbolic_col_counts(&a, &b).unwrap();
        let (c, num_stats) = spgemm_spa::<PlusTimesF64>(&a, &b).unwrap();
        for (j, &count) in counts.iter().enumerate() {
            assert_eq!(count as usize, c.col_nnz(j), "column {j}");
        }
        assert_eq!(stats.nnz_out, c.nnz() as u64);
        assert_eq!(stats.flops, num_stats.flops);
    }

    #[test]
    fn symbolic_cheaper_than_numeric_in_work_units() {
        let a = er_random::<PlusTimesF64>(100, 100, 8, 61);
        let b = er_random::<PlusTimesF64>(100, 100, 8, 62);
        let (_, sym) = symbolic_nnz(&a, &b).unwrap();
        let (_, num) = spgemm_spa::<PlusTimesF64>(&a, &b).unwrap();
        assert!(sym.work_units < num.work_units);
    }

    #[test]
    fn empty_product() {
        let a = CscMatrix::<f64>::zero(5, 5);
        let b = er_random::<PlusTimesF64>(5, 5, 2, 1);
        let (n, _) = symbolic_nnz(&a, &b).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn dimension_check() {
        let a = CscMatrix::<f64>::zero(5, 4);
        let b = CscMatrix::<f64>::zero(5, 5);
        assert!(symbolic_nnz(&a, &b).is_err());
    }
}
