//! Dense sparse-accumulator (SPA / Gustavson) SpGEMM.
//!
//! The classic MATLAB-style kernel \[21\]: a dense value array plus a stamp
//! array of size `nrows(A)`. O(nrows) memory per thread makes it unsuitable
//! for the paper's extreme-scale local blocks, but it is the simplest
//! correct kernel, so the test suite uses it as the oracle for the heap,
//! hybrid, and hash kernels.

use super::{WorkStats, C_DRAIN, C_HASH_FLOP};
use crate::csc::CscMatrix;
use crate::semiring::Semiring;
use crate::{Result, SparseError};

/// Multiply `a · b` with a dense accumulator. Output columns sorted.
pub fn spgemm_spa<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
) -> Result<(CscMatrix<S::T>, WorkStats)> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: (a.ncols(), a.ncols()),
            found: (b.nrows(), b.ncols()),
        });
    }
    let m = a.nrows();
    let n_out = b.ncols();
    let mut dense: Vec<S::T> = vec![S::zero(); m];
    let mut stamp: Vec<u64> = vec![0; m];
    let mut touched: Vec<u32> = Vec::new();
    let mut epoch = 0u64;

    let mut colptr = vec![0usize; n_out + 1];
    let mut rowidx: Vec<u32> = Vec::new();
    let mut vals: Vec<S::T> = Vec::new();
    let mut stats = WorkStats::default();

    for j in 0..n_out {
        epoch += 1;
        touched.clear();
        let (b_rows, b_vals) = b.col(j);
        let mut col_flops = 0u64;
        for (&i, &bv) in b_rows.iter().zip(b_vals.iter()) {
            let (a_rows, a_vals) = a.col(i as usize);
            col_flops += a_rows.len() as u64;
            for (&r, &av) in a_rows.iter().zip(a_vals.iter()) {
                let ri = r as usize;
                let prod = S::mul(av, bv);
                if stamp[ri] == epoch {
                    dense[ri] = S::add(dense[ri], prod);
                } else {
                    stamp[ri] = epoch;
                    dense[ri] = prod;
                    touched.push(r);
                }
            }
        }
        touched.sort_unstable();
        for &r in &touched {
            rowidx.push(r);
            vals.push(dense[r as usize]);
        }
        stats.flops += col_flops;
        stats.nnz_out += touched.len() as u64;
        stats.work_units += col_flops as f64 * C_HASH_FLOP + touched.len() as f64 * C_DRAIN;
        colptr[j + 1] = rowidx.len();
    }
    let c = CscMatrix::from_parts_unchecked(m, n_out, colptr, rowidx, vals, true);
    crate::debug_validate!(c, crate::Sortedness::Sorted, "SPA SpGEMM output");
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimesF64;
    use crate::triples::Triples;

    #[test]
    fn identity_times_matrix_is_matrix() {
        let mut t = Triples::new(3, 3);
        t.push(0, 0, 2.0);
        t.push(2, 1, 4.0);
        t.push(1, 2, 6.0);
        let m = t.to_csc();
        let i = CscMatrix::identity(3);
        let (c, stats) = spgemm_spa::<PlusTimesF64>(&i, &m).unwrap();
        assert!(c.eq_modulo_order(&m));
        assert_eq!(stats.flops, 3);
    }

    #[test]
    fn accumulates_across_inner_dimension() {
        // a = [1 1], b = [1; 1] -> c = [2]
        let mut ta = Triples::new(1, 2);
        ta.push(0, 0, 1.0);
        ta.push(0, 1, 1.0);
        let mut tb = Triples::new(2, 1);
        tb.push(0, 0, 1.0);
        tb.push(1, 0, 1.0);
        let (c, stats) = spgemm_spa::<PlusTimesF64>(&ta.to_csc(), &tb.to_csc()).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.col(0).1, &[2.0]);
        assert_eq!(stats.flops, 2);
        assert_eq!(stats.nnz_out, 1);
    }

    #[test]
    fn rectangular_shapes() {
        let a = CscMatrix::<f64>::zero(5, 3);
        let b = CscMatrix::<f64>::zero(3, 7);
        let (c, _) = spgemm_spa::<PlusTimesF64>(&a, &b).unwrap();
        assert_eq!((c.nrows(), c.ncols()), (5, 7));
    }
}
