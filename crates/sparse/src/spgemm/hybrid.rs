//! Hybrid sorted SpGEMM — the kernel of Nagasaka et al. \[25\] that the
//! paper's previous-generation pipeline used after \[13\].
//!
//! Per output column: if the column has few input streams (low estimated
//! compression work) use a heap merge, otherwise a hash accumulator; either
//! way the finished column is **sorted** before moving on. The paper's
//! unsorted-hash kernel removes exactly this final sort (and the heap
//! path's input-sortedness requirement); Fig. 15 / Table VII quantify the
//! difference.

use super::accum::HashAccum;
use super::workspace::SpGemmWorkspace;
use super::{lg, WorkStats, C_HASH_FLOP, C_HEAP_FLOP, C_SORT};
use crate::csc::CscMatrix;
use crate::semiring::Semiring;
use crate::{Result, SparseError};
use std::cmp::Reverse;

/// Streams-per-column threshold below which the heap path wins (few streams
/// mean the log factor is tiny and the heap's sorted output is free).
const HEAP_STREAMS_MAX: usize = 4;

/// Multiply `a · b`, choosing heap or hash per column; sorted output.
///
/// Requires sorted `a` (the heap path consumes sorted columns, matching the
/// prior-work pipeline where every intermediate was kept sorted).
/// Convenience wrapper over [`spgemm_hybrid_with_workspace`] with a
/// throwaway workspace.
pub fn spgemm_hybrid<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
) -> Result<(CscMatrix<S::T>, WorkStats)> {
    spgemm_hybrid_with_workspace::<S>(a, b, &mut SpGemmWorkspace::new())
}

/// [`spgemm_hybrid`] against caller-owned reusable scratch (hash table,
/// merge heap, cursors, and output arenas). Bit-identical output.
pub fn spgemm_hybrid_with_workspace<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
    ws: &mut SpGemmWorkspace<S::T>,
) -> Result<(CscMatrix<S::T>, WorkStats)> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: (a.ncols(), a.ncols()),
            found: (b.nrows(), b.ncols()),
        });
    }
    if !a.is_sorted() {
        return Err(SparseError::InvalidStructure(
            "hybrid SpGEMM requires sorted columns in A".into(),
        ));
    }
    let n_out = b.ncols();
    let allocs_before = ws.total_allocs();
    let mut total_ub = 0usize;
    for &i in b.rowidx() {
        total_ub += a.col_nnz(i as usize);
    }
    ws.prepare_output(n_out, total_ub);
    ws.ensure_streams(HEAP_STREAMS_MAX);
    let mut stats = WorkStats::default();
    let acc = ws.accum.get_or_insert_with(|| HashAccum::new(S::zero()));
    ws.colptr.push(0);

    for j in 0..n_out {
        let (b_rows, b_vals) = b.col(j);
        let k = b_rows.len();
        if k == 0 {
            ws.colptr.push(ws.rowidx.len());
            continue;
        }
        let mut col_flops = 0u64;
        for &i in b_rows {
            col_flops += a.col_nnz(i as usize) as u64;
        }
        let col_start = ws.rowidx.len();
        if k <= HEAP_STREAMS_MAX {
            // Heap path: sorted output for free.
            ws.heap.clear();
            ws.cursors.clear();
            ws.cursors.resize(k, 0);
            for (s, &i) in b_rows.iter().enumerate() {
                let (a_rows, _) = a.col(i as usize);
                if !a_rows.is_empty() {
                    ws.heap.push(Reverse((a_rows[0], s as u32)));
                }
            }
            while let Some(Reverse((row, s))) = ws.heap.pop() {
                let s = s as usize;
                let (a_rows, a_vals) = a.col(b_rows[s] as usize);
                let pos = ws.cursors[s];
                let prod = S::mul(a_vals[pos], b_vals[s]);
                match ws.rowidx.last() {
                    Some(&last) if last == row && ws.rowidx.len() > col_start => {
                        let v = ws.vals.last_mut().unwrap();
                        *v = S::add(*v, prod);
                    }
                    _ => {
                        ws.rowidx.push(row);
                        ws.vals.push(prod);
                    }
                }
                ws.cursors[s] = pos + 1;
                if pos + 1 < a_rows.len() {
                    ws.heap.push(Reverse((a_rows[pos + 1], s as u32)));
                }
            }
            stats.work_units += col_flops as f64 * lg(k) * C_HEAP_FLOP;
        } else {
            // Hash path + explicit sort of the finished column.
            acc.reset(col_flops as usize);
            for (&i, &bv) in b_rows.iter().zip(b_vals.iter()) {
                let (a_rows, a_vals) = a.col(i as usize);
                for (&r, &av) in a_rows.iter().zip(a_vals.iter()) {
                    acc.accumulate::<S>(r, S::mul(av, bv));
                }
            }
            acc.drain_into_sorted(&mut ws.rowidx, &mut ws.vals);
            let produced = ws.rowidx.len() - col_start;
            stats.work_units +=
                col_flops as f64 * C_HASH_FLOP + produced as f64 * lg(produced) * C_SORT;
        }
        let produced = ws.rowidx.len() - col_start;
        stats.flops += col_flops;
        stats.nnz_out += produced as u64;
        ws.colptr.push(ws.rowidx.len());
    }
    let (c, copied) = ws.take_output(a.nrows(), n_out, true);
    stats.allocs = ws.total_allocs() - allocs_before;
    stats.peak_scratch_bytes = ws.peak_scratch_bytes();
    stats.memcpy_bytes = copied;
    crate::debug_validate!(c, crate::Sortedness::Sorted, "hybrid SpGEMM output");
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::semiring::{PlusTimesF64, PlusTimesU64};
    use crate::spgemm::dense_acc::spgemm_spa;
    use crate::spgemm::hash::spgemm_hash_unsorted;

    #[test]
    fn matches_spa_and_hash_kernels() {
        let a = er_random::<PlusTimesU64>(80, 80, 7, 21).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(80, 80, 7, 22).map(|_| 1u64);
        let (c_hy, _) = spgemm_hybrid::<PlusTimesU64>(&a, &b).unwrap();
        let (c_spa, _) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        let (c_hash, _) = spgemm_hash_unsorted::<PlusTimesU64>(&a, &b).unwrap();
        assert!(c_hy.eq_modulo_order(&c_spa));
        assert!(c_hy.eq_modulo_order(&c_hash));
        assert!(c_hy.is_sorted());
    }

    #[test]
    fn exercises_both_paths() {
        // Columns with 1 stream (heap path) and columns with many (hash path).
        let a = er_random::<PlusTimesF64>(60, 60, 3, 31);
        let b_sparse = er_random::<PlusTimesF64>(60, 30, 1, 32); // heap path
        let b_dense = er_random::<PlusTimesF64>(60, 30, 12, 33); // hash path
        let (c1, _) = spgemm_hybrid::<PlusTimesF64>(&a, &b_sparse).unwrap();
        let (c2, _) = spgemm_hybrid::<PlusTimesF64>(&a, &b_dense).unwrap();
        let (o1, _) = spgemm_spa::<PlusTimesF64>(&a, &b_sparse).unwrap();
        let (o2, _) = spgemm_spa::<PlusTimesF64>(&a, &b_dense).unwrap();
        assert!(c1.approx_eq(&o1, 1e-12));
        assert!(c2.approx_eq(&o2, 1e-12));
    }

    #[test]
    fn hybrid_work_exceeds_unsorted_hash() {
        // The extra sort makes hybrid cost more work units on hash-path columns.
        let a = er_random::<PlusTimesF64>(120, 120, 10, 41);
        let b = er_random::<PlusTimesF64>(120, 120, 10, 42);
        let (_, s_hy) = spgemm_hybrid::<PlusTimesF64>(&a, &b).unwrap();
        let (_, s_hash) = spgemm_hash_unsorted::<PlusTimesF64>(&a, &b).unwrap();
        assert!(s_hy.work_units > s_hash.work_units);
    }

    #[test]
    fn rejects_unsorted_a() {
        let a = CscMatrix::from_parts(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap();
        let b = CscMatrix::<f64>::zero(1, 2);
        assert!(spgemm_hybrid::<PlusTimesF64>(&a, &b).is_err());
    }
}
