//! Heap-based SpGEMM — the *previous-generation* kernel of SUMMA3D \[13\].
//!
//! Forms each output column by k-way merging the (sorted) columns
//! `A(:,i)·B(i,j)` with a binary min-heap keyed on row index. Requires
//! sorted input columns in `A`; produces sorted output. Kept as the
//! baseline the paper improves upon (Table VII, Fig. 15).

use super::{lg, WorkStats, C_HEAP_FLOP};
use crate::csc::CscMatrix;
use crate::semiring::Semiring;
use crate::{Result, SparseError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Multiply `a · b` by k-way heap merge per output column.
///
/// Precondition: `a` has sorted columns (returns `InvalidStructure`
/// otherwise — the prior-work kernel fundamentally requires it).
pub fn spgemm_heap<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
) -> Result<(CscMatrix<S::T>, WorkStats)> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: (a.ncols(), a.ncols()),
            found: (b.nrows(), b.ncols()),
        });
    }
    if !a.is_sorted() {
        return Err(SparseError::InvalidStructure(
            "heap SpGEMM requires sorted columns in A".into(),
        ));
    }
    let n_out = b.ncols();
    let mut colptr = vec![0usize; n_out + 1];
    let mut rowidx: Vec<u32> = Vec::new();
    let mut vals: Vec<S::T> = Vec::new();
    let mut stats = WorkStats::default();
    // (row, stream) min-heap; `cursor[s]` walks stream s's position in A's column.
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    let mut cursors: Vec<usize> = Vec::new();

    for j in 0..n_out {
        let (b_rows, b_vals) = b.col(j);
        let k = b_rows.len();
        if k == 0 {
            colptr[j + 1] = rowidx.len();
            continue;
        }
        heap.clear();
        cursors.clear();
        cursors.resize(k, 0);
        let mut col_flops = 0u64;
        for (s, &i) in b_rows.iter().enumerate() {
            let (a_rows, _) = a.col(i as usize);
            col_flops += a_rows.len() as u64;
            if !a_rows.is_empty() {
                heap.push(Reverse((a_rows[0], s as u32)));
            }
        }
        let col_start = rowidx.len();
        while let Some(Reverse((row, s))) = heap.pop() {
            let s = s as usize;
            let i = b_rows[s] as usize;
            let (a_rows, a_vals) = a.col(i);
            let pos = cursors[s];
            let prod = S::mul(a_vals[pos], b_vals[s]);
            match rowidx.last() {
                Some(&last) if last == row && rowidx.len() > col_start => {
                    let v = vals.last_mut().unwrap();
                    *v = S::add(*v, prod);
                }
                _ => {
                    rowidx.push(row);
                    vals.push(prod);
                }
            }
            cursors[s] = pos + 1;
            if pos + 1 < a_rows.len() {
                heap.push(Reverse((a_rows[pos + 1], s as u32)));
            }
        }
        let produced = rowidx.len() - col_start;
        stats.flops += col_flops;
        stats.nnz_out += produced as u64;
        stats.work_units += col_flops as f64 * lg(k) * C_HEAP_FLOP;
        colptr[j + 1] = rowidx.len();
    }
    let c = CscMatrix::from_parts_unchecked(a.nrows(), n_out, colptr, rowidx, vals, true);
    debug_assert!(c.check_sorted());
    crate::debug_validate!(c, crate::Sortedness::Sorted, "heap SpGEMM output");
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::semiring::{MinPlusF64, PlusTimesF64, PlusTimesU64};
    use crate::spgemm::dense_acc::spgemm_spa;
    use crate::spgemm::hash::spgemm_hash_unsorted;
    use crate::triples::Triples;

    #[test]
    fn output_is_sorted() {
        let a = er_random::<PlusTimesF64>(50, 50, 6, 1);
        let b = er_random::<PlusTimesF64>(50, 50, 6, 2);
        let (c, _) = spgemm_heap::<PlusTimesF64>(&a, &b).unwrap();
        assert!(c.is_sorted());
        assert!(c.check_sorted());
    }

    #[test]
    fn matches_hash_kernel_u64() {
        let a = er_random::<PlusTimesU64>(60, 60, 5, 11).map(|_| 2u64);
        let b = er_random::<PlusTimesU64>(60, 60, 5, 12).map(|_| 3u64);
        let (c_heap, s_heap) = spgemm_heap::<PlusTimesU64>(&a, &b).unwrap();
        let (c_hash, s_hash) = spgemm_hash_unsorted::<PlusTimesU64>(&a, &b).unwrap();
        assert!(c_heap.eq_modulo_order(&c_hash));
        assert_eq!(s_heap.flops, s_hash.flops);
        assert_eq!(s_heap.nnz_out, s_hash.nnz_out);
    }

    #[test]
    fn matches_spa_oracle() {
        let a = er_random::<PlusTimesU64>(40, 30, 4, 5).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(30, 20, 4, 6).map(|_| 1u64);
        let (c_heap, _) = spgemm_heap::<PlusTimesU64>(&a, &b).unwrap();
        let (c_spa, _) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        assert!(c_heap.eq_modulo_order(&c_spa));
    }

    #[test]
    fn rejects_unsorted_a() {
        let a = CscMatrix::from_parts(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap();
        let b = CscMatrix::<f64>::zero(1, 1);
        assert!(spgemm_heap::<PlusTimesF64>(&a, &b).is_err());
    }

    #[test]
    fn min_plus_semiring_shortest_two_hop() {
        // 0 -> 1 (w=2), 1 -> 2 (w=3): (A²)(2,0) = 5 under (min,+).
        let mut t = Triples::new(3, 3);
        t.push(1, 0, 2.0);
        t.push(2, 1, 3.0);
        let a = t.to_csc();
        let (c, _) = spgemm_heap::<MinPlusF64>(&a, &a).unwrap();
        assert_eq!(c.col(0), (&[2u32][..], &[5.0][..]));
    }

    #[test]
    fn heap_work_units_exceed_hash_for_wide_columns() {
        let a = er_random::<PlusTimesF64>(100, 100, 8, 3);
        let b = er_random::<PlusTimesF64>(100, 100, 8, 4);
        let (_, s_heap) = spgemm_heap::<PlusTimesF64>(&a, &b).unwrap();
        let (_, s_hash) = spgemm_hash_unsorted::<PlusTimesF64>(&a, &b).unwrap();
        assert!(
            s_heap.work_units > s_hash.work_units,
            "heap {} should exceed hash {}",
            s_heap.work_units,
            s_hash.work_units
        );
    }
}
