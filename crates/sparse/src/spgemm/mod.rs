//! Local SpGEMM kernels.
//!
//! Three generations of kernels, mirroring the paper's Sec. IV-D narrative:
//!
//! * [`heap::spgemm_heap`] — the multithreaded *heap* kernel of the original
//!   SUMMA3D work \[13\]: columns formed by k-way merging sorted columns of
//!   `A`; output always sorted.
//! * [`hybrid::spgemm_hybrid`] — the *hybrid* kernel of \[25\]: per column,
//!   chooses a heap or a hash accumulator depending on the column's
//!   compression characteristics, then sorts the column.
//! * [`hash::spgemm_hash_unsorted`] — **this paper's** sort-free kernel:
//!   hash accumulation, no sorting of inputs required, unsorted output.
//! * [`dense_acc::spgemm_spa`] — a dense sparse-accumulator (Gustavson/SPA)
//!   reference, used as an oracle in tests.
//! * [`esc::spgemm_esc`] — expand–sort–compress, the GPU-style accumulator
//!   of the related work the paper surveys \[23, 26, 28\].
//! * [`symbolic`] — hash-based nnz counting (`LocalSymbolic` in Alg. 3).
//!
//! Every kernel returns [`WorkStats`]: real flop counts plus abstract
//! *work units* that `spgemm-simgrid`'s machine model converts to modeled
//! seconds. Work-unit constants encode the relative per-element costs of the
//! accumulator data structures (heap ops and sorts cost more per element
//! than hash probes), calibrated so that the previous-vs-new kernel ratios
//! land in the ranges the paper reports (Table VII, Fig. 15).

pub mod accum;
pub mod dense_acc;
pub mod esc;
pub mod hash;
pub mod heap;
pub mod hybrid;
pub mod symbolic;

pub use dense_acc::spgemm_spa;
pub use esc::spgemm_esc;
pub use hash::spgemm_hash_unsorted;
pub use heap::spgemm_heap;
pub use hybrid::spgemm_hybrid;
pub use symbolic::{symbolic_col_counts, symbolic_nnz};

/// Work performed by a local kernel, in both physical and modeled units.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkStats {
    /// Scalar semiring multiplications performed (the paper's `flops`).
    pub flops: u64,
    /// Nonzeros in the kernel's output.
    pub nnz_out: u64,
    /// Abstract work units for the α–β machine model (dimensionless;
    /// multiplied by a machine's seconds-per-unit and divided by its
    /// threads-per-process).
    pub work_units: f64,
}

impl WorkStats {
    /// Accumulate another kernel invocation's stats.
    pub fn merge(&mut self, other: WorkStats) {
        self.flops += other.flops;
        self.nnz_out += other.nnz_out;
        self.work_units += other.work_units;
    }
}

impl std::ops::Add for WorkStats {
    type Output = WorkStats;
    fn add(self, rhs: WorkStats) -> WorkStats {
        WorkStats {
            flops: self.flops + rhs.flops,
            nnz_out: self.nnz_out + rhs.nnz_out,
            work_units: self.work_units + rhs.work_units,
        }
    }
}

/// Per-flop cost of a hash-accumulator insert/update (baseline unit).
pub const C_HASH_FLOP: f64 = 1.0;
/// Per-output-nonzero cost of draining a hash accumulator.
pub const C_DRAIN: f64 = 0.5;
/// Per-flop, per-log₂(streams) cost of a heap pop/push. Heaps suffer
/// branchy comparisons and poor locality relative to linear probing.
pub const C_HEAP_FLOP: f64 = 1.6;
/// Per-element, per-log₂(length) cost of sorting a finished column.
pub const C_SORT: f64 = 0.6;
/// Per-input-element cost of hash merging (no multiplication, just ⊕).
pub const C_MERGE_HASH: f64 = 0.8;
/// Per-element, per-log₂(k) cost of heap merging `k` sorted matrices.
pub const C_MERGE_HEAP: f64 = 2.2;

/// log₂ clamped below at 1 (so a single stream still costs one comparison).
#[inline]
pub(crate) fn lg(x: usize) -> f64 {
    (x.max(2) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workstats_merge_adds_fields() {
        let mut a = WorkStats {
            flops: 10,
            nnz_out: 4,
            work_units: 12.5,
        };
        a.merge(WorkStats {
            flops: 5,
            nnz_out: 1,
            work_units: 2.5,
        });
        assert_eq!(a.flops, 15);
        assert_eq!(a.nnz_out, 5);
        assert!((a.work_units - 15.0).abs() < 1e-12);
    }

    #[test]
    fn lg_is_clamped() {
        assert_eq!(lg(0), 1.0);
        assert_eq!(lg(1), 1.0);
        assert_eq!(lg(2), 1.0);
        assert_eq!(lg(8), 3.0);
    }
}
