//! Local SpGEMM kernels.
//!
//! Three generations of kernels, mirroring the paper's Sec. IV-D narrative:
//!
//! * [`heap::spgemm_heap`] — the multithreaded *heap* kernel of the original
//!   SUMMA3D work \[13\]: columns formed by k-way merging sorted columns of
//!   `A`; output always sorted.
//! * [`hybrid::spgemm_hybrid`] — the *hybrid* kernel of \[25\]: per column,
//!   chooses a heap or a hash accumulator depending on the column's
//!   compression characteristics, then sorts the column.
//! * [`hash::spgemm_hash_unsorted`] — **this paper's** sort-free kernel:
//!   hash accumulation, no sorting of inputs required, unsorted output.
//! * [`dense_acc::spgemm_spa`] — a dense sparse-accumulator (Gustavson/SPA)
//!   reference, used as an oracle in tests.
//! * [`esc::spgemm_esc`] — expand–sort–compress, the GPU-style accumulator
//!   of the related work the paper surveys \[23, 26, 28\].
//! * [`symbolic`] — hash-based nnz counting (`LocalSymbolic` in Alg. 3).
//!
//! Every kernel returns [`WorkStats`]: real flop counts plus abstract
//! *work units* that `spgemm-simgrid`'s machine model converts to modeled
//! seconds. Work-unit constants encode the relative per-element costs of the
//! accumulator data structures (heap ops and sorts cost more per element
//! than hash probes), calibrated so that the previous-vs-new kernel ratios
//! land in the ranges the paper reports (Table VII, Fig. 15).

pub mod accum;
pub mod dense_acc;
pub mod esc;
pub mod hash;
pub mod heap;
pub mod hybrid;
pub mod symbolic;
pub mod workspace;

pub use dense_acc::spgemm_spa;
pub use esc::spgemm_esc;
pub use hash::{spgemm_hash_unsorted, spgemm_hash_unsorted_with_workspace};
pub use heap::spgemm_heap;
pub use hybrid::{spgemm_hybrid, spgemm_hybrid_with_workspace};
pub use symbolic::{symbolic_col_counts, symbolic_col_counts_with_workspace, symbolic_nnz};
pub use workspace::SpGemmWorkspace;

/// Work performed by a local kernel, in both physical and modeled units.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkStats {
    /// Scalar semiring multiplications performed (the paper's `flops`).
    pub flops: u64,
    /// Nonzeros in the kernel's output.
    pub nnz_out: u64,
    /// Abstract work units for the α–β machine model (dimensionless;
    /// multiplied by a machine's seconds-per-unit and divided by its
    /// threads-per-process).
    pub work_units: f64,
    /// Heap allocations performed for scratch and output during the
    /// invocation (vector growth events, accumulator-table growths, and
    /// the exact-size output copies). Zero-cost in the α–β model but the
    /// quantity the workspace reuse of Sec. IV-D's "reusable workhorse
    /// collections" eliminates; see the `criterion_workspace` bench.
    pub allocs: u64,
    /// High-water mark of reusable scratch (accumulator tables, output
    /// arenas, heap/cursor buffers) in bytes. Aggregates by `max`, not sum.
    pub peak_scratch_bytes: u64,
    /// Bytes copied from reusable arenas into finished (exact-size)
    /// outputs.
    pub memcpy_bytes: u64,
}

impl WorkStats {
    /// Accumulate another kernel invocation's stats. Counters sum except
    /// `peak_scratch_bytes`, which is a high-water mark (max).
    pub fn merge(&mut self, other: WorkStats) {
        self.flops += other.flops;
        self.nnz_out += other.nnz_out;
        self.work_units += other.work_units;
        self.allocs += other.allocs;
        self.peak_scratch_bytes = self.peak_scratch_bytes.max(other.peak_scratch_bytes);
        self.memcpy_bytes += other.memcpy_bytes;
    }
}

impl std::ops::Add for WorkStats {
    type Output = WorkStats;
    fn add(mut self, rhs: WorkStats) -> WorkStats {
        self.merge(rhs);
        self
    }
}

/// Per-flop cost of a hash-accumulator insert/update (baseline unit).
pub const C_HASH_FLOP: f64 = 1.0;
/// Per-output-nonzero cost of draining a hash accumulator.
pub const C_DRAIN: f64 = 0.5;
/// Per-flop, per-log₂(streams) cost of a heap pop/push. Heaps suffer
/// branchy comparisons and poor locality relative to linear probing.
pub const C_HEAP_FLOP: f64 = 1.6;
/// Per-element, per-log₂(length) cost of sorting a finished column.
pub const C_SORT: f64 = 0.6;
/// Per-input-element cost of hash merging (no multiplication, just ⊕).
pub const C_MERGE_HASH: f64 = 0.8;
/// Per-element, per-log₂(k) cost of heap merging `k` sorted matrices.
pub const C_MERGE_HEAP: f64 = 2.2;
/// Per-flop cost of the sparse×dense (SpMM) scatter-accumulate: no hash
/// probe, no drain — a direct indexed add into the dense output column —
/// so it is cheaper than a hash flop. The planner's 1.5D compute terms
/// use this same constant (`predict` mirrors the kernel exactly).
pub const C_SPMM_FLOP: f64 = 0.4;

/// log₂ clamped below at 1 (so a single stream still costs one comparison).
#[inline]
pub(crate) fn lg(x: usize) -> f64 {
    (x.max(2) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workstats_merge_adds_fields() {
        let mut a = WorkStats {
            flops: 10,
            nnz_out: 4,
            work_units: 12.5,
            allocs: 3,
            peak_scratch_bytes: 100,
            memcpy_bytes: 64,
        };
        a.merge(WorkStats {
            flops: 5,
            nnz_out: 1,
            work_units: 2.5,
            allocs: 2,
            peak_scratch_bytes: 250,
            memcpy_bytes: 16,
        });
        assert_eq!(a.flops, 15);
        assert_eq!(a.nnz_out, 5);
        assert!((a.work_units - 15.0).abs() < 1e-12);
        assert_eq!(a.allocs, 5);
        assert_eq!(a.peak_scratch_bytes, 250, "peak is a high-water mark");
        assert_eq!(a.memcpy_bytes, 80);
    }

    #[test]
    fn lg_is_clamped() {
        assert_eq!(lg(0), 1.0);
        assert_eq!(lg(1), 1.0);
        assert_eq!(lg(2), 1.0);
        assert_eq!(lg(8), 3.0);
    }
}
