//! Reusable kernel workspace: allocation-free hot paths for local SpGEMM
//! and merge.
//!
//! The distributed pipeline calls a local kernel once per SUMMA stage and
//! a merge kernel once per layer/fiber — on every batch. Naively each call
//! allocates its hash table, its heap/cursor scratch, and grows its output
//! vectors geometrically from empty, so a `b`-batch, `√(p/l)`-stage run
//! performs thousands of heap allocations that the paper's "reusable
//! workhorse collection" design (Sec. IV-D) is explicitly about avoiding.
//!
//! [`SpGemmWorkspace`] owns every piece of reusable state — the numeric
//! and symbolic [`HashAccum`]s, the k-way-merge heap and cursors, and
//! output arenas for `colptr`/`rowidx`/`vals` — with monotonically growing
//! capacity. The `_with_workspace` kernel entry points build their result
//! in the arenas (preallocated to the kernel's own upper bound: the
//! per-column `ub`/`total_in` sums) and finish with one exact-size copy
//! per buffer, so a warmed-up workspace performs a small constant number
//! of allocations per kernel call instead of `O(log nnz)` growth events
//! per vector plus a table reallocation per column-size regime.
//!
//! The workspace also meters itself: allocation events, the scratch
//! high-water mark, and bytes memcpy'd into finished outputs flow into
//! [`WorkStats`](super::WorkStats) so the savings are observable in
//! reports and benches (`criterion_workspace`).

use super::accum::HashAccum;
use crate::csc::CscMatrix;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::mem::size_of;

/// Long-lived scratch shared by all `_with_workspace` kernels.
///
/// One instance per rank (or per thread) is intended to live across every
/// SUMMA stage, merge, and batch of a multiplication — and across
/// multiplications. All buffers grow monotonically and are logically reset
/// (never shrunk) between calls, so shape changes between invocations are
/// safe: stale keys cannot leak because the accumulator's `reset` clears
/// occupancy and the arenas are length-cleared before each kernel.
///
/// The numeric accumulator is created lazily on first use and reused even
/// across semirings of the same value type: its `fill` value is only an
/// initializer for freshly grown value slots, and every occupied slot is
/// overwritten before being read (the key sentinel is authoritative), so a
/// `fill` from a previously used semiring is harmless.
pub struct SpGemmWorkspace<T: Copy> {
    /// Numeric hash accumulator (lazily created; see type docs).
    pub(crate) accum: Option<HashAccum<T>>,
    /// Structure-only accumulator for symbolic counting.
    pub(crate) sym: HashAccum<()>,
    /// Output arena: column pointers of the matrix under construction.
    pub(crate) colptr: Vec<usize>,
    /// Output arena: row indices.
    pub(crate) rowidx: Vec<u32>,
    /// Output arena: values.
    pub(crate) vals: Vec<T>,
    /// K-way merge heap (heap paths of the hybrid kernel and heap merge).
    pub(crate) heap: BinaryHeap<Reverse<(u32, u32)>>,
    /// Per-stream cursors for the k-way merge paths.
    pub(crate) cursors: Vec<usize>,
    /// Dense-operand arena: buffer leased out to
    /// [`DenseBlock::with_workspace`](crate::dense::DenseBlock::with_workspace)
    /// and returned via `into_workspace`, so per-round dense blocks in the
    /// 1.5D drivers reuse one allocation.
    dense: Vec<T>,
    /// Allocation events charged to this workspace (arena growth + output
    /// copies); accumulator-table growths are tracked by the accumulators
    /// themselves and folded in by [`Self::total_allocs`].
    allocs: u64,
    /// High-water mark of [`Self::scratch_bytes`].
    peak_scratch: u64,
}

impl<T: Copy> std::fmt::Debug for SpGemmWorkspace<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpGemmWorkspace")
            .field("scratch_bytes", &self.scratch_bytes())
            .finish_non_exhaustive()
    }
}

impl<T: Copy> Default for SpGemmWorkspace<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy> SpGemmWorkspace<T> {
    /// Empty workspace; every buffer starts unallocated.
    pub fn new() -> Self {
        SpGemmWorkspace {
            accum: None,
            sym: HashAccum::new(()),
            colptr: Vec::new(),
            rowidx: Vec::new(),
            vals: Vec::new(),
            heap: BinaryHeap::new(),
            cursors: Vec::new(),
            dense: Vec::new(),
            allocs: 0,
            peak_scratch: 0,
        }
    }

    /// Total allocation events since construction: arena growths, output
    /// copies, and accumulator-table growths. Monotone.
    pub fn total_allocs(&self) -> u64 {
        self.allocs
            + self.sym.grows()
            + self.accum.as_ref().map_or(0, |a| a.grows())
    }

    /// Bytes currently held by all reusable buffers (capacities, not
    /// lengths — this is what stays resident between kernel calls).
    pub fn scratch_bytes(&self) -> u64 {
        let accum_bytes = self.accum.as_ref().map_or(0, |a| a.footprint_bytes());
        (accum_bytes
            + self.sym.footprint_bytes()
            + self.colptr.capacity() * size_of::<usize>()
            + self.rowidx.capacity() * size_of::<u32>()
            + self.vals.capacity() * size_of::<T>()
            + self.heap.capacity() * size_of::<Reverse<(u32, u32)>>()
            + self.cursors.capacity() * size_of::<usize>()
            + self.dense.capacity() * size_of::<T>()) as u64
    }

    /// Lease the dense arena as a `len`-element buffer filled with `fill`.
    /// Growth beyond the retained capacity is a counted allocation; reuse
    /// is free. Hand the buffer back with [`Self::restore_dense`].
    pub fn lease_dense(&mut self, len: usize, fill: T) -> Vec<T> {
        let mut buf = std::mem::take(&mut self.dense);
        Self::reserve_counting(&mut buf, len, &mut self.allocs);
        buf.clear();
        buf.resize(len, fill);
        buf
    }

    /// Return a buffer (typically from [`Self::lease_dense`]) to the dense
    /// arena. Keeps the larger of the incoming and retained capacities.
    pub fn restore_dense(&mut self, buf: Vec<T>) {
        if buf.capacity() > self.dense.capacity() {
            self.dense = buf;
        }
    }

    /// High-water mark of [`Self::scratch_bytes`] over the workspace's
    /// lifetime.
    pub fn peak_scratch_bytes(&self) -> u64 {
        self.peak_scratch
    }

    fn reserve_counting<U>(buf: &mut Vec<U>, need: usize, allocs: &mut u64) {
        if buf.capacity() < need {
            *allocs += 1;
            buf.reserve(need - buf.len());
        }
    }

    /// Length-clear the output arenas and ensure capacity for a kernel
    /// producing `ncols` columns and at most `nnz_ub` entries. Capacity
    /// growth (a real allocation) is counted; reuse is free.
    pub(crate) fn prepare_output(&mut self, ncols: usize, nnz_ub: usize) {
        self.colptr.clear();
        self.rowidx.clear();
        self.vals.clear();
        Self::reserve_counting(&mut self.colptr, ncols + 1, &mut self.allocs);
        Self::reserve_counting(&mut self.rowidx, nnz_ub, &mut self.allocs);
        Self::reserve_counting(&mut self.vals, nnz_ub, &mut self.allocs);
    }

    /// Ensure heap and cursor capacity for a `k`-stream merge path.
    pub(crate) fn ensure_streams(&mut self, k: usize) {
        if self.heap.capacity() < k {
            self.allocs += 1;
            self.heap.reserve(k - self.heap.len());
        }
        Self::reserve_counting(&mut self.cursors, k, &mut self.allocs);
    }

    /// Copy the finished arenas into an exact-size [`CscMatrix`].
    ///
    /// Returns the matrix and the bytes memcpy'd; the (at most three)
    /// output allocations are charged to the workspace counter.
    pub(crate) fn take_output(
        &mut self,
        nrows: usize,
        ncols: usize,
        sorted: bool,
    ) -> (CscMatrix<T>, u64) {
        let copied = (self.colptr.len() * size_of::<usize>()
            + self.rowidx.len() * size_of::<u32>()
            + self.vals.len() * size_of::<T>()) as u64;
        // `Vec::clone` allocates exactly `len` elements; empty vectors
        // don't touch the heap.
        self.allocs += 1
            + u64::from(!self.rowidx.is_empty())
            + u64::from(!self.vals.is_empty());
        let c = CscMatrix::from_parts_unchecked(
            nrows,
            ncols,
            self.colptr.clone(),
            self.rowidx.clone(),
            self.vals.clone(),
            sorted,
        );
        self.note_peak();
        (c, copied)
    }

    /// Record the current footprint into the high-water mark.
    pub(crate) fn note_peak(&mut self) {
        self.peak_scratch = self.peak_scratch.max(self.scratch_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_is_monotone_and_reuse_is_allocation_free() {
        let mut ws: SpGemmWorkspace<f64> = SpGemmWorkspace::new();
        ws.prepare_output(100, 1000);
        let allocs_warm = ws.total_allocs();
        let bytes_warm = ws.scratch_bytes();
        assert!(allocs_warm > 0 && bytes_warm > 0);
        // Smaller and equal requests must not allocate or shrink.
        ws.prepare_output(10, 50);
        ws.prepare_output(100, 1000);
        assert_eq!(ws.total_allocs(), allocs_warm);
        assert_eq!(ws.scratch_bytes(), bytes_warm);
        // A larger request grows (and is counted).
        ws.prepare_output(100, 5000);
        assert!(ws.total_allocs() > allocs_warm);
        assert!(ws.scratch_bytes() > bytes_warm);
        assert!(ws.peak_scratch_bytes() <= ws.scratch_bytes().max(ws.peak_scratch_bytes()));
    }

    #[test]
    fn stream_scratch_reuse_is_allocation_free() {
        let mut ws: SpGemmWorkspace<u64> = SpGemmWorkspace::new();
        ws.ensure_streams(8);
        let warm = ws.total_allocs();
        ws.ensure_streams(4);
        ws.ensure_streams(8);
        assert_eq!(ws.total_allocs(), warm);
        ws.ensure_streams(64);
        assert!(ws.total_allocs() > warm);
    }

    #[test]
    fn take_output_copies_exact_sizes() {
        let mut ws: SpGemmWorkspace<u64> = SpGemmWorkspace::new();
        ws.prepare_output(2, 8);
        ws.colptr.extend_from_slice(&[0, 1, 2]);
        ws.rowidx.extend_from_slice(&[3, 1]);
        ws.vals.extend_from_slice(&[7, 9]);
        let (c, copied) = ws.take_output(4, 2, true);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.col(0), (&[3u32][..], &[7u64][..]));
        assert_eq!(copied, 3 * 8 + 2 * 4 + 2 * 8);
        // Arena capacity survives the copy-out.
        assert!(ws.rowidx.capacity() >= 8);
    }
}
