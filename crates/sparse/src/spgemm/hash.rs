//! Sort-free "unsorted-hash" SpGEMM — this paper's local kernel (Sec. IV-D).
//!
//! Computes `C(:,j) = Σ_{i : B(i,j)≠0} A(:,i)·B(i,j)` with a hash
//! accumulator per output column. Neither input needs sorted columns and
//! the output columns are left **unsorted**: the distributed pipeline only
//! sorts once, after Merge-Fiber.

use super::accum::HashAccum;
use super::workspace::SpGemmWorkspace;
use super::{WorkStats, C_DRAIN, C_HASH_FLOP};
use crate::csc::CscMatrix;
use crate::semiring::Semiring;
use crate::{Result, SparseError};

/// Multiply `a · b` with hash accumulation; unsorted output columns.
///
/// Works with sorted or unsorted inputs. Returns the product and the work
/// performed (`flops` = scalar multiplications). Convenience wrapper over
/// [`spgemm_hash_unsorted_with_workspace`] with a throwaway workspace; hot
/// paths (one multiply per SUMMA stage per batch) should hold a long-lived
/// [`SpGemmWorkspace`] instead.
pub fn spgemm_hash_unsorted<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
) -> Result<(CscMatrix<S::T>, WorkStats)> {
    spgemm_hash_unsorted_with_workspace::<S>(a, b, &mut SpGemmWorkspace::new())
}

/// [`spgemm_hash_unsorted`] against caller-owned reusable scratch.
///
/// Bit-identical output to the plain entry point (it is the same code);
/// with a warmed-up workspace the call performs only the exact-size output
/// copies instead of re-growing every buffer from empty.
pub fn spgemm_hash_unsorted_with_workspace<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
    ws: &mut SpGemmWorkspace<S::T>,
) -> Result<(CscMatrix<S::T>, WorkStats)> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: (a.ncols(), a.ncols()),
            found: (b.nrows(), b.ncols()),
        });
    }
    let n_out = b.ncols();
    let allocs_before = ws.total_allocs();
    // Arena upper bound: the flop count Σ_j Σ_{i∈B(:,j)} nnz(A(:,i)) also
    // bounds the output nnz (one entry per multiply before accumulation).
    let mut total_ub = 0usize;
    for &i in b.rowidx() {
        total_ub += a.col_nnz(i as usize);
    }
    ws.prepare_output(n_out, total_ub);
    let mut stats = WorkStats::default();
    let acc = ws.accum.get_or_insert_with(|| HashAccum::new(S::zero()));
    ws.colptr.push(0);

    for j in 0..n_out {
        let (b_rows, b_vals) = b.col(j);
        // Upper bound on distinct output rows in this column.
        let mut ub = 0usize;
        for &i in b_rows {
            ub += a.col_nnz(i as usize);
        }
        if ub > 0 {
            acc.reset(ub);
            for (&i, &bv) in b_rows.iter().zip(b_vals.iter()) {
                let (a_rows, a_vals) = a.col(i as usize);
                for (&r, &av) in a_rows.iter().zip(a_vals.iter()) {
                    acc.accumulate::<S>(r, S::mul(av, bv));
                }
            }
            let before = ws.rowidx.len();
            acc.drain_into(&mut ws.rowidx, &mut ws.vals);
            let produced = ws.rowidx.len() - before;
            stats.flops += ub as u64;
            stats.nnz_out += produced as u64;
            stats.work_units += ub as f64 * C_HASH_FLOP + produced as f64 * C_DRAIN;
        }
        ws.colptr.push(ws.rowidx.len());
    }
    // Columns of length ≤ 1 are trivially sorted; keeps the flag honest for
    // degenerate outputs without scanning row indices.
    let sorted = ws.colptr.windows(2).all(|w| w[1] - w[0] <= 1);
    let (c, copied) = ws.take_output(a.nrows(), n_out, sorted);
    stats.allocs = ws.total_allocs() - allocs_before;
    stats.peak_scratch_bytes = ws.peak_scratch_bytes();
    stats.memcpy_bytes = copied;
    crate::debug_validate!(c, crate::Sortedness::Unsorted, "unsorted-hash SpGEMM output");
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::semiring::{BoolOrAnd, PlusTimesF64, PlusTimesU64};
    use crate::spgemm::dense_acc::spgemm_spa;
    use crate::triples::Triples;

    fn small_a() -> CscMatrix<f64> {
        // [[1,2],[3,0]]
        let mut t = Triples::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 3.0);
        t.push(0, 1, 2.0);
        t.to_csc()
    }

    fn small_b() -> CscMatrix<f64> {
        // [[5,0],[6,7]]
        let mut t = Triples::new(2, 2);
        t.push(0, 0, 5.0);
        t.push(1, 0, 6.0);
        t.push(1, 1, 7.0);
        t.to_csc()
    }

    #[test]
    fn small_product_matches_manual() {
        let (c, stats) = spgemm_hash_unsorted::<PlusTimesF64>(&small_a(), &small_b()).unwrap();
        // C = [[17,14],[15,0]]
        let c = c.sorted_copy();
        assert_eq!(c.col(0), (&[0u32, 1][..], &[17.0, 15.0][..]));
        assert_eq!(c.col(1), (&[0u32][..], &[14.0][..]));
        assert_eq!(stats.flops, 4); // 3 + 1 scalar multiplies... (col0: A(:,0)*5 has 2, A(:,1)*6 has 1; col1: A(:,1)*7 has 1)
        assert_eq!(stats.nnz_out, 3);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = CscMatrix::<f64>::zero(2, 3);
        let b = CscMatrix::<f64>::zero(2, 2);
        assert!(spgemm_hash_unsorted::<PlusTimesF64>(&a, &b).is_err());
    }

    #[test]
    fn empty_inputs_give_empty_output() {
        let a = CscMatrix::<f64>::zero(4, 4);
        let b = CscMatrix::<f64>::zero(4, 4);
        let (c, stats) = spgemm_hash_unsorted::<PlusTimesF64>(&a, &b).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!(stats.flops, 0);
    }

    #[test]
    fn matches_spa_oracle_on_random_u64() {
        let a = er_random::<PlusTimesU64>(40, 40, 5, 42).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(40, 40, 5, 43).map(|_| 1u64);
        let (c_hash, _) = spgemm_hash_unsorted::<PlusTimesU64>(&a, &b).unwrap();
        let (c_spa, _) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        assert!(c_hash.eq_modulo_order(&c_spa));
    }

    #[test]
    fn works_with_unsorted_inputs() {
        // Shuffle columns of A, result must be identical.
        let a = CscMatrix::from_parts(3, 2, vec![0, 2, 3], vec![2, 0, 1], vec![1.0, 2.0, 3.0]).unwrap();
        assert!(!a.is_sorted());
        let b = CscMatrix::identity(2);
        let b = CscMatrix::from_parts(2, 2, b.colptr().to_vec(), b.rowidx().to_vec(), b.vals().to_vec()).unwrap();
        let (c, _) = spgemm_hash_unsorted::<PlusTimesF64>(&a, &b).unwrap();
        assert!(c.eq_modulo_order(&a));
    }

    #[test]
    fn boolean_semiring_reachability() {
        // Path 0 -> 1 -> 2: A² should contain (2,0).
        let mut t = Triples::new(3, 3);
        t.push(1, 0, true);
        t.push(2, 1, true);
        let a = t.to_csc();
        let (c, _) = spgemm_hash_unsorted::<BoolOrAnd>(&a, &a).unwrap();
        let c = c.sorted_copy();
        assert_eq!(c.col(0), (&[2u32][..], &[true][..]));
    }

    #[test]
    fn flops_counts_scalar_multiplies() {
        let a = er_random::<PlusTimesF64>(30, 30, 4, 7);
        let b = er_random::<PlusTimesF64>(30, 30, 4, 8);
        let (_, stats) = spgemm_hash_unsorted::<PlusTimesF64>(&a, &b).unwrap();
        // flops = sum over b entries of nnz(A(:, i))
        let mut expect = 0u64;
        for (i, _j, _v) in b.iter() {
            expect += a.col_nnz(i as usize) as u64;
        }
        // note: b.iter() yields (row, col, val) of B; inner index is the row of B
        assert_eq!(stats.flops, expect);
    }
}
