//! Reusable open-addressing hash accumulator.
//!
//! The core data structure behind the paper's sort-free kernels: a linear
//! probing table keyed by row index, reused across output columns (the
//! "workhorse collection" pattern — clearing touches only occupied slots,
//! so a hyper-sparse column doesn't pay for the table's full capacity).

use crate::semiring::Semiring;

const EMPTY: u32 = u32::MAX;

/// Open-addressing (linear probing) accumulator mapping row index → value.
///
/// Capacity is always a power of two sized at least 2× the expected number
/// of distinct keys, keeping the load factor ≤ 0.5.
pub struct HashAccum<T> {
    keys: Vec<u32>,
    vals: Vec<T>,
    /// Slots currently occupied, in insertion order (drain + reset list).
    occupied: Vec<u32>,
    mask: usize,
    /// Total probe steps since construction (cost-model diagnostics).
    probes: u64,
    /// Heap allocations performed by table growth since construction.
    grows: u64,
    fill: T,
}

impl<T> std::fmt::Debug for HashAccum<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashAccum")
            .field("capacity", &self.keys.len())
            .field("occupied", &self.occupied.len())
            .finish_non_exhaustive()
    }
}

impl<T: Copy> HashAccum<T> {
    /// New accumulator. `fill` initializes value slots (any value works; the
    /// `keys` sentinel is authoritative). Typically `S::zero()`.
    pub fn new(fill: T) -> Self {
        HashAccum {
            keys: Vec::new(),
            vals: Vec::new(),
            occupied: Vec::new(),
            mask: 0,
            probes: 0,
            grows: 0,
            fill,
        }
    }

    /// Prepare for a column with at most `expected` distinct keys: grows the
    /// table if needed and clears previous occupancy.
    pub fn reset(&mut self, expected: usize) {
        let want = (expected.max(1) * 2).next_power_of_two();
        if want > self.keys.len() {
            self.keys = vec![EMPTY; want];
            self.vals = vec![self.fill; want];
            self.mask = want - 1;
            // Two fresh buffers (keys + vals); capacity only ever grows.
            self.grows += 2;
        } else {
            for &slot in &self.occupied {
                self.keys[slot as usize] = EMPTY;
            }
        }
        self.occupied.clear();
    }

    /// Number of distinct keys currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.occupied.len()
    }

    /// True if no keys stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// Total linear-probe steps performed so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Heap allocations performed by table growth so far (two buffers per
    /// growth event; never decreases — the table only grows).
    pub fn grows(&self) -> u64 {
        self.grows
    }

    /// Bytes currently held by the table and its occupancy list.
    pub fn footprint_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u32>()
            + self.vals.capacity() * std::mem::size_of::<T>()
            + self.occupied.capacity() * std::mem::size_of::<u32>()
    }

    #[inline]
    fn slot_of(&self, key: u32) -> usize {
        // Fibonacci hashing: good spread for clustered row indices.
        (key.wrapping_mul(0x9E37_79B1) as usize) & self.mask
    }

    /// `table[key] ⊕= val` under semiring `S`.
    #[inline]
    pub fn accumulate<S: Semiring<T = T>>(&mut self, key: u32, val: T) {
        debug_assert_ne!(key, EMPTY, "row index u32::MAX is reserved");
        let mut slot = self.slot_of(key);
        loop {
            self.probes += 1;
            let k = self.keys[slot];
            if k == key {
                self.vals[slot] = S::add(self.vals[slot], val);
                return;
            }
            if k == EMPTY {
                self.keys[slot] = key;
                self.vals[slot] = val;
                self.occupied.push(slot as u32);
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Insert a key for symbolic (structure-only) counting.
    #[inline]
    pub fn insert_key(&mut self, key: u32) {
        debug_assert_ne!(key, EMPTY);
        let mut slot = self.slot_of(key);
        loop {
            self.probes += 1;
            let k = self.keys[slot];
            if k == key {
                return;
            }
            if k == EMPTY {
                self.keys[slot] = key;
                self.occupied.push(slot as u32);
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Append stored `(key, value)` pairs to the output vectors in
    /// *insertion* order (unsorted — the whole point of the sort-free
    /// kernels), then leave the table ready for reuse via [`Self::reset`].
    pub fn drain_into(&mut self, rows: &mut Vec<u32>, vals: &mut Vec<T>) {
        for &slot in &self.occupied {
            rows.push(self.keys[slot as usize]);
            vals.push(self.vals[slot as usize]);
        }
    }

    /// Append stored `(key, value)` pairs sorted ascending by key.
    ///
    /// Allocation-free: the occupancy list is sorted by key in place and
    /// then drained in that order. Reordering `occupied` is safe — its
    /// insertion order only matters to [`Self::drain_into`], and after a
    /// drain the next [`Self::reset`] clears it regardless of order.
    pub fn drain_into_sorted(&mut self, rows: &mut Vec<u32>, vals: &mut Vec<T>) {
        let keys = &self.keys;
        self.occupied
            .sort_unstable_by_key(|&slot| keys[slot as usize]);
        self.drain_into(rows, vals);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{PlusTimesF64, PlusTimesU64};

    #[test]
    fn accumulate_combines_duplicates() {
        let mut acc = HashAccum::new(0.0);
        acc.reset(4);
        acc.accumulate::<PlusTimesF64>(7, 1.0);
        acc.accumulate::<PlusTimesF64>(7, 2.0);
        acc.accumulate::<PlusTimesF64>(3, 5.0);
        assert_eq!(acc.len(), 2);
        let (mut r, mut v) = (Vec::new(), Vec::new());
        acc.drain_into_sorted(&mut r, &mut v);
        assert_eq!(r, vec![3, 7]);
        assert_eq!(v, vec![5.0, 3.0]);
    }

    #[test]
    fn reset_clears_only_occupied() {
        let mut acc = HashAccum::new(0u64);
        acc.reset(8);
        for k in 0..8 {
            acc.accumulate::<PlusTimesU64>(k, 1);
        }
        acc.reset(8);
        assert!(acc.is_empty());
        acc.accumulate::<PlusTimesU64>(3, 9);
        let (mut r, mut v) = (Vec::new(), Vec::new());
        acc.drain_into(&mut r, &mut v);
        assert_eq!(r, vec![3]);
        assert_eq!(v, vec![9]);
    }

    #[test]
    fn grows_when_expected_exceeds_capacity() {
        let mut acc = HashAccum::new(0u64);
        acc.reset(2);
        acc.reset(1000);
        for k in 0..1000 {
            acc.insert_key(k);
        }
        assert_eq!(acc.len(), 1000);
    }

    #[test]
    fn collision_heavy_keys_all_stored() {
        // Keys that collide under the multiplier still resolve by probing.
        let mut acc = HashAccum::new(0u64);
        acc.reset(64);
        for i in 0..64u32 {
            acc.accumulate::<PlusTimesU64>(i * 64, 1);
        }
        assert_eq!(acc.len(), 64);
        assert!(acc.probes() >= 64);
    }

    #[test]
    fn growth_and_footprint_are_tracked() {
        let mut acc = HashAccum::new(0u64);
        assert_eq!(acc.grows(), 0);
        acc.reset(4);
        assert_eq!(acc.grows(), 2, "first reset allocates keys + vals");
        acc.reset(4);
        assert_eq!(acc.grows(), 2, "reuse at same size must not allocate");
        acc.reset(1000);
        assert_eq!(acc.grows(), 4, "growing past capacity reallocates");
        // 1000 keys → 2048-slot table: keys and vals are 8 bytes per slot.
        assert!(acc.footprint_bytes() >= 2048 * (4 + 8));
    }

    #[test]
    fn sorted_drain_after_reuse_stays_sorted() {
        // Reordering `occupied` in a sorted drain must not corrupt later
        // resets or drains on the same table.
        let mut acc = HashAccum::new(0u64);
        for round in 0..3u64 {
            acc.reset(16);
            for k in [9u32, 2, 14, 2, 5] {
                acc.accumulate::<PlusTimesU64>(k, round + 1);
            }
            let (mut r, mut v) = (Vec::new(), Vec::new());
            acc.drain_into_sorted(&mut r, &mut v);
            assert_eq!(r, vec![2, 5, 9, 14], "round {round}");
            assert_eq!(v, vec![2 * (round + 1), round + 1, round + 1, round + 1]);
        }
    }

    #[test]
    fn insertion_order_drain_is_unsorted_but_complete() {
        let mut acc = HashAccum::new(0.0);
        acc.reset(4);
        acc.accumulate::<PlusTimesF64>(9, 1.0);
        acc.accumulate::<PlusTimesF64>(2, 2.0);
        acc.accumulate::<PlusTimesF64>(5, 3.0);
        let (mut r, mut v) = (Vec::new(), Vec::new());
        acc.drain_into(&mut r, &mut v);
        assert_eq!(r, vec![9, 2, 5]); // insertion order
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }
}
