//! ESC (expand–sort–compress) SpGEMM.
//!
//! The accumulator style favoured by GPU SpGEMM work the paper surveys
//! (\[23, 26, 28\]): per output column, *expand* all scaled entries into a
//! buffer, *sort* the buffer by row index, and *compress* runs of equal
//! rows with the semiring add. Simple and branch-light, at the cost of an
//! `O(flops·lg flops)` sort per column. Included as a third accumulator
//! baseline alongside heap and hash for the kernel-comparison benches.

use super::{lg, WorkStats, C_SORT};
use crate::csc::CscMatrix;
use crate::semiring::Semiring;
use crate::{Result, SparseError};

/// Multiply `a · b` by expand–sort–compress. Sorted output columns; works
/// with unsorted inputs.
pub fn spgemm_esc<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
) -> Result<(CscMatrix<S::T>, WorkStats)> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: (a.ncols(), a.ncols()),
            found: (b.nrows(), b.ncols()),
        });
    }
    let n_out = b.ncols();
    let mut colptr = vec![0usize; n_out + 1];
    let mut rowidx: Vec<u32> = Vec::new();
    let mut vals: Vec<S::T> = Vec::new();
    let mut buffer: Vec<(u32, S::T)> = Vec::new();
    let mut stats = WorkStats::default();

    for j in 0..n_out {
        let (b_rows, b_vals) = b.col(j);
        buffer.clear();
        // Expand.
        for (&i, &bv) in b_rows.iter().zip(b_vals.iter()) {
            let (a_rows, a_vals) = a.col(i as usize);
            for (&r, &av) in a_rows.iter().zip(a_vals.iter()) {
                buffer.push((r, S::mul(av, bv)));
            }
        }
        let flops = buffer.len();
        // Sort.
        buffer.sort_unstable_by_key(|&(r, _)| r);
        // Compress.
        let col_start = rowidx.len();
        for &(r, v) in buffer.iter() {
            match rowidx.last() {
                Some(&last) if last == r && rowidx.len() > col_start => {
                    let dst = vals.last_mut().unwrap();
                    *dst = S::add(*dst, v);
                }
                _ => {
                    rowidx.push(r);
                    vals.push(v);
                }
            }
        }
        let produced = rowidx.len() - col_start;
        stats.flops += flops as u64;
        stats.nnz_out += produced as u64;
        stats.work_units += flops as f64 * (1.0 + lg(flops) * C_SORT);
        colptr[j + 1] = rowidx.len();
    }
    let c = CscMatrix::from_parts_unchecked(a.nrows(), n_out, colptr, rowidx, vals, true);
    crate::debug_validate!(c, crate::Sortedness::Sorted, "ESC SpGEMM output");
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::semiring::{PlusTimesF64, PlusTimesU64};
    use crate::spgemm::dense_acc::spgemm_spa;
    use crate::spgemm::hash::spgemm_hash_unsorted;

    #[test]
    fn matches_oracle() {
        let a = er_random::<PlusTimesU64>(70, 70, 6, 201).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(70, 70, 6, 202).map(|_| 1u64);
        let (oracle, ostats) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        let (esc, stats) = spgemm_esc::<PlusTimesU64>(&a, &b).unwrap();
        assert!(esc.eq_modulo_order(&oracle));
        assert!(esc.is_sorted());
        assert_eq!(stats.flops, ostats.flops);
        assert_eq!(stats.nnz_out, oracle.nnz() as u64);
    }

    #[test]
    fn accepts_unsorted_inputs() {
        let a = CscMatrix::from_parts(3, 2, vec![0, 2, 3], vec![2, 0, 1], vec![1.0, 2.0, 3.0]).unwrap();
        assert!(!a.is_sorted());
        let b = CscMatrix::identity(2);
        let (c, _) = spgemm_esc::<PlusTimesF64>(&a, &b).unwrap();
        assert!(c.eq_modulo_order(&a));
    }

    #[test]
    fn esc_costs_more_work_units_than_hash() {
        let a = er_random::<PlusTimesF64>(120, 120, 10, 203);
        let b = er_random::<PlusTimesF64>(120, 120, 10, 204);
        let (_, esc) = spgemm_esc::<PlusTimesF64>(&a, &b).unwrap();
        let (_, hash) = spgemm_hash_unsorted::<PlusTimesF64>(&a, &b).unwrap();
        assert!(esc.work_units > hash.work_units);
    }

    #[test]
    fn empty_product() {
        let a = CscMatrix::<f64>::zero(4, 4);
        let (c, stats) = spgemm_esc::<PlusTimesF64>(&a, &a).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!(stats.flops, 0);
    }
}
