//! Doubly compressed sparse column (DCSC) storage for hypersparse
//! matrices.
//!
//! At extreme scale the 3D distribution makes local blocks *hypersparse*:
//! `nnz ≪ ncols`, so CSC's `O(ncols)` column-pointer array dwarfs the data
//! (on a `√(p/l) × √(p/l) × l` grid a local block has `n/√(pl)` columns
//! but only `nnz/p` entries). CombBLAS — the substrate of the paper's
//! implementation — stores such blocks doubly compressed (Buluç & Gilbert):
//! only non-empty columns keep a pointer, found by binary search or a
//! merge-style scan.
//!
//! This type interoperates with the CSC kernels through cheap conversions
//! and offers a hypersparse-aware SpGEMM (`spgemm_hash_dcsc`) that never
//! touches empty columns of either operand.

use crate::csc::CscMatrix;
use crate::semiring::Semiring;
use crate::spgemm::accum::HashAccum;
use crate::spgemm::{WorkStats, C_DRAIN, C_HASH_FLOP};
use crate::{Result, SparseError};

/// A sparse matrix storing pointers only for its non-empty columns.
#[derive(Debug, Clone, PartialEq)]
pub struct DcscMatrix<T> {
    nrows: usize,
    ncols: usize,
    /// Global ids of non-empty columns, strictly ascending.
    jc: Vec<u32>,
    /// `colptr[k]..colptr[k+1]` indexes column `jc[k]`'s entries.
    colptr: Vec<usize>,
    rowidx: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Copy> DcscMatrix<T> {
    /// Compress a CSC matrix (drops empty columns' pointers).
    pub fn from_csc(m: &CscMatrix<T>) -> Self {
        let mut jc = Vec::new();
        let mut colptr = vec![0usize];
        let mut rowidx = Vec::with_capacity(m.nnz());
        let mut vals = Vec::with_capacity(m.nnz());
        for j in 0..m.ncols() {
            let (rows, vs) = m.col(j);
            if !rows.is_empty() {
                jc.push(j as u32);
                rowidx.extend_from_slice(rows);
                vals.extend_from_slice(vs);
                colptr.push(rowidx.len());
            }
        }
        DcscMatrix {
            nrows: m.nrows(),
            ncols: m.ncols(),
            jc,
            colptr,
            rowidx,
            vals,
        }
    }

    /// Expand back to plain CSC.
    pub fn to_csc(&self) -> CscMatrix<T> {
        let mut colptr = vec![0usize; self.ncols + 1];
        for (k, &j) in self.jc.iter().enumerate() {
            colptr[j as usize + 1] = self.colptr[k + 1] - self.colptr[k];
        }
        for j in 0..self.ncols {
            colptr[j + 1] += colptr[j];
        }
        CscMatrix::from_parts_unchecked(
            self.nrows,
            self.ncols,
            colptr,
            self.rowidx.clone(),
            self.vals.clone(),
            false,
        )
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of (logical) columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Number of non-empty columns.
    pub fn nzc(&self) -> usize {
        self.jc.len()
    }

    /// Hypersparsity ratio `nzc / ncols` (≪ 1 means CSC would waste its
    /// column-pointer array).
    pub fn fill_ratio(&self) -> f64 {
        if self.ncols == 0 {
            return 0.0;
        }
        self.nzc() as f64 / self.ncols as f64
    }

    /// The `k`-th non-empty column: `(global column id, rows, values)`.
    pub fn nz_col(&self, k: usize) -> (u32, &[u32], &[T]) {
        let r = self.colptr[k]..self.colptr[k + 1];
        (self.jc[k], &self.rowidx[r.clone()], &self.vals[r])
    }

    /// Look up a column by global id (binary search over `jc`).
    pub fn col(&self, j: usize) -> Option<(&[u32], &[T])> {
        self.jc.binary_search(&(j as u32)).ok().map(|k| {
            let r = self.colptr[k]..self.colptr[k + 1];
            (&self.rowidx[r.clone()], &self.vals[r])
        })
    }

    /// Iterate `(row, col, value)` over stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (u32, usize, T)> + '_ {
        (0..self.nzc()).flat_map(move |k| {
            let (j, rows, vals) = self.nz_col(k);
            rows.iter()
                .zip(vals.iter())
                .map(move |(&r, &v)| (r, j as usize, v))
        })
    }

    /// Assemble from raw arrays without validation — the caller vouches
    /// for the invariants (or runs
    /// [`crate::validate::Validate::validate`] afterwards, as the
    /// corruption tests do). Debug builds spot-check array lengths only.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        jc: Vec<u32>,
        colptr: Vec<usize>,
        rowidx: Vec<u32>,
        vals: Vec<T>,
    ) -> Self {
        debug_assert_eq!(colptr.len(), jc.len() + 1);
        debug_assert_eq!(rowidx.len(), vals.len());
        DcscMatrix {
            nrows,
            ncols,
            jc,
            colptr,
            rowidx,
            vals,
        }
    }

    /// Global ids of the non-empty columns (strictly ascending).
    pub fn jc(&self) -> &[u32] {
        &self.jc
    }

    /// Column pointers over the non-empty columns:
    /// `colptr[k]..colptr[k+1]` indexes column `jc[k]`'s entries.
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// All row indices, column-major over the non-empty columns.
    pub fn rowidx(&self) -> &[u32] {
        &self.rowidx
    }

    /// All values, aligned with [`DcscMatrix::rowidx`].
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// Actual storage bytes of this representation (indices + pointers +
    /// values), for comparing against CSC's `O(ncols)` pointer cost.
    pub fn storage_bytes(&self) -> usize {
        self.jc.len() * 4 + self.colptr.len() * 8 + self.rowidx.len() * 4 + self.vals.len() * std::mem::size_of::<T>()
    }

    /// Storage bytes a CSC copy of this matrix would need.
    pub fn csc_storage_bytes(&self) -> usize {
        (self.ncols + 1) * 8 + self.rowidx.len() * 4 + self.vals.len() * std::mem::size_of::<T>()
    }
}

/// Hypersparse SpGEMM: `C = A·B` over DCSC operands, visiting only
/// non-empty columns of `B` and, within each, only non-empty columns of
/// `A` (via binary search). Unsorted output, like the paper's sort-free
/// kernel.
pub fn spgemm_hash_dcsc<S: Semiring>(
    a: &DcscMatrix<S::T>,
    b: &DcscMatrix<S::T>,
) -> Result<(DcscMatrix<S::T>, WorkStats)> {
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: (a.ncols(), a.ncols()),
            found: (b.nrows(), b.ncols()),
        });
    }
    let mut jc = Vec::new();
    let mut colptr = vec![0usize];
    let mut rowidx = Vec::new();
    let mut vals = Vec::new();
    let mut acc: HashAccum<S::T> = HashAccum::new(S::zero());
    let mut stats = WorkStats::default();
    for k in 0..b.nzc() {
        let (j, b_rows, b_vals) = b.nz_col(k);
        let mut ub = 0usize;
        for &i in b_rows {
            if let Some((a_rows, _)) = a.col(i as usize) {
                ub += a_rows.len();
            }
        }
        if ub == 0 {
            continue;
        }
        acc.reset(ub);
        for (&i, &bv) in b_rows.iter().zip(b_vals.iter()) {
            if let Some((a_rows, a_vals)) = a.col(i as usize) {
                for (&r, &av) in a_rows.iter().zip(a_vals.iter()) {
                    acc.accumulate::<S>(r, S::mul(av, bv));
                }
            }
        }
        let before = rowidx.len();
        acc.drain_into(&mut rowidx, &mut vals);
        let produced = rowidx.len() - before;
        if produced > 0 {
            jc.push(j);
            colptr.push(rowidx.len());
        }
        stats.flops += ub as u64;
        stats.nnz_out += produced as u64;
        stats.work_units += ub as f64 * C_HASH_FLOP + produced as f64 * C_DRAIN;
    }
    let c = DcscMatrix {
        nrows: a.nrows(),
        ncols: b.ncols(),
        jc,
        colptr,
        rowidx,
        vals,
    };
    crate::debug_validate!(c, crate::Sortedness::Unsorted, "hypersparse hash SpGEMM output");
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::semiring::{PlusTimesF64, PlusTimesU64};
    use crate::spgemm::spgemm_spa;
    use crate::Triples;

    fn hypersparse(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> CscMatrix<u64> {
        // Far fewer entries than columns.
        let mut t = Triples::new(nrows, ncols);
        let mut x = seed;
        for _ in 0..nnz {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (x >> 33) as usize % nrows;
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = (x >> 33) as usize % ncols;
            t.push(r as u32, c as u32, 1);
        }
        t.to_csc_dedup::<PlusTimesU64>()
    }

    #[test]
    fn roundtrip_csc_dcsc() {
        let m = er_random::<PlusTimesF64>(40, 60, 2, 91);
        let d = DcscMatrix::from_csc(&m);
        assert_eq!(d.nnz(), m.nnz());
        assert!(d.to_csc().eq_modulo_order(&m));
    }

    #[test]
    fn hypersparse_roundtrip_and_fill_ratio() {
        let m = hypersparse(1000, 10_000, 50, 1);
        let d = DcscMatrix::from_csc(&m);
        assert!(d.fill_ratio() < 0.01);
        assert!(d.to_csc().eq_modulo_order(&m));
    }

    #[test]
    fn storage_wins_for_hypersparse() {
        let m = hypersparse(1000, 100_000, 200, 2);
        let d = DcscMatrix::from_csc(&m);
        assert!(
            d.storage_bytes() * 10 < d.csc_storage_bytes(),
            "DCSC {} vs CSC {}",
            d.storage_bytes(),
            d.csc_storage_bytes()
        );
    }

    #[test]
    fn column_lookup() {
        let mut t = Triples::new(5, 100);
        t.push(2, 50, 7.0);
        t.push(4, 99, 3.0);
        let d = DcscMatrix::from_csc(&t.to_csc());
        assert_eq!(d.nzc(), 2);
        assert_eq!(d.col(50), Some((&[2u32][..], &[7.0][..])));
        assert_eq!(d.col(51), None);
        let (j, rows, _) = d.nz_col(1);
        assert_eq!(j, 99);
        assert_eq!(rows, &[4]);
    }

    #[test]
    fn dcsc_spgemm_matches_csc_kernels() {
        let a = hypersparse(80, 80, 120, 3);
        let b = hypersparse(80, 80, 120, 4);
        let (oracle, ostats) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        let (dc, stats) =
            spgemm_hash_dcsc::<PlusTimesU64>(&DcscMatrix::from_csc(&a), &DcscMatrix::from_csc(&b))
                .unwrap();
        assert!(dc.to_csc().eq_modulo_order(&oracle));
        assert_eq!(stats.flops, ostats.flops);
        assert_eq!(stats.nnz_out, oracle.nnz() as u64);
    }

    #[test]
    fn dcsc_spgemm_empty_result() {
        // A's non-empty columns never intersect B's row indices.
        let mut ta = Triples::new(10, 10);
        ta.push(0, 9, 1u64);
        let mut tb = Triples::new(10, 10);
        tb.push(0, 0, 1u64);
        let (c, stats) = spgemm_hash_dcsc::<PlusTimesU64>(
            &DcscMatrix::from_csc(&ta.to_csc()),
            &DcscMatrix::from_csc(&tb.to_csc()),
        )
        .unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!(stats.flops, 0);
    }

    #[test]
    fn iter_visits_all_entries() {
        let m = hypersparse(50, 500, 40, 5);
        let d = DcscMatrix::from_csc(&m);
        let mut from_d: Vec<_> = d.iter().collect();
        let mut from_m: Vec<_> = m.iter().collect();
        from_d.sort_by_key(|&(r, c, _)| (c, r));
        from_m.sort_by_key(|&(r, c, _)| (c, r));
        assert_eq!(from_d.len(), from_m.len());
        for (x, y) in from_d.iter().zip(from_m.iter()) {
            assert_eq!((x.0, x.1), (y.0, y.1));
        }
    }
}
