//! Dense operand support: column-major blocks and the sparse×dense
//! (SpMM) accumulation kernel.
//!
//! The 1.5D communication-avoiding algorithms (ColA / InnerABC) multiply a
//! sparse `A` by a **dense** `B` — the iterative-feature-propagation /
//! embedding workload class. [`DenseBlock`] is their operand type:
//! column-major (so one output column is contiguous, like a CSC column),
//! `u32`-free, and cheap to slice into the row/column stripes the 1.5D
//! data distributions use. [`Operand`] wraps either representation so the
//! distributed layers can accept both without duplicating entry points.
//!
//! Memory discipline mirrors the sparse kernels: a long-lived
//! [`crate::SpGemmWorkspace`] can back a block's buffer
//! ([`DenseBlock::with_workspace`]), so repeated leases across iterations
//! or shift rounds reuse one arena instead of reallocating.

use crate::csc::CscMatrix;
use crate::semiring::Semiring;
use crate::spgemm::{SpGemmWorkspace, WorkStats, C_SPMM_FLOP};
use crate::{Result, SparseError};
use std::ops::Range;

/// A dense matrix block in column-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseBlock<T> {
    nrows: usize,
    ncols: usize,
    /// Column-major: entry `(i, j)` lives at `data[j * nrows + i]`.
    data: Vec<T>,
}

impl<T: Copy> DenseBlock<T> {
    /// A block with every entry set to `fill` (a semiring's zero, usually).
    pub fn new_fill(nrows: usize, ncols: usize, fill: T) -> Self {
        DenseBlock {
            nrows,
            ncols,
            data: vec![fill; nrows * ncols],
        }
    }

    /// A filled block whose buffer is leased from `ws`'s dense arena —
    /// repeated construction (per shift round, per iteration) reuses one
    /// allocation. Return the buffer with [`DenseBlock::into_workspace`].
    pub fn with_workspace(nrows: usize, ncols: usize, fill: T, ws: &mut SpGemmWorkspace<T>) -> Self {
        DenseBlock {
            nrows,
            ncols,
            data: ws.lease_dense(nrows * ncols, fill),
        }
    }

    /// Give the buffer back to `ws`'s dense arena for the next lease.
    pub fn into_workspace(self, ws: &mut SpGemmWorkspace<T>) {
        ws.restore_dense(self.data);
    }

    /// Build from a generator called as `f(i, j)` in column-major order.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for j in 0..ncols {
            for i in 0..nrows {
                data.push(f(i, j));
            }
        }
        DenseBlock { nrows, ncols, data }
    }

    /// Build from raw column-major data (`data.len() == nrows * ncols`).
    pub fn from_raw(nrows: usize, ncols: usize, data: Vec<T>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(SparseError::InvalidStructure(format!(
                "dense data length {} != nrows*ncols = {}",
                data.len(),
                nrows * ncols
            )));
        }
        Ok(DenseBlock { nrows, ncols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        self.data[j * self.nrows + i]
    }

    /// Set entry `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        self.data[j * self.nrows + i] = v;
    }

    /// Column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// The raw column-major buffer.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Consume into the raw column-major buffer.
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    /// Copy out the column range `cols` as a new block (all rows).
    pub fn col_slice(&self, cols: Range<usize>) -> DenseBlock<T> {
        debug_assert!(cols.end <= self.ncols);
        DenseBlock {
            nrows: self.nrows,
            ncols: cols.len(),
            data: self.data[cols.start * self.nrows..cols.end * self.nrows].to_vec(),
        }
    }

    /// Copy out the row range `rows` as a new block (all columns).
    pub fn row_slice(&self, rows: Range<usize>) -> DenseBlock<T> {
        debug_assert!(rows.end <= self.nrows);
        let mut data = Vec::with_capacity(rows.len() * self.ncols);
        for j in 0..self.ncols {
            data.extend_from_slice(&self.data[j * self.nrows + rows.start..j * self.nrows + rows.end]);
        }
        DenseBlock {
            nrows: rows.len(),
            ncols: self.ncols,
            data,
        }
    }

    /// Modeled bytes of the block (one scalar slot per entry — dense
    /// storage has no index overhead, unlike the sparse `r`-bytes-per-nnz
    /// model).
    pub fn modeled_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Densify a sparse matrix: zero-fill (`S::zero()`) plus stored
    /// entries. Duplicate coordinates are combined with `S::add`.
    pub fn from_csc<S: Semiring<T = T>>(m: &CscMatrix<T>) -> Self {
        let mut d = DenseBlock::new_fill(m.nrows(), m.ncols(), S::zero());
        for (i, j, v) in m.iter() {
            let slot = &mut d.data[j * d.nrows + i as usize];
            *slot = S::add(*slot, v);
        }
        d
    }

    /// Sparsify: drop entries `S::is_zero` reports as zero. Columns come
    /// out sorted (row-ascending) by construction.
    pub fn to_csc<S: Semiring<T = T>>(&self) -> CscMatrix<T> {
        let mut colptr = vec![0usize; self.ncols + 1];
        let mut rowidx: Vec<u32> = Vec::new();
        let mut vals: Vec<T> = Vec::new();
        for j in 0..self.ncols {
            for (i, &v) in self.col(j).iter().enumerate() {
                if !S::is_zero(v) {
                    rowidx.push(i as u32);
                    vals.push(v);
                }
            }
            colptr[j + 1] = rowidx.len();
        }
        CscMatrix::from_parts_unchecked(self.nrows, self.ncols, colptr, rowidx, vals, true)
    }
}

/// Either operand representation, for entry points that accept both.
#[derive(Debug, Clone)]
pub enum Operand<T: Copy> {
    /// Compressed sparse column.
    Sparse(CscMatrix<T>),
    /// Column-major dense.
    Dense(DenseBlock<T>),
}

impl<T: Copy> Operand<T> {
    /// Number of rows.
    pub fn nrows(&self) -> usize {
        match self {
            Operand::Sparse(m) => m.nrows(),
            Operand::Dense(d) => d.nrows(),
        }
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        match self {
            Operand::Sparse(m) => m.ncols(),
            Operand::Dense(d) => d.ncols(),
        }
    }

    /// Stored entries: `nnz` for sparse, every slot for dense.
    pub fn stored_entries(&self) -> usize {
        match self {
            Operand::Sparse(m) => m.nnz(),
            Operand::Dense(d) => d.nrows() * d.ncols(),
        }
    }

    /// Modeled bytes under the sparse `r`-bytes-per-nnz model for sparse
    /// operands, scalar bytes for dense ones.
    pub fn modeled_bytes(&self, r: usize) -> usize {
        match self {
            Operand::Sparse(m) => m.modeled_bytes(r),
            Operand::Dense(d) => d.modeled_bytes(),
        }
    }

    /// Force a dense representation (densifying sparse via `S::zero`).
    pub fn to_dense<S: Semiring<T = T>>(&self) -> DenseBlock<T> {
        match self {
            Operand::Sparse(m) => DenseBlock::from_csc::<S>(m),
            Operand::Dense(d) => d.clone(),
        }
    }

    /// Force a sparse representation (dropping `S::is_zero` entries).
    pub fn to_sparse<S: Semiring<T = T>>(&self) -> CscMatrix<T> {
        match self {
            Operand::Sparse(m) => m.clone(),
            Operand::Dense(d) => d.to_csc::<S>(),
        }
    }
}

/// SpMM accumulation: `C += A · B[b_row_offset.., :]` over semiring `S`.
///
/// `A` is a sparse block whose columns index rows
/// `b_row_offset..b_row_offset + ncols(A)` of `b`; `c` must have
/// `nrows(A)` rows and `ncols(b)` columns and is accumulated **in place**
/// (the 1.5D drivers call this once per shift round, with the same `c`).
///
/// For each dense column the kernel walks `A` column-by-column and
/// scatters `A(:,k) · b(k, j)` into the dense output column — Gustavson
/// with a dense accumulator that *is* the output, so there is no merge or
/// drain step. Accumulation order is deterministic: ascending `k`, then
/// `A`'s stored order within a column.
pub fn spmm_acc<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &DenseBlock<S::T>,
    b_row_offset: usize,
    c: &mut DenseBlock<S::T>,
) -> Result<WorkStats> {
    if b_row_offset + a.ncols() > b.nrows() {
        return Err(SparseError::DimensionMismatch {
            expected: (b_row_offset + a.ncols(), b.ncols()),
            found: (b.nrows(), b.ncols()),
        });
    }
    if c.nrows() != a.nrows() || c.ncols() != b.ncols() {
        return Err(SparseError::DimensionMismatch {
            expected: (a.nrows(), b.ncols()),
            found: (c.nrows(), c.ncols()),
        });
    }
    let mut stats = WorkStats::default();
    for j in 0..b.ncols() {
        let bcol = b.col(j);
        let ccol = c.col_mut(j);
        for k in 0..a.ncols() {
            let bv = bcol[b_row_offset + k];
            if S::is_zero(bv) {
                continue;
            }
            let (rows, vals) = a.col(k);
            stats.flops += rows.len() as u64;
            for (&i, &av) in rows.iter().zip(vals.iter()) {
                let slot = &mut ccol[i as usize];
                *slot = S::add(*slot, S::mul(av, bv));
            }
        }
    }
    stats.nnz_out = (c.nrows() * c.ncols()) as u64;
    stats.work_units = stats.flops as f64 * C_SPMM_FLOP;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::semiring::{MinPlusF64, PlusTimesF64, PlusTimesU64};
    use crate::spgemm::spgemm_spa;

    #[test]
    fn roundtrip_csc_dense_csc() {
        let m = er_random::<PlusTimesF64>(13, 9, 3, 5);
        let d = DenseBlock::from_csc::<PlusTimesF64>(&m);
        assert_eq!((d.nrows(), d.ncols()), (13, 9));
        let back = d.to_csc::<PlusTimesF64>();
        assert!(back.eq_modulo_order(&m));
    }

    #[test]
    fn minplus_zero_is_infinity() {
        // MinPlus zero is +∞: densify fills with ∞ and sparsify drops it.
        let m = er_random::<MinPlusF64>(8, 8, 2, 7);
        let d = DenseBlock::from_csc::<MinPlusF64>(&m);
        let back = d.to_csc::<MinPlusF64>();
        assert!(back.eq_modulo_order(&m));
        assert!(d.get(0, 0).is_infinite() || m.col(0).0.contains(&0));
    }

    #[test]
    fn spmm_matches_spa_on_densified_b() {
        let a = er_random::<PlusTimesU64>(20, 16, 3, 11).map(|_| 3u64);
        let b_sparse = er_random::<PlusTimesU64>(16, 6, 4, 12).map(|_| 2u64);
        let (reference, _) = spgemm_spa::<PlusTimesU64>(&a, &b_sparse).unwrap();
        let b = DenseBlock::from_csc::<PlusTimesU64>(&b_sparse);
        let mut c = DenseBlock::new_fill(20, 6, 0u64);
        let stats = spmm_acc::<PlusTimesU64>(&a, &b, 0, &mut c).unwrap();
        assert!(stats.flops > 0);
        let c_sparse = c.to_csc::<PlusTimesU64>();
        assert!(c_sparse.eq_modulo_order(&reference));
    }

    #[test]
    fn spmm_accumulates_block_splits() {
        // Splitting A into column blocks and accumulating must equal one
        // full multiply — the 1.5D shift-round invariant.
        let a = er_random::<PlusTimesU64>(18, 12, 3, 21).map(|_| 1u64);
        let b = DenseBlock::from_fn(12, 5, |i, j| ((i * 5 + j) % 7) as u64);
        let mut whole = DenseBlock::new_fill(18, 5, 0u64);
        spmm_acc::<PlusTimesU64>(&a, &b, 0, &mut whole).unwrap();
        let mut split = DenseBlock::new_fill(18, 5, 0u64);
        for (k, blk) in crate::ops::col_split_blocks(&a, 3).iter().enumerate() {
            let range = crate::ops::block_range(12, 3, k);
            spmm_acc::<PlusTimesU64>(blk, &b, range.start, &mut split).unwrap();
        }
        assert_eq!(whole, split);
    }

    #[test]
    fn slices_are_consistent() {
        let d = DenseBlock::from_fn(6, 4, |i, j| (i * 10 + j) as u64);
        let rows = d.row_slice(2..5);
        assert_eq!((rows.nrows(), rows.ncols()), (3, 4));
        assert_eq!(rows.get(0, 1), 21);
        let cols = d.col_slice(1..3);
        assert_eq!((cols.nrows(), cols.ncols()), (6, 2));
        assert_eq!(cols.get(4, 0), 41);
    }

    #[test]
    fn workspace_lease_reuses_buffer() {
        let mut ws = SpGemmWorkspace::<u64>::new();
        let d = DenseBlock::with_workspace(4, 4, 7u64, &mut ws);
        assert!(d.data().iter().all(|&v| v == 7));
        d.into_workspace(&mut ws);
        let allocs_before = ws.total_allocs();
        let d2 = DenseBlock::with_workspace(4, 3, 1u64, &mut ws);
        assert_eq!(ws.total_allocs(), allocs_before, "re-lease must not allocate");
        assert!(d2.data().iter().all(|&v| v == 1));
    }

    #[test]
    fn operand_unifies_shapes() {
        let m = er_random::<PlusTimesF64>(10, 7, 2, 31);
        let nnz = m.nnz();
        let s = Operand::Sparse(m.clone());
        let d = Operand::Dense(DenseBlock::from_csc::<PlusTimesF64>(&m));
        assert_eq!((s.nrows(), s.ncols()), (10, 7));
        assert_eq!((d.nrows(), d.ncols()), (10, 7));
        assert_eq!(s.stored_entries(), nnz);
        assert_eq!(d.stored_entries(), 70);
        assert!(d.to_sparse::<PlusTimesF64>().eq_modulo_order(&m));
        assert!(s.to_dense::<PlusTimesF64>().to_csc::<PlusTimesF64>().eq_modulo_order(&m));
    }

    #[test]
    fn bad_shapes_rejected() {
        let a = CscMatrix::<u64>::zero(4, 3);
        let b = DenseBlock::new_fill(2, 2, 0u64);
        let mut c = DenseBlock::new_fill(4, 2, 0u64);
        assert!(spmm_acc::<PlusTimesU64>(&a, &b, 0, &mut c).is_err());
        assert!(DenseBlock::from_raw(2, 2, vec![0u64; 3]).is_err());
    }
}
