//! Column-subset extraction and reassembly for sparsity-aware exchange.
//!
//! The `SparseFetch` exchange strategy (see `spgemm_core::exchange`) ships
//! only the stage-operand columns a receiver will actually touch: the
//! receiver derives its needed-column set from the row structure of its
//! other operand ([`needed_rows`]), the owner extracts exactly those
//! columns into a compact wire form ([`extract_cols_compact`]), and the
//! receiver scatters the reply back into a full-width operand
//! ([`scatter_cols_padded`]) so downstream kernels see the same shape a
//! dense broadcast would have produced — with every untouched column empty.
//!
//! The hot per-stage scratch (a stamp-versioned row-mark table) lives in a
//! caller-owned [`SubsetWorkspace`] with monotone capacity, so steady-state
//! stages allocate nothing for the derivation step.

use crate::csc::CscMatrix;
use crate::ops::extract_cols;

/// Reusable scratch for [`needed_rows`]: a stamp-versioned mark table.
///
/// Capacity grows monotonically to the largest row count seen; resetting
/// between calls is O(1) (bump the epoch) rather than O(rows).
#[derive(Debug, Default)]
pub struct SubsetWorkspace {
    marks: Vec<u64>,
    epoch: u64,
}

impl SubsetWorkspace {
    /// An empty workspace; arenas grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn begin(&mut self, rows: usize) -> &mut Vec<u64> {
        if self.marks.len() < rows {
            self.marks.resize(rows, 0);
        }
        self.epoch += 1;
        &mut self.marks
    }
}

/// The sorted distinct row indices occupied by `m`.
///
/// When `m` is the local piece of the *other* operand of a multiply
/// `A·B`, these rows are exactly the columns of the stage operand `A`
/// that the local kernel will read — the needed-column set a
/// `SparseFetch` receiver posts to the stage owner.
pub fn needed_rows<T: Copy>(m: &CscMatrix<T>, ws: &mut SubsetWorkspace) -> Vec<u32> {
    let epoch = ws.epoch + 1;
    let marks = ws.begin(m.nrows());
    let mut out = Vec::new();
    for &r in m.rowidx() {
        let slot = &mut marks[r as usize];
        if *slot != epoch {
            *slot = epoch;
            out.push(r);
        }
    }
    out.sort_unstable();
    out
}

/// Owner-side extraction: the listed columns of `m` (ascending, distinct)
/// as a compact matrix with `cols.len()` columns — the wire form of a
/// fetch reply. Per-column entry order (and sortedness) preserved.
pub fn extract_cols_compact<T: Copy>(m: &CscMatrix<T>, cols: &[u32]) -> CscMatrix<T> {
    debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "column subset must be ascending");
    debug_assert!(cols.last().is_none_or(|&j| (j as usize) < m.ncols()));
    let idx: Vec<usize> = cols.iter().map(|&j| j as usize).collect();
    extract_cols(m, &idx)
}

/// Receiver-side reassembly: place column `i` of `compact` at global
/// column `cols[i]` of an `ncols`-wide matrix, every other column empty.
///
/// Inverse of [`extract_cols_compact`] on the listed columns, so the
/// reassembled operand is shape-conformant with what a dense broadcast
/// would have delivered and bit-identical on every column the local
/// multiply reads.
pub fn scatter_cols_padded<T: Copy>(
    compact: &CscMatrix<T>,
    cols: &[u32],
    ncols: usize,
) -> CscMatrix<T> {
    assert_eq!(compact.ncols(), cols.len(), "one target column per compact column");
    debug_assert!(cols.windows(2).all(|w| w[0] < w[1]), "column subset must be ascending");
    debug_assert!(cols.last().is_none_or(|&j| (j as usize) < ncols));
    let mut colptr = vec![0usize; ncols + 1];
    for (i, &j) in cols.iter().enumerate() {
        colptr[j as usize + 1] = compact.col_nnz(i);
    }
    for j in 0..ncols {
        colptr[j + 1] += colptr[j];
    }
    CscMatrix::from_parts_unchecked(
        compact.nrows(),
        ncols,
        colptr,
        compact.rowidx().to_vec(),
        compact.vals().to_vec(),
        compact.is_sorted(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::ops::col_block;
    use crate::semiring::PlusTimesF64;
    use crate::triples::Triples;

    #[test]
    fn needed_rows_are_sorted_distinct_occupied() {
        let mut t = Triples::new(6, 3);
        t.push(4, 0, 1.0);
        t.push(1, 0, 1.0);
        t.push(4, 2, 1.0);
        t.push(0, 2, 1.0);
        let m = t.to_csc();
        let mut ws = SubsetWorkspace::new();
        assert_eq!(needed_rows(&m, &mut ws), vec![0, 1, 4]);
        // Workspace reuse across differently-shaped inputs.
        let empty: CscMatrix<f64> = Triples::new(2, 2).to_csc();
        assert_eq!(needed_rows(&empty, &mut ws), Vec::<u32>::new());
        assert_eq!(needed_rows(&m, &mut ws), vec![0, 1, 4]);
    }

    #[test]
    fn extract_then_scatter_roundtrips_listed_columns() {
        let m = er_random::<PlusTimesF64>(20, 15, 3, 42);
        let cols: Vec<u32> = vec![0, 3, 7, 14];
        let compact = extract_cols_compact(&m, &cols);
        assert_eq!(compact.ncols(), cols.len());
        let padded = scatter_cols_padded(&compact, &cols, m.ncols());
        assert_eq!((padded.nrows(), padded.ncols()), (m.nrows(), m.ncols()));
        for j in 0..m.ncols() {
            if cols.contains(&(j as u32)) {
                assert_eq!(padded.col(j), m.col(j), "column {j}");
            } else {
                assert_eq!(padded.col_nnz(j), 0, "column {j} should be empty");
            }
        }
    }

    #[test]
    fn full_subset_is_identity() {
        let m = er_random::<PlusTimesF64>(10, 8, 2, 7);
        let cols: Vec<u32> = (0..8).collect();
        let padded = scatter_cols_padded(&extract_cols_compact(&m, &cols), &cols, 8);
        assert!(padded.eq_modulo_order(&m));
    }

    #[test]
    fn padded_operand_multiplies_identically_to_dense() {
        // The defining property of the fetch reply: if the subset covers
        // the occupied rows of the other operand, A_padded · B == A · B.
        let a = er_random::<PlusTimesF64>(12, 16, 3, 5);
        let b = col_block(&er_random::<PlusTimesF64>(16, 9, 3, 6), 0..9);
        let mut ws = SubsetWorkspace::new();
        let need = needed_rows(&b, &mut ws);
        let a_fetched = scatter_cols_padded(&extract_cols_compact(&a, &need), &need, a.ncols());
        let (dense, _) = crate::spgemm::spgemm_hash_unsorted::<PlusTimesF64>(&a, &b).unwrap();
        let (sparse, _) =
            crate::spgemm::spgemm_hash_unsorted::<PlusTimesF64>(&a_fetched, &b).unwrap();
        assert!(dense.eq_modulo_order(&sparse));
    }
}
