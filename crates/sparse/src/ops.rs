//! Structural and elementwise matrix operations.
//!
//! These back both the distributed layer (column/row splitting for 3D
//! distribution and batching, transpose for `A·Aᵀ` workloads) and the
//! applications (pruning for Markov clustering, masking for triangle
//! counting).

use crate::csc::CscMatrix;
use crate::semiring::Semiring;
use crate::spgemm::accum::HashAccum;
use crate::Result;
use std::ops::Range;

/// The `k`-th of `parts` contiguous index blocks of `0..n`, with the
/// remainder spread over the first `n % parts` blocks (CombBLAS-style
/// balanced block distribution).
///
/// Degenerate splits are well-defined: when `n < parts` the first `n`
/// blocks hold one element each and the rest are empty (`n..n`), so
/// over-partitioned grids see empty-but-in-bounds ranges rather than
/// panics.
pub fn block_range(n: usize, parts: usize, k: usize) -> Range<usize> {
    assert!(k < parts, "block index {k} out of {parts}");
    let base = n / parts;
    let rem = n % parts;
    let start = k * base + k.min(rem);
    let len = base + usize::from(k < rem);
    debug_assert!(start + len <= n, "block_range({n}, {parts}, {k}) escapes 0..{n}");
    start..start + len
}

/// Column indices belonging to batch `batch` of `b` under the paper's
/// block-cyclic batching (Sec. IV-B): the `ncols` local columns are cut into
/// `b·l` blocks; batch `t` takes blocks `t, t+b, t+2b, …, t+(l−1)b` in
/// ascending order. The union over batches is a disjoint cover of all
/// columns.
pub fn cyclic_batch_cols(ncols: usize, b: usize, l: usize, batch: usize) -> Vec<usize> {
    assert!(batch < b, "batch index {batch} out of {b}");
    let nblocks = b * l;
    let mut cols = Vec::new();
    for s in 0..l {
        let blk = batch + s * b;
        cols.extend(block_range(ncols, nblocks, blk));
    }
    cols
}

/// Transpose via counting sort. Output columns are sorted regardless of the
/// input's sortedness.
pub fn transpose<T: Copy>(m: &CscMatrix<T>) -> CscMatrix<T> {
    let (nr, nc, nnz) = (m.nrows(), m.ncols(), m.nnz());
    let mut counts = vec![0usize; nr + 1];
    for &r in m.rowidx() {
        counts[r as usize + 1] += 1;
    }
    for i in 0..nr {
        counts[i + 1] += counts[i];
    }
    let colptr = counts.clone();
    let mut rowidx = vec![0u32; nnz];
    if nnz == 0 {
        return CscMatrix::from_parts_unchecked(nc, nr, colptr, rowidx, Vec::new(), true);
    }
    let mut vals = vec![m.vals()[0]; nnz];
    let mut next = counts;
    for j in 0..nc {
        let (rows, vs) = m.col(j);
        for (&r, &v) in rows.iter().zip(vs.iter()) {
            let slot = next[r as usize];
            rowidx[slot] = j as u32;
            vals[slot] = v;
            next[r as usize] += 1;
        }
    }
    // Scanning columns 0..nc in order makes each output column's entries
    // ascend in j automatically.
    CscMatrix::from_parts_unchecked(nc, nr, colptr, rowidx, vals, true)
}

/// Extract the listed columns (in the given order) into a new matrix with
/// `cols.len()` columns. Per-column entry order (and sortedness) preserved.
pub fn extract_cols<T: Copy>(m: &CscMatrix<T>, cols: &[usize]) -> CscMatrix<T> {
    let mut colptr = vec![0usize; cols.len() + 1];
    let nnz: usize = cols.iter().map(|&j| m.col_nnz(j)).sum();
    let mut rowidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    for (out_j, &j) in cols.iter().enumerate() {
        let (rows, vs) = m.col(j);
        rowidx.extend_from_slice(rows);
        vals.extend_from_slice(vs);
        colptr[out_j + 1] = rowidx.len();
    }
    CscMatrix::from_parts_unchecked(m.nrows(), cols.len(), colptr, rowidx, vals, m.is_sorted())
}

/// Contiguous column block `range` as a new matrix.
pub fn col_block<T: Copy>(m: &CscMatrix<T>, range: Range<usize>) -> CscMatrix<T> {
    let cols: Vec<usize> = range.collect();
    extract_cols(m, &cols)
}

/// Split into `parts` balanced contiguous column blocks.
pub fn col_split_blocks<T: Copy>(m: &CscMatrix<T>, parts: usize) -> Vec<CscMatrix<T>> {
    (0..parts)
        .map(|k| col_block(m, block_range(m.ncols(), parts, k)))
        .collect()
}

/// Concatenate matrices left-to-right (`ncols` adds up; `nrows` must match).
pub fn col_concat<T: Copy>(parts: &[CscMatrix<T>]) -> Result<CscMatrix<T>> {
    let nrows = parts
        .first()
        .map(|p| p.nrows())
        .ok_or_else(|| crate::SparseError::InvalidStructure("concat of zero matrices".into()))?;
    for p in parts {
        if p.nrows() != nrows {
            return Err(crate::SparseError::DimensionMismatch {
                expected: (nrows, 0),
                found: (p.nrows(), p.ncols()),
            });
        }
    }
    let ncols: usize = parts.iter().map(|p| p.ncols()).sum();
    let nnz: usize = parts.iter().map(|p| p.nnz()).sum();
    let mut colptr = Vec::with_capacity(ncols + 1);
    colptr.push(0usize);
    let mut rowidx = Vec::with_capacity(nnz);
    let mut vals = Vec::with_capacity(nnz);
    let mut sorted = true;
    for p in parts {
        sorted &= p.is_sorted();
        for j in 0..p.ncols() {
            let (rows, vs) = p.col(j);
            rowidx.extend_from_slice(rows);
            vals.extend_from_slice(vs);
            colptr.push(rowidx.len());
        }
    }
    Ok(CscMatrix::from_parts_unchecked(nrows, ncols, colptr, rowidx, vals, sorted))
}

/// Keep only rows in `range`, re-based so the output has
/// `range.len()` rows. Used to slice `B` along rows for 3D layering.
pub fn row_block<T: Copy>(m: &CscMatrix<T>, range: Range<usize>) -> CscMatrix<T> {
    let lo = range.start as u32;
    let hi = range.end as u32;
    let mut colptr = vec![0usize; m.ncols() + 1];
    let mut rowidx = Vec::new();
    let mut vals = Vec::new();
    for j in 0..m.ncols() {
        let (rows, vs) = m.col(j);
        for (&r, &v) in rows.iter().zip(vs.iter()) {
            if r >= lo && r < hi {
                rowidx.push(r - lo);
                vals.push(v);
            }
        }
        colptr[j + 1] = rowidx.len();
    }
    CscMatrix::from_parts_unchecked(range.len(), m.ncols(), colptr, rowidx, vals, m.is_sorted())
}

/// Split into `parts` balanced contiguous row blocks (each re-based to row 0).
pub fn row_split_blocks<T: Copy>(m: &CscMatrix<T>, parts: usize) -> Vec<CscMatrix<T>> {
    (0..parts)
        .map(|k| row_block(m, block_range(m.nrows(), parts, k)))
        .collect()
}

/// Elementwise ⊕ of two same-shaped matrices.
pub fn elementwise_add<S: Semiring>(
    a: &CscMatrix<S::T>,
    b: &CscMatrix<S::T>,
) -> Result<CscMatrix<S::T>> {
    crate::merge::merge_hash_sorted::<S>(&[a.clone(), b.clone()]).map(|(m, _)| m)
}

/// Hadamard (elementwise ⊗) product restricted to coordinates present in
/// **both** operands. Used as the mask step of masked SpGEMM applications
/// (e.g. triangle counting's `(L·U) .* A`).
pub fn hadamard<S: Semiring>(a: &CscMatrix<S::T>, b: &CscMatrix<S::T>) -> Result<CscMatrix<S::T>> {
    if (a.nrows(), a.ncols()) != (b.nrows(), b.ncols()) {
        return Err(crate::SparseError::DimensionMismatch {
            expected: (a.nrows(), a.ncols()),
            found: (b.nrows(), b.ncols()),
        });
    }
    let mut acc: HashAccum<S::T> = HashAccum::new(S::zero());
    let mut colptr = vec![0usize; a.ncols() + 1];
    let mut rowidx = Vec::new();
    let mut vals = Vec::new();
    for j in 0..a.ncols() {
        let (b_rows, b_vals) = b.col(j);
        if b_rows.is_empty() || a.col_nnz(j) == 0 {
            colptr[j + 1] = rowidx.len();
            continue;
        }
        acc.reset(b_rows.len());
        for (&r, &v) in b_rows.iter().zip(b_vals.iter()) {
            acc.accumulate::<S>(r, v);
        }
        // Probe a's entries against b's table.
        let (a_rows, a_vals) = a.col(j);
        let mut pairs: Vec<(u32, S::T)> = Vec::new();
        {
            // Reuse drain to get (key, val) pairs of b's column.
            let (mut br, mut bv) = (Vec::new(), Vec::new());
            acc.drain_into(&mut br, &mut bv);
            let lookup: std::collections::HashMap<u32, S::T> = br.into_iter().zip(bv).collect();
            for (&r, &av) in a_rows.iter().zip(a_vals.iter()) {
                if let Some(&bvv) = lookup.get(&r) {
                    pairs.push((r, S::mul(av, bvv)));
                }
            }
        }
        pairs.sort_unstable_by_key(|&(r, _)| r);
        for (r, v) in pairs {
            rowidx.push(r);
            vals.push(v);
        }
        colptr[j + 1] = rowidx.len();
    }
    Ok(CscMatrix::from_parts_unchecked(a.nrows(), a.ncols(), colptr, rowidx, vals, true))
}

/// ⊕-reduce all stored entries (structural zeros excluded).
pub fn sum_all<S: Semiring>(m: &CscMatrix<S::T>) -> S::T {
    m.vals().iter().fold(S::zero(), |acc, &v| S::add(acc, v))
}

/// ⊕-reduce each column; returns a dense vector of length `ncols`.
pub fn col_sums<S: Semiring>(m: &CscMatrix<S::T>) -> Vec<S::T> {
    (0..m.ncols())
        .map(|j| m.col(j).1.iter().fold(S::zero(), |acc, &v| S::add(acc, v)))
        .collect()
}

/// Drop entries with `|value| < eps` (numeric pruning, HipMCL-style).
pub fn prune_threshold(m: &mut CscMatrix<f64>, eps: f64) {
    m.retain(|_, _, v| v.abs() >= eps);
}

/// Keep at most the `k` largest-magnitude entries of each column
/// (HipMCL's column-wise top-k selection). Preserves sortedness.
pub fn prune_topk_cols(m: &CscMatrix<f64>, k: usize) -> CscMatrix<f64> {
    let mut colptr = vec![0usize; m.ncols() + 1];
    let mut rowidx = Vec::new();
    let mut vals = Vec::new();
    for j in 0..m.ncols() {
        let (rows, vs) = m.col(j);
        if rows.len() <= k {
            rowidx.extend_from_slice(rows);
            vals.extend_from_slice(vs);
        } else {
            let mut idx: Vec<usize> = (0..rows.len()).collect();
            idx.sort_unstable_by(|&x, &y| vs[y].abs().partial_cmp(&vs[x].abs()).unwrap());
            let mut kept: Vec<(u32, f64)> = idx[..k].iter().map(|&i| (rows[i], vs[i])).collect();
            kept.sort_unstable_by_key(|&(r, _)| r);
            for (r, v) in kept {
                rowidx.push(r);
                vals.push(v);
            }
        }
        colptr[j + 1] = rowidx.len();
    }
    CscMatrix::from_parts_unchecked(m.nrows(), m.ncols(), colptr, rowidx, vals, m.is_sorted())
}

/// Multiply every entry of column `j` by `factors[j]` (column scaling, used
/// by Markov clustering's column normalization).
pub fn scale_cols(m: &mut CscMatrix<f64>, factors: &[f64]) {
    assert_eq!(factors.len(), m.ncols());
    // Work around the lack of col_mut: rebuild values in place via map.
    let scaled = {
        let mut vals = m.vals().to_vec();
        for (j, &f) in factors.iter().enumerate() {
            let r = m.colptr()[j]..m.colptr()[j + 1];
            for v in &mut vals[r] {
                *v *= f;
            }
        }
        vals
    };
    *m = CscMatrix::from_parts_unchecked(
        m.nrows(),
        m.ncols(),
        m.colptr().to_vec(),
        m.rowidx().to_vec(),
        scaled,
        m.is_sorted(),
    );
}

/// Apply a symmetric permutation `P·A·Pᵀ` to a square matrix:
/// entry `(r, c)` moves to `(perm[r], perm[c])`.
///
/// Random symmetric permutation is standard practice in distributed sparse
/// frameworks (CombBLAS/HipMCL permute inputs on ingestion): it destroys
/// any alignment between matrix structure (e.g. protein-cluster blocks)
/// and process-grid block boundaries, which would otherwise concentrate an
/// entire SUMMA stage's broadcast volume on one process row.
pub fn permute_symmetric<T: Copy>(m: &CscMatrix<T>, perm: &[u32]) -> CscMatrix<T> {
    assert_eq!(m.nrows(), m.ncols(), "symmetric permutation needs a square matrix");
    assert_eq!(perm.len(), m.nrows());
    debug_assert!({
        let mut seen = vec![false; perm.len()];
        perm.iter().all(|&p| {
            let ok = (p as usize) < seen.len() && !seen[p as usize];
            if ok {
                seen[p as usize] = true;
            }
            ok
        })
    });
    let mut t = crate::triples::Triples::with_capacity(m.nrows(), m.ncols(), m.nnz());
    for (r, c, v) in m.iter() {
        t.push(perm[r as usize], perm[c], v);
    }
    t.to_csc()
}

/// Apply a row permutation `P·A`: entry `(r, c)` moves to `(perm[r], c)`.
/// Used to scramble rectangular matrices (e.g. shuffle reads of a
/// reads × k-mers matrix) the way ingestion pipelines do.
pub fn permute_rows<T: Copy>(m: &CscMatrix<T>, perm: &[u32]) -> CscMatrix<T> {
    assert_eq!(perm.len(), m.nrows());
    let mut t = crate::triples::Triples::with_capacity(m.nrows(), m.ncols(), m.nnz());
    for (r, c, v) in m.iter() {
        t.push(perm[r as usize], c as u32, v);
    }
    t.to_csc()
}

/// A uniformly random permutation of `0..n` (Fisher–Yates, seeded).
pub fn random_permutation(n: usize, seed: u64) -> Vec<u32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9E3_779B9);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// Strictly lower-triangular part (row > col). For triangle counting.
pub fn tril_strict<T: Copy>(m: &CscMatrix<T>) -> CscMatrix<T> {
    let mut out = m.clone();
    out.retain(|r, c, _| (r as usize) > c);
    out
}

/// Strictly upper-triangular part (row < col).
pub fn triu_strict<T: Copy>(m: &CscMatrix<T>) -> CscMatrix<T> {
    let mut out = m.clone();
    out.retain(|r, c, _| (r as usize) < c);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::semiring::{PlusTimesF64, PlusTimesU64};
    use crate::triples::Triples;

    #[test]
    fn block_range_covers_disjointly() {
        for n in [0usize, 1, 7, 16, 100] {
            for parts in [1usize, 2, 3, 7, 16] {
                let mut seen = 0;
                let mut prev_end = 0;
                for k in 0..parts {
                    let r = block_range(n, parts, k);
                    assert_eq!(r.start, prev_end);
                    prev_end = r.end;
                    seen += r.len();
                }
                assert_eq!(seen, n);
                assert_eq!(prev_end, n);
            }
        }
    }

    #[test]
    fn block_range_degenerate_more_parts_than_elements() {
        // n < parts: the first n blocks get one element, the rest are
        // empty ranges pinned at n (never out of bounds, never panicking).
        for n in [0usize, 1, 3] {
            for parts in [4usize, 7, 16] {
                for k in 0..parts {
                    let r = block_range(n, parts, k);
                    assert!(r.end <= n, "n={n} parts={parts} k={k}: {r:?}");
                    if k < n {
                        assert_eq!(r.len(), 1, "n={n} parts={parts} k={k}");
                    } else {
                        assert!(r.is_empty(), "n={n} parts={parts} k={k}: {r:?}");
                        assert_eq!(r.start, n);
                    }
                }
            }
        }
    }

    #[test]
    fn block_range_balanced_within_one() {
        let sizes: Vec<usize> = (0..7).map(|k| block_range(100, 7, k).len()).collect();
        let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(mx - mn <= 1);
    }

    #[test]
    fn cyclic_batches_disjointly_cover() {
        for ncols in [13usize, 16, 64, 100] {
            for b in [1usize, 2, 4] {
                for l in [1usize, 2, 4] {
                    let mut all: Vec<usize> = Vec::new();
                    for t in 0..b {
                        all.extend(cyclic_batch_cols(ncols, b, l, t));
                    }
                    all.sort_unstable();
                    assert_eq!(all, (0..ncols).collect::<Vec<_>>(), "ncols={ncols} b={b} l={l}");
                }
            }
        }
    }

    #[test]
    fn cyclic_batch_interleaves_blocks() {
        // ncols=8, b=2, l=2 -> 4 blocks of 2; batch0 = blocks {0,2} = cols 0,1,4,5.
        assert_eq!(cyclic_batch_cols(8, 2, 2, 0), vec![0, 1, 4, 5]);
        assert_eq!(cyclic_batch_cols(8, 2, 2, 1), vec![2, 3, 6, 7]);
    }

    #[test]
    fn transpose_involutive() {
        let m = er_random::<PlusTimesF64>(30, 20, 4, 77);
        let tt = transpose(&transpose(&m));
        assert!(m.eq_modulo_order(&tt));
    }

    #[test]
    fn transpose_moves_entries() {
        let mut t = Triples::new(3, 2);
        t.push(2, 0, 5.0);
        let m = t.to_csc();
        let mt = transpose(&m);
        assert_eq!((mt.nrows(), mt.ncols()), (2, 3));
        assert_eq!(mt.col(2), (&[0u32][..], &[5.0][..]));
    }

    #[test]
    fn split_concat_roundtrip() {
        let m = er_random::<PlusTimesF64>(25, 33, 3, 5);
        for parts in [1, 2, 5, 33] {
            let pieces = col_split_blocks(&m, parts);
            let back = col_concat(&pieces).unwrap();
            assert!(m.eq_modulo_order(&back), "parts={parts}");
        }
    }

    #[test]
    fn row_blocks_reassemble_under_transpose() {
        let m = er_random::<PlusTimesF64>(30, 10, 3, 6);
        let blocks = row_split_blocks(&m, 4);
        assert_eq!(blocks.iter().map(|b| b.nnz()).sum::<usize>(), m.nnz());
        assert_eq!(blocks.iter().map(|b| b.nrows()).sum::<usize>(), 30);
    }

    #[test]
    fn extract_cols_in_arbitrary_order() {
        let m = er_random::<PlusTimesF64>(10, 5, 2, 8);
        let e = extract_cols(&m, &[4, 0, 2]);
        assert_eq!(e.ncols(), 3);
        assert_eq!(e.col(0), m.col(4));
        assert_eq!(e.col(1), m.col(0));
        assert_eq!(e.col(2), m.col(2));
    }

    #[test]
    fn hadamard_masks_intersection() {
        let mut ta = Triples::new(3, 2);
        ta.push(0, 0, 2.0);
        ta.push(1, 0, 3.0);
        let mut tb = Triples::new(3, 2);
        tb.push(1, 0, 5.0);
        tb.push(2, 1, 7.0);
        let c = hadamard::<PlusTimesF64>(&ta.to_csc(), &tb.to_csc()).unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.col(0), (&[1u32][..], &[15.0][..]));
    }

    #[test]
    fn sum_all_and_col_sums() {
        let mut t = Triples::new(2, 2);
        t.push(0, 0, 1);
        t.push(1, 0, 2);
        t.push(0, 1, 4);
        let m: CscMatrix<u64> = t.to_csc();
        assert_eq!(sum_all::<PlusTimesU64>(&m), 7);
        assert_eq!(col_sums::<PlusTimesU64>(&m), vec![3, 4]);
    }

    #[test]
    fn prune_topk_keeps_largest() {
        let mut t = Triples::new(4, 1);
        t.push(0, 0, 0.1);
        t.push(1, 0, 0.9);
        t.push(2, 0, 0.5);
        t.push(3, 0, 0.3);
        let m = t.to_csc();
        let p = prune_topk_cols(&m, 2);
        assert_eq!(p.col(0), (&[1u32, 2][..], &[0.9, 0.5][..]));
    }

    #[test]
    fn prune_threshold_drops_small() {
        let mut t = Triples::new(2, 1);
        t.push(0, 0, 1e-9);
        t.push(1, 0, 0.5);
        let mut m = t.to_csc();
        prune_threshold(&mut m, 1e-6);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn scale_cols_multiplies() {
        let mut t = Triples::new(2, 2);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        let mut m = t.to_csc();
        scale_cols(&mut m, &[10.0, 100.0]);
        assert_eq!(m.col(0).1, &[20.0]);
        assert_eq!(m.col(1).1, &[300.0]);
    }

    #[test]
    fn permutation_is_bijective_and_seeded() {
        let p = random_permutation(100, 7);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100u32).collect::<Vec<_>>());
        assert_eq!(p, random_permutation(100, 7));
        assert_ne!(p, random_permutation(100, 8));
    }

    #[test]
    fn symmetric_permutation_preserves_values_and_symmetry() {
        let m = crate::gen::clustered_similarity(3, 10, 4, 1, 3);
        let perm = random_permutation(m.nrows(), 5);
        let pm = permute_symmetric(&m, &perm);
        assert_eq!(pm.nnz(), m.nnz());
        // Symmetry preserved.
        let pt = transpose(&pm.map(|_| 1u64));
        assert!(pm.map(|_| 1u64).eq_modulo_order(&pt));
        // Entry values relocated, not changed: multisets of values equal.
        let mut v1: Vec<u64> = m.vals().iter().map(|v| v.to_bits()).collect();
        let mut v2: Vec<u64> = pm.vals().iter().map(|v| v.to_bits()).collect();
        v1.sort_unstable();
        v2.sort_unstable();
        assert_eq!(v1, v2);
    }

    #[test]
    fn identity_permutation_is_noop() {
        let m = er_random::<PlusTimesF64>(20, 20, 3, 9);
        let id: Vec<u32> = (0..20).collect();
        assert!(permute_symmetric(&m, &id).eq_modulo_order(&m));
    }

    #[test]
    fn tril_triu_partition_offdiagonal() {
        let m = er_random::<PlusTimesF64>(20, 20, 4, 13);
        let l = tril_strict(&m);
        let u = triu_strict(&m);
        let diag = m.iter().filter(|&(r, c, _)| r as usize == c).count();
        assert_eq!(l.nnz() + u.nnz() + diag, m.nnz());
        assert!(l.iter().all(|(r, c, _)| (r as usize) > c));
        assert!(u.iter().all(|(r, c, _)| (r as usize) < c));
    }
}
