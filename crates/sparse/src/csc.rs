//! Compressed sparse column (CSC) matrix.
//!
//! The central storage type for local submatrices. Row indices are `u32`
//! (the distributed layer works on local blocks far below 2³² rows) and
//! column pointers are `usize`.
//!
//! A key design point from the paper (Sec. IV-D): intermediate products do
//! **not** need sorted columns — only the final Merge-Fiber output does.
//! `CscMatrix` therefore carries a `sorted` flag so kernels can assert the
//! preconditions they need and tests can normalize before comparing.

use crate::triples::Triples;
use crate::{Result, SparseError};

/// A sparse matrix in compressed sparse column format.
#[derive(Clone, PartialEq)]
pub struct CscMatrix<T> {
    nrows: usize,
    ncols: usize,
    /// `colptr[j]..colptr[j+1]` indexes column `j`'s entries. Length `ncols+1`.
    colptr: Vec<usize>,
    /// Row index of each stored entry.
    rowidx: Vec<u32>,
    /// Value of each stored entry.
    vals: Vec<T>,
    /// Whether every column's row indices are strictly ascending.
    sorted: bool,
}

impl<T: Copy> CscMatrix<T> {
    /// An empty (all-zero) matrix of the given shape.
    pub fn zero(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowidx: Vec::new(),
            vals: Vec::new(),
            sorted: true,
        }
    }

    /// Build from raw parts, validating every structural invariant.
    ///
    /// `sorted` is *verified*, not trusted: the flag stored on the result is
    /// recomputed from the data.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<u32>,
        vals: Vec<T>,
    ) -> Result<Self> {
        if colptr.len() != ncols + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "colptr length {} != ncols+1 = {}",
                colptr.len(),
                ncols + 1
            )));
        }
        if colptr[0] != 0 {
            return Err(SparseError::InvalidStructure("colptr[0] != 0".into()));
        }
        if *colptr.last().unwrap() != rowidx.len() {
            return Err(SparseError::InvalidStructure(format!(
                "colptr[ncols] = {} != nnz = {}",
                colptr.last().unwrap(),
                rowidx.len()
            )));
        }
        if rowidx.len() != vals.len() {
            return Err(SparseError::InvalidStructure(format!(
                "rowidx len {} != vals len {}",
                rowidx.len(),
                vals.len()
            )));
        }
        if colptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::InvalidStructure("colptr not monotone".into()));
        }
        if rowidx.iter().any(|&r| r as usize >= nrows) {
            return Err(SparseError::InvalidStructure("row index out of bounds".into()));
        }
        let mut m = CscMatrix {
            nrows,
            ncols,
            colptr,
            rowidx,
            vals,
            sorted: false,
        };
        m.sorted = m.check_sorted();
        Ok(m)
    }

    /// Build from raw parts without validation.
    ///
    /// The caller must guarantee the CSC invariants and the accuracy of the
    /// `sorted` flag; kernels use this on freshly-built output where the
    /// invariants hold by construction. Debug builds re-verify.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<u32>,
        vals: Vec<T>,
        sorted: bool,
    ) -> Self {
        let m = CscMatrix {
            nrows,
            ncols,
            colptr,
            rowidx,
            vals,
            sorted,
        };
        debug_assert!(m.colptr.len() == m.ncols + 1);
        debug_assert!(m.colptr[0] == 0 && *m.colptr.last().unwrap() == m.rowidx.len());
        debug_assert!(m.rowidx.len() == m.vals.len());
        debug_assert!(!sorted || m.check_sorted());
        m
    }

    /// Build from raw parts with **no** checks at all, not even in debug
    /// builds. Exists so the corruption tests of [`crate::validate`] can
    /// assemble deliberately broken matrices and assert the validator's
    /// diagnostics; real code wants [`CscMatrix::from_parts`] (validating)
    /// or [`CscMatrix::from_parts_unchecked`] (debug-verified).
    pub fn from_parts_raw(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<u32>,
        vals: Vec<T>,
        sorted: bool,
    ) -> Self {
        CscMatrix {
            nrows,
            ncols,
            colptr,
            rowidx,
            vals,
            sorted,
        }
    }

    /// Decompose into `(nrows, ncols, colptr, rowidx, vals, sorted)` —
    /// the inverse of [`CscMatrix::from_parts_raw`], used by the
    /// corruption tests to mutate a valid structure in place.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<u32>, Vec<T>, bool) {
        (
            self.nrows,
            self.ncols,
            self.colptr,
            self.rowidx,
            self.vals,
            self.sorted,
        )
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Whether every column's row indices are strictly ascending.
    #[inline]
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// Column pointer array (length `ncols + 1`).
    #[inline]
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row indices of all stored entries, column-major.
    #[inline]
    pub fn rowidx(&self) -> &[u32] {
        &self.rowidx
    }

    /// Values of all stored entries, column-major.
    #[inline]
    pub fn vals(&self) -> &[T] {
        &self.vals
    }

    /// Number of entries stored in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.colptr[j + 1] - self.colptr[j]
    }

    /// Row indices and values of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[u32], &[T]) {
        let r = self.colptr[j]..self.colptr[j + 1];
        (&self.rowidx[r.clone()], &self.vals[r])
    }

    /// Iterate `(row, col, value)` over all stored entries in column-major
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, usize, T)> + '_ {
        (0..self.ncols).flat_map(move |j| {
            let (rows, vals) = self.col(j);
            rows.iter().zip(vals.iter()).map(move |(&r, &v)| (r, j, v))
        })
    }

    /// Convert to a COO triple list (column-major order preserved).
    pub fn to_triples(&self) -> Triples<T> {
        let mut t = Triples::new(self.nrows, self.ncols);
        for (r, c, v) in self.iter() {
            t.push(r, c as u32, v);
        }
        t
    }

    /// Verify column sortedness by scanning (strictly ascending rows).
    pub fn check_sorted(&self) -> bool {
        (0..self.ncols).all(|j| {
            let (rows, _) = self.col(j);
            rows.windows(2).all(|w| w[0] < w[1])
        })
    }

    /// Sort every column by row index. Duplicate rows (possible in raw COO
    /// conversions before dedup) end up adjacent; the `sorted` flag is only
    /// set if rows are *strictly* ascending (no duplicates), since that is
    /// the invariant downstream kernels rely on.
    pub fn sort_columns(&mut self) {
        if self.sorted {
            return;
        }
        let mut perm: Vec<u32> = Vec::new();
        for j in 0..self.ncols {
            let lo = self.colptr[j];
            let hi = self.colptr[j + 1];
            if hi - lo <= 1 {
                continue;
            }
            let seg = lo..hi;
            perm.clear();
            perm.extend(0..(hi - lo) as u32);
            let rows = &self.rowidx[seg.clone()];
            perm.sort_unstable_by_key(|&k| rows[k as usize]);
            let new_rows: Vec<u32> = perm.iter().map(|&k| rows[k as usize]).collect();
            let old_vals = &self.vals[seg.clone()];
            let new_vals: Vec<T> = perm.iter().map(|&k| old_vals[k as usize]).collect();
            self.rowidx[seg.clone()].copy_from_slice(&new_rows);
            self.vals[seg].copy_from_slice(&new_vals);
        }
        self.sorted = self.check_sorted();
    }

    /// A sorted copy of this matrix (no-op clone if already sorted).
    pub fn sorted_copy(&self) -> Self {
        let mut c = self.clone();
        c.sort_columns();
        c
    }

    /// Apply `f` to every stored value, producing a new matrix with the same
    /// sparsity structure.
    pub fn map<U: Copy>(&self, mut f: impl FnMut(T) -> U) -> CscMatrix<U> {
        CscMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            colptr: self.colptr.clone(),
            rowidx: self.rowidx.clone(),
            vals: self.vals.iter().map(|&v| f(v)).collect(),
            sorted: self.sorted,
        }
    }

    /// Retain only entries satisfying `keep(row, col, value)`, compacting in
    /// place. Preserves per-column entry order (and thus sortedness).
    pub fn retain(&mut self, mut keep: impl FnMut(u32, usize, T) -> bool) {
        let mut w = 0usize;
        let mut new_colptr = vec![0usize; self.ncols + 1];
        for j in 0..self.ncols {
            let (lo, hi) = (self.colptr[j], self.colptr[j + 1]);
            for k in lo..hi {
                let (r, v) = (self.rowidx[k], self.vals[k]);
                if keep(r, j, v) {
                    self.rowidx[w] = r;
                    self.vals[w] = v;
                    w += 1;
                }
            }
            new_colptr[j + 1] = w;
        }
        self.rowidx.truncate(w);
        self.vals.truncate(w);
        self.colptr = new_colptr;
    }

    /// Memory footprint in bytes under the paper's storage model:
    /// `r` bytes per nonzero (the paper uses r = 24: two 8-byte indices plus
    /// an 8-byte value), ignoring the colptr array as the paper does.
    pub fn modeled_bytes(&self, r_bytes_per_nnz: usize) -> usize {
        self.nnz() * r_bytes_per_nnz
    }
}

impl<T: Copy + PartialEq> CscMatrix<T> {
    /// Structural + numerical equality ignoring within-column entry order.
    ///
    /// Both operands are normalized by sorting copies; use for comparing an
    /// unsorted kernel output against a sorted reference.
    pub fn eq_modulo_order(&self, other: &Self) -> bool {
        if self.nrows != other.nrows || self.ncols != other.ncols || self.nnz() != other.nnz() {
            return false;
        }
        let a = self.sorted_copy();
        let b = other.sorted_copy();
        a.colptr == b.colptr && a.rowidx == b.rowidx && a.vals == b.vals
    }
}

impl CscMatrix<f64> {
    /// Approximate equality ignoring entry order: same pattern, values within
    /// `tol` (absolute + relative). For comparing float results merged in
    /// different orders.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        if self.nrows != other.nrows || self.ncols != other.ncols || self.nnz() != other.nnz() {
            return false;
        }
        let a = self.sorted_copy();
        let b = other.sorted_copy();
        if a.colptr != b.colptr || a.rowidx != b.rowidx {
            return false;
        }
        a.vals
            .iter()
            .zip(b.vals.iter())
            .all(|(&x, &y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            colptr: (0..=n).collect(),
            rowidx: (0..n as u32).collect(),
            vals: vec![1.0; n],
            sorted: true,
        }
    }
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for CscMatrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "CscMatrix {}x{}, nnz={}, sorted={}",
            self.nrows,
            self.ncols,
            self.nnz(),
            self.sorted
        )?;
        if self.nnz() <= 64 {
            for j in 0..self.ncols {
                let (rows, vals) = self.col(j);
                if !rows.is_empty() {
                    writeln!(f, "  col {j}: {:?}", rows.iter().zip(vals).collect::<Vec<_>>())?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix<f64> {
        // 3x3: [[1,0,2],[0,3,0],[4,0,5]]
        CscMatrix::from_parts(3, 3, vec![0, 2, 3, 5], vec![0, 2, 1, 0, 2], vec![1.0, 4.0, 3.0, 2.0, 5.0])
            .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 5);
        assert!(m.is_sorted());
        assert_eq!(m.col_nnz(0), 2);
        assert_eq!(m.col(1), (&[1u32][..], &[3.0][..]));
    }

    #[test]
    fn zero_matrix() {
        let z = CscMatrix::<f64>::zero(4, 7);
        assert_eq!(z.nnz(), 0);
        assert!(z.is_sorted());
        assert_eq!(z.colptr().len(), 8);
    }

    #[test]
    fn rejects_bad_colptr_length() {
        let e = CscMatrix::<f64>::from_parts(2, 2, vec![0, 0], vec![], vec![]);
        assert!(matches!(e, Err(SparseError::InvalidStructure(_))));
    }

    #[test]
    fn rejects_nonmonotone_colptr() {
        let e = CscMatrix::<f64>::from_parts(2, 2, vec![0, 1, 0], vec![0], vec![1.0]);
        assert!(matches!(e, Err(SparseError::InvalidStructure(_))));
    }

    #[test]
    fn rejects_out_of_bounds_row() {
        let e = CscMatrix::<f64>::from_parts(2, 1, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(e, Err(SparseError::InvalidStructure(_))));
    }

    #[test]
    fn rejects_len_mismatch() {
        let e = CscMatrix::<f64>::from_parts(2, 1, vec![0, 1], vec![0], vec![]);
        assert!(matches!(e, Err(SparseError::InvalidStructure(_))));
    }

    #[test]
    fn detects_unsorted_on_construction() {
        let m = CscMatrix::from_parts(3, 1, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).unwrap();
        assert!(!m.is_sorted());
    }

    #[test]
    fn sort_columns_orders_and_flags() {
        let mut m = CscMatrix::from_parts(3, 2, vec![0, 2, 4], vec![2, 0, 1, 0], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(!m.is_sorted());
        m.sort_columns();
        assert!(m.is_sorted());
        assert_eq!(m.col(0), (&[0u32, 2][..], &[2.0, 1.0][..]));
        assert_eq!(m.col(1), (&[0u32, 1][..], &[4.0, 3.0][..]));
    }

    #[test]
    fn eq_modulo_order_matches_permuted_columns() {
        let a = CscMatrix::from_parts(3, 1, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).unwrap();
        let b = CscMatrix::from_parts(3, 1, vec![0, 2], vec![2, 0], vec![2.0, 1.0]).unwrap();
        assert!(a.eq_modulo_order(&b));
        let c = CscMatrix::from_parts(3, 1, vec![0, 2], vec![2, 0], vec![2.0, 1.5]).unwrap();
        assert!(!a.eq_modulo_order(&c));
    }

    #[test]
    fn iter_and_to_triples_roundtrip() {
        let m = sample();
        let t = m.to_triples();
        let back = t.to_csc();
        assert!(m.eq_modulo_order(&back));
    }

    #[test]
    fn map_preserves_structure() {
        let m = sample();
        let doubled = m.map(|v| v * 2.0);
        assert_eq!(doubled.col(2).1, &[4.0, 10.0]);
        assert_eq!(doubled.colptr(), m.colptr());
    }

    #[test]
    fn retain_filters_and_compacts() {
        let mut m = sample();
        m.retain(|_, _, v| v > 2.5);
        assert_eq!(m.nnz(), 3); // 4.0, 3.0, 5.0 survive
        assert_eq!(m.col(0), (&[2u32][..], &[4.0][..]));
        assert!(m.check_sorted());
    }

    #[test]
    fn identity_squares_to_itself() {
        let i = CscMatrix::identity(5);
        assert_eq!(i.nnz(), 5);
        assert!(i.is_sorted());
    }

    #[test]
    fn modeled_bytes_uses_r() {
        let m = sample();
        assert_eq!(m.modeled_bytes(24), 5 * 24);
    }
}
