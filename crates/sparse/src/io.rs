//! Matrix Market I/O.
//!
//! Supports the `coordinate` format with `real`, `integer`, or `pattern`
//! fields and `general` or `symmetric` symmetry — enough to ingest
//! SuiteSparse matrices like Friendster or to persist generated test
//! matrices for external tools.

use crate::csc::CscMatrix;
use crate::semiring::PlusTimesF64;
use crate::triples::Triples;
use crate::{Result, SparseError};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parse a Matrix Market stream into a CSC matrix of `f64`.
///
/// Pattern matrices get value 1.0; symmetric storage is expanded to general.
/// Duplicate coordinates are summed.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CscMatrix<f64>> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or_else(|| SparseError::Io("empty stream".into()))?
        .map_err(|e| SparseError::Io(e.to_string()))?;
    let header_lc = header.to_ascii_lowercase();
    if !header_lc.starts_with("%%matrixmarket") {
        return Err(SparseError::Io("missing MatrixMarket banner".into()));
    }
    let tokens: Vec<&str> = header_lc.split_whitespace().collect();
    if tokens.len() < 5 || tokens[1] != "matrix" || tokens[2] != "coordinate" {
        return Err(SparseError::Io(format!("unsupported header: {header}")));
    }
    let field = tokens[3];
    let symmetry = tokens[4];
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(SparseError::Io(format!("unsupported field: {field}")));
    }
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(SparseError::Io(format!("unsupported symmetry: {symmetry}")));
    }

    // Skip comments; first non-comment line is the size line.
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line.map_err(|e| SparseError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        size_line = Some(trimmed.to_string());
        break;
    }
    let size_line = size_line.ok_or_else(|| SparseError::Io("missing size line".into()))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| SparseError::Io(format!("bad size line: {size_line}"))))
        .collect::<Result<_>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Io(format!("bad size line: {size_line}")));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut t = Triples::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line.map_err(|e| SparseError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let r: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SparseError::Io(format!("bad entry: {trimmed}")))?;
        let c: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SparseError::Io(format!("bad entry: {trimmed}")))?;
        let v: f64 = if field == "pattern" {
            1.0
        } else {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| SparseError::Io(format!("bad value: {trimmed}")))?
        };
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(SparseError::Io(format!("coordinate out of bounds: {trimmed}")));
        }
        // Matrix Market is 1-based.
        t.push((r - 1) as u32, (c - 1) as u32, v);
        if symmetry == "symmetric" && r != c {
            t.push((c - 1) as u32, (r - 1) as u32, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Io(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(t.to_csc_dedup::<PlusTimesF64>())
}

/// Read from a file path.
pub fn read_matrix_market_file(path: &Path) -> Result<CscMatrix<f64>> {
    let f = std::fs::File::open(path).map_err(|e| SparseError::Io(e.to_string()))?;
    read_matrix_market(f)
}

/// Write a CSC matrix in `coordinate real general` format.
pub fn write_matrix_market<W: Write>(m: &CscMatrix<f64>, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    let res: std::io::Result<()> = (|| {
        writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
        writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
        for (r, c, v) in m.iter() {
            writeln!(w, "{} {} {:.17e}", r + 1, c + 1, v)?;
        }
        w.flush()
    })();
    res.map_err(|e| SparseError::Io(e.to_string()))
}

/// Write to a file path.
pub fn write_matrix_market_file(m: &CscMatrix<f64>, path: &Path) -> Result<()> {
    let f = std::fs::File::create(path).map_err(|e| SparseError::Io(e.to_string()))?;
    write_matrix_market(m, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::er_random;
    use crate::semiring::PlusTimesF64 as PT;

    #[test]
    fn roundtrip_random_matrix() {
        let m = er_random::<PT>(20, 15, 3, 44);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        assert!(m.approx_eq(&back, 1e-14));
    }

    #[test]
    fn parses_pattern_and_comments() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n% a comment\n3 3 2\n1 1\n3 2\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.col(0), (&[0u32][..], &[1.0][..]));
        assert_eq!(m.col(1), (&[2u32][..], &[1.0][..]));
    }

    #[test]
    fn expands_symmetric() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 5.0\n2 1 3.0\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col(1), (&[0u32][..], &[3.0][..]));
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_matrix_market("not a matrix".as_bytes()).is_err());
        assert!(read_matrix_market("%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()).is_err());
        let short = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(short.as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_coordinates() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }
}
