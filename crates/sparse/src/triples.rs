//! COO (coordinate / triple) representation.
//!
//! Used at matrix-assembly boundaries: generators, Matrix Market I/O, and
//! the scatter/gather paths of the distributed layer. Everything
//! performance-critical converts to [`CscMatrix`] first.

use crate::csc::CscMatrix;
use crate::semiring::Semiring;

/// A list of `(row, col, value)` entries with explicit shape.
///
/// Duplicates are permitted until [`Triples::to_csc_dedup`] combines them
/// with a semiring `⊕`.
#[derive(Debug, Clone, PartialEq)]
pub struct Triples<T> {
    nrows: usize,
    ncols: usize,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Copy> Triples<T> {
    /// Empty triple list with the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Triples {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Empty triple list with reserved capacity.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        Triples {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Assemble from parallel coordinate arrays without bounds checks —
    /// the caller vouches for them (or runs
    /// [`crate::validate::Validate::validate`] afterwards, as the
    /// corruption tests do).
    ///
    /// # Panics
    /// If the three arrays differ in length.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        rows: Vec<u32>,
        cols: Vec<u32>,
        vals: Vec<T>,
    ) -> Self {
        assert_eq!(rows.len(), cols.len(), "rows/cols length mismatch");
        assert_eq!(rows.len(), vals.len(), "rows/vals length mismatch");
        Triples {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        }
    }

    /// Append one entry. Panics (debug) on out-of-bounds coordinates.
    #[inline]
    pub fn push(&mut self, row: u32, col: u32, val: T) {
        debug_assert!((row as usize) < self.nrows, "row {row} out of bounds");
        debug_assert!((col as usize) < self.ncols, "col {col} out of bounds");
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of entries (duplicates counted).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterate `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, T)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Convert to CSC via counting sort on columns. Duplicate coordinates are
    /// preserved as duplicate entries (use [`Triples::to_csc_dedup`] to
    /// combine). Output columns are sorted by row.
    pub fn to_csc(&self) -> CscMatrix<T> {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            counts[c as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let colptr = counts.clone();
        let nnz = self.len();
        let mut rowidx = vec![0u32; nnz];
        // SAFETY-free approach: build with placeholder then fill; T: Copy so
        // we seed with the first value (or return empty).
        if nnz == 0 {
            return CscMatrix::from_parts_unchecked(self.nrows, self.ncols, colptr, rowidx, Vec::new(), true);
        }
        let mut vals = vec![self.vals[0]; nnz];
        let mut next = counts;
        for ((&r, &c), &v) in self.rows.iter().zip(self.cols.iter()).zip(self.vals.iter()) {
            let slot = next[c as usize];
            rowidx[slot] = r;
            vals[slot] = v;
            next[c as usize] += 1;
        }
        let mut m = CscMatrix::from_parts_unchecked(self.nrows, self.ncols, colptr, rowidx, vals, false);
        m.sort_columns();
        m
    }

    /// Convert to CSC, combining duplicate coordinates with the semiring add.
    pub fn to_csc_dedup<S: Semiring<T = T>>(&self) -> CscMatrix<T>
    where
        T: PartialEq + std::fmt::Debug + Send + Sync + 'static,
    {
        let dense = self.to_csc();
        // Collapse adjacent duplicates (columns are sorted by row).
        let mut colptr = vec![0usize; self.ncols + 1];
        let mut rowidx: Vec<u32> = Vec::with_capacity(dense.nnz());
        let mut vals: Vec<T> = Vec::with_capacity(dense.nnz());
        for j in 0..self.ncols {
            let (rows, vs) = dense.col(j);
            let mut k = 0;
            while k < rows.len() {
                let r = rows[k];
                let mut acc = vs[k];
                k += 1;
                while k < rows.len() && rows[k] == r {
                    acc = S::add(acc, vs[k]);
                    k += 1;
                }
                rowidx.push(r);
                vals.push(acc);
            }
            colptr[j + 1] = rowidx.len();
        }
        CscMatrix::from_parts_unchecked(self.nrows, self.ncols, colptr, rowidx, vals, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimesF64;

    #[test]
    fn to_csc_sorts_columns() {
        let mut t = Triples::new(4, 2);
        t.push(3, 0, 1.0);
        t.push(0, 0, 2.0);
        t.push(1, 1, 3.0);
        let m = t.to_csc();
        assert!(m.is_sorted());
        assert_eq!(m.col(0), (&[0u32, 3][..], &[2.0, 1.0][..]));
        assert_eq!(m.col(1), (&[1u32][..], &[3.0][..]));
    }

    #[test]
    fn empty_triples() {
        let t = Triples::<f64>::new(3, 3);
        assert!(t.is_empty());
        let m = t.to_csc();
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn dedup_combines_duplicates() {
        let mut t = Triples::new(3, 1);
        t.push(1, 0, 1.0);
        t.push(1, 0, 2.5);
        t.push(0, 0, 1.0);
        let m = t.to_csc_dedup::<PlusTimesF64>();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.col(0), (&[0u32, 1][..], &[1.0, 3.5][..]));
    }

    #[test]
    fn roundtrip_via_iter() {
        let mut t = Triples::new(5, 5);
        t.push(4, 2, 7.0);
        t.push(0, 0, 1.0);
        let collected: Vec<_> = t.iter().collect();
        assert_eq!(collected, vec![(4, 2, 7.0), (0, 0, 1.0)]);
    }
}
