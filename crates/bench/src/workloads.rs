//! Scaled-down analogues of the paper's Table V test matrices.
//!
//! Every constructor is deterministic (fixed seed) so bench output is
//! reproducible run to run. The `scale` parameter grows the instance for
//! strong-scaling sweeps without changing its character.
//!
//! | Paper matrix | Constructor | Character preserved |
//! |---|---|---|
//! | Friendster | [`friendster_like`] | power-law social graph, `nnz(A²) ≫ nnz(A)` |
//! | Isolates / Isolates-small | [`isolates_like`] | dense protein communities, huge flops & cf |
//! | Metaclust50 | [`metaclust_like`] | like Isolates but sparser ⇒ comm-bound sooner (Fig. 9) |
//! | Eukarya | [`eukarya_like`] | small protein net: batching rarely needed (Fig. 14) |
//! | Rice-kmers | [`ricekmers_like`] | reads × k-mers, ~2 nnz/col, `A·Aᵀ`, b = 1 (Fig. 11) |
//! | Metaclust20m | [`metaclust20m_like`] | reads × k-mers with heavier columns ⇒ batching (Fig. 10) |

use spgemm_sparse::gen::{clustered_similarity, kmer_matrix, rmat};
use spgemm_sparse::ops::{permute_symmetric, random_permutation};
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::CscMatrix;

/// Randomly permute a square matrix (CombBLAS/HipMCL ingestion practice):
/// keeps cluster structure from aligning with process-grid blocks, which
/// would concentrate whole SUMMA stages on single process rows.
fn scrambled(m: &CscMatrix<f64>, seed: u64) -> CscMatrix<f64> {
    let perm = random_permutation(m.nrows(), seed);
    permute_symmetric(m, &perm)
}

/// Friendster-like: symmetric R-MAT, power-law degrees.
pub fn friendster_like(scale: u32) -> CscMatrix<f64> {
    scrambled(&rmat::<PlusTimesF64>(scale, 12, None, true, 0xF41E_0001), 0xF41E)
}

/// Isolates-like: dense protein-similarity communities (high compression
/// factor under squaring; the flop-heavy regime).
pub fn isolates_like(nclusters: usize, cluster_size: usize) -> CscMatrix<f64> {
    scrambled(
        &clustered_similarity(nclusters, cluster_size, 14, 2, 0x150_1A7E5),
        0x150,
    )
}

/// Metaclust-like: protein communities but sparser than Isolates, so
/// communication dominates earlier (the Fig. 9 efficiency-drop driver).
pub fn metaclust_like(nclusters: usize, cluster_size: usize) -> CscMatrix<f64> {
    scrambled(
        &clustered_similarity(nclusters, cluster_size, 5, 1, 0x3E7A_C125),
        0x3E7A,
    )
}

/// Eukarya-like: the small protein network of Figs. 14–15.
pub fn eukarya_like() -> CscMatrix<f64> {
    scrambled(&clustered_similarity(6, 150, 10, 1, 0xE0CA_51A1), 0xE0CA)
}

/// Densest protein communities: very high compression factor, so local
/// computation carries a realistic share of the runtime. Used where the
/// paper's figure hinges on compute-vs-communication balance
/// (hyperthreading, KNL-vs-Haswell).
pub fn dense_protein_like() -> CscMatrix<f64> {
    scrambled(&clustered_similarity(8, 300, 40, 1, 0xDE5E_0001), 0xDE5E)
}

/// Shuffle the read (row) order of a reads × k-mers matrix: genome-order
/// reads make `A·Aᵀ` a diagonal band that concentrates on the grid's
/// diagonal blocks; ingestion pipelines see reads in arbitrary order.
fn shuffled_reads(m: &CscMatrix<u64>, seed: u64) -> CscMatrix<f64> {
    use spgemm_sparse::ops::permute_rows;
    let perm = random_permutation(m.nrows(), seed);
    permute_rows(m, &perm).map(|v| v as f64)
}

/// Rice-kmers-like: reads × k-mers with ~2 nonzeros per column; its
/// `A·Aᵀ` satisfies `nnz(A·Aᵀ) ≈ nnz(A)` so `b = 1` (Fig. 11).
pub fn ricekmers_like(nreads: usize) -> CscMatrix<f64> {
    shuffled_reads(&kmer_matrix(nreads, nreads * 12, 2, 0x51CE_0001), 0x51CE)
}

/// Metaclust20m-like: reads × k-mers with heavier columns plus *repeat*
/// k-mers that connect distant reads (metagenomes are full of repeats),
/// whose `A·Aᵀ` blows up enough to need batching (Fig. 10).
pub fn metaclust20m_like(nreads: usize) -> CscMatrix<f64> {
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::ops::col_concat;
    use spgemm_sparse::semiring::PlusTimesU64;
    let windows = kmer_matrix(nreads, nreads * 6, 6, 0x20A1_0001);
    // Repeat k-mers: each occurs in 6 reads scattered across the dataset.
    let repeats = er_random::<PlusTimesU64>(nreads, nreads * 4, 6, 0x20A1_0002).map(|_| 1u64);
    shuffled_reads(&col_concat(&[windows, repeats]).expect("concat"), 0x20A1)
}

/// Column-density gradient matrix: columns ramp linearly from ~2 to
/// `max_deg` nonzeros. Used by the batching-strategy ablation — plain
/// block batching assigns contiguous (hence similar-density) columns to a
/// ColSplit piece, unbalancing AllToAll-/Merge-Fiber across the fiber,
/// which is precisely the load-imbalance the paper's block-cyclic split
/// (Sec. IV-B) is designed to avoid.
pub fn gradient_like(n: usize, max_deg: usize) -> CscMatrix<f64> {
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::ops::{col_concat, extract_cols};
    // Build per-column degrees by sampling from a dense ER pool.
    let pool = er_random::<PlusTimesF64>(n, n, max_deg, 0x6EAD_1E47);
    let mut cols = Vec::with_capacity(n);
    for j in 0..n {
        cols.push(extract_cols(&pool, &[j]));
        let want = 2 + (max_deg.saturating_sub(2)) * j / n.max(1);
        let keep: Vec<usize> = (0..want.min(pool.col_nnz(j))).collect();
        let full = cols.pop().unwrap();
        // Keep the first `want` entries of the column.
        let (rows, vals) = full.col(0);
        let mut t = spgemm_sparse::Triples::with_capacity(n, 1, keep.len());
        for &k in &keep {
            t.push(rows[k], 0, vals[k]);
        }
        cols.push(t.to_csc());
    }
    col_concat(&cols).expect("gradient concat")
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::spgemm::symbolic_nnz;

    #[test]
    fn friendster_blows_up_under_squaring() {
        let a = friendster_like(9);
        let (nnz_c, _) = symbolic_nnz(&a, &a).unwrap();
        assert!(nnz_c as usize > 3 * a.nnz(), "{nnz_c} vs {}", a.nnz());
    }

    #[test]
    fn isolates_has_high_compression_factor() {
        let a = isolates_like(6, 30);
        let (nnz_c, stats) = symbolic_nnz(&a, &a).unwrap();
        let cf = stats.flops as f64 / nnz_c as f64;
        assert!(cf > 2.0, "cf = {cf}");
    }

    #[test]
    fn metaclust_sparser_than_isolates() {
        let iso = isolates_like(6, 30);
        let met = metaclust_like(6, 30);
        assert!(met.nnz() < iso.nnz());
    }

    #[test]
    fn ricekmers_aat_stays_thin() {
        let a = ricekmers_like(300);
        let at = spgemm_sparse::ops::transpose(&a);
        let (nnz_c, _) = symbolic_nnz(&a, &at).unwrap();
        // nnz(A·Aᵀ) ≈ nnz(A): no batching needed, as in Table V.
        assert!((nnz_c as usize) < 3 * a.nnz());
    }

    #[test]
    fn gradient_ramps_column_density() {
        let g = gradient_like(400, 40);
        let first_quarter: usize = (0..100).map(|j| g.col_nnz(j)).sum();
        let last_quarter: usize = (300..400).map(|j| g.col_nnz(j)).sum();
        assert!(last_quarter > 5 * first_quarter, "{first_quarter} vs {last_quarter}");
    }

    #[test]
    fn metaclust20m_aat_blows_up() {
        let a = metaclust20m_like(200);
        let at = spgemm_sparse::ops::transpose(&a);
        let (nnz_c, _) = symbolic_nnz(&a, &at).unwrap();
        assert!(
            nnz_c as usize > 3 * a.nnz() / 2,
            "nnz(C) = {nnz_c} vs nnz(A) = {}",
            a.nnz()
        );
    }
}
