//! Shared infrastructure for the paper-reproduction bench harnesses.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper: it builds the scaled-down analogue of the paper's workload
//! (see [`workloads`]), runs the simulated cluster, prints the same
//! rows/series the paper reports, and writes a CSV next to the build
//! artifacts (`target/paper-results/`).
//!
//! Scale note: the paper's runs use 4–282 M-row matrices on 16K–262K
//! cores. The simulator executes every rank for real, so the benches use
//! matrices and rank counts scaled to a single machine; the *shapes* —
//! which step dominates, how steps move with `l`, `b`, `p`, who wins and
//! roughly by what factor — are the reproduction targets, not absolute
//! seconds. See EXPERIMENTS.md for paper-vs-measured notes per figure.

use spgemm_core::{run_spgemm, RunConfig, RunOutput};
use spgemm_sparse::semiring::{PlusTimesF64, Semiring};
use spgemm_sparse::CscMatrix;
use std::path::PathBuf;

pub mod workloads;

/// Directory where bench harnesses drop their CSV series.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("target")
        .join("paper-results");
    std::fs::create_dir_all(&dir).expect("create paper-results dir");
    dir
}

/// Write a CSV artifact and echo its path.
pub fn write_csv(name: &str, contents: &str) {
    let path = out_dir().join(name);
    std::fs::write(&path, contents).expect("write CSV");
    println!("[csv] {}", path.display());
}

/// Run one simulated multiplication, discarding the output (the
/// memory-constrained application pattern used by most figures).
pub fn measure<S: Semiring>(cfg: &RunConfig, a: &CscMatrix<S::T>, b: &CscMatrix<S::T>) -> RunOutput<S::T>
where
    S::T: Send + Sync,
{
    let mut cfg = *cfg;
    cfg.discard_output = true;
    run_spgemm::<S>(&cfg, a, b).expect("simulated SpGEMM failed")
}

/// Shorthand for the common f64 case.
pub fn measure_f64(cfg: &RunConfig, a: &CscMatrix<f64>, b: &CscMatrix<f64>) -> RunOutput<f64> {
    measure::<PlusTimesF64>(cfg, a, b)
}

/// Pretty "speedup arrowheads" like the paper's strong-scaling figures.
pub fn speedup_arrows(totals: &[f64]) -> String {
    totals
        .windows(2)
        .map(|w| format!("{:.2}x", w[0] / w[1]))
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Parallel efficiency `P1·T(P1) / (P2·T(P2))` relative to the first
/// entry, as in Fig. 9.
pub fn parallel_efficiency(ps: &[usize], totals: &[f64]) -> Vec<f64> {
    let (p1, t1) = (ps[0] as f64, totals[0]);
    ps.iter()
        .zip(totals.iter())
        .map(|(&p, &t)| (p1 * t1) / (p as f64 * t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_arrows_format() {
        assert_eq!(speedup_arrows(&[8.0, 4.0, 1.0]), "2.00x -> 4.00x");
    }

    #[test]
    fn efficiency_is_one_for_linear_scaling() {
        let eff = parallel_efficiency(&[16, 64, 256], &[16.0, 4.0, 1.0]);
        for e in eff {
            assert!((e - 1.0).abs() < 1e-12);
        }
    }
}
