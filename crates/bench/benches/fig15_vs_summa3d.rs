//! Fig. 15: head-to-head against the previous SUMMA3D [13].
//!
//! Paper setup: squaring Eukarya with 4 layers, no batching, on 16 and 256
//! nodes; the previous implementation is CombBLAS SUMMA3D with the
//! heap/hybrid sorted kernels. Finding: computation > 8× faster with the
//! new unsorted-hash kernels; communication slightly faster too. (And the
//! previous code *fails outright* when memory runs out — reproduced here
//! by the `InputsExceedMemory`/no-batching path.)
//!
//! Both kernel generations run through the same distributed pipeline; the
//! computation gap also shows up in *real* (wall-clock) local kernel time,
//! measured below alongside the modeled numbers.

use spgemm_bench::{measure_f64, workloads, write_csv};
use spgemm_core::{BackendKind, KernelStrategy, RunConfig};
use spgemm_simgrid::{KernelCounters, StepReport};
use spgemm_sparse::semiring::PlusTimesF64;
use std::time::Instant;

fn main() {
    let a = workloads::eukarya_like();
    println!(
        "Fig. 15: BatchedSUMMA3D (new kernels) vs previous SUMMA3D [13], \
         Eukarya-like n={} nnz={}, l=4, b=1\n",
        a.nrows(),
        a.nnz()
    );
    let mut report = StepReport::new();
    let mut csv = String::from("p,kernels,backend,comp_s,comm_s,total_s,load_imbalance\n");
    for p in [16usize, 256] {
        let mut rows = Vec::new();
        for kernels in [KernelStrategy::Previous, KernelStrategy::New] {
            let mut cfg = RunConfig::new(p, 4);
            cfg.kernels = kernels;
            cfg.forced_batches = Some(1);
            let out = measure_f64(&cfg, &a, &a);
            report.push_with_counters(
                format!("p={p} {}", kernels.name()),
                out.max,
                KernelCounters {
                    allocs: out.kernel_stats.allocs,
                    peak_scratch_bytes: out.kernel_stats.peak_scratch_bytes,
                    memcpy_bytes: out.kernel_stats.memcpy_bytes,
                    load_imbalance: out.load_balance.imbalance(),
                },
            );
            csv.push_str(&format!(
                "{p},{},simgrid,{:.6e},{:.6e},{:.6e},\n",
                kernels.name(),
                out.max.comp_total(),
                out.max.comm_total(),
                out.max.total()
            ));
            rows.push(out.max);
        }
        println!(
            "p={p}: computation {:.1}x faster with new kernels (paper: >8x), \
             communication {:.2}x",
            rows[0].comp_total() / rows[1].comp_total(),
            rows[0].comm_total() / rows[1].comm_total().max(1e-12)
        );
    }
    // Native-backend rows: the same pipeline with genuinely multithreaded
    // kernels; compute seconds below are measured wall-clock, and the
    // Imbal column reports the per-thread max/mean work ratio of the
    // flop-balanced column ranges.
    let native_threads = 4usize;
    for kernels in [KernelStrategy::Previous, KernelStrategy::New] {
        let mut cfg = RunConfig::new(16, 4);
        cfg.kernels = kernels;
        cfg.forced_batches = Some(1);
        cfg.backend = BackendKind::Native { threads: native_threads };
        let out = measure_f64(&cfg, &a, &a);
        report.push_with_counters(
            format!("p=16 {} native t={native_threads}", kernels.name()),
            out.max,
            KernelCounters {
                allocs: out.kernel_stats.allocs,
                peak_scratch_bytes: out.kernel_stats.peak_scratch_bytes,
                memcpy_bytes: out.kernel_stats.memcpy_bytes,
                load_imbalance: out.load_balance.imbalance(),
            },
        );
        csv.push_str(&format!(
            "16,{},native,{:.6e},{:.6e},{:.6e},{:.4}\n",
            kernels.name(),
            out.max.comp_total(),
            out.max.comm_total(),
            out.max.total(),
            out.load_balance.imbalance()
        ));
    }
    println!("\n{}", report.to_table());

    // Real wall-clock cross-check on one process's worth of local work:
    // multiply + merge with each kernel generation (the paper's >8x comes
    // mostly from the merges — cf. Table VII).
    println!("real single-process kernel wall-clock (A² + 4-way stage merge):");
    let stages: Vec<_> = (0..4)
        .map(|s| {
            use spgemm_sparse::ops::{block_range, col_block, row_block};
            let r = block_range(a.ncols(), 4, s);
            let (left, right) = (col_block(&a, r.clone()), row_block(&a, r));
            (left, right)
        })
        .collect();
    let mut timings = Vec::new();
    for kernels in [KernelStrategy::Previous, KernelStrategy::New] {
        let t0 = Instant::now();
        let partials: Vec<_> = stages
            .iter()
            .map(|(l, r)| kernels.local_multiply::<PlusTimesF64>(l, r).unwrap().0)
            .collect();
        let multiply = t0.elapsed();
        let t0 = Instant::now();
        let (_merged, _) = kernels.merge_layer::<PlusTimesF64>(&partials).unwrap();
        let merge = t0.elapsed();
        println!(
            "  {:<28} multiply {multiply:>10.2?}  merge {merge:>10.2?}  total {:>10.2?}",
            kernels.name(),
            multiply + merge
        );
        timings.push((multiply + merge).as_secs_f64());
    }
    println!(
        "  real local-computation speedup: {:.2}x (paper: >8x vs CombBLAS SUMMA3D)",
        timings[0] / timings[1]
    );
    write_csv("fig15_vs_summa3d.csv", &csv);
}
