//! Table II: communication complexity of BatchedSUMMA3D — measured
//! against the paper's closed-form α–β totals, plus an extreme-scale
//! projection.
//!
//! Validation: the simulator counts actual bytes moved and collective
//! rounds per step; the analytic model (`spgemm_core::model`) evaluates
//! Table II's formulas for the same `(p, l, b)`. Bandwidth-term
//! agreement is exact for A-Bcast/B-Bcast on divisible grids; the
//! AllToAll-Fiber formula is the paper's loose `flops/p` bound, so
//! measured ≤ model there (intra-layer compression, as the paper notes).

use spgemm_bench::{measure_f64, write_csv};
use spgemm_core::model::ProblemModel;
use spgemm_core::RunConfig;
use spgemm_simgrid::{stats::total_bytes, Machine, Step};
use spgemm_sparse::gen::er_random;
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::spgemm::symbolic_nnz;

fn main() {
    // Uniform ER matrix: the model's per-process averages are tight.
    let n = 1024;
    let a = er_random::<PlusTimesF64>(n, n, 8, 0x7AB1E2);
    let (_, stats) = symbolic_nnz(&a, &a).unwrap();
    println!(
        "Table II validation: ER n={n}, nnz={}, flops={}\n",
        a.nnz(),
        stats.flops
    );
    println!(
        "{:<14} {:>3} {:>3} {:>3} {:>14} {:>14} {:>7} {:>8} {:>8}",
        "step", "p", "l", "b", "measured(B)", "model(B)", "ratio", "rounds", "model"
    );
    let mut csv =
        String::from("step,p,l,b,measured_bytes,model_bytes,measured_rounds,model_rounds\n");
    for (p, l, b) in [(16usize, 1usize, 1usize), (64, 4, 4), (256, 16, 8)] {
        let mut cfg = RunConfig::new(p, l);
        cfg.forced_batches = Some(b);
        let out = measure_f64(&cfg, &a, &a);
        let pm = ProblemModel {
            nnz_a: a.nnz() as u64,
            nnz_b: a.nnz() as u64,
            flops: stats.flops,
            p,
            l,
            b,
            r: 24,
        };
        let (ra, rb, rf) = pm.rounds();
        // Model totals: bytes received per process × rounds × p.
        let abcast_model = pm.abcast_bytes_per_proc() * ra as f64 * p as f64;
        let bbcast_model = pm.bbcast_bytes_per_proc() * rb as f64 * p as f64;
        let fiber_model = 24.0 * stats.flops as f64; // β-term bound: r·flops total
        for (step, model_bytes, rounds_model) in [
            (Step::ABcast, abcast_model, ra),
            (Step::BBcast, bbcast_model, rb),
            (Step::AllToAllFiber, fiber_model, rf),
        ] {
            let measured = total_bytes(&out.per_rank, step) as f64;
            let rounds = out.per_rank[0].msgs[step as usize];
            println!(
                "{:<14} {p:>3} {l:>3} {b:>3} {measured:>14.0} {model_bytes:>14.0} {:>7.2} {rounds:>8} {rounds_model:>8}",
                step.label(),
                measured / model_bytes
            );
            csv.push_str(&format!(
                "{},{p},{l},{b},{measured:.0},{model_bytes:.0},{rounds},{rounds_model}\n",
                step.label()
            ));
        }
    }
    write_csv("table2_comm_model.csv", &csv);

    // Extreme-scale projection: the paper's regime, straight from the
    // closed forms (simulating 16K ranks is pointless when the formulas
    // are validated above).
    println!("\nExtreme-scale projection (Metaclust50-like: nnz=37e9, flops=92e12, r=24):");
    let machine = Machine::knl();
    for (p, l, b) in [(16384usize, 1usize, 32usize), (16384, 16, 64), (16384, 16, 8)] {
        let pm = ProblemModel {
            nnz_a: 37_000_000_000,
            nnz_b: 37_000_000_000,
            flops: 92_000_000_000_000,
            p,
            l,
            b,
            r: 24,
        };
        println!("\n(p={p}, l={l}, b={b}):");
        print!("{}", pm.table2_rows(&machine));
    }
}
