//! Criterion micro-benchmarks of the virtual MPI runtime itself: real
//! wall-clock overhead of spawning ranks and running collectives. These
//! bound the simulator's intrusiveness — the per-collective overhead must
//! stay far below the local kernel times the distributed benches measure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgemm_simgrid::{run_ranks, Grid3D, Machine, Step};
use std::sync::Arc;

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("simgrid_runtime");
    group.sample_size(10);
    for p in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("spawn_join", p), &p, |b, &p| {
            b.iter(|| run_ranks(p, Machine::knl(), |rank| rank.rank()));
        });
        group.bench_with_input(BenchmarkId::new("bcast_100rounds", p), &p, |b, &p| {
            b.iter(|| {
                run_ranks(p, Machine::knl(), |rank| {
                    let grid = Grid3D::new(rank, 1);
                    for i in 0..100usize {
                        let root = i % grid.row.size();
                        let payload = (grid.row.my_index() == root).then(|| Arc::new(i));
                        rank.bcast(&grid.row, root, payload, 64, Step::ABcast);
                    }
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("allreduce_100rounds", p), &p, |b, &p| {
            b.iter(|| {
                run_ranks(p, Machine::knl(), |rank| {
                    let comm = rank.world_comm();
                    let mut acc = 0u64;
                    for _ in 0..100 {
                        acc = rank.allreduce(&comm, acc + 1, |a, b| a.max(b), 8, Step::Other);
                    }
                    acc
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
