//! Fig. 3: end-to-end HipMCL iterations with BatchedSUMMA3D, 1 layer vs
//! 16 layers.
//!
//! Paper setup: first 10 Markov-clustering iterations of Isolates-small on
//! 65,536 cores; early iterations need multiple batches; the 16-layer
//! setting needs *more* batches yet wins ≈ 2× on most expensive iterations
//! and 1.88× overall — and without batching the workload is simply
//! infeasible. Here: an Isolates-like protein network on 64 simulated
//! ranks with a per-rank budget sized so early iterations batch.

use spgemm_apps::mcl::{markov_cluster, MclParams};
use spgemm_bench::{workloads, write_csv};
use spgemm_core::MemoryBudget;

fn main() {
    let adj = workloads::isolates_like(12, 24);
    let p = 64;
    println!(
        "Fig. 3: HipMCL on Isolates-like protein network (n={}, nnz={}), p={p}\n",
        adj.nrows(),
        adj.nnz()
    );
    let mut csv = String::from("layers,iter,batches,spgemm_s,chaos\n");
    let mut totals = Vec::new();
    for layers in [1usize, 16] {
        let mut params = MclParams::new(p, layers);
        params.select = 24;
        params.max_iters = 10;
        params.chaos_threshold = 1e-4;
        params.budget = MemoryBudget::new(adj.nrows() * params.select * 24 * 10);
        let result = markov_cluster(&adj, &params).expect("clustering failed");
        println!("--- {layers} layer(s) ---");
        println!("{:>4} {:>8} {:>14} {:>10}", "iter", "batches", "SpGEMM(s)", "chaos");
        let mut total = 0.0;
        for (i, it) in result.per_iter.iter().enumerate() {
            println!(
                "{:>4} {:>8} {:>14.5} {:>10.4}",
                i + 1,
                it.nbatches,
                it.breakdown.total(),
                it.chaos
            );
            csv.push_str(&format!(
                "{layers},{},{},{:.6e},{:.4}\n",
                i + 1,
                it.nbatches,
                it.breakdown.total(),
                it.chaos
            ));
            total += it.breakdown.total();
        }
        println!("total SpGEMM time: {total:.5}s\n");
        totals.push(total);
    }
    println!(
        "16-layer vs 1-layer overall speedup: {:.2}x (paper: 1.88x)",
        totals[0] / totals[1]
    );
    write_csv("fig3_hipmcl.csv", &csv);
}
