//! Fig. 12: hyperthreading at extreme scale.
//!
//! Paper setup: squaring Metaclust50 on 4096 KNL nodes; HT=Yes uses all 4
//! hardware threads per core (4× the processes, 1,048,576 threads total),
//! each thread slower, the process grid larger. Finding: computation time
//! drops, communication time grows, total still improves — most at high
//! `l` where compute dominates; hyperthreading does not help once the run
//! is communication-bound. Here: KNL preset at p vs the KNL-HT preset
//! (slower per-thread compute) at 4p.

use spgemm_bench::{measure_f64, workloads, write_csv};
use spgemm_core::{MemoryBudget, RunConfig};
use spgemm_simgrid::{Machine, StepReport};

fn main() {
    let a = workloads::dense_protein_like();
    println!(
        "Fig. 12: hyperthreading, Metaclust50-stand-in (dense protein net) n={} nnz={}\n",
        a.nrows(),
        a.nnz()
    );
    let base_p = 64usize;
    let mut report = StepReport::new();
    let mut csv = String::from("ht,p,layers,comp_s,comm_s,total_s\n");
    for layers in [16usize, 64] {
        let mut rows = Vec::new();
        for (ht, p, machine) in [
            (false, base_p, Machine::knl()),
            (true, base_p * 4, Machine::knl_hyperthreaded()),
        ] {
            let mut cfg = RunConfig::new(p, layers);
            cfg.machine = machine;
            cfg.budget = MemoryBudget::new((8 << 20) * base_p);
            let out = measure_f64(&cfg, &a, &a);
            let (comp, comm, total) = (
                out.max.comp_total(),
                out.max.comm_total(),
                out.max.total(),
            );
            report.push(
                format!("HT={} p={p} l={layers} b={}", if ht { "yes" } else { "no" }, out.nbatches),
                out.max,
            );
            csv.push_str(&format!(
                "{},{p},{layers},{comp:.6e},{comm:.6e},{total:.6e}\n",
                ht as u8
            ));
            rows.push((ht, comp, comm, total));
        }
        let (no, yes) = (&rows[0], &rows[1]);
        println!(
            "l={layers}: HT compute {:.2}x faster, comm {:.2}x slower, total {:.2}x",
            no.1 / yes.1,
            yes.2 / no.2,
            no.3 / yes.3
        );
    }
    println!("\n{}", report.to_table());
    println!(
        "Mechanisms (as in the paper): HT makes computation faster and communication \
         slower. Whether the total improves depends on the compute share —"
    );
    println!(
        "the paper notes hyperthreading \"may not help when SpGEMM becomes \
         communication-bound\", which is the regime of the rows above."
    );

    // Regime study: the same comparison on a machine whose network is fast
    // relative to its cores (the compute-dominated regime of the paper's
    // Fig. 12, where HT wins overall).
    println!("\ncompute-dominated regime (16x network speed, b = 1):");
    for layers in [16usize, 64] {
        let mut rows = Vec::new();
        for (ht, p, mut machine) in [
            (false, base_p, Machine::knl()),
            (true, base_p * 4, Machine::knl_hyperthreaded()),
        ] {
            machine.beta /= 16.0;
            machine.alpha /= 16.0;
            let mut cfg = RunConfig::new(p, layers);
            cfg.machine = machine;
            cfg.budget = MemoryBudget::new((8 << 20) * base_p);
            cfg.forced_batches = Some(1);
            let out = measure_f64(&cfg, &a, &a);
            rows.push((ht, out.max.comp_total(), out.max.comm_total(), out.max.total()));
        }
        let (no, yes) = (&rows[0], &rows[1]);
        println!(
            "  l={layers}: HT compute {:.2}x faster, comm {:.2}x slower, total {:.2}x \
             (paper: total improves, most where compute dominates)",
            no.1 / yes.1,
            yes.2 / no.2,
            no.3 / yes.3
        );
    }
    write_csv("fig12_hyperthreading.csv", &csv);
}
