//! Workspace-reuse benchmark: allocation counts and real time of the
//! batched local pipeline (Table VII-style workload) with and without a
//! long-lived [`SpGemmWorkspace`].
//!
//! A counting `#[global_allocator]` measures *actual* heap traffic: every
//! `alloc`/`realloc` the process performs is one event. One "batched
//! multiply" below is what a rank runs per batch of BatchedSUMMA3D —
//! `√p` stage multiplies, one Merge-Layer, one (sorted) Merge-Fiber — and
//! the benchmark compares the allocating entry points (a fresh workspace
//! per call, the pre-PR behaviour) against one warm workspace reused
//! across all calls and batches. The workspace path only pays the
//! unavoidable exact-size output copies; all scratch is reused.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use spgemm_sparse::gen::rmat;
use spgemm_sparse::merge::{
    merge_hash_sorted, merge_hash_sorted_with_workspace, merge_hash_unsorted,
    merge_hash_unsorted_with_workspace,
};
use spgemm_sparse::ops::{col_block, row_block};
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::spgemm::{spgemm_hash_unsorted, spgemm_hash_unsorted_with_workspace};
use spgemm_sparse::{CscMatrix, SpGemmWorkspace};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting allocation events (alloc + realloc;
/// frees are not events — the metric is how often kernels *hit* the
/// allocator, which is what workspace reuse eliminates).
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Stage operands for one batch: `stages` column/row slabs of an
/// R-MAT square (protein-similarity-like skew, cf. Table V).
fn stage_operands(a: &CscMatrix<f64>, stages: usize) -> Vec<(CscMatrix<f64>, CscMatrix<f64>)> {
    use spgemm_sparse::ops::block_range;
    (0..stages)
        .map(|s| {
            let r = block_range(a.ncols(), stages, s);
            (col_block(a, r.clone()), row_block(a, r))
        })
        .collect()
}

/// One batched multiply through the allocating entry points (fresh
/// workspace inside every call — the pre-workspace behaviour).
fn batch_allocating(stages: &[(CscMatrix<f64>, CscMatrix<f64>)]) -> CscMatrix<f64> {
    let partials: Vec<_> = stages
        .iter()
        .map(|(l, r)| spgemm_hash_unsorted::<PlusTimesF64>(l, r).unwrap().0)
        .collect();
    let (layer, _) = merge_hash_unsorted::<PlusTimesF64>(&partials).unwrap();
    let (fiber, _) = merge_hash_sorted::<PlusTimesF64>(std::slice::from_ref(&layer)).unwrap();
    fiber
}

/// The same batched multiply against one caller-owned workspace.
fn batch_with_workspace(
    stages: &[(CscMatrix<f64>, CscMatrix<f64>)],
    ws: &mut SpGemmWorkspace<f64>,
) -> CscMatrix<f64> {
    let partials: Vec<_> = stages
        .iter()
        .map(|(l, r)| spgemm_hash_unsorted_with_workspace::<PlusTimesF64>(l, r, ws).unwrap().0)
        .collect();
    let (layer, _) = merge_hash_unsorted_with_workspace::<PlusTimesF64>(&partials, ws).unwrap();
    let (fiber, _) =
        merge_hash_sorted_with_workspace::<PlusTimesF64>(std::slice::from_ref(&layer), ws).unwrap();
    fiber
}

fn report_alloc_counts(stages: &[(CscMatrix<f64>, CscMatrix<f64>)]) {
    const BATCHES: u64 = 16;
    // Both paths materialize the same six outputs per batch (4 stage
    // partials + layer merge + fiber merge), each costing exactly three
    // exact-size copies (colptr/rowidx/vals), plus one partials Vec. The
    // scratch metric below subtracts this floor — it is the part workspace
    // reuse is *supposed* to eliminate (tables, heaps, arenas).
    let calls_per_batch = stages.len() as u64 + 2;
    let output_floor = BATCHES * (3 * calls_per_batch + 1);

    let before = alloc_events();
    for _ in 0..BATCHES {
        black_box(batch_allocating(stages));
    }
    let allocating = alloc_events() - before;

    let mut ws = SpGemmWorkspace::<f64>::new();
    // Warm-up batch: grows the arenas to steady-state capacity. Not
    // counted — per-rank workspaces in the distributed run warm up once
    // and serve hundreds of stage multiplies (Fig. 4 sweeps b up to 64).
    black_box(batch_with_workspace(stages, &mut ws));
    let before = alloc_events();
    for _ in 0..BATCHES {
        black_box(batch_with_workspace(stages, &mut ws));
    }
    let reused = alloc_events() - before;

    let total_ratio = allocating as f64 / reused.max(1) as f64;
    let scratch_alloc = allocating.saturating_sub(output_floor);
    let scratch_reuse = reused.saturating_sub(output_floor);
    let scratch_ratio = scratch_alloc as f64 / scratch_reuse.max(1) as f64;
    println!(
        "heap allocation events over {BATCHES} batched multiplies \
         ({} stages + layer merge + fiber merge each):",
        stages.len()
    );
    println!(
        "  fresh workspace per call : {allocating:>8} total ({:.1}/batch; {:.1} scratch)",
        allocating as f64 / BATCHES as f64,
        scratch_alloc as f64 / BATCHES as f64
    );
    println!(
        "  one reused workspace     : {reused:>8} total ({:.1}/batch; {:.1} scratch)",
        reused as f64 / BATCHES as f64,
        scratch_reuse as f64 / BATCHES as f64
    );
    println!(
        "  reduction                : {total_ratio:.1}x total, {scratch_ratio:.1}x scratch \
         (target >=10x scratch)"
    );
    assert!(
        scratch_ratio >= 10.0,
        "workspace reuse must cut scratch allocation events >=10x, got {scratch_ratio:.1}x"
    );
    // The reused path must be at the output floor: zero scratch events in
    // steady state (every event is an exact-size output copy).
    assert!(
        reused <= output_floor,
        "steady-state reuse should be allocation-free beyond output copies: \
         {reused} events vs floor {output_floor}"
    );
}

fn bench_workspace(c: &mut Criterion) {
    let a = rmat::<PlusTimesF64>(11, 8, None, true, 7);
    let stages = stage_operands(&a, 4);

    report_alloc_counts(&stages);

    let mut group = c.benchmark_group("workspace_batch");
    group.sample_size(10);
    group.bench_function("fresh-workspace-per-call", |b| {
        b.iter(|| batch_allocating(&stages));
    });
    let mut ws = SpGemmWorkspace::<f64>::new();
    batch_with_workspace(&stages, &mut ws); // warm
    group.bench_function("reused-workspace", |b| {
        b.iter(|| batch_with_workspace(&stages, &mut ws));
    });
    group.finish();
}

criterion_group!(benches, bench_workspace);
criterion_main!(benches);
