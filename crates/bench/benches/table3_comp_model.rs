//! Table III: computational complexity of BatchedSUMMA3D — measured step
//! times against the paper's closed-form work expressions.
//!
//! Table III (written for the heap-based merging of the prior SUMMA3D
//! \[13\]) says, per process over a whole run: Local-Multiply = `flops/p`
//! (b- and l-independent in total), Merge-Layer = `(flops/p)·lg(p/l)`,
//! Merge-Fiber = `(flops/p)·lg(l)` — the `lg` factors are heap-merge
//! factors. The harness verifies:
//!
//! 1. Local-Multiply's total time is independent of `b`;
//! 2. under the **previous** (heap) kernels, the merges carry the
//!    table's `lg(p/l)` / `lg(l)` factors;
//! 3. under **this paper's** hash kernels the same merges lose the `lg`
//!    factors — which is precisely the Sec. IV-D improvement.

use spgemm_bench::{measure_f64, write_csv};
use spgemm_core::{KernelStrategy, RunConfig};
use spgemm_simgrid::Step;
use spgemm_sparse::gen::er_random;
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::spgemm::symbolic_nnz;

fn main() {
    let n = 4096;
    let a = er_random::<PlusTimesF64>(n, n, 16, 0xAB1E3);
    let (_, stats) = symbolic_nnz(&a, &a).unwrap();
    println!(
        "Table III validation: ER n={n}, nnz={}, flops={}\n",
        a.nnz(),
        stats.flops
    );

    // (1) Local-Multiply's total work is independent of b (fixed l).
    println!("Local-Multiply vs b (p=64, l=4) — Table III: total work flops/p, b-independent:");
    let mut csv = String::from("sweep,kernels,p,l,b,local_multiply_s,merge_layer_s,merge_fiber_s\n");
    let mut lm_times = Vec::new();
    for b in [1usize, 4, 16] {
        let mut cfg = RunConfig::new(64, 4);
        cfg.forced_batches = Some(b);
        let out = measure_f64(&cfg, &a, &a);
        let lm = out.max.secs_of(Step::LocalMultiply);
        println!("  b={b:<3} Local-Multiply {:.3}ms", lm * 1e3);
        csv.push_str(&format!(
            "b,new,64,4,{b},{lm:.6e},{:.6e},{:.6e}\n",
            out.max.secs_of(Step::MergeLayer),
            out.max.secs_of(Step::MergeFiber)
        ));
        lm_times.push(lm);
    }
    let spread = lm_times.iter().copied().fold(0.0f64, f64::max)
        / lm_times.iter().copied().fold(f64::MAX, f64::min);
    println!("  max/min across b: {spread:.2} (≈1 expected)\n");

    // (2, 3) Merges vs l under both kernel generations.
    for (kernels, note) in [
        (
            KernelStrategy::Previous,
            "previous heap merges — Table III's lg factors apply",
        ),
        (
            KernelStrategy::New,
            "this paper's hash merges — the lg factors vanish (Sec. IV-D)",
        ),
    ] {
        println!("Merges vs l (p=64, b=4), {note}:");
        println!(
            "{:>4} {:>16} {:>10} {:>16} {:>10}",
            "l", "Merge-Layer(ms)", "lg(p/l)", "Merge-Fiber(ms)", "lg(l)"
        );
        for l in [1usize, 4, 16, 64] {
            let mut cfg = RunConfig::new(64, l);
            cfg.kernels = kernels;
            cfg.forced_batches = Some(4);
            let out = measure_f64(&cfg, &a, &a);
            let (ml, mf) = (
                out.max.secs_of(Step::MergeLayer),
                out.max.secs_of(Step::MergeFiber),
            );
            println!(
                "{l:>4} {:>16.3} {:>10.1} {:>16.3} {:>10.1}",
                ml * 1e3,
                ((64 / l) as f64).log2(),
                mf * 1e3,
                (l as f64).log2()
            );
            csv.push_str(&format!(
                "l,{},64,{l},4,{:.6e},{ml:.6e},{mf:.6e}\n",
                if kernels == KernelStrategy::New { "new" } else { "previous" },
                out.max.secs_of(Step::LocalMultiply)
            ));
        }
        println!();
    }
    println!(
        "Expected shapes: heap Merge-Fiber grows ~lg(l); heap Merge-Layer shrinks with \
         its lg(p/l) stage factor; hash merges scale with volume only."
    );
    write_csv("table3_comp_model.csv", &csv);
}
