//! Table V: statistics of the test matrices — rows, columns, `nnz(A)`,
//! `nnz(C)`, flops — for every scaled-down workload analogue, in the same
//! format as the paper's table (plus compression factor).
//!
//! This is the calibration sheet for the whole bench suite: it documents
//! which structural regime each stand-in matrix occupies relative to its
//! Table V original (`nnz(C) ≫ nnz(A)` for the batching-critical ones,
//! `nnz(A·Aᵀ) ≈ nnz(A)` for Rice-kmers).

use spgemm_bench::{workloads, write_csv};
use spgemm_sparse::ops::transpose;
use spgemm_sparse::spgemm::symbolic_nnz;
use spgemm_sparse::CscMatrix;

fn row(name: &str, a: &CscMatrix<f64>, aat: bool, csv: &mut String) {
    let b = if aat { transpose(a) } else { a.clone() };
    let (nnz_c, stats) = symbolic_nnz(a, &b).expect("symbolic");
    let op = if aat { "A*A'" } else { "A*A" };
    println!(
        "{name:<18} {op:<5} {:>8} {:>8} {:>10} {:>10} {:>12} {:>7.2}",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        nnz_c,
        stats.flops,
        stats.flops as f64 / nnz_c.max(1) as f64
    );
    csv.push_str(&format!(
        "{name},{op},{},{},{},{nnz_c},{},{:.4}\n",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        stats.flops,
        stats.flops as f64 / nnz_c.max(1) as f64
    ));
}

fn main() {
    println!("Table V analogue: statistics of the bench workloads\n");
    println!(
        "{:<18} {:<5} {:>8} {:>8} {:>10} {:>10} {:>12} {:>7}",
        "matrix", "op", "rows", "cols", "nnz(A)", "nnz(C)", "flops", "cf"
    );
    let mut csv = String::from("matrix,op,rows,cols,nnz_a,nnz_c,flops,cf\n");
    row("eukarya-like", &workloads::eukarya_like(), false, &mut csv);
    row("friendster-like", &workloads::friendster_like(12), false, &mut csv);
    row("isolates-small", &workloads::isolates_like(16, 200), false, &mut csv);
    row("isolates-like", &workloads::isolates_like(16, 250), false, &mut csv);
    row("metaclust50-like", &workloads::metaclust_like(32, 125), false, &mut csv);
    row("dense-protein", &workloads::dense_protein_like(), false, &mut csv);
    row("ricekmers-like", &workloads::ricekmers_like(2500), true, &mut csv);
    row("metaclust20m-like", &workloads::metaclust20m_like(3000), true, &mut csv);
    println!(
        "\nPaper Table V for comparison (trillions-scale): Eukarya 3M/360M/2B/134B, \
         Friendster 66M/3.6B/1T/1.4T, Isolates 70M/68B/984B/301T, \
         Metaclust50 282M/37B/1T/92T, Rice-kmers 5Mx2B/4.5B/6B/12.4B, \
         Metaclust20m 20Mx244M/2B/312B/347B."
    );
    write_csv("table5_matrices.csv", &csv);
}
