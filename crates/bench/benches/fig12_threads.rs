//! Fig. 12 companion: real thread-scaling of the local kernels.
//!
//! The paper runs 16 OpenMP threads per MPI process (Sec. V-A); the Native
//! backend reproduces that level of parallelism with the column-range
//! parallel wrappers in `spgemm_sparse::par`. This bench sweeps the thread
//! count on a Friendster-like power-law squaring and reports measured
//! wall-clock speedup vs one thread for the unsorted-hash and heap
//! kernels, plus the hash merge — the three paths the distributed pipeline
//! drives. Output includes a speedup-vs-threads CSV
//! (`fig12_threads.csv`).
//!
//! Absolute speedups depend on the host: on a ≥8-core machine the hash
//! kernel reaches >3x at 8 threads; on fewer cores the curve flattens at
//! the core count (the harness prints the available parallelism so the
//! numbers can be judged in context).

use criterion::{criterion_group, BenchmarkId, Criterion};
use spgemm_bench::{workloads, write_csv};
use spgemm_sparse::ops::{block_range, col_block, row_block};
use spgemm_sparse::par::{par_merge_hash_unsorted, par_spgemm_hash_unsorted, par_spgemm_heap};
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::{CscMatrix, SpGemmWorkspace};
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn operand() -> CscMatrix<f64> {
    workloads::friendster_like(12)
}

fn arenas(n: usize) -> Vec<SpGemmWorkspace<f64>> {
    (0..n).map(|_| SpGemmWorkspace::new()).collect()
}

/// Stage partials for the merge sweep: a 4-way SUMMA-stage split of A².
fn stage_partials(a: &CscMatrix<f64>) -> Vec<CscMatrix<f64>> {
    (0..4)
        .map(|s| {
            let r = block_range(a.ncols(), 4, s);
            let (left, right) = (col_block(a, r.clone()), row_block(a, r));
            par_spgemm_hash_unsorted::<PlusTimesF64>(&left, &right, &mut arenas(1))
                .unwrap()
                .0
        })
        .collect()
}

fn bench_thread_sweep(c: &mut Criterion) {
    let a = operand();
    let parts = stage_partials(&a);
    let mut group = c.benchmark_group("fig12_threads");
    group.sample_size(10);
    for nthreads in THREADS {
        group.bench_with_input(BenchmarkId::new("hash", nthreads), &nthreads, |b, &n| {
            let mut ws = arenas(n);
            b.iter(|| par_spgemm_hash_unsorted::<PlusTimesF64>(&a, &a, &mut ws).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("heap", nthreads), &nthreads, |b, &n| {
            let mut ws = arenas(n);
            b.iter(|| par_spgemm_heap::<PlusTimesF64>(&a, &a, &mut ws).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("merge-hash", nthreads), &nthreads, |b, &n| {
            let mut ws = arenas(n);
            b.iter(|| par_merge_hash_unsorted::<PlusTimesF64>(&parts, &mut ws).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thread_sweep);

/// Direct timed sweep: median-of-3 wall-clock per thread count, speedup
/// vs 1 thread, CSV artifact.
fn speedup_csv() {
    let a = operand();
    let parts = stage_partials(&a);
    let mut csv = String::from("kernel,threads,secs,speedup\n");
    println!(
        "\nmeasured speedup vs 1 thread (available parallelism: {}):",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let time = |f: &mut dyn FnMut()| {
        let mut samples = [0.0f64; 3];
        for s in &mut samples {
            let t0 = Instant::now();
            f();
            *s = t0.elapsed().as_secs_f64();
        }
        samples.sort_by(f64::total_cmp);
        samples[1]
    };
    type Runner<'a> = (&'static str, Box<dyn FnMut(usize) + 'a>);
    let mut runners: Vec<Runner> = vec![
        (
            "hash",
            Box::new(|n| {
                par_spgemm_hash_unsorted::<PlusTimesF64>(&a, &a, &mut arenas(n)).unwrap();
            }),
        ),
        (
            "heap",
            Box::new(|n| {
                par_spgemm_heap::<PlusTimesF64>(&a, &a, &mut arenas(n)).unwrap();
            }),
        ),
        (
            "merge-hash",
            Box::new(|n| {
                par_merge_hash_unsorted::<PlusTimesF64>(&parts, &mut arenas(n)).unwrap();
            }),
        ),
    ];
    for (name, run) in &mut runners {
        let mut base = 0.0f64;
        for nthreads in THREADS {
            let secs = time(&mut || run(nthreads));
            if nthreads == 1 {
                base = secs;
            }
            let speedup = base / secs.max(1e-12);
            println!("  {name:<12} t={nthreads}: {:>9.2} ms  {speedup:.2}x", secs * 1e3);
            csv.push_str(&format!("{name},{nthreads},{secs:.6e},{speedup:.4}\n"));
        }
    }
    write_csv("fig12_threads.csv", &csv);
}

fn main() {
    let a = operand();
    println!(
        "Fig. 12 companion: thread scaling of local kernels, Friendster-like \
         n={} nnz={}\n",
        a.nrows(),
        a.nnz()
    );
    benches();
    speedup_csv();
}
