//! Fig. 3 follow-on: what the cross-iteration operand session saves the
//! HipMCL driver, iteration by iteration.
//!
//! The paper's Fig. 3 harness re-distributes the iterate every MCL
//! iteration: gather to root, re-scatter both operand styles, re-run the
//! symbolic sweep, and re-ship every stage operand from scratch. The
//! [`IterSession`] driver keeps the iterate resident (no gather/re-scatter
//! round trip), skips the symbolic sweep when the budget is unlimited,
//! fetches only the A columns each stage needs (`SparseFetch`), and
//! answers fetch rounds for unchanged columns from the cross-iteration
//! cache as pruning stabilizes the iterate.
//!
//! Both drivers produce **bit-identical** clusterings and chaos
//! trajectories (asserted below); the comparison is purely about modeled
//! communication volume and critical-path seconds per iteration. The
//! headline numbers are the *warm* iterations (2+): the ISSUE's
//! acceptance bar is ≥ 30 % modeled-byte reduction and a measurable
//! critical-path reduction once the cache is warm.

use spgemm_apps::mcl::{markov_cluster, MclParams, MclResult};
use spgemm_bench::{workloads, write_csv};
use spgemm_core::ExchangeMode;

fn run(adj: &spgemm_sparse::CscMatrix<f64>, p: usize, layers: usize, session: bool) -> MclResult {
    let mut params = MclParams::new(p, layers);
    params.select = 24;
    params.max_iters = 14;
    params.chaos_threshold = 1e-4;
    params.session = session;
    if session {
        params.exchange = ExchangeMode::SparseFetch;
    }
    markov_cluster(adj, &params).expect("clustering failed")
}

fn main() {
    let adj = workloads::isolates_like(12, 24);
    let (p, layers) = (16, 4);
    println!(
        "Fig. 3 (session): HipMCL on Isolates-like network (n={}, nnz={}), p={p} l={layers}\n",
        adj.nrows(),
        adj.nnz()
    );

    let legacy = run(&adj, p, layers, false);
    let sess = run(&adj, p, layers, true);

    // The session is an optimization, not a different algorithm.
    assert_eq!(legacy.labels, sess.labels, "drivers disagree on the clustering");
    assert_eq!(legacy.iterations, sess.iterations);
    for (a, b) in legacy.per_iter.iter().zip(&sess.per_iter) {
        assert_eq!(a.chaos.to_bits(), b.chaos.to_bits(), "chaos trajectory diverged");
        assert_eq!(a.nnz, b.nnz);
    }

    let mut csv = String::from(
        "iter,legacy_bytes,session_bytes,byte_reduction_pct,legacy_s,session_s,\
         time_reduction_pct,fetch_hits,fetch_misses,invalidated_cols,chaos\n",
    );
    println!(
        "{:>4} {:>14} {:>14} {:>8} {:>11} {:>11} {:>8} {:>9} {:>7}",
        "iter", "legacy(MB)", "session(MB)", "bytes↓", "legacy(s)", "session(s)", "time↓", "hit/miss", "inval"
    );
    let mut warm_byte_red = Vec::new();
    let mut warm_time_red = Vec::new();
    for (i, (lg, ss)) in legacy.per_iter.iter().zip(&sess.per_iter).enumerate() {
        let byte_red = 100.0 * (1.0 - ss.modeled_bytes as f64 / lg.modeled_bytes as f64);
        let (lt, st) = (lg.breakdown.total(), ss.breakdown.total());
        let time_red = 100.0 * (1.0 - st / lt);
        if i >= 1 {
            warm_byte_red.push(byte_red);
            warm_time_red.push(time_red);
        }
        println!(
            "{:>4} {:>14.3} {:>14.3} {:>7.1}% {:>11.5} {:>11.5} {:>7.1}% {:>4}/{:<4} {:>7}",
            i + 1,
            lg.modeled_bytes as f64 / 1e6,
            ss.modeled_bytes as f64 / 1e6,
            byte_red,
            lt,
            st,
            time_red,
            ss.fetch_hits,
            ss.fetch_misses,
            ss.invalidated_cols
        );
        csv.push_str(&format!(
            "{},{},{},{:.2},{:.6e},{:.6e},{:.2},{},{},{},{:.4}\n",
            i + 1,
            lg.modeled_bytes,
            ss.modeled_bytes,
            byte_red,
            lt,
            st,
            time_red,
            ss.fetch_hits,
            ss.fetch_misses,
            ss.invalidated_cols,
            ss.chaos
        ));
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nwarm iterations (2+): modeled bytes -{:.1}% (bar: 30%), critical path -{:.1}%",
        avg(&warm_byte_red),
        avg(&warm_time_red)
    );
    assert!(
        avg(&warm_byte_red) >= 30.0,
        "warm-iteration byte reduction {:.1}% under the 30% bar",
        avg(&warm_byte_red)
    );
    assert!(
        avg(&warm_time_red) > 0.0,
        "warm iterations must also shorten the critical path"
    );
    write_csv("fig3_iter_session.csv", &csv);
}
