//! Fig. 14: applicability at small scale — squaring Eukarya, the smallest
//! matrix, at low concurrency.
//!
//! Paper finding: on 16 nodes, layering cuts A-Bcast but barely moves the
//! total (communication doesn't dominate); on 256 nodes, 4 layers wins
//! while 16 layers stops helping because AllToAll-Fiber becomes the new
//! bottleneck — so modest `l` is the right choice at a few hundred nodes.
//! Here: Eukarya-like on 16 and 256 simulated ranks, l ∈ {1, 4, 16}.

use spgemm_bench::{measure_f64, workloads, write_csv};
use spgemm_core::{MemoryBudget, RunConfig};
use spgemm_simgrid::{Machine, Step, StepReport};

fn main() {
    let a = workloads::eukarya_like();
    println!(
        "Fig. 14: squaring Eukarya-like (n={}, nnz={})\n",
        a.nrows(),
        a.nnz()
    );
    let mut report = StepReport::new();
    let mut csv = String::from("p,layers,batches,abcast_s,a2afiber_s,total_s\n");
    for p in [16usize, 256] {
        let mut per_l = Vec::new();
        for layers in [1usize, 4, 16] {
            let mut cfg = RunConfig::new(p, layers);
            cfg.machine = Machine::knl_mini();
            cfg.budget = MemoryBudget::new((768 << 10) * p);
            let out = measure_f64(&cfg, &a, &a);
            report.push(format!("p={p} l={layers} b={}", out.nbatches), out.max);
            csv.push_str(&format!(
                "{p},{layers},{},{:.6e},{:.6e},{:.6e}\n",
                out.nbatches,
                out.max.secs_of(Step::ABcast),
                out.max.secs_of(Step::AllToAllFiber),
                out.max.total()
            ));
            per_l.push(out.max);
        }
        println!("p={p}:");
        println!(
            "  A-Bcast reduction l=1 -> l=16: {:.1}x (layering always cuts broadcasts)",
            per_l[0].secs_of(Step::ABcast) / per_l[2].secs_of(Step::ABcast).max(1e-12)
        );
        println!(
            "  totals: l=1 {:.5}s, l=4 {:.5}s, l=16 {:.5}s",
            per_l[0].total(),
            per_l[1].total(),
            per_l[2].total()
        );
        println!(
            "  AllToAll-Fiber at l=16: {:.5}s (the emerging bottleneck)\n",
            per_l[2].secs_of(Step::AllToAllFiber)
        );
    }
    println!("{}", report.to_table());
    write_csv("fig14_small_matrix.csv", &csv);
}
