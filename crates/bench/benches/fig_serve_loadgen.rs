//! SpGEMM-as-a-service under load: ≥1000 mixed-shape jobs through one
//! resident server process, open- and closed-loop arrival.
//!
//! Not a paper figure — the serving-layer counterpart of Figs. 3/4: the
//! job mix reuses the same scaled-down Friendster-like (fig4) and
//! protein-cluster (fig3 MCL) shapes, at two process counts and two
//! per-job budgets each, so the plan cache sees a repeat-heavy workload
//! (8 distinct plan keys over 1000+ jobs) and the admission controller
//! sees heterogeneous Eq. 2 peaks against one global budget.
//!
//! Reported per campaign: throughput, p50/p99 total and queue latency,
//! peak queue depth, shrink/reject admission decisions, plan-cache and
//! probe-memo hit rates, and the budget high-water mark (always ≤ the
//! global budget — the admission invariant). The run fails if any job is
//! lost or the repeat-heavy mix misses the cache more than half the time.

use spgemm_bench::{workloads, write_csv};
use spgemm_core::serve::{run_loadgen, ArrivalProcess, Priority};
use spgemm_core::{
    JobServer, JobSpec, LoadgenConfig, LoadgenReport, MemoryBudget, ServerConfig,
};
use spgemm_simgrid::Machine;

const JOBS: usize = 1000;
const GLOBAL_BUDGET: usize = 6_000_000;

fn server() -> (JobServer, Vec<JobSpec>) {
    let mut cfg = ServerConfig::new(GLOBAL_BUDGET);
    cfg.machine = Machine::knl_mini();
    cfg.max_concurrency = 4;
    cfg.cache_capacity = 64;
    let server = JobServer::start(cfg);

    // The fig4 social-graph shape and the fig3 MCL protein shape.
    let friendster = server.register(workloads::friendster_like(7));
    let isolates = server.register(workloads::isolates_like(4, 20));

    let mut specs = Vec::new();
    for handle in [friendster, isolates] {
        for p in [4usize, 16] {
            let mut spec = JobSpec::new(handle, handle, p, MemoryBudget::unlimited());
            spec.keep_output = false;
            specs.push(spec.clone());
            // A tight-budget high-priority variant: planned batches go up,
            // and under pressure the shrink path engages.
            spec.budget = MemoryBudget::new(GLOBAL_BUDGET / 3);
            spec.priority = Priority::High;
            specs.push(spec);
        }
    }
    (server, specs)
}

fn campaign(name: &str, arrival: ArrivalProcess) -> LoadgenReport {
    let (server, specs) = server();
    let cfg = LoadgenConfig {
        jobs: JOBS,
        arrival,
        seed: 0x5E21_E0AD,
    };
    let report = run_loadgen(&server, &specs, &cfg);
    server.shutdown();
    println!("\n=== {name} ===\n{}", report.to_table());
    assert_eq!(
        report.completed + report.rejected,
        JOBS,
        "{name}: a submitted job was lost"
    );
    assert!(
        report.server.peak_reserved_bytes <= report.server.budget_bytes,
        "{name}: admission invariant violated"
    );
    assert!(
        report.server.cache.plan_hit_rate() > 0.5,
        "{name}: repeat-heavy mix should hit the plan cache >50% (got {:.0}%)",
        report.server.cache.plan_hit_rate() * 100.0
    );
    report
}

fn main() {
    println!(
        "serve loadgen: {JOBS} jobs per campaign, 8 spec variants over 2 shapes, \
         global budget {} MB",
        GLOBAL_BUDGET / 1_000_000
    );
    let closed = campaign("closed loop (8 tenants)", ArrivalProcess::Closed { concurrency: 8 });
    let open = campaign(
        "open loop (400 jobs/s offered)",
        ArrivalProcess::Open { rate_hz: 400.0 },
    );

    let mut csv = format!("scenario,{}\n", LoadgenReport::csv_header());
    csv.push_str(&format!("closed,{}\n", closed.csv_row()));
    csv.push_str(&format!("open,{}\n", open.csv_row()));
    write_csv("fig_serve_loadgen.csv", &csv);
}
