//! Sparse exchange vs dense broadcast: modeled A-movement volume.
//!
//! Not a paper figure — the companion experiment to the exchange layer
//! (DESIGN.md §11). On hypersparse A·Aᵀ each receiver's needed-row set
//! covers a small fraction of the stage owner's A block, so the
//! point-to-point fetch (4-byte row indices out, column-subset slices
//! back) moves far fewer modeled bytes than broadcasting whole blocks.
//! The byte cut is largest at small `l` (big process rows keep the
//! needed fraction tiny) and shrinks as stage blocks do, but should
//! stay >=2x from l=4 up; the *time* win runs the other way (see
//! DESIGN.md section 11).
//!
//! Volume convention: the broadcast records its payload at every member
//! (q records per (q-1)-delivery tree), and each fetch message is
//! recorded at both endpoints, so raw per-rank sums are normalised to
//! *delivered* bytes before comparing.

use spgemm_bench::{measure_f64, write_csv};
use spgemm_core::{ExchangeMode, RunConfig};
use spgemm_simgrid::{Machine, Step, StepBreakdown};
use spgemm_sparse::gen::rmat;
use spgemm_sparse::ops::transpose;
use spgemm_sparse::semiring::PlusTimesF64;

/// Modeled bytes actually delivered to move A, normalised per the
/// recording convention above.
fn a_volume(per_rank: &[StepBreakdown], mode: ExchangeMode, pr: usize) -> f64 {
    match mode {
        ExchangeMode::DenseBcast => {
            let sum: u64 = per_rank.iter().map(|b| b.bytes_of(Step::ABcast)).sum();
            sum as f64 * (pr - 1) as f64 / pr as f64
        }
        ExchangeMode::SparseFetch => {
            let sum: u64 = per_rank
                .iter()
                .map(|b| b.bytes_of(Step::FetchRequest) + b.bytes_of(Step::FetchReply))
                .sum();
            sum as f64 / 2.0
        }
    }
}

fn main() {
    // Hypersparse square: RMAT at edge factor 1 leaves most columns
    // empty and concentrates the rest, so needed sets stay tiny.
    let a = rmat::<PlusTimesF64>(12, 1, None, false, 5);
    let b = transpose(&a);
    let p = 64;
    println!(
        "Sparse exchange vs dense broadcast: A*At, RMAT scale 12 ef 1 \
         (n={}, nnz={}) on p={p}\n",
        a.nrows(),
        a.nnz()
    );
    println!(
        "{:>4} {:>4} {:>14} {:>14} {:>7}",
        "l", "pr", "dense A(B)", "sparse A(B)", "cut"
    );
    let mut csv = String::from("l,pr,dense_a_bytes,sparse_a_bytes,cut\n");
    let mut cut_at_4_up = f64::INFINITY;
    for l in [1usize, 4, 16] {
        let pr = ((p / l) as f64).sqrt() as usize;
        let mut vols = [0.0f64; 2];
        for (slot, mode) in [ExchangeMode::DenseBcast, ExchangeMode::SparseFetch]
            .into_iter()
            .enumerate()
        {
            let mut cfg = RunConfig::new(p, l);
            cfg.machine = Machine::knl_mini();
            cfg.forced_batches = Some(4);
            cfg.exchange = mode;
            let out = measure_f64(&cfg, &a, &b);
            vols[slot] = a_volume(&out.per_rank, mode, pr);
        }
        let cut = vols[0] / vols[1];
        if l >= 4 {
            cut_at_4_up = cut_at_4_up.min(cut);
        }
        println!(
            "{l:>4} {pr:>4} {:>14.0} {:>14.0} {cut:>6.2}x",
            vols[0], vols[1]
        );
        csv.push_str(&format!("{l},{pr},{:.0},{:.0},{cut:.3}\n", vols[0], vols[1]));
    }
    write_csv("fig_sparse_exchange.csv", &csv);
    println!(
        "\nminimum cut at l>=4: {cut_at_4_up:.2}x (target >=2x) — {}",
        if cut_at_4_up >= 2.0 { "OK" } else { "BELOW TARGET" }
    );
}
