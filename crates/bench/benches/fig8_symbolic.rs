//! Fig. 8: the symbolic step's communication vs computation time as
//! layers increase.
//!
//! Paper setup: Isolates-small on 65,536 cores, l ∈ {1,4,16}: symbolic
//! communication gets > 4× faster at 16 layers (> 2× total), a bigger win
//! than for the numeric multiply because `LocalSymbolic` is so cheap.
//! Here: Isolates-like on 256 ranks.

use spgemm_bench::{measure_f64, workloads, write_csv};
use spgemm_core::{MemoryBudget, RunConfig};
use spgemm_simgrid::{Machine, Step};

fn main() {
    let a = workloads::isolates_like(10, 60);
    let p = 256;
    println!(
        "Fig. 8: symbolic step breakdown, Isolates-like n={} on p={p}\n",
        a.nrows()
    );
    println!(
        "{:>4} {:>14} {:>14} {:>14}",
        "l", "comm(s)", "comp(s)", "total(s)"
    );
    let mut csv = String::from("l,comm_s,comp_s,total_s\n");
    let mut totals = Vec::new();
    let mut comms = Vec::new();
    for l in [1usize, 4, 16] {
        let mut cfg = RunConfig::new(p, l);
            cfg.machine = Machine::knl_mini();
        // Realistic budget so the symbolic step actually runs (not forced).
        cfg.budget = MemoryBudget::new((1 << 20) * p);
        let out = measure_f64(&cfg, &a, &a);
        let comm = out.max.secs_of(Step::SymbolicComm);
        let comp = out.max.secs_of(Step::SymbolicComp);
        println!("{l:>4} {comm:>14.5} {comp:>14.5} {:>14.5}", comm + comp);
        csv.push_str(&format!("{l},{comm:.6e},{comp:.6e},{:.6e}\n", comm + comp));
        totals.push(comm + comp);
        comms.push(comm);
    }
    println!(
        "\ncomm speedup l=1 -> l=16: {:.1}x (paper: >4x); total: {:.1}x (paper: >2x)",
        comms[0] / comms[2],
        totals[0] / totals[2]
    );
    write_csv("fig8_symbolic.csv", &csv);
}
