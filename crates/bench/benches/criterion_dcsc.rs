//! Criterion micro-benchmarks for hypersparse (DCSC) storage: SpGEMM over
//! doubly compressed operands versus the plain CSC kernel, in the regime
//! the 3D distribution creates at scale (`nnz ≪ ncols` local blocks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgemm_sparse::dcsc::{spgemm_hash_dcsc, DcscMatrix};
use spgemm_sparse::semiring::PlusTimesU64;
use spgemm_sparse::spgemm::spgemm_hash_unsorted;
use spgemm_sparse::{CscMatrix, Triples};

/// A hypersparse square matrix: `nnz` entries across `n` columns, `nnz ≪ n`.
fn hypersparse(n: usize, nnz: usize, seed: u64) -> CscMatrix<u64> {
    let mut t = Triples::new(n, n);
    let mut x = seed | 1;
    for _ in 0..nnz {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let r = (x >> 33) as usize % n;
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let c = (x >> 33) as usize % n;
        t.push(r as u32, c as u32, 1);
    }
    t.to_csc_dedup::<PlusTimesU64>()
}

fn bench_dcsc(c: &mut Criterion) {
    let mut group = c.benchmark_group("hypersparse_spgemm");
    group.sample_size(10);
    for (n, nnz) in [(100_000usize, 2_000usize), (1_000_000, 5_000)] {
        let a = hypersparse(n, nnz, 7);
        let b = hypersparse(n, nnz, 8);
        let (da, db) = (DcscMatrix::from_csc(&a), DcscMatrix::from_csc(&b));
        println!(
            "n={n} nnz={} fill={:.5} — DCSC {} B vs CSC {} B",
            a.nnz(),
            da.fill_ratio(),
            da.storage_bytes(),
            da.csc_storage_bytes()
        );
        group.bench_with_input(BenchmarkId::new("csc", n), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| spgemm_hash_unsorted::<PlusTimesU64>(a, b).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("dcsc", n), &(&da, &db), |bch, (da, db)| {
            bch.iter(|| spgemm_hash_dcsc::<PlusTimesU64>(da, db).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dcsc);
criterion_main!(benches);
