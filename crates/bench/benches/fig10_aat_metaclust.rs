//! Fig. 10: computing `A·Aᵀ` on the Metaclust20m-like reads × k-mers
//! matrix, 1 vs 16 layers at two scales.
//!
//! Paper finding: on 64 nodes the 16-layer run needs twice the batches
//! (12 vs 6) and only roughly ties the 1-layer run; on 1024 nodes it wins
//! ≈ 2× even though the 1-layer case needs no batching at all —
//! communication avoidance pays at scale, batched or not. Here: 64 and
//! 256 simulated ranks with a per-rank budget that produces the same
//! batching relationship.

use spgemm_bench::{measure_f64, workloads, write_csv};
use spgemm_core::{MemoryBudget, RunConfig};
use spgemm_simgrid::{Machine, StepReport};
use spgemm_sparse::ops::transpose;

fn main() {
    let a = workloads::metaclust20m_like(3000);
    let at = transpose(&a);
    println!(
        "Fig. 10: A·Aᵀ with Metaclust20m-like matrix ({} reads x {} k-mers, nnz={})\n",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );
    let mut report = StepReport::new();
    let mut csv = String::from("p,layers,batches,total_s\n");
    let mut by_scale = Vec::new();
    for p in [64usize, 256] {
        let mut pair = Vec::new();
        for layers in [1usize, 16] {
            let mut cfg = RunConfig::new(p, layers);
            cfg.machine = Machine::knl_mini();
            cfg.budget = MemoryBudget::new((256 << 10) * p);
            let out = measure_f64(&cfg, &a, &at);
            report.push(
                format!("p={p} l={layers} b={}", out.nbatches),
                out.max,
            );
            csv.push_str(&format!(
                "{p},{layers},{},{:.6e}\n",
                out.nbatches,
                out.max.total()
            ));
            pair.push((out.nbatches, out.max.total()));
        }
        by_scale.push((p, pair));
    }
    println!("{}", report.to_table());
    for (p, pair) in &by_scale {
        println!(
            "p={p}: l=16 uses {} batches vs {} at l=1; speedup {:.2}x",
            pair[1].0,
            pair[0].0,
            pair[0].1 / pair[1].1
        );
    }
    println!(
        "\nExpected shape: modest (or no) win at the small scale where extra batches \
         offset avoidance; clear win at the large scale (paper: ~2x on 1024 nodes)."
    );
    write_csv("fig10_aat_metaclust.csv", &csv);
}
