//! Fig. 9: parallel efficiency of BatchedSUMMA3D on the large matrices.
//!
//! Paper finding: efficiency stays near (or above, thanks to super-linear
//! batch-count collapse) 1 for three of the four big matrices; Metaclust50
//! — the sparsest — drops to ~0.4 at 262K cores because its communication
//! share (48% vs Isolates' 36% at 4096 nodes) scales worse than compute.
//! Here: same efficiency computation over 16 → 1024 simulated ranks, plus
//! the communication-share comparison at the largest scale.

use spgemm_bench::{measure_f64, parallel_efficiency, workloads, write_csv};
use spgemm_simgrid::Machine;
use spgemm_core::{MemoryBudget, RunConfig};
use spgemm_sparse::CscMatrix;

const PS: [usize; 4] = [16, 64, 256, 1024];
const PER_RANK_BYTES: usize = 1 << 20;

fn run_series(a: &CscMatrix<f64>) -> (Vec<f64>, f64) {
    let mut totals = Vec::new();
    let mut comm_share_last = 0.0;
    for &p in &PS {
        let mut cfg = RunConfig::new(p, 16);
            cfg.machine = Machine::knl_mini();
        cfg.budget = MemoryBudget::new(PER_RANK_BYTES * p);
        let out = measure_f64(&cfg, a, a);
        totals.push(out.max.total());
        comm_share_last = out.max.comm_total() / out.max.total();
    }
    (totals, comm_share_last)
}

fn main() {
    let matrices: Vec<(&str, CscMatrix<f64>)> = vec![
        ("friendster", workloads::friendster_like(12)),
        ("isolates-small", workloads::isolates_like(16, 200)),
        ("isolates", workloads::isolates_like(16, 250)),
        ("metaclust50", workloads::metaclust_like(32, 125)),
    ];
    println!("Fig. 9: parallel efficiency, l=16, b from symbolic\n");
    print!("{:<16}", "matrix");
    for p in PS {
        print!(" {:>10}", format!("p={p}"));
    }
    println!(" {:>12}", "comm@max(%)");
    let mut csv = String::from("matrix,p,efficiency,comm_share_at_max\n");
    let mut shares = Vec::new();
    for (label, a) in &matrices {
        let (totals, comm_share) = run_series(a);
        let eff = parallel_efficiency(&PS, &totals);
        print!("{label:<16}");
        for e in &eff {
            print!(" {e:>10.2}");
        }
        println!(" {:>12.0}", comm_share * 100.0);
        for (p, e) in PS.iter().zip(&eff) {
            csv.push_str(&format!("{label},{p},{e:.4},{comm_share:.4}\n"));
        }
        shares.push((*label, comm_share, eff[eff.len() - 1]));
    }
    write_csv("fig9_efficiency.csv", &csv);
    let metaclust = shares.iter().find(|s| s.0 == "metaclust50").unwrap();
    let isolates = shares.iter().find(|s| s.0 == "isolates").unwrap();
    println!(
        "\nMetaclust50 comm share {:.0}% vs Isolates {:.0}% at the largest scale \
         (paper: 48% vs 36%) — the sparser matrix goes communication-bound first.",
        metaclust.1 * 100.0,
        isolates.1 * 100.0
    );
}
