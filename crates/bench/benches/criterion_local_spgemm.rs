//! Criterion micro-benchmarks of the local SpGEMM kernels across
//! compression-factor regimes (real time; complements Table VII and the
//! Sec. IV-D claims: unsorted-hash 30–50% faster than hybrid).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgemm_sparse::gen::{er_random, rmat};
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::spgemm::{spgemm_hash_unsorted, spgemm_heap, spgemm_hybrid, spgemm_spa};
use spgemm_sparse::CscMatrix;

fn pairs() -> Vec<(&'static str, CscMatrix<f64>, CscMatrix<f64>)> {
    // Low cf (~1): sparse uniform. High cf: denser columns. Skewed: R-MAT.
    let er_sparse = er_random::<PlusTimesF64>(4000, 4000, 4, 11);
    let er_dense = er_random::<PlusTimesF64>(2000, 2000, 24, 12);
    let skewed = rmat::<PlusTimesF64>(11, 10, None, true, 13);
    vec![
        ("er-low-cf", er_sparse.clone(), er_sparse),
        ("er-high-cf", er_dense.clone(), er_dense),
        ("rmat-skewed", skewed.clone(), skewed),
    ]
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_spgemm");
    group.sample_size(10);
    for (name, a, b) in pairs() {
        group.bench_with_input(BenchmarkId::new("unsorted-hash", name), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| spgemm_hash_unsorted::<PlusTimesF64>(a, b).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("hybrid-sorted", name), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| spgemm_hybrid::<PlusTimesF64>(a, b).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("heap", name), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| spgemm_heap::<PlusTimesF64>(a, b).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("spa", name), &(&a, &b), |bch, (a, b)| {
            bch.iter(|| spgemm_spa::<PlusTimesF64>(a, b).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
