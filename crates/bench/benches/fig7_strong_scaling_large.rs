//! Fig. 7: strong scaling on the two biggest matrices (Isolates,
//! Metaclust50) — the extreme memory-constrained regime with large batch
//! counts that fall as aggregate memory grows.
//!
//! Paper setup: 16,384 → 262,144 cores, l = 16; Isolates starts at b = 125
//! and reaches superlinear 4.5× node-to-node speedups because `b` collapses
//! (125 → 35) with 4× more memory. Here: 64 → 1024 simulated ranks with
//! constant per-rank budget and deliberately tight memory so the smallest
//! run needs many batches.

use spgemm_bench::{measure_f64, speedup_arrows, workloads, write_csv};
use spgemm_core::{MemoryBudget, RunConfig};
use spgemm_simgrid::{Machine, StepReport};

const PS: [usize; 3] = [64, 256, 1024];
/// Tight per-rank budget: the b=many regime of Fig. 7.
const PER_RANK_BYTES: usize = 192 << 10;

fn main() {
    let isolates = workloads::isolates_like(16, 250);
    let metaclust = workloads::metaclust_like(32, 125);
    let mut csv = String::from("matrix,p,batches,total_s,comm_s,comp_s\n");
    for (label, a) in [("isolates", &isolates), ("metaclust50", &metaclust)] {
        println!(
            "\n=== Fig. 7: squaring {label} (n={}, nnz={}), l=16 ===",
            a.nrows(),
            a.nnz()
        );
        let mut report = StepReport::new();
        let mut totals = Vec::new();
        let mut batches = Vec::new();
        for &p in &PS {
            let mut cfg = RunConfig::new(p, 16);
            cfg.machine = Machine::knl_mini();
            cfg.budget = MemoryBudget::new(PER_RANK_BYTES * p);
            let out = measure_f64(&cfg, a, a);
            totals.push(out.max.total());
            batches.push(out.nbatches);
            report.push(format!("{label} p={p} b={}", out.nbatches), out.max);
            csv.push_str(&format!(
                "{label},{p},{},{:.6e},{:.6e},{:.6e}\n",
                out.nbatches,
                out.max.total(),
                out.max.comm_total(),
                out.max.comp_total()
            ));
        }
        println!("{}", report.to_table());
        println!("batches per bar: {batches:?} (must fall as p grows)");
        println!("speedups between bars: {}", speedup_arrows(&totals));
        println!(
            "overall: {:.1}x at 16x more ranks (paper: 13x Isolates, 6.3x Metaclust50)",
            totals[0] / totals[totals.len() - 1]
        );
        assert!(
            batches.windows(2).all(|w| w[1] <= w[0]),
            "batch count must not grow with memory"
        );
    }
    write_csv("fig7_strong_scaling_large.csv", &csv);
}
