//! Criterion micro-benchmarks of the merge kernels (real time): the
//! paper's order-of-magnitude hash-vs-heap merging claim (Table VII), as
//! a function of the number of merged matrices (= layers or stages).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spgemm_sparse::gen::er_random;
use spgemm_sparse::merge::{merge_hash_sorted, merge_hash_unsorted, merge_heap};
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::CscMatrix;

fn parts(k: usize) -> Vec<CscMatrix<f64>> {
    (0..k)
        .map(|s| er_random::<PlusTimesF64>(4000, 2000, 6, 100 + s as u64))
        .collect()
}

fn bench_merges(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_merge");
    group.sample_size(10);
    for k in [4usize, 16] {
        let ps = parts(k);
        group.bench_with_input(BenchmarkId::new("hash-unsorted", k), &ps, |b, ps| {
            b.iter(|| merge_hash_unsorted::<PlusTimesF64>(ps).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("hash-sorted", k), &ps, |b, ps| {
            b.iter(|| merge_hash_sorted::<PlusTimesF64>(ps).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("heap", k), &ps, |b, ps| {
            b.iter(|| merge_heap::<PlusTimesF64>(ps).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merges);
criterion_main!(benches);
