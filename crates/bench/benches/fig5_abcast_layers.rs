//! Fig. 5: with `b` fixed, A-Broadcast time falls like `√l` as layers
//! increase.
//!
//! Paper setup: squaring Friendster on 65,536 cores, b ∈ {8,…,64}; solid
//! lines (observed) track dashed lines (a factor-of-2 drop per 4× layers).
//! Here: Friendster-like on 256 ranks, l ∈ {1,4,16}, b ∈ {4,16,64}.

use spgemm_bench::{measure_f64, workloads, write_csv};
use spgemm_core::RunConfig;
use spgemm_simgrid::{Machine, Step};

fn main() {
    let a = workloads::friendster_like(11);
    let p = 256;
    println!("Fig. 5: A-Bcast vs layers, Friendster-like n={} on p={p}\n", a.nrows());
    println!(
        "{:>4} {:>4} {:>14} {:>14} {:>8}",
        "b", "l", "observed(s)", "expected(s)", "ratio"
    );
    let mut csv = String::from("b,l,observed_s,expected_s\n");
    for b in [4usize, 16, 64] {
        let mut base = None;
        for l in [1usize, 4, 16] {
            let mut cfg = RunConfig::new(p, l);
            cfg.machine = Machine::knl_mini();
            cfg.forced_batches = Some(b);
            let out = measure_f64(&cfg, &a, &a);
            let observed = out.max.secs_of(Step::ABcast);
            // Dashed line: from the l=1 point, drop by 2 per 4x layers.
            let expected = *base.get_or_insert(observed) / (l as f64).sqrt();
            println!(
                "{b:>4} {l:>4} {observed:>14.5} {expected:>14.5} {:>8.2}",
                observed / expected
            );
            csv.push_str(&format!("{b},{l},{observed:.6e},{expected:.6e}\n"));
        }
        println!();
    }
    write_csv("fig5_abcast_layers.csv", &csv);
    println!("Observed should track the √l-decay line while bandwidth dominates (large b).");
}
