//! Fig. 4 + Table VI: impact of the number of layers `l` and batches `b`
//! on every step of BatchedSUMMA3D.
//!
//! Paper setup: squaring Friendster on 16,384 and 65,536 cores and
//! Isolates-small on 65,536 cores, sweeping l ∈ {1,4,16}, b ∈ {1,…,64}.
//! Here: Friendster-like (R-MAT) and Isolates-like (clustered) matrices on
//! 64 and 256 simulated ranks with the same sweeps. Expected shapes
//! (Table VI): A-Bcast ↑ with b, ↓ with l; B-Bcast ↔ with b, ↓ with l;
//! Local-Multiply ↔ with b, ↓ with l; AllToAll-/Merge-Fiber ↔ with b,
//! ↑ with l.
//!
//! Also runs the paper's implicit ablation: block-cyclic vs plain block
//! batch splitting (Sec. IV-B's Merge-Fiber load-balance argument).

use spgemm_bench::{measure_f64, workloads, write_csv};
use spgemm_core::batched::BatchingStrategy;
use spgemm_core::RunConfig;
use spgemm_simgrid::{Machine, Step, StepReport};
use spgemm_sparse::CscMatrix;

const LAYERS: [usize; 3] = [1, 4, 16];
const BATCHES: [usize; 4] = [1, 4, 16, 64];

fn sweep(label: &str, a: &CscMatrix<f64>, p: usize) -> StepReport {
    let mut report = StepReport::new();
    for &l in &LAYERS {
        for &b in &BATCHES {
            let mut cfg = RunConfig::new(p, l);
            cfg.machine = Machine::knl_mini();
            cfg.forced_batches = Some(b);
            let out = measure_f64(&cfg, a, a);
            report.push(format!("{label} p={p} l={l} b={b}"), out.max);
        }
    }
    report
}

fn trend(x: f64, y: f64) -> &'static str {
    if y > 1.3 * x {
        "up"
    } else if y < x / 1.3 {
        "down"
    } else {
        "flat"
    }
}

/// Table VI from the sweep: direction of each step as b grows (fixed l)
/// and as l grows (fixed b).
fn table6(report: &StepReport) {
    let steps = [
        Step::ABcast,
        Step::BBcast,
        Step::LocalMultiply,
        Step::MergeLayer,
        Step::MergeFiber,
        Step::AllToAllFiber,
    ];
    let find = |l: usize, b: usize| {
        report
            .rows()
            .iter()
            .find(|(lbl, _)| lbl.contains(&format!("l={l} b={b}")))
            .map(|(_, bd)| *bd)
            .expect("sweep row")
    };
    println!(
        "\nTable VI (measured trends; paper: A-Bcast up with b, broadcasts down with l, fiber steps up with l):"
    );
    println!("{:<22} {:>10} {:>10}", "step", "b:1->64", "l:1->16");
    for s in steps {
        let b_dir = trend(find(1, 1).secs_of(s), find(1, 64).secs_of(s));
        let l_dir = trend(find(1, 4).secs_of(s), find(16, 4).secs_of(s));
        println!("{:<22} {:>10} {:>10}", s.label(), b_dir, l_dir);
    }
}

/// Ablation of the block-cyclic batch split (Sec. IV-B).
///
/// The paper chooses blocks of `n/(b·l·√(p/l))` columns with a batch
/// taking every `b`-th block so that ColSplit piece `k` of every batch
/// consists of columns belonging to layer `k`'s sub-slice of `C`'s
/// A-style distribution: after Merge-Fiber, each rank holds exactly the
/// columns it would own as the owner of `C` — no redistribution before
/// the next operation (e.g. HipMCL's next squaring), and the fiber merge
/// load lands where the data lives. Plain block batching scrambles that
/// placement. The metric below is the fraction of output nonzeros that
/// land on their A-style owner rank.
fn ablate_block_split(a: &CscMatrix<f64>, p: usize) {
    use spgemm_core::batched::{batched_summa3d, BatchConfig};
    use spgemm_core::dist::{scatter, sub_block, DistKind};
    use spgemm_simgrid::{run_ranks, Grid3D};
    use spgemm_sparse::semiring::PlusTimesF64;
    use std::sync::Arc;

    println!("\nAblation: block-cyclic (paper) vs plain block batching, p={p} l=4 b=8");
    println!("metric: % of C nonzeros placed on their A-style owner rank after Merge-Fiber");
    for (name, strat) in [
        ("block-cyclic", BatchingStrategy::BlockCyclic),
        ("plain-block", BatchingStrategy::Block),
        ("balanced", BatchingStrategy::Balanced),
    ] {
        let a2 = a.clone();
        let results = run_ranks(p, Machine::knl_mini(), move |rank| {
            let grid = Grid3D::new(rank, 4);
            let da = scatter(
                rank,
                &grid,
                DistKind::AStyle,
                (rank.rank() == 0).then(|| Arc::new(a2.clone())),
            );
            let db = scatter(
                rank,
                &grid,
                DistKind::BStyle,
                (rank.rank() == 0).then(|| Arc::new(a2.clone())),
            );
            // Balanced batching derives its weights from the symbolic
            // pass, so let it run (same batch count target via budget).
            let cfg = BatchConfig {
                batching: strat,
                forced_batches: Some(8),
                ..Default::default()
            };
            let result =
                batched_summa3d::<PlusTimesF64>(rank, &grid, &da, &db, &cfg, |_r, out| {
                    Some(out.piece)
                })
                .expect("batched run failed");
            // This rank's owned column range under C's A-style distribution.
            let own = sub_block(a2.ncols(), grid.pr, grid.j, grid.l, grid.k);
            let mut owned = 0usize;
            let mut total = 0usize;
            for piece in &result.pieces {
                for j in 0..piece.local.ncols() {
                    let g = piece.global_cols[j] as usize;
                    let nnz = piece.local.col_nnz(j);
                    total += nnz;
                    if own.contains(&g) {
                        owned += nnz;
                    }
                }
            }
            (owned, total)
        });
        let owned: usize = results.iter().map(|&(o, _)| o).sum();
        let total: usize = results.iter().map(|&(_, t)| t).sum();
        println!(
            "  {name:<13} {:>6.1}% conformant ({owned}/{total} nnz)",
            100.0 * owned as f64 / total as f64
        );
    }
    println!("Expected: ~100% for block-cyclic and balanced, far less for plain blocks —");
    println!("the conformant layout is what lets HipMCL reuse the output as the next input.");
    println!("(balanced is this repo's extension: symbolic per-column weights equalize");
    println!(" per-batch intermediate volume while keeping the conformant placement.)");
}

fn main() {
    let friendster = workloads::friendster_like(12);
    let isolates = workloads::isolates_like(16, 400);
    println!(
        "Friendster-like: n={} nnz={}; Isolates-like: n={} nnz={}",
        friendster.nrows(),
        friendster.nnz(),
        isolates.nrows(),
        isolates.nnz()
    );

    let mut all = StepReport::new();
    for (label, a, p) in [
        ("friendster", &friendster, 64usize),
        ("friendster", &friendster, 256),
        ("isolates", &isolates, 256),
    ] {
        let rep = sweep(label, a, p);
        println!("\n=== Fig. 4: squaring {label} on p={p} ===");
        println!("{}", rep.to_table());
        if label == "isolates" {
            table6(&rep);
        }
        for (lbl, bd) in rep.rows() {
            all.push(lbl.clone(), *bd);
        }
    }

    ablate_block_split(&friendster, 64);
    write_csv("fig4_layers_batches.csv", &all.to_csv());
}
