//! Fig. 4 + Table VI: impact of the number of layers `l` and batches `b`
//! on every step of BatchedSUMMA3D.
//!
//! Paper setup: squaring Friendster on 16,384 and 65,536 cores and
//! Isolates-small on 65,536 cores, sweeping l ∈ {1,4,16}, b ∈ {1,…,64}.
//! Here: Friendster-like (R-MAT) and Isolates-like (clustered) matrices on
//! 64 and 256 simulated ranks with the same sweeps. Expected shapes
//! (Table VI): A-Bcast ↑ with b, ↓ with l; B-Bcast ↔ with b, ↓ with l;
//! Local-Multiply ↔ with b, ↓ with l; AllToAll-/Merge-Fiber ↔ with b,
//! ↑ with l.
//!
//! Also runs the paper's implicit ablation: block-cyclic vs plain block
//! batch splitting (Sec. IV-B's Merge-Fiber load-balance argument).

use spgemm_bench::{measure_f64, workloads, write_csv};
use spgemm_core::batched::BatchingStrategy;
use spgemm_core::planner::{self, PlannerConfig, ProbeConfig};
use spgemm_core::{KernelStrategy, MemoryBudget, OverlapMode, RunConfig};
use spgemm_simgrid::{Machine, Step, StepReport};
use spgemm_sparse::CscMatrix;
use std::time::Instant;

const LAYERS: [usize; 3] = [1, 4, 16];
const BATCHES: [usize; 4] = [1, 4, 16, 64];

fn sweep(label: &str, a: &CscMatrix<f64>, p: usize) -> StepReport {
    let mut report = StepReport::new();
    for &l in &LAYERS {
        for &b in &BATCHES {
            let mut cfg = RunConfig::new(p, l);
            cfg.machine = Machine::knl_mini();
            cfg.forced_batches = Some(b);
            let out = measure_f64(&cfg, a, a);
            report.push(format!("{label} p={p} l={l} b={b}"), out.max);
        }
    }
    report
}

fn trend(x: f64, y: f64) -> &'static str {
    if y > 1.3 * x {
        "up"
    } else if y < x / 1.3 {
        "down"
    } else {
        "flat"
    }
}

/// Table VI from the sweep: direction of each step as b grows (fixed l)
/// and as l grows (fixed b).
fn table6(report: &StepReport) {
    let steps = [
        Step::ABcast,
        Step::BBcast,
        Step::LocalMultiply,
        Step::MergeLayer,
        Step::MergeFiber,
        Step::AllToAllFiber,
    ];
    let find = |l: usize, b: usize| {
        report
            .rows()
            .iter()
            .find(|(lbl, _)| lbl.contains(&format!("l={l} b={b}")))
            .map(|(_, bd)| *bd)
            .expect("sweep row")
    };
    println!(
        "\nTable VI (measured trends; paper: A-Bcast up with b, broadcasts down with l, fiber steps up with l):"
    );
    println!("{:<22} {:>10} {:>10}", "step", "b:1->64", "l:1->16");
    for s in steps {
        let b_dir = trend(find(1, 1).secs_of(s), find(1, 64).secs_of(s));
        let l_dir = trend(find(1, 4).secs_of(s), find(16, 4).secs_of(s));
        println!("{:<22} {:>10} {:>10}", s.label(), b_dir, l_dir);
    }
}

/// Ablation of the block-cyclic batch split (Sec. IV-B).
///
/// The paper chooses blocks of `n/(b·l·√(p/l))` columns with a batch
/// taking every `b`-th block so that ColSplit piece `k` of every batch
/// consists of columns belonging to layer `k`'s sub-slice of `C`'s
/// A-style distribution: after Merge-Fiber, each rank holds exactly the
/// columns it would own as the owner of `C` — no redistribution before
/// the next operation (e.g. HipMCL's next squaring), and the fiber merge
/// load lands where the data lives. Plain block batching scrambles that
/// placement. The metric below is the fraction of output nonzeros that
/// land on their A-style owner rank.
fn ablate_block_split(a: &CscMatrix<f64>, p: usize) {
    use spgemm_core::batched::{batched_summa3d, BatchConfig};
    use spgemm_core::dist::{scatter, sub_block, DistKind};
    use spgemm_simgrid::{run_ranks, Grid3D};
    use spgemm_sparse::semiring::PlusTimesF64;
    use std::sync::Arc;

    println!("\nAblation: block-cyclic (paper) vs plain block batching, p={p} l=4 b=8");
    println!("metric: % of C nonzeros placed on their A-style owner rank after Merge-Fiber");
    for (name, strat) in [
        ("block-cyclic", BatchingStrategy::BlockCyclic),
        ("plain-block", BatchingStrategy::Block),
        ("balanced", BatchingStrategy::Balanced),
    ] {
        let a2 = a.clone();
        let results = run_ranks(p, Machine::knl_mini(), move |rank| {
            let grid = Grid3D::new(rank, 4);
            let da = scatter(
                rank,
                &grid,
                DistKind::AStyle,
                (rank.rank() == 0).then(|| Arc::new(a2.clone())),
            );
            let db = scatter(
                rank,
                &grid,
                DistKind::BStyle,
                (rank.rank() == 0).then(|| Arc::new(a2.clone())),
            );
            // Balanced batching derives its weights from the symbolic
            // pass, so let it run (same batch count target via budget).
            let cfg = BatchConfig {
                batching: strat,
                forced_batches: Some(8),
                ..Default::default()
            };
            let result =
                batched_summa3d::<PlusTimesF64>(rank, &grid, &da, &db, &cfg, |_r, out| {
                    Some(out.piece)
                })
                .expect("batched run failed");
            // This rank's owned column range under C's A-style distribution.
            let own = sub_block(a2.ncols(), grid.pr, grid.j, grid.l, grid.k);
            let mut owned = 0usize;
            let mut total = 0usize;
            for piece in &result.pieces {
                for j in 0..piece.local.ncols() {
                    let g = piece.global_cols[j] as usize;
                    let nnz = piece.local.col_nnz(j);
                    total += nnz;
                    if own.contains(&g) {
                        owned += nnz;
                    }
                }
            }
            (owned, total)
        });
        let owned: usize = results.iter().map(|&(o, _)| o).sum();
        let total: usize = results.iter().map(|&(_, t)| t).sum();
        println!(
            "  {name:<13} {:>6.1}% conformant ({owned}/{total} nnz)",
            100.0 * owned as f64 / total as f64
        );
    }
    println!("Expected: ~100% for block-cyclic and balanced, far less for plain blocks —");
    println!("the conformant layout is what lets HipMCL reuse the output as the next input.");
    println!("(balanced is this repo's extension: symbolic per-column weights equalize");
    println!(" per-batch intermediate volume while keeping the conformant placement.)");
}

/// Planner regret vs the exhaustive sweep: how much modeled makespan the
/// planner's `(l, b)` choice gives up against the sweep optimum, and how
/// much faster planning is than simulating the whole grid.
///
/// One CSV row per workload: `chosen` is the planner's pick over the same
/// `(l, b)` grid the sweep explored (blocking, new kernels, unlimited
/// budget — so the planner derives `b = 1`, which the sweep grid
/// contains); `regret` compares the *measured* sweep totals of the chosen
/// and best rows, i.e. the cost of the decision by the sweep's own metric.
fn planner_regret(
    label: &str,
    a: &CscMatrix<f64>,
    p: usize,
    sweep_report: &StepReport,
    sweep_secs: f64,
) -> String {
    let mut pcfg = PlannerConfig::new(Machine::knl_mini(), MemoryBudget::unlimited());
    pcfg.layers = Some(LAYERS.to_vec());
    pcfg.kernels = vec![KernelStrategy::New];
    pcfg.overlaps = vec![OverlapMode::Blocking];
    pcfg.include_symbolic = false; // the sweep forces b, skipping Symbolic3D

    let t0 = Instant::now();
    let report = planner::plan(p, a, a, &pcfg).expect("planner failed");
    let plan_secs = t0.elapsed().as_secs_f64();
    let winner = report.winner().expect("unlimited budget is feasible");
    let (chosen_l, chosen_b) = (winner.candidate.layers, winner.batches);

    let measured = |l: usize, b: usize| {
        sweep_report
            .rows()
            .iter()
            .find(|(lbl, _)| lbl.contains(&format!("l={l} b={b}")))
            .map(|(_, bd)| bd.total())
            .expect("sweep row")
    };
    let chosen_total = measured(chosen_l, chosen_b);
    let (mut best_l, mut best_b, mut best_total) = (LAYERS[0], BATCHES[0], f64::INFINITY);
    for &l in &LAYERS {
        for &b in &BATCHES {
            let t = measured(l, b);
            if t < best_total {
                (best_l, best_b, best_total) = (l, b, t);
            }
        }
    }
    let regret_pct = 100.0 * (chosen_total / best_total - 1.0);
    let speedup = sweep_secs / plan_secs.max(1e-12);

    // Probe cost vs a full (every-column) symbolic pass.
    let t0 = Instant::now();
    let _ = planner::probe(a, a, &ProbeConfig::default()).expect("probe failed");
    let probe_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let _ = planner::probe(a, a, &ProbeConfig::exact()).expect("probe failed");
    let full_secs = t0.elapsed().as_secs_f64();

    println!(
        "\n=== Planner regret: {label} p={p} ===\n\
         chosen (l={chosen_l}, b={chosen_b}) measured {chosen_total:.4e}s; \
         sweep best (l={best_l}, b={best_b}) {best_total:.4e}s; regret {regret_pct:.2}%\n\
         plan {:.1}ms vs sweep {:.1}ms: {speedup:.0}x faster; \
         sampled probe {:.2}ms vs full symbolic {:.2}ms ({:.1}x)",
        plan_secs * 1e3,
        sweep_secs * 1e3,
        probe_secs * 1e3,
        full_secs * 1e3,
        full_secs / probe_secs.max(1e-12),
    );
    format!(
        "{label},{p},{:.3},{:.3},{speedup:.1},{chosen_l},{chosen_b},{best_l},{best_b},\
         {chosen_total:.6e},{best_total:.6e},{regret_pct:.3},{:.3},{:.3}\n",
        plan_secs * 1e3,
        sweep_secs * 1e3,
        probe_secs * 1e3,
        full_secs * 1e3,
    )
}

fn main() {
    let friendster = workloads::friendster_like(12);
    let isolates = workloads::isolates_like(16, 400);
    println!(
        "Friendster-like: n={} nnz={}; Isolates-like: n={} nnz={}",
        friendster.nrows(),
        friendster.nnz(),
        isolates.nrows(),
        isolates.nnz()
    );

    let mut all = StepReport::new();
    let mut regret_csv = String::from(
        "workload,p,plan_ms,sweep_ms,speedup,chosen_l,chosen_b,sweep_best_l,sweep_best_b,\
         chosen_total_s,sweep_best_total_s,regret_pct,probe_ms,full_symbolic_ms\n",
    );
    for (label, a, p) in [
        ("friendster", &friendster, 64usize),
        ("friendster", &friendster, 256),
        ("isolates", &isolates, 256),
    ] {
        let t0 = Instant::now();
        let rep = sweep(label, a, p);
        let sweep_secs = t0.elapsed().as_secs_f64();
        println!("\n=== Fig. 4: squaring {label} on p={p} ===");
        println!("{}", rep.to_table());
        if label == "isolates" {
            table6(&rep);
        }
        regret_csv.push_str(&planner_regret(label, a, p, &rep, sweep_secs));
        for (lbl, bd) in rep.rows() {
            all.push(lbl.clone(), *bd);
        }
    }

    ablate_block_split(&friendster, 64);
    write_csv("fig4_layers_batches.csv", &all.to_csv());
    write_csv("fig4_planner_regret.csv", &regret_csv);
}
