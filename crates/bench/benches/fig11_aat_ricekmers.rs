//! Fig. 11: `A·Aᵀ` on the Rice-kmers-like matrix — the communication-bound,
//! no-batching case.
//!
//! Paper finding: Rice-kmers has ~2 nonzeros per k-mer column and
//! `nnz(A·Aᵀ) ≈ nnz(A)`, so b = 1 and the multiply is dominated by
//! communication (including the symbolic step's broadcasts); with 16
//! layers it runs ≈ 6× faster than with 1 layer on 65,536 cores —
//! BatchedSUMMA3D helps *any* SpGEMM at scale, with or without batching.
//! Here: 64 and 256 simulated ranks, l ∈ {1, 4, 16}.

use spgemm_bench::{measure_f64, workloads, write_csv};
use spgemm_core::RunConfig;
use spgemm_simgrid::{Machine, StepReport};
use spgemm_sparse::ops::transpose;

fn main() {
    let a = workloads::ricekmers_like(2500);
    let at = transpose(&a);
    println!(
        "Fig. 11: A·Aᵀ with Rice-kmers-like matrix ({} reads x {} k-mers, nnz={}, ~2 nnz/col)\n",
        a.nrows(),
        a.ncols(),
        a.nnz()
    );
    let mut report = StepReport::new();
    let mut csv = String::from("p,layers,batches,total_s,comm_share\n");
    for p in [64usize, 256] {
        let mut totals = Vec::new();
        for layers in [1usize, 4, 16] {
            let mut cfg = RunConfig::new(p, layers);
            cfg.machine = Machine::knl_mini();
            let cfg = cfg;
            let out = measure_f64(&cfg, &a, &at);
            assert_eq!(out.nbatches, 1, "Rice-kmers must not need batching");
            let share = out.max.comm_total() / out.max.total();
            report.push(format!("p={p} l={layers}"), out.max);
            csv.push_str(&format!(
                "{p},{layers},1,{:.6e},{share:.3}\n",
                out.max.total()
            ));
            totals.push(out.max.total());
        }
        println!(
            "p={p}: l=16 is {:.1}x faster than l=1 (paper: ~6x at 65K cores)",
            totals[0] / totals[2]
        );
    }
    println!("\n{}", report.to_table());
    write_csv("fig11_aat_ricekmers.csv", &csv);
}
