//! Overlap ablation (beyond the paper): blocking vs pipelined SUMMA.
//!
//! The paper's BatchedSUMMA3D issues its per-stage broadcasts blocking
//! (Alg. 1 as written). `OverlapMode::Overlapped` posts stage `s+1`'s
//! `A`/`B` broadcasts before stage `s`'s Local-Multiply and the next
//! batch's stage-0 broadcasts before the current batch's merge phases, so
//! α–β time hides behind compute. This bench quantifies how much of the
//! Fig. 6 critical path that recovers at several scales: total modeled
//! seconds per mode, the hidden-communication total, and the saving.
//!
//! Setup notes: `l = 4` (not Fig. 6's 16) so the layer grids are 2×2 or
//! wider and per-stage broadcasts actually exist — with `pr = 1` there is
//! nothing to pipeline. Batch count is forced so both modes run the
//! identical schedule and the saving is attributable to overlap alone.

use spgemm_bench::{measure_f64, workloads, write_csv};
use spgemm_core::{OverlapMode, RunConfig};
use spgemm_simgrid::{Machine, StepReport};

const PS: [usize; 3] = [16, 64, 256];
const LAYERS: usize = 4;
const BATCHES: usize = 4;

fn main() {
    let a = workloads::friendster_like(12);
    println!(
        "=== Fig. 16 (ablation): blocking vs overlapped SUMMA pipeline, \
         squaring friendster-like (n={}, nnz={}), l={LAYERS}, b={BATCHES} ===",
        a.nrows(),
        a.nnz()
    );
    let mut report = StepReport::new();
    let mut csv = String::from("p,mode,total_s,hidden_s,saving_pct\n");
    for &p in &PS {
        let mut cfg = RunConfig::new(p, LAYERS);
        cfg.machine = Machine::knl_mini();
        cfg.forced_batches = Some(BATCHES);
        let blocking = measure_f64(&cfg, &a, &a);
        cfg.overlap = OverlapMode::Overlapped;
        let overlapped = measure_f64(&cfg, &a, &a);
        let (tb, to) = (blocking.max.total(), overlapped.max.total());
        let saving = 100.0 * (tb - to) / tb;
        report.push(format!("blocking   p={p}"), blocking.max);
        report.push(format!("overlapped p={p}"), overlapped.max);
        println!(
            "p={p}: blocking {tb:.5e}s, overlapped {to:.5e}s \
             ({saving:.1}% saved, {:.5e}s hidden)",
            overlapped.max.overlap_total()
        );
        csv.push_str(&format!("{p},blocking,{tb:.6e},0.0,0.0\n"));
        csv.push_str(&format!(
            "{p},overlapped,{to:.6e},{:.6e},{saving:.2}\n",
            overlapped.max.overlap_total()
        ));
    }
    println!("\n{}", report.to_table());
    write_csv("fig16_overlap.csv", &csv);
}
