//! Family crossover: where 1.5D ColA/InnerABC beat batched SUMMA on
//! sparse-dense SpMM, and where they lose.
//!
//! Sweeps tall-sparse-A × dense-B workloads that vary the knobs the
//! cross-family planner weighs — B width, A weight (shift cost), B
//! storage density, and the memory budget — and for every workload:
//!
//! 1. plans with the full family sweep (`AlgorithmFamily::sweep(p)`),
//! 2. **runs** every feasible per-family best candidate through
//!    `run_spmm`, recording the modeled critical path and communicated
//!    bytes,
//! 3. asserts the planner's pick matches the measured winner — 0% regret
//!    (the pick's measured critical path equals the measured minimum).
//!
//! The four workloads are chosen so each family wins exactly where its
//! mechanism says it should:
//!
//! * `dense-wide`  — fully dense B, unlimited memory: ColA's shift-only
//!   schedule moves nothing but A and wins.
//! * `heavy-a-narrow` — heavy A, narrow B: InnerABC at `c² = p` needs
//!   **zero** shift rounds (each rank starts on its only block) and pays
//!   just a small team allgather; shifting heavy A sinks ColA.
//! * `budget-bound` — wide but 95%-zero B under a tight budget: the 1.5D
//!   stationary dense stripes (which store the zeros) blow the
//!   per-process budget, and batched SUMMA — which sparsifies B and can
//!   batch — is the only feasible family left standing.
//! * `budget-bound-2d` — the same workload with `Summa3dBatched` removed
//!   from the comparison set: Summa2d (the `l = 1` special case) beats
//!   the infeasible 1.5D members, pinning its win. (Against the full
//!   sweep it ties `summa3d l=1` bit-for-bit, so a strict win is only
//!   observable in the restricted set.)
//!
//! CSV: per (workload, family candidate) — predicted seconds, measured
//! comp/comm/total seconds, and measured communicated bytes.

use spgemm_bench::write_csv;
use spgemm_core::planner::{plan, Candidate, PlannerConfig};
use spgemm_core::{
    AlgorithmFamily, ExchangeMode, KernelStrategy, LayerChoice, MemoryBudget, OverlapMode,
    RunConfig,
};
use spgemm_core::harness::run_spmm;
use spgemm_simgrid::Machine;
use spgemm_sparse::gen::er_random;
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::{CscMatrix, DenseBlock};

const P: usize = 16;

struct Workload {
    name: &'static str,
    a: CscMatrix<f64>,
    b: DenseBlock<f64>,
    budget: MemoryBudget,
    families: Vec<AlgorithmFamily>,
    /// The family mechanism expected to win (by `name()`).
    expect: &'static str,
}

/// Dense block where roughly `fill_pct`% of entries are nonzero
/// (deterministic pattern; the rest are exact semiring zeros).
fn dense_with_fill(nrows: usize, ncols: usize, fill_pct: usize, seed: usize) -> DenseBlock<f64> {
    DenseBlock::from_fn(nrows, ncols, |i, j| {
        let h = i.wrapping_mul(31).wrapping_add(j.wrapping_mul(17)).wrapping_add(seed);
        if h % 100 < fill_pct {
            ((h % 7) + 1) as f64
        } else {
            0.0
        }
    })
}

fn workloads() -> Vec<Workload> {
    let full = AlgorithmFamily::sweep(P);
    let no_summa3d: Vec<AlgorithmFamily> = full
        .iter()
        .copied()
        .filter(|f| *f != AlgorithmFamily::Summa3dBatched)
        .collect();
    // Tight budget sized so the 1.5D stationary dense stripes (~256 KB+
    // per process at d = 256) cannot fit, while batched SUMMA's
    // sparsified inputs (~30 KB per process) can.
    let tight = MemoryBudget::new(150 * 1024 * P);
    vec![
        Workload {
            name: "dense-wide",
            a: er_random::<PlusTimesF64>(2048, 2048, 4, 41),
            b: dense_with_fill(2048, 64, 100, 1),
            budget: MemoryBudget::unlimited(),
            families: full.clone(),
            expect: "cola",
        },
        Workload {
            name: "heavy-a-narrow",
            a: er_random::<PlusTimesF64>(1024, 1024, 32, 42),
            b: dense_with_fill(1024, 8, 100, 2),
            budget: MemoryBudget::unlimited(),
            families: full.clone(),
            expect: "innerabc",
        },
        Workload {
            name: "budget-bound",
            a: er_random::<PlusTimesF64>(1024, 1024, 6, 43),
            b: dense_with_fill(1024, 256, 5, 3),
            budget: tight,
            families: full,
            expect: "summa3d",
        },
        Workload {
            name: "budget-bound-2d",
            a: er_random::<PlusTimesF64>(1024, 1024, 6, 43),
            b: dense_with_fill(1024, 256, 5, 3),
            budget: tight,
            families: no_summa3d,
            expect: "summa2d",
        },
    ]
}

/// Build the `RunConfig` that realizes one planner candidate.
fn config_for(candidate: &Candidate, budget: MemoryBudget) -> RunConfig {
    let mut cfg = RunConfig::new(P, 1);
    cfg.machine = Machine::knl_mini();
    cfg.budget = budget;
    cfg.algorithm = candidate.family;
    if !candidate.family.is_15d() {
        cfg.layers = LayerChoice::Fixed(candidate.layers);
        cfg.kernels = candidate.kernels;
        cfg.overlap = candidate.overlap;
        cfg.exchange = candidate.exchange;
    }
    cfg
}

fn main() {
    println!(
        "Family crossover: 1.5D ColA/InnerABC vs batched SUMMA on sparse-dense \
         SpMM, p={P}, planner regret must be 0%\n"
    );
    let mut csv = String::from(
        "workload,family,label,pred_s,batches,comp_s,comm_s,total_s,comm_bytes,picked,winner\n",
    );
    let mut wins: Vec<(&'static str, String)> = Vec::new();

    for w in workloads() {
        let bs = w.b.to_csc::<PlusTimesF64>();
        let mut pcfg = PlannerConfig::new(Machine::knl_mini(), w.budget);
        pcfg.families = w.families.clone();
        pcfg.kernels = vec![KernelStrategy::New];
        pcfg.overlaps = vec![OverlapMode::Blocking];
        pcfg.exchanges = vec![ExchangeMode::DenseBcast];
        let rep = plan(P, &w.a, &bs, &pcfg).expect("plannable workload");
        let pick = rep.winner().expect("at least one feasible family").candidate;

        // Per family: the planner's best candidate of that family, run
        // for real. Infeasible families get a CSV row and no run.
        let mut measured: Vec<(Candidate, f64, f64, f64, u64, usize)> = Vec::new();
        let mut seen: Vec<AlgorithmFamily> = Vec::new();
        for cand in &rep.ranked {
            if seen.contains(&cand.candidate.family) {
                continue;
            }
            seen.push(cand.candidate.family);
            if !cand.feasible() {
                csv.push_str(&format!(
                    "{},{},{},inf,0,,,,,0,0\n",
                    w.name,
                    cand.candidate.family.name(),
                    cand.candidate.label().replace(',', ";"),
                ));
                continue;
            }
            let cfg = config_for(&cand.candidate, w.budget);
            let out = run_spmm::<PlusTimesF64>(&cfg, &w.a, &w.b)
                .unwrap_or_else(|e| panic!("{}: {} failed: {e}", w.name, cand.candidate.label()));
            measured.push((
                cand.candidate,
                out.max.comp_total(),
                out.max.comm_total(),
                out.max.total(),
                out.max.bytes_total(),
                cand.batches,
            ));
        }

        let best = measured
            .iter()
            .copied()
            .reduce(|x, y| if y.3 < x.3 { y } else { x })
            .expect("at least one measured family");
        let picked = measured
            .iter()
            .find(|m| m.0.family == pick.family)
            .expect("planner pick was measured");
        let regret = (picked.3 - best.3) / best.3.max(1e-30);

        for (cand, comp, comm, total, bytes, batches) in &measured {
            let pred = rep
                .ranked
                .iter()
                .find(|c| c.candidate == *cand)
                .map_or(f64::INFINITY, |c| c.total_s);
            csv.push_str(&format!(
                "{},{},{},{:.6e},{},{:.6e},{:.6e},{:.6e},{},{},{}\n",
                w.name,
                cand.family.name(),
                cand.label().replace(',', ";"),
                pred,
                batches,
                comp,
                comm,
                total,
                bytes,
                (cand.family == pick.family) as u8,
                (cand.family == best.0.family) as u8,
            ));
        }

        println!(
            "{:<16} pick {:<16} measured winner {:<16} regret {:.1}%",
            w.name,
            pick.family.label(),
            best.0.family.label(),
            regret * 100.0
        );
        // 0% regret: the planner's pick is measured-fastest (exact modeled
        // clock, so equality — not a tolerance band — is the bar).
        assert!(
            regret <= 1e-9,
            "{}: planner picked {} ({:.3e}s) but {} measured {:.3e}s",
            w.name,
            pick.family.label(),
            picked.3,
            best.0.family.label(),
            best.3
        );
        assert_eq!(
            best.0.family.name(),
            w.expect,
            "{}: expected a {} win, measured winner was {}",
            w.name,
            w.expect,
            best.0.family.label()
        );
        wins.push((w.name, best.0.family.label()));
    }

    // Every family mechanism won somewhere.
    for fam in ["summa2d", "summa3d", "cola", "innerabc"] {
        assert!(
            wins.iter().any(|(_, label)| label.starts_with(fam)),
            "family {fam} never won a workload: {wins:?}"
        );
    }
    println!("\nall four families pinned a win; planner regret 0% on every workload");
    write_csv("fig_family_crossover.csv", &csv);
}
