//! Table VII: previous vs new local computation kernels, real wall-clock.
//!
//! Paper setup: multiplying Isolates-small on 65,536 cores, comparing the
//! previous generation (hybrid sorted SpGEMM [25], heap merging [13]) with
//! this paper's unsorted-hash SpGEMM and hash merging, at l ∈ {1, 4, 16}.
//! Findings: Local-Multiply up to ~30% faster (more with more layers);
//! Merge-Layer and Merge-Fiber an order of magnitude faster.
//!
//! This harness reconstructs one process's local work serially — layer
//! slices of the inner dimension, per-stage partials, per-layer pieces —
//! and measures *real* time for both kernel generations (no cost model).

use spgemm_bench::{workloads, write_csv};
use spgemm_core::KernelStrategy;
use spgemm_sparse::ops::{block_range, col_block, row_block};
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::CscMatrix;
use std::time::Instant;

struct Times {
    local_multiply: f64,
    merge_layer: f64,
    merge_fiber: f64,
}

/// One process's worth of layered work: inner dimension cut into `l`
/// slices; each slice's multiply cut into `stages` stage-partials.
fn run_generation(a: &CscMatrix<f64>, l: usize, stages: usize, strat: KernelStrategy) -> Times {
    let n = a.ncols();
    let mut lm = 0.0;
    let mut merge_layer = 0.0;
    let mut layer_pieces: Vec<CscMatrix<f64>> = Vec::with_capacity(l);
    for k in 0..l {
        let slice = block_range(n, l, k);
        // Stage partials within this layer.
        let mut partials = Vec::with_capacity(stages);
        for s in 0..stages {
            let inner = block_range(slice.len(), stages, s);
            let abs = slice.start + inner.start..slice.start + inner.end;
            let a_piece = col_block(a, abs.clone());
            let b_piece = row_block(a, abs);
            let t = Instant::now();
            let (c, _) = strat
                .local_multiply::<PlusTimesF64>(&a_piece, &b_piece)
                .expect("local multiply");
            lm += t.elapsed().as_secs_f64();
            partials.push(c);
        }
        let t = Instant::now();
        let (merged, _) = strat
            .merge_layer::<PlusTimesF64>(&partials)
            .expect("merge layer");
        merge_layer += t.elapsed().as_secs_f64();
        layer_pieces.push(merged);
    }
    let t = Instant::now();
    let (_final, _) = strat
        .merge_fiber::<PlusTimesF64>(&layer_pieces)
        .expect("merge fiber");
    let merge_fiber = t.elapsed().as_secs_f64();
    Times {
        local_multiply: lm,
        merge_layer,
        merge_fiber,
    }
}

fn main() {
    let a = workloads::isolates_like(12, 110);
    println!(
        "Table VII: real local-kernel time, Isolates-like n={} nnz={}, 4 SUMMA stages\n",
        a.nrows(),
        a.nnz()
    );
    println!(
        "{:>6} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8}",
        "layers", "LM-prev(ms)", "LM-new(ms)", "ratio", "ML-prev(ms)", "ML-new(ms)", "ratio",
        "MF-prev(ms)", "MF-new(ms)", "ratio"
    );
    let mut csv = String::from(
        "layers,lm_prev_s,lm_new_s,merge_layer_prev_s,merge_layer_new_s,merge_fiber_prev_s,merge_fiber_new_s\n",
    );
    for l in [1usize, 4, 16] {
        let prev = run_generation(&a, l, 4, KernelStrategy::Previous);
        let new = run_generation(&a, l, 4, KernelStrategy::New);
        println!(
            "{l:>6} {:>12.2} {:>12.2} {:>8.2} {:>12.2} {:>12.2} {:>8.2} {:>12.2} {:>12.2} {:>8.2}",
            prev.local_multiply * 1e3,
            new.local_multiply * 1e3,
            prev.local_multiply / new.local_multiply,
            prev.merge_layer * 1e3,
            new.merge_layer * 1e3,
            prev.merge_layer / new.merge_layer,
            prev.merge_fiber * 1e3,
            new.merge_fiber * 1e3,
            prev.merge_fiber / new.merge_fiber,
        );
        csv.push_str(&format!(
            "{l},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e},{:.6e}\n",
            prev.local_multiply,
            new.local_multiply,
            prev.merge_layer,
            new.merge_layer,
            prev.merge_fiber,
            new.merge_fiber
        ));
    }
    println!(
        "\nExpected shape (paper Table VII): merges an order of magnitude faster with \
         unsorted-hash; Local-Multiply moderately faster, more so at higher l."
    );
    write_csv("table7_local_kernels.csv", &csv);
}
