//! Fig. 6: strong scaling of BatchedSUMMA3D when squaring Friendster and
//! Isolates-small, with the batch count coming from the symbolic step.
//!
//! Paper setup: 4,096 → 65,536 cores (16×), l = 16, constant memory per
//! node — so aggregate memory grows with scale and `b` falls, producing
//! super-linear A-Bcast reductions. Here: 16 → 1024 simulated ranks with
//! constant per-rank budget. Expected shape: total speedup ≳ p ratio for
//! the flop-heavy matrix, batch counts printed on top of each bar
//! decreasing with p.

use spgemm_bench::{measure_f64, speedup_arrows, workloads, write_csv};
use spgemm_core::{MemoryBudget, RunConfig};
use spgemm_simgrid::{Machine, StepReport};
use spgemm_sparse::CscMatrix;

const PS: [usize; 4] = [16, 64, 256, 1024];
/// Constant per-rank budget (bytes): aggregate memory grows with p.
const PER_RANK_BYTES: usize = 1 << 20;

fn scale_matrix(label: &str, a: &CscMatrix<f64>) -> (StepReport, Vec<f64>, Vec<usize>) {
    let mut report = StepReport::new();
    let mut totals = Vec::new();
    let mut batches = Vec::new();
    for &p in &PS {
        let mut cfg = RunConfig::new(p, 16);
            cfg.machine = Machine::knl_mini();
        cfg.budget = MemoryBudget::new(PER_RANK_BYTES * p);
        let out = measure_f64(&cfg, a, a);
        totals.push(out.max.total());
        batches.push(out.nbatches);
        report.push(format!("{label} p={p} b={}", out.nbatches), out.max);
    }
    (report, totals, batches)
}

fn main() {
    let friendster = workloads::friendster_like(12);
    let isolates = workloads::isolates_like(16, 200);
    let mut csv = String::from("matrix,p,batches,total_s\n");
    for (label, a) in [("friendster", &friendster), ("isolates-small", &isolates)] {
        println!(
            "\n=== Fig. 6: squaring {label} (n={}, nnz={}), l=16, b from symbolic ===",
            a.nrows(),
            a.nnz()
        );
        let (report, totals, batches) = scale_matrix(label, a);
        println!("{}", report.to_table());
        println!("batches per bar: {batches:?}");
        println!("speedups between bars: {}", speedup_arrows(&totals));
        println!(
            "overall speedup at 64x more ranks: {:.1}x (paper: 14x Friendster, 17.3x Isolates-small at 16x cores)",
            totals[0] / totals[totals.len() - 1]
        );
        for ((p, t), b) in PS.iter().zip(&totals).zip(&batches) {
            csv.push_str(&format!("{label},{p},{b},{t:.6e}\n"));
        }
    }
    write_csv("fig6_strong_scaling.csv", &csv);
}
