//! Fig. 13: faster processors on the same network (Cori-KNL vs
//! Cori-Haswell).
//!
//! Paper setup: squaring Isolates-small on 256 nodes of each partition
//! with the identical process grid (16 layers, 23 batches). Finding:
//! computation ≈ 2.1× faster on Haswell, communication ≈ 1.4× faster, so
//! communication's *share* of the total grows — faster processors make
//! communication avoidance more valuable. Here: the same grid under the
//! two machine presets with a forced common batch count.

use spgemm_bench::{measure_f64, workloads, write_csv};
use spgemm_core::RunConfig;
use spgemm_simgrid::{Machine, StepReport};

fn main() {
    let a = workloads::dense_protein_like();
    let (p, layers, batches) = (256usize, 16usize, 8usize);
    println!(
        "Fig. 13: Isolates-like n={} nnz={} on p={p}, l={layers}, b={batches}\n",
        a.nrows(),
        a.nnz()
    );
    let mut report = StepReport::new();
    let mut rows = Vec::new();
    let mut csv = String::from("machine,comp_s,comm_s,total_s,comm_share\n");
    // Mini-α variants preserve each platform's α:β balance at miniature
    // payload sizes (see Machine::knl_mini docs); the 1.4x comm and 2.1x
    // compute relationships between the platforms are unchanged.
    let knl = Machine::knl_mini();
    let haswell = Machine {
        alpha: knl.alpha / 1.4,
        ..Machine::haswell()
    };
    for machine in [knl, haswell] {
        let mut cfg = RunConfig::new(p, layers);
        cfg.machine = machine;
        cfg.forced_batches = Some(batches);
        let out = measure_f64(&cfg, &a, &a);
        let (comp, comm, total) = (
            out.max.comp_total(),
            out.max.comm_total(),
            out.max.total(),
        );
        report.push(machine.name, out.max);
        csv.push_str(&format!(
            "{},{comp:.6e},{comm:.6e},{total:.6e},{:.3}\n",
            machine.name,
            comm / total
        ));
        rows.push((machine.name, comp, comm, total));
    }
    println!("{}", report.to_table());
    let (knl, has) = (&rows[0], &rows[1]);
    println!(
        "computation: {:.2}x faster on Haswell (paper: 2.1x); communication: {:.2}x (paper: 1.4x)",
        knl.1 / has.1,
        knl.2 / has.2
    );
    println!(
        "communication share: {:.0}% on KNL -> {:.0}% on Haswell — faster cores make \
         SpGEMM more communication-bound, as the paper argues for GPU-era clusters.",
        100.0 * knl.2 / knl.3,
        100.0 * has.2 / has.3
    );
    write_csv("fig13_processors.csv", &csv);
}
