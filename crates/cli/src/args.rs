//! Minimal `--key value` argument parsing (no external dependencies; the
//! workspace's dependency policy is documented in DESIGN.md §5).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding the program name).
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
        let command = argv.next().ok_or("missing subcommand")?;
        if command.starts_with('-') {
            return Err(format!("expected a subcommand, found option {command}"));
        }
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        let mut pending: Option<String> = None;
        for arg in argv {
            match pending.take() {
                Some(key) => {
                    if arg.starts_with("--") {
                        flags.push(key);
                        pending = Some(arg.trim_start_matches("--").to_string());
                    } else {
                        options.insert(key, arg);
                    }
                }
                None => {
                    if let Some(key) = arg.strip_prefix("--") {
                        pending = Some(key.to_string());
                    } else {
                        return Err(format!("unexpected positional argument: {arg}"));
                    }
                }
            }
        }
        if let Some(key) = pending {
            flags.push(key);
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// Required string option.
    pub fn req(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Optional string option.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Optional parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("option --{key}: cannot parse {v:?}")),
        }
    }

    /// Boolean flag presence (`--verify` style).
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, String> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["multiply", "--a", "x.mtx", "--procs", "16", "--verify"]).unwrap();
        assert_eq!(a.command, "multiply");
        assert_eq!(a.req("a").unwrap(), "x.mtx");
        assert_eq!(a.get_or("procs", 0usize).unwrap(), 16);
        assert!(a.flag("verify"));
        assert!(!a.flag("square"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["gen"]).unwrap();
        assert_eq!(a.get_or("layers", 4usize).unwrap(), 4);
    }

    #[test]
    fn rejects_positional_and_missing_command() {
        assert!(parse(&["multiply", "stray"]).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&["--procs", "4"]).is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse(&["gen", "--scale", "abc"]).unwrap();
        assert!(a.get_or("scale", 10u32).is_err());
    }
}
