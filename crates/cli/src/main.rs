//! `spgemm` — command-line driver for the IPDPS 2021 reproduction.
//!
//! ```text
//! spgemm gen      --kind er|rmat|clusters|kmer --out M.mtx [shape options]
//! spgemm info     --input M.mtx [--square | --aat]
//! spgemm multiply --a M.mtx [--b N.mtx | --square | --aat] --procs P
//!                 [--layers L | --auto] [--batches B | --budget-mb M]
//!                 [--algorithm summa2d|summa3d|cola|innerabc|auto]
//!                 [--repl-factor C]
//!                 [--kernels new|previous] [--exchange dense|sparse]
//!                 [--backend simgrid|native] [--threads N]
//!                 [--machine knl|haswell|knl-mini|knl-ht]
//!                 [--profile PROFILE.json] [--calibrate-out PROFILE.json]
//!                 [--batching cyclic|block|balanced] [--overlap] [--check]
//!                 [--trace T.json] [--out C.mtx] [--verify] [--json]
//! spgemm plan     --a M.mtx [--b N.mtx | --square | --aat] --procs P
//!                 [--budget-mb M] [--machine NAME | --profile PROFILE.json]
//!                 [--algorithm NAME|auto | --auto] [--repl-factor C]
//!                 [--sample F] [--seed S] [--iters N]
//! spgemm mcl      --input M.mtx --procs P [--layers L] [--inflation I]
//!                 [--select K] [--budget-mb M] [--kernels new|previous]
//!                 [--exchange dense|sparse] [--backend simgrid|native]
//!                 [--threads N] [--overlap] [--no-session] [--no-cache]
//!                 [--machine NAME | --profile PROFILE.json]
//! spgemm triangles --input M.mtx --procs P [--layers L]
//! spgemm overlap  --input M.mtx --procs P [--layers L] [--min-shared S]
//! spgemm audit    [--sweep [--procs "4,16,64,256"]] [--json]
//!                 [--inject skip-wait|wrong-fetch-tag|skip-collective|wrong-root]
//!                 [--shape fig3-mcl|fig4-friendster|fig4-isolates] [--procs P]
//!                 [--layers L] [--batches B | --auto-target T]
//!                 [--exchange dense|sparse] [--overlap] [--iters N]
//!                 [--algorithm summa3d|cola|innerabc] [--repl-factor C]
//! spgemm serve    --budget-mb M [--max-concurrency N] [--cache-size K]
//!                 [--algorithm NAME|auto] [--repl-factor C]
//!                 [--backend simgrid|native] [--machine NAME] [--no-shrink]
//!                 [--loadgen [--jobs N] [--arrival open|closed] [--rate R]
//!                  [--concurrency C] [--seed S] [--csv OUT.csv]]
//! ```
//!
//! `plan` prints the planner's ranked candidate report and runs nothing;
//! `multiply --auto` plans and then runs the winner. `--profile` loads
//! calibrated machine constants written by `--calibrate-out`. `plan
//! --iters N` amortizes one-time setup costs over `N` iterations of an
//! iterative application (MCL/BFS), which can flip the winning exchange
//! mode.
//!
//! `mcl` keeps the iterate resident across iterations by default (the
//! cross-iteration operand-caching session); `--no-session` selects the
//! legacy gather/re-scatter driver and `--no-cache` disables fetch-state
//! memoization while keeping the session.
//!
//! `--backend native` runs the local kernels for real on `--threads N` OS
//! threads (default: all available cores) and charges their **measured**
//! wall-clock seconds to the per-step report; communication stays modeled.
//! Combining `--backend native` with `--calibrate-out` fits a machine
//! profile from the measured kernel times of the run.
//!
//! `audit` extracts communication schedules **symbolically** — no matrices
//! are built, no payload bytes move — and verifies cross-rank agreement,
//! deadlock-freedom of the fetch conversation, nonblocking-handle
//! discipline, and the Eq. 2 memory bound. `--sweep` enumerates the
//! planner's full candidate grid; `--inject` plants a named schedule bug
//! to demonstrate detection (the run then *fails* with the configuration
//! and offending event); `--json` emits a machine-readable report. The
//! command exits nonzero iff any audited configuration has a violation.
//!
//! `multiply --perturb-seed S` and `mcl --perturb-seed S` run the
//! simulation under seeded schedule perturbation (deterministic
//! wakeup-order jitter at every communication point); results must be
//! bit-identical under any seed.

#![forbid(unsafe_code)]

mod args;

use args::Args;
use spgemm_apps::mcl::{markov_cluster, MclParams};
use spgemm_apps::overlap::{find_overlaps, OverlapConfig};
use spgemm_apps::triangles::{count_triangles, TriangleConfig};
use spgemm_core::batched::BatchingStrategy;
use spgemm_core::planner::{self, CalibrationInput, MachineProfile, PlannerConfig, ProbeConfig};
use spgemm_core::{
    run_spgemm, AlgorithmFamily, BackendKind, ExchangeMode, KernelStrategy, LayerChoice,
    MemoryBudget, OverlapMode, RunConfig,
};
use spgemm_simgrid::CheckMode;
use spgemm_simgrid::{Machine, StepReport};
use spgemm_sparse::gen::{clustered_similarity, er_random, kmer_matrix, rmat};
use spgemm_sparse::io::{read_matrix_market_file, write_matrix_market_file};
use spgemm_sparse::ops::transpose;
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::spgemm::{spgemm_spa, symbolic_nnz};
use spgemm_sparse::CscMatrix;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv = std::env::args().skip(1);
    match Args::parse(argv).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "run with a subcommand: gen | info | multiply | plan | mcl | triangles | \
                 overlap | audit | serve"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "gen" => cmd_gen(args),
        "info" => cmd_info(args),
        "multiply" => cmd_multiply(args),
        "plan" => cmd_plan(args),
        "mcl" => cmd_mcl(args),
        "triangles" => cmd_triangles(args),
        "overlap" => cmd_overlap(args),
        "audit" => cmd_audit(args),
        "serve" => cmd_serve(args),
        other => Err(format!("unknown subcommand: {other}")),
    }
}

fn machine_by_name(name: &str) -> Result<Machine, String> {
    match name {
        "knl" => Ok(Machine::knl()),
        "haswell" => Ok(Machine::haswell()),
        "knl-mini" => Ok(Machine::knl_mini()),
        "knl-ht" => Ok(Machine::knl_hyperthreaded()),
        other => Err(format!("unknown machine preset: {other}")),
    }
}

/// Resolve the cost-model machine: `--profile FILE` (calibrated
/// constants) wins over `--machine NAME` (preset).
fn machine_from_args(args: &Args) -> Result<Machine, String> {
    if let Some(path) = args.opt("profile") {
        let profile = MachineProfile::load(Path::new(path)).map_err(|e| e.to_string())?;
        // Status line on stderr so `multiply --json` stays parseable.
        eprintln!("loaded machine profile from {path} ({})", profile.source);
        Ok(profile.to_machine())
    } else {
        machine_by_name(args.opt("machine").unwrap_or("knl"))
    }
}

/// `--algorithm NAME [--repl-factor C]`, shared by multiply/plan/serve.
enum AlgorithmArg {
    /// A concrete family, `--repl-factor` folded in for the 1.5D names.
    Fixed(AlgorithmFamily),
    /// `--algorithm auto`: sweep every family valid at `p`.
    Auto,
}

fn algorithm_from_args(args: &Args) -> Result<Option<AlgorithmArg>, String> {
    let c = args.get_or("repl-factor", 1usize)?;
    match args.opt("algorithm") {
        None => {
            if args.opt("repl-factor").is_some() {
                return Err("--repl-factor needs --algorithm cola or --algorithm innerabc".into());
            }
            Ok(None)
        }
        Some("auto") => {
            if args.opt("repl-factor").is_some() {
                return Err(
                    "--algorithm auto sweeps every replication factor; drop --repl-factor".into(),
                );
            }
            Ok(Some(AlgorithmArg::Auto))
        }
        Some(name) => {
            let fam = AlgorithmFamily::parse(name, c).map_err(|e| e.to_string())?;
            if args.opt("repl-factor").is_some() && !fam.is_15d() {
                return Err(format!(
                    "--repl-factor only applies to the 1.5D families (cola, innerabc), not {name}"
                ));
            }
            Ok(Some(AlgorithmArg::Fixed(fam)))
        }
    }
}

fn kernels_by_name(name: &str) -> Result<KernelStrategy, String> {
    match name {
        "new" => Ok(KernelStrategy::New),
        "previous" => Ok(KernelStrategy::Previous),
        other => Err(format!("unknown kernel strategy: {other}")),
    }
}

fn load(path: &str) -> Result<CscMatrix<f64>, String> {
    read_matrix_market_file(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let kind = args.req("kind")?;
    let out = args.req("out")?.to_string();
    let seed = args.get_or("seed", 1u64)?;
    let m: CscMatrix<f64> = match kind {
        "er" => {
            let n = args.get_or("n", 1000usize)?;
            let deg = args.get_or("degree", 8usize)?;
            er_random::<PlusTimesF64>(n, n, deg, seed)
        }
        "rmat" => {
            let scale = args.get_or("scale", 10u32)?;
            let ef = args.get_or("edge-factor", 12usize)?;
            rmat::<PlusTimesF64>(scale, ef, None, true, seed)
        }
        "clusters" => {
            let nclusters = args.get_or("clusters", 8usize)?;
            let size = args.get_or("cluster-size", 100usize)?;
            let intra = args.get_or("intra", 12usize)?;
            let inter = args.get_or("inter", 1usize)?;
            clustered_similarity(nclusters, size, intra, inter, seed)
        }
        "kmer" => {
            let reads = args.get_or("reads", 1000usize)?;
            let kmers = args.get_or("kmers", 8000usize)?;
            let per = args.get_or("reads-per-kmer", 3usize)?;
            kmer_matrix(reads, kmers, per, seed).map(|v| v as f64)
        }
        other => return Err(format!("unknown matrix kind: {other}")),
    };
    write_matrix_market_file(&m, Path::new(&out)).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {}x{} matrix with {} nonzeros to {out}", m.nrows(), m.ncols(), m.nnz());
    Ok(())
}

fn operands(args: &Args, a_key: &str) -> Result<(CscMatrix<f64>, CscMatrix<f64>), String> {
    let a = load(args.req(a_key)?)?;
    let b = if args.flag("square") {
        a.clone()
    } else if args.flag("aat") {
        transpose(&a)
    } else if let Some(bp) = args.opt("b") {
        load(bp)?
    } else {
        return Err("need one of --b FILE, --square, or --aat".into());
    };
    Ok((a, b))
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let (a, b) = if args.opt("b").is_some() || args.flag("square") || args.flag("aat") {
        operands(args, "input")?
    } else {
        let a = load(args.req("input")?)?;
        let b = a.clone();
        (a, b)
    };
    let (nnz_c, stats) = symbolic_nnz(&a, &b).map_err(|e| e.to_string())?;
    // A Table V-style row.
    println!("rows: {}", a.nrows());
    println!("columns: {}", a.ncols());
    println!("nnz(A): {}", a.nnz());
    println!("nnz(B): {}", b.nnz());
    println!("nnz(C): {nnz_c}");
    println!("flops: {}", stats.flops);
    println!("compression factor: {:.3}", stats.flops as f64 / nnz_c.max(1) as f64);
    println!(
        "memory at r=24 B/nnz: inputs {:.2} MB, unmerged output up to {:.2} MB",
        ((a.nnz() + b.nnz()) * 24) as f64 / 1e6,
        (stats.flops * 24) as f64 / 1e6
    );
    Ok(())
}

fn cmd_multiply(args: &Args) -> Result<(), String> {
    let (a, b) = operands(args, "a")?;
    let p = args.get_or("procs", 16usize)?;
    let mut cfg = RunConfig::new(p, args.get_or("layers", 1usize)?);
    if args.flag("auto") {
        cfg.layers = LayerChoice::Auto;
    }
    cfg.machine = machine_from_args(args)?;
    cfg.kernels = kernels_by_name(args.opt("kernels").unwrap_or("new"))?;
    if let Some(x) = args.opt("exchange") {
        cfg.exchange = ExchangeMode::parse(x)?;
    }
    match args.opt("backend") {
        Some("native") => {
            cfg.backend = BackendKind::Native {
                threads: match args.opt("threads") {
                    Some(t) => t.parse().map_err(|_| "bad --threads")?,
                    None => BackendKind::available_threads(),
                },
            };
        }
        Some("simgrid") => {
            cfg.backend = BackendKind::Simgrid;
            if args.opt("threads").is_some() {
                return Err("--threads requires --backend native".into());
            }
        }
        None => {
            // cfg.backend already honours SPGEMM_BACKEND via default_kind.
            if let Some(t) = args.opt("threads") {
                if matches!(cfg.backend, BackendKind::Native { .. }) {
                    cfg.backend = BackendKind::Native {
                        threads: t.parse().map_err(|_| "bad --threads")?,
                    };
                } else {
                    return Err("--threads requires --backend native".into());
                }
            }
        }
        Some(other) => return Err(format!("unknown backend: {other}")),
    }
    cfg.batching = match args.opt("batching").unwrap_or("cyclic") {
        "cyclic" => BatchingStrategy::BlockCyclic,
        "block" => BatchingStrategy::Block,
        "balanced" => BatchingStrategy::Balanced,
        other => return Err(format!("unknown batching strategy: {other}")),
    };
    if let Some(b) = args.opt("batches") {
        cfg.forced_batches = Some(b.parse().map_err(|_| "bad --batches")?);
    } else if let Some(mb) = args.opt("budget-mb") {
        let mb: f64 = mb.parse().map_err(|_| "bad --budget-mb")?;
        cfg.budget = MemoryBudget::new((mb * 1e6) as usize);
    }
    if args.flag("overlap") {
        cfg.overlap = OverlapMode::Overlapped;
    }
    if args.flag("check") {
        cfg.check = CheckMode::Check;
    }
    if let Some(s) = args.opt("perturb-seed") {
        cfg.perturb = Some(s.parse().map_err(|_| "bad --perturb-seed")?);
    }
    if args.opt("trace").is_some() {
        cfg.trace = true;
    }
    let json = args.flag("json");
    match algorithm_from_args(args)? {
        None => {}
        Some(AlgorithmArg::Fixed(fam)) => {
            fam.validate(p).map_err(|e| e.to_string())?;
            cfg.algorithm = fam;
        }
        Some(AlgorithmArg::Auto) => {
            // Cross-family planning: keep the user's kernel/overlap/
            // exchange choices (`for_run` semantics) but open the family
            // dimension, then run the predicted winner.
            let mut pcfg = PlannerConfig::for_run(&cfg);
            pcfg.layers = None;
            pcfg.families = AlgorithmFamily::sweep(p);
            let report = planner::plan(p, &a, &b, &pcfg).map_err(|e| e.to_string())?;
            let winner = report
                .winner()
                .ok_or("algorithm auto: no candidate is feasible under the budget")?
                .candidate;
            cfg.algorithm = winner.family;
            cfg.layers = LayerChoice::Fixed(winner.layers);
            cfg.kernels = winner.kernels;
            cfg.overlap = winner.overlap;
            cfg.exchange = winner.exchange;
            if !json {
                println!("auto algorithm choice ({}):\n{}", winner.label(), report.to_table());
            }
        }
    }
    let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).map_err(|e| e.to_string())?;
    let layers = out.layers;
    if let Some(plan) = &out.plan {
        if !json {
            println!("auto layer choice:\n{}", plan.to_table());
        }
    }
    if let (Some(path), Some(traces)) = (args.opt("trace"), &out.traces) {
        let trace_json = spgemm_simgrid::chrome_trace_json(traces);
        std::fs::write(path, trace_json).map_err(|e| e.to_string())?;
        if !json {
            println!("wrote Chrome trace to {path}");
        }
    }
    let c = out.c.as_ref().expect("product gathered");
    if !json {
        if cfg.algorithm.is_15d() {
            println!(
                "C: {}x{} with {} nonzeros, computed by {} on {} processes",
                c.nrows(),
                c.ncols(),
                c.nnz(),
                cfg.algorithm.label(),
                p
            );
        } else {
            println!(
                "C: {}x{} with {} nonzeros, computed in {} batch(es) on a {}x{}x{} grid",
                c.nrows(),
                c.ncols(),
                c.nnz(),
                out.nbatches,
                ((p / layers) as f64).sqrt() as usize,
                ((p / layers) as f64).sqrt() as usize,
                layers
            );
        }
        if let Some(sym) = &out.symbolic {
            println!(
                "symbolic: b={} (Eq.2 bound {:?}), flops {}, max unmerged/process {}",
                sym.batches, sym.eq2_lower_bound, sym.flops, sym.max_unmerged_nnz
            );
        }
        let mut report = StepReport::new();
        report.push(format!("p={p} l={layers} b={}", out.nbatches), out.max);
        if let BackendKind::Native { threads } = cfg.backend {
            println!(
                "\nbackend: native ({threads} kernel thread(s)/process, per-thread load \
                 imbalance {:.2}); kernel seconds below are measured, communication modeled:\n{}",
                out.load_balance.imbalance(),
                report.to_table()
            );
        } else {
            println!("\nmodeled per-step seconds (max over processes):\n{}", report.to_table());
        }
    }
    let mut verified = None;
    if args.flag("verify") {
        let (reference, _) = spgemm_spa::<PlusTimesF64>(&a, &b).map_err(|e| e.to_string())?;
        if c.approx_eq(&reference, 1e-9) {
            verified = Some(true);
            if !json {
                println!("verification against serial reference: OK");
            }
        } else {
            return Err("verification FAILED: distributed product differs from serial".into());
        }
    }
    if json {
        println!("{}", multiply_json(&cfg, &out, p, verified));
    }
    if let Some(path) = args.opt("out") {
        write_matrix_market_file(c, Path::new(path)).map_err(|e| e.to_string())?;
        if !json {
            println!("wrote product to {path}");
        }
    }
    if let Some(path) = args.opt("calibrate-out") {
        let input = CalibrationInput {
            p,
            layers,
            per_rank: &out.per_rank,
            total_work_units: Some(out.kernel_stats.work_units),
            threads: match cfg.backend {
                BackendKind::Native { threads } => Some(threads),
                BackendKind::Simgrid => None,
            },
        };
        let profile = planner::calibrate(&cfg.machine, &input);
        profile
            .save(Path::new(path))
            .map_err(|e| e.to_string())?;
        if !json {
            println!(
                "wrote calibrated machine profile to {path} (alpha {:.3e}, beta {:.3e}, \
                 secs/work-unit {:.3e})",
                profile.alpha, profile.beta, profile.secs_per_work_unit
            );
        }
    }
    Ok(())
}

/// Machine-readable `multiply` result, in the same hand-rolled style as
/// `audit --json` (no serializer dependency; keys stable for scripting).
fn multiply_json(
    cfg: &RunConfig,
    out: &spgemm_core::RunOutput<f64>,
    p: usize,
    verified: Option<bool>,
) -> String {
    use spgemm_simgrid::clock::ALL_STEPS;
    let c = out.c.as_ref().expect("product gathered");
    let side = ((p / out.layers) as f64).sqrt() as usize;
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"c\": {{\"rows\": {}, \"cols\": {}, \"nnz\": {}}},\n",
        c.nrows(),
        c.ncols(),
        c.nnz()
    ));
    s.push_str(&format!("  \"procs\": {p},\n"));
    s.push_str(&format!("  \"grid\": [{side}, {side}, {}],\n", out.layers));
    s.push_str(&format!("  \"layers\": {},\n", out.layers));
    s.push_str(&format!("  \"batches\": {},\n", out.nbatches));
    s.push_str(&format!("  \"algorithm\": \"{}\",\n", cfg.algorithm.name()));
    s.push_str(&format!("  \"repl_factor\": {},\n", cfg.algorithm.repl_factor()));
    match cfg.backend {
        BackendKind::Native { threads } => {
            s.push_str("  \"backend\": \"native\",\n");
            s.push_str(&format!("  \"threads\": {threads},\n"));
            s.push_str(&format!(
                "  \"kernel_imbalance\": {:.4},\n",
                out.load_balance.imbalance()
            ));
        }
        BackendKind::Simgrid => s.push_str("  \"backend\": \"simgrid\",\n"),
    }
    match &out.symbolic {
        Some(sym) => {
            let eq2 = sym
                .eq2_lower_bound
                .map_or_else(|| "null".into(), |b| b.to_string());
            s.push_str(&format!(
                "  \"symbolic\": {{\"batches\": {}, \"eq2_lower_bound\": {eq2}, \
                 \"flops\": {}, \"max_unmerged_nnz\": {}}},\n",
                sym.batches, sym.flops, sym.max_unmerged_nnz
            ));
        }
        None => s.push_str("  \"symbolic\": null,\n"),
    }
    s.push_str(&format!(
        "  \"peak_bytes_per_proc\": {},\n",
        out.peak_bytes.iter().copied().max().unwrap_or(0)
    ));
    s.push_str("  \"steps\": {");
    let mut first = true;
    for step in ALL_STEPS {
        let secs = out.max.secs_of(step);
        if secs > 0.0 {
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("\"{}\": {:.9}", step.label(), secs));
        }
    }
    s.push_str("},\n");
    s.push_str(&format!("  \"total_secs\": {:.9},\n", out.max.total()));
    match verified {
        Some(v) => s.push_str(&format!("  \"verified\": {v}\n")),
        None => s.push_str("  \"verified\": null\n"),
    }
    s.push('}');
    s
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let (a, b) = operands(args, "a")?;
    let p = args.get_or("procs", 16usize)?;
    let machine = machine_from_args(args)?;
    let budget = match args.opt("budget-mb") {
        Some(mb) => {
            let mb: f64 = mb.parse().map_err(|_| "bad --budget-mb")?;
            MemoryBudget::new((mb * 1e6) as usize)
        }
        None => MemoryBudget::unlimited(),
    };
    let mut pcfg = PlannerConfig::new(machine, budget);
    pcfg.iterations = args.get_or("iters", 1usize)?;
    pcfg.probe = ProbeConfig {
        sample_fraction: args.get_or("sample", 0.25f64)?,
        seed: args.get_or("seed", ProbeConfig::default().seed)?,
        ..ProbeConfig::default()
    };
    match algorithm_from_args(args)? {
        None => {
            // Bare `plan --auto` also opens the family dimension.
            if args.flag("auto") {
                pcfg.families = AlgorithmFamily::sweep(p);
            }
        }
        Some(AlgorithmArg::Auto) => pcfg.families = AlgorithmFamily::sweep(p),
        Some(AlgorithmArg::Fixed(fam)) => pcfg.families = vec![fam],
    }
    let report = planner::plan(p, &a, &b, &pcfg).map_err(|e| e.to_string())?;
    print!("{}", report.to_table());
    Ok(())
}

fn cmd_mcl(args: &Args) -> Result<(), String> {
    let a = load(args.req("input")?)?;
    let p = args.get_or("procs", 16usize)?;
    let mut params = MclParams::new(p, args.get_or("layers", 1usize)?);
    params.inflation = args.get_or("inflation", 2.0f64)?;
    params.select = args.get_or("select", 64usize)?;
    params.max_iters = args.get_or("max-iters", 30usize)?;
    params.machine = machine_from_args(args)?;
    params.kernels = kernels_by_name(args.opt("kernels").unwrap_or("new"))?;
    if let Some(mb) = args.opt("budget-mb") {
        let mb: f64 = mb.parse().map_err(|_| "bad --budget-mb")?;
        params.budget = MemoryBudget::new((mb * 1e6) as usize);
    }
    if let Some(x) = args.opt("exchange") {
        params.exchange = ExchangeMode::parse(x)?;
    }
    if args.flag("overlap") {
        params.overlap = OverlapMode::Overlapped;
    }
    match args.opt("backend") {
        Some("native") => {
            params.backend = BackendKind::Native {
                threads: match args.opt("threads") {
                    Some(t) => t.parse().map_err(|_| "bad --threads")?,
                    None => BackendKind::available_threads(),
                },
            };
        }
        Some("simgrid") | None => {
            if args.opt("threads").is_some() {
                return Err("--threads requires --backend native".into());
            }
        }
        Some(other) => return Err(format!("unknown backend: {other}")),
    }
    if args.flag("no-session") {
        params.session = false;
    }
    if args.flag("no-cache") {
        params.cache = false;
    }
    if let Some(s) = args.opt("perturb-seed") {
        params.perturb = Some(s.parse().map_err(|_| "bad --perturb-seed")?);
    }
    let result = markov_cluster(&a, &params).map_err(|e| e.to_string())?;
    println!("iter  batches  chaos      SpGEMM(s)       nnz   bytes(MB)  hit/miss  inval");
    for (i, it) in result.per_iter.iter().enumerate() {
        println!(
            "{:>4}  {:>7}  {:<9.4} {:.5} {:>9} {:>11.3} {:>4}/{:<4} {:>6}",
            i + 1,
            it.nbatches,
            it.chaos,
            it.breakdown.total(),
            it.nnz,
            it.modeled_bytes as f64 / 1e6,
            it.fetch_hits,
            it.fetch_misses,
            it.invalidated_cols
        );
    }
    let k = spgemm_apps::components::num_clusters(&result.labels);
    println!("{} clusters after {} iterations", k, result.iterations);
    if let Some(path) = args.opt("out") {
        let body: String = result
            .labels
            .iter()
            .enumerate()
            .map(|(v, c)| format!("{v} {c}\n"))
            .collect();
        std::fs::write(path, body).map_err(|e| e.to_string())?;
        println!("wrote labels to {path}");
    }
    Ok(())
}

fn cmd_audit(args: &Args) -> Result<(), String> {
    use spgemm_core::audit::{self, AuditConfig, AuditFault, BatchSpec, ConfigOutcome};

    let fault = match args.opt("inject") {
        Some(name) => Some(AuditFault::parse(name).ok_or_else(|| {
            format!(
                "unknown fault: {name} (expected one of: {})",
                AuditFault::NAMES.join(", ")
            )
        })?),
        None => None,
    };
    let report = if args.flag("sweep") {
        let ps: Vec<usize> = args
            .opt("procs")
            .unwrap_or("4,16,64,256")
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("bad --procs entry: {s:?}"))
            })
            .collect::<Result<_, String>>()?;
        audit::sweep(&ps, fault)
    } else {
        let shape_name = args.opt("shape").unwrap_or("fig3-mcl");
        let shape = audit::workload_shapes()
            .into_iter()
            .find(|s| s.name == shape_name)
            .ok_or_else(|| {
                format!(
                    "unknown shape: {shape_name} (expected fig3-mcl | fig4-friendster | \
                     fig4-isolates)"
                )
            })?;
        let batch = if let Some(t) = args.opt("auto-target") {
            BatchSpec::Budget {
                target: t.parse().map_err(|_| "bad --auto-target")?,
            }
        } else {
            BatchSpec::Forced(args.get_or("batches", 1usize)?)
        };
        let family = match algorithm_from_args(args)? {
            None | Some(AlgorithmArg::Fixed(AlgorithmFamily::Summa3dBatched)) => {
                AlgorithmFamily::Summa3dBatched
            }
            Some(AlgorithmArg::Auto) => {
                return Err("audit takes a concrete --algorithm (use --sweep to cover the \
                            whole family grid)"
                    .into())
            }
            Some(AlgorithmArg::Fixed(fam)) if fam.is_15d() => fam,
            Some(AlgorithmArg::Fixed(fam)) => {
                return Err(format!(
                    "audit extracts the summa3d, cola and innerabc schedules, not {}",
                    fam.name()
                ))
            }
        };
        let cfg = AuditConfig {
            shape,
            p: args.get_or("procs", 16usize)?,
            l: args.get_or("layers", 1usize)?,
            batch,
            exchange: match args.opt("exchange") {
                Some(x) => ExchangeMode::parse(x)?,
                None => ExchangeMode::default(),
            },
            overlap: if args.flag("overlap") {
                OverlapMode::Overlapped
            } else {
                OverlapMode::Blocking
            },
            iterations: args.get_or("iters", 1usize)?,
            family,
        };
        audit::AuditReport {
            results: vec![audit::audit_config(&cfg, fault)],
        }
    };

    if args.flag("json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "audited {} configuration(s): {} ok, {} infeasible, {} events extracted \
             (payload-free)",
            report.results.len(),
            report.ok_count(),
            report.infeasible_count(),
            report.total_events()
        );
        if !args.flag("sweep") {
            for r in &report.results {
                match &r.outcome {
                    ConfigOutcome::Ok { nbatches, events } => {
                        println!("{}: clean ({events} events, b={nbatches})", r.label);
                    }
                    ConfigOutcome::Infeasible(reason) => {
                        println!("{}: infeasible ({reason})", r.label);
                    }
                    ConfigOutcome::Violated(_) => {}
                }
            }
        }
        for (label, vs) in report.violations() {
            println!("\n{label}:");
            for v in vs {
                println!("{v}");
            }
        }
    }
    let bad = report.violations().len();
    if bad > 0 {
        return Err(format!("{bad} configuration(s) with schedule violations"));
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    use spgemm_core::{JobServer, ServerConfig};

    let budget_mb = args.get_or("budget-mb", 64.0f64)?;
    let mut cfg = ServerConfig::new((budget_mb * 1e6) as usize);
    cfg.max_concurrency = args.get_or("max-concurrency", 4usize)?;
    cfg.cache_capacity = args.get_or("cache-size", 64usize)?;
    cfg.machine = machine_from_args(args)?;
    match args.opt("backend") {
        Some("native") => {
            cfg.backend = BackendKind::Native {
                threads: match args.opt("threads") {
                    Some(t) => t.parse().map_err(|_| "bad --threads")?,
                    None => BackendKind::available_threads(),
                },
            };
        }
        Some("simgrid") => {
            cfg.backend = BackendKind::Simgrid;
            if args.opt("threads").is_some() {
                return Err("--threads requires --backend native".into());
            }
        }
        None => {}
        Some(other) => return Err(format!("unknown backend: {other}")),
    }
    if args.flag("no-shrink") {
        cfg.shrink = false;
    }
    if args.flag("check") {
        cfg.check = CheckMode::Check;
    }
    match algorithm_from_args(args)? {
        None => {}
        Some(AlgorithmArg::Auto) => cfg.families = spgemm_core::serve::FamilyPolicy::Sweep,
        Some(AlgorithmArg::Fixed(fam)) => {
            cfg.families = spgemm_core::serve::FamilyPolicy::Fixed(fam);
        }
    }

    println!(
        "serve: global budget {:.1} MB, {} worker(s), plan cache {} entries, shrink {}",
        budget_mb,
        cfg.max_concurrency,
        cfg.cache_capacity,
        if cfg.shrink { "on" } else { "off" }
    );
    let server = JobServer::start(cfg);
    if args.flag("loadgen") {
        serve_loadgen(args, &server, budget_mb)?;
        server.shutdown();
        Ok(())
    } else {
        serve_stdin(server)
    }
}

/// Self-driving mode: synthesize a small mixed workload (MCL-like
/// clusters, uniform ER, skewed RMAT — the fig3/fig4 shapes at CLI scale)
/// and drive it through the server with the chosen arrival process.
fn serve_loadgen(
    args: &Args,
    server: &spgemm_core::JobServer,
    budget_mb: f64,
) -> Result<(), String> {
    use spgemm_core::serve::{run_loadgen, ArrivalProcess, Priority};
    use spgemm_core::{JobSpec, LoadgenConfig, LoadgenReport};

    let jobs = args.get_or("jobs", 200usize)?;
    let seed = args.get_or("seed", 42u64)?;
    let arrival = match args.opt("arrival").unwrap_or("closed") {
        "open" => ArrivalProcess::Open {
            rate_hz: args.get_or("rate", 100.0f64)?,
        },
        "closed" => ArrivalProcess::Closed {
            concurrency: args.get_or("concurrency", 8usize)?,
        },
        other => return Err(format!("unknown arrival process: {other}")),
    };

    // Three structural families, squared (the A·A pattern every iterative
    // app in this repo uses), at two process counts each.
    let shapes: [(&str, CscMatrix<f64>); 3] = [
        ("clusters", clustered_similarity(6, 24, 10, 1, seed)),
        ("er", er_random::<PlusTimesF64>(192, 192, 6, seed)),
        ("rmat", rmat::<PlusTimesF64>(7, 6, None, true, seed)),
    ];
    let mut specs: Vec<JobSpec> = Vec::new();
    for (name, m) in shapes {
        let h = server.register(m);
        for p in [4usize, 16] {
            let mut spec = JobSpec::new(h, h, p, MemoryBudget::unlimited());
            spec.keep_output = false;
            specs.push(spec.clone());
            // A memory-constrained high-priority variant of the same shape
            // (exercises batching, shrink-and-batch and the queue).
            spec.budget = MemoryBudget::new((budget_mb * 1e6 / 2.0) as usize);
            spec.priority = Priority::High;
            specs.push(spec);
        }
        println!("loadgen: registered shape {name} at p=4 and p=16");
    }

    let cfg = LoadgenConfig {
        jobs,
        arrival,
        seed,
    };
    println!("loadgen: submitting {jobs} jobs ({arrival:?}, seed {seed})");
    let report = run_loadgen(server, &specs, &cfg);
    println!("{}", report.to_table());
    if let Some(path) = args.opt("csv") {
        let body = format!("{}\n{}\n", LoadgenReport::csv_header(), report.csv_row());
        std::fs::write(path, body).map_err(|e| e.to_string())?;
        println!("wrote loadgen CSV to {path}");
    }
    Ok(())
}

/// Interactive mode: a line protocol on stdin against the resident server.
fn serve_stdin(server: spgemm_core::JobServer) -> Result<(), String> {
    use spgemm_core::serve::OperandId;
    use std::io::BufRead;

    println!("commands: reg FILE | mul A B P [BUDGET_MB] | stats | quit");
    let mut handles: Vec<OperandId> = Vec::new();
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let words: Vec<&str> = line.split_whitespace().collect();
        let result = match words.as_slice() {
            [] => Ok(()),
            ["quit"] | ["exit"] => break,
            ["reg", path] => load(path).map(|m| {
                println!("operand {}: {}x{} with {} nonzeros", handles.len(), m.nrows(), m.ncols(), m.nnz());
                handles.push(server.register(m));
            }),
            ["mul", rest @ ..] if (3..=4).contains(&rest.len()) => {
                serve_one(&server, &handles, rest)
            }
            ["stats"] => {
                let s = server.stats();
                println!(
                    "submitted {} | completed {} | rejected {} | queued now {} | running {}\n\
                     reserved {} of {} bytes (peak {}) | plan cache {:.0}% hit",
                    s.submitted,
                    s.completed,
                    s.rejected,
                    s.queue_depth,
                    s.running,
                    s.reserved_bytes,
                    s.budget_bytes,
                    s.peak_reserved_bytes,
                    s.cache.plan_hit_rate() * 100.0
                );
                Ok(())
            }
            _ => Err(format!("unrecognized command: {line}")),
        };
        if let Err(e) = result {
            println!("error: {e}");
        }
    }
    let s = server.shutdown();
    println!(
        "server drained: {} submitted, {} completed, {} rejected",
        s.submitted, s.completed, s.rejected
    );
    Ok(())
}

/// One interactive `mul A B P [BUDGET_MB]` submission (blocks for the
/// report — the interactive loop is a single tenant).
fn serve_one(
    server: &spgemm_core::JobServer,
    handles: &[spgemm_core::serve::OperandId],
    words: &[&str],
) -> Result<(), String> {
    use spgemm_core::serve::{AdmitKind, JobOutcome};
    use spgemm_core::JobSpec;

    let idx = |w: &str| -> Result<_, String> {
        let i: usize = w.parse().map_err(|_| format!("bad operand index: {w}"))?;
        handles
            .get(i)
            .copied()
            .ok_or(format!("no operand {i} registered yet"))
    };
    let p: usize = words[2].parse().map_err(|_| "bad process count")?;
    let budget = match words.get(3) {
        Some(mb) => {
            let mb: f64 = mb.parse().map_err(|_| "bad budget")?;
            MemoryBudget::new((mb * 1e6) as usize)
        }
        None => MemoryBudget::unlimited(),
    };
    let spec = JobSpec::new(idx(words[0])?, idx(words[1])?, p, budget);
    let report = server.submit(spec).wait();
    match report.outcome {
        JobOutcome::Completed(done) => {
            let shrunk = match done.admit {
                AdmitKind::AsPlanned => String::new(),
                AdmitKind::Shrunk {
                    planned_batches,
                    forced_batches,
                } => format!(" (shrunk {planned_batches}->{forced_batches} batches)"),
            };
            let plan = match report.plan_source {
                Some(spgemm_core::serve::PlanSource::Fresh) => "fresh",
                Some(spgemm_core::serve::PlanSource::ProbeReused) => "probe-reused",
                Some(spgemm_core::serve::PlanSource::Cached) => "cached",
                None => "unplanned",
            };
            println!(
                "job {} done: nnz(C) {} in {} batch(es) on {} layer(s){}, \
                 modeled {:.5}s, queued {:.4}s, plan {plan}",
                report.id,
                done.nnz_c,
                done.nbatches,
                done.layers,
                shrunk,
                done.breakdown.total(),
                report.queue_secs
            );
        }
        JobOutcome::Rejected(reason) => println!("job {} rejected: {reason}", report.id),
    }
    Ok(())
}

fn cmd_triangles(args: &Args) -> Result<(), String> {
    let a = load(args.req("input")?)?;
    let adj = a.map(|_| 1u64);
    let cfg = TriangleConfig::new(args.get_or("procs", 16usize)?, args.get_or("layers", 1usize)?);
    let (count, breakdown) = count_triangles(&adj, &cfg).map_err(|e| e.to_string())?;
    println!("{count} triangles (modeled SpGEMM time {:.5}s)", breakdown.total());
    Ok(())
}

fn cmd_overlap(args: &Args) -> Result<(), String> {
    let a = load(args.req("input")?)?;
    let m = a.map(|_| 1u64);
    let cfg = OverlapConfig::new(
        args.get_or("min-shared", 2u64)?,
        args.get_or("procs", 16usize)?,
        args.get_or("layers", 1usize)?,
    );
    let (pairs, breakdown) = find_overlaps(&m, &cfg).map_err(|e| e.to_string())?;
    println!(
        "{} candidate pairs with >= {} shared k-mers (modeled SpGEMM time {:.5}s)",
        pairs.len(),
        cfg.min_shared,
        breakdown.total()
    );
    for p in pairs.iter().take(args.get_or("show", 10usize)?) {
        println!("  {} ~ {} ({} shared)", p.i, p.j, p.shared);
    }
    Ok(())
}
