//! `spgemm` — command-line driver for the IPDPS 2021 reproduction.
//!
//! ```text
//! spgemm gen      --kind er|rmat|clusters|kmer --out M.mtx [shape options]
//! spgemm info     --input M.mtx [--square | --aat]
//! spgemm multiply --a M.mtx [--b N.mtx | --square | --aat] --procs P
//!                 [--layers L | --auto] [--batches B | --budget-mb M]
//!                 [--kernels new|previous] [--exchange dense|sparse]
//!                 [--backend simgrid|native] [--threads N]
//!                 [--machine knl|haswell|knl-mini|knl-ht]
//!                 [--profile PROFILE.json] [--calibrate-out PROFILE.json]
//!                 [--batching cyclic|block|balanced] [--overlap] [--check]
//!                 [--trace T.json] [--out C.mtx] [--verify]
//! spgemm plan     --a M.mtx [--b N.mtx | --square | --aat] --procs P
//!                 [--budget-mb M] [--machine NAME | --profile PROFILE.json]
//!                 [--sample F] [--seed S] [--iters N]
//! spgemm mcl      --input M.mtx --procs P [--layers L] [--inflation I]
//!                 [--select K] [--budget-mb M] [--kernels new|previous]
//!                 [--exchange dense|sparse] [--backend simgrid|native]
//!                 [--threads N] [--overlap] [--no-session] [--no-cache]
//!                 [--machine NAME | --profile PROFILE.json]
//! spgemm triangles --input M.mtx --procs P [--layers L]
//! spgemm overlap  --input M.mtx --procs P [--layers L] [--min-shared S]
//! spgemm audit    [--sweep [--procs "4,16,64,256"]] [--json]
//!                 [--inject skip-wait|wrong-fetch-tag|skip-collective|wrong-root]
//!                 [--shape fig3-mcl|fig4-friendster|fig4-isolates] [--procs P]
//!                 [--layers L] [--batches B | --auto-target T]
//!                 [--exchange dense|sparse] [--overlap] [--iters N]
//! ```
//!
//! `plan` prints the planner's ranked candidate report and runs nothing;
//! `multiply --auto` plans and then runs the winner. `--profile` loads
//! calibrated machine constants written by `--calibrate-out`. `plan
//! --iters N` amortizes one-time setup costs over `N` iterations of an
//! iterative application (MCL/BFS), which can flip the winning exchange
//! mode.
//!
//! `mcl` keeps the iterate resident across iterations by default (the
//! cross-iteration operand-caching session); `--no-session` selects the
//! legacy gather/re-scatter driver and `--no-cache` disables fetch-state
//! memoization while keeping the session.
//!
//! `--backend native` runs the local kernels for real on `--threads N` OS
//! threads (default: all available cores) and charges their **measured**
//! wall-clock seconds to the per-step report; communication stays modeled.
//! Combining `--backend native` with `--calibrate-out` fits a machine
//! profile from the measured kernel times of the run.
//!
//! `audit` extracts communication schedules **symbolically** — no matrices
//! are built, no payload bytes move — and verifies cross-rank agreement,
//! deadlock-freedom of the fetch conversation, nonblocking-handle
//! discipline, and the Eq. 2 memory bound. `--sweep` enumerates the
//! planner's full candidate grid; `--inject` plants a named schedule bug
//! to demonstrate detection (the run then *fails* with the configuration
//! and offending event); `--json` emits a machine-readable report. The
//! command exits nonzero iff any audited configuration has a violation.
//!
//! `multiply --perturb-seed S` and `mcl --perturb-seed S` run the
//! simulation under seeded schedule perturbation (deterministic
//! wakeup-order jitter at every communication point); results must be
//! bit-identical under any seed.

#![forbid(unsafe_code)]

mod args;

use args::Args;
use spgemm_apps::mcl::{markov_cluster, MclParams};
use spgemm_apps::overlap::{find_overlaps, OverlapConfig};
use spgemm_apps::triangles::{count_triangles, TriangleConfig};
use spgemm_core::batched::BatchingStrategy;
use spgemm_core::planner::{self, CalibrationInput, MachineProfile, PlannerConfig, ProbeConfig};
use spgemm_core::{
    run_spgemm, BackendKind, ExchangeMode, KernelStrategy, LayerChoice, MemoryBudget, OverlapMode,
    RunConfig,
};
use spgemm_simgrid::CheckMode;
use spgemm_simgrid::{Machine, StepReport};
use spgemm_sparse::gen::{clustered_similarity, er_random, kmer_matrix, rmat};
use spgemm_sparse::io::{read_matrix_market_file, write_matrix_market_file};
use spgemm_sparse::ops::transpose;
use spgemm_sparse::semiring::PlusTimesF64;
use spgemm_sparse::spgemm::{spgemm_spa, symbolic_nnz};
use spgemm_sparse::CscMatrix;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv = std::env::args().skip(1);
    match Args::parse(argv).and_then(|args| run(&args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "run with a subcommand: gen | info | multiply | plan | mcl | triangles | \
                 overlap | audit"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    match args.command.as_str() {
        "gen" => cmd_gen(args),
        "info" => cmd_info(args),
        "multiply" => cmd_multiply(args),
        "plan" => cmd_plan(args),
        "mcl" => cmd_mcl(args),
        "triangles" => cmd_triangles(args),
        "overlap" => cmd_overlap(args),
        "audit" => cmd_audit(args),
        other => Err(format!("unknown subcommand: {other}")),
    }
}

fn machine_by_name(name: &str) -> Result<Machine, String> {
    match name {
        "knl" => Ok(Machine::knl()),
        "haswell" => Ok(Machine::haswell()),
        "knl-mini" => Ok(Machine::knl_mini()),
        "knl-ht" => Ok(Machine::knl_hyperthreaded()),
        other => Err(format!("unknown machine preset: {other}")),
    }
}

/// Resolve the cost-model machine: `--profile FILE` (calibrated
/// constants) wins over `--machine NAME` (preset).
fn machine_from_args(args: &Args) -> Result<Machine, String> {
    if let Some(path) = args.opt("profile") {
        let profile = MachineProfile::load(Path::new(path)).map_err(|e| e.to_string())?;
        println!("loaded machine profile from {path} ({})", profile.source);
        Ok(profile.to_machine())
    } else {
        machine_by_name(args.opt("machine").unwrap_or("knl"))
    }
}

fn kernels_by_name(name: &str) -> Result<KernelStrategy, String> {
    match name {
        "new" => Ok(KernelStrategy::New),
        "previous" => Ok(KernelStrategy::Previous),
        other => Err(format!("unknown kernel strategy: {other}")),
    }
}

fn load(path: &str) -> Result<CscMatrix<f64>, String> {
    read_matrix_market_file(Path::new(path)).map_err(|e| format!("reading {path}: {e}"))
}

fn cmd_gen(args: &Args) -> Result<(), String> {
    let kind = args.req("kind")?;
    let out = args.req("out")?.to_string();
    let seed = args.get_or("seed", 1u64)?;
    let m: CscMatrix<f64> = match kind {
        "er" => {
            let n = args.get_or("n", 1000usize)?;
            let deg = args.get_or("degree", 8usize)?;
            er_random::<PlusTimesF64>(n, n, deg, seed)
        }
        "rmat" => {
            let scale = args.get_or("scale", 10u32)?;
            let ef = args.get_or("edge-factor", 12usize)?;
            rmat::<PlusTimesF64>(scale, ef, None, true, seed)
        }
        "clusters" => {
            let nclusters = args.get_or("clusters", 8usize)?;
            let size = args.get_or("cluster-size", 100usize)?;
            let intra = args.get_or("intra", 12usize)?;
            let inter = args.get_or("inter", 1usize)?;
            clustered_similarity(nclusters, size, intra, inter, seed)
        }
        "kmer" => {
            let reads = args.get_or("reads", 1000usize)?;
            let kmers = args.get_or("kmers", 8000usize)?;
            let per = args.get_or("reads-per-kmer", 3usize)?;
            kmer_matrix(reads, kmers, per, seed).map(|v| v as f64)
        }
        other => return Err(format!("unknown matrix kind: {other}")),
    };
    write_matrix_market_file(&m, Path::new(&out)).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {}x{} matrix with {} nonzeros to {out}", m.nrows(), m.ncols(), m.nnz());
    Ok(())
}

fn operands(args: &Args, a_key: &str) -> Result<(CscMatrix<f64>, CscMatrix<f64>), String> {
    let a = load(args.req(a_key)?)?;
    let b = if args.flag("square") {
        a.clone()
    } else if args.flag("aat") {
        transpose(&a)
    } else if let Some(bp) = args.opt("b") {
        load(bp)?
    } else {
        return Err("need one of --b FILE, --square, or --aat".into());
    };
    Ok((a, b))
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let (a, b) = if args.opt("b").is_some() || args.flag("square") || args.flag("aat") {
        operands(args, "input")?
    } else {
        let a = load(args.req("input")?)?;
        let b = a.clone();
        (a, b)
    };
    let (nnz_c, stats) = symbolic_nnz(&a, &b).map_err(|e| e.to_string())?;
    // A Table V-style row.
    println!("rows: {}", a.nrows());
    println!("columns: {}", a.ncols());
    println!("nnz(A): {}", a.nnz());
    println!("nnz(B): {}", b.nnz());
    println!("nnz(C): {nnz_c}");
    println!("flops: {}", stats.flops);
    println!("compression factor: {:.3}", stats.flops as f64 / nnz_c.max(1) as f64);
    println!(
        "memory at r=24 B/nnz: inputs {:.2} MB, unmerged output up to {:.2} MB",
        ((a.nnz() + b.nnz()) * 24) as f64 / 1e6,
        (stats.flops * 24) as f64 / 1e6
    );
    Ok(())
}

fn cmd_multiply(args: &Args) -> Result<(), String> {
    let (a, b) = operands(args, "a")?;
    let p = args.get_or("procs", 16usize)?;
    let mut cfg = RunConfig::new(p, args.get_or("layers", 1usize)?);
    if args.flag("auto") {
        cfg.layers = LayerChoice::Auto;
    }
    cfg.machine = machine_from_args(args)?;
    cfg.kernels = kernels_by_name(args.opt("kernels").unwrap_or("new"))?;
    if let Some(x) = args.opt("exchange") {
        cfg.exchange = ExchangeMode::parse(x)?;
    }
    match args.opt("backend") {
        Some("native") => {
            cfg.backend = BackendKind::Native {
                threads: match args.opt("threads") {
                    Some(t) => t.parse().map_err(|_| "bad --threads")?,
                    None => BackendKind::available_threads(),
                },
            };
        }
        Some("simgrid") => {
            cfg.backend = BackendKind::Simgrid;
            if args.opt("threads").is_some() {
                return Err("--threads requires --backend native".into());
            }
        }
        None => {
            // cfg.backend already honours SPGEMM_BACKEND via default_kind.
            if let Some(t) = args.opt("threads") {
                if matches!(cfg.backend, BackendKind::Native { .. }) {
                    cfg.backend = BackendKind::Native {
                        threads: t.parse().map_err(|_| "bad --threads")?,
                    };
                } else {
                    return Err("--threads requires --backend native".into());
                }
            }
        }
        Some(other) => return Err(format!("unknown backend: {other}")),
    }
    cfg.batching = match args.opt("batching").unwrap_or("cyclic") {
        "cyclic" => BatchingStrategy::BlockCyclic,
        "block" => BatchingStrategy::Block,
        "balanced" => BatchingStrategy::Balanced,
        other => return Err(format!("unknown batching strategy: {other}")),
    };
    if let Some(b) = args.opt("batches") {
        cfg.forced_batches = Some(b.parse().map_err(|_| "bad --batches")?);
    } else if let Some(mb) = args.opt("budget-mb") {
        let mb: f64 = mb.parse().map_err(|_| "bad --budget-mb")?;
        cfg.budget = MemoryBudget::new((mb * 1e6) as usize);
    }
    if args.flag("overlap") {
        cfg.overlap = OverlapMode::Overlapped;
    }
    if args.flag("check") {
        cfg.check = CheckMode::Check;
    }
    if let Some(s) = args.opt("perturb-seed") {
        cfg.perturb = Some(s.parse().map_err(|_| "bad --perturb-seed")?);
    }
    if args.opt("trace").is_some() {
        cfg.trace = true;
    }
    let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &b).map_err(|e| e.to_string())?;
    let layers = out.layers;
    if let Some(plan) = &out.plan {
        println!("auto layer choice:\n{}", plan.to_table());
    }
    if let (Some(path), Some(traces)) = (args.opt("trace"), &out.traces) {
        let json = spgemm_simgrid::chrome_trace_json(traces);
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        println!("wrote Chrome trace to {path}");
    }
    let c = out.c.as_ref().expect("product gathered");
    println!(
        "C: {}x{} with {} nonzeros, computed in {} batch(es) on a {}x{}x{} grid",
        c.nrows(),
        c.ncols(),
        c.nnz(),
        out.nbatches,
        ((p / layers) as f64).sqrt() as usize,
        ((p / layers) as f64).sqrt() as usize,
        layers
    );
    if let Some(sym) = &out.symbolic {
        println!(
            "symbolic: b={} (Eq.2 bound {:?}), flops {}, max unmerged/process {}",
            sym.batches, sym.eq2_lower_bound, sym.flops, sym.max_unmerged_nnz
        );
    }
    let mut report = StepReport::new();
    report.push(format!("p={p} l={layers} b={}", out.nbatches), out.max);
    if let BackendKind::Native { threads } = cfg.backend {
        println!(
            "\nbackend: native ({threads} kernel thread(s)/process, per-thread load \
             imbalance {:.2}); kernel seconds below are measured, communication modeled:\n{}",
            out.load_balance.imbalance(),
            report.to_table()
        );
    } else {
        println!("\nmodeled per-step seconds (max over processes):\n{}", report.to_table());
    }
    if args.flag("verify") {
        let (reference, _) = spgemm_spa::<PlusTimesF64>(&a, &b).map_err(|e| e.to_string())?;
        if c.approx_eq(&reference, 1e-9) {
            println!("verification against serial reference: OK");
        } else {
            return Err("verification FAILED: distributed product differs from serial".into());
        }
    }
    if let Some(path) = args.opt("out") {
        write_matrix_market_file(c, Path::new(path)).map_err(|e| e.to_string())?;
        println!("wrote product to {path}");
    }
    if let Some(path) = args.opt("calibrate-out") {
        let input = CalibrationInput {
            p,
            layers,
            per_rank: &out.per_rank,
            total_work_units: Some(out.kernel_stats.work_units),
            threads: match cfg.backend {
                BackendKind::Native { threads } => Some(threads),
                BackendKind::Simgrid => None,
            },
        };
        let profile = planner::calibrate(&cfg.machine, &input);
        profile
            .save(Path::new(path))
            .map_err(|e| e.to_string())?;
        println!(
            "wrote calibrated machine profile to {path} (alpha {:.3e}, beta {:.3e}, \
             secs/work-unit {:.3e})",
            profile.alpha, profile.beta, profile.secs_per_work_unit
        );
    }
    Ok(())
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let (a, b) = operands(args, "a")?;
    let p = args.get_or("procs", 16usize)?;
    let machine = machine_from_args(args)?;
    let budget = match args.opt("budget-mb") {
        Some(mb) => {
            let mb: f64 = mb.parse().map_err(|_| "bad --budget-mb")?;
            MemoryBudget::new((mb * 1e6) as usize)
        }
        None => MemoryBudget::unlimited(),
    };
    let mut pcfg = PlannerConfig::new(machine, budget);
    pcfg.iterations = args.get_or("iters", 1usize)?;
    pcfg.probe = ProbeConfig {
        sample_fraction: args.get_or("sample", 0.25f64)?,
        seed: args.get_or("seed", ProbeConfig::default().seed)?,
        ..ProbeConfig::default()
    };
    let report = planner::plan(p, &a, &b, &pcfg).map_err(|e| e.to_string())?;
    print!("{}", report.to_table());
    Ok(())
}

fn cmd_mcl(args: &Args) -> Result<(), String> {
    let a = load(args.req("input")?)?;
    let p = args.get_or("procs", 16usize)?;
    let mut params = MclParams::new(p, args.get_or("layers", 1usize)?);
    params.inflation = args.get_or("inflation", 2.0f64)?;
    params.select = args.get_or("select", 64usize)?;
    params.max_iters = args.get_or("max-iters", 30usize)?;
    params.machine = machine_from_args(args)?;
    params.kernels = kernels_by_name(args.opt("kernels").unwrap_or("new"))?;
    if let Some(mb) = args.opt("budget-mb") {
        let mb: f64 = mb.parse().map_err(|_| "bad --budget-mb")?;
        params.budget = MemoryBudget::new((mb * 1e6) as usize);
    }
    if let Some(x) = args.opt("exchange") {
        params.exchange = ExchangeMode::parse(x)?;
    }
    if args.flag("overlap") {
        params.overlap = OverlapMode::Overlapped;
    }
    match args.opt("backend") {
        Some("native") => {
            params.backend = BackendKind::Native {
                threads: match args.opt("threads") {
                    Some(t) => t.parse().map_err(|_| "bad --threads")?,
                    None => BackendKind::available_threads(),
                },
            };
        }
        Some("simgrid") | None => {
            if args.opt("threads").is_some() {
                return Err("--threads requires --backend native".into());
            }
        }
        Some(other) => return Err(format!("unknown backend: {other}")),
    }
    if args.flag("no-session") {
        params.session = false;
    }
    if args.flag("no-cache") {
        params.cache = false;
    }
    if let Some(s) = args.opt("perturb-seed") {
        params.perturb = Some(s.parse().map_err(|_| "bad --perturb-seed")?);
    }
    let result = markov_cluster(&a, &params).map_err(|e| e.to_string())?;
    println!("iter  batches  chaos      SpGEMM(s)       nnz   bytes(MB)  hit/miss  inval");
    for (i, it) in result.per_iter.iter().enumerate() {
        println!(
            "{:>4}  {:>7}  {:<9.4} {:.5} {:>9} {:>11.3} {:>4}/{:<4} {:>6}",
            i + 1,
            it.nbatches,
            it.chaos,
            it.breakdown.total(),
            it.nnz,
            it.modeled_bytes as f64 / 1e6,
            it.fetch_hits,
            it.fetch_misses,
            it.invalidated_cols
        );
    }
    let k = spgemm_apps::components::num_clusters(&result.labels);
    println!("{} clusters after {} iterations", k, result.iterations);
    if let Some(path) = args.opt("out") {
        let body: String = result
            .labels
            .iter()
            .enumerate()
            .map(|(v, c)| format!("{v} {c}\n"))
            .collect();
        std::fs::write(path, body).map_err(|e| e.to_string())?;
        println!("wrote labels to {path}");
    }
    Ok(())
}

fn cmd_audit(args: &Args) -> Result<(), String> {
    use spgemm_core::audit::{self, AuditConfig, AuditFault, BatchSpec, ConfigOutcome};

    let fault = match args.opt("inject") {
        Some(name) => Some(AuditFault::parse(name).ok_or_else(|| {
            format!(
                "unknown fault: {name} (expected one of: {})",
                AuditFault::NAMES.join(", ")
            )
        })?),
        None => None,
    };
    let report = if args.flag("sweep") {
        let ps: Vec<usize> = args
            .opt("procs")
            .unwrap_or("4,16,64,256")
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|_| format!("bad --procs entry: {s:?}"))
            })
            .collect::<Result<_, String>>()?;
        audit::sweep(&ps, fault)
    } else {
        let shape_name = args.opt("shape").unwrap_or("fig3-mcl");
        let shape = audit::workload_shapes()
            .into_iter()
            .find(|s| s.name == shape_name)
            .ok_or_else(|| {
                format!(
                    "unknown shape: {shape_name} (expected fig3-mcl | fig4-friendster | \
                     fig4-isolates)"
                )
            })?;
        let batch = if let Some(t) = args.opt("auto-target") {
            BatchSpec::Budget {
                target: t.parse().map_err(|_| "bad --auto-target")?,
            }
        } else {
            BatchSpec::Forced(args.get_or("batches", 1usize)?)
        };
        let cfg = AuditConfig {
            shape,
            p: args.get_or("procs", 16usize)?,
            l: args.get_or("layers", 1usize)?,
            batch,
            exchange: match args.opt("exchange") {
                Some(x) => ExchangeMode::parse(x)?,
                None => ExchangeMode::default(),
            },
            overlap: if args.flag("overlap") {
                OverlapMode::Overlapped
            } else {
                OverlapMode::Blocking
            },
            iterations: args.get_or("iters", 1usize)?,
        };
        audit::AuditReport {
            results: vec![audit::audit_config(&cfg, fault)],
        }
    };

    if args.flag("json") {
        println!("{}", report.to_json());
    } else {
        println!(
            "audited {} configuration(s): {} ok, {} infeasible, {} events extracted \
             (payload-free)",
            report.results.len(),
            report.ok_count(),
            report.infeasible_count(),
            report.total_events()
        );
        if !args.flag("sweep") {
            for r in &report.results {
                match &r.outcome {
                    ConfigOutcome::Ok { nbatches, events } => {
                        println!("{}: clean ({events} events, b={nbatches})", r.label);
                    }
                    ConfigOutcome::Infeasible(reason) => {
                        println!("{}: infeasible ({reason})", r.label);
                    }
                    ConfigOutcome::Violated(_) => {}
                }
            }
        }
        for (label, vs) in report.violations() {
            println!("\n{label}:");
            for v in vs {
                println!("{v}");
            }
        }
    }
    let bad = report.violations().len();
    if bad > 0 {
        return Err(format!("{bad} configuration(s) with schedule violations"));
    }
    Ok(())
}

fn cmd_triangles(args: &Args) -> Result<(), String> {
    let a = load(args.req("input")?)?;
    let adj = a.map(|_| 1u64);
    let cfg = TriangleConfig::new(args.get_or("procs", 16usize)?, args.get_or("layers", 1usize)?);
    let (count, breakdown) = count_triangles(&adj, &cfg).map_err(|e| e.to_string())?;
    println!("{count} triangles (modeled SpGEMM time {:.5}s)", breakdown.total());
    Ok(())
}

fn cmd_overlap(args: &Args) -> Result<(), String> {
    let a = load(args.req("input")?)?;
    let m = a.map(|_| 1u64);
    let cfg = OverlapConfig::new(
        args.get_or("min-shared", 2u64)?,
        args.get_or("procs", 16usize)?,
        args.get_or("layers", 1usize)?,
    );
    let (pairs, breakdown) = find_overlaps(&m, &cfg).map_err(|e| e.to_string())?;
    println!(
        "{} candidate pairs with >= {} shared k-mers (modeled SpGEMM time {:.5}s)",
        pairs.len(),
        cfg.min_shared,
        breakdown.total()
    );
    for p in pairs.iter().take(args.get_or("show", 10usize)?) {
        println!("  {} ~ {} ({} shared)", p.i, p.j, p.shared);
    }
    Ok(())
}
