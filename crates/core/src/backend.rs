//! Execution backends: modeled-clock simulation vs real multithreaded
//! kernels.
//!
//! Every compute step in the distributed pipeline funnels through a
//! [`Backend`], which decides what "running a local kernel" means:
//!
//! * [`SimgridBackend`] — the paper-reproduction default. Kernels run
//!   serially and the rank's clock advances by *modeled* seconds
//!   (`work_units · secs_per_work_unit / thread_scale`, the α–β machine
//!   model of `spgemm-simgrid`).
//! * [`NativeBackend`] — kernels run genuinely multithreaded (the
//!   column-range parallel wrappers in `spgemm_sparse::par`, one
//!   [`SpGemmWorkspace`](spgemm_sparse::SpGemmWorkspace) arena per
//!   thread) and the rank's clock advances by the *measured* wall-clock
//!   seconds of the call.
//!
//! Both paths report through the same `StepReport`/`StepBreakdown`
//! machinery, so a measured Native run and a modeled Simgrid run of the
//! same configuration produce directly comparable tables — that is the
//! measured-vs-modeled contract the planner's calibrator exploits to fit
//! a [`MachineProfile`](crate::planner::MachineProfile) from a real run.
//!
//! Communication is always modeled: the virtual cluster's collectives have
//! no physical counterpart in-process. Only the compute columns
//! (`Local-Multiply`, `Merge-Layer`, `Merge-Fiber`, symbolic compute)
//! switch between modeled and measured.

use spgemm_simgrid::{Rank, Step};
use spgemm_sparse::WorkStats;

/// Which backend executes local kernels — the plumbable configuration
/// value carried by `RunConfig`/`BatchConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Serial kernels, modeled clock (the default).
    #[default]
    Simgrid,
    /// Multithreaded kernels, measured wall-clock times.
    Native {
        /// Kernel threads per simulated rank. `1` still measures real
        /// time but runs the serial kernel path.
        threads: usize,
    },
}

impl BackendKind {
    /// Short name for CLI/report labels.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Simgrid => "simgrid",
            BackendKind::Native { .. } => "native",
        }
    }

    /// Kernel threads per rank this backend runs (1 for Simgrid).
    pub fn threads(self) -> usize {
        match self {
            BackendKind::Simgrid => 1,
            BackendKind::Native { threads } => threads.max(1),
        }
    }

    /// The default backend: the `SPGEMM_BACKEND` environment variable if
    /// set (`native` selects [`BackendKind::Native`] with `SPGEMM_THREADS`
    /// threads, or the machine's available parallelism when unset),
    /// otherwise [`BackendKind::Simgrid`]. Mirrors how `SPGEMM_CHECK`
    /// drives `CheckMode`, and lets CI run the existing integration suites
    /// on the Native backend without touching their code.
    pub fn default_kind() -> Self {
        match std::env::var("SPGEMM_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("native") => BackendKind::Native {
                threads: std::env::var("SPGEMM_THREADS")
                    .ok()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(Self::available_threads),
            },
            _ => BackendKind::Simgrid,
        }
    }

    /// The host's available parallelism (1 when undetectable).
    pub fn available_threads() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Materialize the backend implementation.
    pub fn to_backend(self) -> Box<dyn Backend> {
        match self {
            BackendKind::Simgrid => Box::new(SimgridBackend),
            BackendKind::Native { threads } => Box::new(NativeBackend {
                threads: threads.max(1),
            }),
        }
    }
}

/// How a completed kernel invocation is charged to the rank's clock.
///
/// Implementations receive both the kernel's [`WorkStats`] and the
/// measured elapsed seconds of the call and pick which enters the step
/// breakdown. Output correctness is backend-independent: the kernels are
/// bit-identical serial vs parallel, so switching backends changes only
/// the reported times (and real runtime).
pub trait Backend: std::fmt::Debug + Send {
    /// The configuration value this backend was built from.
    fn kind(&self) -> BackendKind;

    /// Kernel threads per rank.
    fn threads(&self) -> usize {
        self.kind().threads()
    }

    /// Charge one finished kernel invocation to `rank`'s clock under
    /// `step`.
    fn charge(&self, rank: &mut Rank, step: Step, stats: &WorkStats, measured_secs: f64);
}

/// Modeled-clock backend: charges `stats.work_units` through the machine
/// model; the measured duration is ignored.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimgridBackend;

impl Backend for SimgridBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Simgrid
    }

    fn charge(&self, rank: &mut Rank, step: Step, stats: &WorkStats, _measured_secs: f64) {
        rank.compute(step, stats.work_units);
    }
}

/// Real-parallelism backend: charges the measured wall-clock seconds of
/// the (multithreaded) kernel call; the modeled work units are ignored
/// for timing but still accumulate in the kernel totals.
#[derive(Debug, Clone, Copy)]
pub struct NativeBackend {
    /// Kernel threads per rank.
    pub threads: usize,
}

impl Backend for NativeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Native {
            threads: self.threads,
        }
    }

    fn charge(&self, rank: &mut Rank, step: Step, _stats: &WorkStats, measured_secs: f64) {
        rank.compute_measured(step, measured_secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_threads() {
        assert_eq!(BackendKind::Simgrid.name(), "simgrid");
        assert_eq!(BackendKind::Simgrid.threads(), 1);
        let n = BackendKind::Native { threads: 4 };
        assert_eq!(n.name(), "native");
        assert_eq!(n.threads(), 4);
        assert_eq!(BackendKind::Native { threads: 0 }.threads(), 1);
        assert_eq!(BackendKind::default(), BackendKind::Simgrid);
    }

    #[test]
    fn default_kind_without_env_is_simgrid() {
        if std::env::var("SPGEMM_BACKEND").is_err() {
            assert_eq!(BackendKind::default_kind(), BackendKind::Simgrid);
        }
    }

    #[test]
    fn to_backend_round_trips_kind() {
        for kind in [BackendKind::Simgrid, BackendKind::Native { threads: 3 }] {
            assert_eq!(kind.to_backend().kind(), kind);
        }
    }
}
