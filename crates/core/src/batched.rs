//! BatchedSUMMA3D (Alg. 4): memory-constrained 3D SpGEMM.
//!
//! The batch count `b` comes from Symbolic3D (or a forced override for
//! parameter sweeps). Each rank splits its local `B̃` column-wise into `b`
//! batches — **block-cyclically** with `b·l` blocks of
//! `n/(b·l·√(p/l))` columns, a batch taking every `b`-th block (Fig. 1(i));
//! plain block splitting is available as an ablation of the paper's
//! load-balance argument for Merge-Fiber. One SUMMA3D runs per batch, and
//! the resulting `C` piece is handed to the application, which may prune,
//! persist, transform, or discard it before the next batch begins — the
//! HipMCL/BELLA/hypergraph-coarsening usage pattern the paper targets.

use crate::backend::BackendKind;
use crate::dist::{CPiece, DistMatrix};
use crate::exchange::{ExchangeMode, ExchangePlan};
use crate::family15::AlgorithmFamily;
use crate::kernels::{KernelStrategy, LocalKernels};
use crate::memory::{MemTracker, MemoryBudget};
use crate::summa2d::{MergeSchedule, NextStage, OverlapMode, StagePending};
use crate::summa3d::summa3d_batch;
use crate::symbolic::{symbolic3d_with_weights, SymbolicOutcome};
use crate::{CoreError, Result};
use spgemm_simgrid::{Grid3D, Rank, Step};
use spgemm_sparse::ops::{block_range, cyclic_batch_cols, extract_cols};
use spgemm_sparse::par::RangeBalance;
use spgemm_sparse::{CscMatrix, Semiring, WorkStats};
use std::sync::Arc;

/// How batches partition the columns of `B` (and `C`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchingStrategy {
    /// The paper's block-cyclic split: `b·l` blocks, batch `t` takes every
    /// `b`-th block — keeps each ColSplit piece inside its layer's
    /// sub-slice of `C`'s distribution.
    #[default]
    BlockCyclic,
    /// Plain contiguous blocks (ablation baseline; scrambles the output
    /// distribution — see the fig4 ablation).
    Block,
    /// **Extension beyond the paper**: weight-balanced batching. Uses the
    /// symbolic pass's per-column unmerged counts to cut each layer
    /// sub-slice into `b` runs of near-equal intermediate volume, so every
    /// batch costs about the same memory — tightening Alg. 3's even-split
    /// assumption on skewed matrices while preserving the block-cyclic
    /// split's distribution conformance.
    Balanced,
}

/// Configuration of a batched multiplication.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Local kernel generation (Sec. IV-D).
    pub kernels: KernelStrategy,
    /// Batch partitioning scheme.
    pub batching: BatchingStrategy,
    /// Aggregate memory budget driving the symbolic batch count.
    pub budget: MemoryBudget,
    /// Override the batch count (skips the symbolic step), used by the
    /// paper's l/b sweeps (Fig. 4).
    pub forced_batches: Option<usize>,
    /// When Merge-Layer runs (Sec. III-A ablation).
    pub merge_schedule: MergeSchedule,
    /// Blocking (paper-faithful, default) or overlapped (double-buffered
    /// pipeline over nonblocking collectives) communication.
    pub overlap: OverlapMode,
    /// How stage operands move (dense broadcast vs sparsity-aware fetch;
    /// see [`crate::exchange`]).
    pub exchange: ExchangeMode,
    /// How local kernels execute and how their time enters the clock:
    /// modeled (`Simgrid`, default) or real multithreaded with measured
    /// wall-clock times (`Native`); see [`crate::backend`].
    pub backend: BackendKind,
    /// Algorithm family. The batched pipeline executes the SUMMA members
    /// only; the 1.5D families ([`crate::family15`]) never batch and are
    /// rejected here — route them through `run_spmm`/`run_spgemm`.
    pub algorithm: AlgorithmFamily,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            kernels: KernelStrategy::New,
            batching: BatchingStrategy::BlockCyclic,
            budget: MemoryBudget::unlimited(),
            forced_batches: None,
            merge_schedule: MergeSchedule::AfterAllStages,
            overlap: OverlapMode::Blocking,
            exchange: ExchangeMode::DenseBcast,
            backend: BackendKind::Simgrid,
            algorithm: AlgorithmFamily::Summa3dBatched,
        }
    }
}

/// One batch's output as delivered to the application callback.
#[derive(Debug)]
pub struct BatchOutput<T: Copy> {
    /// Batch index, `0..nbatches`.
    pub batch: usize,
    /// Total batch count.
    pub nbatches: usize,
    /// This rank's piece of the batch's columns of `C` (sorted columns,
    /// global coordinates attached).
    pub piece: CPiece<T>,
}

/// What the application decided to do with a batch (for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchDisposition {
    /// Piece retained (possibly transformed).
    Kept,
    /// Piece discarded after inspection (pruned away / persisted
    /// externally) — the memory-constrained pattern.
    Discarded,
}

/// Result of a batched multiplication on one rank.
#[derive(Debug)]
pub struct BatchedResult<T: Copy> {
    /// Pieces the application kept, in batch order.
    pub pieces: Vec<CPiece<T>>,
    /// Number of batches executed.
    pub nbatches: usize,
    /// Symbolic outcome (absent when the batch count was forced).
    pub symbolic: Option<SymbolicOutcome>,
    /// Peak modeled bytes on this rank (inputs + intermediates).
    pub peak_bytes: usize,
    /// Aggregate kernel-side counters for this rank across the symbolic
    /// sweep and every batch: real flops, output nnz, heap allocations,
    /// peak workspace scratch bytes, and copy-out volume. All local
    /// multiplies, merges, and symbolic counts share one
    /// [`LocalKernels`] engine, so `allocs` directly measures how much the
    /// workspace reuse avoided the allocator.
    pub kernel_stats: WorkStats,
    /// Per-thread load balance of the parallel kernel calls under a
    /// `Native` multi-thread backend (default/zero when kernels ran
    /// serially).
    pub load_balance: RangeBalance,
}

/// One batch's local column selection: the column indices plus the
/// boundaries at which ColSplit cuts them into `l` fiber pieces
/// (`piece_offsets.len() == l + 1`, indices into `cols`). Explicit
/// boundaries let every strategy keep piece `k` inside layer `k`'s
/// sub-slice of the output distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchCols {
    /// Local column indices of `B̃` in this batch, ascending.
    pub cols: Vec<usize>,
    /// ColSplit boundaries into `cols` (length `l + 1`).
    pub piece_offsets: Vec<usize>,
}

/// Local column selection of batch `t`. `weights` (per local column; the
/// symbolic pass's unmerged counts) are required by
/// [`BatchingStrategy::Balanced`] and ignored otherwise.
pub fn batch_local_cols(
    ncols_local: usize,
    nbatches: usize,
    l: usize,
    batch: usize,
    strategy: BatchingStrategy,
    weights: Option<&[u64]>,
) -> BatchCols {
    match strategy {
        BatchingStrategy::BlockCyclic => {
            let cols = cyclic_batch_cols(ncols_local, nbatches, l, batch);
            // Piece s is block `batch + s·nbatches` of the b·l blocks.
            let mut piece_offsets = Vec::with_capacity(l + 1);
            piece_offsets.push(0);
            let mut acc = 0usize;
            for s in 0..l {
                acc += block_range(ncols_local, nbatches * l, batch + s * nbatches).len();
                piece_offsets.push(acc);
            }
            debug_assert_eq!(acc, cols.len());
            BatchCols { cols, piece_offsets }
        }
        BatchingStrategy::Block => {
            let cols: Vec<usize> = block_range(ncols_local, nbatches, batch).collect();
            let mut piece_offsets = Vec::with_capacity(l + 1);
            piece_offsets.push(0);
            for s in 0..l {
                piece_offsets.push(block_range(cols.len(), l, s).end);
            }
            BatchCols { cols, piece_offsets }
        }
        BatchingStrategy::Balanced => {
            let weights = weights.expect("Balanced batching needs per-column weights");
            assert_eq!(weights.len(), ncols_local);
            let mut cols = Vec::new();
            let mut piece_offsets = Vec::with_capacity(l + 1);
            piece_offsets.push(0);
            for s in 0..l {
                // Within layer sub-slice s, cut columns into `nbatches`
                // contiguous runs of near-equal total weight and take run
                // `batch`. Deterministic, identical on every rank that
                // shares the weights. Each weight is scaled to
                // `w·len + 1` (u128: no overflow): the `+1` epsilon makes
                // zero- and constant-weight slices degrade to column-count
                // balance instead of dumping every column into run 0, and
                // the `len` scaling keeps real weight ratios dominant.
                // The target is recomputed from the *remaining* weight
                // after each run closes (ceil division), so early
                // overshoot can never starve the last runs.
                let slice = block_range(ncols_local, l, s);
                let scaled: Vec<u128> = slice
                    .clone()
                    .map(|j| weights[j] as u128 * slice.len() as u128 + 1)
                    .collect();
                let mut remaining: u128 = scaled.iter().sum();
                let mut runs_left = nbatches as u128;
                let mut target = remaining.div_ceil(runs_left.max(1));
                let mut run = 0usize; // current run id
                let mut acc = 0u128;
                for (w, j) in scaled.into_iter().zip(slice) {
                    if run == batch {
                        cols.push(j);
                    }
                    acc += w;
                    remaining -= w;
                    // Close the run when it reaches its share, keeping at
                    // least one remaining run per remaining batch.
                    if acc >= target && run + 1 < nbatches {
                        run += 1;
                        acc = 0;
                        runs_left -= 1;
                        target = remaining.div_ceil(runs_left);
                    }
                }
                piece_offsets.push(cols.len());
            }
            BatchCols { cols, piece_offsets }
        }
    }
}

/// Run BatchedSUMMA3D. `on_batch` receives every batch's piece and
/// returns `Some(piece)` to keep (possibly transformed — e.g. pruned) or
/// `None` to discard. The returned [`BatchedResult`] collects kept pieces.
pub fn batched_summa3d<S: Semiring>(
    rank: &mut Rank,
    grid: &Grid3D,
    a: &DistMatrix<S::T>,
    b: &DistMatrix<S::T>,
    cfg: &BatchConfig,
    on_batch: impl FnMut(&mut Rank, BatchOutput<S::T>) -> Option<CPiece<S::T>>,
) -> Result<BatchedResult<S::T>> {
    // One kernel engine for the whole run: the symbolic sweep warms its
    // accumulator and every batch's multiplies and merges reuse the same
    // scratch, so steady-state batches run allocation-free. The backend
    // decides serial-modeled vs multithreaded-measured execution.
    let mut kernels = LocalKernels::with_backend(cfg.kernels, cfg.backend);
    // One exchange plan for the whole run: the symbolic sweep and every
    // batch share its fetch workspace and tag counter.
    let mut plan = ExchangePlan::new(cfg.exchange);
    let a_shared = Arc::new(a.local.clone());
    batched_summa3d_with::<S>(rank, grid, a, &a_shared, b, cfg, &mut kernels, &mut plan, on_batch)
}

/// [`batched_summa3d`] with caller-owned state: the kernel engine, the
/// exchange plan, and the broadcast-shareable copy of `a.local` live
/// outside the call, so an iterative session ([`crate::session`]) can
/// keep all three warm across multiplications — preserving kernel
/// workspaces, the fetch-tag sequence, and the cross-iteration fetch
/// cache. `a_shared` must hold the same matrix as `a.local`.
#[allow(clippy::too_many_arguments)] // the seam that lets sessions own the state
pub fn batched_summa3d_with<S: Semiring>(
    rank: &mut Rank,
    grid: &Grid3D,
    a: &DistMatrix<S::T>,
    a_shared: &Arc<CscMatrix<S::T>>,
    b: &DistMatrix<S::T>,
    cfg: &BatchConfig,
    kernels: &mut LocalKernels<S::T>,
    plan: &mut ExchangePlan,
    mut on_batch: impl FnMut(&mut Rank, BatchOutput<S::T>) -> Option<CPiece<S::T>>,
) -> Result<BatchedResult<S::T>> {
    let r = cfg.budget.r;
    if cfg.algorithm.is_15d() {
        return Err(CoreError::Config(format!(
            "the batched SUMMA pipeline cannot run the 1.5D family {}; \
             use run_spmm/run_spgemm, which route 1.5D to the family driver",
            cfg.algorithm.label()
        )));
    }
    if plan.mode() != cfg.exchange {
        return Err(CoreError::Config(format!(
            "exchange plan mode '{}' disagrees with cfg.exchange '{}'",
            plan.mode().name(),
            cfg.exchange.name()
        )));
    }
    debug_assert_eq!(
        (a_shared.nrows(), a_shared.ncols(), a_shared.nnz()),
        (a.local.nrows(), a.local.ncols(), a.local.nnz()),
        "a_shared must be the caller's copy of a.local"
    );
    let needs_weights = cfg.batching == BatchingStrategy::Balanced;
    // Alg. 4 line 2: the symbolic step determines b (unless forced).
    // Balanced batching needs the symbolic per-column counts either way.
    let (nbatches, symbolic, local_weights) = match (cfg.forced_batches, needs_weights) {
        (Some(forced), false) => {
            if forced == 0 {
                return Err(CoreError::Config("forced batch count must be ≥ 1".into()));
            }
            (forced, None, None)
        }
        (forced, _) => {
            if forced == Some(0) {
                return Err(CoreError::Config("forced batch count must be ≥ 1".into()));
            }
            // The symbolic sweep's structure-only fetches bypass the
            // cross-iteration cache (no batch context).
            plan.begin_uncached();
            let (outcome, weights) =
                symbolic3d_with_weights::<S>(rank, grid, a, b, &cfg.budget, kernels, plan)?;
            let nb = forced.unwrap_or(outcome.batches);
            let weights = needs_weights.then_some(weights);
            (nb, Some(outcome), weights)
        }
    };

    // Balanced batching must agree across every rank that shares a column
    // block of B (all i and k for this j): reduce the per-column counts
    // over that group.
    let weights = local_weights.map(|mine| {
        let members: Vec<usize> = (0..grid.l)
            .flat_map(|k| (0..grid.pr).map(move |i| (i, k)))
            .map(|(i, k)| grid.rank_of(i, grid.j, k))
            .collect();
        let group = rank.comm(members, 0xBA1A);
        let all = rank.allgather(&group, mine, b.local.ncols() * 8, Step::Other);
        let mut total = vec![0u64; b.local.ncols()];
        for contrib in &all {
            for (t, &c) in total.iter_mut().zip(contrib.iter()) {
                *t += c;
            }
        }
        total
    });

    let mut mem = MemTracker::new();
    mem.alloc(a.local.modeled_bytes(r) + b.local.modeled_bytes(r));

    let b_col_start = b.col_range(grid).start;
    let mut pieces = Vec::new();

    // One batch's staged inputs: column selection plus the extracted B
    // piece. Staged one batch ahead so that, under OverlapMode::Overlapped,
    // batch t's last SUMMA stage can post batch t+1's stage-0 broadcasts
    // (and the extraction itself overlaps batch t's merge phases instead
    // of sitting between them — extraction is local bookkeeping and costs
    // no modeled time, so blocking-mode clocks are unaffected).
    let stage = |t: usize| {
        let batch_cols = batch_local_cols(
            b.local.ncols(),
            nbatches,
            grid.l,
            t,
            cfg.batching,
            weights.as_deref(),
        );
        let global_cols: Vec<u32> = batch_cols
            .cols
            .iter()
            .map(|&c| (b_col_start + c) as u32)
            .collect();
        let b_piece = Arc::new(extract_cols(&b.local, &batch_cols.cols));
        spgemm_sparse::debug_validate!(
            *b_piece,
            spgemm_sparse::Sortedness::Sorted,
            "batch {t} B-piece ({} of {} local columns)",
            batch_cols.cols.len(),
            b.local.ncols()
        );
        (global_cols, batch_cols.piece_offsets, b_piece)
    };

    let overlapped = cfg.overlap == OverlapMode::Overlapped;
    let a_bytes = a.local.modeled_bytes(r);
    let mut staged = Some(stage(0));
    let mut carry: Option<StagePending<S::T>> = None;

    // Alg. 4 lines 4–6: split B̃ and multiply batch by batch.
    for t in 0..nbatches {
        // Key this batch's fetch rounds — including the waits of stages
        // posted ahead by the previous batch's pipeline, which fetch here.
        plan.begin_batch(t);
        let (global_cols, piece_offsets, b_piece) = staged.take().expect("batch staged");
        staged = (t + 1 < nbatches).then(|| stage(t + 1));
        let next = match (&staged, overlapped) {
            (Some((_, _, next_piece)), true) => Some(NextStage {
                a_shared: Arc::clone(a_shared),
                a_bytes,
                b_piece: Arc::clone(next_piece),
                b_bytes: next_piece.modeled_bytes(r),
            }),
            _ => None,
        };
        let (piece, next_carry) = summa3d_batch::<S>(
            rank,
            grid,
            a,
            a_shared,
            &b_piece,
            &global_cols,
            &piece_offsets,
            kernels,
            cfg.merge_schedule,
            r,
            &mut mem,
            plan,
            cfg.overlap,
            carry.take(),
            next.as_ref(),
        )?;
        carry = next_carry;
        let piece_bytes = piece.bytes(r);
        let out = BatchOutput {
            batch: t,
            nbatches,
            piece,
        };
        match on_batch(rank, out) {
            Some(kept) => {
                mem.free(piece_bytes);
                mem.alloc(kept.bytes(r));
                pieces.push(kept);
            }
            None => mem.free(piece_bytes),
        }
    }
    debug_assert!(carry.is_none(), "the last batch posts no follow-on stage");

    Ok(BatchedResult {
        pieces,
        nbatches,
        symbolic,
        peak_bytes: mem.peak(),
        kernel_stats: kernels.totals(),
        load_balance: kernels.balance(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::PlusTimesF64;

    #[test]
    fn batch_local_cols_cover_for_all_strategies() {
        // Synthetic skewed weights for the Balanced strategy.
        for ncols in [10usize, 17, 64] {
            let weights: Vec<u64> = (0..ncols as u64).map(|j| 1 + j * j % 37).collect();
            for strat in [
                BatchingStrategy::BlockCyclic,
                BatchingStrategy::Block,
                BatchingStrategy::Balanced,
            ] {
                for nb in [1usize, 3, 5] {
                    let mut all = Vec::new();
                    for t in 0..nb {
                        let bc = batch_local_cols(ncols, nb, 4, t, strat, Some(&weights));
                        assert_eq!(bc.piece_offsets.len(), 5, "{strat:?}");
                        assert_eq!(*bc.piece_offsets.last().unwrap(), bc.cols.len());
                        assert!(bc.piece_offsets.windows(2).all(|w| w[0] <= w[1]));
                        all.extend(bc.cols);
                    }
                    all.sort_unstable();
                    assert_eq!(all, (0..ncols).collect::<Vec<_>>(), "{strat:?} nb={nb}");
                }
            }
        }
    }

    #[test]
    fn cyclic_batches_balance_colsplit_blocks() {
        // Under block-cyclic batching, each batch's local columns form l
        // equal-ish runs, one per layer — so ColSplit pieces are balanced.
        let (ncols, nb, l) = (64usize, 4usize, 4usize);
        for t in 0..nb {
            let bc = batch_local_cols(ncols, nb, l, t, BatchingStrategy::BlockCyclic, None);
            assert_eq!(bc.cols.len(), ncols / nb);
            // Runs of consecutive indices: exactly l of them.
            let runs = bc.cols.windows(2).filter(|w| w[1] != w[0] + 1).count() + 1;
            assert_eq!(runs, l);
            // Piece offsets land exactly at the run boundaries.
            for s in 0..l {
                let piece = &bc.cols[bc.piece_offsets[s]..bc.piece_offsets[s + 1]];
                assert!(piece.windows(2).all(|w| w[1] == w[0] + 1), "piece {s} contiguous");
            }
        }
    }

    #[test]
    fn balanced_batches_equalize_weight() {
        // Strongly skewed weights: Balanced must flatten per-batch totals
        // far below the spread the plain cyclic split leaves.
        let ncols = 120usize;
        let (nb, l) = (4usize, 2usize);
        // A steep ramp: later columns are ~100x heavier than early ones.
        let weights: Vec<u64> = (0..ncols as u64).map(|j| 1 + j * j).collect();
        let spread = |strat: BatchingStrategy| {
            let mut totals = Vec::new();
            for t in 0..nb {
                let bc = batch_local_cols(ncols, nb, l, t, strat, Some(&weights));
                totals.push(bc.cols.iter().map(|&c| weights[c]).sum::<u64>());
            }
            let max = *totals.iter().max().unwrap() as f64;
            let mean = totals.iter().sum::<u64>() as f64 / nb as f64;
            max / mean
        };
        let balanced = spread(BatchingStrategy::Balanced);
        let block = spread(BatchingStrategy::Block);
        assert!(
            balanced < 1.25,
            "balanced spread should be near 1, got {balanced}"
        );
        assert!(
            block > 2.0,
            "plain blocks on a ramp should be badly imbalanced, got {block}"
        );
        assert!(balanced < block);
    }

    #[test]
    fn balanced_zero_and_constant_weights_fall_back_to_column_balance() {
        // Regression: a zero-weight slice once made `target = 0/nb + 1 = 1`
        // unreachable, dumping every column into run 0 and leaving batches
        // 1..nb empty from that slice.
        let (ncols, nb, l) = (10usize, 3usize, 1usize);
        for weights in [vec![0u64; ncols], vec![7u64; ncols]] {
            let mut sizes = Vec::new();
            let mut all = Vec::new();
            for t in 0..nb {
                let bc =
                    batch_local_cols(ncols, nb, l, t, BatchingStrategy::Balanced, Some(&weights));
                sizes.push(bc.cols.len());
                all.extend(bc.cols);
            }
            all.sort_unstable();
            assert_eq!(all, (0..ncols).collect::<Vec<_>>());
            assert!(sizes.iter().all(|&s| s > 0), "every batch gets columns: {sizes:?}");
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1, "column counts must balance: {sizes:?}");
        }
    }

    #[test]
    fn balanced_small_totals_do_not_starve_last_runs() {
        // Regression: 6 unit-weight columns into 4 batches under the old
        // `total/nb + 1` overshoot target landed as 2,2,2,0.
        let weights = vec![1u64; 6];
        let sizes: Vec<usize> = (0..4)
            .map(|t| {
                batch_local_cols(6, 4, 1, t, BatchingStrategy::Balanced, Some(&weights))
                    .cols
                    .len()
            })
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 6);
        assert!(sizes.iter().all(|&s| s > 0), "no starved run: {sizes:?}");
    }

    #[test]
    fn forced_zero_batches_is_config_error() {
        // Exercised through the public API in integration tests; here just
        // the validation arm of the enum.
        let cfg = BatchConfig {
            forced_batches: Some(0),
            ..Default::default()
        };
        assert_eq!(cfg.forced_batches, Some(0));
        // The error surfaces inside batched_summa3d (see harness tests).
        let _ = er_random::<PlusTimesF64>(4, 4, 1, 1);
    }
}
