//! Analytic cost model: the paper's Table II (communication) and
//! Table III (computation) evaluated for arbitrary problem and machine
//! parameters.
//!
//! Used two ways by the bench harnesses:
//!
//! * **Validation** — compare the simulator's measured communication
//!   volumes/rounds against the closed-form totals at matching `(p, l, b)`
//!   (`table2_comm_model`, `table3_comp_model`).
//! * **Projection** — evaluate the formulas at the paper's extreme scales
//!   (up to `p = 16384` processes / 262,144 cores), where simulating every
//!   rank is impractical but the model still tells the Table II story.

use crate::CoreError;
use spgemm_simgrid::grid::layer_side;
use spgemm_simgrid::Machine;

/// Validate that `(p, l)` forms a 3D grid with square layers; returns the
/// layer side `√(p/l)` on success.
///
/// The grid math silently truncates otherwise — `√(p/l)` is irrational when
/// `p/l` is not a perfect square, and `p/l` itself rounds down when `l ∤ p`
/// — so every entry point that accepts `(p, l)` funnels through this check
/// and reports the offending pair instead.
pub fn validate_grid(p: usize, l: usize) -> crate::Result<usize> {
    if p == 0 {
        return Err(CoreError::Config("process count p=0 is not a grid".into()));
    }
    if l == 0 {
        return Err(CoreError::Config(format!(
            "invalid 3D grid (p={p}, l=0): the layer count must be at least 1"
        )));
    }
    if !p.is_multiple_of(l) {
        return Err(CoreError::Config(format!(
            "invalid 3D grid (p={p}, l={l}): the layer count must divide the process count"
        )));
    }
    layer_side(p, l).ok_or_else(|| {
        CoreError::Config(format!(
            "invalid 3D grid (p={p}, l={l}): p/l = {} is not a perfect square",
            p / l
        ))
    })
}

/// Validate that replication factor `c` forms a 1.5D layout over `p`
/// processes; returns the ring length `t = p/c` on success.
///
/// Mirrors [`validate_grid`]: the 1.5D ring math truncates silently when
/// `c ∤ p` and degenerates when `c > p` or `c = 0`, so every entry point
/// that accepts `(p, c)` funnels through this check and reports the
/// offending pair.
pub fn validate_repl(p: usize, c: usize) -> crate::Result<usize> {
    if p == 0 {
        return Err(CoreError::Config("process count p=0 is not a grid".into()));
    }
    if c == 0 {
        return Err(CoreError::Config(format!(
            "invalid 1.5D replication (p={p}, c=0): the replication factor must be at least 1"
        )));
    }
    if c > p {
        return Err(CoreError::Config(format!(
            "invalid 1.5D replication (p={p}, c={c}): the replication factor cannot exceed the \
             process count"
        )));
    }
    if !p.is_multiple_of(c) {
        return Err(CoreError::Config(format!(
            "invalid 1.5D replication (p={p}, c={c}): the replication factor must divide the \
             process count"
        )));
    }
    Ok(p / c)
}

/// Problem and grid parameters for the closed-form model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProblemModel {
    /// Global `nnz(A)`.
    pub nnz_a: u64,
    /// Global `nnz(B)`.
    pub nnz_b: u64,
    /// Total multiplication count.
    pub flops: u64,
    /// Processes.
    pub p: usize,
    /// Layers.
    pub l: usize,
    /// Batches.
    pub b: usize,
    /// Bytes per nonzero.
    pub r: usize,
}

/// Latency / bandwidth split of a step's total modeled cost.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepCost {
    /// Seconds attributable to the α (latency) term.
    pub latency_s: f64,
    /// Seconds attributable to the β (bandwidth) term.
    pub bandwidth_s: f64,
}

impl StepCost {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.latency_s + self.bandwidth_s
    }
}

impl ProblemModel {
    /// Validated constructor: rejects degenerate `(p, l)` pairs (see
    /// [`validate_grid`]) instead of letting `sqrt_pl` silently truncate.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        nnz_a: u64,
        nnz_b: u64,
        flops: u64,
        p: usize,
        l: usize,
        b: usize,
        r: usize,
    ) -> crate::Result<ProblemModel> {
        let pm = ProblemModel {
            nnz_a,
            nnz_b,
            flops,
            p,
            l,
            b,
            r,
        };
        pm.validate()?;
        Ok(pm)
    }

    /// Check this model's grid and batch parameters; struct-literal
    /// construction remains possible for tests, so call this before
    /// trusting `sqrt_pl`-derived quantities on externally supplied values.
    pub fn validate(&self) -> crate::Result<()> {
        validate_grid(self.p, self.l)?;
        if self.b == 0 {
            return Err(CoreError::Config("batch count b=0 (must be at least 1)".into()));
        }
        Ok(())
    }

    fn sqrt_pl(&self) -> f64 {
        ((self.p / self.l) as f64).sqrt()
    }

    /// Per-process data of one A-Broadcast, bytes (Table II row 1).
    pub fn abcast_bytes_per_proc(&self) -> f64 {
        self.r as f64 * self.nnz_a as f64 / self.p as f64
    }

    /// Total A-Broadcast cost over the whole run:
    /// performed `b·√(p/l)` times with communicator size `√(p/l)`.
    /// Total latency `α·b·√(p/l)·lg(p/l)`, total bandwidth
    /// `β·b·r·nnz(A)/√(pl)`.
    pub fn abcast_total(&self, m: &Machine) -> StepCost {
        let s = self.sqrt_pl();
        StepCost {
            latency_s: m.alpha * self.b as f64 * s * ((self.p / self.l).max(2) as f64).log2(),
            bandwidth_s: m.beta * self.b as f64 * self.r as f64 * self.nnz_a as f64
                / ((self.p * self.l) as f64).sqrt(),
        }
    }

    /// Per-process data of one B-Broadcast, bytes: `r·nnz(B)/(b·p)`.
    pub fn bbcast_bytes_per_proc(&self) -> f64 {
        self.r as f64 * self.nnz_b as f64 / (self.b * self.p) as f64
    }

    /// Total B-Broadcast cost: same round count as A-Broadcast, but total
    /// bandwidth `β·r·nnz(B)/√(pl)` — independent of `b` (Table II).
    pub fn bbcast_total(&self, m: &Machine) -> StepCost {
        let s = self.sqrt_pl();
        StepCost {
            latency_s: m.alpha * self.b as f64 * s * ((self.p / self.l).max(2) as f64).log2(),
            bandwidth_s: m.beta * self.r as f64 * self.nnz_b as f64
                / ((self.p * self.l) as f64).sqrt(),
        }
    }

    /// Total AllToAll-Fiber cost: `b` rounds of size-`l` exchanges; total
    /// latency `α·b·l`, total bandwidth `β·r·flops/p` (the paper notes the
    /// flops bound is loose — intra-layer compression shrinks it).
    pub fn alltoall_fiber_total(&self, m: &Machine) -> StepCost {
        StepCost {
            latency_s: m.alpha * (self.b * self.l) as f64,
            bandwidth_s: m.beta * self.r as f64 * self.flops as f64 / self.p as f64,
        }
    }

    /// Total communication rounds each process participates in, by step —
    /// `(A-Bcast, B-Bcast, AllToAll-Fiber)`; Table II's "how many times"
    /// row. Exact for divisible grids.
    pub fn rounds(&self) -> (u64, u64, u64) {
        let s = self.sqrt_pl() as u64;
        (self.b as u64 * s, self.b as u64 * s, self.b as u64)
    }

    /// Table III: Local-Multiply total work `flops/p` per process (work
    /// units; multiply by a machine's seconds-per-unit for time).
    pub fn local_multiply_work_per_proc(&self) -> f64 {
        self.flops as f64 / self.p as f64
    }

    /// Table III: Merge-Layer total work `(flops/p)·lg(p/l)` per process.
    pub fn merge_layer_work_per_proc(&self) -> f64 {
        self.flops as f64 / self.p as f64 * ((self.p / self.l).max(2) as f64).log2()
    }

    /// Table III: Merge-Fiber total work `(flops/p)·lg(l)` per process.
    pub fn merge_fiber_work_per_proc(&self) -> f64 {
        self.flops as f64 / self.p as f64 * (self.l.max(2) as f64).log2()
    }

    /// Predicted end-to-end modeled time: Table II communication plus
    /// Table III computation under `m`'s machine constants, using this
    /// crate's hash-kernel work model (flops-proportional multiply and
    /// merges; the heap generation would add the Table III `lg` factors).
    ///
    /// The bandwidth terms are upper bounds (the AllToAll term uses the
    /// paper's loose `flops/p`), so the prediction brackets the simulator
    /// from above on uniform matrices — validated in tests and in the
    /// `table2_comm_model` bench.
    pub fn predict_total(&self, m: &Machine) -> f64 {
        let comm = self.abcast_total(m).total()
            + self.bbcast_total(m).total()
            + self.alltoall_fiber_total(m).total();
        let comp_units = self.local_multiply_work_per_proc()
            + self.flops as f64 / self.p as f64 // hash merge-layer ~ volume
            + self.flops as f64 / self.p as f64; // hash merge-fiber ~ volume
        comm + m.compute_secs(comp_units)
    }

    /// Strong-scaling projection: evaluate [`ProblemModel::predict_total`]
    /// across process counts, holding the problem fixed and letting the
    /// batch count follow `b(p) = ⌈b₁·p₁/p⌉` (aggregate memory grows with
    /// `p`, so batches shrink inversely — the paper's Fig. 6/7 mechanism).
    pub fn strong_scaling_projection(
        &self,
        m: &Machine,
        ps: &[usize],
    ) -> Vec<(usize, usize, f64)> {
        let (p1, b1) = (self.p, self.b);
        ps.iter()
            .map(|&p| {
                let b = ((b1 * p1).div_ceil(p)).max(1);
                let pm = ProblemModel { p, b, ..*self };
                (p, b, pm.predict_total(m))
            })
            .collect()
    }

    /// Render the Table II analytic rows for this configuration.
    pub fn table2_rows(&self, m: &Machine) -> String {
        let a = self.abcast_total(m);
        let bb = self.bbcast_total(m);
        let f = self.alltoall_fiber_total(m);
        let (ra, rb, rf) = self.rounds();
        format!(
            "step,rounds,latency_s,bandwidth_s,total_s\n\
             A-Bcast,{ra},{:.6e},{:.6e},{:.6e}\n\
             B-Bcast,{rb},{:.6e},{:.6e},{:.6e}\n\
             AllToAll-Fiber,{rf},{:.6e},{:.6e},{:.6e}\n",
            a.latency_s,
            a.bandwidth_s,
            a.total(),
            bb.latency_s,
            bb.bandwidth_s,
            bb.total(),
            f.latency_s,
            f.bandwidth_s,
            f.total(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ProblemModel {
        ProblemModel {
            nnz_a: 1_000_000,
            nnz_b: 1_000_000,
            flops: 50_000_000,
            p: 1024,
            l: 16,
            b: 8,
            r: 24,
        }
    }

    #[test]
    fn abcast_bandwidth_scales_with_b() {
        let m = Machine::knl();
        let pm1 = ProblemModel { b: 1, ..base() };
        let pm8 = ProblemModel { b: 8, ..base() };
        let r = pm8.abcast_total(&m).bandwidth_s / pm1.abcast_total(&m).bandwidth_s;
        assert!((r - 8.0).abs() < 1e-9);
    }

    #[test]
    fn bbcast_bandwidth_independent_of_b() {
        let m = Machine::knl();
        let pm1 = ProblemModel { b: 1, ..base() };
        let pm8 = ProblemModel { b: 8, ..base() };
        assert_eq!(
            pm1.bbcast_total(&m).bandwidth_s,
            pm8.bbcast_total(&m).bandwidth_s
        );
        // ... but latency grows with b.
        assert!(pm8.bbcast_total(&m).latency_s > pm1.bbcast_total(&m).latency_s);
    }

    #[test]
    fn abcast_bandwidth_falls_as_sqrt_l() {
        // Fig. 5's law: 4x the layers halves A-Bcast bandwidth time.
        let m = Machine::knl();
        let l1 = ProblemModel { l: 1, ..base() };
        let l4 = ProblemModel { l: 4, ..base() };
        let ratio = l1.abcast_total(&m).bandwidth_s / l4.abcast_total(&m).bandwidth_s;
        assert!((ratio - 2.0).abs() < 1e-9, "expected 2.0, got {ratio}");
    }

    #[test]
    fn alltoall_latency_grows_with_l_and_b() {
        let m = Machine::knl();
        let small = ProblemModel { l: 4, b: 2, ..base() };
        let big = ProblemModel { l: 16, b: 8, ..base() };
        assert!(big.alltoall_fiber_total(&m).latency_s > small.alltoall_fiber_total(&m).latency_s);
    }

    #[test]
    fn merge_work_reflects_log_factors() {
        let pm = base();
        assert!(pm.merge_layer_work_per_proc() > pm.local_multiply_work_per_proc());
        // p/l = 64 -> lg = 6; l = 16 -> lg = 4.
        let ratio = pm.merge_layer_work_per_proc() / pm.merge_fiber_work_per_proc();
        assert!((ratio - 6.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_total_is_positive_and_layering_helps_when_comm_bound() {
        let m = Machine::knl();
        // Communication-heavy: low flops relative to nnz.
        let comm_bound = ProblemModel {
            nnz_a: 50_000_000,
            nnz_b: 50_000_000,
            flops: 60_000_000,
            p: 4096,
            l: 1,
            b: 8,
            r: 24,
        };
        let t1 = comm_bound.predict_total(&m);
        let t16 = ProblemModel { l: 16, ..comm_bound }.predict_total(&m);
        assert!(t1 > 0.0 && t16 > 0.0);
        assert!(t16 < t1, "layering should help a comm-bound problem: {t16} vs {t1}");
    }

    #[test]
    fn strong_scaling_projection_shrinks_batches_and_time() {
        let m = Machine::knl();
        let pm = ProblemModel {
            nnz_a: 1_000_000_000,
            nnz_b: 1_000_000_000,
            flops: 500_000_000_000,
            p: 1024,
            l: 16,
            b: 64,
            r: 24,
        };
        let proj = pm.strong_scaling_projection(&m, &[1024, 4096, 16384]);
        assert_eq!(proj[0].1, 64);
        assert_eq!(proj[1].1, 16);
        assert_eq!(proj[2].1, 4);
        assert!(proj.windows(2).all(|w| w[1].2 < w[0].2), "{proj:?}");
    }

    #[test]
    fn prediction_brackets_simulation_from_above() {
        use crate::{run_spgemm, RunConfig};
        use spgemm_sparse::gen::er_random;
        use spgemm_sparse::semiring::PlusTimesF64;
        use spgemm_sparse::spgemm::symbolic_nnz;

        let a = er_random::<PlusTimesF64>(512, 512, 8, 0xB0);
        let (_, stats) = symbolic_nnz(&a, &a).unwrap();
        let (p, l, b) = (64usize, 4usize, 4usize);
        let mut cfg = RunConfig::new(p, l);
        cfg.forced_batches = Some(b);
        cfg.discard_output = true;
        let out = run_spgemm::<PlusTimesF64>(&cfg, &a, &a).unwrap();
        let pm = ProblemModel {
            nnz_a: a.nnz() as u64,
            nnz_b: a.nnz() as u64,
            flops: stats.flops,
            p,
            l,
            b,
            r: 24,
        };
        let predicted = pm.predict_total(&cfg.machine);
        let simulated = out.max.total();
        assert!(
            predicted >= simulated * 0.8,
            "prediction {predicted} should bracket simulation {simulated} from above \
             (bandwidth terms are upper bounds)"
        );
        assert!(
            predicted <= simulated * 50.0,
            "prediction {predicted} should stay within an order or so of simulation {simulated}"
        );
    }

    #[test]
    fn table2_rows_render() {
        let s = base().table2_rows(&Machine::knl());
        assert!(s.contains("A-Bcast"));
        assert_eq!(s.lines().count(), 4);
    }

    fn config_msg(err: crate::CoreError) -> String {
        match err {
            crate::CoreError::Config(msg) => msg,
            other => panic!("expected Config error, got {other:?}"),
        }
    }

    #[test]
    fn zero_layers_rejected_naming_pair() {
        let msg = config_msg(validate_grid(16, 0).unwrap_err());
        assert!(msg.contains("p=16") && msg.contains("l=0"), "{msg}");
    }

    #[test]
    fn non_dividing_layers_rejected_naming_pair() {
        // l = 3 does not divide p = 16; p/l would truncate to 5.
        let msg = config_msg(validate_grid(16, 3).unwrap_err());
        assert!(msg.contains("p=16") && msg.contains("l=3"), "{msg}");
        assert!(msg.contains("divide"), "{msg}");
    }

    #[test]
    fn non_square_layers_rejected_naming_pair() {
        // l = 2 divides p = 16 but 16/2 = 8 is not a perfect square;
        // sqrt_pl would silently truncate to 2.828... downstream.
        let msg = config_msg(validate_grid(16, 2).unwrap_err());
        assert!(msg.contains("p=16") && msg.contains("l=2"), "{msg}");
        assert!(msg.contains("perfect square"), "{msg}");
    }

    #[test]
    fn valid_grids_accepted_with_side() {
        assert_eq!(validate_grid(16, 1).unwrap(), 4);
        assert_eq!(validate_grid(16, 4).unwrap(), 2);
        assert_eq!(validate_grid(16, 16).unwrap(), 1);
        assert_eq!(validate_grid(12, 3).unwrap(), 2);
    }

    #[test]
    fn problem_model_constructor_validates() {
        assert!(ProblemModel::new(10, 10, 100, 16, 4, 2, 24).is_ok());
        assert!(matches!(
            ProblemModel::new(10, 10, 100, 16, 2, 2, 24),
            Err(crate::CoreError::Config(_))
        ));
        assert!(matches!(
            ProblemModel::new(10, 10, 100, 16, 4, 0, 24),
            Err(crate::CoreError::Config(_))
        ));
        // Struct-literal models used by older tests still validate.
        assert!(base().validate().is_ok());
    }
}
