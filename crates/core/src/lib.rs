//! Communication-avoiding, memory-constrained distributed SpGEMM.
//!
//! Rust reproduction of *"Communication-Avoiding and Memory-Constrained
//! Sparse Matrix-Matrix Multiplication at Extreme Scale"* (Hussain,
//! Selvitopi, Buluç, Azad — IPDPS 2021), running on the `spgemm-simgrid`
//! virtual cluster with `spgemm-sparse` local kernels.
//!
//! The algorithm stack, bottom to top:
//!
//! * [`summa2d`] — 2D sparse SUMMA (Alg. 1): per-stage row/column
//!   broadcasts, local multiply, merge.
//! * [`summa3d`] — 3D sparse SUMMA (Alg. 2): SUMMA2D per layer, then
//!   ColSplit → AllToAll-Fiber → Merge-Fiber.
//! * [`symbolic`] — Symbolic3D (Alg. 3): distributed structure-only pass
//!   that determines the exact number of batches `b` a memory budget
//!   allows, plus the Eq. 2 analytic lower bound.
//! * [`batched`] — BatchedSUMMA3D (Alg. 4): block-cyclic column batching
//!   of `B`/`C`, one SUMMA3D per batch, per-batch delivery to the
//!   application (prune / persist / discard — the HipMCL pattern).
//!
//! Supporting modules: [`backend`] (modeled-clock vs real-multithreaded
//! kernel execution), [`dist`] (the paper's Fig. 1 3D data distribution,
//! with scatter/gather for testing), [`exchange`] (the pluggable
//! stage-operand movement layer: dense broadcasts vs sparsity-aware
//! point-to-point fetch), [`kernels`] (the *previous* vs *new*
//! local-kernel strategies of Sec. IV-D), [`memory`] (the `r`-bytes-per-
//! nonzero budget model and runtime peak tracking), [`model`] (the
//! analytic Table II/III cost evaluator), [`harness`] (one-call
//! scatter→multiply→gather drivers used by tests, examples and benches),
//! [`audit`] (payload-free symbolic extraction and exhaustive
//! verification of the communication schedule across the planner's whole
//! configuration grid), and [`serve`] (SpGEMM as a service: a resident
//! multi-tenant job server with admission control under a global memory
//! budget and a sketch-keyed plan cache).

#![forbid(unsafe_code)]

pub mod audit;
pub mod backend;
pub mod batched;
pub mod dist;
pub mod exchange;
pub mod family15;
pub mod harness;
pub mod kernels;
pub mod memory;
pub mod model;
pub mod planner;
pub mod serve;
pub mod session;
pub mod summa2d;
pub mod summa3d;
pub mod symbolic;

pub use audit::{
    AuditConfig, AuditEvent, AuditFault, AuditReport, AuditViolation, AuditViolationKind,
    BatchSpec, Schedule, TraceProgram, WorkloadShape,
};
pub use backend::{Backend, BackendKind, NativeBackend, SimgridBackend};
pub use batched::{batched_summa3d, BatchDisposition, BatchOutput, BatchedResult};
pub use dist::{transpose_to_bstyle, CPiece, DistKind, DistMatrix};
pub use exchange::{ExchangeMode, ExchangePlan, FetchCacheStats};
pub use family15::AlgorithmFamily;
pub use harness::{
    run_spgemm, run_spgemm_aat, run_spgemm_row_batched, run_spmm, LayerChoice, RunConfig,
    RunOutput, SpmmOutput,
};
pub use kernels::{KernelStrategy, LocalKernels};
pub use memory::{MemTracker, MemoryBudget, R_BYTES_PER_NNZ};
pub use planner::{MachineProfile, PlanReport, PlannerConfig, ProbeConfig, StructuralSketch};
pub use serve::{
    JobReport, JobServer, JobSpec, LoadgenConfig, LoadgenReport, ServerConfig, ServerStats,
};
pub use session::{IterSession, SessionIterStats};
pub use summa2d::{MergeSchedule, OverlapMode};
pub use symbolic::{symbolic3d, SymbolicOutcome};

/// Errors from the distributed layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Local kernel failure.
    Sparse(spgemm_sparse::SparseError),
    /// The inputs alone exceed the memory budget (Alg. 3's denominator
    /// is non-positive): no batch count can make the multiply fit.
    InputsExceedMemory {
        needed_bytes: usize,
        budget_bytes: usize,
    },
    /// Even one-column batches cannot fit: a single output column's
    /// unmerged intermediate exceeds the memory left after the inputs.
    /// Column-wise batching has hit its upper bound (the paper's bound
    /// analysis; square-tile batching would be required, which the paper
    /// deliberately rejects to keep whole columns available to the
    /// application).
    BatchingInfeasible {
        column_bytes: usize,
        available_bytes: usize,
    },
    /// Invalid configuration (grid/batch parameters).
    Config(String),
}

impl From<spgemm_sparse::SparseError> for CoreError {
    fn from(e: spgemm_sparse::SparseError) -> Self {
        CoreError::Sparse(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Sparse(e) => write!(f, "sparse kernel error: {e}"),
            CoreError::InputsExceedMemory {
                needed_bytes,
                budget_bytes,
            } => write!(
                f,
                "inputs need {needed_bytes} bytes but per-process budget is {budget_bytes}; \
                 no batching can help (Alg. 3 denominator non-positive)"
            ),
            CoreError::BatchingInfeasible {
                column_bytes,
                available_bytes,
            } => write!(
                f,
                "a single output column needs {column_bytes} bytes of intermediate but only \
                 {available_bytes} remain after the inputs; column-wise batching cannot go finer"
            ),
            CoreError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias for the distributed layer.
pub type Result<T> = std::result::Result<T, CoreError>;
