//! The exchange layer: every operand movement of a SUMMA stage behind one
//! pluggable seam.
//!
//! A stage of 2D SUMMA (Alg. 1) must deliver two operands to every process
//! of a layer: the stage column of `Ã` (owned by column `s` of each process
//! row) and the stage row of `B̃` (owned by row `s` of each process
//! column). *How* those operands move is a policy choice with a large
//! modeled-cost footprint, so it lives behind [`ExchangePlan`] rather than
//! inline collective calls:
//!
//! * [`ExchangeMode::DenseBcast`] — the paper's strategy: broadcast the
//!   full local piece along the process row / column (blocking `bcast` or
//!   the overlapped `ibcast` pipeline). Cost per stage ≈
//!   `2·⌈log q⌉·(α + β·nnz·r)` on the tree model.
//! * [`ExchangeMode::SparseFetch`] — sparsity-aware point-to-point fetch
//!   (after SpComm3D, arXiv:2404.19638): `B̃` still moves by broadcast,
//!   then each receiver derives from `B̃`'s row structure exactly which
//!   columns of the stage's `Ã` its local multiply will read, posts that
//!   index set to the owner ([`Step::FetchRequest`]), and gets back a
//!   compact column-subset slice ([`Step::FetchReply`]) that is padded to
//!   full operand width. When the operands are hypersparse — the regime a
//!   3D grid with `l ≥ 4` layers produces — most of `Ã`'s columns meet no
//!   nonzero of `B̃`, and the fetched volume is a small fraction of the
//!   dense broadcast.
//!
//! Both modes produce **bit-identical** numeric output: the padded fetch
//! operand agrees with the broadcast operand on every column the local
//! kernel reads (property-tested in `spgemm_sparse::subset` and in the
//! `exchange_equivalence` integration tests).
//!
//! ### Tag discipline
//!
//! Fetch traffic uses plain matched sends, which the
//! [`spgemm_simgrid::check`] protocol verifier audits for tag collisions:
//! reusing a tag toward the same peer is only legal once the first
//! delivery is known complete, which unsynchronized SPMD stages cannot
//! guarantee. Every fetch round therefore draws a fresh sequence number
//! from the plan's monotone counter; all members of a communicator execute
//! the same exchanges in the same order (SPMD), so the counters agree
//! without coordination.

use crate::Result;
use spgemm_simgrid::{Grid3D, PendingBcast, PendingOp, Rank, Step};
use spgemm_sparse::subset::{
    extract_cols_compact, needed_rows, scatter_cols_padded, SubsetWorkspace,
};
use spgemm_sparse::CscMatrix;
use std::sync::Arc;

/// High bits reserved for fetch tags so they can never collide with the
/// raw point-to-point tags used elsewhere (e.g. the transpose exchange's
/// `0x7A_0001`), even on a shared communicator.
const FETCH_TAG_BASE: u64 = 0xFE << 48;

/// Both stage operands `(Ã, B̃)` as delivered to this rank.
pub type OperandPair<T> = (Arc<CscMatrix<T>>, Arc<CscMatrix<T>>);

/// How stage operands move between the processes of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// Broadcast full local pieces along process rows/columns (Alg. 1 as
    /// published; the default and the baseline every figure is built on).
    #[default]
    DenseBcast,
    /// Broadcast `B̃`, then fetch only the needed columns of `Ã` over
    /// tag-matched point-to-point request/reply rounds.
    SparseFetch,
}

impl ExchangeMode {
    /// Stable lowercase name (CLI value, planner candidate label token).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExchangeMode::DenseBcast => "dense",
            ExchangeMode::SparseFetch => "sparse",
        }
    }

    /// Parse a CLI value (`dense` / `sparse`).
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        match s {
            "dense" | "bcast" => Ok(ExchangeMode::DenseBcast),
            "sparse" | "fetch" => Ok(ExchangeMode::SparseFetch),
            other => Err(format!(
                "unknown exchange mode '{other}' (expected 'dense' or 'sparse')"
            )),
        }
    }

    /// Every mode, for planner enumeration and sweeps.
    pub const ALL: [ExchangeMode; 2] = [ExchangeMode::DenseBcast, ExchangeMode::SparseFetch];
}

/// Per-rank state of the exchange layer: the mode, the reusable
/// needed-rows scratch, and the monotone fetch-round counter (see the
/// module docs on tag discipline). One plan lives for a whole run — its
/// workspace capacity and counter span every stage, batch, and layer.
#[derive(Debug, Default)]
pub struct ExchangePlan {
    mode: ExchangeMode,
    ws: SubsetWorkspace,
    fetch_seq: u64,
}

/// The posted-but-unwaited operand movement of one SUMMA stage.
///
/// Under [`ExchangeMode::DenseBcast`] both broadcasts are in flight; under
/// [`ExchangeMode::SparseFetch`] only the `B̃` broadcast is posted — the
/// `Ã` fetch *depends on* the received `B̃`'s structure, so it runs inside
/// [`ExchangePlan::wait_stage`] (the fetch round is not hidden by the
/// pipeline; the `B̃` leg still is).
#[must_use = "posted stage exchanges must be waited or peers deadlock"]
pub struct StagePending<T> {
    a: Option<PendingBcast<CscMatrix<T>>>,
    b: PendingBcast<CscMatrix<T>>,
    s: usize,
}

impl<T> std::fmt::Debug for StagePending<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagePending")
            .field("a_posted", &self.a.is_some())
            .field("stage", &self.s)
            .finish_non_exhaustive()
    }
}

impl ExchangePlan {
    /// A fresh plan for one rank of one run.
    #[must_use]
    pub fn new(mode: ExchangeMode) -> Self {
        ExchangePlan {
            mode,
            ws: SubsetWorkspace::new(),
            fetch_seq: 0,
        }
    }

    /// The mode this plan executes.
    #[must_use]
    pub fn mode(&self) -> ExchangeMode {
        self.mode
    }

    /// Blocking stage exchange: deliver stage `s`'s `(Ã, B̃)` operands to
    /// this rank. `steps` attributes the broadcast legs (numeric stages
    /// use `(ABcast, BBcast)`; the symbolic sweep uses `SymbolicComm` for
    /// both); fetch legs are always attributed to `FetchRequest` /
    /// `FetchReply` so reports can separate them.
    #[allow(clippy::too_many_arguments)] // SPMD plumbing: grid + operands + model
    pub fn exchange_stage<T: Copy + Send + Sync + 'static>(
        &mut self,
        rank: &mut Rank,
        grid: &Grid3D,
        s: usize,
        a_shared: &Arc<CscMatrix<T>>,
        a_bytes: usize,
        b_batch: &Arc<CscMatrix<T>>,
        b_bytes: usize,
        r: usize,
        steps: (Step, Step),
    ) -> Result<OperandPair<T>> {
        let (a_step, b_step) = steps;
        match self.mode {
            ExchangeMode::DenseBcast => {
                // A-Broadcast along the process row: root is column s of
                // the row; then B-Broadcast along the process column.
                let a_payload = (grid.row.my_index() == s).then(|| Arc::clone(a_shared));
                let a_recv = rank.bcast(&grid.row, s, a_payload, a_bytes, a_step);
                let b_payload = (grid.col.my_index() == s).then(|| Arc::clone(b_batch));
                let b_recv = rank.bcast(&grid.col, s, b_payload, b_bytes, b_step);
                Ok((a_recv, b_recv))
            }
            ExchangeMode::SparseFetch => {
                // B must land first: the needed-column set of Ã is derived
                // from B̃'s row structure.
                let b_payload = (grid.col.my_index() == s).then(|| Arc::clone(b_batch));
                let b_recv = rank.bcast(&grid.col, s, b_payload, b_bytes, b_step);
                let a_recv = self.fetch_stage_a(rank, grid, s, a_shared, &b_recv, r);
                Ok((a_recv, b_recv))
            }
        }
    }

    /// Post (without waiting) stage `s`'s operand movement — the pipelined
    /// twin of [`ExchangePlan::exchange_stage`], paired with
    /// [`ExchangePlan::wait_stage`].
    #[allow(clippy::too_many_arguments)] // SPMD plumbing: grid + operands + model
    pub fn post_stage<T: Send + Sync + 'static>(
        &self,
        rank: &mut Rank,
        grid: &Grid3D,
        s: usize,
        a_shared: &Arc<CscMatrix<T>>,
        a_bytes: usize,
        b_batch: &Arc<CscMatrix<T>>,
        b_bytes: usize,
    ) -> StagePending<T> {
        let a = matches!(self.mode, ExchangeMode::DenseBcast).then(|| {
            let a_payload = (grid.row.my_index() == s).then(|| Arc::clone(a_shared));
            rank.ibcast(&grid.row, s, a_payload, a_bytes, Step::ABcast)
        });
        let b_payload = (grid.col.my_index() == s).then(|| Arc::clone(b_batch));
        let b = rank.ibcast(&grid.col, s, b_payload, b_bytes, Step::BBcast);
        StagePending { a, b, s }
    }

    /// Complete a posted stage exchange. Under `SparseFetch` this is where
    /// the fetch round runs (it needs the received `B̃`), against this
    /// rank's `a_shared` — the same operand [`ExchangePlan::post_stage`]
    /// was given, rebroadcast identically every batch.
    pub fn wait_stage<T: Copy + Send + Sync + 'static>(
        &mut self,
        rank: &mut Rank,
        grid: &Grid3D,
        pending: StagePending<T>,
        a_shared: &Arc<CscMatrix<T>>,
        r: usize,
    ) -> OperandPair<T> {
        let StagePending { a, b, s } = pending;
        match a {
            Some(pa) => {
                let a_recv = pa.wait(rank);
                let b_recv = b.wait(rank);
                (a_recv, b_recv)
            }
            None => {
                let b_recv = b.wait(rank);
                let a_recv = self.fetch_stage_a(rank, grid, s, a_shared, &b_recv, r);
                (a_recv, b_recv)
            }
        }
    }

    /// The point-to-point fetch round for stage `s`'s `Ã` operand along
    /// the process row (owner: member `s`).
    ///
    /// Receivers post their needed-column index set and reassemble the
    /// compact reply to full operand width (empty untouched columns cost
    /// nothing in the paper's `nnz·r` byte model). The owner serves the
    /// requests of every other row member in member order and uses its own
    /// local piece directly. Modeled time follows the per-side convention
    /// of the transpose exchange: each message charges `α + β·bytes` to
    /// the side that handles it, so the owner — which serves `q − 1`
    /// replies serially — is the modeled bottleneck.
    fn fetch_stage_a<T: Copy + Send + Sync + 'static>(
        &mut self,
        rank: &mut Rank,
        grid: &Grid3D,
        s: usize,
        a_shared: &Arc<CscMatrix<T>>,
        b_recv: &CscMatrix<T>,
        r: usize,
    ) -> Arc<CscMatrix<T>> {
        let row = &grid.row;
        let q = row.size();
        if q == 1 {
            return Arc::clone(a_shared);
        }
        let seq = self.fetch_seq;
        self.fetch_seq += 1;
        let req_tag = FETCH_TAG_BASE + 2 * seq;
        let rep_tag = req_tag + 1;
        let me = row.my_index();

        if me == s {
            debug_assert_eq!(
                a_shared.ncols(),
                b_recv.nrows(),
                "stage {s}: owner's A piece and B row slice must conform \
                 (layer {}, row {}, col {})",
                grid.k,
                grid.i,
                grid.j
            );
            for i in (0..q).filter(|&i| i != s) {
                let needed: Vec<u32> = rank.recv(row, i, req_tag);
                let req_bytes = 4 * needed.len();
                let req_cost = rank.machine().send_secs(req_bytes);
                rank.clock_mut().advance(Step::FetchRequest, req_cost);
                rank.clock_mut().record_comm(Step::FetchRequest, req_bytes as u64, 1);

                let compact = extract_cols_compact(a_shared, &needed);
                let rep_bytes = compact.modeled_bytes(r);
                rank.send(row, i, rep_tag, (compact, a_shared.ncols() as u64));
                let rep_cost = rank.machine().send_secs(rep_bytes);
                rank.clock_mut().advance(Step::FetchReply, rep_cost);
                rank.clock_mut().record_comm(Step::FetchReply, rep_bytes as u64, 1);
            }
            Arc::clone(a_shared)
        } else {
            let needed = needed_rows(b_recv, &mut self.ws);
            let req_bytes = 4 * needed.len();
            rank.send(row, s, req_tag, needed.clone());
            let req_cost = rank.machine().send_secs(req_bytes);
            rank.clock_mut().advance(Step::FetchRequest, req_cost);
            rank.clock_mut().record_comm(Step::FetchRequest, req_bytes as u64, 1);

            let (compact, owner_ncols): (CscMatrix<T>, u64) = rank.recv(row, s, rep_tag);
            let rep_bytes = compact.modeled_bytes(r);
            let rep_cost = rank.machine().send_secs(rep_bytes);
            rank.clock_mut().advance(Step::FetchReply, rep_cost);
            rank.clock_mut().record_comm(Step::FetchReply, rep_bytes as u64, 1);

            let a = scatter_cols_padded(&compact, &needed, owner_ncols as usize);
            debug_assert_eq!(
                a.ncols(),
                b_recv.nrows(),
                "stage {s}: padded fetch operand must conform to B's row slice"
            );
            Arc::new(a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_simgrid::{run_ranks, Grid3D, Machine};
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::PlusTimesF64;
    use spgemm_sparse::ops::col_block;

    #[test]
    fn mode_names_and_parse_roundtrip() {
        for mode in ExchangeMode::ALL {
            assert_eq!(ExchangeMode::parse(mode.name()), Ok(mode));
        }
        assert_eq!(ExchangeMode::parse("bcast"), Ok(ExchangeMode::DenseBcast));
        assert_eq!(ExchangeMode::parse("fetch"), Ok(ExchangeMode::SparseFetch));
        assert!(ExchangeMode::parse("carrier-pigeon").is_err());
        assert_eq!(ExchangeMode::default(), ExchangeMode::DenseBcast);
    }

    /// Blocking exchange delivers identical operands in both modes (on the
    /// columns the kernel reads), and fetch traffic lands on its own steps.
    #[test]
    fn blocking_exchange_operands_agree_across_modes() {
        let n = 24usize;
        let run = |mode: ExchangeMode| {
            run_ranks(4, Machine::knl(), move |rank| {
                let grid = Grid3D::new(rank, 1);
                // Each rank owns a distinct A piece and B piece, keyed by
                // its grid coordinates so both modes see the same world.
                let a_local =
                    Arc::new(er_random::<PlusTimesF64>(n, n, 3, 100 + grid.j as u64));
                let b_local = Arc::new(col_block(
                    &er_random::<PlusTimesF64>(n, n, 2, 200 + grid.i as u64),
                    0..n,
                ));
                let mut plan = ExchangePlan::new(mode);
                let mut got = Vec::new();
                for s in 0..grid.pr {
                    let (a_recv, b_recv) = plan
                        .exchange_stage(
                            rank,
                            &grid,
                            s,
                            &a_local,
                            a_local.modeled_bytes(24),
                            &b_local,
                            b_local.modeled_bytes(24),
                            24,
                            (Step::ABcast, Step::BBcast),
                        )
                        .unwrap();
                    assert_eq!(a_recv.ncols(), b_recv.nrows());
                    // Compare only what a kernel would read: A's columns at
                    // B's occupied rows.
                    let mut ws = spgemm_sparse::subset::SubsetWorkspace::new();
                    let need = spgemm_sparse::subset::needed_rows(&b_recv, &mut ws);
                    let read = spgemm_sparse::subset::extract_cols_compact(&a_recv, &need);
                    got.push((read, b_recv.as_ref().clone()));
                }
                let fetch_bytes = rank.clock().breakdown().bytes_of(Step::FetchReply);
                (got, fetch_bytes)
            })
        };
        let dense = run(ExchangeMode::DenseBcast);
        let sparse = run(ExchangeMode::SparseFetch);
        for (rk, ((dg, dfb), (sg, sfb))) in dense.iter().zip(sparse.iter()).enumerate() {
            assert_eq!(*dfb, 0, "rank {rk}: dense mode must not fetch");
            let _ = sfb;
            for (s, ((da, db), (sa, sb))) in dg.iter().zip(sg.iter()).enumerate() {
                assert!(da.eq_modulo_order(sa), "rank {rk} stage {s}: A operand");
                assert!(db.eq_modulo_order(sb), "rank {rk} stage {s}: B operand");
            }
        }
        // At least the off-owner ranks must have fetched something.
        assert!(sparse.iter().any(|(_, fb)| *fb > 0), "no fetch traffic recorded");
    }

    /// The pipelined post/wait pair matches the blocking exchange in both
    /// modes and keeps the checker quiet (unique tags per round).
    #[test]
    fn pipelined_exchange_matches_blocking() {
        let n = 20usize;
        for mode in ExchangeMode::ALL {
            let results = run_ranks(4, Machine::knl(), move |rank| {
                let grid = Grid3D::new(rank, 1);
                let a_local =
                    Arc::new(er_random::<PlusTimesF64>(n, n, 3, 300 + grid.j as u64));
                let b_local =
                    Arc::new(er_random::<PlusTimesF64>(n, n, 2, 400 + grid.i as u64));
                let ab = a_local.modeled_bytes(24);
                let bb = b_local.modeled_bytes(24);

                let mut blocking = ExchangePlan::new(mode);
                let mut pipelined = ExchangePlan::new(mode);
                let mut out = Vec::new();
                let mut pending = pipelined.post_stage(rank, &grid, 0, &a_local, ab, &b_local, bb);
                for s in 0..grid.pr {
                    let (pa, pb) = pipelined.wait_stage(rank, &grid, pending, &a_local, 24);
                    pending = pipelined.post_stage(
                        rank,
                        &grid,
                        (s + 1) % grid.pr,
                        &a_local,
                        ab,
                        &b_local,
                        bb,
                    );
                    let (ba, bbv) = blocking
                        .exchange_stage(
                            rank,
                            &grid,
                            s,
                            &a_local,
                            ab,
                            &b_local,
                            bb,
                            24,
                            (Step::ABcast, Step::BBcast),
                        )
                        .unwrap();
                    out.push(
                        pa.eq_modulo_order(&ba) && pb.eq_modulo_order(&bbv),
                    );
                }
                // Drain the extra posted stage so no handle leaks.
                let _ = pipelined.wait_stage(rank, &grid, pending, &a_local, 24);
                out
            });
            for (rk, stages) in results.iter().enumerate() {
                assert!(
                    stages.iter().all(|&ok| ok),
                    "rank {rk} mode {mode:?}: pipelined operands diverge"
                );
            }
        }
    }
}
