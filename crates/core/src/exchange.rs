//! The exchange layer: every operand movement of a SUMMA stage behind one
//! pluggable seam.
//!
//! A stage of 2D SUMMA (Alg. 1) must deliver two operands to every process
//! of a layer: the stage column of `Ã` (owned by column `s` of each process
//! row) and the stage row of `B̃` (owned by row `s` of each process
//! column). *How* those operands move is a policy choice with a large
//! modeled-cost footprint, so it lives behind [`ExchangePlan`] rather than
//! inline collective calls:
//!
//! * [`ExchangeMode::DenseBcast`] — the paper's strategy: broadcast the
//!   full local piece along the process row / column (blocking `bcast` or
//!   the overlapped `ibcast` pipeline). Cost per stage ≈
//!   `2·⌈log q⌉·(α + β·nnz·r)` on the tree model.
//! * [`ExchangeMode::SparseFetch`] — sparsity-aware point-to-point fetch
//!   (after SpComm3D, arXiv:2404.19638): `B̃` still moves by broadcast,
//!   then each receiver derives from `B̃`'s row structure exactly which
//!   columns of the stage's `Ã` its local multiply will read, posts that
//!   index set to the owner ([`Step::FetchRequest`]), and gets back a
//!   compact column-subset slice ([`Step::FetchReply`]) that is padded to
//!   full operand width. When the operands are hypersparse — the regime a
//!   3D grid with `l ≥ 4` layers produces — most of `Ã`'s columns meet no
//!   nonzero of `B̃`, and the fetched volume is a small fraction of the
//!   dense broadcast.
//!
//! Both modes produce **bit-identical** numeric output: the padded fetch
//! operand agrees with the broadcast operand on every column the local
//! kernel reads (property-tested in `spgemm_sparse::subset` and in the
//! `exchange_equivalence` integration tests).
//!
//! ### Tag discipline
//!
//! Fetch traffic uses plain matched sends, which the
//! [`spgemm_simgrid::check`] protocol verifier audits for tag collisions:
//! reusing a tag toward the same peer is only legal once the first
//! delivery is known complete, which unsynchronized SPMD stages cannot
//! guarantee. Every fetch round therefore draws a fresh sequence number
//! from the plan's monotone counter; all members of a communicator execute
//! the same exchanges in the same order (SPMD), so the counters agree
//! without coordination.

use crate::Result;
use spgemm_simgrid::{Grid3D, PendingBcast, PendingOp, Rank, Step};
use spgemm_sparse::subset::{
    extract_cols_compact, needed_rows, scatter_cols_padded, SubsetWorkspace,
};
use spgemm_sparse::CscMatrix;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// High bits reserved for fetch tags so they can never collide with the
/// raw point-to-point tags used elsewhere (e.g. the transpose exchange's
/// `0x7A_0001`), even on a shared communicator.
pub const FETCH_TAG_BASE: u64 = 0xFE << 48;

/// Request tag of fetch round `seq` (receiver → owner). Exposed so the
/// schedule auditor ([`crate::audit`]) derives the exact wire tags a real
/// run uses; [`ExchangePlan`] routes through the same function.
#[must_use]
pub fn fetch_req_tag(seq: u64) -> u64 {
    FETCH_TAG_BASE + 2 * seq
}

/// Reply tag of fetch round `seq` (owner → receiver), paired with
/// [`fetch_req_tag`].
#[must_use]
pub fn fetch_rep_tag(seq: u64) -> u64 {
    fetch_req_tag(seq) + 1
}

/// Both stage operands `(Ã, B̃)` as delivered to this rank.
pub type OperandPair<T> = (Arc<CscMatrix<T>>, Arc<CscMatrix<T>>);

/// How stage operands move between the processes of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// Broadcast full local pieces along process rows/columns (Alg. 1 as
    /// published; the default and the baseline every figure is built on).
    #[default]
    DenseBcast,
    /// Broadcast `B̃`, then fetch only the needed columns of `Ã` over
    /// tag-matched point-to-point request/reply rounds.
    SparseFetch,
}

impl ExchangeMode {
    /// Stable lowercase name (CLI value, planner candidate label token).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExchangeMode::DenseBcast => "dense",
            ExchangeMode::SparseFetch => "sparse",
        }
    }

    /// Parse a CLI value (`dense` / `sparse`).
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        match s {
            "dense" | "bcast" => Ok(ExchangeMode::DenseBcast),
            "sparse" | "fetch" => Ok(ExchangeMode::SparseFetch),
            other => Err(format!(
                "unknown exchange mode '{other}' (expected 'dense' or 'sparse')"
            )),
        }
    }

    /// Every mode, for planner enumeration and sweeps.
    pub const ALL: [ExchangeMode; 2] = [ExchangeMode::DenseBcast, ExchangeMode::SparseFetch];
}

/// Wire request of one fetch round (receiver → stage owner). Public so
/// protocol-negative tests (tag collisions, unmatched receives) can put
/// real fetch payloads on the wire.
#[derive(Debug)]
pub enum FetchReq {
    /// Full needed-column index set: the cold path, and the path taken
    /// whenever the receiver's structure changed or caching is off. An
    /// empty set triggers the zero-row fast path on the owner.
    Rows(Vec<u32>),
    /// The receiver's needed set for this `(stage, batch)` key is
    /// identical to the one the owner last served; the owner decides from
    /// its column epochs whether the receiver's cached tile is still
    /// valid. Carries no payload — a pure control message.
    Unchanged,
}

/// Wire reply of one fetch round (stage owner → receiver). Public for the
/// same protocol-negative tests as [`FetchReq`].
pub enum FetchRep<T> {
    /// Compact column-subset tile plus the owner's operand width.
    Tile(CscMatrix<T>, u64),
    /// Zero-row fast path: the receiver needed nothing, so only the
    /// operand dimensions travel (the receiver pads an empty matrix).
    Empty { nrows: u64, ncols: u64 },
    /// Every column the receiver's cached tile covers is unchanged since
    /// it was served — reuse it as-is.
    CacheValid,
}

// Manual impl: the derive would demand `T: Debug` *and* `T: Copy` (the
// bound `CscMatrix<T>: Debug` carries), which no caller needs.
impl<T: Copy + std::fmt::Debug> std::fmt::Debug for FetchRep<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchRep::Tile(tile, width) => {
                f.debug_tuple("Tile").field(tile).field(width).finish()
            }
            FetchRep::Empty { nrows, ncols } => f
                .debug_struct("Empty")
                .field("nrows", nrows)
                .field("ncols", ncols)
                .finish(),
            FetchRep::CacheValid => f.write_str("CacheValid"),
        }
    }
}

/// Counters of the cross-iteration fetch cache (and the zero-row fast
/// path), per rank. Receiver-side rounds count as `hits`/`misses`;
/// `served_cached` counts the owner side of hits; `invalidated_cols`
/// accumulates the dirty columns noted via
/// [`ExchangePlan::note_dirty_cols`]; `bytes_saved` is the modeled reply
/// volume hits avoided.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FetchCacheStats {
    /// Rounds answered `CacheValid` (receiver side).
    pub hits: u64,
    /// Cached-eligible rounds that had to ship a tile (receiver side).
    pub misses: u64,
    /// `CacheValid` replies issued (owner side).
    pub served_cached: u64,
    /// Dirty columns recorded across all epochs.
    pub invalidated_cols: u64,
    /// Modeled reply bytes avoided by hits (receiver side).
    pub bytes_saved: u64,
    /// Zero-row fast-path rounds (either side).
    pub empty_rounds: u64,
}

impl FetchCacheStats {
    /// Counter-wise difference against an earlier snapshot.
    #[must_use]
    pub fn delta(&self, earlier: &FetchCacheStats) -> FetchCacheStats {
        FetchCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            served_cached: self.served_cached - earlier.served_cached,
            invalidated_cols: self.invalidated_cols - earlier.invalidated_cols,
            bytes_saved: self.bytes_saved - earlier.bytes_saved,
            empty_rounds: self.empty_rounds - earlier.empty_rounds,
        }
    }
}

/// Owner-side memo of the last request served to one requester of one
/// batch: the needed set (so `Unchanged` requests need not resend it) and
/// the epoch at which the tile was cut.
struct OwnerEntry {
    needed: Vec<u32>,
    served_epoch: u64,
}

/// Receiver-side cached tile for one `(stage, batch)` key.
struct TileEntry<T> {
    needed: Vec<u32>,
    tile: Arc<CscMatrix<T>>,
    rep_bytes: u64,
}

/// Cross-iteration fetch-cache state (see [`ExchangePlan::enable_cache`]).
///
/// Epochs are purely rank-local: every rank advances its epoch once per
/// iteration via [`ExchangePlan::note_dirty_cols`], and an owner compares
/// only its *own* column epochs against the epoch at which it last served
/// a tile — no cross-rank epoch agreement is needed. The receiver-side
/// tiles are type-erased because one plan serves any element type; a plan
/// is in practice reused with a single `T` for its whole life.
struct FetchCache {
    epoch: u64,
    /// Local column index → epoch at which it last changed.
    col_epoch: HashMap<u32, u64>,
    /// `(batch, requester)` → last served request. The stage index is
    /// implied: a rank only owns the stage equal to its own row index.
    owner_memo: HashMap<(usize, usize), OwnerEntry>,
    /// `(stage, batch)` → cached padded tile
    /// (`HashMap<(usize, usize), TileEntry<T>>` behind `Any`).
    tiles: Option<Box<dyn Any + Send>>,
    /// Current batch context set by [`ExchangePlan::begin_batch`]; `None`
    /// (e.g. during the symbolic sweep) bypasses caching.
    cur_batch: Option<usize>,
    stats: FetchCacheStats,
}

/// Per-rank state of the exchange layer: the mode, the reusable
/// needed-rows scratch, the monotone fetch-round counter (see the
/// module docs on tag discipline), and — for iterative sessions — the
/// cross-iteration fetch cache. One plan lives for a whole run — its
/// workspace capacity and counter span every stage, batch, and layer; an
/// [`crate::session::IterSession`] keeps one plan alive across iterations.
#[derive(Default)]
pub struct ExchangePlan {
    mode: ExchangeMode,
    ws: SubsetWorkspace,
    fetch_seq: u64,
    cache: Option<FetchCache>,
}

impl std::fmt::Debug for ExchangePlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExchangePlan")
            .field("mode", &self.mode)
            .field("fetch_seq", &self.fetch_seq)
            .field("cache_enabled", &self.cache.is_some())
            .finish_non_exhaustive()
    }
}

/// The posted-but-unwaited operand movement of one SUMMA stage.
///
/// Under [`ExchangeMode::DenseBcast`] both broadcasts are in flight; under
/// [`ExchangeMode::SparseFetch`] only the `B̃` broadcast is posted — the
/// `Ã` fetch *depends on* the received `B̃`'s structure, so it runs inside
/// [`ExchangePlan::wait_stage`] (the fetch round is not hidden by the
/// pipeline; the `B̃` leg still is).
#[must_use = "posted stage exchanges must be waited or peers deadlock"]
pub struct StagePending<T> {
    a: Option<PendingBcast<CscMatrix<T>>>,
    b: PendingBcast<CscMatrix<T>>,
    s: usize,
}

impl<T> std::fmt::Debug for StagePending<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagePending")
            .field("a_posted", &self.a.is_some())
            .field("stage", &self.s)
            .finish_non_exhaustive()
    }
}

impl ExchangePlan {
    /// A fresh plan for one rank of one run.
    #[must_use]
    pub fn new(mode: ExchangeMode) -> Self {
        ExchangePlan {
            mode,
            ws: SubsetWorkspace::new(),
            fetch_seq: 0,
            cache: None,
        }
    }

    /// The mode this plan executes.
    #[must_use]
    pub fn mode(&self) -> ExchangeMode {
        self.mode
    }

    /// Turn on the cross-iteration fetch cache. SPMD contract: every rank
    /// of the run must enable it (the wire protocol differs once a
    /// receiver starts sending `Unchanged` requests, and the owner can
    /// only answer them from its memo). Idempotent.
    pub fn enable_cache(&mut self) {
        if self.cache.is_none() {
            self.cache = Some(FetchCache {
                epoch: 0,
                col_epoch: HashMap::new(),
                owner_memo: HashMap::new(),
                tiles: None,
                cur_batch: None,
                stats: FetchCacheStats::default(),
            });
        }
    }

    /// Whether [`ExchangePlan::enable_cache`] was called.
    #[must_use]
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Set the batch context: fetch rounds until the next context change
    /// are keyed `(stage, batch)` in the cache. No-op when the cache is
    /// disabled.
    pub fn begin_batch(&mut self, batch: usize) {
        if let Some(c) = self.cache.as_mut() {
            c.cur_batch = Some(batch);
        }
    }

    /// Clear the batch context: subsequent fetch rounds (e.g. the symbolic
    /// sweep, whose structure-only operands are not worth caching) bypass
    /// the cache entirely.
    pub fn begin_uncached(&mut self) {
        if let Some(c) = self.cache.as_mut() {
            c.cur_batch = None;
        }
    }

    /// Advance the cache epoch and mark `dirty` local columns of this
    /// rank's resident `A` operand as changed. Call once per iteration on
    /// every rank — even with an empty dirty set — after the session
    /// updates its iterate. Owners consult these epochs to decide whether
    /// a previously served tile is still valid.
    pub fn note_dirty_cols(&mut self, dirty: &[u32]) {
        if let Some(c) = self.cache.as_mut() {
            c.epoch += 1;
            for &col in dirty {
                c.col_epoch.insert(col, c.epoch);
            }
            c.stats.invalidated_cols += dirty.len() as u64;
        }
    }

    /// Current cache counters (zeros when the cache is disabled).
    #[must_use]
    pub fn cache_stats(&self) -> FetchCacheStats {
        self.cache.as_ref().map(|c| c.stats).unwrap_or_default()
    }

    /// The batch the cache is currently keying fetches under, or `None`
    /// when the cache is disabled or in the uncached (symbolic) context.
    /// Kernels use this to assert the caller upheld the
    /// [`ExchangePlan::begin_batch`] contract.
    #[must_use]
    pub fn batch_context(&self) -> Option<usize> {
        self.cache.as_ref().and_then(|c| c.cur_batch)
    }

    /// The cache key for a fetch round of stage `s`, if caching applies.
    fn cache_key(&self, s: usize) -> Option<(usize, usize)> {
        self.cache
            .as_ref()
            .and_then(|c| c.cur_batch.map(|b| (s, b)))
    }

    /// Typed view of the receiver-side tile map, creating it on first use.
    /// Panics if one plan is reused across element types (not a supported
    /// pattern — a session is monomorphic in its semiring).
    fn tiles_mut<T: Copy + Send + Sync + 'static>(
        &mut self,
    ) -> &mut HashMap<(usize, usize), TileEntry<T>> {
        let cache = self.cache.as_mut().expect("tile access requires the cache");
        cache
            .tiles
            .get_or_insert_with(|| {
                Box::new(HashMap::<(usize, usize), TileEntry<T>>::new()) as Box<dyn Any + Send>
            })
            .downcast_mut()
            .expect("one ExchangePlan fetch cache cannot serve two element types")
    }

    /// Blocking stage exchange: deliver stage `s`'s `(Ã, B̃)` operands to
    /// this rank. `steps` attributes the broadcast legs (numeric stages
    /// use `(ABcast, BBcast)`; the symbolic sweep uses `SymbolicComm` for
    /// both); fetch legs are always attributed to `FetchRequest` /
    /// `FetchReply` so reports can separate them.
    #[allow(clippy::too_many_arguments)] // SPMD plumbing: grid + operands + model
    pub fn exchange_stage<T: Copy + Send + Sync + 'static>(
        &mut self,
        rank: &mut Rank,
        grid: &Grid3D,
        s: usize,
        a_shared: &Arc<CscMatrix<T>>,
        a_bytes: usize,
        b_batch: &Arc<CscMatrix<T>>,
        b_bytes: usize,
        r: usize,
        steps: (Step, Step),
    ) -> Result<OperandPair<T>> {
        let (a_step, b_step) = steps;
        match self.mode {
            ExchangeMode::DenseBcast => {
                // A-Broadcast along the process row: root is column s of
                // the row; then B-Broadcast along the process column.
                let a_payload = (grid.row.my_index() == s).then(|| Arc::clone(a_shared));
                let a_recv = rank.bcast(&grid.row, s, a_payload, a_bytes, a_step);
                let b_payload = (grid.col.my_index() == s).then(|| Arc::clone(b_batch));
                let b_recv = rank.bcast(&grid.col, s, b_payload, b_bytes, b_step);
                Ok((a_recv, b_recv))
            }
            ExchangeMode::SparseFetch => {
                // B must land first: the needed-column set of Ã is derived
                // from B̃'s row structure.
                let b_payload = (grid.col.my_index() == s).then(|| Arc::clone(b_batch));
                let b_recv = rank.bcast(&grid.col, s, b_payload, b_bytes, b_step);
                let a_recv = self.fetch_stage_a(rank, grid, s, a_shared, &b_recv, r);
                Ok((a_recv, b_recv))
            }
        }
    }

    /// Post (without waiting) stage `s`'s operand movement — the pipelined
    /// twin of [`ExchangePlan::exchange_stage`], paired with
    /// [`ExchangePlan::wait_stage`].
    #[allow(clippy::too_many_arguments)] // SPMD plumbing: grid + operands + model
    pub fn post_stage<T: Send + Sync + 'static>(
        &self,
        rank: &mut Rank,
        grid: &Grid3D,
        s: usize,
        a_shared: &Arc<CscMatrix<T>>,
        a_bytes: usize,
        b_batch: &Arc<CscMatrix<T>>,
        b_bytes: usize,
    ) -> StagePending<T> {
        let a = matches!(self.mode, ExchangeMode::DenseBcast).then(|| {
            let a_payload = (grid.row.my_index() == s).then(|| Arc::clone(a_shared));
            rank.ibcast(&grid.row, s, a_payload, a_bytes, Step::ABcast)
        });
        let b_payload = (grid.col.my_index() == s).then(|| Arc::clone(b_batch));
        let b = rank.ibcast(&grid.col, s, b_payload, b_bytes, Step::BBcast);
        StagePending { a, b, s }
    }

    /// Complete a posted stage exchange. Under `SparseFetch` this is where
    /// the fetch round runs (it needs the received `B̃`), against this
    /// rank's `a_shared` — the same operand [`ExchangePlan::post_stage`]
    /// was given, rebroadcast identically every batch.
    pub fn wait_stage<T: Copy + Send + Sync + 'static>(
        &mut self,
        rank: &mut Rank,
        grid: &Grid3D,
        pending: StagePending<T>,
        a_shared: &Arc<CscMatrix<T>>,
        r: usize,
    ) -> OperandPair<T> {
        let StagePending { a, b, s } = pending;
        match a {
            Some(pa) => {
                let a_recv = pa.wait(rank);
                let b_recv = b.wait(rank);
                (a_recv, b_recv)
            }
            None => {
                let b_recv = b.wait(rank);
                let a_recv = self.fetch_stage_a(rank, grid, s, a_shared, &b_recv, r);
                (a_recv, b_recv)
            }
        }
    }

    /// The point-to-point fetch round for stage `s`'s `Ã` operand along
    /// the process row (owner: member `s`).
    ///
    /// Receivers post their needed-column index set and reassemble the
    /// compact reply to full operand width (empty untouched columns cost
    /// nothing in the paper's `nnz·r` byte model). The owner serves the
    /// requests of every other row member in member order and uses its own
    /// local piece directly. Modeled time follows the per-side convention
    /// of the transpose exchange: each message charges `α + β·bytes` to
    /// the side that handles it, so the owner — which serves `q − 1`
    /// replies serially — is the modeled bottleneck.
    fn fetch_stage_a<T: Copy + Send + Sync + 'static>(
        &mut self,
        rank: &mut Rank,
        grid: &Grid3D,
        s: usize,
        a_shared: &Arc<CscMatrix<T>>,
        b_recv: &CscMatrix<T>,
        r: usize,
    ) -> Arc<CscMatrix<T>> {
        let row = &grid.row;
        let q = row.size();
        if q == 1 {
            return Arc::clone(a_shared);
        }
        let seq = self.fetch_seq;
        self.fetch_seq += 1;
        let req_tag = fetch_req_tag(seq);
        let rep_tag = fetch_rep_tag(seq);
        let me = row.my_index();

        if me == s {
            debug_assert_eq!(
                a_shared.ncols(),
                b_recv.nrows(),
                "stage {s}: owner's A piece and B row slice must conform \
                 (layer {}, row {}, col {})",
                grid.k,
                grid.i,
                grid.j
            );
            for i in (0..q).filter(|&i| i != s) {
                let req: FetchReq = rank.recv(row, i, req_tag);
                let rep = self.serve_request(rank, a_shared, i, req, r);
                rank.send(row, i, rep_tag, rep);
            }
            Arc::clone(a_shared)
        } else {
            let needed = needed_rows(b_recv, &mut self.ws);

            // Zero-row fast path: nothing of Ã is needed. The messages
            // still flow — the checker's send/recv pairing stays valid and
            // SPMD rounds stay aligned — but they carry no payload and
            // cost no modeled time: a real implementation with persistent
            // comm-graph knowledge (SpComm3D-style setup, amortized by the
            // session) would not exchange anything at all.
            if needed.is_empty() {
                rank.send(row, s, req_tag, FetchReq::Rows(Vec::new()));
                rank.clock_mut().record_comm(Step::FetchRequest, 0, 1);
                let rep: FetchRep<T> = rank.recv(row, s, rep_tag);
                rank.clock_mut().record_comm(Step::FetchReply, 0, 1);
                let FetchRep::Empty { nrows, ncols } = rep else {
                    unreachable!("owner must answer an empty request with Empty")
                };
                if let Some(c) = self.cache.as_mut() {
                    c.stats.empty_rounds += 1;
                }
                debug_assert_eq!(ncols as usize, b_recv.nrows());
                return Arc::new(CscMatrix::zero(nrows as usize, ncols as usize));
            }

            let key = self.cache_key(s);
            let cached_ok = key.is_some_and(|k| {
                self.tiles_mut::<T>()
                    .get(&k)
                    .is_some_and(|e| e.needed == needed)
            });
            if cached_ok {
                rank.send(row, s, req_tag, FetchReq::Unchanged);
                charge(rank, Step::FetchRequest, 0);
            } else {
                rank.send(row, s, req_tag, FetchReq::Rows(needed.clone()));
                charge(rank, Step::FetchRequest, 4 * needed.len());
            }

            let rep: FetchRep<T> = rank.recv(row, s, rep_tag);
            match rep {
                FetchRep::CacheValid => {
                    charge(rank, Step::FetchReply, 0);
                    let k = key.expect("CacheValid only answers Unchanged");
                    let (tile, saved) = {
                        let e = self.tiles_mut::<T>().get(&k).expect("hit requires a tile");
                        (Arc::clone(&e.tile), e.rep_bytes)
                    };
                    let stats = &mut self.cache.as_mut().expect("cache").stats;
                    stats.hits += 1;
                    stats.bytes_saved += saved;
                    debug_assert_eq!(tile.ncols(), b_recv.nrows());
                    spgemm_sparse::debug_validate!(
                        *tile,
                        spgemm_sparse::Sortedness::Sorted,
                        "replayed cached fetch tile (stage {s}, batch {})",
                        k.1
                    );
                    tile
                }
                FetchRep::Tile(compact, owner_ncols) => {
                    let rep_bytes = compact.modeled_bytes(r);
                    charge(rank, Step::FetchReply, rep_bytes);
                    let a = Arc::new(scatter_cols_padded(&compact, &needed, owner_ncols as usize));
                    debug_assert_eq!(
                        a.ncols(),
                        b_recv.nrows(),
                        "stage {s}: padded fetch operand must conform to B's row slice"
                    );
                    if let Some(k) = key {
                        self.tiles_mut::<T>().insert(
                            k,
                            TileEntry {
                                needed,
                                tile: Arc::clone(&a),
                                rep_bytes: rep_bytes as u64,
                            },
                        );
                        self.cache.as_mut().expect("cache").stats.misses += 1;
                    }
                    a
                }
                FetchRep::Empty { .. } => {
                    unreachable!("owner never answers a non-empty request with Empty")
                }
            }
        }
    }

    /// Owner side of one fetch round: decide the reply for `requester`'s
    /// request against this rank's `a_shared`, charging the modeled cost
    /// of both message legs to this rank's clock (per-side convention —
    /// the owner, serving `q − 1` peers serially, is the bottleneck).
    fn serve_request<T: Copy + Send + Sync + 'static>(
        &mut self,
        rank: &mut Rank,
        a_shared: &Arc<CscMatrix<T>>,
        requester: usize,
        req: FetchReq,
        r: usize,
    ) -> FetchRep<T> {
        match req {
            FetchReq::Rows(needed) if needed.is_empty() => {
                // Zero-row fast path: no extraction, no modeled time.
                rank.clock_mut().record_comm(Step::FetchRequest, 0, 1);
                rank.clock_mut().record_comm(Step::FetchReply, 0, 1);
                if let Some(c) = self.cache.as_mut() {
                    c.stats.empty_rounds += 1;
                }
                FetchRep::Empty {
                    nrows: a_shared.nrows() as u64,
                    ncols: a_shared.ncols() as u64,
                }
            }
            FetchReq::Rows(needed) => {
                charge(rank, Step::FetchRequest, 4 * needed.len());
                let compact = extract_cols_compact(a_shared, &needed);
                let rep_bytes = compact.modeled_bytes(r);
                charge(rank, Step::FetchReply, rep_bytes);
                if let Some(c) = self.cache.as_mut() {
                    if let Some(batch) = c.cur_batch {
                        let epoch = c.epoch;
                        c.owner_memo.insert(
                            (batch, requester),
                            OwnerEntry {
                                needed,
                                served_epoch: epoch,
                            },
                        );
                    }
                }
                FetchRep::Tile(compact, a_shared.ncols() as u64)
            }
            FetchReq::Unchanged => {
                charge(rank, Step::FetchRequest, 0);
                let cache = self
                    .cache
                    .as_mut()
                    .expect("Unchanged request reached an owner without a cache (SPMD violation)");
                let batch = cache
                    .cur_batch
                    .expect("Unchanged request outside a batch context (SPMD violation)");
                let key = (batch, requester);
                let entry = cache
                    .owner_memo
                    .get(&key)
                    .expect("Unchanged request before any served tile (SPMD violation)");
                let clean = entry.needed.iter().all(|c| {
                    cache
                        .col_epoch
                        .get(c)
                        .is_none_or(|&changed| changed <= entry.served_epoch)
                });
                if clean {
                    cache.stats.served_cached += 1;
                    charge(rank, Step::FetchReply, 0);
                    FetchRep::CacheValid
                } else {
                    let compact = extract_cols_compact(a_shared, &entry.needed);
                    let epoch = cache.epoch;
                    cache.owner_memo.get_mut(&key).expect("entry").served_epoch = epoch;
                    let rep_bytes = compact.modeled_bytes(r);
                    charge(rank, Step::FetchReply, rep_bytes);
                    FetchRep::Tile(compact, a_shared.ncols() as u64)
                }
            }
        }
    }
}

/// Charge one fetch message leg to this rank's clock: `α + β·bytes`
/// seconds plus the byte/message counters of `step`.
fn charge(rank: &mut Rank, step: Step, bytes: usize) {
    let cost = rank.machine().send_secs(bytes);
    rank.clock_mut().advance(step, cost);
    rank.clock_mut().record_comm(step, bytes as u64, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_simgrid::{run_ranks, Grid3D, Machine};
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::PlusTimesF64;
    use spgemm_sparse::ops::col_block;

    #[test]
    fn mode_names_and_parse_roundtrip() {
        for mode in ExchangeMode::ALL {
            assert_eq!(ExchangeMode::parse(mode.name()), Ok(mode));
        }
        assert_eq!(ExchangeMode::parse("bcast"), Ok(ExchangeMode::DenseBcast));
        assert_eq!(ExchangeMode::parse("fetch"), Ok(ExchangeMode::SparseFetch));
        assert!(ExchangeMode::parse("carrier-pigeon").is_err());
        assert_eq!(ExchangeMode::default(), ExchangeMode::DenseBcast);
    }

    /// Blocking exchange delivers identical operands in both modes (on the
    /// columns the kernel reads), and fetch traffic lands on its own steps.
    #[test]
    fn blocking_exchange_operands_agree_across_modes() {
        let n = 24usize;
        let run = |mode: ExchangeMode| {
            run_ranks(4, Machine::knl(), move |rank| {
                let grid = Grid3D::new(rank, 1);
                // Each rank owns a distinct A piece and B piece, keyed by
                // its grid coordinates so both modes see the same world.
                let a_local =
                    Arc::new(er_random::<PlusTimesF64>(n, n, 3, 100 + grid.j as u64));
                let b_local = Arc::new(col_block(
                    &er_random::<PlusTimesF64>(n, n, 2, 200 + grid.i as u64),
                    0..n,
                ));
                let mut plan = ExchangePlan::new(mode);
                let mut got = Vec::new();
                for s in 0..grid.pr {
                    let (a_recv, b_recv) = plan
                        .exchange_stage(
                            rank,
                            &grid,
                            s,
                            &a_local,
                            a_local.modeled_bytes(24),
                            &b_local,
                            b_local.modeled_bytes(24),
                            24,
                            (Step::ABcast, Step::BBcast),
                        )
                        .unwrap();
                    assert_eq!(a_recv.ncols(), b_recv.nrows());
                    // Compare only what a kernel would read: A's columns at
                    // B's occupied rows.
                    let mut ws = spgemm_sparse::subset::SubsetWorkspace::new();
                    let need = spgemm_sparse::subset::needed_rows(&b_recv, &mut ws);
                    let read = spgemm_sparse::subset::extract_cols_compact(&a_recv, &need);
                    got.push((read, b_recv.as_ref().clone()));
                }
                let fetch_bytes = rank.clock().breakdown().bytes_of(Step::FetchReply);
                (got, fetch_bytes)
            })
        };
        let dense = run(ExchangeMode::DenseBcast);
        let sparse = run(ExchangeMode::SparseFetch);
        for (rk, ((dg, dfb), (sg, sfb))) in dense.iter().zip(sparse.iter()).enumerate() {
            assert_eq!(*dfb, 0, "rank {rk}: dense mode must not fetch");
            let _ = sfb;
            for (s, ((da, db), (sa, sb))) in dg.iter().zip(sg.iter()).enumerate() {
                assert!(da.eq_modulo_order(sa), "rank {rk} stage {s}: A operand");
                assert!(db.eq_modulo_order(sb), "rank {rk} stage {s}: B operand");
            }
        }
        // At least the off-owner ranks must have fetched something.
        assert!(sparse.iter().any(|(_, fb)| *fb > 0), "no fetch traffic recorded");
    }

    /// Regression (empty-fetch round trip): a receiver whose `needed_rows`
    /// set is empty must not pay the α request/reply round — the messages
    /// still flow (checker pairing stays valid) but carry no payload and
    /// cost no modeled time, and the owner never extracts a compact tile.
    #[test]
    fn empty_fetch_round_costs_nothing() {
        let n = 16usize;
        let results = run_ranks(4, Machine::knl(), move |rank| {
            let grid = Grid3D::new(rank, 1);
            let a_local = Arc::new(er_random::<PlusTimesF64>(n, n, 3, 500 + grid.j as u64));
            // An all-zero B piece: every receiver derives an empty needed set.
            let b_local = Arc::new(CscMatrix::<f64>::zero(n, n));
            let mut plan = ExchangePlan::new(ExchangeMode::SparseFetch);
            for s in 0..grid.pr {
                let (a_recv, b_recv) = plan
                    .exchange_stage(
                        rank,
                        &grid,
                        s,
                        &a_local,
                        a_local.modeled_bytes(24),
                        &b_local,
                        0,
                        24,
                        (Step::ABcast, Step::BBcast),
                    )
                    .unwrap();
                assert_eq!(a_recv.ncols(), b_recv.nrows());
                if grid.row.my_index() != s {
                    assert_eq!(a_recv.nnz(), 0, "receiver pads an all-zero operand");
                }
            }
            let bd = *rank.clock().breakdown();
            (
                bd.secs_of(Step::FetchRequest) + bd.secs_of(Step::FetchReply),
                bd.bytes_of(Step::FetchRequest) + bd.bytes_of(Step::FetchReply),
                bd.msgs[Step::FetchRequest as usize] + bd.msgs[Step::FetchReply as usize],
            )
        });
        for (rk, (secs, bytes, msgs)) in results.iter().enumerate() {
            assert_eq!(*secs, 0.0, "rank {rk}: empty rounds must cost no modeled time");
            assert_eq!(*bytes, 0, "rank {rk}: empty rounds must move no modeled bytes");
            assert!(*msgs > 0, "rank {rk}: the send/recv pairing must still happen");
        }
    }

    /// The cross-iteration cache: identical structure across rounds turns
    /// the second round's fetch into an α-only `Unchanged`/`CacheValid`
    /// exchange; dirtying the operand columns forces a full re-fetch; the
    /// delivered operands are bit-identical throughout.
    #[test]
    fn fetch_cache_hits_then_invalidates() {
        let n = 16usize;
        let results = run_ranks(4, Machine::knl(), move |rank| {
            let grid = Grid3D::new(rank, 1);
            let a_local = Arc::new(er_random::<PlusTimesF64>(n, n, 4, 600 + grid.j as u64));
            let b_local = Arc::new(er_random::<PlusTimesF64>(n, n, 3, 700 + grid.i as u64));
            let ab = a_local.modeled_bytes(24);
            let bb = b_local.modeled_bytes(24);
            let mut plan = ExchangePlan::new(ExchangeMode::SparseFetch);
            plan.enable_cache();
            plan.begin_batch(0);
            let run_iter = |plan: &mut ExchangePlan, rank: &mut Rank| {
                let mut ops = Vec::new();
                for s in 0..grid.pr {
                    let (a, _) = plan
                        .exchange_stage(
                            rank,
                            &grid,
                            s,
                            &a_local,
                            ab,
                            &b_local,
                            bb,
                            24,
                            (Step::ABcast, Step::BBcast),
                        )
                        .unwrap();
                    ops.push(a);
                }
                ops
            };
            let it1 = run_iter(&mut plan, rank);
            let s1 = plan.cache_stats();
            plan.note_dirty_cols(&[]); // iteration boundary, nothing changed
            let it2 = run_iter(&mut plan, rank);
            let s2 = plan.cache_stats();
            let all: Vec<u32> = (0..a_local.ncols() as u32).collect();
            plan.note_dirty_cols(&all); // everything changed
            let it3 = run_iter(&mut plan, rank);
            let s3 = plan.cache_stats();
            for ((x, y), z) in it1.iter().zip(&it2).zip(&it3) {
                assert!(x.eq_modulo_order(y), "warm operand diverged");
                assert!(x.eq_modulo_order(z), "re-fetched operand diverged");
            }
            (s1, s2.delta(&s1), s3.delta(&s2))
        });
        for (rk, (cold, warm, inval)) in results.iter().enumerate() {
            // Each rank is receiver for pr−1 = 1 stage and owner for 1.
            assert_eq!(cold.hits, 0, "rank {rk}: cold round cannot hit");
            assert_eq!(cold.misses, 1, "rank {rk}: cold round fetches once");
            assert_eq!(warm.hits, 1, "rank {rk}: warm round must hit: {warm:?}");
            assert_eq!(warm.served_cached, 1, "rank {rk}: owner must serve from memo");
            assert_eq!(warm.misses, 0, "rank {rk}: warm round must not re-fetch");
            assert!(warm.bytes_saved > 0, "rank {rk}: a hit saves reply bytes");
            assert_eq!(inval.hits, 0, "rank {rk}: dirtied round cannot hit");
            assert_eq!(inval.misses, 1, "rank {rk}: dirtied round re-fetches");
            assert_eq!(inval.served_cached, 0, "rank {rk}: no stale serve");
        }
    }

    /// Regression for the cache-replay validation hook: a corrupted cached
    /// tile (out-of-bounds row index injected between iterations) must be
    /// caught by `debug_validate!` the moment a `CacheValid` reply replays
    /// it, not flow silently into the multiply kernel.
    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "debug_validate! only fires in debug builds"
    )]
    #[should_panic(expected = "invariant violation in replayed cached fetch tile")]
    fn corrupted_cached_tile_is_caught_on_replay() {
        let n = 16usize;
        run_ranks(4, Machine::knl(), move |rank| {
            let grid = Grid3D::new(rank, 1);
            let a_local = Arc::new(er_random::<PlusTimesF64>(n, n, 4, 600 + grid.j as u64));
            let b_local = Arc::new(er_random::<PlusTimesF64>(n, n, 3, 700 + grid.i as u64));
            let ab = a_local.modeled_bytes(24);
            let bb = b_local.modeled_bytes(24);
            let mut plan = ExchangePlan::new(ExchangeMode::SparseFetch);
            plan.enable_cache();
            plan.begin_batch(0);
            let run_iter = |plan: &mut ExchangePlan, rank: &mut Rank| {
                for s in 0..grid.pr {
                    let _ = plan
                        .exchange_stage(
                            rank,
                            &grid,
                            s,
                            &a_local,
                            ab,
                            &b_local,
                            bb,
                            24,
                            (Step::ABcast, Step::BBcast),
                        )
                        .unwrap();
                }
            };
            run_iter(&mut plan, rank);
            // Corrupt every cached tile in place: same shape and needed
            // set (so the Unchanged/CacheValid protocol still engages),
            // but one row index pushed out of bounds.
            for entry in plan.tiles_mut::<f64>().values_mut() {
                let (nrows, ncols, colptr, mut rowidx, vals, sorted) =
                    entry.tile.as_ref().clone().into_parts();
                assert!(!rowidx.is_empty(), "test needs a non-empty cached tile");
                rowidx[0] = nrows as u32 + 7;
                entry.tile =
                    Arc::new(CscMatrix::from_parts_raw(nrows, ncols, colptr, rowidx, vals, sorted));
            }
            plan.note_dirty_cols(&[]); // iteration boundary, nothing changed
            run_iter(&mut plan, rank); // CacheValid replay must panic here
        });
    }

    /// The pipelined post/wait pair matches the blocking exchange in both
    /// modes and keeps the checker quiet (unique tags per round).
    #[test]
    fn pipelined_exchange_matches_blocking() {
        let n = 20usize;
        for mode in ExchangeMode::ALL {
            let results = run_ranks(4, Machine::knl(), move |rank| {
                let grid = Grid3D::new(rank, 1);
                let a_local =
                    Arc::new(er_random::<PlusTimesF64>(n, n, 3, 300 + grid.j as u64));
                let b_local =
                    Arc::new(er_random::<PlusTimesF64>(n, n, 2, 400 + grid.i as u64));
                let ab = a_local.modeled_bytes(24);
                let bb = b_local.modeled_bytes(24);

                let mut blocking = ExchangePlan::new(mode);
                let mut pipelined = ExchangePlan::new(mode);
                let mut out = Vec::new();
                let mut pending = pipelined.post_stage(rank, &grid, 0, &a_local, ab, &b_local, bb);
                for s in 0..grid.pr {
                    let (pa, pb) = pipelined.wait_stage(rank, &grid, pending, &a_local, 24);
                    pending = pipelined.post_stage(
                        rank,
                        &grid,
                        (s + 1) % grid.pr,
                        &a_local,
                        ab,
                        &b_local,
                        bb,
                    );
                    let (ba, bbv) = blocking
                        .exchange_stage(
                            rank,
                            &grid,
                            s,
                            &a_local,
                            ab,
                            &b_local,
                            bb,
                            24,
                            (Step::ABcast, Step::BBcast),
                        )
                        .unwrap();
                    out.push(
                        pa.eq_modulo_order(&ba) && pb.eq_modulo_order(&bbv),
                    );
                }
                // Drain the extra posted stage so no handle leaks.
                let _ = pipelined.wait_stage(rank, &grid, pending, &a_local, 24);
                out
            });
            for (rk, stages) in results.iter().enumerate() {
                assert!(
                    stages.iter().all(|&ok| ok),
                    "rank {rk} mode {mode:?}: pipelined operands diverge"
                );
            }
        }
    }
}
