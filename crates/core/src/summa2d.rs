//! 2D sparse SUMMA (Alg. 1), as executed inside one layer of the 3D grid.
//!
//! Proceeds in `pr` stages. At stage `s`, process `(i, s, k)` broadcasts
//! its local `Ã` along the process row and `(s, j, k)` broadcasts its
//! local `B̃` (restricted to the current batch's columns) along the
//! process column; every process multiplies the received pieces and
//! stores the partial product. After all stages the partials are merged
//! (Merge-Layer). With `l = 1` this *is* the complete 2D algorithm; with
//! `l > 1` it produces the layer's intermediate `D̃⁽ᵏ⁾` for
//! [`crate::summa3d`] to reduce across fibers.

use crate::dist::DistMatrix;
use crate::exchange::ExchangePlan;
use crate::kernels::LocalKernels;
use crate::memory::MemTracker;
use crate::Result;
use spgemm_simgrid::{Grid3D, Rank, Step};
use spgemm_sparse::{CscMatrix, Semiring};
use std::sync::Arc;

pub use crate::exchange::StagePending;

/// Whether stage broadcasts run blocking or pipelined (the overlap
/// tentpole). Blocking is the default: it reproduces the paper's strictly
/// phased execution, and every existing figure and modeled-time test is
/// built on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverlapMode {
    /// Alg. 1 as published: each stage's A/B broadcasts complete before
    /// its Local-Multiply starts.
    #[default]
    Blocking,
    /// Double-buffered pipeline: stage `s+1`'s broadcasts are posted
    /// (nonblocking) before stage `s`'s Local-Multiply, so the multiply
    /// hides their modeled cost; across batches, the next batch's stage-0
    /// broadcasts are posted before the current batch's merge phases.
    Overlapped,
}

/// A pipeline carry: stage-0 exchange already posted for the *next*
/// batch (absent in blocking mode and after the final batch).
pub type StageCarry<T> = Option<StagePending<T>>;

/// Stage-0 inputs of the *next* batch, staged one batch ahead so the
/// current batch's last SUMMA stage can post their broadcasts (the
/// cross-batch leg of the pipeline: Merge-Layer, AllToAll-Fiber and
/// Merge-Fiber of the current batch then hide them).
pub struct NextStage<T> {
    /// The rank's `Ã` (rebroadcast every batch).
    pub a_shared: Arc<CscMatrix<T>>,
    /// Modeled size of `a_shared`.
    pub a_bytes: usize,
    /// The next batch's extracted B piece.
    pub b_piece: Arc<CscMatrix<T>>,
    /// Modeled size of `b_piece`.
    pub b_bytes: usize,
}

impl<T> std::fmt::Debug for NextStage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NextStage")
            .field("a_bytes", &self.a_bytes)
            .field("b_bytes", &self.b_bytes)
            .finish_non_exhaustive()
    }
}

/// When Merge-Layer runs relative to the SUMMA stages (Sec. III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeSchedule {
    /// The paper's choice: keep every stage's partial and merge once after
    /// all stages — cheapest merge work (each element is merged once) at
    /// the cost of holding all unmerged partials simultaneously.
    #[default]
    AfterAllStages,
    /// Merge each stage's partial into a running accumulator as it is
    /// produced — lower peak memory (at most two partials resident), but
    /// accumulated elements are re-merged at every subsequent stage, which
    /// "is computationally more expensive in the worst case" \[34\].
    Incremental,
}

/// One layer's SUMMA2D: returns the merged layer product `D̃⁽ᵏ⁾`
/// (rows: `A`'s row block `i`; columns: the batch's local columns).
///
/// `a_local` must be shared as an `Arc` by the caller so repeated batches
/// don't re-clone it. `b_batch` is this rank's B piece for the current
/// batch. The modeled clock of `rank` is advanced per step; `mem` tracks
/// the modeled footprint of the intermediates. `kernels` is the rank's
/// long-lived kernel engine: its workspace is reused across every stage,
/// batch, and layer this rank executes, so steady-state stages run
/// allocation-free (the tentpole of the workspace-reuse PR). `plan` is
/// the rank's exchange layer ([`crate::exchange`]): it decides whether
/// stage operands move by dense broadcast or sparsity-aware fetch.
#[allow(clippy::too_many_arguments)] // SPMD plumbing: grid + matrices + policies
pub fn summa2d_layer<S: Semiring>(
    rank: &mut Rank,
    grid: &Grid3D,
    a: &DistMatrix<S::T>,
    a_shared: &Arc<CscMatrix<S::T>>,
    b_batch: &Arc<CscMatrix<S::T>>,
    kernels: &mut LocalKernels<S::T>,
    schedule: MergeSchedule,
    r: usize,
    mem: &mut MemTracker,
    plan: &mut ExchangePlan,
) -> Result<CscMatrix<S::T>> {
    let stages = grid.pr;
    let mut acc = StageAccumulator::new(schedule, stages);

    for s in 0..stages {
        // Stage exchange: A along the process row (root: column s), B
        // along the process column (root: row s) — by broadcast or fetch,
        // per the plan's mode.
        let a_bytes = a.local.modeled_bytes(r);
        let b_bytes = b_batch.modeled_bytes(r);
        let (a_recv, b_recv) = plan.exchange_stage(
            rank,
            grid,
            s,
            a_shared,
            a_bytes,
            b_batch,
            b_bytes,
            r,
            (Step::ABcast, Step::BBcast),
        )?;

        debug_assert_eq!(
            a_recv.ncols(),
            b_recv.nrows(),
            "stage {s}: A column slice and B row slice must conform \
             (layer {}, row {}, col {})",
            grid.k,
            grid.i,
            grid.j
        );
        spgemm_sparse::debug_validate!(
            *a_recv,
            spgemm_sparse::Sortedness::Sorted,
            "stage {s} A-Bcast operand (layer {}, row {}, col {})",
            grid.k,
            grid.i,
            grid.j
        );
        spgemm_sparse::debug_validate!(
            *b_recv,
            spgemm_sparse::Sortedness::Sorted,
            "stage {s} B-Bcast operand (layer {}, row {}, col {})",
            grid.k,
            grid.i,
            grid.j
        );

        // Local-Multiply, executed and clock-charged by the backend.
        let (partial, _stats) = kernels.run_local_multiply::<S>(rank, &a_recv, &b_recv)?;
        acc.push::<S>(rank, kernels, partial, r, mem)?;
    }

    acc.finish::<S>(rank, kernels, a.local.nrows(), b_batch.ncols(), r, mem)
}

/// Pipelined twin of [`summa2d_layer`] ([`OverlapMode::Overlapped`]).
///
/// Stage `s+1`'s broadcasts are posted before stage `s`'s Local-Multiply,
/// so the multiply hides their modeled cost. Stage 0 is either waited from
/// `carry` (posted by the previous batch's last stage) or posted on entry;
/// when `next` is given, the last stage posts the *next* batch's stage-0
/// broadcasts and returns the handle for the caller to carry forward.
// SPMD plumbing (grid + matrices + policies); the paired-with-carry return
// is what the pipeline protocol is.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn summa2d_layer_pipelined<S: Semiring>(
    rank: &mut Rank,
    grid: &Grid3D,
    a: &DistMatrix<S::T>,
    a_shared: &Arc<CscMatrix<S::T>>,
    b_batch: &Arc<CscMatrix<S::T>>,
    kernels: &mut LocalKernels<S::T>,
    schedule: MergeSchedule,
    r: usize,
    mem: &mut MemTracker,
    plan: &mut ExchangePlan,
    carry: StageCarry<S::T>,
    next: Option<&NextStage<S::T>>,
) -> Result<(CscMatrix<S::T>, StageCarry<S::T>)> {
    let stages = grid.pr;
    let a_bytes = a.local.modeled_bytes(r);
    let b_bytes = b_batch.modeled_bytes(r);
    let mut acc = StageAccumulator::new(schedule, stages);

    let mut pending = Some(carry.unwrap_or_else(|| {
        plan.post_stage(rank, grid, 0, a_shared, a_bytes, b_batch, b_bytes)
    }));
    let mut next_carry = None;

    for s in 0..stages {
        let posted = pending.take().expect("stage exchange posted");
        let (a_recv, b_recv) = plan.wait_stage(rank, grid, posted, a_shared, r);

        // Double buffering: post the following stage (or the next batch's
        // stage 0) *before* multiplying, so the multiply hides it.
        if s + 1 < stages {
            pending =
                Some(plan.post_stage(rank, grid, s + 1, a_shared, a_bytes, b_batch, b_bytes));
        } else if let Some(n) = next {
            next_carry = Some(plan.post_stage(
                rank,
                grid,
                0,
                &n.a_shared,
                n.a_bytes,
                &n.b_piece,
                n.b_bytes,
            ));
        }

        debug_assert_eq!(
            a_recv.ncols(),
            b_recv.nrows(),
            "stage {s}: A column slice and B row slice must conform \
             (layer {}, row {}, col {})",
            grid.k,
            grid.i,
            grid.j
        );
        spgemm_sparse::debug_validate!(
            *a_recv,
            spgemm_sparse::Sortedness::Sorted,
            "stage {s} pipelined A-Bcast operand (layer {}, row {}, col {})",
            grid.k,
            grid.i,
            grid.j
        );
        spgemm_sparse::debug_validate!(
            *b_recv,
            spgemm_sparse::Sortedness::Sorted,
            "stage {s} pipelined B-Bcast operand (layer {}, row {}, col {})",
            grid.k,
            grid.i,
            grid.j
        );

        let (partial, _stats) = kernels.run_local_multiply::<S>(rank, &a_recv, &b_recv)?;
        acc.push::<S>(rank, kernels, partial, r, mem)?;
    }

    let merged = acc.finish::<S>(rank, kernels, a.local.nrows(), b_batch.ncols(), r, mem)?;
    Ok((merged, next_carry))
}

/// Per-stage partial-product accumulation shared by the blocking and
/// pipelined layers (the [`MergeSchedule`] bookkeeping of Sec. III-A).
struct StageAccumulator<T: Copy> {
    schedule: MergeSchedule,
    partials: Vec<CscMatrix<T>>,
    partial_bytes: usize,
    running: Option<CscMatrix<T>>,
}

impl<T: Copy> StageAccumulator<T> {
    fn new(schedule: MergeSchedule, stages: usize) -> Self {
        StageAccumulator {
            schedule,
            partials: Vec::with_capacity(stages),
            partial_bytes: 0,
            running: None,
        }
    }

    fn push<S: Semiring<T = T>>(
        &mut self,
        rank: &mut Rank,
        kernels: &mut LocalKernels<T>,
        partial: CscMatrix<T>,
        r: usize,
        mem: &mut MemTracker,
    ) -> Result<()> {
        match self.schedule {
            MergeSchedule::AfterAllStages => {
                // Store the stage's partial for one merge at the end
                // (merging incrementally is costlier in the worst case;
                // the paper merges once after all stages — Sec. III-A).
                self.partial_bytes += partial.modeled_bytes(r);
                mem.alloc(partial.modeled_bytes(r));
                self.partials.push(partial);
            }
            MergeSchedule::Incremental => {
                mem.alloc(partial.modeled_bytes(r));
                match self.running.take() {
                    None => self.running = Some(partial),
                    Some(acc) => {
                        let in_bytes = acc.modeled_bytes(r) + partial.modeled_bytes(r);
                        let (merged, _mstats) =
                            kernels.run_merge_layer::<S>(rank, &[acc, partial])?;
                        mem.free(in_bytes);
                        mem.alloc(merged.modeled_bytes(r));
                        self.running = Some(merged);
                    }
                }
            }
        }
        Ok(())
    }

    fn finish<S: Semiring<T = T>>(
        self,
        rank: &mut Rank,
        kernels: &mut LocalKernels<T>,
        nrows: usize,
        ncols: usize,
        r: usize,
        mem: &mut MemTracker,
    ) -> Result<CscMatrix<T>> {
        match self.schedule {
            MergeSchedule::AfterAllStages => {
                // Merge-Layer: combine the per-stage partials. Footprint model
                // follows Alg. 3's accounting: the budgeted high-water mark is
                // the *unmerged* residency (inputs + stage partials); merging
                // is modeled as streaming (inputs released column-by-column as
                // they are consumed), so the merged output replaces rather
                // than stacks on the partials.
                let (merged, _stats) = kernels.run_merge_layer::<S>(rank, &self.partials)?;
                mem.free(self.partial_bytes);
                mem.alloc(merged.modeled_bytes(r));
                Ok(merged)
            }
            MergeSchedule::Incremental => Ok(self
                .running
                .unwrap_or_else(|| CscMatrix::zero(nrows, ncols))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{gather_pieces, scatter, CPiece, DistKind};
    use crate::kernels::KernelStrategy;
    use spgemm_simgrid::{run_ranks, Machine};
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::{PlusTimesF64, PlusTimesU64};
    use spgemm_sparse::spgemm::spgemm_spa;

    /// Run pure 2D SUMMA (l = 1) and gather the product on rank 0.
    fn run_summa2d<S: Semiring>(
        p: usize,
        a_global: CscMatrix<S::T>,
        b_global: CscMatrix<S::T>,
        strategy: KernelStrategy,
    ) -> CscMatrix<S::T>
    where
        S::T: Send + Sync,
    {
        run_summa2d_sched::<S>(p, a_global, b_global, strategy, MergeSchedule::AfterAllStages)
    }

    fn run_summa2d_sched<S: Semiring>(
        p: usize,
        a_global: CscMatrix<S::T>,
        b_global: CscMatrix<S::T>,
        strategy: KernelStrategy,
        schedule: MergeSchedule,
    ) -> CscMatrix<S::T>
    where
        S::T: Send + Sync,
    {
        let (m, n) = (a_global.nrows(), b_global.ncols());
        let results = run_ranks(p, Machine::knl(), move |rank| {
            let grid = Grid3D::new(rank, 1);
            let a = scatter(
                rank,
                &grid,
                DistKind::AStyle,
                (rank.rank() == 0).then(|| Arc::new(a_global.clone())),
            );
            let b = scatter(
                rank,
                &grid,
                DistKind::BStyle,
                (rank.rank() == 0).then(|| Arc::new(b_global.clone())),
            );
            let a_shared = Arc::new(a.local.clone());
            #[allow(clippy::redundant_clone)] // `b` is used again below
            let b_shared = Arc::new(b.local.clone());
            let mut mem = MemTracker::new();
            let mut kernels = LocalKernels::new(strategy);
            let mut plan = ExchangePlan::default();
            let mut d = summa2d_layer::<S>(
                rank, &grid, &a, &a_shared, &b_shared, &mut kernels, schedule, 24, &mut mem,
                &mut plan,
            )
            .expect("summa2d failed");
            d.sort_columns();
            let piece = CPiece {
                local: d,
                row_offset: a.row_range(&grid).start,
                global_cols: b.col_range(&grid).map(|c| c as u32).collect(),
            };
            gather_pieces(rank, &grid.world, vec![piece], m, n)
        });
        results.into_iter().next().unwrap().expect("root gathers C")
    }

    #[test]
    fn summa2d_matches_serial_u64() {
        let a = er_random::<PlusTimesU64>(48, 48, 5, 1).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(48, 48, 5, 2).map(|_| 1u64);
        let (reference, _) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        for p in [1usize, 4, 9, 16] {
            for strat in [KernelStrategy::New, KernelStrategy::Previous] {
                let c = run_summa2d::<PlusTimesU64>(p, a.clone(), b.clone(), strat);
                assert!(
                    c.eq_modulo_order(&reference),
                    "p={p} strategy={}",
                    strat.name()
                );
            }
        }
    }

    #[test]
    fn summa2d_rectangular_and_awkward_sizes() {
        // Dimensions not divisible by the grid side.
        let a = er_random::<PlusTimesU64>(37, 23, 4, 3).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(23, 31, 4, 4).map(|_| 1u64);
        let (reference, _) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        let c = run_summa2d::<PlusTimesU64>(9, a, b, KernelStrategy::New);
        assert!(c.eq_modulo_order(&reference));
    }

    #[test]
    fn summa2d_float_matches_serial() {
        let a = er_random::<PlusTimesF64>(40, 40, 4, 5);
        let b = er_random::<PlusTimesF64>(40, 40, 4, 6);
        let (reference, _) = spgemm_spa::<PlusTimesF64>(&a, &b).unwrap();
        let c = run_summa2d::<PlusTimesF64>(4, a, b, KernelStrategy::New);
        assert!(c.approx_eq(&reference, 1e-12));
    }

    #[test]
    fn incremental_merge_schedule_is_correct() {
        let a = er_random::<PlusTimesU64>(48, 48, 5, 61).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(48, 48, 5, 62).map(|_| 1u64);
        let (reference, _) = spgemm_spa::<PlusTimesU64>(&a, &b).unwrap();
        for strat in [KernelStrategy::New, KernelStrategy::Previous] {
            let c = run_summa2d_sched::<PlusTimesU64>(
                9,
                a.clone(),
                b.clone(),
                strat,
                MergeSchedule::Incremental,
            );
            assert!(c.eq_modulo_order(&reference), "strategy={}", strat.name());
        }
    }

    #[test]
    fn incremental_merge_trades_memory_for_work() {
        // The Sec. III-A trade-off: incremental merging holds at most two
        // partials (lower peak) but re-merges accumulated elements every
        // stage (more Merge-Layer work).
        let a = er_random::<PlusTimesF64>(96, 96, 8, 63);
        let run = |schedule: MergeSchedule| {
            let a = a.clone();
            let results = run_ranks(16, Machine::knl(), move |rank| {
                let grid = Grid3D::new(rank, 1);
                let da = scatter(
                    rank,
                    &grid,
                    DistKind::AStyle,
                    (rank.rank() == 0).then(|| Arc::new(a.clone())),
                );
                let db = scatter(
                    rank,
                    &grid,
                    DistKind::BStyle,
                    (rank.rank() == 0).then(|| Arc::new(a.clone())),
                );
                let a_shared = Arc::new(da.local.clone());
                #[allow(clippy::redundant_clone)] // `db` is used again below
                let b_shared = Arc::new(db.local.clone());
                let mut mem = MemTracker::new();
                let mut kernels = LocalKernels::new(KernelStrategy::New);
                summa2d_layer::<PlusTimesF64>(
                    rank,
                    &grid,
                    &da,
                    &a_shared,
                    &b_shared,
                    &mut kernels,
                    schedule,
                    24,
                    &mut mem,
                    &mut ExchangePlan::default(),
                )
                .unwrap();
                (mem.peak(), rank.clock().breakdown().secs_of(Step::MergeLayer))
            });
            let peak = results.iter().map(|&(p, _)| p).max().unwrap();
            let merge: f64 = results.iter().map(|&(_, m)| m).fold(0.0, f64::max);
            (peak, merge)
        };
        let (peak_all, merge_all) = run(MergeSchedule::AfterAllStages);
        let (peak_inc, merge_inc) = run(MergeSchedule::Incremental);
        assert!(
            peak_inc < peak_all,
            "incremental should lower the peak: {peak_inc} vs {peak_all}"
        );
        assert!(
            merge_inc > merge_all,
            "incremental should cost more merge work: {merge_inc} vs {merge_all}"
        );
    }

    #[test]
    fn summa2d_clock_accounts_all_steps() {
        let a = er_random::<PlusTimesF64>(32, 32, 4, 7);
        let b = er_random::<PlusTimesF64>(32, 32, 4, 8);
        let breakdowns = run_ranks(4, Machine::knl(), move |rank| {
            let grid = Grid3D::new(rank, 1);
            let a = scatter(
                rank,
                &grid,
                DistKind::AStyle,
                (rank.rank() == 0).then(|| Arc::new(a.clone())),
            );
            let b = scatter(
                rank,
                &grid,
                DistKind::BStyle,
                (rank.rank() == 0).then(|| Arc::new(b.clone())),
            );
            let a_shared = Arc::new(a.local.clone());
            #[allow(clippy::redundant_clone)] // `b` is used again below
            let b_shared = Arc::new(b.local.clone());
            let mut mem = MemTracker::new();
            let mut kernels = LocalKernels::new(KernelStrategy::New);
            summa2d_layer::<PlusTimesF64>(
                rank,
                &grid,
                &a,
                &a_shared,
                &b_shared,
                &mut kernels,
                MergeSchedule::AfterAllStages,
                24,
                &mut mem,
                &mut ExchangePlan::default(),
            )
            .unwrap();
            *rank.clock().breakdown()
        });
        for b in &breakdowns {
            assert!(b.secs_of(Step::ABcast) > 0.0);
            assert!(b.secs_of(Step::BBcast) > 0.0);
            assert!(b.secs_of(Step::LocalMultiply) > 0.0);
            assert!(b.secs_of(Step::MergeLayer) > 0.0);
            assert_eq!(b.secs_of(Step::AllToAllFiber), 0.0);
        }
    }
}
