//! Local kernel strategies: the *previous generation* (sorted, heap/hybrid
//! — CombBLAS SUMMA3D \[13\] with the hybrid kernel of \[25\]) versus
//! **this paper's** sort-free unsorted-hash pipeline (Sec. IV-D).
//!
//! The strategy decides three things at once, because sortedness must be
//! consistent across the pipeline: how Local-Multiply forms columns, how
//! Merge-Layer combines stage outputs, and how Merge-Fiber combines layer
//! pieces. Under `Previous` every intermediate stays sorted; under `New`
//! only the final Merge-Fiber output is sorted.

use spgemm_sparse::merge::{merge_hash_sorted, merge_hash_unsorted, merge_heap};
use spgemm_sparse::spgemm::{spgemm_hash_unsorted, spgemm_hybrid};
use spgemm_sparse::{CscMatrix, Semiring, WorkStats};

/// Which local-kernel generation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelStrategy {
    /// Prior work \[13, 25\]: hybrid (hash-or-heap) sorted SpGEMM,
    /// heap-based merging, everything kept sorted.
    Previous,
    /// This paper: unsorted-hash SpGEMM and hash merging; only the final
    /// Merge-Fiber output is sorted.
    #[default]
    New,
}

impl KernelStrategy {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelStrategy::Previous => "previous(heap/hybrid,sorted)",
            KernelStrategy::New => "new(unsorted-hash)",
        }
    }

    /// Local-Multiply: one SUMMA stage's `Ã_recv · B̃_recv`.
    pub fn local_multiply<S: Semiring>(
        self,
        a: &CscMatrix<S::T>,
        b: &CscMatrix<S::T>,
    ) -> spgemm_sparse::Result<(CscMatrix<S::T>, WorkStats)> {
        match self {
            KernelStrategy::Previous => spgemm_hybrid::<S>(a, b),
            KernelStrategy::New => spgemm_hash_unsorted::<S>(a, b),
        }
    }

    /// Merge-Layer: combine the per-stage partial products within a layer.
    pub fn merge_layer<S: Semiring>(
        self,
        parts: &[CscMatrix<S::T>],
    ) -> spgemm_sparse::Result<(CscMatrix<S::T>, WorkStats)> {
        match self {
            KernelStrategy::Previous => merge_heap::<S>(parts),
            KernelStrategy::New => merge_hash_unsorted::<S>(parts),
        }
    }

    /// Merge-Fiber: combine the per-layer pieces. Both strategies produce
    /// sorted output here — the final matrix is conventionally sorted
    /// (Sec. IV-D keeps exactly this one result sorted).
    pub fn merge_fiber<S: Semiring>(
        self,
        parts: &[CscMatrix<S::T>],
    ) -> spgemm_sparse::Result<(CscMatrix<S::T>, WorkStats)> {
        match self {
            KernelStrategy::Previous => merge_heap::<S>(parts),
            KernelStrategy::New => merge_hash_sorted::<S>(parts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::PlusTimesU64;

    #[test]
    fn strategies_agree_on_products() {
        let a = er_random::<PlusTimesU64>(50, 50, 5, 1).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(50, 50, 5, 2).map(|_| 1u64);
        let (c_prev, _) = KernelStrategy::Previous.local_multiply::<PlusTimesU64>(&a, &b).unwrap();
        let (c_new, _) = KernelStrategy::New.local_multiply::<PlusTimesU64>(&a, &b).unwrap();
        assert!(c_prev.eq_modulo_order(&c_new));
        assert!(c_prev.is_sorted(), "previous keeps intermediates sorted");
    }

    #[test]
    fn strategies_agree_on_merges() {
        let parts: Vec<_> = (0..4)
            .map(|s| er_random::<PlusTimesU64>(40, 20, 3, 10 + s).map(|_| 1u64))
            .collect();
        let (m_prev, _) = KernelStrategy::Previous.merge_layer::<PlusTimesU64>(&parts).unwrap();
        let (m_new, _) = KernelStrategy::New.merge_layer::<PlusTimesU64>(&parts).unwrap();
        assert!(m_prev.eq_modulo_order(&m_new));
        let (f_prev, _) = KernelStrategy::Previous.merge_fiber::<PlusTimesU64>(&parts).unwrap();
        let (f_new, _) = KernelStrategy::New.merge_fiber::<PlusTimesU64>(&parts).unwrap();
        assert!(f_prev.eq_modulo_order(&f_new));
        assert!(f_new.is_sorted(), "final merge-fiber output must be sorted");
        assert!(f_prev.is_sorted());
    }

    #[test]
    fn new_pipeline_consumes_its_own_unsorted_output() {
        // Merge-layer of unsorted local products must work (heap merge
        // would reject them) — the crux of the sort-free pipeline.
        let a = er_random::<PlusTimesU64>(60, 60, 6, 3).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(60, 60, 6, 4).map(|_| 1u64);
        let (c1, _) = KernelStrategy::New.local_multiply::<PlusTimesU64>(&a, &b).unwrap();
        let (c2, _) = KernelStrategy::New.local_multiply::<PlusTimesU64>(&b, &a).unwrap();
        let (merged, _) = KernelStrategy::New.merge_layer::<PlusTimesU64>(&[c1, c2]).unwrap();
        assert!(merged.nnz() > 0);
    }
}
