//! Local kernel strategies: the *previous generation* (sorted, heap/hybrid
//! — CombBLAS SUMMA3D \[13\] with the hybrid kernel of \[25\]) versus
//! **this paper's** sort-free unsorted-hash pipeline (Sec. IV-D).
//!
//! The strategy decides three things at once, because sortedness must be
//! consistent across the pipeline: how Local-Multiply forms columns, how
//! Merge-Layer combines stage outputs, and how Merge-Fiber combines layer
//! pieces. Under `Previous` every intermediate stays sorted; under `New`
//! only the final Merge-Fiber output is sorted.

use crate::backend::{Backend, BackendKind};
use spgemm_simgrid::{Rank, Step};
use spgemm_sparse::merge::{
    merge_hash_sorted, merge_hash_sorted_with_workspace, merge_hash_unsorted,
    merge_hash_unsorted_with_workspace, merge_heap, merge_heap_with_workspace,
};
use spgemm_sparse::par::{
    par_merge_hash_sorted, par_merge_hash_unsorted, par_merge_heap, par_spgemm_hash_unsorted,
    par_spgemm_hybrid, par_symbolic_col_counts, RangeBalance,
};
use spgemm_sparse::spgemm::{
    spgemm_hash_unsorted, spgemm_hash_unsorted_with_workspace, spgemm_hybrid,
    spgemm_hybrid_with_workspace, symbolic_col_counts_with_workspace,
};
use spgemm_sparse::{CscMatrix, Semiring, Sortedness, SpGemmWorkspace, WorkStats};
use std::time::Instant;

/// Which local-kernel generation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelStrategy {
    /// Prior work \[13, 25\]: hybrid (hash-or-heap) sorted SpGEMM,
    /// heap-based merging, everything kept sorted.
    Previous,
    /// This paper: unsorted-hash SpGEMM and hash merging; only the final
    /// Merge-Fiber output is sorted.
    #[default]
    New,
}

impl KernelStrategy {
    /// Human-readable name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelStrategy::Previous => "previous(heap/hybrid,sorted)",
            KernelStrategy::New => "new(unsorted-hash)",
        }
    }

    /// The column-order contract of this generation's *intermediates*
    /// (Local-Multiply and Merge-Layer outputs). `Previous` keeps
    /// everything sorted; `New` defers sorting to Merge-Fiber (Sec. IV-D).
    pub fn intermediate_sortedness(self) -> Sortedness {
        match self {
            KernelStrategy::Previous => Sortedness::Sorted,
            KernelStrategy::New => Sortedness::Unsorted,
        }
    }

    /// Local-Multiply: one SUMMA stage's `Ã_recv · B̃_recv`.
    pub fn local_multiply<S: Semiring>(
        self,
        a: &CscMatrix<S::T>,
        b: &CscMatrix<S::T>,
    ) -> spgemm_sparse::Result<(CscMatrix<S::T>, WorkStats)> {
        match self {
            KernelStrategy::Previous => spgemm_hybrid::<S>(a, b),
            KernelStrategy::New => spgemm_hash_unsorted::<S>(a, b),
        }
    }

    /// Merge-Layer: combine the per-stage partial products within a layer.
    pub fn merge_layer<S: Semiring>(
        self,
        parts: &[CscMatrix<S::T>],
    ) -> spgemm_sparse::Result<(CscMatrix<S::T>, WorkStats)> {
        match self {
            KernelStrategy::Previous => merge_heap::<S>(parts),
            KernelStrategy::New => merge_hash_unsorted::<S>(parts),
        }
    }

    /// Merge-Fiber: combine the per-layer pieces. Both strategies produce
    /// sorted output here — the final matrix is conventionally sorted
    /// (Sec. IV-D keeps exactly this one result sorted).
    pub fn merge_fiber<S: Semiring>(
        self,
        parts: &[CscMatrix<S::T>],
    ) -> spgemm_sparse::Result<(CscMatrix<S::T>, WorkStats)> {
        match self {
            KernelStrategy::Previous => merge_heap::<S>(parts),
            KernelStrategy::New => merge_hash_sorted::<S>(parts),
        }
    }
}

/// A rank's local-kernel engine: the chosen [`KernelStrategy`] bound to a
/// long-lived [`SpGemmWorkspace`] so every Local-Multiply, Merge-Layer,
/// Merge-Fiber and symbolic sweep on the rank reuses one set of scratch
/// buffers across SUMMA stages and batches (allocation-free hot paths).
///
/// Also accumulates the per-rank [`WorkStats`] totals — flops, output nnz,
/// work units, and the workspace's allocation/byte counters — which the
/// harness surfaces in reports.
///
/// The engine is also bound to a [`Backend`]: under the default
/// `Simgrid` backend kernels run serially and ranks are charged modeled
/// work units; under `Native` with more than one thread the `run_*`
/// methods dispatch to the column-range parallel kernels of
/// [`spgemm_sparse::par`] — each thread owning one workspace from
/// `thread_workspaces` — and ranks are charged the measured wall-clock
/// seconds. Output is bit-identical either way.
pub struct LocalKernels<T: Copy> {
    strategy: KernelStrategy,
    backend: Box<dyn Backend>,
    workspace: SpGemmWorkspace<T>,
    /// Per-thread arenas for the parallel path; empty unless the backend
    /// runs more than one kernel thread. Each workspace is owned by
    /// exactly one thread for the duration of a kernel call (the ranges
    /// are disjoint, so no sharing, no locking).
    thread_workspaces: Vec<SpGemmWorkspace<T>>,
    totals: WorkStats,
    balance: RangeBalance,
}

impl<T: Copy> std::fmt::Debug for LocalKernels<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalKernels")
            .field("strategy", &self.strategy)
            .field("backend", &self.backend)
            .field("totals", &self.totals)
            .finish_non_exhaustive()
    }
}

impl<T: Copy> LocalKernels<T> {
    /// Fresh engine for one rank; scratch starts empty and warms up over
    /// the first stages. Runs the default modeled-clock backend.
    pub fn new(strategy: KernelStrategy) -> Self {
        Self::with_backend(strategy, BackendKind::Simgrid)
    }

    /// Fresh engine bound to an explicit backend.
    pub fn with_backend(strategy: KernelStrategy, kind: BackendKind) -> Self {
        let threads = kind.threads();
        LocalKernels {
            strategy,
            backend: kind.to_backend(),
            workspace: SpGemmWorkspace::new(),
            thread_workspaces: if threads > 1 {
                (0..threads).map(|_| SpGemmWorkspace::new()).collect()
            } else {
                Vec::new()
            },
            totals: WorkStats::default(),
            balance: RangeBalance::default(),
        }
    }

    /// The kernel generation this engine runs.
    pub fn strategy(&self) -> KernelStrategy {
        self.strategy
    }

    /// The backend configuration this engine runs under.
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Accumulated stats over every kernel invocation so far.
    pub fn totals(&self) -> WorkStats {
        self.totals
    }

    /// Accumulated per-thread load balance of the parallel kernel calls
    /// (default/empty when kernels ran serially).
    pub fn balance(&self) -> RangeBalance {
        self.balance
    }

    /// The reusable scratch (for capacity/footprint diagnostics).
    pub fn workspace(&self) -> &SpGemmWorkspace<T> {
        &self.workspace
    }

    /// True when the `run_*` methods dispatch to the parallel kernels.
    fn parallel(&self) -> bool {
        self.thread_workspaces.len() > 1
    }

    /// Local-Multiply through the shared workspace.
    pub fn local_multiply<S: Semiring<T = T>>(
        &mut self,
        a: &CscMatrix<T>,
        b: &CscMatrix<T>,
    ) -> spgemm_sparse::Result<(CscMatrix<T>, WorkStats)> {
        let (c, stats) = match self.strategy {
            KernelStrategy::Previous => {
                spgemm_hybrid_with_workspace::<S>(a, b, &mut self.workspace)?
            }
            KernelStrategy::New => {
                spgemm_hash_unsorted_with_workspace::<S>(a, b, &mut self.workspace)?
            }
        };
        spgemm_sparse::debug_validate!(
            c,
            self.strategy.intermediate_sortedness(),
            "Local-Multiply output ({})",
            self.strategy.name()
        );
        self.totals.merge(stats);
        Ok((c, stats))
    }

    /// Merge-Layer through the shared workspace.
    pub fn merge_layer<S: Semiring<T = T>>(
        &mut self,
        parts: &[CscMatrix<T>],
    ) -> spgemm_sparse::Result<(CscMatrix<T>, WorkStats)> {
        let (c, stats) = match self.strategy {
            KernelStrategy::Previous => merge_heap_with_workspace::<S>(parts, &mut self.workspace)?,
            KernelStrategy::New => {
                merge_hash_unsorted_with_workspace::<S>(parts, &mut self.workspace)?
            }
        };
        spgemm_sparse::debug_validate!(
            c,
            self.strategy.intermediate_sortedness(),
            "Merge-Layer output ({}, {} parts)",
            self.strategy.name(),
            parts.len()
        );
        self.totals.merge(stats);
        Ok((c, stats))
    }

    /// Merge-Fiber through the shared workspace (sorted output).
    pub fn merge_fiber<S: Semiring<T = T>>(
        &mut self,
        parts: &[CscMatrix<T>],
    ) -> spgemm_sparse::Result<(CscMatrix<T>, WorkStats)> {
        let (c, stats) = match self.strategy {
            KernelStrategy::Previous => merge_heap_with_workspace::<S>(parts, &mut self.workspace)?,
            KernelStrategy::New => {
                merge_hash_sorted_with_workspace::<S>(parts, &mut self.workspace)?
            }
        };
        spgemm_sparse::debug_validate!(
            c,
            Sortedness::Sorted,
            "Merge-Fiber output ({}, {} parts)",
            self.strategy.name(),
            parts.len()
        );
        self.totals.merge(stats);
        Ok((c, stats))
    }

    /// `LocalSymbolic` (Alg. 3) through the shared workspace's
    /// structure-only accumulator.
    pub fn symbolic_col_counts(
        &mut self,
        a: &CscMatrix<T>,
        b: &CscMatrix<T>,
    ) -> spgemm_sparse::Result<(Vec<u64>, WorkStats)> {
        let (counts, stats) = symbolic_col_counts_with_workspace(a, b, &mut self.workspace)?;
        self.totals.merge(stats);
        Ok((counts, stats))
    }

    /// Local-Multiply under the backend: runs the kernel (parallel when
    /// the backend has threads) and charges `rank`'s clock — modeled work
    /// units or measured seconds, per the backend.
    pub fn run_local_multiply<S: Semiring<T = T>>(
        &mut self,
        rank: &mut Rank,
        a: &CscMatrix<T>,
        b: &CscMatrix<T>,
    ) -> spgemm_sparse::Result<(CscMatrix<T>, WorkStats)> {
        let t0 = Instant::now();
        let (c, stats) = if self.parallel() {
            let (c, stats, bal) = match self.strategy {
                KernelStrategy::Previous => {
                    par_spgemm_hybrid::<S>(a, b, &mut self.thread_workspaces)?
                }
                KernelStrategy::New => {
                    par_spgemm_hash_unsorted::<S>(a, b, &mut self.thread_workspaces)?
                }
            };
            spgemm_sparse::debug_validate!(
                c,
                self.strategy.intermediate_sortedness(),
                "parallel Local-Multiply output ({})",
                self.strategy.name()
            );
            self.balance.merge(bal);
            self.totals.merge(stats);
            (c, stats)
        } else {
            self.local_multiply::<S>(a, b)?
        };
        self.backend.charge(rank, Step::LocalMultiply, &stats, t0.elapsed().as_secs_f64());
        Ok((c, stats))
    }

    /// Merge-Layer under the backend; see [`Self::run_local_multiply`].
    pub fn run_merge_layer<S: Semiring<T = T>>(
        &mut self,
        rank: &mut Rank,
        parts: &[CscMatrix<T>],
    ) -> spgemm_sparse::Result<(CscMatrix<T>, WorkStats)> {
        let t0 = Instant::now();
        let (c, stats) = if self.parallel() {
            let (c, stats, bal) = match self.strategy {
                KernelStrategy::Previous => {
                    par_merge_heap::<S>(parts, &mut self.thread_workspaces)?
                }
                KernelStrategy::New => {
                    par_merge_hash_unsorted::<S>(parts, &mut self.thread_workspaces)?
                }
            };
            spgemm_sparse::debug_validate!(
                c,
                self.strategy.intermediate_sortedness(),
                "parallel Merge-Layer output ({}, {} parts)",
                self.strategy.name(),
                parts.len()
            );
            self.balance.merge(bal);
            self.totals.merge(stats);
            (c, stats)
        } else {
            self.merge_layer::<S>(parts)?
        };
        self.backend.charge(rank, Step::MergeLayer, &stats, t0.elapsed().as_secs_f64());
        Ok((c, stats))
    }

    /// Merge-Fiber under the backend (sorted output); see
    /// [`Self::run_local_multiply`].
    pub fn run_merge_fiber<S: Semiring<T = T>>(
        &mut self,
        rank: &mut Rank,
        parts: &[CscMatrix<T>],
    ) -> spgemm_sparse::Result<(CscMatrix<T>, WorkStats)> {
        let t0 = Instant::now();
        let (c, stats) = if self.parallel() {
            let (c, stats, bal) = match self.strategy {
                KernelStrategy::Previous => {
                    par_merge_heap::<S>(parts, &mut self.thread_workspaces)?
                }
                KernelStrategy::New => {
                    par_merge_hash_sorted::<S>(parts, &mut self.thread_workspaces)?
                }
            };
            spgemm_sparse::debug_validate!(
                c,
                Sortedness::Sorted,
                "parallel Merge-Fiber output ({}, {} parts)",
                self.strategy.name(),
                parts.len()
            );
            self.balance.merge(bal);
            self.totals.merge(stats);
            (c, stats)
        } else {
            self.merge_fiber::<S>(parts)?
        };
        self.backend.charge(rank, Step::MergeFiber, &stats, t0.elapsed().as_secs_f64());
        Ok((c, stats))
    }

    /// `LocalSymbolic` under the backend, charged as symbolic compute;
    /// see [`Self::run_local_multiply`].
    pub fn run_symbolic_col_counts(
        &mut self,
        rank: &mut Rank,
        a: &CscMatrix<T>,
        b: &CscMatrix<T>,
    ) -> spgemm_sparse::Result<(Vec<u64>, WorkStats)>
    where
        T: Send + Sync,
    {
        let t0 = Instant::now();
        let (counts, stats) = if self.parallel() {
            let (counts, stats, bal) = par_symbolic_col_counts(a, b, &mut self.thread_workspaces)?;
            self.balance.merge(bal);
            self.totals.merge(stats);
            (counts, stats)
        } else {
            self.symbolic_col_counts(a, b)?
        };
        self.backend.charge(rank, Step::SymbolicComp, &stats, t0.elapsed().as_secs_f64());
        Ok((counts, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::PlusTimesU64;

    #[test]
    fn strategies_agree_on_products() {
        let a = er_random::<PlusTimesU64>(50, 50, 5, 1).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(50, 50, 5, 2).map(|_| 1u64);
        let (c_prev, _) = KernelStrategy::Previous.local_multiply::<PlusTimesU64>(&a, &b).unwrap();
        let (c_new, _) = KernelStrategy::New.local_multiply::<PlusTimesU64>(&a, &b).unwrap();
        assert!(c_prev.eq_modulo_order(&c_new));
        assert!(c_prev.is_sorted(), "previous keeps intermediates sorted");
    }

    #[test]
    fn strategies_agree_on_merges() {
        let parts: Vec<_> = (0..4)
            .map(|s| er_random::<PlusTimesU64>(40, 20, 3, 10 + s).map(|_| 1u64))
            .collect();
        let (m_prev, _) = KernelStrategy::Previous.merge_layer::<PlusTimesU64>(&parts).unwrap();
        let (m_new, _) = KernelStrategy::New.merge_layer::<PlusTimesU64>(&parts).unwrap();
        assert!(m_prev.eq_modulo_order(&m_new));
        let (f_prev, _) = KernelStrategy::Previous.merge_fiber::<PlusTimesU64>(&parts).unwrap();
        let (f_new, _) = KernelStrategy::New.merge_fiber::<PlusTimesU64>(&parts).unwrap();
        assert!(f_prev.eq_modulo_order(&f_new));
        assert!(f_new.is_sorted(), "final merge-fiber output must be sorted");
        assert!(f_prev.is_sorted());
    }

    #[test]
    fn local_kernels_match_stateless_strategy_calls() {
        // The workspace-backed engine must be bit-identical to the
        // allocating entry points, for both generations, across a reused
        // multiply → merge → multiply sequence with shape changes.
        let mut engines = [
            LocalKernels::<u64>::new(KernelStrategy::New),
            LocalKernels::<u64>::new(KernelStrategy::Previous),
        ];
        for engine in &mut engines {
            let strat = engine.strategy();
            for (n, seed) in [(50usize, 1u64), (12, 5), (70, 9)] {
                let a = er_random::<PlusTimesU64>(n, n, 5, seed).map(|_| 1u64);
                let b = er_random::<PlusTimesU64>(n, n, 5, seed + 1).map(|_| 1u64);
                let (c_ws, s_ws) = engine.local_multiply::<PlusTimesU64>(&a, &b).unwrap();
                let (c_ref, s_ref) = strat.local_multiply::<PlusTimesU64>(&a, &b).unwrap();
                assert_eq!(c_ws.colptr(), c_ref.colptr());
                assert_eq!(c_ws.rowidx(), c_ref.rowidx());
                assert_eq!(c_ws.vals(), c_ref.vals());
                assert_eq!(s_ws.flops, s_ref.flops);
                assert_eq!(s_ws.nnz_out, s_ref.nnz_out);
                let parts = [c_ws.clone(), c_ws];
                let (m_ws, _) = engine.merge_layer::<PlusTimesU64>(&parts).unwrap();
                let (m_ref, _) = strat.merge_layer::<PlusTimesU64>(&parts).unwrap();
                assert_eq!(m_ws.rowidx(), m_ref.rowidx());
                assert_eq!(m_ws.vals(), m_ref.vals());
                let (f_ws, _) = engine.merge_fiber::<PlusTimesU64>(&parts).unwrap();
                assert!(f_ws.is_sorted());
            }
        }
    }

    #[test]
    fn local_kernels_accumulate_totals_and_reuse_scratch() {
        let mut engine = LocalKernels::<u64>::new(KernelStrategy::New);
        let a = er_random::<PlusTimesU64>(60, 60, 6, 11).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(60, 60, 6, 12).map(|_| 1u64);
        engine.local_multiply::<PlusTimesU64>(&a, &b).unwrap();
        let warm_allocs = engine.totals().allocs;
        let warm_scratch = engine.workspace().scratch_bytes();
        assert!(warm_allocs > 0);
        // Same-shape repeats only pay the exact-size output copies (3
        // allocations per call), never scratch growth.
        for _ in 0..5 {
            engine.local_multiply::<PlusTimesU64>(&a, &b).unwrap();
        }
        assert_eq!(engine.totals().allocs, warm_allocs + 5 * 3);
        assert_eq!(engine.workspace().scratch_bytes(), warm_scratch);
        assert!(engine.totals().flops > 0);
        assert!(engine.totals().memcpy_bytes > 0);
    }

    #[test]
    fn new_pipeline_consumes_its_own_unsorted_output() {
        // Merge-layer of unsorted local products must work (heap merge
        // would reject them) — the crux of the sort-free pipeline.
        let a = er_random::<PlusTimesU64>(60, 60, 6, 3).map(|_| 1u64);
        let b = er_random::<PlusTimesU64>(60, 60, 6, 4).map(|_| 1u64);
        let (c1, _) = KernelStrategy::New.local_multiply::<PlusTimesU64>(&a, &b).unwrap();
        let (c2, _) = KernelStrategy::New.local_multiply::<PlusTimesU64>(&b, &a).unwrap();
        let (merged, _) = KernelStrategy::New.merge_layer::<PlusTimesU64>(&[c1, c2]).unwrap();
        assert!(merged.nnz() > 0);
    }
}
