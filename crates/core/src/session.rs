//! Cross-iteration sessions for iterative SpGEMM applications (HipMCL
//! expansion, BFS-style sweeps): a **resident distributed iterate**.
//!
//! The paper's headline application (Fig. 3) multiplies a matrix by
//! itself every iteration, prunes the product, and repeats. A naive
//! driver tears the distribution down each time — gather the iterate to
//! root, clone it, re-scatter both operands, re-run the symbolic sweep —
//! even though the iterate's *distribution* never changes. SpComm3D
//! (arXiv:2404.19638) makes the case that sparse-communication setup
//! should be paid once and amortized; [`IterSession`] applies that to
//! BatchedSUMMA3D:
//!
//! * The A-style iterate stays scattered. After each multiplication the
//!   kept (pruned) batch pieces are assembled **in place** into the next
//!   iterate's local piece — no gather-to-root round trip. This works
//!   because [`BatchingStrategy::BlockCyclic`] (and `Balanced`) keep every
//!   output piece inside its owner's A-style column sub-slice; plain
//!   `Block` batching scrambles pieces across layers and is rejected at
//!   session construction.
//! * The B-style operand is refreshed from the new iterate by a single
//!   **fiber all-to-all**: rank `(i, j, k)` cuts its A-style piece
//!   (rows `R_i`, cols `C_{j,k}`) row-wise into `l` slices and exchanges
//!   them along the fiber; concatenating the received pieces in fiber
//!   order yields exactly the B-style piece (rows `R_{i,k}`, cols `C_j`).
//!   With `l = 1` the two styles coincide and the refresh is a local copy.
//! * One [`LocalKernels`] engine and one [`ExchangePlan`] live for the
//!   whole session, so kernel workspaces stay warm and — with the fetch
//!   cache enabled — `SparseFetch` rounds memoize their `needed_rows`
//!   request sets and received tiles across iterations, invalidated only
//!   for the columns an iteration actually changed (the session diffs the
//!   old and new local iterate column by column and feeds
//!   [`ExchangePlan::note_dirty_cols`]).
//! * Under an unlimited memory budget the symbolic sweep provably always
//!   chooses `b = 1`, so the session skips it from the first iteration on
//!   (the planner amortizes the same cost; see `planner::predict`). With a
//!   real budget the sweep re-runs each iteration because the iterate's
//!   fill changes.
//!
//! Correctness contract: a session iteration is **bit-identical** to the
//! gather/re-scatter baseline — assembly plus fiber refresh reproduce the
//! scatter of the gathered iterate exactly, and cached fetch operands are
//! bit-equal to freshly fetched ones (property-tested in
//! `core/tests/iter_session.rs`).

use crate::batched::{batched_summa3d_with, BatchConfig, BatchOutput, BatchingStrategy};
use crate::dist::{gather_pieces, scatter, CPiece, DistKind, DistMatrix};
use crate::exchange::{ExchangePlan, FetchCacheStats};
use crate::kernels::LocalKernels;
use crate::{CoreError, Result};
use spgemm_simgrid::{Grid3D, Rank, Step, StepBreakdown};
use spgemm_sparse::ops::{block_range, col_concat, row_block};
use spgemm_sparse::{CscMatrix, Semiring};
use std::ops::Range;
use std::sync::Arc;

/// Per-iteration measurements of one rank of a session.
#[derive(Debug, Clone, Copy)]
pub struct SessionIterStats {
    /// Batches this iteration's multiplication ran.
    pub nbatches: usize,
    /// This rank's step breakdown for the iteration (clock delta across
    /// the whole [`IterSession::step`] call).
    pub breakdown: StepBreakdown,
    /// Fetch-cache counter deltas for the iteration.
    pub cache: FetchCacheStats,
    /// Local iterate columns the iteration changed (the invalidation set).
    pub dirty_cols: u64,
    /// Peak modeled bytes of the multiplication on this rank.
    pub peak_bytes: usize,
    /// Local nonzeros of the new iterate.
    pub local_nnz: u64,
}

/// A resident distributed iterate multiplied against itself every
/// iteration — see the module docs for the full contract.
pub struct IterSession<S: Semiring> {
    // (manual Debug below: LocalKernels carries workspaces that are noise)
    cfg: BatchConfig,
    a: DistMatrix<S::T>,
    a_shared: Arc<CscMatrix<S::T>>,
    b: DistMatrix<S::T>,
    kernels: LocalKernels<S::T>,
    plan: ExchangePlan,
    iterations: usize,
}

impl<S: Semiring> std::fmt::Debug for IterSession<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IterSession")
            .field("iterations", &self.iterations)
            .field("local_nnz", &self.a.local.nnz())
            .field("plan", &self.plan)
            .finish_non_exhaustive()
    }
}

impl<S: Semiring> IterSession<S> {
    /// Scatter the initial iterate (held by world rank 0 as `global`) and
    /// set up the per-rank resident state. `cache` turns on the
    /// cross-iteration fetch cache — meaningful under
    /// [`crate::ExchangeMode::SparseFetch`], harmless otherwise. SPMD:
    /// every rank must construct the session with the same arguments.
    pub fn new(
        rank: &mut Rank,
        grid: &Grid3D,
        global: Option<Arc<CscMatrix<S::T>>>,
        cfg: BatchConfig,
        cache: bool,
    ) -> Result<Self> {
        if cfg.batching == BatchingStrategy::Block {
            return Err(CoreError::Config(
                "IterSession needs a distribution-conformal batching strategy \
                 (BlockCyclic or Balanced); Block scrambles kept pieces across \
                 layer sub-slices"
                    .into(),
            ));
        }
        let a = scatter(rank, grid, DistKind::AStyle, global.clone());
        let b = scatter(rank, grid, DistKind::BStyle, global);
        if a.grows != a.gcols {
            return Err(CoreError::Config(format!(
                "IterSession squares its iterate; got a {}x{} matrix",
                a.grows, a.gcols
            )));
        }
        let a_shared = Arc::new(a.local.clone());
        let mut plan = ExchangePlan::new(cfg.exchange);
        if cache {
            plan.enable_cache();
        }
        Ok(IterSession {
            kernels: LocalKernels::with_backend(cfg.kernels, cfg.backend),
            cfg,
            a,
            a_shared,
            b,
            plan,
            iterations: 0,
        })
    }

    /// This rank's current A-style local piece of the iterate.
    pub fn local(&self) -> &CscMatrix<S::T> {
        &self.a.local
    }

    /// The iterate as a distributed matrix (A-style).
    pub fn iterate(&self) -> &DistMatrix<S::T> {
        &self.a
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Cumulative fetch-cache counters on this rank.
    pub fn cache_stats(&self) -> FetchCacheStats {
        self.plan.cache_stats()
    }

    /// One iteration: multiply the iterate by itself (batched), hand every
    /// batch's piece to `on_batch` (prune/transform/drop — `None` leaves
    /// those columns empty in the next iterate), assemble the kept pieces
    /// into the next resident iterate, mark the changed columns dirty in
    /// the fetch cache, and refresh the B-style operand over the fiber.
    pub fn step(
        &mut self,
        rank: &mut Rank,
        grid: &Grid3D,
        on_batch: impl FnMut(&mut Rank, BatchOutput<S::T>) -> Option<CPiece<S::T>>,
    ) -> Result<SessionIterStats> {
        let bd0 = *rank.clock().breakdown();
        let cache0 = self.plan.cache_stats();

        let mut cfg = self.cfg;
        if cfg.forced_batches.is_none()
            && cfg.budget.is_unlimited()
            && cfg.batching == BatchingStrategy::BlockCyclic
        {
            // Alg. 3 under an unlimited budget always yields b = 1: skip
            // the symbolic sweep entirely — its cost is one-time session
            // setup, not a per-iteration tax.
            cfg.forced_batches = Some(1);
        }
        let result = batched_summa3d_with::<S>(
            rank,
            grid,
            &self.a,
            &self.a_shared,
            &self.b,
            &cfg,
            &mut self.kernels,
            &mut self.plan,
            on_batch,
        )?;

        let row_range = self.a.row_range(grid);
        let col_range = self.a.col_range(grid);
        let new_local = assemble_pieces(&result.pieces, &row_range, &col_range)?;
        let dirty = dirty_cols(&self.a.local, &new_local);
        self.plan.note_dirty_cols(&dirty);
        self.a.local = new_local;
        self.a_shared = Arc::new(self.a.local.clone());
        self.refresh_b(rank, grid)?;
        self.iterations += 1;

        Ok(SessionIterStats {
            nbatches: result.nbatches,
            breakdown: rank.clock().breakdown().delta(&bd0),
            cache: self.plan.cache_stats().delta(&cache0),
            dirty_cols: dirty.len() as u64,
            peak_bytes: result.peak_bytes,
            local_nnz: self.a.local.nnz() as u64,
        })
    }

    /// Rebuild the B-style operand from the (new) A-style iterate with one
    /// all-to-all along the fiber: slice the local piece row-wise into `l`
    /// blocks, exchange, concatenate received pieces in fiber order.
    /// Charged to [`Step::Other`] like the gather/scatter it replaces —
    /// application-side data movement, not SpGEMM time.
    fn refresh_b(&mut self, rank: &mut Rank, grid: &Grid3D) -> Result<()> {
        if grid.l == 1 {
            // A-style and B-style coincide on a single layer.
            self.b.local = self.a.local.clone();
            return Ok(());
        }
        let r = self.cfg.budget.r;
        let nrows_local = self.a.local.nrows();
        let mut parts = Vec::with_capacity(grid.l);
        let mut bytes = Vec::with_capacity(grid.l);
        for k in 0..grid.l {
            let slice = row_block(&self.a.local, block_range(nrows_local, grid.l, k));
            bytes.push(slice.modeled_bytes(r));
            parts.push(slice);
        }
        let recv = rank.alltoallv(&grid.fiber, parts, &bytes, Step::Other);
        self.b.local = col_concat(&recv).map_err(CoreError::Sparse)?;
        debug_assert_eq!(self.b.local.nrows(), self.b.row_range(grid).len());
        debug_assert_eq!(self.b.local.ncols(), self.b.col_range(grid).len());
        Ok(())
    }

    /// Gather the iterate to world rank 0 (`None` elsewhere) — the one
    /// intentionally non-resident operation, for final results.
    pub fn gather(&self, rank: &mut Rank, grid: &Grid3D) -> Option<CscMatrix<S::T>> {
        let piece = CPiece {
            local: self.a.local.clone(),
            row_offset: self.a.row_range(grid).start,
            global_cols: self.a.col_range(grid).map(|c| c as u32).collect(),
        };
        gather_pieces(rank, &grid.world, vec![piece], self.a.grows, self.a.gcols)
    }
}

/// Assemble kept batch pieces into one A-style local matrix. Pieces carry
/// disjoint global columns inside `col_range` (guaranteed by the
/// conformal batching strategies); columns no piece covers are empty —
/// that is what "pruned away" means.
fn assemble_pieces<T: Copy>(
    pieces: &[CPiece<T>],
    row_range: &Range<usize>,
    col_range: &Range<usize>,
) -> Result<CscMatrix<T>> {
    let nrows_local = row_range.len();
    let ncols_local = col_range.len();
    let mut src: Vec<Option<(usize, usize)>> = vec![None; ncols_local];
    for (pi, p) in pieces.iter().enumerate() {
        if p.row_offset != row_range.start || p.local.nrows() != nrows_local {
            return Err(CoreError::Config(format!(
                "kept piece rows {}..{} do not match this rank's row block {row_range:?}",
                p.row_offset,
                p.row_offset + p.local.nrows()
            )));
        }
        for (ci, &gc) in p.global_cols.iter().enumerate() {
            let lc = (gc as usize)
                .checked_sub(col_range.start)
                .filter(|&lc| lc < ncols_local)
                .ok_or_else(|| {
                    CoreError::Config(format!(
                        "kept piece column {gc} falls outside this rank's \
                         column sub-slice {col_range:?}"
                    ))
                })?;
            if src[lc].replace((pi, ci)).is_some() {
                return Err(CoreError::Config(format!(
                    "two kept pieces both cover global column {gc}"
                )));
            }
        }
    }
    let mut colptr = Vec::with_capacity(ncols_local + 1);
    colptr.push(0usize);
    let mut rowidx: Vec<u32> = Vec::new();
    let mut vals: Vec<T> = Vec::new();
    for s in src.iter().take(ncols_local) {
        if let Some((pi, ci)) = s {
            let (rows, vs) = pieces[*pi].local.col(*ci);
            rowidx.extend_from_slice(rows);
            vals.extend_from_slice(vs);
        }
        colptr.push(rowidx.len());
    }
    let sorted = pieces.iter().all(|p| p.local.is_sorted());
    let assembled =
        CscMatrix::from_parts_unchecked(nrows_local, ncols_local, colptr, rowidx, vals, sorted);
    // The next iterate is built `from_parts_unchecked` out of column slices
    // the application handed back — a pruning callback that corrupts a kept
    // piece (out-of-bounds rows, duplicate rows, a lying sorted flag) would
    // otherwise only surface iterations later inside a kernel.
    spgemm_sparse::debug_validate!(
        assembled,
        if sorted {
            spgemm_sparse::Sortedness::Sorted
        } else {
            spgemm_sparse::Sortedness::Unsorted
        },
        "assembled next-iterate local piece ({} kept pieces, cols {:?})",
        pieces.len(),
        col_range
    );
    Ok(assembled)
}

/// Local columns on which `old` and `new` differ — the cache-invalidation
/// set. Bit-exact comparison: an unchanged column must be *identical*
/// (indices and values), which is the only safe direction for a cache.
fn dirty_cols<T: Copy + PartialEq>(old: &CscMatrix<T>, new: &CscMatrix<T>) -> Vec<u32> {
    debug_assert_eq!(old.ncols(), new.ncols());
    (0..new.ncols())
        .filter(|&j| old.col(j) != new.col(j))
        .map(|j| j as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::PlusTimesF64;

    #[test]
    fn assemble_covers_and_preserves_columns() {
        // Two pieces with interleaved columns of a 4-wide slice.
        let m = er_random::<PlusTimesF64>(6, 4, 3, 42);
        let piece = |cols: &[usize], globals: &[u32]| CPiece {
            local: spgemm_sparse::ops::extract_cols(&m, cols),
            row_offset: 10,
            global_cols: globals.to_vec(),
        };
        let p0 = piece(&[0, 2], &[20, 22]);
        let p1 = piece(&[1, 3], &[21, 23]);
        let out = assemble_pieces(&[p0, p1], &(10..16), &(20..24)).unwrap();
        assert!(out.eq_modulo_order(&m));
        // A missing piece leaves its columns empty.
        let p0 = piece(&[0, 2], &[20, 22]);
        let partial = assemble_pieces(&[p0], &(10..16), &(20..24)).unwrap();
        assert_eq!(partial.col(0), m.col(0));
        assert!(partial.col(1).0.is_empty());
    }

    #[test]
    fn assemble_rejects_foreign_and_duplicate_columns() {
        let m = er_random::<PlusTimesF64>(4, 2, 2, 7);
        let p = CPiece {
            local: m.clone(),
            row_offset: 0,
            global_cols: vec![8, 9],
        };
        assert!(assemble_pieces(std::slice::from_ref(&p), &(0..4), &(0..2)).is_err());
        let q = CPiece {
            local: m,
            row_offset: 0,
            global_cols: vec![0, 0],
        };
        assert!(assemble_pieces(&[q], &(0..4), &(0..2)).is_err());
    }

    /// Regression for the assembly validation hook: a pruning callback
    /// that hands back a corrupt kept piece (out-of-bounds row index) must
    /// be caught by `debug_validate!` at assembly time, not iterations
    /// later inside a kernel.
    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "debug_validate! only fires in debug builds"
    )]
    #[should_panic(expected = "invariant violation in assembled next-iterate local piece")]
    fn corrupt_kept_piece_is_caught_at_assembly() {
        let m = er_random::<PlusTimesF64>(4, 2, 2, 11);
        let (nrows, ncols, colptr, mut rowidx, vals, sorted) = m.into_parts();
        assert!(!rowidx.is_empty());
        // Corrupt the last entry: stays ascending within its column (so
        // the sorted fast checks pass) but is out of bounds for the
        // 4-row block — exactly what only full validation catches.
        *rowidx.last_mut().unwrap() = nrows as u32 + 3;
        let corrupt = CscMatrix::from_parts_raw(nrows, ncols, colptr, rowidx, vals, sorted);
        let p = CPiece {
            local: corrupt,
            row_offset: 0,
            global_cols: vec![0, 1],
        };
        let _ = assemble_pieces(&[p], &(0..4), &(0..2));
    }

    #[test]
    fn session_squares_iterate_across_grids() {
        use crate::exchange::ExchangeMode;
        use spgemm_simgrid::{run_ranks, Machine};
        use spgemm_sparse::spgemm::spgemm_spa;

        let m0 = er_random::<PlusTimesF64>(32, 32, 3, 1234);
        let (m2, _) = spgemm_spa::<PlusTimesF64>(&m0, &m0).unwrap();
        let (m4, _) = spgemm_spa::<PlusTimesF64>(&m2, &m2).unwrap();

        for (p, l) in [(1usize, 1usize), (4, 1), (16, 4)] {
            for mode in [ExchangeMode::DenseBcast, ExchangeMode::SparseFetch] {
                let seed = m0.clone();
                let results = run_ranks(p, Machine::knl(), move |rank| {
                    let grid = Grid3D::new(rank, l);
                    let payload = (rank.rank() == 0).then(|| Arc::new(seed.clone()));
                    let cfg = BatchConfig {
                        exchange: mode,
                        ..Default::default()
                    };
                    let mut sess =
                        IterSession::<PlusTimesF64>::new(rank, &grid, payload, cfg, true)
                            .unwrap();
                    for _ in 0..2 {
                        let stats = sess
                            .step(rank, &grid, |_r, out| Some(out.piece))
                            .unwrap();
                        // Unlimited budget on BlockCyclic: symbolic skipped,
                        // single batch.
                        assert_eq!(stats.nbatches, 1);
                    }
                    sess.gather(rank, &grid)
                });
                let got = results[0].clone().expect("root gathers");
                assert!(
                    got.approx_eq(&m4, 1e-9),
                    "session square failed at p={p} l={l} mode={mode:?}"
                );
            }
        }
    }

    #[test]
    fn dirty_cols_is_bit_exact() {
        let m = er_random::<PlusTimesF64>(8, 5, 3, 9);
        assert!(dirty_cols(&m, &m.clone()).is_empty());
        let mut changed = m.clone();
        changed.retain(|_, j, _| j != 2);
        assert_eq!(dirty_cols(&m, &changed), vec![2]);
    }
}
