//! Schedule auditor: payload-free symbolic extraction and exhaustive
//! verification of the communication schedule.
//!
//! Every collective, nonblocking post/wait, and fetch-protocol message the
//! algorithms issue is **content-independent**: broadcasts run for every
//! stage whether or not the operand is empty, a batch with zero local
//! columns still executes the full stage schedule, and the sparse-fetch
//! protocol exchanges one request and one reply per (requester, round)
//! regardless of cache state ([`crate::exchange::FetchReq::Unchanged`] and
//! [`crate::exchange::FetchRep::CacheValid`] change payload *kinds*, never
//! the message pattern). The schedule is therefore a pure function of the
//! configuration — `(p, l, batches, exchange mode, overlap mode, iteration
//! count, symbolic sweep or not)` — and can be extracted **without
//! constructing matrices or moving bytes**.
//!
//! This module does exactly that. A `SymRank`-style executor walks the
//! same control flow as [`crate::summa2d`], [`crate::summa3d`],
//! [`crate::batched`], [`crate::exchange`] and [`crate::session`], through
//! the pure seams those modules expose
//! ([`spgemm_simgrid::grid::Grid3D::for_rank_id`],
//! [`spgemm_simgrid::Comm::for_rank`],
//! [`crate::exchange::fetch_req_tag`],
//! [`crate::symbolic::alg3_batch_count`],
//! [`crate::batched::batch_local_cols`]), and records a typed
//! [`AuditEvent`] trace per rank instead of executing anything.
//!
//! On top of the traces, [`verify`] checks four property classes:
//!
//! 1. **Cross-rank schedule agreement** — every member of a communicator
//!    sees the identical sequence of collectives/posts/waits (operation,
//!    root, sequence number). A divergence is reported with a minimized
//!    event diff around the first mismatch.
//! 2. **Deadlock-freedom of the point-to-point fetch conversation** — a
//!    deterministic replay scheduler advances all ranks; sends enable
//!    matching receives, blocking collectives and waits rendezvous their
//!    members. Tag collisions, unmatched receives, orphaned sends, and
//!    stuck frontiers (cyclic waits) are violations.
//! 3. **Handle discipline** — every nonblocking post is waited, in post
//!    order per communicator.
//! 4. **Modeled peak memory** — for budget-derived batch counts, the
//!    idealized Eq. 2 footprint `r·(maxnnzA+maxnnzB) + ⌈r·maxnnzC/b⌉`
//!    must stay within `M/p` (Alg. 3 guarantees this by construction; the
//!    auditor re-checks it per configuration so a planner regression is
//!    caught as a named violation, not an OOM at scale).
//!
//! [`sweep`] enumerates the planner's full candidate grid over the
//! fig3/fig4 workload shapes and verifies every valid configuration;
//! [`AuditFault`] injects schedule bugs (a skipped wait, a wrong fetch
//! tag, …) to prove the verifier actually catches them.

use crate::exchange::{fetch_rep_tag, fetch_req_tag, ExchangeMode};
use crate::family15::{
    cola_ring, iabc_subring, iabc_team, shift_tag, AlgorithmFamily, COLOR_RING15, COLOR_TEAM15,
};
use crate::memory::R_BYTES_PER_NNZ;
use crate::summa2d::OverlapMode;
use crate::symbolic::alg3_batch_count;
use crate::CoreError;
use spgemm_simgrid::grid::{valid_layer_counts, Grid3D};
use spgemm_simgrid::{Comm, OpKind};
use std::collections::HashMap;
use std::fmt;

/// One recorded communication action of one rank.
///
/// `root` is the member *index* within the communicator (the convention of
/// [`spgemm_simgrid::Rank::bcast`] and the protocol checker), `to`/`from`
/// are global ranks, and `seq` is the per-communicator collective sequence
/// number the runtime's `next_seq` would have drawn.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEvent {
    /// A blocking collective (bcast / allreduce / allgather / alltoallv /
    /// gather / barrier) entering its rendezvous.
    Collective {
        /// Communicator id.
        comm: u64,
        /// Which collective.
        op: OpKind,
        /// Root member index, for rooted collectives.
        root: Option<usize>,
        /// Per-communicator sequence number.
        seq: u64,
        /// Modeled payload bytes (informational; per-rank quantities are
        /// allowed to differ, so this is excluded from agreement checks).
        bytes: u64,
    },
    /// A nonblocking collective post (`ibcast` / `ialltoallv`).
    Post {
        /// Communicator id.
        comm: u64,
        /// Which post ([`OpKind::IbcastPost`] or [`OpKind::IalltoallvPost`]).
        op: OpKind,
        /// Root member index, for `ibcast`.
        root: Option<usize>,
        /// Per-communicator sequence number (shared counter with the
        /// blocking collectives, exactly as the runtime draws it).
        seq: u64,
    },
    /// Completion of the post with the same `(comm, seq)`.
    Wait {
        /// Communicator id.
        comm: u64,
        /// Sequence number of the post being completed.
        seq: u64,
    },
    /// A user-level point-to-point send (the fetch protocol).
    Send {
        /// Communicator id the envelope is addressed on.
        comm: u64,
        /// Destination global rank.
        to: usize,
        /// Message tag.
        tag: u64,
    },
    /// The matching blocking receive.
    Recv {
        /// Communicator id.
        comm: u64,
        /// Source global rank.
        from: usize,
        /// Message tag.
        tag: u64,
    },
}

impl fmt::Display for AuditEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditEvent::Collective {
                comm,
                op,
                root,
                seq,
                bytes,
            } => match root {
                Some(r) => {
                    write!(f, "{op} on comm {comm:#x} seq {seq} root {r} ({bytes} B)")
                }
                None => write!(f, "{op} on comm {comm:#x} seq {seq} ({bytes} B)"),
            },
            AuditEvent::Post {
                comm,
                op,
                root,
                seq,
            } => match root {
                Some(r) => write!(f, "post {op} on comm {comm:#x} seq {seq} root {r}"),
                None => write!(f, "post {op} on comm {comm:#x} seq {seq}"),
            },
            AuditEvent::Wait { comm, seq } => write!(f, "wait on comm {comm:#x} seq {seq}"),
            AuditEvent::Send { comm, to, tag } => {
                write!(f, "send to rank {to} (comm {comm:#x}, tag {tag:#x})")
            }
            AuditEvent::Recv { comm, from, tag } => {
                write!(f, "recv from rank {from} (comm {comm:#x}, tag {tag:#x})")
            }
        }
    }
}

/// The extracted schedule of one configuration: one event trace per rank
/// plus the communicator membership registry the verifier needs.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Per-rank event traces, indexed by global rank.
    pub traces: Vec<Vec<AuditEvent>>,
    /// Communicator id → member list (global ranks, index order).
    pub comms: HashMap<u64, Vec<usize>>,
    /// The batch count the configuration resolved to.
    pub nbatches: usize,
    /// Modeled peak memory check, present for budget-derived batch counts:
    /// `(modeled_peak_bytes, per_process_budget_bytes)`.
    pub memory: Option<(u64, u64)>,
}

impl Schedule {
    /// Total event count across all ranks.
    pub fn total_events(&self) -> usize {
        self.traces.iter().map(Vec::len).sum()
    }
}

/// The program whose schedule is being extracted, in resolved form: batch
/// count and symbolic-sweep choice already decided. [`AuditConfig`]
/// resolves a planner-level configuration down to this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceProgram {
    /// World size.
    pub p: usize,
    /// Layer count (must form square layers).
    pub l: usize,
    /// Stage-operand movement mode.
    pub exchange: ExchangeMode,
    /// Blocking or pipelined stage communication.
    pub overlap: OverlapMode,
    /// Multiplication count (session iterations; 1 = a single multiply).
    pub iterations: usize,
    /// Batches per multiplication.
    pub nbatches: usize,
    /// Whether the symbolic sweep (Alg. 3) runs before each
    /// multiplication's batches (it does whenever the batch count is not
    /// forced, and for Balanced batching).
    pub run_symbolic: bool,
    /// Include the two initial scatter broadcasts
    /// ([`crate::dist::scatter`] for A-style and B-style) that a session
    /// or harness run performs.
    pub scatter: bool,
    /// Model the iteration session's `refresh_b` fiber all-to-all after
    /// each multiplication (sessions do this when `l > 1`; a one-shot
    /// multiply does not).
    pub session: bool,
    /// Modeled per-rank `nnz(Ã)` / `nnz(B̃)` / per-batch unmerged output,
    /// used only to annotate events with byte counts.
    pub modeled_nnz: (u64, u64, u64),
}

/// The symbolic executor state for one rank: the per-communicator
/// sequence counters and fetch-round counter the runtime would hold, plus
/// the recorded trace.
struct SymRank {
    grid: Grid3D,
    op_seq: HashMap<u64, u64>,
    fetch_seq: u64,
    events: Vec<AuditEvent>,
}

/// A posted-but-not-waited stage, mirroring `StagePending`: the `(comm,
/// seq)` keys of the A and B posts plus the stage index (the fetch root).
#[derive(Clone, Copy)]
struct SymPending {
    a: Option<(u64, u64)>,
    b: (u64, u64),
    s: usize,
}

impl SymRank {
    fn new(g: usize, p: usize, l: usize) -> SymRank {
        SymRank {
            grid: Grid3D::for_rank_id(g, p, l),
            op_seq: HashMap::new(),
            fetch_seq: 0,
            events: Vec::new(),
        }
    }

    /// Mirror of `Rank::next_seq`: one counter per communicator, first
    /// draw is 1.
    fn next_seq(&mut self, comm: &Comm) -> u64 {
        let seq = self.op_seq.entry(comm.id()).or_insert(0);
        *seq += 1;
        *seq
    }

    fn collective(&mut self, comm: &Comm, op: OpKind, root: Option<usize>, bytes: u64) {
        let seq = self.next_seq(comm);
        self.events.push(AuditEvent::Collective {
            comm: comm.id(),
            op,
            root,
            seq,
            bytes,
        });
    }

    fn post(&mut self, comm: &Comm, op: OpKind, root: Option<usize>) -> (u64, u64) {
        let seq = self.next_seq(comm);
        self.events.push(AuditEvent::Post {
            comm: comm.id(),
            op,
            root,
            seq,
        });
        (comm.id(), seq)
    }

    fn wait(&mut self, key: (u64, u64)) {
        self.events.push(AuditEvent::Wait {
            comm: key.0,
            seq: key.1,
        });
    }

    /// Mirror of `ExchangePlan::fetch_stage_a`'s message pattern: owner
    /// (row member `s`) serves each other member in index order — receive
    /// the request, send the reply; requesters send the request and block
    /// on the reply. `q == 1` short-circuits with no sequence draw.
    fn fetch_round(&mut self, s: usize) {
        let row = self.grid.row.clone();
        let q = row.size();
        if q == 1 {
            return;
        }
        let seq = self.fetch_seq;
        self.fetch_seq += 1;
        let req = fetch_req_tag(seq);
        let rep = fetch_rep_tag(seq);
        let me = row.my_index();
        if me == s {
            for i in (0..q).filter(|&i| i != s) {
                self.events.push(AuditEvent::Recv {
                    comm: row.id(),
                    from: row.member(i),
                    tag: req,
                });
                self.events.push(AuditEvent::Send {
                    comm: row.id(),
                    to: row.member(i),
                    tag: rep,
                });
            }
        } else {
            self.events.push(AuditEvent::Send {
                comm: row.id(),
                to: row.member(s),
                tag: req,
            });
            self.events.push(AuditEvent::Recv {
                comm: row.id(),
                from: row.member(s),
                tag: rep,
            });
        }
    }

    /// Mirror of `ExchangePlan::exchange_stage` (blocking): dense mode
    /// broadcasts Ã on the row then B̃ on the column; sparse mode
    /// broadcasts B̃ on the column then runs the fetch round on the row.
    fn exchange_stage(&mut self, s: usize, exchange: ExchangeMode, a_bytes: u64, b_bytes: u64) {
        let row = self.grid.row.clone();
        let col = self.grid.col.clone();
        match exchange {
            ExchangeMode::DenseBcast => {
                self.collective(&row, OpKind::Bcast, Some(s), a_bytes);
                self.collective(&col, OpKind::Bcast, Some(s), b_bytes);
            }
            ExchangeMode::SparseFetch => {
                self.collective(&col, OpKind::Bcast, Some(s), b_bytes);
                self.fetch_round(s);
            }
        }
    }

    /// Mirror of `ExchangePlan::post_stage`: dense mode posts `ibcast`s
    /// for Ã (row) and B̃ (column); sparse mode posts only B̃'s.
    fn post_stage(&mut self, s: usize, exchange: ExchangeMode) -> SymPending {
        let row = self.grid.row.clone();
        let col = self.grid.col.clone();
        let a = match exchange {
            ExchangeMode::DenseBcast => Some(self.post(&row, OpKind::IbcastPost, Some(s))),
            ExchangeMode::SparseFetch => None,
        };
        let b = self.post(&col, OpKind::IbcastPost, Some(s));
        SymPending { a, b, s }
    }

    /// Mirror of `ExchangePlan::wait_stage`: with an A post, wait A then
    /// B; without, wait B then run the stage's fetch round.
    fn wait_stage(&mut self, pending: SymPending) {
        match pending.a {
            Some(a) => {
                self.wait(a);
                self.wait(pending.b);
            }
            None => {
                self.wait(pending.b);
                self.fetch_round(pending.s);
            }
        }
    }

    /// Mirror of `summa2d_layer_pipelined`: wait the pending stage, post
    /// the next — and on the last stage, post the *next batch's* stage 0
    /// (the cross-batch carry).
    fn layer_pipelined(
        &mut self,
        exchange: ExchangeMode,
        carry: Option<SymPending>,
        post_next_batch: bool,
    ) -> Option<SymPending> {
        let stages = self.grid.pr;
        let mut pending =
            Some(carry.unwrap_or_else(|| self.post_stage(0, exchange)));
        let mut next_carry = None;
        for s in 0..stages {
            let posted = pending.take().expect("pipeline keeps one stage posted");
            self.wait_stage(posted);
            if s + 1 < stages {
                pending = Some(self.post_stage(s + 1, exchange));
            } else if post_next_batch {
                next_carry = Some(self.post_stage(0, exchange));
            }
        }
        next_carry
    }
}

/// Extract the full schedule of `prog`: one trace per rank plus the
/// communicator registry, by symbolically executing every rank's control
/// flow. No matrices are constructed and no bytes move.
pub fn trace_program(prog: &TraceProgram) -> Schedule {
    let (a_nnz, b_nnz, batch_unmerged) = prog.modeled_nnz;
    let r = R_BYTES_PER_NNZ as u64;
    let a_bytes = r * a_nnz;
    let b_bytes = r * b_nnz;
    let b_piece_bytes = b_bytes.div_ceil(prog.nbatches as u64);
    let fiber_bytes = r * batch_unmerged;

    let mut comms: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut traces = Vec::with_capacity(prog.p);
    for g in 0..prog.p {
        let mut sym = SymRank::new(g, prog.p, prog.l);
        for comm in [
            &sym.grid.row,
            &sym.grid.col,
            &sym.grid.fiber,
            &sym.grid.layer,
            &sym.grid.world,
        ] {
            comms
                .entry(comm.id())
                .or_insert_with(|| comm.members().to_vec());
        }
        let world = sym.grid.world.clone();
        let fiber = sym.grid.fiber.clone();
        let stages = sym.grid.pr;

        // Session construction: scatter A-style then B-style, each one
        // world broadcast from global rank 0 (member index 0).
        if prog.scatter {
            sym.collective(&world, OpKind::Bcast, Some(0), a_bytes);
            sym.collective(&world, OpKind::Bcast, Some(0), b_bytes);
        }

        for _iter in 0..prog.iterations {
            // Alg. 3: a structure-only SUMMA2D sweep (always blocking),
            // then the eight world reductions of `symbolic3d_with_weights`.
            if prog.run_symbolic {
                for s in 0..stages {
                    sym.exchange_stage(s, prog.exchange, a_bytes, b_bytes);
                }
                for _ in 0..8 {
                    sym.collective(&world, OpKind::Allreduce, None, 8);
                }
            }
            // Alg. 4: one SUMMA3D per batch.
            match prog.overlap {
                OverlapMode::Blocking => {
                    for _t in 0..prog.nbatches {
                        for s in 0..stages {
                            sym.exchange_stage(s, prog.exchange, a_bytes, b_piece_bytes);
                        }
                        sym.collective(&fiber, OpKind::Alltoallv, None, fiber_bytes);
                    }
                }
                OverlapMode::Overlapped => {
                    let mut carry: Option<SymPending> = None;
                    for t in 0..prog.nbatches {
                        let post_next = t + 1 < prog.nbatches;
                        carry = sym.layer_pipelined(prog.exchange, carry.take(), post_next);
                        let key = sym.post(&fiber, OpKind::IalltoallvPost, None);
                        sym.wait(key);
                    }
                    debug_assert!(carry.is_none(), "last batch posts no follow-on stage");
                }
            }
            // Session epilogue: refresh B̃ from the new Ã across layers.
            if prog.session && prog.l > 1 {
                sym.collective(&fiber, OpKind::Alltoallv, None, b_bytes);
            }
        }
        traces.push(sym.events);
    }

    Schedule {
        traces,
        comms,
        nbatches: prog.nbatches,
        memory: None,
    }
}

/// Symbolic executor for the gridless 1.5D families: the per-communicator
/// sequence counters plus the recorded trace — [`SymRank`] minus the 2.5D
/// grid, which 1.5D world sizes need not form (`p` only has to be
/// divisible by `c`, not square).
struct Sym15 {
    op_seq: HashMap<u64, u64>,
    events: Vec<AuditEvent>,
}

impl Sym15 {
    fn next_seq(&mut self, comm: &Comm) -> u64 {
        let seq = self.op_seq.entry(comm.id()).or_insert(0);
        *seq += 1;
        *seq
    }

    fn collective(&mut self, comm: &Comm, op: OpKind, root: Option<usize>, bytes: u64) {
        let seq = self.next_seq(comm);
        self.events.push(AuditEvent::Collective {
            comm: comm.id(),
            op,
            root,
            seq,
            bytes,
        });
    }
}

/// Extract the schedule of a 1.5D family configuration: the exact
/// communication pattern of [`crate::family15::spmm_15d`], which is as
/// content-independent as the SUMMA schedules — every rank runs the full
/// shift rotation whether or not its `A` block is empty.
///
/// Each session iteration is one full `spmm_15d` call (there is no 1.5D
/// operand-caching session), so the scatter broadcasts and the root gather
/// repeat per iteration. The shift tags `shift_tag(round)` are reused
/// across iterations; that is collision-free because every shift send is
/// matched by a blocking receive in the same round, so no envelope with
/// that tag is still in flight at reuse time — a property the replay
/// verifier re-proves here rather than assumes.
pub fn trace_family15(cfg: &AuditConfig) -> crate::Result<Schedule> {
    let fam = cfg.family;
    fam.validate(cfg.p)?;
    match cfg.batch {
        BatchSpec::Forced(1) => {}
        other => {
            return Err(CoreError::Config(format!(
                "{} admits only b=1 (the stationary dense stripes cannot batch), got {other}",
                fam.label()
            )))
        }
    }
    let p = cfg.p;
    let c = fam.repl_factor();
    let t = p / c;
    let rounds = match fam {
        AlgorithmFamily::InnerAbc15 { .. } => t / c,
        _ => t,
    };

    // Informational byte annotations (excluded from agreement checks):
    // the scatter moves the globals, the reduce/gather move one dense `C`
    // stripe (8 B/element, square `n × n` operands as the workload shapes
    // model them). Point-to-point shift events carry no byte field.
    let r = R_BYTES_PER_NNZ as u64;
    let a_bytes = r * cfg.shape.nnz_a;
    let b_bytes = 8 * cfg.shape.n * cfg.shape.n;
    let stripe_bytes = 8 * cfg.shape.n * cfg.shape.n.div_ceil(t as u64);

    let mut comms: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut traces = Vec::with_capacity(p);
    for g in 0..p {
        let world = Comm::for_rank((0..p).collect(), 0, g);
        let (ring_members, team_members) = match fam {
            AlgorithmFamily::InnerAbc15 { .. } => {
                (iabc_subring(p, c, g), Some(iabc_team(p, c, g)))
            }
            _ => (cola_ring(p, c, g), None),
        };
        let ring = Comm::for_rank(ring_members, COLOR_RING15, g);
        comms
            .entry(world.id())
            .or_insert_with(|| world.members().to_vec());
        comms
            .entry(ring.id())
            .or_insert_with(|| ring.members().to_vec());

        let mut sym = Sym15 {
            op_seq: HashMap::new(),
            events: Vec::new(),
        };
        let q = ring.size();
        let pos = ring.my_index();
        for _iter in 0..cfg.iterations {
            // Scatter: root broadcasts the global operands.
            sym.collective(&world, OpKind::Bcast, Some(0), a_bytes);
            sym.collective(&world, OpKind::Bcast, Some(0), b_bytes);
            // A-Shift rotation: `rounds − 1` ring shifts, send to the
            // successor then block on the predecessor.
            for round in 0..rounds {
                if round + 1 < rounds {
                    let succ = (pos + 1) % q;
                    let pred = (pos + q - 1) % q;
                    sym.events.push(AuditEvent::Send {
                        comm: ring.id(),
                        to: ring.member(succ),
                        tag: shift_tag(round),
                    });
                    sym.events.push(AuditEvent::Recv {
                        comm: ring.id(),
                        from: ring.member(pred),
                        tag: shift_tag(round),
                    });
                }
            }
            // C-Reduce (InnerABC, c > 1): the replication team combines
            // its layer-partial stripes via allgather + local fold.
            if let Some(members) = &team_members {
                if c > 1 {
                    let team = Comm::for_rank(members.clone(), COLOR_TEAM15, g);
                    comms
                        .entry(team.id())
                        .or_insert_with(|| team.members().to_vec());
                    sym.collective(&team, OpKind::Allgather, None, stripe_bytes);
                }
            }
            // Gather the stationary stripes back to the root.
            sym.collective(&world, OpKind::Gather, Some(0), stripe_bytes);
        }
        traces.push(sym.events);
    }

    Ok(Schedule {
        traces,
        comms,
        nbatches: 1,
        memory: None,
    })
}

/// How a configuration chooses its batch count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSpec {
    /// Forced batch count (skips the symbolic sweep; unlimited budget).
    Forced(usize),
    /// Budget-derived: the per-process budget is sized so Alg. 3 lands
    /// near `target` batches, and the symbolic sweep runs every
    /// multiplication. The auditor then verifies the Eq. 2 footprint of
    /// the chosen count against that budget.
    Budget {
        /// Approximate batch count the budget is tuned for.
        target: usize,
    },
}

impl fmt::Display for BatchSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchSpec::Forced(n) => write!(f, "b={n}"),
            BatchSpec::Budget { target } => write!(f, "b=auto(~{target})"),
        }
    }
}

/// A workload's modeled global shape: enough to derive the per-process
/// maxima Alg. 3 reduces, without any actual matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadShape {
    /// Short name used in configuration labels.
    pub name: &'static str,
    /// Global matrix dimension (columns of `B`).
    pub n: u64,
    /// Global `nnz(A)`.
    pub nnz_a: u64,
    /// Global `nnz(B)`.
    pub nnz_b: u64,
    /// Global unmerged intermediate nonzeros (`flops`-scale).
    pub unmerged: u64,
}

/// The fig3/fig4 workload shapes the sweep audits: the MCL iteration
/// workload (Fig. 3) and the two Fig. 4 regimes (a huge uniform graph and
/// a smaller matrix with a dense-ish intermediate).
pub fn workload_shapes() -> Vec<WorkloadShape> {
    vec![
        WorkloadShape {
            name: "fig3-mcl",
            n: 100_000,
            nnz_a: 2_000_000,
            nnz_b: 2_000_000,
            unmerged: 40_000_000,
        },
        WorkloadShape {
            name: "fig4-friendster",
            n: 65_000_000,
            nnz_a: 1_800_000_000,
            nnz_b: 1_800_000_000,
            unmerged: 120_000_000_000,
        },
        WorkloadShape {
            name: "fig4-isolates",
            n: 2_000_000,
            nnz_a: 6_000_000,
            nnz_b: 6_000_000,
            unmerged: 60_000_000,
        },
    ]
}

/// One point of the planner's candidate grid, as the auditor sweeps it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditConfig {
    /// Modeled workload.
    pub shape: WorkloadShape,
    /// World size.
    pub p: usize,
    /// Layer count (ignored by the 1.5D families, which have no grid).
    pub l: usize,
    /// Batch-count choice (the 1.5D families accept only `Forced(1)`:
    /// their stationary dense stripes cannot batch).
    pub batch: BatchSpec,
    /// Stage-operand movement mode (SUMMA families only; 1.5D moves `A`
    /// by ring shifts).
    pub exchange: ExchangeMode,
    /// Blocking or pipelined stages (SUMMA families only).
    pub overlap: OverlapMode,
    /// Session iteration count.
    pub iterations: usize,
    /// Which algorithm family's schedule to extract.
    pub family: AlgorithmFamily,
}

impl AuditConfig {
    /// Human-readable configuration label used in reports.
    pub fn label(&self) -> String {
        if self.family.is_15d() {
            return format!(
                "{} p={} {} {} iters={}",
                self.shape.name,
                self.p,
                self.family.label(),
                self.batch,
                self.iterations
            );
        }
        let overlap = match self.overlap {
            OverlapMode::Blocking => "blocking",
            OverlapMode::Overlapped => "overlapped",
        };
        format!(
            "{} p={} l={} {} {} {} iters={}",
            self.shape.name,
            self.p,
            self.l,
            self.batch,
            self.exchange.name(),
            overlap,
            self.iterations
        )
    }

    /// Resolve the planner-level configuration to a concrete
    /// [`TraceProgram`] plus the memory check, running the same Alg. 3
    /// arithmetic a real run would. `Err` means the planner itself would
    /// reject the configuration (inputs exceed memory / batching
    /// infeasible) — not a schedule violation.
    pub fn resolve(&self) -> crate::Result<(TraceProgram, Option<(u64, u64)>)> {
        let pr = spgemm_simgrid::grid::layer_side(self.p, self.l).ok_or_else(|| {
            CoreError::Config(format!(
                "p={} l={} does not form square layers",
                self.p, self.l
            ))
        })?;
        let p64 = self.p as u64;
        let r = R_BYTES_PER_NNZ as u64;
        let max_nnz_a = self.shape.nnz_a.div_ceil(p64);
        let max_nnz_b = self.shape.nnz_b.div_ceil(p64);
        let max_unmerged = self.shape.unmerged.div_ceil(p64);
        let ncols_local = self.shape.n.div_ceil(pr as u64).max(1);
        let max_col_unmerged = max_unmerged.div_ceil(ncols_local);
        let input_bytes = r * (max_nnz_a + max_nnz_b);

        let (nbatches, run_symbolic, memory) = match self.batch {
            BatchSpec::Forced(n) => (n.max(1), false, None),
            BatchSpec::Budget { target } => {
                let leftover = (r * max_unmerged).div_ceil(target.max(1) as u64).max(r);
                let per_proc = input_bytes + leftover;
                let b = alg3_batch_count(
                    per_proc as usize,
                    R_BYTES_PER_NNZ,
                    max_nnz_a,
                    max_nnz_b,
                    max_unmerged,
                    max_col_unmerged,
                    self.shape.n.max(1) as usize,
                )?;
                let modeled_peak = input_bytes + (r * max_unmerged).div_ceil(b as u64);
                (b, true, Some((modeled_peak, per_proc)))
            }
        };
        let prog = TraceProgram {
            p: self.p,
            l: self.l,
            exchange: self.exchange,
            overlap: self.overlap,
            iterations: self.iterations,
            nbatches,
            run_symbolic,
            scatter: true,
            session: true,
            modeled_nnz: (
                max_nnz_a,
                max_nnz_b,
                max_unmerged.div_ceil(nbatches as u64),
            ),
        };
        Ok((prog, memory))
    }

    /// Extract this configuration's schedule (resolving the batch count
    /// first). `Err` means the planner would reject the configuration.
    pub fn extract(&self) -> crate::Result<Schedule> {
        if self.family.is_15d() {
            return trace_family15(self);
        }
        let (prog, memory) = self.resolve()?;
        let mut sched = trace_program(&prog);
        sched.memory = memory;
        Ok(sched)
    }
}

/// The class of a schedule violation the verifier detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditViolationKind {
    /// Two members of one communicator disagree on the collective
    /// sequence (operation, root, or sequence number).
    ScheduleDivergence,
    /// The replay scheduler stuck with live ranks blocked (unmatched
    /// receive, missing collective entry, or a cyclic wait).
    Deadlock,
    /// A second send posted with a `(comm, tag, src, dst)` envelope
    /// identical to one still in flight.
    TagCollision,
    /// A send never matched by a receive by the end of the schedule.
    OrphanedSend,
    /// A nonblocking post never waited, or waited out of post order.
    HandleDiscipline,
    /// The modeled Eq. 2 peak exceeds the per-process budget for the
    /// chosen batch count.
    MemoryExceeded,
}

impl fmt::Display for AuditViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditViolationKind::ScheduleDivergence => "ScheduleDivergence",
            AuditViolationKind::Deadlock => "Deadlock",
            AuditViolationKind::TagCollision => "TagCollision",
            AuditViolationKind::OrphanedSend => "OrphanedSend",
            AuditViolationKind::HandleDiscipline => "HandleDiscipline",
            AuditViolationKind::MemoryExceeded => "MemoryExceeded",
        };
        f.write_str(s)
    }
}

/// A verified schedule violation: its class, a detail line naming the
/// ranks and events involved, and (for divergences) a minimized
/// event-trace diff around the first mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// What class of defect this is.
    pub kind: AuditViolationKind,
    /// Ranks and events involved.
    pub detail: String,
    /// Minimized event-trace diff (±2 events of context per side).
    pub diff: Option<String>,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule violation [{}]: {}", self.kind, self.detail)?;
        if let Some(diff) = &self.diff {
            write!(f, "\n{diff}")?;
        }
        Ok(())
    }
}

/// Agreement signature of one collective-sequence event:
/// `(event class, op, root, seq, comm)` — class 0 = blocking collective,
/// 1 = nonblocking post, 2 = wait.
type CollectiveSig = (u8, Option<OpKind>, Option<usize>, u64, u64);

/// Whether an event participates in the per-communicator collective
/// sequence (property 1), and its agreement signature if so. Byte counts
/// are per-rank modeled quantities and are deliberately excluded.
fn collective_sig(e: &AuditEvent) -> Option<CollectiveSig> {
    match *e {
        AuditEvent::Collective {
            comm, op, root, seq, ..
        } => Some((0, Some(op), root, seq, comm)),
        AuditEvent::Post {
            comm, op, root, seq,
        } => Some((1, Some(op), root, seq, comm)),
        AuditEvent::Wait { comm, seq } => Some((2, None, None, seq, comm)),
        _ => None,
    }
}

/// Render ±`ctx` events of context around filtered index `at` of `rank`'s
/// events on `comm`, for minimized diffs.
fn render_context(
    trace: &[AuditEvent],
    comm: u64,
    rank: usize,
    at: usize,
    ctx: usize,
) -> String {
    let on_comm: Vec<&AuditEvent> = trace
        .iter()
        .filter(|e| collective_sig(e).is_some_and(|sig| sig.4 == comm))
        .collect();
    let lo = at.saturating_sub(ctx);
    let hi = (at + ctx + 1).min(on_comm.len());
    let mut out = format!("  rank {rank} (events {lo}..{hi} on comm {comm:#x}):\n");
    for (i, e) in on_comm[lo..hi].iter().enumerate() {
        let idx = lo + i;
        let marker = if idx == at { ">>" } else { "  " };
        out.push_str(&format!("  {marker} [{idx}] {e}\n"));
    }
    if at >= on_comm.len() {
        out.push_str(&format!("  >> [{at}] <end of trace>\n"));
    }
    out
}

/// Property 1: every member of every communicator records the identical
/// collective/post/wait sequence. Returns the first divergence found.
fn check_agreement(sched: &Schedule) -> Option<AuditViolation> {
    for (&comm, members) in &sched.comms {
        let Some(&first) = members.first() else {
            continue;
        };
        let seq_of = |rank: usize| {
            sched.traces[rank]
                .iter()
                .filter_map(collective_sig)
                .filter(move |sig| sig.4 == comm)
        };
        for &m in &members[1..] {
            let mut a = seq_of(first);
            let mut b = seq_of(m);
            let mut idx = 0usize;
            loop {
                match (a.next(), b.next()) {
                    (None, None) => break,
                    (x, y) if x == y => idx += 1,
                    (x, y) => {
                        let describe = |v: Option<CollectiveSig>| {
                            match v {
                                Some((0, Some(op), root, seq, _)) => {
                                    format!("{op} seq {seq} root {root:?}")
                                }
                                Some((1, Some(op), root, seq, _)) => {
                                    format!("post {op} seq {seq} root {root:?}")
                                }
                                Some((2, _, _, seq, _)) => format!("wait seq {seq}"),
                                _ => "<end of trace>".into(),
                            }
                        };
                        let diff = format!(
                            "{}{}",
                            render_context(&sched.traces[first], comm, first, idx, 2),
                            render_context(&sched.traces[m], comm, m, idx, 2)
                        );
                        return Some(AuditViolation {
                            kind: AuditViolationKind::ScheduleDivergence,
                            detail: format!(
                                "comm {comm:#x} operation {idx}: rank {first} records {} but \
                                 rank {m} records {}",
                                describe(x),
                                describe(y)
                            ),
                            diff: Some(diff),
                        });
                    }
                }
            }
        }
    }
    None
}

/// Property 3: per rank and per communicator, every post is waited and
/// waits come in post order.
fn check_handles(sched: &Schedule) -> Option<AuditViolation> {
    for (rank, trace) in sched.traces.iter().enumerate() {
        let mut posted: HashMap<u64, Vec<u64>> = HashMap::new();
        for (i, e) in trace.iter().enumerate() {
            match *e {
                AuditEvent::Post { comm, seq, .. } => {
                    posted.entry(comm).or_default().push(seq);
                }
                AuditEvent::Wait { comm, seq } => {
                    let queue = posted.entry(comm).or_default();
                    if queue.first() != Some(&seq) {
                        return Some(AuditViolation {
                            kind: AuditViolationKind::HandleDiscipline,
                            detail: format!(
                                "rank {rank} event {i}: wait on comm {comm:#x} seq {seq} but \
                                 the oldest outstanding post is {:?}",
                                queue.first()
                            ),
                            diff: None,
                        });
                    }
                    queue.remove(0);
                }
                _ => {}
            }
        }
        for (comm, queue) in posted {
            if let Some(&seq) = queue.first() {
                return Some(AuditViolation {
                    kind: AuditViolationKind::HandleDiscipline,
                    detail: format!(
                        "rank {rank} leaked a pending post on comm {comm:#x} seq {seq} \
                         (never waited before the schedule ended)"
                    ),
                    diff: None,
                });
            }
        }
    }
    None
}

/// Property 2: replay the whole schedule with a deterministic scheduler.
/// Sends enable matching receives; blocking collectives and waits
/// rendezvous all communicator members. Detects tag collisions, unmatched
/// receives, orphaned sends, and stuck frontiers.
fn check_replay(sched: &Schedule) -> Option<AuditViolation> {
    let p = sched.traces.len();
    let mut cursor = vec![0usize; p];
    // (comm, tag, src, dst) → in flight. A duplicate insert is a collision.
    let mut inflight: HashMap<(u64, u64, usize, usize), ()> = HashMap::new();
    // (comm, tag, src, dst) → receiver rank parked on it.
    let mut recv_waiters: HashMap<(u64, u64, usize, usize), usize> = HashMap::new();
    // (comm, seq, class) → (arrived, parked ranks). class 0 = blocking
    // collective rendezvous, 1 = wait rendezvous.
    let mut rendezvous: HashMap<(u64, u64, u8), (usize, Vec<usize>)> = HashMap::new();
    let mut runnable: Vec<usize> = (0..p).rev().collect();

    while let Some(rank) = runnable.pop() {
        while let Some(e) = sched.traces[rank].get(cursor[rank]) {
            match *e {
                AuditEvent::Send { comm, to, tag } => {
                    let key = (comm, tag, rank, to);
                    if inflight.insert(key, ()).is_some() {
                        return Some(AuditViolation {
                            kind: AuditViolationKind::TagCollision,
                            detail: format!(
                                "rank {rank} posted a second send to rank {to} with \
                                 (comm {comm:#x}, tag {tag:#x}) while the first is still \
                                 undelivered"
                            ),
                            diff: None,
                        });
                    }
                    cursor[rank] += 1;
                    if let Some(waiter) = recv_waiters.remove(&key) {
                        runnable.push(waiter);
                    }
                }
                AuditEvent::Recv { comm, from, tag } => {
                    let key = (comm, tag, from, rank);
                    if inflight.remove(&key).is_some() {
                        cursor[rank] += 1;
                    } else {
                        recv_waiters.insert(key, rank);
                        break;
                    }
                }
                AuditEvent::Collective { comm, seq, .. } | AuditEvent::Wait { comm, seq } => {
                    let class = match e {
                        AuditEvent::Collective { .. } => 0u8,
                        _ => 1u8,
                    };
                    let size = sched
                        .comms
                        .get(&comm)
                        .map_or(1, Vec::len);
                    let entry = rendezvous.entry((comm, seq, class)).or_insert((0, Vec::new()));
                    entry.0 += 1;
                    if entry.0 == size {
                        cursor[rank] += 1;
                        let parked = std::mem::take(&mut entry.1);
                        for r in parked {
                            cursor[r] += 1;
                            runnable.push(r);
                        }
                        rendezvous.remove(&(comm, seq, class));
                    } else {
                        entry.1.push(rank);
                        break;
                    }
                }
                AuditEvent::Post { .. } => {
                    cursor[rank] += 1;
                }
            }
        }
    }

    let stuck: Vec<usize> = (0..p)
        .filter(|&r| cursor[r] < sched.traces[r].len())
        .collect();
    if !stuck.is_empty() {
        let who: Vec<String> = stuck
            .iter()
            .take(4)
            .map(|&r| format!("rank {r} at event {}: {}", cursor[r], sched.traces[r][cursor[r]]))
            .collect();
        let more = if stuck.len() > 4 {
            format!(" (and {} more)", stuck.len() - 4)
        } else {
            String::new()
        };
        return Some(AuditViolation {
            kind: AuditViolationKind::Deadlock,
            detail: format!(
                "{} of {p} ranks can never progress: {}{more}",
                stuck.len(),
                who.join("; ")
            ),
            diff: None,
        });
    }
    if let Some((&(comm, tag, src, dst), ())) = inflight.iter().next() {
        return Some(AuditViolation {
            kind: AuditViolationKind::OrphanedSend,
            detail: format!(
                "rank {src} sent to rank {dst} with (comm {comm:#x}, tag {tag:#x}) but the \
                 message is never received"
            ),
            diff: None,
        });
    }
    None
}

/// Property 4: the modeled Eq. 2 peak stays within the per-process budget
/// (only meaningful for budget-derived batch counts).
fn check_memory(sched: &Schedule) -> Option<AuditViolation> {
    let (peak, per_proc) = sched.memory?;
    if peak > per_proc {
        return Some(AuditViolation {
            kind: AuditViolationKind::MemoryExceeded,
            detail: format!(
                "modeled peak {peak} B exceeds per-process budget {per_proc} B with {} \
                 batches (Eq. 2 model: inputs + per-batch unmerged output)",
                sched.nbatches
            ),
            diff: None,
        });
    }
    None
}

/// Verify all four property classes against an extracted schedule.
/// Returns every violation found (at most one per property class — each
/// checker stops at its first finding to keep reports minimal).
pub fn verify(sched: &Schedule) -> Vec<AuditViolation> {
    let mut out = Vec::new();
    if let Some(v) = check_agreement(sched) {
        out.push(v);
    }
    if let Some(v) = check_handles(sched) {
        out.push(v);
    }
    if let Some(v) = check_replay(sched) {
        out.push(v);
    }
    if let Some(v) = check_memory(sched) {
        out.push(v);
    }
    out
}

/// A deliberately injected schedule bug, for proving the verifier's
/// coverage (`spgemm audit --inject …`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditFault {
    /// Remove one rank's last `wait` (a leaked handle / pipeline bug).
    SkipWait,
    /// Corrupt the tag of one rank's first fetch-protocol send (a
    /// sequence-counter desync between requester and owner).
    WrongFetchTag,
    /// Remove one rank's first fiber collective (a skipped stage).
    SkipCollective,
    /// Change the root of one rank's first rooted collective.
    WrongRoot,
}

impl AuditFault {
    /// Parse a CLI fault name.
    pub fn parse(s: &str) -> Option<AuditFault> {
        match s {
            "skip-wait" => Some(AuditFault::SkipWait),
            "wrong-fetch-tag" => Some(AuditFault::WrongFetchTag),
            "skip-collective" => Some(AuditFault::SkipCollective),
            "wrong-root" => Some(AuditFault::WrongRoot),
            _ => None,
        }
    }

    /// All fault names, for help text.
    pub const NAMES: &'static [&'static str] = &[
        "skip-wait",
        "wrong-fetch-tag",
        "skip-collective",
        "wrong-root",
    ];

    /// Apply the fault to the last rank's trace (the highest rank, so
    /// rank-0-biased reporting bugs would be exposed). Returns a
    /// description of the mutation, or `None` when the schedule has no
    /// applicable event (e.g. no fetch sends under dense exchange).
    pub fn inject(&self, sched: &mut Schedule) -> Option<String> {
        let victim = sched.traces.len() - 1;
        let trace = &mut sched.traces[victim];
        match self {
            AuditFault::SkipWait => {
                let at = trace
                    .iter()
                    .rposition(|e| matches!(e, AuditEvent::Wait { .. }))?;
                let removed = trace.remove(at);
                Some(format!("rank {victim}: removed event {at} ({removed})"))
            }
            AuditFault::WrongFetchTag => {
                let at = trace.iter().position(|e| {
                    matches!(e, AuditEvent::Send { tag, .. } if *tag >= crate::exchange::FETCH_TAG_BASE)
                })?;
                if let AuditEvent::Send { tag, .. } = &mut trace[at] {
                    let old = *tag;
                    *tag += 2;
                    return Some(format!(
                        "rank {victim}: send event {at} retagged {old:#x} -> {:#x}",
                        old + 2
                    ));
                }
                None
            }
            AuditFault::SkipCollective => {
                let at = trace
                    .iter()
                    .position(|e| matches!(e, AuditEvent::Collective { .. }))?;
                let removed = trace.remove(at);
                Some(format!("rank {victim}: removed event {at} ({removed})"))
            }
            AuditFault::WrongRoot => {
                let at = trace.iter().position(|e| {
                    matches!(
                        e,
                        AuditEvent::Collective { root: Some(_), .. }
                            | AuditEvent::Post { root: Some(_), .. }
                    )
                })?;
                match &mut trace[at] {
                    AuditEvent::Collective { root: Some(r), .. }
                    | AuditEvent::Post { root: Some(r), .. } => {
                        let old = *r;
                        *r += 1;
                        Some(format!(
                            "rank {victim}: event {at} root changed {old} -> {}",
                            old + 1
                        ))
                    }
                    _ => None,
                }
            }
        }
    }
}

/// Outcome of auditing one configuration.
#[derive(Debug, Clone)]
pub enum ConfigOutcome {
    /// Schedule extracted and all four properties verified clean.
    Ok {
        /// Batch count the configuration resolved to.
        nbatches: usize,
        /// Total events across all ranks.
        events: usize,
    },
    /// The planner itself rejects the configuration (not a violation).
    Infeasible(String),
    /// The verifier found violations.
    Violated(Vec<AuditViolation>),
}

/// One audited configuration and its outcome.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// Configuration label ([`AuditConfig::label`]).
    pub label: String,
    /// What the audit concluded.
    pub outcome: ConfigOutcome,
}

/// A full sweep's results.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Per-configuration outcomes, in grid order.
    pub results: Vec<ConfigResult>,
}

impl AuditReport {
    /// Configurations verified clean.
    pub fn ok_count(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, ConfigOutcome::Ok { .. }))
            .count()
    }

    /// Configurations the planner rejects (infeasible, not violations).
    pub fn infeasible_count(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, ConfigOutcome::Infeasible(_)))
            .count()
    }

    /// Configurations with at least one verified violation.
    pub fn violations(&self) -> Vec<(&str, &[AuditViolation])> {
        self.results
            .iter()
            .filter_map(|r| match &r.outcome {
                ConfigOutcome::Violated(v) => Some((r.label.as_str(), v.as_slice())),
                _ => None,
            })
            .collect()
    }

    /// Total events extracted across all verified configurations.
    pub fn total_events(&self) -> usize {
        self.results
            .iter()
            .map(|r| match r.outcome {
                ConfigOutcome::Ok { events, .. } => events,
                _ => 0,
            })
            .sum()
    }

    /// Render the report as a JSON object (hand-rolled; no dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"configs_checked\": {},\n  \"ok\": {},\n  \"infeasible_count\": {},\n",
            self.results.len(),
            self.ok_count(),
            self.infeasible_count()
        ));
        out.push_str(&format!("  \"total_events\": {},\n", self.total_events()));
        out.push_str("  \"infeasible\": [");
        let mut first = true;
        for r in &self.results {
            if let ConfigOutcome::Infeasible(reason) = &r.outcome {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\n    {{\"config\": \"{}\", \"reason\": \"{}\"}}",
                    json_escape(&r.label),
                    json_escape(reason)
                ));
            }
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"violations\": [");
        first = true;
        for r in &self.results {
            if let ConfigOutcome::Violated(vs) = &r.outcome {
                for v in vs {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!(
                        "\n    {{\"config\": \"{}\", \"kind\": \"{}\", \"detail\": \"{}\"{}}}",
                        json_escape(&r.label),
                        v.kind,
                        json_escape(&v.detail),
                        v.diff
                            .as_ref()
                            .map(|d| format!(", \"diff\": \"{}\"", json_escape(d)))
                            .unwrap_or_default()
                    ));
                }
            }
        }
        out.push_str(if first { "]\n" } else { "\n  ]\n" });
        out.push('}');
        out
    }
}

/// Escape a string for embedding in JSON.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Enumerate the planner's full candidate grid over `ps` world sizes: all
/// valid `(p, l)` pairs × batch specifications × both exchange modes ×
/// both overlap modes × session iteration counts × the fig3/fig4 workload
/// shapes.
pub fn sweep_grid(ps: &[usize]) -> Vec<AuditConfig> {
    let specs = [
        BatchSpec::Forced(1),
        BatchSpec::Forced(2),
        BatchSpec::Forced(4),
        BatchSpec::Budget { target: 1 },
        BatchSpec::Budget { target: 8 },
    ];
    let mut grid = Vec::new();
    for shape in workload_shapes() {
        for &p in ps {
            for l in valid_layer_counts(p) {
                for batch in specs {
                    for exchange in ExchangeMode::ALL {
                        for overlap in [OverlapMode::Blocking, OverlapMode::Overlapped] {
                            for iterations in [1usize, 4] {
                                grid.push(AuditConfig {
                                    shape,
                                    p,
                                    l,
                                    batch,
                                    exchange,
                                    overlap,
                                    iterations,
                                    family: AlgorithmFamily::Summa3dBatched,
                                });
                            }
                        }
                    }
                }
            }
            // The 1.5D families: every valid replication factor for this
            // world size, b=1 only (their stationary stripes cannot
            // batch); exchange/overlap/l are SUMMA knobs and pinned.
            for family in AlgorithmFamily::sweep(p) {
                if !family.is_15d() {
                    continue;
                }
                for iterations in [1usize, 4] {
                    grid.push(AuditConfig {
                        shape,
                        p,
                        l: 1,
                        batch: BatchSpec::Forced(1),
                        exchange: ExchangeMode::DenseBcast,
                        overlap: OverlapMode::Blocking,
                        iterations,
                        family,
                    });
                }
            }
        }
    }
    grid
}

/// Audit one configuration: extract, optionally inject a fault, verify.
pub fn audit_config(cfg: &AuditConfig, fault: Option<AuditFault>) -> ConfigResult {
    let label = cfg.label();
    let mut sched = match cfg.extract() {
        Ok(s) => s,
        Err(e) => {
            return ConfigResult {
                label,
                outcome: ConfigOutcome::Infeasible(e.to_string()),
            }
        }
    };
    if let Some(f) = fault {
        if f.inject(&mut sched).is_none() {
            return ConfigResult {
                label,
                outcome: ConfigOutcome::Infeasible(format!(
                    "fault {f:?} not applicable to this schedule"
                )),
            };
        }
    }
    let violations = verify(&sched);
    let outcome = if violations.is_empty() {
        ConfigOutcome::Ok {
            nbatches: sched.nbatches,
            events: sched.total_events(),
        }
    } else {
        ConfigOutcome::Violated(violations)
    };
    ConfigResult { label, outcome }
}

/// Run the full sweep over `ps` and audit every configuration.
pub fn sweep(ps: &[usize], fault: Option<AuditFault>) -> AuditReport {
    let mut report = AuditReport::default();
    for cfg in sweep_grid(ps) {
        report.results.push(audit_config(&cfg, fault));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> AuditConfig {
        AuditConfig {
            shape: workload_shapes()[0],
            p: 16,
            l: 4,
            batch: BatchSpec::Forced(2),
            exchange: ExchangeMode::SparseFetch,
            overlap: OverlapMode::Overlapped,
            iterations: 2,
            family: AlgorithmFamily::Summa3dBatched,
        }
    }

    fn cfg_15d(p: usize, family: AlgorithmFamily, iterations: usize) -> AuditConfig {
        AuditConfig {
            shape: workload_shapes()[0],
            p,
            l: 1,
            batch: BatchSpec::Forced(1),
            exchange: ExchangeMode::DenseBcast,
            overlap: OverlapMode::Blocking,
            iterations,
            family,
        }
    }

    #[test]
    fn clean_schedules_verify_clean() {
        for exchange in ExchangeMode::ALL {
            for overlap in [OverlapMode::Blocking, OverlapMode::Overlapped] {
                for batch in [BatchSpec::Forced(3), BatchSpec::Budget { target: 4 }] {
                    let cfg = AuditConfig {
                        shape: workload_shapes()[0],
                        p: 16,
                        l: 4,
                        batch,
                        exchange,
                        overlap,
                        iterations: 2,
                        family: AlgorithmFamily::Summa3dBatched,
                    };
                    let sched = cfg.extract().expect("feasible");
                    let violations = verify(&sched);
                    assert!(violations.is_empty(), "{}: {violations:?}", cfg.label());
                }
            }
        }
    }

    #[test]
    fn traces_are_payload_free_but_nonempty() {
        let sched = small_cfg().extract().unwrap();
        assert_eq!(sched.traces.len(), 16);
        assert!(sched.total_events() > 0);
        // Fetch traffic exists under sparse exchange with pr > 1.
        assert!(sched
            .traces
            .iter()
            .any(|t| t.iter().any(|e| matches!(e, AuditEvent::Send { .. }))));
    }

    #[test]
    fn skipped_wait_is_caught() {
        let mut sched = small_cfg().extract().unwrap();
        AuditFault::SkipWait.inject(&mut sched).expect("applicable");
        let violations = verify(&sched);
        assert!(
            violations
                .iter()
                .any(|v| v.kind == AuditViolationKind::ScheduleDivergence
                    || v.kind == AuditViolationKind::HandleDiscipline),
            "{violations:?}"
        );
    }

    #[test]
    fn wrong_fetch_tag_deadlocks_the_replay() {
        let mut sched = small_cfg().extract().unwrap();
        AuditFault::WrongFetchTag
            .inject(&mut sched)
            .expect("sparse schedule has fetch sends");
        let violations = verify(&sched);
        assert!(
            violations.iter().any(|v| matches!(
                v.kind,
                AuditViolationKind::Deadlock | AuditViolationKind::OrphanedSend
            )),
            "{violations:?}"
        );
    }

    #[test]
    fn wrong_root_is_a_divergence_with_diff() {
        let mut sched = small_cfg().extract().unwrap();
        AuditFault::WrongRoot.inject(&mut sched).expect("applicable");
        let violations = verify(&sched);
        let v = violations
            .iter()
            .find(|v| v.kind == AuditViolationKind::ScheduleDivergence)
            .expect("divergence");
        assert!(v.diff.is_some(), "divergences carry a minimized diff");
    }

    #[test]
    fn memory_model_matches_alg3_guarantee() {
        // Budget-derived batch counts must satisfy the Eq. 2 bound by
        // construction, for every shape and grid.
        for shape in workload_shapes() {
            for p in [4usize, 16, 64] {
                for l in valid_layer_counts(p) {
                    for target in [1usize, 4, 32] {
                        let cfg = AuditConfig {
                            shape,
                            p,
                            l,
                            batch: BatchSpec::Budget { target },
                            exchange: ExchangeMode::DenseBcast,
                            overlap: OverlapMode::Blocking,
                            iterations: 1,
                            family: AlgorithmFamily::Summa3dBatched,
                        };
                        // Planner-rejected (Err) configurations are fine.
                        if let Ok(sched) = cfg.extract() {
                            assert!(check_memory(&sched).is_none(), "{}", cfg.label());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn json_report_is_well_formed_enough() {
        let report = sweep(&[4], Some(AuditFault::WrongRoot));
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"configs_checked\""));
        assert!(json.contains("\"violations\""));
        // Faulted sweep must report at least one violation.
        assert!(!report.violations().is_empty());
    }

    #[test]
    fn family15_schedules_verify_clean() {
        // Both 1.5D families, non-square world sizes included, across
        // every valid replication factor and multi-iteration sessions.
        for (p, family) in [
            (12, AlgorithmFamily::ColA15 { c: 1 }),
            (12, AlgorithmFamily::ColA15 { c: 3 }),
            (16, AlgorithmFamily::ColA15 { c: 4 }),
            (16, AlgorithmFamily::InnerAbc15 { c: 2 }),
            (16, AlgorithmFamily::InnerAbc15 { c: 4 }),
            (18, AlgorithmFamily::InnerAbc15 { c: 3 }),
        ] {
            for iterations in [1usize, 2] {
                let cfg = cfg_15d(p, family, iterations);
                let sched = cfg.extract().expect("valid 1.5D config");
                assert_eq!(sched.traces.len(), p);
                assert_eq!(sched.nbatches, 1);
                let violations = verify(&sched);
                assert!(violations.is_empty(), "{}: {violations:?}", cfg.label());
            }
        }
    }

    #[test]
    fn family15_rejects_batching() {
        let cfg = AuditConfig {
            batch: BatchSpec::Forced(2),
            ..cfg_15d(16, AlgorithmFamily::ColA15 { c: 4 }, 1)
        };
        assert!(cfg.extract().is_err(), "b>1 must be planner-rejected");
        let cfg = AuditConfig {
            batch: BatchSpec::Budget { target: 4 },
            ..cfg_15d(16, AlgorithmFamily::ColA15 { c: 4 }, 1)
        };
        assert!(cfg.extract().is_err(), "budget batching must be rejected");
    }

    #[test]
    fn family15_invalid_repl_factor_is_planner_rejected() {
        // p % c != 0 and c² ∤ p are config errors, not violations.
        assert!(cfg_15d(12, AlgorithmFamily::ColA15 { c: 5 }, 1)
            .extract()
            .is_err());
        assert!(cfg_15d(12, AlgorithmFamily::InnerAbc15 { c: 3 }, 1)
            .extract()
            .is_err());
    }

    #[test]
    fn family15_wrong_shift_tag_is_caught() {
        // Corrupt one shift send's tag: its receiver can never match, so
        // the replay deadlocks or the send orphans.
        let mut sched = cfg_15d(12, AlgorithmFamily::ColA15 { c: 3 }, 1)
            .extract()
            .unwrap();
        let e = sched.traces[0]
            .iter_mut()
            .find_map(|e| match e {
                AuditEvent::Send { tag, .. } => Some(tag),
                _ => None,
            })
            .expect("ColA schedule has shift sends");
        *e += 999;
        let violations = verify(&sched);
        assert!(
            violations.iter().any(|v| matches!(
                v.kind,
                AuditViolationKind::Deadlock | AuditViolationKind::OrphanedSend
            )),
            "{violations:?}"
        );
    }

    #[test]
    fn sweep_covers_both_15d_families() {
        let grid = sweep_grid(&[16]);
        let has = |needle: &str| grid.iter().any(|c| c.label().contains(needle));
        assert!(has("cola(c=1)"), "sweep must include ColA c=1");
        assert!(has("cola(c=4)"), "sweep must include ColA c=4");
        assert!(has("innerabc(c=2)"), "sweep must include InnerABC c=2");
        // And every 1.5D sweep point must verify clean.
        for cfg in grid.iter().filter(|c| c.family.is_15d()) {
            let res = audit_config(cfg, None);
            assert!(
                matches!(res.outcome, ConfigOutcome::Ok { .. }),
                "{}: {:?}",
                res.label,
                res.outcome
            );
        }
    }

    #[test]
    fn fetch_seq_is_monotone_across_iterations() {
        // The fetch tag counter must not reset between session iterations
        // (the cross-iteration cache relies on unique tags).
        let sched = AuditConfig {
            iterations: 3,
            ..small_cfg()
        }
        .extract()
        .unwrap();
        for trace in &sched.traces {
            let mut last_req = None;
            for e in trace {
                if let AuditEvent::Send { tag, .. } = e {
                    if *tag >= crate::exchange::FETCH_TAG_BASE && tag % 2 == 0 {
                        if let Some(prev) = last_req {
                            assert!(*tag > prev, "fetch req tags must strictly increase");
                        }
                        last_req = Some(*tag);
                    }
                }
            }
        }
    }
}
