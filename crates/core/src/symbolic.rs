//! Symbolic3D (Alg. 3): determine the number of batches `b`.
//!
//! A structure-only sweep with the same communication pattern as one full
//! (un-batched) SUMMA2D per layer: broadcast `Ã` and `B̃` per stage, run
//! `LocalSymbolic` to count how many nonzeros the numeric stage *would*
//! produce, and accumulate the per-process **unmerged** total (the sum
//! over stages is exactly what must be resident before Merge-Layer — the
//! memory high-water mark the batch count must control).
//!
//! The final reduction takes the **maximum** per-process count (line 9) so
//! that no process exhausts its budget even under load imbalance: as the
//! paper notes, Symbolic3D deliberately over-batches for imbalanced
//! matrices relative to the perfectly-balanced Eq. 2 bound.

use crate::dist::DistMatrix;
use crate::exchange::ExchangePlan;
use crate::kernels::{KernelStrategy, LocalKernels};
use crate::memory::MemoryBudget;
use crate::{CoreError, Result};
use spgemm_simgrid::{Grid3D, Rank, Step};
use spgemm_sparse::Semiring;
use std::sync::Arc;

/// Everything the symbolic step learns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolicOutcome {
    /// The batch count Alg. 3 line 12 computes (≥ 1).
    pub batches: usize,
    /// Maximum per-process unmerged intermediate nonzeros (`maxnnzC`).
    pub max_unmerged_nnz: u64,
    /// Total unmerged intermediate nonzeros across processes
    /// (`Σₖ nnz(D⁽ᵏ⁾)` plus intra-stage duplication; the paper's
    /// `mem(C)/r`).
    pub total_unmerged_nnz: u64,
    /// Maximum per-process `nnz(Ã)`.
    pub max_nnz_a: u64,
    /// Maximum per-process `nnz(B̃)`.
    pub max_nnz_b: u64,
    /// Global `nnz(A)` / `nnz(B)` (sums).
    pub total_nnz_a: u64,
    /// Global `nnz(B)`.
    pub total_nnz_b: u64,
    /// Total multiplication count (the paper's `flops`).
    pub flops: u64,
    /// Eq. 2's analytic lower bound on `b` under perfect balance
    /// (`None` when the inputs alone exceed the budget).
    pub eq2_lower_bound: Option<usize>,
    /// Largest unmerged intermediate of any *single output column* on any
    /// process. Column-wise batching cannot split below one column, so
    /// this drives the upper bound on what batching can achieve: if even
    /// one column's intermediate exceeds the leftover per-process memory,
    /// no batch count is feasible (the paper's contribution 3 discusses
    /// both bounds on `b`).
    pub max_col_unmerged_nnz: u64,
    /// The number of batches beyond which batching cannot be refined
    /// (one column per batch): `ncols(B)`.
    pub upper_bound: usize,
}

/// Run Symbolic3D and compute the batch count for `budget`.
///
/// Fails with [`CoreError::InputsExceedMemory`] when even `b → ∞` cannot
/// fit (Alg. 3's denominator is non-positive), which is exactly the regime
/// where the paper's premise `M > nnz(A) + nnz(B)` is violated.
pub fn symbolic3d<S: Semiring>(
    rank: &mut Rank,
    grid: &Grid3D,
    a: &DistMatrix<S::T>,
    b: &DistMatrix<S::T>,
    budget: &MemoryBudget,
) -> Result<SymbolicOutcome> {
    let mut kernels = LocalKernels::new(KernelStrategy::default());
    let mut plan = ExchangePlan::default();
    symbolic3d_with_weights::<S>(rank, grid, a, b, budget, &mut kernels, &mut plan)
        .map(|(o, _)| o)
}

/// [`symbolic3d`] plus this rank's per-local-column unmerged intermediate
/// counts (the weights that drive
/// [`crate::batched::BatchingStrategy::Balanced`] batching).
///
/// `kernels` supplies the reusable symbolic accumulator; passing the same
/// engine later used for the numeric batches means the hash table warmed
/// up here is already sized when the numeric sweep begins. `plan` decides
/// how the structure-only stage operands move (the symbolic sweep follows
/// the same exchange mode as the numeric stages it predicts, so its
/// modeled communication matches what the numeric run will pay).
pub fn symbolic3d_with_weights<S: Semiring>(
    rank: &mut Rank,
    grid: &Grid3D,
    a: &DistMatrix<S::T>,
    b: &DistMatrix<S::T>,
    budget: &MemoryBudget,
    kernels: &mut LocalKernels<S::T>,
    plan: &mut ExchangePlan,
) -> Result<(SymbolicOutcome, Vec<u64>)> {
    let stages = grid.pr;
    let a_shared = Arc::new(a.local.clone());
    let b_shared = Arc::new(b.local.clone());
    let r = budget.r;

    // Per-stage symbolic products, accumulated *unmerged* (Alg. 3 line 8),
    // plus the per-output-column accumulation that determines batching
    // feasibility (a batch cannot contain less than one column).
    let mut my_unmerged: u64 = 0;
    let mut my_flops: u64 = 0;
    let mut my_col_unmerged: Vec<u64> = vec![0; b.local.ncols()];
    for s in 0..stages {
        let (a_recv, b_recv) = plan.exchange_stage(
            rank,
            grid,
            s,
            &a_shared,
            a.local.modeled_bytes(r),
            &b_shared,
            b.local.modeled_bytes(r),
            r,
            (Step::SymbolicComm, Step::SymbolicComm),
        )?;
        let (counts, stats) = kernels.run_symbolic_col_counts(rank, &*a_recv, &*b_recv)?;
        my_unmerged += stats.nnz_out;
        my_flops += stats.flops;
        for (acc, c) in my_col_unmerged.iter_mut().zip(counts.iter()) {
            *acc += c;
        }
    }
    let my_max_col = my_col_unmerged.iter().copied().max().unwrap_or(0);

    // Global reductions (Alg. 3 lines 9–11) plus the sums needed for the
    // Eq. 2 bound and the cost-model validation.
    let world = &grid.world;
    let max_u64: fn(u64, u64) -> u64 = |x, y| x.max(y);
    let sum_u64: fn(u64, u64) -> u64 = |x, y| x + y;
    let max_unmerged = rank.allreduce(world, my_unmerged, max_u64, 8, Step::SymbolicComm);
    let total_unmerged = rank.allreduce(world, my_unmerged, sum_u64, 8, Step::SymbolicComm);
    let max_nnz_a = rank.allreduce(world, a.local.nnz() as u64, max_u64, 8, Step::SymbolicComm);
    let max_nnz_b = rank.allreduce(world, b.local.nnz() as u64, max_u64, 8, Step::SymbolicComm);
    let total_nnz_a = rank.allreduce(world, a.local.nnz() as u64, sum_u64, 8, Step::SymbolicComm);
    let total_nnz_b = rank.allreduce(world, b.local.nnz() as u64, sum_u64, 8, Step::SymbolicComm);
    let flops = rank.allreduce(world, my_flops, sum_u64, 8, Step::SymbolicComm);
    let max_col_unmerged = rank.allreduce(world, my_max_col, max_u64, 8, Step::SymbolicComm);

    // Alg. 3 line 12: b = r·maxnnzC / (M/p − r·(maxnnzA + maxnnzB)).
    let batches = alg3_batch_count(
        budget.per_process(grid.p()),
        r,
        max_nnz_a,
        max_nnz_b,
        max_unmerged,
        max_col_unmerged,
        b.gcols.max(1),
    )?;

    let eq2_lower_bound = budget.eq2_lower_bound(
        r * total_unmerged as usize,
        total_nnz_a as usize,
        total_nnz_b as usize,
    );

    Ok((
        SymbolicOutcome {
            batches,
            max_unmerged_nnz: max_unmerged,
            total_unmerged_nnz: total_unmerged,
            max_nnz_a,
            max_nnz_b,
            total_nnz_a,
            total_nnz_b,
            flops,
            eq2_lower_bound,
            max_col_unmerged_nnz: max_col_unmerged,
            upper_bound: b.gcols.max(1),
        },
        my_col_unmerged,
    ))
}

/// Alg. 3 line 12 as a pure function of the reduced symbolic quantities:
/// `b = ⌈r·maxnnzC / (M/p − r·(maxnnzA + maxnnzB))⌉`, clamped to
/// `[1, upper_bound]` (one column per batch is the finest split).
///
/// Extracted from [`symbolic3d_with_weights`] so the schedule auditor can
/// reproduce the exact batch count a run would choose — including both
/// failure modes — from modeled nonzero counts alone.
pub fn alg3_batch_count(
    per_proc_budget: usize,
    r: usize,
    max_nnz_a: u64,
    max_nnz_b: u64,
    max_unmerged: u64,
    max_col_unmerged: u64,
    upper_bound: usize,
) -> Result<usize> {
    let input_bytes = r * (max_nnz_a + max_nnz_b) as usize;
    if per_proc_budget <= input_bytes {
        return Err(CoreError::InputsExceedMemory {
            needed_bytes: input_bytes,
            budget_bytes: per_proc_budget,
        });
    }
    let denom = per_proc_budget - input_bytes;
    // Upper-bound feasibility: column-wise batching cannot split a single
    // output column, so its intermediate must fit in the leftover memory.
    if r as u64 * max_col_unmerged > denom as u64 {
        return Err(CoreError::BatchingInfeasible {
            column_bytes: r * max_col_unmerged as usize,
            available_bytes: denom,
        });
    }
    Ok(((r as u64 * max_unmerged).div_ceil(denom as u64) as usize).clamp(1, upper_bound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{scatter, DistKind};
    use spgemm_simgrid::{run_ranks, Machine};
    use spgemm_sparse::gen::er_random;
    use spgemm_sparse::semiring::PlusTimesF64;
    use spgemm_sparse::spgemm::symbolic_nnz;
    use spgemm_sparse::CscMatrix;

    fn symbolic_on_grid(
        p: usize,
        l: usize,
        a: CscMatrix<f64>,
        b: CscMatrix<f64>,
        budget: MemoryBudget,
    ) -> Vec<Result<SymbolicOutcome>> {
        run_ranks(p, Machine::knl(), move |rank| {
            let grid = Grid3D::new(rank, l);
            let da = scatter(
                rank,
                &grid,
                DistKind::AStyle,
                (rank.rank() == 0).then(|| Arc::new(a.clone())),
            );
            let db = scatter(
                rank,
                &grid,
                DistKind::BStyle,
                (rank.rank() == 0).then(|| Arc::new(b.clone())),
            );
            symbolic3d::<PlusTimesF64>(rank, &grid, &da, &db, &budget)
        })
    }

    #[test]
    fn all_ranks_agree_on_outcome() {
        let a = er_random::<PlusTimesF64>(48, 48, 6, 31);
        let b = er_random::<PlusTimesF64>(48, 48, 6, 32);
        let outcomes = symbolic_on_grid(8, 2, a, b, MemoryBudget::new(24 * 100_000));
        let first = outcomes[0].clone().unwrap();
        for o in &outcomes {
            assert_eq!(o.clone().unwrap(), first);
        }
        assert_eq!(first.batches, 1, "huge budget needs one batch");
    }

    #[test]
    fn flops_match_serial_count() {
        let a = er_random::<PlusTimesF64>(40, 40, 5, 33);
        let b = er_random::<PlusTimesF64>(40, 40, 5, 34);
        let (_, serial) = symbolic_nnz(&a, &b).unwrap();
        for (p, l) in [(4, 1), (8, 2), (16, 4)] {
            let outcomes = symbolic_on_grid(p, l, a.clone(), b.clone(), MemoryBudget::unlimited());
            let o = outcomes[0].clone().unwrap();
            assert_eq!(o.flops, serial.flops, "p={p} l={l}: distributed flops must be exact");
        }
    }

    #[test]
    fn tighter_budget_means_more_batches() {
        let a = er_random::<PlusTimesF64>(64, 64, 8, 35);
        let b = er_random::<PlusTimesF64>(64, 64, 8, 36);
        let loose = symbolic_on_grid(4, 1, a.clone(), b.clone(), MemoryBudget::new(24 * 1_000_000))[0]
            .clone()
            .unwrap();
        let inputs = (a.nnz() + b.nnz()) * 24;
        let tight = symbolic_on_grid(4, 1, a, b, MemoryBudget::new(inputs * 4 + 4096))[0]
            .clone()
            .unwrap();
        assert!(tight.batches > loose.batches, "{} vs {}", tight.batches, loose.batches);
    }

    #[test]
    fn exact_b_at_least_eq2_bound() {
        // The max-based Alg. 3 count dominates the perfectly-balanced
        // analytic bound.
        let a = er_random::<PlusTimesF64>(60, 60, 7, 37);
        let b = er_random::<PlusTimesF64>(60, 60, 7, 38);
        let inputs = (a.nnz() + b.nnz()) * 24;
        for (p, l) in [(4, 1), (16, 4)] {
            let o = symbolic_on_grid(p, l, a.clone(), b.clone(), MemoryBudget::new(inputs * 3))[0]
                .clone()
                .unwrap();
            let bound = o.eq2_lower_bound.expect("inputs fit");
            assert!(
                o.batches >= bound,
                "p={p} l={l}: exact b {} below Eq. 2 bound {bound}",
                o.batches
            );
        }
    }

    #[test]
    fn inputs_exceeding_memory_is_an_error() {
        let a = er_random::<PlusTimesF64>(32, 32, 6, 39);
        let b = er_random::<PlusTimesF64>(32, 32, 6, 40);
        let res = symbolic_on_grid(4, 1, a, b, MemoryBudget::new(64));
        assert!(matches!(
            res[0],
            Err(CoreError::InputsExceedMemory { .. })
        ));
    }

    #[test]
    fn symbolic_step_records_comm_and_comp() {
        let a = er_random::<PlusTimesF64>(32, 32, 4, 41);
        let b = er_random::<PlusTimesF64>(32, 32, 4, 42);
        let breakdowns = run_ranks(4, Machine::knl(), move |rank| {
            let grid = Grid3D::new(rank, 1);
            let da = scatter(
                rank,
                &grid,
                DistKind::AStyle,
                (rank.rank() == 0).then(|| Arc::new(a.clone())),
            );
            let db = scatter(
                rank,
                &grid,
                DistKind::BStyle,
                (rank.rank() == 0).then(|| Arc::new(b.clone())),
            );
            symbolic3d::<PlusTimesF64>(rank, &grid, &da, &db, &MemoryBudget::unlimited()).unwrap();
            *rank.clock().breakdown()
        });
        for bd in &breakdowns {
            assert!(bd.secs_of(Step::SymbolicComm) > 0.0);
            assert!(bd.secs_of(Step::SymbolicComp) > 0.0);
        }
    }
}
